module auditreg

go 1.24
