package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"auditreg"
	"auditreg/internal/telem"
	"auditreg/store"
	"auditreg/wire"
)

// scrape hits the server's /metrics handler in-process and parses the
// exposition into the flat sample map telem.ParseText produces.
func scrape(t *testing.T, srv *Server) (map[string]float64, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.MetricsMux().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	body := rec.Body.String()
	m, err := telem.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	return m, body
}

// TestMetricsEndpoint drives traffic through the handlers and asserts the
// endpoint serves coherent counters, per-stage histograms, and a monotonic
// stats epoch — and that the per-object leak counter is absent in an honest
// configuration.
func TestMetricsEndpoint(t *testing.T) {
	srv, c := newBenchConn(t)
	const name = "metrics/reg"
	if _, err := srv.Store().Open(name, store.Register); err != nil {
		t.Fatalf("Open: %v", err)
	}
	dst := make([]byte, 0, 256)
	wbody := (&wire.WriteReq{Name: name, Value: 7}).Append(nil)
	fbody := (&wire.ReadFetchReq{Name: name, Reader: 0, PrevSeq: ^uint64(0)}).Append(nil)
	for i := 0; i < 5; i++ {
		// Feed the stage histograms the way the executor loop does.
		t0 := telem.Now()
		c.handleWrite(wbody, dst[:0])
		c.handleReadFetch(fbody, dst[:0])
		srv.tel.storeOp.Observe(0, telem.Now()-t0)
	}

	m, body := scrape(t, srv)
	if m["auditreg_writes_total"] != 5 {
		t.Errorf("writes_total = %v, want 5", m["auditreg_writes_total"])
	}
	if m["auditreg_reads_fetched_total"]+m["auditreg_reads_silent_total"] != 5 {
		t.Errorf("reads fetched+silent = %v+%v, want 5",
			m["auditreg_reads_fetched_total"], m["auditreg_reads_silent_total"])
	}
	if m[`auditreg_stage_duration_seconds_count{stage="store-op"}`] != 5 {
		t.Errorf("store-op stage count = %v, want 5",
			m[`auditreg_stage_duration_seconds_count{stage="store-op"}`])
	}
	if m[`auditreg_stage_latency_ns{stage="store-op",q="p50"}`] <= 0 {
		t.Error("store-op p50 missing or zero")
	}
	if !strings.Contains(body, `auditreg_build_info{goversion=`) {
		t.Error("build info sample missing")
	}
	if strings.Contains(body, "auditreg_leaky_object_reads_total") {
		t.Error("honest configuration must not serve the per-object leak counter")
	}
	// Aggregate-only invariant, literally: no object name and no reader
	// label anywhere in an honest exposition.
	if strings.Contains(body, name) || strings.Contains(body, "reader=") {
		t.Error("exposition carries a per-object or per-reader dimension")
	}

	epoch1 := m["auditreg_stats_epoch"]
	m2, _ := scrape(t, srv)
	if m2["auditreg_stats_epoch"] <= epoch1 {
		t.Errorf("stats epoch did not advance: %v -> %v", epoch1, m2["auditreg_stats_epoch"])
	}
}

// TestMetricsLeakControl verifies the planted per-object counter — the E18
// positive control — appears if and only if Config.LeakyPerObjectReads is
// set, keyed by a stable copy of the (pooled, reused) name bytes.
func TestMetricsLeakControl(t *testing.T) {
	srv, err := New(Config{Key: auditreg.KeyFromSeed(6), Readers: 4, LeakyPerObjectReads: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := &conn{srv: srv}
	const name = "metrics/leaky"
	if _, err := srv.Store().Open(name, store.Register); err != nil {
		t.Fatalf("Open: %v", err)
	}
	dst := make([]byte, 0, 256)
	// The handler sees the name as a view into a reused buffer; mutate the
	// buffer after the call to prove the map key was copied.
	fbody := (&wire.ReadFetchReq{Name: name, Reader: 0, PrevSeq: ^uint64(0)}).Append(nil)
	c.handleReadFetch(fbody, dst[:0])
	c.handleReadFetch(fbody, dst[:0])
	for i := range fbody {
		fbody[i] = 0
	}
	m, _ := scrape(t, srv)
	key := `auditreg_leaky_object_reads_total{object="` + name + `"}`
	if m[key] != 2 {
		t.Fatalf("leak control: %s = %v, want 2", key, m[key])
	}
}
