package server_test

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/persist"
	"auditreg/server"
	"auditreg/store"
	"auditreg/wire"
)

// startPersistentServer boots a server over dir without the shared
// helper's automatic cleanup, so tests control the shutdown/restart cycle.
func startPersistentServer(t *testing.T, key auditreg.Key, dir string) (*server.Server, string, func()) {
	t.Helper()
	srv, err := server.New(server.Config{
		Key:          key,
		Readers:      8,
		PoolInterval: time.Millisecond,
		DataDir:      dir,
		Fsync:        persist.SyncAlways,
	})
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("Serve: %v", err)
		}
	}
	return srv, ln.Addr().String(), stop
}

// TestShutdownDrainsInFlightCommits is the drain regression check for the
// executor-routed async journal path: a connection that dies mid-pipeline —
// dozens of durable writes routed to shard executors, none of their
// responses ever read — must not wedge Shutdown, leak a completion-stage
// goroutine, or lose a write that was acknowledged on another connection.
func TestShutdownDrainsInFlightCommits(t *testing.T) {
	key := auditreg.KeyFromSeed(77)
	dir := t.TempDir()
	g0 := runtime.NumGoroutine()
	srv, addr, stop := startPersistentServer(t, key, dir)
	_ = srv

	// An acked write on its own object: its durability verdict is settled
	// before the messy connection below even exists.
	cl, err := client.Dial(addr, client.WithKey(key), client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	acked, err := cl.Open("drain/acked", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := acked.Write(0xACED); err != nil {
		t.Fatalf("Write: %v", err)
	}
	cl.Close()

	// A raw connection: open an object, then blast a pipeline of durable
	// writes and slam the socket shut without reading one response. The
	// frames already buffered server-side still execute; their commits are
	// in flight through the completion stage when the conn dies.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial raw: %v", err)
	}
	const pipelined = "drain/pipelined"
	open := wire.AppendFrame(nil, 1, wire.VerbOpen, (&wire.OpenReq{Name: pipelined, Kind: wire.KindRegister}).Append(nil))
	if _, err := nc.Write(open); err != nil {
		t.Fatalf("write open: %v", err)
	}
	sc := wire.NewFrameScanner(nc, 4<<10)
	if f, err := sc.Next(); err != nil || f.Verb != wire.VerbOpen {
		t.Fatalf("open response: verb %v, err %v", f.Verb, err)
	}
	var burst []byte
	const writes = 128
	for i := uint64(0); i < writes; i++ {
		burst = wire.AppendFrame(burst, 2+i, wire.VerbWrite, (&wire.WriteReq{Name: pipelined, Value: 0x1000 + i}).Append(nil))
	}
	if _, err := nc.Write(burst); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	nc.Close()

	// stop() runs Shutdown under a 5s context and fails the test if the
	// drain wedges — the regression this test exists to catch.
	stop()

	// No leaked completion-stage (or executor) goroutines: the count must
	// settle back to the pre-server baseline.
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > g0+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > g0+2 {
		t.Errorf("%d goroutines after shutdown, %d before the server started — a stage leaked", n, g0)
	}

	// The acked write survived the drain and the restart; the pipelined
	// object holds either its initial value or one of the attempted writes.
	_, addrB, stopB := startPersistentServer(t, key, dir)
	defer stopB()
	clB, err := client.Dial(addrB, client.WithKey(key), client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial B: %v", err)
	}
	defer clB.Close()
	objA, err := clB.Open("drain/acked", store.Register)
	if err != nil {
		t.Fatalf("reopen acked: %v", err)
	}
	if v, err := objA.Read(0); err != nil || v != 0xACED {
		t.Errorf("acked write lost across shutdown: Read = %#x, %v; want 0xACED", v, err)
	}
	objB, err := clB.Open(pipelined, store.Register)
	if err != nil {
		t.Fatalf("reopen pipelined: %v", err)
	}
	if v, err := objB.Read(0); err != nil || (v != 0 && (v < 0x1000 || v >= 0x1000+writes)) {
		t.Errorf("pipelined object recovered %#x, %v; want 0 or an attempted value", v, err)
	}
}

// TestServerRecoversFromDataDir drives remote traffic into a daemon with a
// data dir, restarts it, and checks the paper's guarantee across the
// restart: a fresh remote audit reports exactly the pre-restart pairs, the
// values survive, and the restarted pool still publishes reports for the
// objects it covered.
func TestServerRecoversFromDataDir(t *testing.T) {
	key := auditreg.KeyFromSeed(1234)
	dir := t.TempDir()

	srvA, addrA, stopA := startPersistentServer(t, key, dir)
	clA, err := client.Dial(addrA, client.WithKey(key), client.WithConns(2))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	names := []string{"durable/reg", "durable/max"}
	kinds := []store.Kind{store.Register, store.MaxRegister}
	want := make(map[string]store.ObjectAudit[uint64])
	for i, name := range names {
		obj, err := clA.Open(name, kinds[i])
		if err != nil {
			t.Fatalf("Open(%s): %v", name, err)
		}
		for k := 1; k <= 9; k++ {
			if err := obj.Write(0x1000*uint64(i+1) + uint64(k)); err != nil {
				t.Fatalf("Write: %v", err)
			}
			for j := 0; j < 3; j++ {
				if _, err := obj.Read(j); err != nil {
					t.Fatalf("Read: %v", err)
				}
			}
		}
		aud, err := obj.Auditor()
		if err != nil {
			t.Fatalf("Auditor: %v", err)
		}
		rep, err := aud.Audit()
		if err != nil {
			t.Fatalf("Audit: %v", err)
		}
		want[name] = rep
	}
	// A snapshot mid-life must not disturb anything.
	if _, err := srvA.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	clA.Close()
	stopA()

	srvB, addrB, stopB := startPersistentServer(t, key, dir)
	defer stopB()
	if rec := srvB.Recovery(); rec == nil || rec.Replay.Objects != len(names) {
		t.Fatalf("recovery = %+v, want %d objects", srvB.Recovery(), len(names))
	}
	clB, err := client.Dial(addrB, client.WithKey(key), client.WithConns(2))
	if err != nil {
		t.Fatalf("Dial B: %v", err)
	}
	defer clB.Close()
	for i, name := range names {
		obj, err := clB.Open(name, kinds[i])
		if err != nil {
			t.Fatalf("reopen %s: %v", name, err)
		}
		aud, err := obj.Auditor()
		if err != nil {
			t.Fatalf("Auditor: %v", err)
		}
		rep, err := aud.Audit()
		if err != nil {
			t.Fatalf("post-recovery Audit: %v", err)
		}
		if !rep.Same(want[name]) {
			t.Errorf("post-recovery audit of %s: %d pairs, want %d\n got %v\nwant %v",
				name, rep.Len(), want[name].Len(), rep.Report, want[name].Report)
		}
		// The pre-crash pool reports were re-published during boot.
		if _, ok := srvB.Pool().Report(name); !ok {
			t.Errorf("pool has no recovered report for %s", name)
		}
		// Values survived: the last written value (register) / max (max
		// register) is 0x1000*(i+1)+9 either way.
		if v, err := obj.Read(7); err != nil || v != 0x1000*uint64(i+1)+9 {
			t.Errorf("post-recovery Read(%s) = %#x, %v", name, v, err)
		}
		// And the restarted daemon keeps accepting durable traffic.
		if err := obj.Write(0xF00D); err != nil {
			t.Errorf("post-recovery Write(%s): %v", name, err)
		}
	}

	// The daemon reports its WAL in STATS.
	pairs, err := clB.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	stats := make(map[string]uint64, len(pairs))
	for _, p := range pairs {
		stats[p.Name] = p.Value
	}
	if stats["wal-records"] == 0 {
		t.Errorf("stats lack wal-records: %v", stats)
	}
}
