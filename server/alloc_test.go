package server

import (
	"encoding/binary"
	"testing"

	"auditreg"
	"auditreg/internal/telem"
	"auditreg/store"
	"auditreg/wire"
)

// newBenchConn builds a server and a bare conn over it — no sockets; the
// handlers are exercised directly, exactly as dispatch drives them.
func newBenchConn(t testing.TB) (*Server, *conn) {
	t.Helper()
	srv, err := New(Config{Key: auditreg.KeyFromSeed(5), Readers: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, &conn{srv: srv}
}

// TestServerFastPathAllocationFree pins the server's request fast path at
// zero heap allocations per op: decode-in-place request views, in-place
// store operations, and response encodes into a reused buffer. The silent
// read — the paper's common case — and the announce are exactly zero; the
// write and effective fetch paths are bounded below one allocation per op
// (the store's block pad derivation amortizes one small block over four
// sequence numbers; see internal/core's alloc tests).
func TestServerFastPathAllocationFree(t *testing.T) {
	srv, c := newBenchConn(t)
	const name = "alloc/reg"
	if _, err := srv.Store().Open(name, store.Register); err != nil {
		t.Fatalf("Open: %v", err)
	}

	dst := make([]byte, 0, 256)
	wbody := (&wire.WriteReq{Name: name, Value: 1}).Append(nil)
	fbody := (&wire.ReadFetchReq{Name: name, Reader: 0, PrevSeq: ^uint64(0)}).Append(nil)
	abody := (&wire.AnnounceReq{Name: name, Reader: 0, Seq: 1}).Append(nil)

	// Warm every path: handles, history chunks, pad windows.
	for i := 0; i < 8; i++ {
		if _, v, commit := c.handleWrite(wbody, dst[:0]); v != wire.VerbWrite || commit != nil {
			t.Fatalf("warm write answered %v", v)
		}
		c.handleReadFetch(fbody, dst[:0])
		c.handleAnnounce(abody, dst[:0])
	}

	// Silent read: the reader's cache is current (same PrevSeq resend), no
	// fetch&xor, no journal — the paper's hot path. Exactly zero.
	var resp wire.ReadFetchResp
	out, v, _ := c.handleReadFetch(fbody, dst[:0])
	if v != wire.VerbReadFetch {
		t.Fatalf("fetch answered %v", v)
	}
	if err := resp.Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	silent := (&wire.ReadFetchReq{Name: name, Reader: 0, PrevSeq: resp.Seq}).Append(nil)
	c.handleReadFetch(silent, dst[:0])
	if n := testing.AllocsPerRun(1000, func() {
		if _, v, _ := c.handleReadFetch(silent, dst[:0]); v != wire.VerbReadFetch {
			t.Fatal("silent fetch failed")
		}
	}); n != 0 {
		t.Fatalf("silent read-fetch allocated %v times per run", n)
	}

	// Announce of an already-announced seq: pure helping no-op. Zero.
	if n := testing.AllocsPerRun(1000, func() {
		if _, v := c.handleAnnounce(abody, dst[:0]); v != wire.VerbReadAnnounce {
			t.Fatal("announce failed")
		}
	}); n != 0 {
		t.Fatalf("announce allocated %v times per run", n)
	}

	// Repeated same-value writes: the handler and wire layers add zero; the
	// register's pad stream amortizes one block per four sequence numbers.
	if n := testing.AllocsPerRun(1000, func() {
		if _, v, _ := c.handleWrite(wbody, dst[:0]); v != wire.VerbWrite {
			t.Fatal("write failed")
		}
	}); n >= 1 {
		t.Fatalf("write allocated %v times per run, want < 1 (amortized pad blocks only)", n)
	}

	// Effective fetch: reader 1 lags, fetch&xor plus masked response. Same
	// amortized bound. The request body is patched in place (PrevSeq is its
	// last 8 bytes), as a pipelining client's encoder would reuse its
	// buffer.
	f1body := (&wire.ReadFetchReq{Name: name, Reader: 1, PrevSeq: 0}).Append(nil)
	fetch1 := func(prev uint64) uint64 {
		binary.BigEndian.PutUint64(f1body[len(f1body)-8:], prev)
		out, v, _ := c.handleReadFetch(f1body, dst[:0])
		if v != wire.VerbReadFetch {
			t.Fatalf("fetch answered %v", v)
		}
		var r wire.ReadFetchResp
		if err := r.Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return r.Seq
	}
	seq := fetch1(^uint64(0))
	if n := testing.AllocsPerRun(1000, func() {
		if _, v, _ := c.handleWrite(wbody, dst[:0]); v != wire.VerbWrite {
			t.Fatal("write failed")
		}
		seq = fetch1(seq)
	}); n >= 2 {
		t.Fatalf("write+fetch pair allocated %v times per run, want < 2", n)
	}
}

// TestInstrumentedPathAllocationFree pins the hot paths WITH the telemetry
// the dispatch loops add — the exact observe sequence a routed request pays:
// conn-decode on the reader, queue-wait + store-op on the executor, and the
// handler itself. Telemetry must be free on the paths it measures: the
// silent read stays at exactly zero allocations, the write keeps its
// amortized sub-one bound.
func TestInstrumentedPathAllocationFree(t *testing.T) {
	srv, c := newBenchConn(t)
	const name = "alloc/telem"
	if _, err := srv.Store().Open(name, store.Register); err != nil {
		t.Fatalf("Open: %v", err)
	}
	dst := make([]byte, 0, 256)
	wbody := (&wire.WriteReq{Name: name, Value: 1}).Append(nil)
	fbody := (&wire.ReadFetchReq{Name: name, Reader: 0, PrevSeq: ^uint64(0)}).Append(nil)
	for i := 0; i < 8; i++ {
		c.handleWrite(wbody, dst[:0])
		c.handleReadFetch(fbody, dst[:0])
	}
	var resp wire.ReadFetchResp
	out, _, _ := c.handleReadFetch(fbody, dst[:0])
	if err := resp.Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	silent := (&wire.ReadFetchReq{Name: name, Reader: 0, PrevSeq: resp.Seq}).Append(nil)

	tel := srv.tel
	instrumented := func(body []byte, want wire.Verb) {
		tr := telem.Now()
		t0 := telem.Now()
		tel.queueWait.Observe(0, t0-tr)
		var v wire.Verb
		if want == wire.VerbWrite {
			_, v, _ = c.handleWrite(body, dst[:0])
		} else {
			_, v, _ = c.handleReadFetch(body, dst[:0])
		}
		tel.storeOp.Observe(0, telem.Now()-t0)
		tel.connDecode.Observe(c.tslot, telem.Now()-tr)
		if v != want {
			t.Fatalf("instrumented op answered %v, want %v", v, want)
		}
	}
	if n := testing.AllocsPerRun(1000, func() {
		instrumented(silent, wire.VerbReadFetch)
	}); n != 0 {
		t.Fatalf("instrumented silent read-fetch allocated %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		instrumented(wbody, wire.VerbWrite)
	}); n >= 1 {
		t.Fatalf("instrumented write allocated %v times per run, want < 1", n)
	}
}
