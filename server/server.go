// Package server implements auditd, the network service over the sharded
// store: a TCP server hosting one store.Store[uint64] — and one shared
// store.AuditPool sweeping it in the background — behind the length-prefixed
// binary protocol of package auditreg/wire.
//
// # Connection model
//
// Each accepted connection gets a reader that decodes request frames and
// routes each one — by the FNV-1a hash of its object name, the same hash
// the store's shard map and the WAL's stripe map use — to one of the
// server's shard executors: single goroutines that each own their slice of
// the store, so cross-connection operations on one shard serialize without
// lock contention while distinct shards run in parallel. Responses flow
// back through the connection's completion stage (durability verdicts) and
// writer goroutine (scatter-gather flushes). Requests pipeline naturally —
// a client may have any number of frames in flight — and per-object order
// is preserved (one object, one executor queue), which is what lets a
// client send READ-ANNOUNCE right behind READ-FETCH without waiting.
// Each executor queue is bounded; at the high watermark the reader sheds
// the request with a CodeBusy error instead of queueing it, so overload
// degrades into client retries, not unbounded latency.
//
// # Trust boundary
//
// The server sits on the writer/auditor side of the paper's trust boundary:
// it holds the store key (it derives every object's pad stream from it), and
// the store's writers decrypt outgoing reader sets into the audit arrays in
// server memory. What the server never does is put a decrypted reader set on
// the wire: READ-FETCH responses carry no reader-set bits at all, and AUDIT
// responses carry reader sets XOR-masked under fresh pads only key-holding
// auditor clients can remove (see the wire package and DESIGN.md's "Network
// layer" section). Remote readers drive the paper's read algorithm through
// the fetch/announce verb pair, and the server's persistent per-(object,
// reader) handles enforce the at-most-one-fetch&xor-per-write invariant no
// matter how a remote client misbehaves. Principal authentication is not
// the protocol's job: connections do not prove which reader index they act
// for (the deployment's authenticated channel binds identities to reader
// indices); see DESIGN.md, "What the server does and does not enforce".
//
// # Shutdown
//
// Shutdown drains gracefully: stop accepting, kick every connection's reader
// off its socket, execute the requests already buffered, flush every pending
// response, then stop the audit pool. Clients see clean EOFs at frame
// boundaries.
package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"auditreg"
	"auditreg/persist"
	"auditreg/store"
	"auditreg/wire"
)

// Config configures a Server. The zero value of every optional field selects
// the documented default.
type Config struct {
	// Key is the store master key: the writers'/auditors' secret every
	// hosted object derives its pad stream from. Required.
	Key auditreg.Key
	// Readers is the reader count m of every hosted object (default
	// store.DefaultReaders).
	Readers int
	// Shards is the store's shard count (default shard.DefaultShards).
	Shards int
	// ExecShards is the number of shard executors — the single goroutines
	// requests are routed to by object-name hash, each owning its slice of
	// the store (default runtime.GOMAXPROCS(0), rounded up to a power of
	// two). One executor per core is the intended shape; more only adds
	// queues.
	ExecShards int
	// ShardQueue bounds each executor's request queue (default
	// defaultShardQueue). A routed request that finds the queue full is
	// shed with a CodeBusy error — the admission-control high watermark.
	ShardQueue int
	// Capacity is the default per-object audit-history capacity (default
	// store.DefaultCapacity).
	Capacity int
	// PoolWorkers and PoolInterval configure the shared audit pool
	// (defaults store.DefaultPoolWorkers, store.DefaultPoolInterval).
	PoolWorkers  int
	PoolInterval time.Duration
	// DataDir, when non-empty, makes the store durable: on construction the
	// directory is recovered into the store (package auditreg/persist), and
	// every subsequent mutation is journaled to its write-ahead log. All
	// durable state stays masked under pads derived from a key held only in
	// server memory — never in the directory.
	DataDir string
	// Fsync selects the WAL durability policy (default persist.SyncAlways);
	// FsyncInterval and SegmentBytes tune it (defaults in persist).
	Fsync         persist.Policy
	FsyncInterval time.Duration
	SegmentBytes  int64
	// WALBatchDelay and WALBatchBytes tune the WAL's adaptive group-commit
	// window (defaults persist.DefaultBatchDelay/DefaultBatchBytes; a
	// negative delay disables the window). See persist.Options.
	WALBatchDelay time.Duration
	WALBatchBytes int
	// WALStripes is the WAL stripe-group count (default in persist:
	// runtime.GOMAXPROCS(0)). A non-empty data directory pins its own
	// count; see persist.Options.Stripes.
	WALStripes int
	// NodeID is this daemon's cluster node id (1-based; 0 means standalone,
	// not part of a cluster). A dispersing client (package auditreg/cluster)
	// derives each node's share pads from the node id it maps an address to,
	// so OPEN requests asserting a different id are refused with
	// CodeNodeMismatch and OPEN responses echo the configured id.
	NodeID uint32
	// FrameTap, when non-nil, is invoked synchronously with every complete
	// frame the server transmits (outbound true) or receives (outbound
	// false). Test instrumentation — the leak tests assert over every
	// transmitted frame; do not set it in production.
	FrameTap func(outbound bool, frame []byte)
	// LeakyPerObjectReads plants a per-object read counter in the metrics
	// endpoint — a deliberate violation of the aggregate-only telemetry
	// contract, existing only as the E18 lab's positive control (the
	// metrics observer must detect it). Never enable in production.
	LeakyPerObjectReads bool
	// CorruptShares makes the daemon Byzantine on the share-read path: every
	// SHARE-FETCH that carries a value has one bit of its share flipped on
	// the wire. The E20 chaos lab's positive control — the dispersing
	// client's verified reconstruction must detect and quarantine this node,
	// never return a wrong value. The corruption is wire-only: the journal
	// records the honest share, so merged audits stay exact, and the
	// served-corrupt count is published as the share-corrupts-served STATS
	// counter (what cmd/auditctl's SUSPECT state keys on). Never enable in
	// production.
	CorruptShares bool
}

// Server hosts a store behind a TCP listener. Construct with New; serve with
// Serve or ListenAndServe; stop with Shutdown.
type Server struct {
	cfg   Config
	st    *store.Store[uint64]
	pool  *store.AuditPool[uint64]
	wal   *persist.WAL
	recov *persist.RecoverResult
	epoch uint64
	start time.Time

	// Shard executors: requests are routed to execs[hash&execMask] by the
	// conn readers; the goroutines start in Serve and stop in Shutdown once
	// every conn (every sender) is gone.
	execs    []*shardExec
	execMask uint64
	execStop sync.Once

	// tel holds the per-stage pipeline histograms (see metrics.go);
	// statsEpoch advances on every counter snapshot; connSeq hands each
	// accepted connection a telemetry stripe slot.
	tel        *serverTelem
	statsEpoch atomic.Uint64
	connSeq    atomic.Uint64

	// The planted per-object read counter behind Config.LeakyPerObjectReads
	// (positive control only; see metrics.go).
	leakyMu    sync.Mutex
	leakyReads map[string]uint64

	// Share-mode registry: the pinned packing width (share bytes) of every
	// object that has taken a SHARE-WRITE this boot. Advisory — correctness
	// rides on the MaxRegister's packed-value ordering, which survives
	// recovery; the registry only rejects width drift within a boot and
	// feeds the cluster STATS block.
	shareMu   sync.RWMutex
	shareLens map[string]uint8

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	execsUp  bool

	wg sync.WaitGroup

	opens        atomic.Uint64
	writes       atomic.Uint64
	readsFetched atomic.Uint64
	readsSilent  atomic.Uint64
	announces    atomic.Uint64
	audits       atomic.Uint64
	errs         atomic.Uint64
	framesIn     atomic.Uint64
	framesOut    atomic.Uint64
	connsTotal   atomic.Uint64

	// Cluster share-path counters (the STATS cluster block).
	shareWrites  atomic.Uint64
	shareProbes  atomic.Uint64
	shareFetch   atomic.Uint64
	shareSilent  atomic.Uint64
	shareCorrupt atomic.Uint64 // shares deliberately corrupted (Config.CorruptShares)

	// Coalesced-flush counters: one flush is one writev on one connection,
	// however many response frames it carried. frames-out over conn-flushes
	// is the observed write-coalescing factor.
	connFlushes     atomic.Uint64
	connFlushFrames atomic.Uint64
}

// New returns a server hosting a fresh store configured per cfg. With a
// DataDir the store is first recovered from disk — the write-ahead log
// replays into it and the pool re-audits every object that had a published
// report before the crash — and then journaled for the server's lifetime.
// The audit pool starts with Serve.
func New(cfg Config) (*Server, error) {
	opts := []store.Option[uint64]{
		store.WithLess[uint64](func(a, b uint64) bool { return a < b }),
	}
	if cfg.Readers != 0 {
		opts = append(opts, store.WithReaders[uint64](cfg.Readers))
	}
	if cfg.Shards != 0 {
		opts = append(opts, store.WithShards[uint64](cfg.Shards))
	}
	if cfg.Capacity != 0 {
		opts = append(opts, store.WithCapacity[uint64](cfg.Capacity))
	}
	st, err := store.New(cfg.Key, opts...)
	if err != nil {
		return nil, err
	}
	// The executor shard count doubles as the stripe count of the
	// executor-side histograms, so telemetry is built before the WAL — the
	// WAL's fsync timer is one of its stages.
	shards := cfg.ExecShards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	tel := newServerTelem(n)
	var wal *persist.WAL
	var recov *persist.RecoverResult
	if cfg.DataDir != "" {
		wal, recov, err = persist.Open(cfg.DataDir, persist.DeriveKey(cfg.Key), st, persist.Options{
			Policy:       cfg.Fsync,
			Interval:     cfg.FsyncInterval,
			SegmentBytes: cfg.SegmentBytes,
			Stripes:      cfg.WALStripes,
			BatchDelay:   cfg.WALBatchDelay,
			BatchBytes:   cfg.WALBatchBytes,
			SyncLatency:  tel.walFsync,
		})
		if err != nil {
			return nil, err
		}
		st.SetJournal(wal)
	}
	var poolOpts []store.PoolOption
	if cfg.PoolWorkers != 0 {
		poolOpts = append(poolOpts, store.WithPoolWorkers(cfg.PoolWorkers))
	}
	if cfg.PoolInterval != 0 {
		poolOpts = append(poolOpts, store.WithPoolInterval(cfg.PoolInterval))
	}
	pool, err := st.NewAuditPool(poolOpts...)
	if err != nil {
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	if recov != nil {
		// Re-publish a report for every object that had one pre-crash, so
		// a client's first post-recovery Latest() is never emptier than its
		// last pre-crash one.
		for _, name := range recov.AuditedNames {
			if _, err := pool.AuditObject(name); err != nil {
				wal.Close()
				return nil, fmt.Errorf("server: re-audit %q after recovery: %w", name, err)
			}
		}
	}
	var eb [8]byte
	if _, err := rand.Read(eb[:]); err != nil {
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	queueCap := cfg.ShardQueue
	if queueCap <= 0 {
		queueCap = defaultShardQueue
	}
	return &Server{
		cfg:       cfg,
		st:        st,
		pool:      pool,
		wal:       wal,
		recov:     recov,
		epoch:     binary.BigEndian.Uint64(eb[:]),
		start:     time.Now(),
		conns:     make(map[*conn]struct{}),
		execs:     newExecs(n, queueCap),
		execMask:  uint64(n - 1),
		tel:       tel,
		shareLens: make(map[string]uint8),
	}, nil
}

// pinShareLen records the share width an object's first SHARE-WRITE of this
// boot declared and rejects later drift: two writers dispersing the same name
// with different (n, f) geometries would otherwise silently corrupt each
// other's packing. Returns the pinned width and whether want matches it. The
// name view aliases a pooled frame buffer, so the key is a stable copy.
func (s *Server) pinShareLen(name string, want uint8) (uint8, bool) {
	s.shareMu.RLock()
	got, ok := s.shareLens[name]
	s.shareMu.RUnlock()
	if ok {
		return got, got == want
	}
	s.shareMu.Lock()
	defer s.shareMu.Unlock()
	if got, ok := s.shareLens[name]; ok {
		return got, got == want
	}
	s.shareLens[strings.Clone(name)] = want
	return want, true
}

// Recovery returns what boot-time recovery reconstructed, nil when the
// server runs without a data dir.
func (s *Server) Recovery() *persist.RecoverResult { return s.recov }

// Snapshot compacts the write-ahead log (see persist.WAL.Snapshot); cmd/
// auditd triggers it on SIGHUP. It fails when the server has no data dir.
func (s *Server) Snapshot() (uint64, error) {
	if s.wal == nil {
		return 0, fmt.Errorf("server: no data dir configured")
	}
	return s.wal.Snapshot()
}

// Store returns the hosted store — the ground truth a test can audit
// locally.
func (s *Server) Store() *store.Store[uint64] { return s.st }

// Pool returns the shared audit pool.
func (s *Server) Pool() *store.AuditPool[uint64] { return s.pool }

// Addr returns the listener's address, nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe listens on addr ("host:port"; ":0" picks a free port) and
// serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve starts the audit pool and accepts connections on ln until Shutdown
// closes it. It always closes ln and returns nil after a Shutdown-initiated
// stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: Serve called twice")
	}
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	defer ln.Close()
	if err := s.pool.Start(); err != nil {
		return err
	}
	s.startExecs()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			// A spontaneous listener failure ends Serve without a
			// Shutdown: stop the pool here so its workers don't leak
			// (Stop and wal.Close are idempotent, so a later Shutdown is
			// still safe).
			s.pool.Stop()
			if s.wal != nil {
				s.wal.Close()
			}
			return err
		}
		c, err := newConn(s, nc)
		if err != nil {
			nc.Close()
			continue
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connsTotal.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Shutdown drains the server: stop accepting, let every connection finish
// the requests it has already received, flush pending responses, then stop
// the audit pool (final cursor state intact — a post-shutdown Flush on the
// pool still works). If ctx expires first, remaining connections are closed
// forcibly and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// Every conn reader is gone, so no goroutine can route another request:
	// the executor queues are safe to close and drain.
	s.stopExecs()
	s.pool.Stop()
	if s.wal != nil {
		// Last: every drained request has journaled by now. A clean close
		// seals the active segment, so the next boot finds no torn tail.
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// statPairs renders one coherent counter snapshot (see snapshotCounters) as
// the STATS verb's sorted pair list, with quantized per-stage latency
// summaries appended.
func (s *Server) statPairs(snap counterSnap) []wire.StatPair {
	pairs := []wire.StatPair{
		{Name: "announces", Value: snap.announces},
		{Name: "audits", Value: snap.audits},
		{Name: "conn-flushed-frames", Value: snap.connFlushFrames},
		{Name: "conn-flushes", Value: snap.connFlushes},
		{Name: "conns", Value: snap.connsTotal},
		{Name: "errors", Value: snap.errs},
		{Name: "frames-in", Value: snap.framesIn},
		{Name: "frames-out", Value: snap.framesOut},
		{Name: "objects", Value: snap.objects},
		{Name: "opens", Value: snap.opens},
		{Name: "pool-audits", Value: snap.poolAudits},
		{Name: "pool-sweeps", Value: snap.poolSweeps},
		{Name: "reads-fetched", Value: snap.readsFetched},
		{Name: "reads-silent", Value: snap.readsSilent},
		{Name: "stats-epoch", Value: snap.epoch},
		{Name: "uptime-ms", Value: snap.uptimeMs},
		{Name: "writes", Value: snap.writes},
	}
	// The cluster block: this node's identity and its share-path traffic. A
	// node id of 0 marks a standalone daemon; share counters stay zero until
	// a dispersing client targets the node.
	pairs = append(pairs,
		wire.StatPair{Name: "node-id", Value: uint64(s.cfg.NodeID)},
		wire.StatPair{Name: "share-writes", Value: snap.shareWrites},
		wire.StatPair{Name: "share-probes", Value: snap.shareProbes},
		wire.StatPair{Name: "share-fetches", Value: snap.shareFetch},
		wire.StatPair{Name: "share-silent", Value: snap.shareSilent},
		wire.StatPair{Name: "share-objects", Value: snap.shareObjects},
		wire.StatPair{Name: "share-corrupts-served", Value: snap.shareCorrupt},
	)
	// Shard-executor occupancy: enqueues/sheds are cumulative, depth is the
	// instantaneous total queue occupancy across shards — nonzero sheds with
	// bounded depth is what admission control looks like under overload.
	pairs = append(pairs,
		wire.StatPair{Name: "shards", Value: uint64(len(s.execs))},
		wire.StatPair{Name: "shard-queue-cap", Value: uint64(cap(s.execs[0].queue))},
		wire.StatPair{Name: "shard-enqueues", Value: snap.shardEnqueues},
		wire.StatPair{Name: "shard-sheds", Value: snap.shardSheds},
		wire.StatPair{Name: "shard-depth", Value: snap.shardDepth},
	)
	if ws := snap.wal; ws != nil {
		pairs = append(pairs,
			wire.StatPair{Name: "wal-records", Value: ws.Records},
			wire.StatPair{Name: "wal-batches", Value: ws.Batches},
			wire.StatPair{Name: "wal-syncs", Value: ws.Syncs},
			wire.StatPair{Name: "wal-rotations", Value: ws.Rotations},
			wire.StatPair{Name: "wal-snapshots", Value: ws.Snapshots},
			wire.StatPair{Name: "wal-bytes", Value: ws.Bytes},
		)
		// The group-commit batch-size histogram: records per fsync, in
		// power-of-two buckets (the last collects everything larger). This
		// is what makes the batching claim observable: syncs piling into
		// the upper buckets, not a ratio inferred after the fact.
		for i, n := range ws.SyncHist {
			name := fmt.Sprintf("wal-sync-batch-le-%d", 1<<i)
			if i == len(ws.SyncHist)-1 {
				name = fmt.Sprintf("wal-sync-batch-gt-%d", 1<<(i-1))
			}
			pairs = append(pairs, wire.StatPair{Name: name, Value: n})
		}
	}
	// Per-stage latency summaries: quantized bucket upper bounds, the same
	// numbers the metrics endpoint serves — aggregate-only by construction.
	for _, st := range s.tel.reg.Snapshot() {
		pairs = append(pairs,
			wire.StatPair{Name: "stage-" + st.Name + "-p50-ns", Value: st.Quantile(0.50)},
			wire.StatPair{Name: "stage-" + st.Name + "-p99-ns", Value: st.Quantile(0.99)},
			wire.StatPair{Name: "stage-" + st.Name + "-max-ns", Value: st.Max()},
			wire.StatPair{Name: "stage-" + st.Name + "-count", Value: st.Count},
		)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name })
	return pairs
}

// The wire kind bytes coincide with store.Kind by construction, so kind
// conversion is the identity plus wire.RemotableKind; these compile-time
// assertions pin the correspondence (they fail to compile if either side
// renumbers).
var (
	_ = [1]struct{}{}[store.Register-store.Kind(wire.KindRegister)]
	_ = [1]struct{}{}[store.MaxRegister-store.Kind(wire.KindMaxRegister)]
)

// kindFromWire maps a wire kind byte to the store kind, reporting whether it
// is remotable.
func kindFromWire(k uint8) (store.Kind, bool) {
	return store.Kind(k), wire.RemotableKind(k)
}

// kindToWire maps a store kind to its wire byte; Snapshot has none.
func kindToWire(k store.Kind) (uint8, bool) {
	return uint8(k), wire.RemotableKind(uint8(k))
}

// errCode classifies a store error for the wire.
func errCode(err error) wire.ErrCode {
	switch {
	case errors.Is(err, store.ErrNotFound):
		return wire.CodeNotFound
	case errors.Is(err, store.ErrKindMismatch):
		return wire.CodeKindMismatch
	default:
		return wire.CodeInternal
	}
}
