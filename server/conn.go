package server

import (
	"crypto/rand"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"auditreg/internal/shard"
	"auditreg/internal/telem"
	"auditreg/store"
	"auditreg/wire"
)

// connIOBuf sizes the per-connection read buffer; connQueue bounds the
// response queue between the reader and writer goroutines (the dispatcher
// blocks when the writer falls this far behind — backpressure, not
// unbounded buffering).
const (
	connIOBuf = 32 << 10
	connQueue = 256
)

// conn is one accepted connection: a reader goroutine decoding request
// frames and routing them to the server's shard executors by object-name
// hash, a writer goroutine coalescing response frames into scatter-gather
// flushes, and the connection's session secret (the seed of every ValueMask
// pad applied on it).
//
// The request path is allocation-free at steady state: request bodies are
// copied into pooled frame buffers for the executor hop (hot verbs decode in
// place via DecodeView — their name strings alias that buffer and die with
// the execute), responses are encoded into pooled frame buffers that the
// writer recycles right after the writev. See DESIGN.md, "Wire hot path",
// for the ownership rules.
type conn struct {
	srv     *Server
	nc      net.Conn
	session [wire.SessionLen]byte
	tslot   uint64 // telemetry stripe slot for conn-side histograms
	writec  chan *wire.Buf
	wdone   chan struct{}    // closed by writeLoop after its final flush
	donec   chan pendingResp // execute → completion: responses awaiting a durability verdict
	cdone   chan struct{}    // closed by completionLoop when drained

	// inflight counts requests routed to executors and not yet executed;
	// the reader waits for it to drain before closing donec, so every
	// executor-side send lands in a live channel.
	inflight sync.WaitGroup
}

// pendingResp is one encoded response whose request's durability commit is
// still outstanding: the completion goroutine collects the verdict and only
// then releases the frame to the writer — so a shard executor never parks on
// an fsync, and every mutation in flight on the connection rides its
// stripe's group commit.
type pendingResp struct {
	id     uint64
	buf    *wire.Buf
	commit func() error
	enq    int64 // telem.Now() at hand-off to the completion stage
}

func newConn(s *Server, nc net.Conn) (*conn, error) {
	c := &conn{
		srv:    s,
		nc:     nc,
		tslot:  s.connSeq.Add(1),
		writec: make(chan *wire.Buf, connQueue),
		wdone:  make(chan struct{}),
		donec:  make(chan pendingResp, connQueue),
		cdone:  make(chan struct{}),
	}
	if _, err := rand.Read(c.session[:]); err != nil {
		return nil, err
	}
	return c, nil
}

// beginDrain kicks the reader off its blocking socket read; the frame
// scanner will yield the complete frames already buffered, then surface the
// deadline error, and the completion and writer stages flush and close.
func (c *conn) beginDrain() {
	c.nc.SetReadDeadline(time.Now())
}

// serve runs the connection to completion: it returns when the peer closed,
// a protocol error occurred, or a drain finished, with all pending responses
// flushed. The drain guarantee rides on the scanner: Next always drains
// buffered complete frames before surfacing a socket error, so every request
// that had fully arrived when the drain began is still executed.
func (c *conn) serve() {
	go c.writeLoop()
	go c.completionLoop()
	sc := wire.NewFrameScanner(c.nc, connIOBuf)
	for {
		f, err := sc.Next()
		if err != nil {
			break
		}
		// conn-decode covers the reader-side work per frame: peek, hash,
		// pooled body copy, enqueue (or the inline execute of no-name
		// verbs) — not the blocking socket read above it.
		t0 := telem.Now()
		c.route(f)
		c.srv.tel.connDecode.Observe(c.tslot, telem.Now()-t0)
	}
	// Every routed request must have executed (and so delivered its response
	// into donec or writec) before donec closes; the executors keep running —
	// Shutdown stops them only after every conn is gone.
	c.inflight.Wait()
	close(c.donec)
	<-c.cdone // every pending durability verdict collected
	close(c.writec)
	// Join the writer: serve() returning is what Shutdown waits on, and
	// the drain guarantee is that every queued response has been flushed
	// by then.
	<-c.wdone
}

// completionLoop collects durability verdicts in arrival order and releases
// the finished responses to the writer. A failed commit turns the
// already-encoded success response back into an error frame: the mutation
// took effect in memory, but its durability was never acknowledged.
// Non-durable responses bypass this stage entirely (execute sends them
// straight to the writer), so a silent read is never queued behind an
// fsync.
func (c *conn) completionLoop() {
	defer close(c.cdone)
	for pr := range c.donec {
		t0 := telem.Now()
		err := pr.commit()
		c.srv.tel.walCommit.Observe(c.tslot, telem.Now()-t0)
		if err != nil {
			b, verb := storeErr(wire.BeginFrame(pr.buf.B[:0]), err)
			if e := wire.EndFrame(b, 0, pr.id, verb); e != nil {
				b = wire.BeginFrame(pr.buf.B[:0])
				b, verb = errBody(b, wire.CodeInternal, "durability verdict lost")
				wire.EndFrame(b, 0, pr.id, verb)
			}
			pr.buf.B = b
			c.srv.errs.Add(1)
		}
		c.emit(pr.buf)
		// Total completion-stage residence: queue dwell + durability wait +
		// emit. wal-commit-wait above isolates the durability share.
		c.srv.tel.completion.Observe(c.tslot, telem.Now()-pr.enq)
	}
}

// emit taps and queues one finished response frame.
func (c *conn) emit(out *wire.Buf) {
	c.srv.framesOut.Add(1)
	if c.srv.cfg.FrameTap != nil {
		// The tap observes the pooled frame in place; taps copy what they
		// keep (test instrumentation — see Config.FrameTap).
		c.srv.cfg.FrameTap(true, out.B)
	}
	c.writec <- out
}

// writeLoop coalesces queued response frames into one scatter-gather flush
// per wakeup — a single writev however many frames are pending — recycles
// their buffers, and closes the socket once the reader is done.
func (c *conn) writeLoop() {
	defer close(c.wdone)
	var pend []*wire.Buf
	var fl wire.Flusher
	for b := range c.writec {
		pend = append(pend[:0], b)
	collect:
		for {
			select {
			case more, ok := <-c.writec:
				if !ok {
					break collect
				}
				pend = append(pend, more)
			default:
				break collect
			}
		}
		t0 := telem.Now()
		err := fl.Flush(c.nc, pend)
		c.srv.tel.connFlush.Observe(c.tslot, telem.Now()-t0)
		c.srv.connFlushes.Add(1)
		c.srv.connFlushFrames.Add(uint64(len(pend)))
		if err != nil {
			// Broken socket: keep recycling queued responses so the reader
			// never blocks on a full queue, until it closes the channel.
			for b := range c.writec {
				wire.PutBuf(b)
			}
			break
		}
	}
	c.nc.Close()
}

// route hands one request frame to the shard executor its object name
// hashes to — the same FNV-1a hash the store's shard map and the WAL's
// stripe map use, so one object means one executor means one WAL stripe.
// The frame body is a view into the connection's read buffer, reused for the
// next frame, so the executor hop gets a pooled copy. When the executor's
// queue is at its high watermark the request is shed with CodeBusy instead
// of queued: under saturation queueing delay stays bounded and the client
// retries with backoff. Requests that carry no object name (STATS, unknown
// verbs, bodies too short to hold a name) execute inline on the reader —
// they touch no per-object state, so they need no serialization.
func (c *conn) route(f wire.Frame) {
	s := c.srv
	s.framesIn.Add(1)
	if s.cfg.FrameTap != nil {
		s.cfg.FrameTap(false, wire.AppendFrame(nil, f.ID, f.Verb, f.Body))
	}
	switch f.Verb {
	case wire.VerbOpen, wire.VerbWrite, wire.VerbReadFetch, wire.VerbReadAnnounce, wire.VerbAudit,
		wire.VerbShareWrite, wire.VerbShareFetch:
		name, ok := peekName(f.Body)
		if !ok {
			break // malformed: the handler's decoder produces the error
		}
		e := s.execs[shard.HashBytes(name)&s.execMask]
		in := wire.GetBuf(len(f.Body))
		in.B = append(in.B[:0], f.Body...)
		c.inflight.Add(1)
		select {
		case e.queue <- shardReq{c: c, id: f.ID, verb: f.Verb, buf: in, enq: telem.Now()}:
			e.enqueues.Add(1)
		default:
			c.inflight.Done()
			wire.PutBuf(in)
			e.sheds.Add(1)
			c.shed(f.ID)
		}
		return
	}
	c.execute(f.ID, f.Verb, f.Body)
}

// shed answers a request the admission control refused: a CodeBusy error
// frame, emitted straight from the reader. The client maps it to
// wire.ErrBusy and retries with jittered backoff.
func (c *conn) shed(id uint64) {
	out := wire.GetBuf(64)
	b, verb := errBody(wire.BeginFrame(out.B[:0]), wire.CodeBusy, "shard queue full")
	if err := wire.EndFrame(b, 0, id, verb); err != nil {
		panic(fmt.Sprintf("server: busy frame does not fit a frame: %v", err))
	}
	out.B = b
	c.srv.errs.Add(1)
	c.emit(out)
}

// execute runs one request and queues its response; it runs on the shard
// executor the request's object hashes to (inline on the reader for the few
// verbs without a name). The body is owned by the caller; every handler is
// done with it when execute returns. Same-shard mutations execute in queue
// order, but their durability wait — when the WAL has one — is handed to
// the conn's completion goroutine, so the executor moves on immediately and
// the stripe's group commit absorbs everything in flight on the shard.
func (c *conn) execute(id uint64, verb wire.Verb, body []byte) {
	s := c.srv
	// Size the response buffer by verb so big cold-path responses draw from
	// the arena class they will be recycled into, instead of growing a
	// small-class buffer through reallocations.
	hint := 256
	if verb == wire.VerbAudit || verb == wire.VerbStats {
		hint = 4 << 10
	}
	out := wire.GetBuf(hint)
	b := wire.BeginFrame(out.B[:0])
	var rverb wire.Verb
	var commit func() error
	switch verb {
	case wire.VerbOpen:
		b, rverb = c.handleOpen(body, b)
	case wire.VerbWrite:
		b, rverb, commit = c.handleWrite(body, b)
	case wire.VerbReadFetch:
		b, rverb, commit = c.handleReadFetch(body, b)
	case wire.VerbReadAnnounce:
		b, rverb = c.handleAnnounce(body, b)
	case wire.VerbAudit:
		b, rverb = c.handleAudit(body, b)
	case wire.VerbStats:
		b, rverb = c.handleStats(body, b)
	case wire.VerbShareWrite:
		b, rverb, commit = c.handleShareWrite(body, b)
	case wire.VerbShareFetch:
		b, rverb, commit = c.handleShareFetch(body, b)
	default:
		b, rverb = errBody(b, wire.CodeBadRequest, fmt.Sprintf("unknown verb %d", uint8(verb)))
	}
	if err := wire.EndFrame(b, 0, id, rverb); err != nil {
		// The response outgrew the protocol (handlers guard against this;
		// belt and braces): replace it with a bounded error frame.
		b = wire.BeginFrame(b[:0])
		b, rverb = errBody(b, wire.CodeTooLarge, err.Error())
		if err := wire.EndFrame(b, 0, id, rverb); err != nil {
			panic(fmt.Sprintf("server: error frame does not fit a frame: %v", err))
		}
	}
	if rverb == wire.VerbErr {
		s.errs.Add(1)
	}
	out.B = b
	if commit != nil {
		c.donec <- pendingResp{id: id, buf: out, commit: commit, enq: telem.Now()}
		return
	}
	c.emit(out)
}

// errBody appends an ErrResp body onto dst, truncating the message to what
// the protocol allows clients to accept.
func errBody(dst []byte, code wire.ErrCode, msg string) ([]byte, wire.Verb) {
	if len(msg) > wire.MaxErrMsg {
		msg = msg[:wire.MaxErrMsg]
	}
	e := wire.ErrResp{Code: code, Msg: msg}
	return e.Append(dst), wire.VerbErr
}

// storeErr appends an ErrResp body for a store error onto dst.
func storeErr(dst []byte, err error) ([]byte, wire.Verb) {
	return errBody(dst, errCode(err), err.Error())
}

func (c *conn) handleOpen(body, dst []byte) ([]byte, wire.Verb) {
	// Open retains the name (the store registers the object under it), so it
	// uses the copying decoder, not a view.
	var req wire.OpenReq
	if err := req.Decode(body); err != nil {
		return errBody(dst, wire.CodeBadRequest, err.Error())
	}
	kind, ok := kindFromWire(req.Kind)
	if !ok {
		return errBody(dst, wire.CodeUnsupported, fmt.Sprintf("kind %d is not remotable", req.Kind))
	}
	// Check the node assertion before touching the store: a misrouted open
	// must not create the object on the wrong daemon.
	if req.Node != 0 && req.Node != c.srv.cfg.NodeID {
		return errBody(dst, wire.CodeNodeMismatch, fmt.Sprintf("open %q: client expects node %d, this daemon is node %d", req.Name, req.Node, c.srv.cfg.NodeID))
	}
	var openOpts []store.OpenOption
	if req.Capacity != 0 {
		openOpts = append(openOpts, store.WithObjectCapacity(int(req.Capacity)))
	}
	obj, err := c.srv.st.Open(req.Name, kind, openOpts...)
	if err != nil {
		return storeErr(dst, err)
	}
	c.srv.opens.Add(1)
	wk, _ := kindToWire(obj.Kind())
	resp := wire.OpenResp{Kind: wk, Readers: uint8(obj.Readers()), Epoch: c.srv.epoch, Session: c.session, Node: c.srv.cfg.NodeID}
	return resp.Append(dst), wire.VerbOpen
}

func (c *conn) handleWrite(body, dst []byte) ([]byte, wire.Verb, func() error) {
	var req wire.WriteReq
	if err := req.DecodeView(body); err != nil {
		b, v := errBody(dst, wire.CodeBadRequest, err.Error())
		return b, v, nil
	}
	obj, ok := c.srv.st.Lookup(req.Name)
	if !ok {
		b, v := errBody(dst, wire.CodeNotFound, fmt.Sprintf("write %q: object not found", req.Name))
		return b, v, nil
	}
	commit, err := obj.WriteAsync(req.Value)
	if err != nil {
		b, v := storeErr(dst, err)
		return b, v, nil
	}
	c.srv.writes.Add(1)
	return dst, wire.VerbWrite, commit
}

func (c *conn) handleReadFetch(body, dst []byte) ([]byte, wire.Verb, func() error) {
	var req wire.ReadFetchReq
	if err := req.DecodeView(body); err != nil {
		b, v := errBody(dst, wire.CodeBadRequest, err.Error())
		return b, v, nil
	}
	if int(req.Reader) >= c.srv.st.Readers() {
		b, v := errBody(dst, wire.CodeBadRequest, fmt.Sprintf("read-fetch %q: reader %d out of range [0, %d)", req.Name, req.Reader, c.srv.st.Readers()))
		return b, v, nil
	}
	obj, ok := c.srv.st.Lookup(req.Name)
	if !ok {
		b, v := errBody(dst, wire.CodeNotFound, fmt.Sprintf("read-fetch %q: object not found", req.Name))
		return b, v, nil
	}
	// The fetch record is appended before ReadFetchAsync returns; the
	// completion stage withholds the response until the record is stable,
	// so an acknowledged effective read is still always durable.
	val, seq, fetched, commit, err := obj.ReadFetchAsync(int(req.Reader))
	if err != nil {
		b, v := storeErr(dst, err)
		return b, v, nil
	}
	if fetched {
		c.srv.readsFetched.Add(1)
	} else {
		c.srv.readsSilent.Add(1)
	}
	if c.srv.cfg.LeakyPerObjectReads {
		c.srv.recordLeakyRead(req.Name)
	}
	resp := wire.ReadFetchResp{Fetched: fetched, Seq: seq}
	if seq != req.PrevSeq {
		// The client's cache is stale: ship the value, masked under this
		// connection's session pad; the client unmasks locally.
		resp.Value = val ^ wire.ValueMask(c.session, req.Name, req.Reader, seq)
	}
	return resp.Append(dst), wire.VerbReadFetch, commit
}

func (c *conn) handleAnnounce(body, dst []byte) ([]byte, wire.Verb) {
	var req wire.AnnounceReq
	if err := req.DecodeView(body); err != nil {
		return errBody(dst, wire.CodeBadRequest, err.Error())
	}
	if int(req.Reader) >= c.srv.st.Readers() {
		return errBody(dst, wire.CodeBadRequest, fmt.Sprintf("announce %q: reader %d out of range [0, %d)", req.Name, req.Reader, c.srv.st.Readers()))
	}
	obj, ok := c.srv.st.Lookup(req.Name)
	if !ok {
		return errBody(dst, wire.CodeNotFound, fmt.Sprintf("announce %q: object not found", req.Name))
	}
	if err := obj.Announce(int(req.Reader), req.Seq); err != nil {
		return storeErr(dst, err)
	}
	c.srv.announces.Add(1)
	return dst, wire.VerbReadAnnounce
}

func (c *conn) handleAudit(body, dst []byte) ([]byte, wire.Verb) {
	// Cold path; the audit pool may retain the name in its cursors, so use
	// the copying decoder.
	var req wire.AuditReq
	if err := req.Decode(body); err != nil {
		return errBody(dst, wire.CodeBadRequest, err.Error())
	}
	var aud store.ObjectAudit[uint64]
	if req.Fresh {
		var err error
		aud, err = c.srv.pool.AuditObject(req.Name)
		if err != nil {
			return storeErr(dst, err)
		}
	} else {
		var ok bool
		aud, ok = c.srv.pool.Report(req.Name)
		if !ok {
			var err error
			aud, err = c.srv.pool.AuditObject(req.Name)
			if err != nil {
				return storeErr(dst, err)
			}
		}
	}
	wk, ok := kindToWire(aud.Kind)
	if !ok {
		return errBody(dst, wire.CodeUnsupported, fmt.Sprintf("audit %q: %v objects are not remotable", req.Name, aud.Kind))
	}
	rows := auditRows(aud)
	if len(rows) > wire.MaxAuditRows {
		return errBody(dst, wire.CodeTooLarge, fmt.Sprintf("audit %q: %d rows exceed the frame limit", req.Name, len(rows)))
	}
	resp := wire.AuditResp{Kind: wk, Rows: rows}
	if _, err := rand.Read(resp.Nonce[:]); err != nil {
		return errBody(dst, wire.CodeInternal, err.Error())
	}
	// Mask every row's reader set under a fresh audit pad; only auditor
	// clients — key holders — can unmask. No decrypted reader set is ever
	// placed in a frame.
	for i := range resp.Rows {
		resp.Rows[i].Readers ^= wire.AuditMask(c.srv.cfg.Key, resp.Nonce, i)
	}
	c.srv.audits.Add(1)
	return resp.Append(dst), wire.VerbAudit
}

func (c *conn) handleStats(body, dst []byte) ([]byte, wire.Verb) {
	var req wire.StatsReq
	if err := req.Decode(body); err != nil {
		return errBody(dst, wire.CodeBadRequest, err.Error())
	}
	snap := c.srv.snapshotCounters()
	resp := wire.StatsResp{
		GoVersion:  runtime.Version(),
		GoMaxProcs: uint32(runtime.GOMAXPROCS(0)),
		UptimeMs:   snap.uptimeMs,
		StatsEpoch: snap.epoch,
		Pairs:      c.srv.statPairs(snap),
	}
	return resp.Append(dst), wire.VerbStats
}

// handleShareWrite installs one node's slice of a dispersed write (see the
// wire package's SHARE-WRITE documentation): a writeMax of the packed
// (wid, masked share) value, journaled through the WAL like any write. Wid 0
// is the wid-sync probe — a pure query of the resident write id through the
// store's unaudited Peek, no write, no journal record.
func (c *conn) handleShareWrite(body, dst []byte) ([]byte, wire.Verb, func() error) {
	var req wire.ShareWriteReq
	if err := req.DecodeView(body); err != nil {
		b, v := errBody(dst, wire.CodeBadRequest, err.Error())
		return b, v, nil
	}
	if req.ShareLen < 1 || req.ShareLen > wire.MaxShareLen {
		b, v := errBody(dst, wire.CodeBadRequest, fmt.Sprintf("share-write %q: share-len %d out of range [1, %d]", req.Name, req.ShareLen, wire.MaxShareLen))
		return b, v, nil
	}
	shareBits := 8 * uint(req.ShareLen)
	if req.Share>>shareBits != 0 {
		b, v := errBody(dst, wire.CodeBadRequest, fmt.Sprintf("share-write %q: share wider than %d bytes", req.Name, req.ShareLen))
		return b, v, nil
	}
	if req.Wid>>(64-shareBits) != 0 {
		b, v := errBody(dst, wire.CodeBadRequest, fmt.Sprintf("share-write %q: wid %d overflows the packing", req.Name, req.Wid))
		return b, v, nil
	}
	obj, ok := c.srv.st.Lookup(req.Name)
	if !ok {
		b, v := errBody(dst, wire.CodeNotFound, fmt.Sprintf("share-write %q: object not found", req.Name))
		return b, v, nil
	}
	if obj.Kind() != store.MaxRegister {
		b, v := errBody(dst, wire.CodeShareMode, fmt.Sprintf("share-write %q: share objects are max registers, not %v", req.Name, obj.Kind()))
		return b, v, nil
	}
	if prev, ok := c.srv.pinShareLen(req.Name, req.ShareLen); !ok {
		b, v := errBody(dst, wire.CodeShareMode, fmt.Sprintf("share-write %q: share-len %d conflicts with the object's pinned %d", req.Name, req.ShareLen, prev))
		return b, v, nil
	}
	var commit func() error
	if req.Wid == 0 {
		c.srv.shareProbes.Add(1)
	} else {
		var err error
		commit, err = obj.WriteAsync(req.Wid<<shareBits | req.Share)
		if err != nil {
			b, v := storeErr(dst, err)
			return b, v, nil
		}
		c.srv.shareWrites.Add(1)
	}
	cur, err := obj.Peek()
	if err != nil {
		b, v := storeErr(dst, err)
		return b, v, nil
	}
	resp := wire.ShareWriteResp{Wid: cur >> shareBits}
	return resp.Append(dst), wire.VerbShareWrite, commit
}

// handleShareFetch is handleReadFetch over a share object: the same
// silent-read check, fetch&xor, journal append, and ValueMask masking — the
// packed value is what crosses the wire, the cluster layer unpacks and
// unmasks the share bits. The response echoes the node id so a dispersing
// client can reject a misrouted connection's shares.
func (c *conn) handleShareFetch(body, dst []byte) ([]byte, wire.Verb, func() error) {
	var req wire.ShareFetchReq
	if err := req.DecodeView(body); err != nil {
		b, v := errBody(dst, wire.CodeBadRequest, err.Error())
		return b, v, nil
	}
	if int(req.Reader) >= c.srv.st.Readers() {
		b, v := errBody(dst, wire.CodeBadRequest, fmt.Sprintf("share-fetch %q: reader %d out of range [0, %d)", req.Name, req.Reader, c.srv.st.Readers()))
		return b, v, nil
	}
	obj, ok := c.srv.st.Lookup(req.Name)
	if !ok {
		b, v := errBody(dst, wire.CodeNotFound, fmt.Sprintf("share-fetch %q: object not found", req.Name))
		return b, v, nil
	}
	if obj.Kind() != store.MaxRegister {
		b, v := errBody(dst, wire.CodeShareMode, fmt.Sprintf("share-fetch %q: share objects are max registers, not %v", req.Name, obj.Kind()))
		return b, v, nil
	}
	val, seq, fetched, commit, err := obj.ReadFetchAsync(int(req.Reader))
	if err != nil {
		b, v := storeErr(dst, err)
		return b, v, nil
	}
	if fetched {
		c.srv.shareFetch.Add(1)
	} else {
		c.srv.shareSilent.Add(1)
	}
	if c.srv.cfg.LeakyPerObjectReads {
		c.srv.recordLeakyRead(req.Name)
	}
	resp := wire.ShareFetchResp{Fetched: fetched, Seq: seq, Node: c.srv.cfg.NodeID}
	if seq != req.PrevSeq {
		resp.Value = val ^ wire.ValueMask(c.session, req.Name, req.Reader, seq)
		if c.srv.cfg.CorruptShares {
			// Byzantine test hook: flip the low bit of the packed value on
			// the wire. The low bits are the share (the wid rides the high
			// bits), so the corrupted share stays a plausible field element
			// at the advertised wid — the hardest wire corruption for a
			// client to detect short of verified reconstruction. The journal
			// keeps the honest value; only the serving path lies.
			resp.Value ^= 1
			c.srv.shareCorrupt.Add(1)
		}
	}
	return resp.Append(dst), wire.VerbShareFetch, commit
}

// auditRows flattens a report into one row per distinct value, readers as an
// m-bit bitmask, in first-appearance order.
func auditRows(aud store.ObjectAudit[uint64]) []wire.AuditRow {
	entries := aud.Report.Entries()
	rowOf := make(map[uint64]int, len(entries))
	rows := make([]wire.AuditRow, 0, len(entries))
	for _, e := range entries {
		i, ok := rowOf[e.Value]
		if !ok {
			i = len(rows)
			rowOf[e.Value] = i
			rows = append(rows, wire.AuditRow{Value: e.Value})
		}
		rows[i].Readers |= uint64(1) << uint(e.Reader)
	}
	return rows
}
