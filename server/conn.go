package server

import (
	"bufio"
	"crypto/rand"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"auditreg/store"
	"auditreg/wire"
)

// connIOBuf sizes the per-connection read and write buffers; connQueue the
// response queue between the reader and writer goroutines.
const (
	connIOBuf = 32 << 10
	connQueue = 256
)

// conn is one accepted connection: a reader goroutine decoding and executing
// request frames in order, a writer goroutine batching response frames, and
// the connection's session secret (the seed of every ValueMask pad applied
// on it).
type conn struct {
	srv      *Server
	nc       net.Conn
	session  [wire.SessionLen]byte
	writec   chan []byte
	wdone    chan struct{} // closed by writeLoop after its final flush
	draining atomic.Bool
}

func newConn(s *Server, nc net.Conn) (*conn, error) {
	c := &conn{srv: s, nc: nc, writec: make(chan []byte, connQueue), wdone: make(chan struct{})}
	if _, err := rand.Read(c.session[:]); err != nil {
		return nil, err
	}
	return c, nil
}

// beginDrain kicks the reader off its blocking socket read; it will execute
// whatever complete frames are already buffered, then let the writer flush
// and close.
func (c *conn) beginDrain() {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now())
}

// serve runs the connection to completion: it returns when the peer closed,
// a protocol error occurred, or a drain finished, with all pending responses
// flushed.
func (c *conn) serve() {
	go c.writeLoop()
	br := bufio.NewReaderSize(c.nc, connIOBuf)
	for !c.draining.Load() {
		f, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		c.dispatch(f)
	}
	// Drain: execute the complete frames that were already buffered when
	// the reader was kicked off the socket.
	if c.draining.Load() {
		buf, _ := br.Peek(br.Buffered())
		for {
			f, rest, err := wire.ParseFrame(buf)
			if err != nil {
				break
			}
			buf = rest
			c.dispatch(f)
		}
	}
	close(c.writec) // reader is the sole sender
	// Join the writer: serve() returning is what Shutdown waits on, and
	// the drain guarantee is that every queued response has been flushed
	// by then.
	<-c.wdone
}

// writeLoop batches response frames into one buffered writer, flushing
// whenever the queue runs dry, and closes the socket once the reader is
// done.
func (c *conn) writeLoop() {
	defer close(c.wdone)
	bw := bufio.NewWriterSize(c.nc, connIOBuf)
	for frame := range c.writec {
		bw.Write(frame)
		if len(c.writec) == 0 {
			bw.Flush()
		}
	}
	bw.Flush()
	c.nc.Close()
}

// dispatch executes one request frame and queues its response.
func (c *conn) dispatch(f wire.Frame) {
	s := c.srv
	s.framesIn.Add(1)
	if s.cfg.FrameTap != nil {
		s.cfg.FrameTap(false, wire.AppendFrame(nil, f.ID, f.Verb, f.Body))
	}
	var body []byte
	verb := f.Verb
	switch f.Verb {
	case wire.VerbOpen:
		body, verb = c.handleOpen(f.Body)
	case wire.VerbWrite:
		body, verb = c.handleWrite(f.Body)
	case wire.VerbReadFetch:
		body, verb = c.handleReadFetch(f.Body)
	case wire.VerbReadAnnounce:
		body, verb = c.handleAnnounce(f.Body)
	case wire.VerbAudit:
		body, verb = c.handleAudit(f.Body)
	case wire.VerbStats:
		body, verb = c.handleStats(f.Body)
	default:
		body, verb = errBody(wire.CodeBadRequest, fmt.Sprintf("unknown verb %d", uint8(f.Verb)))
	}
	if verb == wire.VerbErr {
		s.errs.Add(1)
	}
	frame := wire.AppendFrame(nil, f.ID, verb, body)
	s.framesOut.Add(1)
	if s.cfg.FrameTap != nil {
		s.cfg.FrameTap(true, frame)
	}
	c.writec <- frame
}

// errBody builds an ErrResp body, truncating the message to what the
// protocol allows clients to accept.
func errBody(code wire.ErrCode, msg string) ([]byte, wire.Verb) {
	if len(msg) > wire.MaxErrMsg {
		msg = msg[:wire.MaxErrMsg]
	}
	e := wire.ErrResp{Code: code, Msg: msg}
	return e.Append(nil), wire.VerbErr
}

// storeErr maps a store error to an ErrResp body.
func storeErr(err error) ([]byte, wire.Verb) {
	return errBody(errCode(err), err.Error())
}

func (c *conn) handleOpen(body []byte) ([]byte, wire.Verb) {
	var req wire.OpenReq
	if err := req.Decode(body); err != nil {
		return errBody(wire.CodeBadRequest, err.Error())
	}
	kind, ok := kindFromWire(req.Kind)
	if !ok {
		return errBody(wire.CodeUnsupported, fmt.Sprintf("kind %d is not remotable", req.Kind))
	}
	var openOpts []store.OpenOption
	if req.Capacity != 0 {
		openOpts = append(openOpts, store.WithObjectCapacity(int(req.Capacity)))
	}
	obj, err := c.srv.st.Open(req.Name, kind, openOpts...)
	if err != nil {
		return storeErr(err)
	}
	c.srv.opens.Add(1)
	wk, _ := kindToWire(obj.Kind())
	resp := wire.OpenResp{Kind: wk, Readers: uint8(obj.Readers()), Epoch: c.srv.epoch, Session: c.session}
	return resp.Append(nil), wire.VerbOpen
}

func (c *conn) handleWrite(body []byte) ([]byte, wire.Verb) {
	var req wire.WriteReq
	if err := req.Decode(body); err != nil {
		return errBody(wire.CodeBadRequest, err.Error())
	}
	if err := c.srv.st.Write(req.Name, req.Value); err != nil {
		return storeErr(err)
	}
	c.srv.writes.Add(1)
	return nil, wire.VerbWrite
}

func (c *conn) handleReadFetch(body []byte) ([]byte, wire.Verb) {
	var req wire.ReadFetchReq
	if err := req.Decode(body); err != nil {
		return errBody(wire.CodeBadRequest, err.Error())
	}
	if int(req.Reader) >= c.srv.st.Readers() {
		return errBody(wire.CodeBadRequest, fmt.Sprintf("read-fetch %q: reader %d out of range [0, %d)", req.Name, req.Reader, c.srv.st.Readers()))
	}
	obj, ok := c.srv.st.Lookup(req.Name)
	if !ok {
		return errBody(wire.CodeNotFound, fmt.Sprintf("read-fetch %q: object not found", req.Name))
	}
	val, seq, fetched, err := obj.ReadFetch(int(req.Reader))
	if err != nil {
		return storeErr(err)
	}
	if fetched {
		c.srv.readsFetched.Add(1)
	} else {
		c.srv.readsSilent.Add(1)
	}
	resp := wire.ReadFetchResp{Fetched: fetched, Seq: seq}
	if seq != req.PrevSeq {
		// The client's cache is stale: ship the value, masked under this
		// connection's session pad; the client unmasks locally.
		resp.Value = val ^ wire.ValueMask(c.session, req.Name, req.Reader, seq)
	}
	return resp.Append(nil), wire.VerbReadFetch
}

func (c *conn) handleAnnounce(body []byte) ([]byte, wire.Verb) {
	var req wire.AnnounceReq
	if err := req.Decode(body); err != nil {
		return errBody(wire.CodeBadRequest, err.Error())
	}
	if int(req.Reader) >= c.srv.st.Readers() {
		return errBody(wire.CodeBadRequest, fmt.Sprintf("announce %q: reader %d out of range [0, %d)", req.Name, req.Reader, c.srv.st.Readers()))
	}
	obj, ok := c.srv.st.Lookup(req.Name)
	if !ok {
		return errBody(wire.CodeNotFound, fmt.Sprintf("announce %q: object not found", req.Name))
	}
	if err := obj.Announce(int(req.Reader), req.Seq); err != nil {
		return storeErr(err)
	}
	c.srv.announces.Add(1)
	return nil, wire.VerbReadAnnounce
}

func (c *conn) handleAudit(body []byte) ([]byte, wire.Verb) {
	var req wire.AuditReq
	if err := req.Decode(body); err != nil {
		return errBody(wire.CodeBadRequest, err.Error())
	}
	var aud store.ObjectAudit[uint64]
	if req.Fresh {
		var err error
		aud, err = c.srv.pool.AuditObject(req.Name)
		if err != nil {
			return storeErr(err)
		}
	} else {
		var ok bool
		aud, ok = c.srv.pool.Report(req.Name)
		if !ok {
			var err error
			aud, err = c.srv.pool.AuditObject(req.Name)
			if err != nil {
				return storeErr(err)
			}
		}
	}
	wk, ok := kindToWire(aud.Kind)
	if !ok {
		return errBody(wire.CodeUnsupported, fmt.Sprintf("audit %q: %v objects are not remotable", req.Name, aud.Kind))
	}
	rows := auditRows(aud)
	if len(rows) > wire.MaxAuditRows {
		return errBody(wire.CodeTooLarge, fmt.Sprintf("audit %q: %d rows exceed the frame limit", req.Name, len(rows)))
	}
	resp := wire.AuditResp{Kind: wk, Rows: rows}
	if _, err := rand.Read(resp.Nonce[:]); err != nil {
		return errBody(wire.CodeInternal, err.Error())
	}
	// Mask every row's reader set under a fresh audit pad; only auditor
	// clients — key holders — can unmask. No decrypted reader set is ever
	// placed in a frame.
	for i := range resp.Rows {
		resp.Rows[i].Readers ^= wire.AuditMask(c.srv.cfg.Key, resp.Nonce, i)
	}
	c.srv.audits.Add(1)
	return resp.Append(nil), wire.VerbAudit
}

func (c *conn) handleStats(body []byte) ([]byte, wire.Verb) {
	var req wire.StatsReq
	if err := req.Decode(body); err != nil {
		return errBody(wire.CodeBadRequest, err.Error())
	}
	resp := wire.StatsResp{Pairs: c.srv.statPairs()}
	return resp.Append(nil), wire.VerbStats
}

// auditRows flattens a report into one row per distinct value, readers as an
// m-bit bitmask, in first-appearance order.
func auditRows(aud store.ObjectAudit[uint64]) []wire.AuditRow {
	entries := aud.Report.Entries()
	rowOf := make(map[uint64]int, len(entries))
	rows := make([]wire.AuditRow, 0, len(entries))
	for _, e := range entries {
		i, ok := rowOf[e.Value]
		if !ok {
			i = len(rows)
			rowOf[e.Value] = i
			rows = append(rows, wire.AuditRow{Value: e.Value})
		}
		rows[i].Readers |= uint64(1) << uint(e.Reader)
	}
	return rows
}
