package server

import (
	"bytes"
	"testing"

	"auditreg"
	"auditreg/internal/shard"
	"auditreg/store"
	"auditreg/wire"
)

// TestShardRoutingAllocationFree pins the reader-side routing hop at zero
// heap allocations per request: peeking the name out of the undecoded body,
// hashing it, copying the body into a pooled buffer, and enqueueing on the
// shard executor must all ride the arena. The executor side is drained in
// the measured loop so the pooled buffers actually recycle.
func TestShardRoutingAllocationFree(t *testing.T) {
	srv, c := newBenchConn(t)
	const name = "alloc/route"
	if _, err := srv.Store().Open(name, store.Register); err != nil {
		t.Fatalf("Open: %v", err)
	}
	body := (&wire.WriteReq{Name: name, Value: 7}).Append(nil)
	f := wire.Frame{ID: 1, Verb: wire.VerbWrite, Body: body}
	e := srv.execs[shard.HashBytes([]byte(name))&srv.execMask]
	drain := func() {
		req := <-e.queue
		wire.PutBuf(req.buf)
		req.c.inflight.Done()
	}
	// Warm the arena class the request body draws from.
	for i := 0; i < 8; i++ {
		c.route(f)
		drain()
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.route(f)
		drain()
	}); n != 0 {
		t.Fatalf("shard routing allocated %v times per run, want 0", n)
	}
}

// TestPeekNameMatchesDecode pins the router's name peek against the real
// decoders for every name-carrying verb: the peeked bytes must be exactly
// the name the handler will decode, or routing and execution would disagree
// about the shard.
func TestPeekNameMatchesDecode(t *testing.T) {
	const name = "peek/some-object"
	bodies := map[string][]byte{
		"open":     (&wire.OpenReq{Name: name, Kind: wire.KindRegister}).Append(nil),
		"write":    (&wire.WriteReq{Name: name, Value: 9}).Append(nil),
		"fetch":    (&wire.ReadFetchReq{Name: name, Reader: 3, PrevSeq: 1}).Append(nil),
		"announce": (&wire.AnnounceReq{Name: name, Reader: 3, Seq: 1}).Append(nil),
		"audit":    (&wire.AuditReq{Name: name, Fresh: true}).Append(nil),
	}
	for verb, body := range bodies {
		got, ok := peekName(body)
		if !ok || string(got) != name {
			t.Errorf("%s: peekName = %q, %v; want %q", verb, got, ok, name)
		}
	}
	for _, bad := range [][]byte{nil, {0}, {0, 0}, {0, 5, 'a'}} {
		if _, ok := peekName(bad); ok {
			t.Errorf("peekName(%v) accepted a malformed body", bad)
		}
	}
}

// TestShardQueueShedsWithBusy drives the admission control directly: with a
// one-slot queue and no executor draining it, the second routed request must
// be shed as a CodeBusy error frame and counted, while the first sits
// queued.
func TestShardQueueShedsWithBusy(t *testing.T) {
	srv, err := New(Config{Key: auditreg.KeyFromSeed(5), Readers: 8, ExecShards: 1, ShardQueue: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c := &conn{srv: srv, writec: make(chan *wire.Buf, 4)}
	body := (&wire.WriteReq{Name: "shed/reg", Value: 1}).Append(nil)
	c.route(wire.Frame{ID: 1, Verb: wire.VerbWrite, Body: body}) // fills the queue
	c.route(wire.Frame{ID: 2, Verb: wire.VerbWrite, Body: body}) // shed

	e := srv.execs[0]
	if got := e.enqueues.Load(); got != 1 {
		t.Errorf("enqueues = %d, want 1", got)
	}
	if got := e.sheds.Load(); got != 1 {
		t.Errorf("sheds = %d, want 1", got)
	}

	select {
	case out := <-c.writec:
		sc := wire.NewFrameScanner(bytes.NewReader(out.B), 512)
		f, err := sc.Next()
		if err != nil {
			t.Fatalf("scan shed frame: %v", err)
		}
		if f.ID != 2 || f.Verb != wire.VerbErr {
			t.Fatalf("shed frame: id %d verb %v, want id 2 VerbErr", f.ID, f.Verb)
		}
		var e wire.ErrResp
		if err := e.Decode(f.Body); err != nil {
			t.Fatalf("decode shed body: %v", err)
		}
		if e.Code != wire.CodeBusy {
			t.Fatalf("shed code = %d, want CodeBusy", e.Code)
		}
		wire.PutBuf(out)
	default:
		t.Fatal("no shed response was emitted")
	}

	// The shed surfaces in STATS under the names the bench drivers read.
	stats := make(map[string]uint64)
	for _, p := range srv.statPairs(srv.snapshotCounters()) {
		stats[p.Name] = p.Value
	}
	if stats["shard-sheds"] != 1 || stats["shard-enqueues"] != 1 || stats["shard-depth"] != 1 {
		t.Errorf("stats = sheds %d, enqueues %d, depth %d; want 1, 1, 1",
			stats["shard-sheds"], stats["shard-enqueues"], stats["shard-depth"])
	}
	if stats["shards"] != 1 || stats["shard-queue-cap"] != 1 {
		t.Errorf("stats = shards %d, queue-cap %d; want 1, 1", stats["shards"], stats["shard-queue-cap"])
	}
}
