package server_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/server"
	"auditreg/store"
	"auditreg/wire"
)

// frameLog captures every frame the server transmits or receives, via the
// server's FrameTap hook.
type frameLog struct {
	mu     sync.Mutex
	frames []taggedFrame
}

type taggedFrame struct {
	outbound bool
	raw      []byte
}

func (l *frameLog) tap(outbound bool, frame []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frames = append(l.frames, taggedFrame{outbound, append([]byte(nil), frame...)})
}

func (l *frameLog) snapshot() []taggedFrame {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]taggedFrame(nil), l.frames...)
}

// TestNoDecryptedReaderSetOnTheWire is the wire-level leak-freedom check:
// after driving known traffic, it decodes every frame the server transmitted
// and asserts that no decrypted reader set — and no cleartext read value —
// ever appeared in any of them, while the masked fields do unmask to the
// ground truth with the right pads. Reader sets are decrypted only
// client-side, by key holders.
func TestNoDecryptedReaderSetOnTheWire(t *testing.T) {
	key := auditreg.KeyFromSeed(99)
	log := &frameLog{}
	srv := startServer(t, server.Config{Key: key, Readers: 8, FrameTap: log.tap})
	addr := addrOf(t, srv)

	cl, err := client.Dial(addr, client.WithKey(key), client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const name = "secret/ledger"
	obj, err := cl.Open(name, store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	// Known traffic: distinctive values, three reader principals.
	written := map[uint64]bool{0: true} // 0 is the initial value
	for i := 1; i <= 6; i++ {
		v := 0xA1B2_0000_0000_0000 + uint64(i)
		written[v] = true
		if err := obj.Write(v); err != nil {
			t.Fatalf("Write: %v", err)
		}
		for j := 0; j < 3; j++ {
			if _, err := obj.Read(j); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}
	}
	aud, err := obj.Auditor()
	if err != nil {
		t.Fatalf("Auditor: %v", err)
	}
	remote, err := aud.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}

	// Ground truth, computed server-side without the network.
	ground, err := srv.Store().Audit(name)
	if err != nil {
		t.Fatalf("local Audit: %v", err)
	}
	if !remote.Same(ground) {
		t.Fatalf("remote audit %v != ground truth %v", remote.Report, ground.Report)
	}
	truth := map[uint64]uint64{} // value -> true reader bitmask
	for _, e := range ground.Report.Entries() {
		truth[e.Value] |= 1 << uint(e.Reader)
	}

	// Walk the frame log: pair requests to responses by id, collect the
	// session secret from OPEN responses, and check every transmitted
	// frame.
	frames := log.snapshot()
	var session [wire.SessionLen]byte
	haveSession := false
	reqs := map[uint64]wire.ReadFetchReq{}
	auditResps, fetchResps := 0, 0
	for _, tf := range frames {
		f, rest, err := wire.ParseFrame(tf.raw)
		if err != nil || len(rest) != 0 {
			t.Fatalf("tap captured a malformed frame: %v", err)
		}
		if !tf.outbound {
			if f.Verb == wire.VerbReadFetch {
				var req wire.ReadFetchReq
				if err := req.Decode(f.Body); err != nil {
					t.Fatalf("request decode: %v", err)
				}
				reqs[f.ID] = req
			}
			continue
		}
		switch f.Verb {
		case wire.VerbOpen:
			var resp wire.OpenResp
			if err := resp.Decode(f.Body); err != nil {
				t.Fatalf("OpenResp decode: %v", err)
			}
			session = resp.Session
			haveSession = true
		case wire.VerbReadFetch:
			fetchResps++
			var resp wire.ReadFetchResp
			if err := resp.Decode(f.Body); err != nil {
				t.Fatalf("ReadFetchResp decode: %v", err)
			}
			req, ok := reqs[f.ID]
			if !ok {
				t.Fatalf("fetch response %d without a captured request", f.ID)
			}
			if resp.Seq == req.PrevSeq {
				if resp.Value != 0 {
					t.Fatalf("silent fetch response carries value %#x", resp.Value)
				}
				continue
			}
			// A value was shipped: it must be masked on the wire and
			// unmask, under the session pad, to a genuinely written value.
			if !haveSession {
				t.Fatal("fetch response before any OPEN response")
			}
			plain := resp.Value ^ wire.ValueMask(session, name, req.Reader, resp.Seq)
			if !written[plain] {
				t.Fatalf("fetch response for seq %d unmasks to %#x, not a written value", resp.Seq, plain)
			}
			if written[resp.Value] {
				t.Fatalf("fetch response transmitted cleartext value %#x", resp.Value)
			}
		case wire.VerbAudit:
			auditResps++
			var resp wire.AuditResp
			if err := resp.Decode(f.Body); err != nil {
				t.Fatalf("AuditResp decode: %v", err)
			}
			for i, row := range resp.Rows {
				want, known := truth[row.Value]
				if !known {
					t.Fatalf("audit row for unknown value %#x", row.Value)
				}
				if row.Readers == want && want != 0 {
					t.Fatalf("audit row %d transmitted the decrypted reader set %#b", i, want)
				}
				if got := row.Readers ^ wire.AuditMask(key, resp.Nonce, i); got != want {
					t.Fatalf("audit row %d unmasks to %#b, want %#b", i, got, want)
				}
			}
		}
		// Raw-bytes sweep, independent of the decoders: the 16-byte
		// cleartext (value, readers) row a naive audit response would
		// contain must not appear anywhere in any transmitted frame.
		for value, readers := range truth {
			if readers == 0 {
				continue
			}
			var row [16]byte
			binary.BigEndian.PutUint64(row[:8], value)
			binary.BigEndian.PutUint64(row[8:], readers)
			if bytes.Contains(tf.raw, row[:]) {
				t.Fatalf("transmitted frame (verb %v) contains cleartext audit row for value %#x", f.Verb, value)
			}
		}
	}
	if auditResps == 0 || fetchResps == 0 {
		t.Fatalf("frame log incomplete: %d audit responses, %d fetch responses", auditResps, fetchResps)
	}

	// Sanity for the check itself: a hypothetical cleartext audit response
	// WOULD trip the raw-bytes sweep.
	cleartext := wire.AuditResp{Kind: wire.KindRegister}
	for value, readers := range truth {
		cleartext.Rows = append(cleartext.Rows, wire.AuditRow{Value: value, Readers: readers})
	}
	leaky := wire.AppendFrame(nil, 1, wire.VerbAudit, cleartext.Append(nil))
	tripped := false
	for value, readers := range truth {
		if readers == 0 {
			continue
		}
		var row [16]byte
		binary.BigEndian.PutUint64(row[:8], value)
		binary.BigEndian.PutUint64(row[8:], readers)
		if bytes.Contains(leaky, row[:]) {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("self-check failed: the sweep cannot detect a cleartext row")
	}
}

// TestRecycledBuffersHoldNoPlaintextReaderSets extends the wire-level sweep
// to the frame-buffer arena: pooled buffers keep their contents between
// uses, so if any layer ever placed a decrypted reader set (or a cleartext
// audit row) in a frame, the secret would linger in recycled memory beyond
// the request that produced it. After driving audit-heavy traffic, the test
// drains the arena and sweeps every recycled buffer's full capacity — the
// bytes past len() included — for the cleartext rows of the ground truth.
func TestRecycledBuffersHoldNoPlaintextReaderSets(t *testing.T) {
	key := auditreg.KeyFromSeed(123)
	srv := startServer(t, server.Config{Key: key, Readers: 8})
	addr := addrOf(t, srv)

	cl, err := client.Dial(addr, client.WithKey(key), client.WithConns(2))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const name = "secret/arena"
	obj, err := cl.Open(name, store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	aud, err := obj.Auditor()
	if err != nil {
		t.Fatalf("Auditor: %v", err)
	}
	for i := 1; i <= 8; i++ {
		if err := obj.Write(0xBEEF_0000_0000_0000 + uint64(i)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		for j := 0; j < 4; j++ {
			if _, err := obj.Read(j); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}
		if _, err := aud.Audit(); err != nil {
			t.Fatalf("Audit: %v", err)
		}
	}
	ground, err := srv.Store().Audit(name)
	if err != nil {
		t.Fatalf("local Audit: %v", err)
	}
	truth := map[uint64]uint64{}
	for _, e := range ground.Report.Entries() {
		truth[e.Value] |= 1 << uint(e.Reader)
	}
	if len(truth) < 8 {
		t.Fatalf("ground truth too small: %d rows", len(truth))
	}

	// Drain the arena: every buffer the traffic above recycled comes back
	// out with its stale contents intact. Sweep the full capacity.
	var bufs []*wire.Buf
	for _, class := range []int{64, 2 << 10, 32 << 10} {
		for i := 0; i < 64; i++ {
			bufs = append(bufs, wire.GetBuf(class))
		}
	}
	swept := 0
	for _, b := range bufs {
		raw := b.B[:cap(b.B)]
		swept += len(raw)
		for value, readers := range truth {
			var row [16]byte
			binary.BigEndian.PutUint64(row[:8], value)
			binary.BigEndian.PutUint64(row[8:], readers)
			if bytes.Contains(raw, row[:]) {
				t.Fatalf("recycled buffer retains cleartext audit row for value %#x", value)
			}
		}
	}
	for _, b := range bufs {
		wire.PutBuf(b)
	}
	if swept == 0 {
		t.Fatal("swept no recycled bytes")
	}
}

// TestPooledBufferRetention drives heavily concurrent mixed traffic through
// the pooled request path; under -race (CI runs it so) any frame buffer
// retained past its PutBuf — a reuse-after-recycle, which would also be a
// confidentiality hazard — shows up as a data race between the retaining
// goroutine and the buffer's next owner.
func TestPooledBufferRetention(t *testing.T) {
	key := auditreg.KeyFromSeed(321)
	srv := startServer(t, server.Config{Key: key, Readers: 8})
	addr := addrOf(t, srv)

	cl, err := client.Dial(addr, client.WithKey(key), client.WithConns(4))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	objs := make([]*client.Object, 8)
	for i := range objs {
		kind := store.Register
		if i%2 == 1 {
			kind = store.MaxRegister
		}
		if objs[i], err = cl.Open(fmt.Sprintf("stress/%d", i), kind); err != nil {
			t.Fatalf("Open: %v", err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			obj := objs[g]
			aud, err := obj.Auditor()
			if err != nil {
				t.Errorf("Auditor: %v", err)
				return
			}
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					if err := obj.Write(uint64(g)<<32 + uint64(i)); err != nil {
						t.Errorf("Write: %v", err)
						return
					}
				case 3:
					if _, err := aud.Latest(); err != nil {
						t.Errorf("Latest: %v", err)
						return
					}
				default:
					if _, err := obj.Read(g % obj.Readers()); err != nil {
						t.Errorf("Read: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSessionSecretsDifferPerConnection pins that two connections get
// distinct session secrets, so one principal's masked values are opaque to
// another principal even if frames are observed across sessions.
func TestSessionSecretsDifferPerConnection(t *testing.T) {
	key := auditreg.KeyFromSeed(7)
	log := &frameLog{}
	srv := startServer(t, server.Config{Key: key, FrameTap: log.tap})
	addr := addrOf(t, srv)

	var sessions [][wire.SessionLen]byte
	for i := 0; i < 2; i++ {
		cl, err := client.Dial(addr, client.WithConns(1))
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		if _, err := cl.Open("obj", store.Register); err != nil {
			t.Fatalf("Open: %v", err)
		}
		cl.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(sessions) < 2 && time.Now().Before(deadline) {
		sessions = sessions[:0]
		for _, tf := range log.snapshot() {
			if !tf.outbound {
				continue
			}
			f, _, err := wire.ParseFrame(tf.raw)
			if err != nil || f.Verb != wire.VerbOpen {
				continue
			}
			var resp wire.OpenResp
			if err := resp.Decode(f.Body); err != nil {
				continue
			}
			sessions = append(sessions, resp.Session)
		}
		time.Sleep(time.Millisecond)
	}
	if len(sessions) < 2 {
		t.Fatalf("captured %d OPEN responses, want 2", len(sessions))
	}
	if sessions[0] == sessions[1] {
		t.Fatal("two connections share one session secret")
	}
}
