package server

import (
	"encoding/binary"
	"sync/atomic"

	"auditreg/internal/telem"
	"auditreg/wire"
)

// defaultShardQueue is the per-executor queue capacity — the admission
// control high watermark. A full queue means the shard is more than a full
// coalescing window behind; shedding there keeps queueing delay bounded
// instead of letting latency grow without limit under overload.
const defaultShardQueue = 1024

// shardReq is one routed request: the frame's identity plus a pooled copy of
// its body (the conn's read buffer is reused for the next frame before the
// executor runs). The executor recycles buf after executing.
type shardReq struct {
	c    *conn
	id   uint64
	verb wire.Verb
	buf  *wire.Buf
	enq  int64 // telem.Now() at enqueue; the executor derives its queue wait
}

// shardExec is one shard executor: a single goroutine owning the slice of
// the store whose object names hash into it. All operations on those objects
// — from every connection — are serialized through queue, so cross-
// connection ops on one shard never contend on the store's locks; distinct
// shards run on distinct executors in parallel.
type shardExec struct {
	id    int // executor index; doubles as the telemetry stripe
	queue chan shardReq
	done  chan struct{} // closed when the executor goroutine exits

	enqueues atomic.Uint64
	sheds    atomic.Uint64
}

// newExecs builds the executor set: shards is already a power of two.
func newExecs(shards, queueCap int) []*shardExec {
	execs := make([]*shardExec, shards)
	for i := range execs {
		execs[i] = &shardExec{
			id:    i,
			queue: make(chan shardReq, queueCap),
			done:  make(chan struct{}),
		}
	}
	return execs
}

// startExecs launches the executor goroutines; Serve calls it once the
// listener is committed.
func (s *Server) startExecs() {
	s.mu.Lock()
	if s.execsUp {
		s.mu.Unlock()
		return
	}
	s.execsUp = true
	s.mu.Unlock()
	for _, e := range s.execs {
		go s.runExec(e)
	}
}

// stopExecs closes the queues and joins the executors. Safe only once every
// routing goroutine is gone — Shutdown calls it after wg.Wait(), when no
// conn reader remains to send.
func (s *Server) stopExecs() {
	s.execStop.Do(func() {
		s.mu.Lock()
		up := s.execsUp
		s.mu.Unlock()
		for _, e := range s.execs {
			close(e.queue)
		}
		if !up {
			return
		}
		for _, e := range s.execs {
			<-e.done
		}
	})
}

// runExec is the executor loop: execute, recycle the request buffer, and
// release the conn's in-flight slot — in that order, so a conn's reader can
// only pass inflight.Wait() once every routed response has been handed to
// its completion or writer stage.
func (s *Server) runExec(e *shardExec) {
	defer close(e.done)
	stripe := uint64(e.id)
	for req := range e.queue {
		// Queue wait and handler execution are the two executor-side stages;
		// both stripe by executor index, so the adds never leave this core's
		// cache line under the intended one-executor-per-core shape.
		t0 := telem.Now()
		s.tel.queueWait.Observe(stripe, t0-req.enq)
		req.c.execute(req.id, req.verb, req.buf.B)
		s.tel.storeOp.Observe(stripe, telem.Now()-t0)
		wire.PutBuf(req.buf)
		req.c.inflight.Done()
	}
}

// peekName returns the object name of a request body without decoding it:
// every name-carrying request (OPEN, WRITE, READ-FETCH, READ-ANNOUNCE,
// AUDIT) encodes the name first, as a u16 length prefix and the bytes — the
// wire layout is arranged so the router can hash a name without allocating
// a string or knowing the verb's full schema.
func peekName(body []byte) ([]byte, bool) {
	if len(body) < 2 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint16(body))
	if n == 0 || len(body) < 2+n {
		return nil, false
	}
	return body[2 : 2+n], true
}
