package server

import (
	"encoding/binary"
	"strings"
	"testing"

	"auditreg/wire"
)

// TestPeekNameAdversarial extends the happy-path peek↔decode pin to
// malformed and boundary bodies: for routing to be sound, every body a verb
// decoder accepts with a non-empty name must peek to exactly that name, and
// every body the peek rejects must be one no decoder extracts a non-empty
// name from (the router falls through to inline execution, where the decoder
// rejects it — or, for the one legal divergence, the zero-length name,
// handles it unrouted). peekName deliberately checks less than the decoders
// (no MaxName bound, no tail validation): over-accepting only routes a
// doomed request to an executor, while over-rejecting would execute a valid
// request on the wrong goroutine.
func TestPeekNameAdversarial(t *testing.T) {
	// rawBody builds a u16-length-prefixed name (with an arbitrary claimed
	// length) followed by a tail.
	rawBody := func(claim int, name string, tail []byte) []byte {
		b := binary.BigEndian.AppendUint16(nil, uint16(claim))
		b = append(b, name...)
		return append(b, tail...)
	}
	u64tail := make([]byte, 8) // a valid WriteReq value tail
	maxName := strings.Repeat("n", wire.MaxName)
	longName := strings.Repeat("n", wire.MaxName+1)

	cases := []struct {
		desc     string
		body     []byte
		wantPeek string // "" = peek must reject
	}{
		{"nil body", nil, ""},
		{"truncated length prefix", []byte{0}, ""},
		{"zero-length name, empty tail", rawBody(0, "", nil), ""},
		{"zero-length name, valid write tail", rawBody(0, "", u64tail), ""},
		{"name length exceeds body", rawBody(5, "ab", nil), ""},
		{"name length exceeds body by one", rawBody(3, "ab", nil), ""},
		{"valid name, truncated tail", rawBody(3, "obj", u64tail[:7]), "obj"},
		{"valid name, trailing garbage", rawBody(3, "obj", append(append([]byte(nil), u64tail...), 0xFF)), "obj"},
		{"max-length name, valid tail", rawBody(wire.MaxName, maxName, u64tail), maxName},
		{"over-max name (decoders reject, peek routes)", rawBody(wire.MaxName+1, longName, u64tail), longName},
	}

	// Every name-carrying verb's real decoder, as the handlers invoke them.
	decoders := map[string]func(body []byte) (string, error){
		"open": func(b []byte) (string, error) {
			var m wire.OpenReq
			err := m.Decode(b)
			return m.Name, err
		},
		"write": func(b []byte) (string, error) {
			var m wire.WriteReq
			err := m.DecodeView(b)
			return m.Name, err
		},
		"fetch": func(b []byte) (string, error) {
			var m wire.ReadFetchReq
			err := m.DecodeView(b)
			return m.Name, err
		},
		"announce": func(b []byte) (string, error) {
			var m wire.AnnounceReq
			err := m.DecodeView(b)
			return m.Name, err
		},
		"audit": func(b []byte) (string, error) {
			var m wire.AuditReq
			err := m.Decode(b)
			return m.Name, err
		},
	}

	for _, tc := range cases {
		peeked, ok := peekName(tc.body)
		if tc.wantPeek == "" {
			if ok {
				t.Errorf("%s: peekName accepted, name %q", tc.desc, peeked)
			}
		} else if !ok || string(peeked) != tc.wantPeek {
			t.Errorf("%s: peekName = %q, %v; want %q", tc.desc, peeked, ok, tc.wantPeek)
		}
		for verb, decode := range decoders {
			name, err := decode(tc.body)
			if err != nil {
				continue // decoder rejected: nothing to disagree about
			}
			if name == "" {
				// The one legal divergence: a decodable zero-length name is
				// unroutable (peek rejects) and handled inline.
				if ok {
					t.Errorf("%s/%s: decoder returned empty name but peek accepted %q", tc.desc, verb, peeked)
				}
				continue
			}
			if !ok || string(peeked) != name {
				t.Errorf("%s/%s: decoder accepted name %q but peek = %q, %v — shard routing would disagree with execution",
					tc.desc, verb, name, peeked, ok)
			}
		}
	}

	// The over-max case must stay doomed: if a decoder ever starts accepting
	// names beyond MaxName, the peek's missing bound becomes a routing bug
	// and this pin should force the conversation.
	for verb, decode := range decoders {
		if name, err := decode(rawBody(wire.MaxName+1, longName, u64tail)); err == nil && name != "" {
			t.Errorf("%s: decoder accepted a %d-byte name; peekName has no MaxName bound and relies on decoders rejecting these", verb, len(name))
		}
	}
}
