package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"time"

	"auditreg/internal/telem"
	"auditreg/persist"
)

// Pipeline stage names, as they appear in STATS summaries and the metrics
// endpoint. One name per hop of the request path:
//
//	conn-decode     reader-side frame decode + route (per request frame)
//	exec-queue-wait routed request's dwell in its shard executor's queue
//	store-op        handler execution on the executor (store op + encode)
//	wal-commit-wait completion stage's wait for the durability verdict
//	completion      total completion-stage residence (commit wait + emit)
//	conn-flush      one writev flush of coalesced response frames
//	wal-fsync       one fdatasync of WAL segment data (persist hook)
const (
	stageConnDecode = "conn-decode"
	stageQueueWait  = "exec-queue-wait"
	stageStoreOp    = "store-op"
	stageWALCommit  = "wal-commit-wait"
	stageCompletion = "completion"
	stageConnFlush  = "conn-flush"
	stageWALFsync   = "wal-fsync"
)

// serverTelem bundles the server's per-stage latency histograms. Every
// histogram is striped (per executor or per connection slot) so hot-path
// observes never contend, and every export path — STATS summaries, the
// Prometheus endpoint — reads the same registry.
//
// Leak contract: stages are the ONLY dimension. No histogram, counter, or
// label here may ever carry an object name, reader index, or connection
// identity; the E18 metrics observer enforces this against the live
// endpoint (Config.LeakyPerObjectReads is the deliberate violation that
// proves the observer can see one).
type serverTelem struct {
	reg        *telem.Registry
	connDecode *telem.Hist
	queueWait  *telem.Hist
	storeOp    *telem.Hist
	walCommit  *telem.Hist
	completion *telem.Hist
	connFlush  *telem.Hist
	walFsync   *telem.Hist
}

func newServerTelem(execShards int) *serverTelem {
	reg := telem.NewRegistry()
	return &serverTelem{
		reg:        reg,
		connDecode: reg.Stage(stageConnDecode, 0),
		queueWait:  reg.Stage(stageQueueWait, execShards),
		storeOp:    reg.Stage(stageStoreOp, execShards),
		walCommit:  reg.Stage(stageWALCommit, 0),
		completion: reg.Stage(stageCompletion, 0),
		connFlush:  reg.Stage(stageConnFlush, 0),
		walFsync:   reg.Stage(stageWALFsync, execShards),
	}
}

// counterSnap is one coherent snapshot of every server counter: both STATS
// and the metrics endpoint read exclusively through snapshotCounters, so the
// derived ratios an operator computes from one scrape (sheds/enqueues,
// syncs/records, flushed-frames/flushes) are never torn across the
// individual atomic loads.
type counterSnap struct {
	epoch    uint64
	uptimeMs uint64

	opens, writes, readsFetched, readsSilent uint64
	announces, audits, errs                  uint64
	framesIn, framesOut, connsTotal          uint64
	connFlushFrames, connFlushes             uint64
	poolAudits, poolSweeps                   uint64
	objects                                  uint64

	shardSheds, shardEnqueues, shardDepth uint64

	shareWrites, shareProbes, shareFetch, shareSilent, shareObjects uint64
	shareCorrupt                                                    uint64

	wal *persist.Stats // nil without a data dir
}

// snapshotCounters loads every counter once, numerators before their
// denominators — a shed is counted before the enqueues that dilute it, a
// flushed frame before the flushes that divide it — so a ratio derived from
// one snapshot can under-, never over-state the rate it measures while
// traffic is in flight. Each call advances the stats epoch: a scraper that
// sees the epoch decrease knows the daemon restarted.
func (s *Server) snapshotCounters() counterSnap {
	snap := counterSnap{
		epoch:    s.statsEpoch.Add(1),
		uptimeMs: uint64(time.Since(s.start).Milliseconds()),
	}
	for _, e := range s.execs {
		snap.shardSheds += e.sheds.Load()
	}
	for _, e := range s.execs {
		snap.shardEnqueues += e.enqueues.Load()
		snap.shardDepth += uint64(len(e.queue))
	}
	snap.connFlushFrames = s.connFlushFrames.Load()
	snap.connFlushes = s.connFlushes.Load()
	snap.readsSilent = s.readsSilent.Load()
	snap.readsFetched = s.readsFetched.Load()
	snap.opens = s.opens.Load()
	snap.writes = s.writes.Load()
	snap.announces = s.announces.Load()
	snap.audits = s.audits.Load()
	snap.errs = s.errs.Load()
	snap.framesIn = s.framesIn.Load()
	snap.framesOut = s.framesOut.Load()
	snap.connsTotal = s.connsTotal.Load()
	snap.poolAudits = s.pool.Audited()
	snap.poolSweeps = s.pool.Sweeps()
	snap.objects = uint64(s.st.Len())
	snap.shareWrites = s.shareWrites.Load()
	snap.shareProbes = s.shareProbes.Load()
	snap.shareFetch = s.shareFetch.Load()
	snap.shareSilent = s.shareSilent.Load()
	snap.shareCorrupt = s.shareCorrupt.Load()
	s.shareMu.RLock()
	snap.shareObjects = uint64(len(s.shareLens))
	s.shareMu.RUnlock()
	if s.wal != nil {
		ws := s.wal.Stats() // persist loads syncs before records; see WAL.Stats
		snap.wal = &ws
	}
	return snap
}

// MetricsMux returns the HTTP handler tree for -metrics-addr: Prometheus
// text exposition on /metrics and the net/http/pprof suite under /debug/
// pprof/. It is its own mux — nothing registers on http.DefaultServeMux —
// so two servers in one process (a test, the E18 lab) never collide.
func (s *Server) MetricsMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveMetrics writes the Prometheus exposition: build info, the coherent
// counter snapshot, the WAL counters when durable, and the per-stage
// histograms. Everything here is aggregate-only; the one exception is the
// planted leak below, which exists so the leak-gate's positive control has
// something to catch.
func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.snapshotCounters()

	fmt.Fprintf(w, "# HELP auditreg_build_info Daemon build info; value is always 1.\n# TYPE auditreg_build_info gauge\n")
	fmt.Fprintf(w, "auditreg_build_info{goversion=%q,gomaxprocs=\"%d\"} 1\n", runtime.Version(), runtime.GOMAXPROCS(0))
	fmt.Fprintf(w, "# TYPE auditreg_uptime_seconds gauge\nauditreg_uptime_seconds %s\n", formatMs(snap.uptimeMs))
	fmt.Fprintf(w, "# HELP auditreg_stats_epoch Monotonic per-boot snapshot counter; a decrease between scrapes means the daemon restarted.\n")
	fmt.Fprintf(w, "# TYPE auditreg_stats_epoch gauge\nauditreg_stats_epoch %d\n", snap.epoch)

	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"auditreg_opens_total", snap.opens},
		{"auditreg_writes_total", snap.writes},
		{"auditreg_reads_fetched_total", snap.readsFetched},
		{"auditreg_reads_silent_total", snap.readsSilent},
		{"auditreg_announces_total", snap.announces},
		{"auditreg_audits_total", snap.audits},
		{"auditreg_errors_total", snap.errs},
		{"auditreg_frames_in_total", snap.framesIn},
		{"auditreg_frames_out_total", snap.framesOut},
		{"auditreg_conns_total", snap.connsTotal},
		{"auditreg_conn_flushes_total", snap.connFlushes},
		{"auditreg_conn_flushed_frames_total", snap.connFlushFrames},
		{"auditreg_shard_enqueues_total", snap.shardEnqueues},
		{"auditreg_shard_sheds_total", snap.shardSheds},
		{"auditreg_pool_audits_total", snap.poolAudits},
		{"auditreg_pool_sweeps_total", snap.poolSweeps},
	} {
		telem.WriteCounter(w, c.name, c.v)
	}
	fmt.Fprintf(w, "# TYPE auditreg_objects gauge\nauditreg_objects %d\n", snap.objects)
	fmt.Fprintf(w, "# TYPE auditreg_shard_depth gauge\nauditreg_shard_depth %d\n", snap.shardDepth)
	fmt.Fprintf(w, "# TYPE auditreg_shards gauge\nauditreg_shards %d\n", len(s.execs))
	if ws := snap.wal; ws != nil {
		telem.WriteCounter(w, "auditreg_wal_records_total", ws.Records)
		telem.WriteCounter(w, "auditreg_wal_batches_total", ws.Batches)
		telem.WriteCounter(w, "auditreg_wal_syncs_total", ws.Syncs)
		telem.WriteCounter(w, "auditreg_wal_rotations_total", ws.Rotations)
		telem.WriteCounter(w, "auditreg_wal_snapshots_total", ws.Snapshots)
		telem.WriteCounter(w, "auditreg_wal_bytes_total", ws.Bytes)
	}
	telem.WriteStages(w, s.tel.reg.Snapshot())

	if s.cfg.LeakyPerObjectReads {
		// POSITIVE CONTROL — a deliberate violation of the aggregate-only
		// contract: a per-object read counter, exactly the "harmless" label
		// a well-meaning operator might add. The E18 metrics observer's
		// control game must detect it; it must never ship enabled.
		fmt.Fprintf(w, "# HELP auditreg_leaky_object_reads_total DELIBERATE LEAK (positive control); never enable in production.\n")
		fmt.Fprintf(w, "# TYPE auditreg_leaky_object_reads_total counter\n")
		s.leakyMu.Lock()
		names := make([]string, 0, len(s.leakyReads))
		for name := range s.leakyReads {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "auditreg_leaky_object_reads_total{object=%q} %d\n", name, s.leakyReads[name])
		}
		s.leakyMu.Unlock()
	}
}

// recordLeakyRead feeds the planted per-object read counter; called from the
// read-fetch handler only when Config.LeakyPerObjectReads is set. The name
// view aliases a pooled frame buffer, so the map key must be a stable copy.
func (s *Server) recordLeakyRead(name string) {
	s.leakyMu.Lock()
	if s.leakyReads == nil {
		s.leakyReads = make(map[string]uint64)
	}
	s.leakyReads[strings.Clone(name)]++
	s.leakyMu.Unlock()
}

// formatMs renders milliseconds as decimal seconds.
func formatMs(ms uint64) string {
	return fmt.Sprintf("%d.%03d", ms/1000, ms%1000)
}
