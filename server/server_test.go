package server_test

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/server"
	"auditreg/store"
	"auditreg/wire"
)

// startServer boots a server on a free port and registers its shutdown.
func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.PoolInterval == 0 {
		cfg.PoolInterval = time.Millisecond
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv
}

func addrOf(t *testing.T, srv *server.Server) string {
	t.Helper()
	for i := 0; i < 100; i++ {
		if a := srv.Addr(); a != nil {
			return a.String()
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never listened")
	return ""
}

func TestEndToEnd(t *testing.T) {
	key := auditreg.KeyFromSeed(11)
	srv := startServer(t, server.Config{Key: key, Readers: 8})
	cl, err := client.Dial(addrOf(t, srv), client.WithKey(key), client.WithConns(3))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	reg, err := cl.Open("acct/1", store.Register)
	if err != nil {
		t.Fatalf("Open register: %v", err)
	}
	if reg.Readers() != 8 || reg.Kind() != store.Register {
		t.Fatalf("register meta = (%d, %v)", reg.Readers(), reg.Kind())
	}
	maxr, err := cl.Open("score/1", store.MaxRegister)
	if err != nil {
		t.Fatalf("Open maxregister: %v", err)
	}

	// Register semantics across writers and readers.
	for i := 1; i <= 5; i++ {
		if err := reg.Write(uint64(i * 10)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		for j := 0; j < 3; j++ {
			v, err := reg.Read(j)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if v != uint64(i*10) {
				t.Fatalf("reader %d read %d, want %d", j, v, i*10)
			}
			// Re-reads with no new write are silent and equal.
			v2, err := reg.Read(j)
			if err != nil || v2 != v {
				t.Fatalf("silent re-read = (%d, %v), want (%d, nil)", v2, err, v)
			}
		}
	}

	// MaxRegister semantics: the maximum wins.
	w := maxr.Writer()
	for _, v := range []uint64{5, 90, 17} {
		if err := w.Write(v); err != nil {
			t.Fatalf("WriteMax: %v", err)
		}
	}
	rd, err := maxr.Reader(2)
	if err != nil {
		t.Fatalf("Reader: %v", err)
	}
	if v, err := rd.Read(); err != nil || v != 90 {
		t.Fatalf("max read = (%d, %v), want (90, nil)", v, err)
	}

	// Remote fresh audits equal the server-side ground truth.
	for _, name := range []string{"acct/1", "score/1"} {
		obj := reg
		if name == "score/1" {
			obj = maxr
		}
		aud, err := obj.Auditor()
		if err != nil {
			t.Fatalf("Auditor: %v", err)
		}
		remote, err := aud.Audit()
		if err != nil {
			t.Fatalf("remote Audit: %v", err)
		}
		ground, err := srv.Store().Audit(name)
		if err != nil {
			t.Fatalf("local Audit: %v", err)
		}
		if !remote.Same(ground) {
			t.Fatalf("%s: remote audit %v != ground truth %v", name, remote.Report, ground.Report)
		}
		// The pool path is a subset of (usually equal to) ground truth.
		latest, err := aud.Latest()
		if err != nil {
			t.Fatalf("Latest: %v", err)
		}
		if !latest.Subset(ground) {
			t.Fatalf("%s: pool report %v not a subset of ground truth %v", name, latest.Report, ground.Report)
		}
	}

	// Stats counters reflect the traffic.
	pairs, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	stats := map[string]uint64{}
	for _, p := range pairs {
		stats[p.Name] = p.Value
	}
	if stats["objects"] != 2 {
		t.Fatalf("objects = %d, want 2", stats["objects"])
	}
	if stats["writes"] != 8 {
		t.Fatalf("writes = %d, want 8", stats["writes"])
	}
	if stats["reads-silent"] == 0 || stats["reads-fetched"] == 0 {
		t.Fatalf("read counters = fetched %d silent %d, want both > 0", stats["reads-fetched"], stats["reads-silent"])
	}
	if stats["errors"] != 0 {
		t.Fatalf("errors = %d, want 0", stats["errors"])
	}
}

func TestConcurrentClients(t *testing.T) {
	key := auditreg.KeyFromSeed(12)
	srv := startServer(t, server.Config{Key: key, Readers: 16})
	addr := addrOf(t, srv)
	cl, err := client.Dial(addr, client.WithKey(key), client.WithConns(4))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const objects = 8
	objs := make([]*client.Object, objects)
	for i := range objs {
		kind := store.Register
		if i%2 == 1 {
			kind = store.MaxRegister
		}
		objs[i], err = cl.Open(fmt.Sprintf("obj-%d", i), kind)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				obj := objs[(g+i)%objects]
				if err := obj.Write(uint64(g*1000 + i)); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
				if _, err := obj.Read(g % 16); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Every object's remote audit matches the server-side ground truth.
	for i, obj := range objs {
		aud, err := obj.Auditor()
		if err != nil {
			t.Fatalf("Auditor: %v", err)
		}
		remote, err := aud.Audit()
		if err != nil {
			t.Fatalf("Audit: %v", err)
		}
		ground, err := srv.Store().Audit(fmt.Sprintf("obj-%d", i))
		if err != nil {
			t.Fatalf("local Audit: %v", err)
		}
		if !remote.Same(ground) {
			t.Fatalf("obj-%d: remote %v != ground %v", i, remote.Report, ground.Report)
		}
	}
}

func TestRemoteErrors(t *testing.T) {
	key := auditreg.KeyFromSeed(13)
	srv := startServer(t, server.Config{Key: key})
	addr := addrOf(t, srv)
	cl, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// Writing an unopened name maps back to store.ErrNotFound.
	obj, err := cl.Open("exists", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	_ = obj
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw dial: %v", err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	send := func(id uint64, verb wire.Verb, body []byte) wire.Frame {
		t.Helper()
		if _, err := nc.Write(wire.AppendFrame(nil, id, verb, body)); err != nil {
			t.Fatalf("write: %v", err)
		}
		f, err := wire.ReadFrame(br)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if f.ID != id {
			t.Fatalf("response id %d, want %d", f.ID, id)
		}
		return f
	}
	wantErr := func(f wire.Frame, code wire.ErrCode) wire.ErrResp {
		t.Helper()
		if f.Verb != wire.VerbErr {
			t.Fatalf("verb = %v, want ERR", f.Verb)
		}
		var e wire.ErrResp
		if err := e.Decode(f.Body); err != nil {
			t.Fatalf("decode err resp: %v", err)
		}
		if e.Code != code {
			t.Fatalf("code = %d (%s), want %d", e.Code, e.Msg, code)
		}
		return e
	}

	wantErr(send(1, wire.VerbWrite, (&wire.WriteReq{Name: "missing", Value: 1}).Append(nil)), wire.CodeNotFound)
	wantErr(send(2, wire.VerbOpen, (&wire.OpenReq{Name: "exists", Kind: wire.KindMaxRegister}).Append(nil)), wire.CodeKindMismatch)
	wantErr(send(3, wire.VerbOpen, (&wire.OpenReq{Name: "snap", Kind: 3}).Append(nil)), wire.CodeUnsupported)
	wantErr(send(4, wire.VerbReadFetch, (&wire.ReadFetchReq{Name: "exists", Reader: 200}).Append(nil)), wire.CodeBadRequest)
	wantErr(send(5, wire.Verb(99), nil), wire.CodeBadRequest)
	wantErr(send(6, wire.VerbOpen, []byte{0xff}), wire.CodeBadRequest)

	// The connection survives all of the above: a normal request still
	// works, and the client-side sentinel mapping holds.
	f := send(7, wire.VerbStats, nil)
	if f.Verb != wire.VerbStats {
		t.Fatalf("stats verb = %v", f.Verb)
	}
	if err := obj.Write(42); err != nil {
		t.Fatalf("Write after errors: %v", err)
	}
	_, err = cl.Open("exists", store.MaxRegister)
	if !errors.Is(err, store.ErrKindMismatch) {
		t.Fatalf("client kind mismatch err = %v, want store.ErrKindMismatch", err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	key := auditreg.KeyFromSeed(14)
	srv, err := server.New(server.Config{Key: key, PoolInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String(), client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	obj, err := cl.Open("obj", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := obj.Write(uint64(i)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v, want nil after shutdown", err)
	}
	// The pool's cursors survive shutdown: a post-shutdown flush works and
	// ground truth is intact.
	if err := srv.Pool().Flush(); err != nil {
		t.Fatalf("post-shutdown Flush: %v", err)
	}
	aud, err := srv.Store().Audit("obj")
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	_ = aud
	// New connections are refused after shutdown.
	if _, err := client.Dial(ln.Addr().String(), client.WithConns(1)); err == nil {
		t.Fatal("Dial succeeded after shutdown")
	}
}
