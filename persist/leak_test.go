package persist

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"auditreg/store"
)

// TestNoPlaintextOnDisk is the at-rest counterpart of the wire-level
// server/leak_test.go: drive known traffic — distinctive values, several
// reader principals, audits — through a journaled store, snapshot, crash,
// recover, close; then sweep the raw bytes of every file the data directory
// ever held for the plaintext a naive log would contain: object names,
// values in either byte order, and (value, reader-set) audit rows. The pads
// derive from a key held outside the directory, so a curious party with
// disk access must find nothing.
func TestNoPlaintextOnDisk(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{SegmentBytes: 4 << 10})

	names := []string{"secret/ledger", "secret/peak"}
	var values []uint64
	reg, err := st.Open(names[0], store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	max, err := st.Open(names[1], store.MaxRegister)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 1; i <= 24; i++ {
		v := 0xA1B2_0000_0000_0000 + uint64(i)*0x0101_0101
		values = append(values, v)
		if err := reg.Write(v); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if err := max.Write(v); err != nil {
			t.Fatalf("WriteMax: %v", err)
		}
		for j := 0; j < 3; j++ {
			if _, err := reg.Read(j); err != nil {
				t.Fatalf("Read: %v", err)
			}
			if _, err := max.Read(j); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}
	}
	pool, err := st.NewAuditPool()
	if err != nil {
		t.Fatalf("NewAuditPool: %v", err)
	}
	if err := pool.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// More traffic after the snapshot so segments and snapshot both carry
	// secrets, then a crash and a recovery cycle so recovery-written state
	// is swept too.
	for i := range values {
		if err := reg.Write(values[i]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	readerSets := make(map[uint64]uint64)
	for _, name := range names {
		aud, err := st.Audit(name)
		if err != nil {
			t.Fatalf("Audit: %v", err)
		}
		for _, e := range aud.Report.Entries() {
			readerSets[e.Value] |= 1 << uint(e.Reader)
		}
	}
	w.abandon()
	w2, _, _ := openWAL(t, dir, Options{})
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	needles := BuildNeedles(names, values, readerSets)
	findings, files, bytesScanned, err := ScanPlaintext(dir, needles)
	if err != nil {
		t.Fatalf("ScanPlaintext: %v", err)
	}
	if files < 2 || bytesScanned == 0 {
		t.Fatalf("sweep degenerate: %d files, %d bytes", files, bytesScanned)
	}
	for _, fd := range findings {
		t.Errorf("plaintext on disk: %s at %s+%d", fd.Desc, fd.File, fd.Offset)
	}

	// Self-check: the sweep must be able to find what it looks for. A
	// hypothetical unencrypted record — name, value, audit row in the clear
	// — trips it.
	leakDir := t.TempDir()
	var leaky []byte
	leaky = append(leaky, []byte(names[0])...)
	leaky = binary.BigEndian.AppendUint64(leaky, values[0])
	var row [16]byte
	binary.BigEndian.PutUint64(row[:8], values[3])
	binary.BigEndian.PutUint64(row[8:], readerSets[values[3]])
	leaky = append(leaky, row[:]...)
	if err := os.WriteFile(filepath.Join(leakDir, "wal-cleartext.seg"), leaky, 0o600); err != nil {
		t.Fatal(err)
	}
	tripped, _, _, err := ScanPlaintext(leakDir, needles)
	if err != nil {
		t.Fatalf("self-check sweep: %v", err)
	}
	if len(tripped) < 3 {
		t.Fatalf("self-check found %d findings, want >= 3 (name, value, audit row)", len(tripped))
	}
}

// TestScanPlaintextReportsOffsets pins the finding coordinates the shared
// scanner reports (cmd/leakprobe prints them verbatim).
func TestScanPlaintextReportsOffsets(t *testing.T) {
	dir := t.TempDir()
	content := []byte("....SENTINELVALUE....")
	if err := os.WriteFile(filepath.Join(dir, "blob"), content, 0o600); err != nil {
		t.Fatal(err)
	}
	findings, _, _, err := ScanPlaintext(dir, []Needle{{Desc: "sentinel", Pattern: []byte("SENTINELVALUE")}})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1", len(findings))
	}
	if findings[0].Offset != 4 || findings[0].Desc != "sentinel" {
		t.Fatalf("finding = %+v", findings[0])
	}
	if want := filepath.Join(dir, "blob"); findings[0].File != want {
		t.Fatalf("finding file = %s, want %s", findings[0].File, want)
	}
}
