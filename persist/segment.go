package persist

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"auditreg"
)

// File layout. Both file kinds — WAL segments and snapshots — share one
// shape: a fixed header, then frames, the last of which is an OpSeal record
// in every cleanly finished file.
//
//	magic[8] | u32 version | u64 meta | nonce[16]
//
// meta is the segment's base LSN (the LSN of its first record) or the
// snapshot's cut LSN (the snapshot covers every record with lsn < cut). The
// nonce is random per file and feeds every record pad, so pad streams never
// repeat across files.
const (
	segMagic  = "AWLSEG1\x00"
	snapMagic = "AWLSNP1\x00"
	// fileVersion 2 switched the record keystream from per-record SHA-256
	// derivation to the offset-indexed block pad stream (see record.go);
	// version 1 files fail loudly here instead of decrypting to garbage.
	fileVersion = 2
	headerLen   = 8 + 4 + 8 + fileNonceLen
)

// segmentName and snapshotName render the canonical file names: the stripe
// id first, then the LSN, both in fixed-width hex so lexicographic and
// (stripe, LSN) order stay aligned. LSN spaces are per stripe — two files of
// different stripes may legitimately share a base.
func segmentName(stripe int, baseLSN uint64) string {
	return fmt.Sprintf("wal-s%02x-%016x.seg", stripe, baseLSN)
}
func snapshotName(stripe int, cutLSN uint64) string {
	return fmt.Sprintf("snap-s%02x-%016x.snap", stripe, cutLSN)
}

// parseFileName recognizes the canonical names, yielding the stripe id and
// the numeric part. Pre-stripe names ("wal-%016x.seg", "snap-%016x.snap",
// written before WAL striping) parse as stripe 0: a legacy directory is
// adopted as a single-stripe log and its files replay exactly as written.
func parseFileName(name string) (stripe int, meta uint64, isSeg, isSnap bool) {
	parse := func(body string) (int, uint64, bool) {
		if rest, ok := strings.CutPrefix(body, "s"); ok {
			i := strings.IndexByte(rest, '-')
			if i < 1 {
				return 0, 0, false
			}
			sid, err1 := strconv.ParseUint(rest[:i], 16, 32)
			n, err2 := strconv.ParseUint(rest[i+1:], 16, 64)
			if err1 != nil || err2 != nil || sid >= MaxStripes {
				return 0, 0, false
			}
			return int(sid), n, true
		}
		n, err := strconv.ParseUint(body, 16, 64)
		return 0, n, err == nil
	}
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
		s, n, ok := parse(name[4 : len(name)-4])
		return s, n, ok, false
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		s, n, ok := parse(name[5 : len(name)-5])
		return s, n, false, ok
	default:
		return 0, 0, false, false
	}
}

// newHeader builds a file header with a fresh random nonce.
func newHeader(magic string, meta uint64) ([]byte, [fileNonceLen]byte, error) {
	var nonce [fileNonceLen]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, nonce, fmt.Errorf("persist: file nonce: %w", err)
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, magic...)
	hdr = binary.BigEndian.AppendUint32(hdr, fileVersion)
	hdr = binary.BigEndian.AppendUint64(hdr, meta)
	hdr = append(hdr, nonce[:]...)
	return hdr, nonce, nil
}

// parseHeader validates a file header against the expected magic.
func parseHeader(b []byte, magic string) (meta uint64, nonce [fileNonceLen]byte, err error) {
	if len(b) < headerLen {
		return 0, nonce, fmt.Errorf("persist: %d-byte file shorter than header", len(b))
	}
	if string(b[:8]) != magic {
		return 0, nonce, fmt.Errorf("persist: bad magic %q", b[:8])
	}
	if v := binary.BigEndian.Uint32(b[8:]); v != fileVersion {
		return 0, nonce, fmt.Errorf("persist: unsupported file version %d", v)
	}
	meta = binary.BigEndian.Uint64(b[12:])
	copy(nonce[:], b[20:])
	return meta, nonce, nil
}

// fileRecords is the parse result of one record file.
type fileRecords struct {
	meta      uint64 // base LSN (segment) or cut LSN (snapshot)
	nonce     [fileNonceLen]byte
	recs      []Record
	lsns      []uint64
	sealed    bool  // the file ends with an OpSeal record
	tornBytes int64 // bytes discarded at a torn tail (unsealed files only)
	validLen  int64 // offset one past the last valid frame
}

// readRecordFile parses a whole segment or snapshot file. A torn tail —
// the input ending mid-frame — is tolerated and reported via tornBytes;
// every other malformation (CRC mismatch, bad record body, data after a
// seal) is corruption and returns an error naming the file and offset.
// Callers enforce their own sealing policy: recovery requires every file
// except the active segment to be sealed.
func readRecordFile(path, magic string, key auditreg.Key) (fileRecords, error) {
	var fr fileRecords
	b, err := os.ReadFile(path)
	if err != nil {
		return fr, err
	}
	meta, nonce, err := parseHeader(b, magic)
	if err != nil {
		return fr, fmt.Errorf("%s: %w", path, err)
	}
	fr.meta = meta
	fr.nonce = nonce
	ps := newPadStream(key, &nonce)
	rest := b[headerLen:]
	off := int64(headerLen)
	for len(rest) > 0 {
		if fr.sealed {
			return fr, fmt.Errorf("persist: %s: %d bytes after seal at offset %d", path, len(rest), off)
		}
		rec, lsn, after, err := parseFrame(rest, ps, off)
		if err != nil {
			if errors.Is(err, errTornFrame) {
				fr.tornBytes = int64(len(rest))
				fr.validLen = off
				return fr, nil
			}
			return fr, fmt.Errorf("persist: %s: offset %d: %w", path, off, err)
		}
		off += int64(len(rest) - len(after))
		rest = after
		if rec.Op == OpSeal {
			fr.sealed = true
			continue
		}
		fr.recs = append(fr.recs, rec)
		fr.lsns = append(fr.lsns, lsn)
	}
	fr.validLen = off
	return fr, nil
}

// walFile is one recognized directory entry: its numeric part and its actual
// file name (legacy entries lack the stripe tag, so the name cannot be
// reconstructed from the numbers alone).
type walFile struct {
	meta uint64 // base LSN (segment) or cut LSN (snapshot)
	name string
}

// dirState is the classified content of a data directory, keyed by stripe.
type dirState struct {
	segments  map[int][]walFile // stripe -> segments, ascending by base LSN
	snapshots map[int][]walFile // stripe -> snapshots, ascending by cut LSN
	maxStripe int               // highest stripe id seen; -1 when none
	others    []string          // unrecognized entries (lock file excluded)
}

// readDir classifies the data directory's entries. Two files claiming the
// same (stripe, LSN) — possible only if someone renames a legacy file next
// to its striped twin — is corruption, not a tie to break silently.
func readDir(dir string) (dirState, error) {
	st := dirState{
		segments:  make(map[int][]walFile),
		snapshots: make(map[int][]walFile),
		maxStripe: -1,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, err
	}
	for _, e := range entries {
		name := e.Name()
		if name == lockFileName || strings.HasSuffix(name, ".tmp") {
			continue
		}
		stripe, meta, isSeg, isSnap := parseFileName(name)
		switch {
		case isSeg:
			st.segments[stripe] = append(st.segments[stripe], walFile{meta: meta, name: name})
		case isSnap:
			st.snapshots[stripe] = append(st.snapshots[stripe], walFile{meta: meta, name: name})
		default:
			st.others = append(st.others, name)
			continue
		}
		if stripe > st.maxStripe {
			st.maxStripe = stripe
		}
	}
	for _, m := range []map[int][]walFile{st.segments, st.snapshots} {
		for stripe, files := range m {
			sort.Slice(files, func(i, j int) bool { return files[i].meta < files[j].meta })
			for i := 1; i < len(files); i++ {
				if files[i].meta == files[i-1].meta {
					return st, fmt.Errorf("persist: %s and %s claim the same stripe %d LSN %d",
						files[i-1].name, files[i].name, stripe, files[i].meta)
				}
			}
		}
	}
	return st, nil
}

// syncDir fsyncs the directory itself, making renames and removals durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeSealedFile writes a complete record file — header, records, seal —
// through a temp file and an atomic rename. Record i carries lsn lsns[i] and
// is encrypted against the file's pad stream at its own offset under the
// fresh nonce; the seal takes the first lsn past them. Offsets are unique
// within the file, so no pad is ever applied twice.
func writeSealedFile(dir, name, magic string, meta uint64, key auditreg.Key, recs []Record, lsns []uint64) error {
	hdr, nonce, err := newHeader(magic, meta)
	if err != nil {
		return err
	}
	ps := newPadStream(key, &nonce)
	buf := hdr
	sealLSN := uint64(0)
	for i := range recs {
		buf = appendFrame(buf, ps, int64(len(buf)), lsns[i], &recs[i])
		if lsns[i] >= sealLSN {
			sealLSN = lsns[i] + 1
		}
	}
	seal := Record{Op: OpSeal}
	buf = appendFrame(buf, ps, int64(len(buf)), sealLSN, &seal)

	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}
