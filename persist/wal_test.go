package persist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"auditreg"
	"auditreg/store"
)

const testReaders = 8

func testKey() auditreg.Key { return DeriveKey(auditreg.KeyFromSeed(42)) }

// newTestStore builds a journal-less store shaped like the server's.
func newTestStore(t *testing.T) *store.Store[uint64] {
	t.Helper()
	st, err := store.New[uint64](auditreg.KeyFromSeed(42),
		store.WithReaders[uint64](testReaders),
		store.WithLess[uint64](func(a, b uint64) bool { return a < b }),
	)
	if err != nil {
		t.Fatalf("store.New: %v", err)
	}
	return st
}

// openWAL opens dir into a fresh store and attaches the WAL.
func openWAL(t *testing.T, dir string, opts Options) (*WAL, *RecoverResult, *store.Store[uint64]) {
	t.Helper()
	st := newTestStore(t)
	w, res, err := Open(dir, testKey(), st, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	st.SetJournal(w)
	return w, res, st
}

// drive runs a deterministic mixed workload: register and max-register
// objects, interleaved writes and reads from several reader principals.
// Object names embed tag so successive phases create distinct or identical
// names as the test needs.
func drive(t *testing.T, st *store.Store[uint64], seed int64, objects, ops int) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, objects)
	for i := range names {
		kind := store.Register
		if i%2 == 1 {
			kind = store.MaxRegister
		}
		names[i] = fmt.Sprintf("%v-%03d", kind, i)
		if _, err := st.Open(names[i], kind); err != nil {
			t.Fatalf("Open(%s): %v", names[i], err)
		}
	}
	for i := 0; i < ops; i++ {
		name := names[rng.Intn(len(names))]
		obj, _ := st.Lookup(name)
		if rng.Intn(100) < 40 {
			if err := obj.Write(uint64(rng.Intn(1 << 16))); err != nil {
				t.Fatalf("Write: %v", err)
			}
		} else {
			if _, err := obj.Read(rng.Intn(testReaders)); err != nil {
				t.Fatalf("Read: %v", err)
			}
		}
	}
	return names
}

// auditAll audits every named object.
func auditAll(t *testing.T, st *store.Store[uint64], names []string) map[string]store.ObjectAudit[uint64] {
	t.Helper()
	out := make(map[string]store.ObjectAudit[uint64], len(names))
	for _, name := range names {
		aud, err := st.Audit(name)
		if err != nil {
			t.Fatalf("Audit(%s): %v", name, err)
		}
		out[name] = aud
	}
	return out
}

// requireSameAudits asserts the recovered store reports exactly the audits
// of the original.
func requireSameAudits(t *testing.T, want map[string]store.ObjectAudit[uint64], st *store.Store[uint64], names []string) {
	t.Helper()
	got := auditAll(t, st, names)
	for _, name := range names {
		if !got[name].Same(want[name]) {
			t.Errorf("recovered audit for %s: %d pairs, want %d\n got %v\nwant %v",
				name, got[name].Len(), want[name].Len(), got[name].Report, want[name].Report)
		}
	}
}

// valuesOf reads every object's current value through a reader index the
// workload never uses. Call it on the original store before its WAL closes
// (the reads themselves are journaled) and compare with requireSameValues.
func valuesOf(t *testing.T, st *store.Store[uint64], names []string) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64, len(names))
	for _, name := range names {
		v, err := st.Read(name, testReaders-1)
		if err != nil {
			t.Fatalf("Read(%s): %v", name, err)
		}
		out[name] = v
	}
	return out
}

// requireSameValues asserts the recovered objects hold the original current
// values.
func requireSameValues(t *testing.T, want map[string]uint64, rec *store.Store[uint64], names []string) {
	t.Helper()
	for _, name := range names {
		got, err := rec.Read(name, testReaders-1)
		if err != nil {
			t.Fatalf("recovered Read(%s): %v", name, err)
		}
		if got != want[name] {
			t.Errorf("recovered value for %s = %d, want %d", name, got, want[name])
		}
	}
}

func TestOpenEmptyDir(t *testing.T) {
	dir := t.TempDir()
	w, res, _ := openWAL(t, dir, Options{})
	if res.Records != 0 || res.Replay.Objects != 0 {
		t.Fatalf("fresh dir recovered %+v", res)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A clean close seals; reopening finds nothing to replay but accepts
	// the sealed segment.
	w2, res2, _ := openWAL(t, dir, Options{})
	defer w2.Close()
	if res2.Records != 0 {
		t.Fatalf("reopen recovered %d records", res2.Records)
	}
}

func TestRecoverAfterCleanClose(t *testing.T) {
	for _, policy := range []Policy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, _, st := openWAL(t, dir, Options{Policy: policy})
			names := drive(t, st, 1, 8, 600)
			vals := valuesOf(t, st, names)
			want := auditAll(t, st, names)
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			w2, res, st2 := openWAL(t, dir, Options{Policy: policy})
			defer w2.Close()
			if res.TornBytes != 0 {
				t.Fatalf("clean close left %d torn bytes", res.TornBytes)
			}
			requireSameAudits(t, want, st2, names)
			requireSameValues(t, vals, st2, names)
		})
	}
}

func TestRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{Policy: SyncAlways})
	names := drive(t, st, 2, 8, 600)
	vals := valuesOf(t, st, names)
	want := auditAll(t, st, names)
	w.abandon() // kill -9

	w2, res, st2 := openWAL(t, dir, Options{Policy: SyncAlways})
	defer w2.Close()
	// Under SyncAlways every acknowledged open/write/read is durable, so
	// the recovered audits must equal the originals exactly.
	requireSameAudits(t, want, st2, names)
	requireSameValues(t, vals, st2, names)
	if res.Replay.Fetches == 0 || res.Replay.Writes == 0 {
		t.Fatalf("replay stats empty: %+v", res.Replay)
	}
}

func TestRecoverCrashedStoreKeepsWorking(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{})
	names := drive(t, st, 3, 4, 200)
	w.abandon()

	w2, _, st2 := openWAL(t, dir, Options{})
	// The recovered store accepts new traffic and journals it; a third
	// recovery sees both generations.
	obj, err := st2.Open(names[0], store.Register)
	if err != nil {
		t.Fatalf("reopen object: %v", err)
	}
	if err := obj.Write(0xBEEF); err != nil {
		t.Fatalf("post-recovery Write: %v", err)
	}
	if v, err := obj.Read(0); err != nil || v != 0xBEEF {
		t.Fatalf("post-recovery Read = %d, %v", v, err)
	}
	want := auditAll(t, st2, names)
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w3, _, st3 := openWAL(t, dir, Options{})
	defer w3.Close()
	requireSameAudits(t, want, st3, names)
}

func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{})
	names := drive(t, st, 4, 4, 300)
	want := auditAll(t, st, names)
	w.abandon()

	// Append half a frame of garbage to the active segment: a torn final
	// write, as a crash mid-write leaves it.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, res, st2 := openWAL(t, dir, Options{})
	defer w2.Close()
	if res.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	requireSameAudits(t, want, st2, names)
}

func TestRecoverHaltsOnSealedSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotations, so sealed segments exist; one stripe so
	// the first listed segment is guaranteed sealed (a second stripe's active
	// segment would sort between this stripe's files).
	w, _, st := openWAL(t, dir, Options{SegmentBytes: 4 << 10, Stripes: 1})
	drive(t, st, 5, 8, 2000)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := allSegments(t, dir)
	if len(segs) < 2 {
		t.Fatalf("expected rotations, got %d segments", len(segs))
	}
	// Flip one byte in the middle of the first (sealed) segment.
	corruptByte(t, segs[0], int64(headerLen+40))

	st2 := newTestStore(t)
	if _, _, err := Open(dir, testKey(), st2, Options{}); err == nil {
		t.Fatal("recovery over a corrupt sealed segment succeeded")
	} else if !strings.Contains(err.Error(), "wal-") {
		t.Fatalf("error does not name the segment: %v", err)
	}
}

func TestSnapshotCompactsAndPreservesAudits(t *testing.T) {
	dir := t.TempDir()
	// One stripe: the cut-covers-segment check below compares every file
	// against one cut LSN, which only means something inside one stripe's
	// LSN space.
	w, _, st := openWAL(t, dir, Options{SegmentBytes: 8 << 10, Stripes: 1})
	names := drive(t, st, 6, 8, 1500)
	cut, err := w.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if cut == 0 {
		t.Fatal("snapshot cut 0")
	}
	// Covered segments are gone; the snapshot file exists.
	for _, seg := range allSegments(t, dir) {
		name := filepath.Base(seg)
		if _, meta, isSeg, _ := parseFileName(name); isSeg && meta < cut {
			t.Errorf("segment %s below cut %d survived the snapshot", name, cut)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(0, cut))); err != nil {
		t.Fatalf("snapshot file: %v", err)
	}

	// More traffic after the snapshot, then a crash.
	drive(t, st, 7, 8, 800)
	vals := valuesOf(t, st, names)
	want := auditAll(t, st, names)
	w.abandon()

	w2, res, st2 := openWAL(t, dir, Options{})
	if res.SnapshotCut != cut {
		t.Fatalf("recovery used snapshot cut %d, want %d", res.SnapshotCut, cut)
	}
	requireSameAudits(t, want, st2, names)
	requireSameValues(t, vals, st2, names)

	// A second snapshot on the recovered log folds snapshot + tail.
	if _, err := w2.Snapshot(); err != nil {
		t.Fatalf("second Snapshot: %v", err)
	}
	want2 := auditAll(t, st2, names)
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w3, _, st3 := openWAL(t, dir, Options{})
	defer w3.Close()
	requireSameAudits(t, want2, st3, names)
}

// TestSeqContinuityAcrossGenerations pins the multi-generation regression:
// snapshot compaction drops unaudited writes and replay renumbers, so
// without the WAL's per-object seq base a post-recovery write would reuse a
// sequence number still present in retained records and the NEXT recovery
// would halt on "conflicting writes" over perfectly healthy data.
func TestSeqContinuityAcrossGenerations(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{})
	obj, err := st.Open("gen", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Seqs 1..3; only seq 1 is audited, so compaction keeps a sparse
	// history (write 1 with its fetch, final write 3) and replay renumbers.
	if err := obj.Write(0xA); err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := obj.Write(0xB); err != nil {
		t.Fatal(err)
	}
	if err := obj.Write(0xC); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	w.abandon() // crash

	// Generation 2: recover, write and read more, crash again.
	w2, _, st2 := openWAL(t, dir, Options{})
	obj2, err := st2.Open("gen", store.Register)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := obj2.Write(0xD); err != nil {
		t.Fatalf("gen-2 Write: %v", err)
	}
	if _, err := obj2.Read(1); err != nil {
		t.Fatalf("gen-2 Read: %v", err)
	}
	vals := valuesOf(t, st2, []string{"gen"})
	want := auditAll(t, st2, []string{"gen"})
	w2.abandon()

	// Generation 3 must recover cleanly — before the seq base this halted
	// with "conflicting writes at seq N".
	w3, _, st3 := openWAL(t, dir, Options{})
	defer w3.Close()
	requireSameAudits(t, want, st3, []string{"gen"})
	requireSameValues(t, vals, st3, []string{"gen"})
}

func TestDirLockExcludesSecondWAL(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openWAL(t, dir, Options{})
	defer w.Close()
	st2 := newTestStore(t)
	if _, _, err := Open(dir, testKey(), st2, Options{}); err == nil {
		t.Fatal("second Open of a locked dir succeeded")
	}
}

// TestSynthesizedWriteFromFetch crafts a log whose fetch record survived but
// whose write record did not (the write missed the final group commit): the
// fetch must stand in for the write, so the audited read is not dropped.
func TestSynthesizedWriteFromFetch(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		{Op: OpOpen, Name: "acct", Kind: uint8(store.Register), Capacity: 1024},
		// No OpWrite for seq 1: only the read that observed it survived.
		{Op: OpFetch, Name: "acct", Kind: uint8(store.Register), Reader: 3, Seq: 1, Value: 777},
	}
	lsns := []uint64{1, 2}
	if err := writeSealedFile(dir, segmentName(0, 1), segMagic, 1, testKey(), recs, lsns); err != nil {
		t.Fatalf("writeSealedFile: %v", err)
	}

	w, res, st := openWAL(t, dir, Options{})
	defer w.Close()
	if res.Replay.Synthesized != 1 {
		t.Fatalf("synthesized %d writes, want 1", res.Replay.Synthesized)
	}
	aud, err := st.Audit("acct")
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !aud.Report.Contains(3, 777) {
		t.Fatalf("audit %v does not contain the recovered read (3, 777)", aud.Report)
	}
	if v, err := st.Read("acct", 0); err != nil || v != 777 {
		t.Fatalf("recovered value = %d, %v; want 777", v, err)
	}
}

// TestFetchValueMismatchHalts crafts an impossible log — a fetch observing a
// value the write history cannot produce — and requires recovery to halt.
func TestFetchValueMismatchHalts(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		{Op: OpOpen, Name: "acct", Kind: uint8(store.Register), Capacity: 1024},
		{Op: OpWrite, Name: "acct", Kind: uint8(store.Register), Seq: 1, Value: 10},
		{Op: OpFetch, Name: "acct", Kind: uint8(store.Register), Reader: 0, Seq: 1, Value: 11},
	}
	if err := writeSealedFile(dir, segmentName(0, 1), segMagic, 1, testKey(), recs, []uint64{1, 2, 3}); err != nil {
		t.Fatalf("writeSealedFile: %v", err)
	}
	st := newTestStore(t)
	_, _, err := Open(dir, testKey(), st, Options{})
	if err == nil || !strings.Contains(err.Error(), "fetch at seq 1 observed 11") {
		t.Fatalf("recovery = %v, want an explicit fetch-mismatch halt", err)
	}
}

// --- helpers ---

func allSegments(t *testing.T, dir string) []string {
	t.Helper()
	ds, err := readDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for sid := 0; sid <= ds.maxStripe; sid++ {
		for _, sf := range ds.segments[sid] {
			out = append(out, filepath.Join(dir, sf.name))
		}
	}
	return out
}

func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs := allSegments(t, dir)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return segs[len(segs)-1]
}

func corruptByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
