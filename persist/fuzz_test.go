package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"auditreg"
	"auditreg/store"
)

// fuzzKey and fuzzNonce fix the decryption context so corpus entries stay
// meaningful across runs.
func fuzzKey() auditreg.Key { return DeriveKey(auditreg.KeyFromSeed(1)) }

var fuzzNonce = [fileNonceLen]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

// fuzzSeeds returns one valid frame per record type, plus a two-frame
// stream.
func fuzzSeeds() [][]byte {
	key := fuzzKey()
	recs := []Record{
		{Op: OpOpen, Name: "acct/1", Kind: uint8(store.Register), Capacity: 4096},
		{Op: OpWrite, Name: "acct/1", Kind: uint8(store.Register), Seq: 7, Value: 0xA1B2C3D4},
		{Op: OpFetch, Name: "acct/1", Kind: uint8(store.Register), Reader: 3, Seq: 7, Value: 0xA1B2C3D4},
		{Op: OpAnnounce, Name: "acct/1", Kind: uint8(store.Register), Reader: 3, Seq: 7},
		{Op: OpAudit, Name: "acct/1", Kind: uint8(store.Register), Pairs: 12},
		{Op: OpSeal},
	}
	ps := newPadStream(key, &fuzzNonce)
	var out [][]byte
	for i := range recs {
		out = append(out, appendFrame(nil, ps, 0, uint64(i+1), &recs[i]))
	}
	stream := appendFrame(nil, ps, 0, 10, &recs[1])
	stream = appendFrame(stream, ps, int64(len(stream)), 11, &recs[2])
	out = append(out, stream)
	return out
}

// FuzzWALRecord fuzzes the frame parser — the code recovery trusts with
// arbitrary disk bytes. Beyond not panicking, it checks that every frame the
// parser accepts round-trips: re-encoding the decoded record at the same LSN
// reproduces the consumed bytes exactly, so the decoder accepts nothing the
// encoder cannot produce.
func FuzzWALRecord(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	ps := newPadStream(fuzzKey(), &fuzzNonce)
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, lsn, rest, err := parseFrame(b, ps, 0)
		if err != nil {
			if errors.Is(err, errTornFrame) && len(b) >= maxFrame {
				t.Fatalf("%d bytes reported as torn frame", len(b))
			}
			return
		}
		consumed := b[:len(b)-len(rest)]
		re := appendFrame(nil, ps, 0, lsn, &rec)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("accepted frame does not round-trip:\n in  %x\n out %x", consumed, re)
		}
	})
}

// TestWriteSeedCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzWALRecord from fuzzSeeds. It is a maintenance switch,
// not a test: set PERSIST_WRITE_CORPUS=1 after changing the frame format.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("PERSIST_WRITE_CORPUS") == "" {
		t.Skip("set PERSIST_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALRecord")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds() {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFuzzSeedsParse pins that every checked-in seed is a valid frame (the
// fuzzer's corpus must start from the accepting path).
func TestFuzzSeedsParse(t *testing.T) {
	ps := newPadStream(fuzzKey(), &fuzzNonce)
	for i, seed := range fuzzSeeds() {
		rest := seed
		for len(rest) > 0 {
			off := int64(len(seed) - len(rest))
			var err error
			_, _, rest, err = parseFrame(rest, ps, off)
			if err != nil {
				t.Fatalf("seed %d does not parse: %v", i, err)
			}
		}
	}
}
