package persist

import (
	"testing"

	"auditreg/store"
)

// TestFrameEncodeAllocationBound pins the WAL writer's per-record encode
// cost: appending an encrypted frame into a reused batch buffer allocates
// nothing except the pad blocks the stream derives — one small cached block
// per 32 keystream bytes, amortized across adjacent records of the batch
// (the BlockPads window serves re-walks of the same region for free).
func TestFrameEncodeAllocationBound(t *testing.T) {
	ps := newPadStream(testKey(), &fuzzNonce)
	rec := Record{Op: OpFetch, Name: "acct/0000001", Kind: uint8(store.Register), Reader: 3, Seq: 9, Value: 0xA1B2}
	buf := make([]byte, 0, 4096)
	off := int64(headerLen)
	// Warm the pad window for the offsets the loop below revisits.
	_ = appendFrame(buf, ps, off, 7, &rec)
	if n := testing.AllocsPerRun(1000, func() {
		out := appendFrame(buf, ps, off, 7, &rec)
		if len(out) < frameOverhead {
			t.Fatal("short frame")
		}
	}); n != 0 {
		t.Fatalf("frame encode allocated %v times per run (pad window warm)", n)
	}
}

// TestFrameDecodeAllocationBound pins the recovery-side decode cost: one
// allocation for the decrypted body copy and one for the record's name
// string — nothing proportional to scan length beyond the records
// themselves.
func TestFrameDecodeAllocationBound(t *testing.T) {
	ps := newPadStream(testKey(), &fuzzNonce)
	rec := Record{Op: OpFetch, Name: "acct/0000001", Kind: uint8(store.Register), Reader: 3, Seq: 9, Value: 0xA1B2}
	frame := appendFrame(nil, ps, int64(headerLen), 7, &rec)
	if n := testing.AllocsPerRun(1000, func() {
		got, lsn, rest, err := parseFrame(frame, ps, int64(headerLen))
		if err != nil || lsn != 7 || len(rest) != 0 || got.Name != rec.Name {
			t.Fatalf("parse: %v %d %d", err, lsn, len(rest))
		}
	}); n > 2 {
		t.Fatalf("frame decode allocated %v times per run, want <= 2 (body copy + name)", n)
	}
}
