package persist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"auditreg/store"
)

// pairSet is one object's audited (reader, value) pairs.
type pairSet map[[2]uint64]bool

// pairsOf collects the audit pairs of every object the store hosts.
func pairsOf(t *testing.T, st *store.Store[uint64]) map[string]pairSet {
	t.Helper()
	out := make(map[string]pairSet)
	st.Range(func(obj *store.Object[uint64]) bool {
		aud, err := obj.Audit()
		if err != nil {
			t.Fatalf("Audit(%s): %v", obj.Name(), err)
		}
		set := make(pairSet)
		for _, e := range aud.Report.Entries() {
			set[[2]uint64{uint64(e.Reader), e.Value}] = true
		}
		out[obj.Name()] = set
		return true
	})
	return out
}

// modelPairs derives the audit pairs implied by the surviving records of a
// data directory, reading it exactly as recovery would (latest snapshot,
// then tail segments, torn tails tolerated everywhere for this oracle).
func modelPairs(t *testing.T, dir string) map[string]pairSet {
	t.Helper()
	ds, err := readDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newRecoverModel()
	var cut uint64
	if n := len(ds.snapshots); n > 0 {
		cut = ds.snapshots[n-1]
		fr, err := readRecordFile(filepath.Join(dir, snapshotName(cut)), snapMagic, testKey())
		if err != nil {
			t.Fatal(err)
		}
		for i := range fr.recs {
			if err := m.add(&fr.recs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, base := range ds.segments {
		if base < cut {
			continue
		}
		fr, err := readRecordFile(filepath.Join(dir, segmentName(base)), segMagic, testKey())
		if err != nil {
			t.Fatal(err)
		}
		for i := range fr.recs {
			if err := m.add(&fr.recs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	out := make(map[string]pairSet)
	for name, om := range m.objects {
		set := make(pairSet)
		for _, f := range om.fetches {
			set[[2]uint64{uint64(f.reader), f.value}] = true
		}
		out[name] = set
	}
	return out
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o700); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// subset reports whether every pair of a appears in b.
func subset(a, b map[string]pairSet) (string, bool) {
	for name, pairs := range a {
		for p := range pairs {
			if !b[name][p] {
				return fmt.Sprintf("%s (%d, %d)", name, p[0], p[1]), false
			}
		}
	}
	return "", true
}

func equalPairs(a, b map[string]pairSet) bool {
	if m, ok := subset(a, b); !ok || m != "" {
		return ok
	}
	_, ok := subset(b, a)
	return ok
}

// TestCrashInjection is the randomized harness: it truncates or corrupts a
// crashed data directory at random byte offsets and asserts that recovery
// either replays cleanly — reporting exactly the audit pairs the surviving
// records imply, never silently dropping one — or halts with an explicit
// error.
func TestCrashInjection(t *testing.T) {
	const trials = 60
	baseDir := t.TempDir()
	ref := filepath.Join(baseDir, "ref")
	w, _, st := openWAL(t, ref, Options{SegmentBytes: 8 << 10})
	drive(t, st, 99, 6, 1500)
	if _, err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	drive(t, st, 100, 6, 800)
	w.abandon()
	ground := modelPairs(t, ref)

	rng := rand.New(rand.NewSource(7))
	recovered, halted := 0, 0
	for trial := 0; trial < trials; trial++ {
		dir := filepath.Join(baseDir, fmt.Sprintf("trial-%03d", trial))
		copyDir(t, ref, dir)
		ds, err := readDir(dir)
		if err != nil {
			t.Fatal(err)
		}

		truncating := trial%2 == 0
		if truncating {
			// Truncate the active (last) segment at a random offset: the
			// torn-tail case recovery must absorb.
			seg := filepath.Join(dir, segmentName(ds.segments[len(ds.segments)-1]))
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			cutAt := int64(headerLen) + rng.Int63n(info.Size()-headerLen+1)
			if err := os.Truncate(seg, cutAt); err != nil {
				t.Fatal(err)
			}
		} else {
			// Flip a random byte in a random record file.
			var files []string
			for _, b := range ds.segments {
				files = append(files, segmentName(b))
			}
			for _, c := range ds.snapshots {
				files = append(files, snapshotName(c))
			}
			path := filepath.Join(dir, files[rng.Intn(len(files))])
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			corruptByte(t, path, rng.Int63n(info.Size()))
		}

		stRec := newTestStore(t)
		wRec, _, err := Open(dir, testKey(), stRec, Options{})
		if err != nil {
			halted++
			if err.Error() == "" {
				t.Fatalf("trial %d: halt without a message", trial)
			}
			continue
		}
		recovered++
		got := pairsOf(t, stRec)
		wRec.Close()
		if truncating {
			// A pure truncation must recover exactly the pairs the
			// surviving prefix implies: nothing invented, nothing silently
			// dropped.
			want := modelPairs(t, dir)
			if !equalPairs(got, want) {
				t.Fatalf("trial %d (truncate): recovered pairs differ from the surviving records", trial)
			}
		}
		// Never invent pairs beyond the uncorrupted ground truth.
		if miss, ok := subset(got, ground); !ok {
			t.Fatalf("trial %d: recovery invented pair %s", trial, miss)
		}
	}
	t.Logf("crash injection: %d recovered, %d halted", recovered, halted)
	if recovered == 0 || halted == 0 {
		t.Fatalf("harness degenerate: %d recovered, %d halted — both paths must be exercised", recovered, halted)
	}
}
