package persist

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"auditreg/store"
)

// pairSet is one object's audited (reader, value) pairs.
type pairSet map[[2]uint64]bool

// pairsOf collects the audit pairs of every object the store hosts.
func pairsOf(t *testing.T, st *store.Store[uint64]) map[string]pairSet {
	t.Helper()
	out := make(map[string]pairSet)
	st.Range(func(obj *store.Object[uint64]) bool {
		aud, err := obj.Audit()
		if err != nil {
			t.Fatalf("Audit(%s): %v", obj.Name(), err)
		}
		set := make(pairSet)
		for _, e := range aud.Report.Entries() {
			set[[2]uint64{uint64(e.Reader), e.Value}] = true
		}
		out[obj.Name()] = set
		return true
	})
	return out
}

// modelPairs derives the audit pairs implied by the surviving records of a
// data directory, reading it exactly as recovery would (latest snapshot,
// then tail segments, torn tails tolerated everywhere for this oracle).
func modelPairs(t *testing.T, dir string) map[string]pairSet {
	t.Helper()
	ds, err := readDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := newRecoverModel()
	for sid := 0; sid <= ds.maxStripe; sid++ {
		var cut uint64
		if snaps := ds.snapshots[sid]; len(snaps) > 0 {
			newest := snaps[len(snaps)-1]
			cut = newest.meta
			fr, err := readRecordFile(filepath.Join(dir, newest.name), snapMagic, testKey())
			if err != nil {
				t.Fatal(err)
			}
			for i := range fr.recs {
				if err := m.add(&fr.recs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, sf := range ds.segments[sid] {
			if sf.meta < cut {
				continue
			}
			fr, err := readRecordFile(filepath.Join(dir, sf.name), segMagic, testKey())
			if err != nil {
				t.Fatal(err)
			}
			for i := range fr.recs {
				if err := m.add(&fr.recs[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	out := make(map[string]pairSet)
	for name, om := range m.objects {
		set := make(pairSet)
		for _, f := range om.fetches {
			set[[2]uint64{uint64(f.reader), f.value}] = true
		}
		out[name] = set
	}
	return out
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o700); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
}

// subset reports whether every pair of a appears in b.
func subset(a, b map[string]pairSet) (string, bool) {
	for name, pairs := range a {
		for p := range pairs {
			if !b[name][p] {
				return fmt.Sprintf("%s (%d, %d)", name, p[0], p[1]), false
			}
		}
	}
	return "", true
}

func equalPairs(a, b map[string]pairSet) bool {
	if m, ok := subset(a, b); !ok || m != "" {
		return ok
	}
	_, ok := subset(b, a)
	return ok
}

// TestCrashInjection is the randomized harness: it truncates or corrupts a
// crashed data directory at random byte offsets and asserts that recovery
// either replays cleanly — reporting exactly the audit pairs the surviving
// records imply, never silently dropping one — or halts with an explicit
// error.
func TestCrashInjection(t *testing.T) {
	const trials = 60
	baseDir := t.TempDir()
	ref := filepath.Join(baseDir, "ref")
	w, _, st := openWAL(t, ref, Options{SegmentBytes: 8 << 10})
	drive(t, st, 99, 6, 1500)
	if _, err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	drive(t, st, 100, 6, 800)
	w.abandon()
	ground := modelPairs(t, ref)

	rng := rand.New(rand.NewSource(7))
	recovered, halted := 0, 0
	for trial := 0; trial < trials; trial++ {
		dir := filepath.Join(baseDir, fmt.Sprintf("trial-%03d", trial))
		copyDir(t, ref, dir)
		ds, err := readDir(dir)
		if err != nil {
			t.Fatal(err)
		}

		truncating := trial%2 == 0
		if truncating {
			// Truncate a random stripe's active (last) segment at a random
			// offset: the torn-tail case recovery must absorb.
			segs := ds.segments[rng.Intn(ds.maxStripe+1)]
			seg := filepath.Join(dir, segs[len(segs)-1].name)
			info, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			cutAt := int64(headerLen) + rng.Int63n(info.Size()-headerLen+1)
			if err := os.Truncate(seg, cutAt); err != nil {
				t.Fatal(err)
			}
		} else {
			// Flip a random byte in a random record file.
			var files []string
			for _, sfs := range ds.segments {
				for _, sf := range sfs {
					files = append(files, sf.name)
				}
			}
			for _, sfs := range ds.snapshots {
				for _, sf := range sfs {
					files = append(files, sf.name)
				}
			}
			path := filepath.Join(dir, files[rng.Intn(len(files))])
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			corruptByte(t, path, rng.Int63n(info.Size()))
		}

		stRec := newTestStore(t)
		wRec, _, err := Open(dir, testKey(), stRec, Options{})
		if err != nil {
			halted++
			if err.Error() == "" {
				t.Fatalf("trial %d: halt without a message", trial)
			}
			continue
		}
		recovered++
		got := pairsOf(t, stRec)
		wRec.Close()
		if truncating {
			// A pure truncation must recover exactly the pairs the
			// surviving prefix implies: nothing invented, nothing silently
			// dropped.
			want := modelPairs(t, dir)
			if !equalPairs(got, want) {
				t.Fatalf("trial %d (truncate): recovered pairs differ from the surviving records", trial)
			}
		}
		// Never invent pairs beyond the uncorrupted ground truth.
		if miss, ok := subset(got, ground); !ok {
			t.Fatalf("trial %d: recovery invented pair %s", trial, miss)
		}
	}
	t.Logf("crash injection: %d recovered, %d halted", recovered, halted)
	if recovered == 0 || halted == 0 {
		t.Fatalf("harness degenerate: %d recovered, %d halted — both paths must be exercised", recovered, halted)
	}
}

// TestStripedRecoveryMatchesSingleStripe is the striped-recovery
// crash-injection check: one deterministic op log is driven into a 4-stripe
// WAL and a 1-stripe WAL, both are killed -9 with commits potentially
// mid-fsync, and the per-object seq-ordered replays must agree exactly —
// fanning the log out across stripes must not change what recovery
// reconstructs. Under SyncAlways every acknowledged mutation is durable in
// both logs, so the recovered audits and values are fully determined by the
// op log, not by how the stripes happened to batch.
func TestStripedRecoveryMatchesSingleStripe(t *testing.T) {
	const stripes = 4
	dirS, dir1 := t.TempDir(), t.TempDir()

	wS, resS, stS := openWAL(t, dirS, Options{Stripes: stripes, SegmentBytes: 8 << 10})
	if resS.Stripes != stripes {
		t.Fatalf("fresh dir opened with %d stripes, want %d", resS.Stripes, stripes)
	}
	names := drive(t, stS, 11, 9, 1200)
	valsS := valuesOf(t, stS, names)
	wantS := auditAll(t, stS, names)
	wS.abandon() // kill -9; a stripe's fsync may be in flight

	// The records must genuinely interleave across stripes for the merge to
	// be exercised: at least 3 of the 4 stripes hold records.
	occupied := 0
	dsS, err := readDir(dirS)
	if err != nil {
		t.Fatal(err)
	}
	for sid := 0; sid <= dsS.maxStripe; sid++ {
		for _, sf := range dsS.segments[sid] {
			fr, err := readRecordFile(filepath.Join(dirS, sf.name), segMagic, testKey())
			if err != nil {
				t.Fatal(err)
			}
			if len(fr.recs) > 0 {
				occupied++
				break
			}
		}
	}
	if occupied < 3 {
		t.Fatalf("op log landed in only %d stripes; need >= 3 for a meaningful merge", occupied)
	}

	w1, _, st1 := openWAL(t, dir1, Options{Stripes: 1, SegmentBytes: 8 << 10})
	drive(t, st1, 11, 9, 1200) // same seed: the identical op log
	// valuesOf reads are journaled too; mirror them so the logs stay equal.
	vals1 := valuesOf(t, st1, names)
	for name, v := range valsS {
		if vals1[name] != v {
			t.Fatalf("op logs diverged before the crash: %s = %d vs %d", name, vals1[name], v)
		}
	}
	w1.abandon()

	// Recover both. The striped dir is opened with a conflicting Stripes
	// option: the on-disk pin must win, or a reconfigured restart would
	// split objects' histories across stripes.
	wSR, resSR, stSR := openWAL(t, dirS, Options{Stripes: 1})
	defer wSR.Close()
	if resSR.Stripes != stripes {
		t.Fatalf("recovery ran %d stripes despite %d on disk", resSR.Stripes, stripes)
	}
	w1R, _, st1R := openWAL(t, dir1, Options{})
	defer w1R.Close()

	requireSameAudits(t, wantS, stSR, names)
	requireSameValues(t, valsS, stSR, names)
	got1 := auditAll(t, st1R, names)
	for _, name := range names {
		if !got1[name].Same(wantS[name]) {
			t.Errorf("single-stripe replay of %s differs from the striped op log's audits", name)
		}
	}
	requireSameValues(t, valsS, st1R, names)
}
