package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"auditreg"
	"auditreg/store"
)

// RecoverResult summarizes what Open reconstructed from a data directory.
type RecoverResult struct {
	// Replay counts what was re-executed against the store.
	Replay ReplayStats
	// Records is the number of durable records scanned (snapshots + tails).
	Records int
	// Segments is the number of WAL segments scanned.
	Segments int
	// Stripes is the stripe-group count the directory runs at (pinned by
	// the files on disk once the directory is non-empty).
	Stripes int
	// SnapshotCut is the highest cut LSN among the snapshots that seeded
	// recovery, 0 when the directory had none.
	SnapshotCut uint64
	// TornBytes is the total size of the torn tails discarded from the
	// stripes' active segments (records never acknowledged as durable).
	TornBytes int64
	// AuditedNames lists the objects whose audit cursors had published
	// reports before the crash; the server re-audits them on boot.
	AuditedNames []string
	// UnknownFiles lists directory entries persist does not recognize.
	UnknownFiles []string
}

// stripeBoot is what recovery hands each stripe group before its writer
// starts: where its LSN space continues, and its crashed active segment (if
// any) awaiting a rewrite.
type stripeBoot struct {
	nextLSN    uint64
	activeFR   *fileRecords
	activeBase uint64
	activeName string
}

// Open recovers the data directory into st — which must be fresh and
// journal-less — and returns a running WAL ready to be attached with
// st.SetJournal. A directory that cannot be replayed exactly (corrupt
// snapshot, corrupt sealed segment, impossible record structure) fails with
// an explicit error; the only damage Open repairs silently is a torn tail
// at the end of each stripe's active segment, whose byte count it reports.
//
// The directory is created if absent and held under an advisory lock for
// the WAL's lifetime (released by Close, or by the operating system on
// process death). A non-empty directory pins its stripe count (see
// Options.Stripes): recovery infers it from the files on disk, so the
// name→stripe mapping survives restarts under a different configuration and
// every stripe's files always hold whole per-object histories.
func Open(dir string, key auditreg.Key, st *store.Store[uint64], opts Options) (*WAL, *RecoverResult, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	w, res, err := open(dir, key, st, opts, lock)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	return w, res, nil
}

func open(dir string, key auditreg.Key, st *store.Store[uint64], opts Options, lock *os.File) (*WAL, *RecoverResult, error) {
	ds, err := readDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if ds.maxStripe >= 0 {
		// Pin the stripe count to the files on disk. Every run creates an
		// active segment per stripe at startup, so the highest stripe id
		// present reconstructs the previous run's count exactly.
		pinned := 1
		for pinned <= ds.maxStripe {
			pinned <<= 1
		}
		opts.Stripes = pinned
	}
	res := &RecoverResult{UnknownFiles: ds.others, Stripes: opts.Stripes}
	model := newRecoverModel()
	var stale []string // fully covered files to delete after replay
	boots := make([]stripeBoot, opts.Stripes)

	// Scan each stripe: seed from its newest snapshot — which must be
	// complete: it was published by an atomic rename and sealed, so
	// anything less is corruption, and the segments it replaced are gone —
	// then its segment tail. Every record lands in ONE shared model: the
	// model is order-insensitive per object, and one object's records all
	// live in one stripe, so the cross-stripe merge is exactly the
	// single-log replay re-partitioned.
	for sid := range boots {
		b := &boots[sid]
		b.nextLSN = 1
		var cut uint64
		if snaps := ds.snapshots[sid]; len(snaps) > 0 {
			newest := snaps[len(snaps)-1]
			cut = newest.meta
			path := filepath.Join(dir, newest.name)
			fr, err := readRecordFile(path, snapMagic, key)
			if err != nil {
				return nil, nil, err
			}
			if !fr.sealed || fr.tornBytes > 0 {
				return nil, nil, fmt.Errorf("persist: snapshot %s is not sealed", path)
			}
			for i := range fr.recs {
				if err := model.add(&fr.recs[i]); err != nil {
					return nil, nil, fmt.Errorf("%s: %w", path, err)
				}
			}
			if cut > res.SnapshotCut {
				res.SnapshotCut = cut
			}
			if cut > b.nextLSN {
				b.nextLSN = cut
			}
			for _, old := range snaps[:len(snaps)-1] {
				stale = append(stale, old.name)
			}
		}

		// The stripe's segment tail. Segments below the cut are fully
		// covered by the snapshot (a crash interrupted their deletion);
		// every tail segment but the last must be sealed; the last may end
		// in a torn tail.
		var tail []walFile
		for _, sf := range ds.segments[sid] {
			if sf.meta < cut {
				stale = append(stale, sf.name)
				continue
			}
			tail = append(tail, sf)
		}
		for i, sf := range tail {
			path := filepath.Join(dir, sf.name)
			fr, err := readRecordFile(path, segMagic, key)
			if err != nil {
				return nil, nil, err
			}
			last := i == len(tail)-1
			if !last && (!fr.sealed || fr.tornBytes > 0) {
				return nil, nil, fmt.Errorf("persist: non-final segment %s is not sealed", path)
			}
			res.Segments++
			if sf.meta > b.nextLSN {
				b.nextLSN = sf.meta
			}
			for k := range fr.recs {
				if err := model.add(&fr.recs[k]); err != nil {
					return nil, nil, fmt.Errorf("%s: %w", path, err)
				}
				if fr.lsns[k] >= b.nextLSN {
					b.nextLSN = fr.lsns[k] + 1
				}
			}
			if fr.sealed {
				// The seal record consumed an LSN too.
				b.nextLSN++
			}
			if last {
				res.TornBytes += fr.tornBytes
				if !fr.sealed {
					frCopy := fr
					b.activeFR = &frCopy
					b.activeBase = sf.meta
					b.activeName = sf.name
				}
			}
		}
	}
	res.Records = model.records

	stats, err := model.replayInto(st)
	if err != nil {
		return nil, nil, err
	}
	res.Replay = stats
	seqBase := make(map[string]uint64, len(model.objects))
	for name, om := range model.objects {
		if om.maxSeq > 0 {
			seqBase[name] = om.maxSeq
		}
	}
	for name := range model.audited {
		res.AuditedNames = append(res.AuditedNames, name)
	}
	sort.Strings(res.AuditedNames)

	// Finish any interrupted cleanup before going live.
	for _, name := range stale {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return nil, nil, err
		}
	}
	if len(stale) > 0 {
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
	}

	w := &WAL{
		dir:     dir,
		key:     key,
		opts:    opts,
		lock:    lock,
		gmask:   uint64(opts.Stripes - 1),
		stopc:   make(chan struct{}),
		killc:   make(chan struct{}),
		seqBase: seqBase,
	}
	w.groups = make([]*walStripe, opts.Stripes)
	fail := func(err error) (*WAL, *RecoverResult, error) {
		for _, s := range w.groups {
			if s != nil && s.active != nil {
				s.active.Close()
			}
		}
		return nil, nil, err
	}
	for sid := range w.groups {
		s := newStripe(w, sid)
		b := &boots[sid]
		s.nextLSN = b.nextLSN
		if b.activeFR != nil {
			// The crashed run's active segment is never appended to again:
			// its torn tail may hold a partial frame whose keystream prefix
			// already reached an attacker's disk image, so reusing its
			// (nonce, lsn) stream would be a two-time pad. Rewrite the valid
			// records into a sealed replacement under a fresh nonce (atomic
			// rename), or drop the file entirely when it holds none, and
			// start a fresh segment.
			path := filepath.Join(dir, b.activeName)
			if len(b.activeFR.recs) > 0 {
				if err := writeSealedFile(dir, b.activeName, segMagic, b.activeBase, key, b.activeFR.recs, b.activeFR.lsns); err != nil {
					return fail(err)
				}
			} else {
				if err := os.Remove(path); err != nil {
					return fail(err)
				}
				if err := syncDir(dir); err != nil {
					return fail(err)
				}
			}
		}
		if err := s.openSegment(s.nextLSN); err != nil {
			return fail(err)
		}
		w.groups[sid] = s
	}
	for _, s := range w.groups {
		s.start()
	}
	return w, res, nil
}

// Snapshot compacts the log, one stripe at a time: flush and seal the
// stripe's active segment (the stripe's cut), scan everything sealed in
// that stripe into the minimal audit-equivalent record sequence, publish it
// as a snapshot file via atomic rename, and delete the covered segments and
// older snapshots. The per-stripe compaction is sound because one object's
// records all live in one stripe, so each scan sees whole per-object
// histories. Traffic keeps flowing while the scans run; only each stripe's
// flush-and-rotate moment synchronizes with its writer. It returns the
// highest cut LSN among the stripes.
func (w *WAL) Snapshot() (uint64, error) {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	if err := w.err(); err != nil {
		return 0, err
	}
	var maxCut uint64
	for _, s := range w.groups {
		cut, err := s.snapshot()
		if err != nil {
			return 0, err
		}
		if cut > maxCut {
			maxCut = cut
		}
	}
	w.snaps.Add(1)
	return maxCut, nil
}

// snapshot compacts one stripe; see WAL.Snapshot.
func (s *walStripe) snapshot() (uint64, error) {
	reply := make(chan rotateReply, 1)
	select {
	case s.rotatec <- reply:
	case <-s.done:
		if e := s.failed.Load(); e != nil {
			return 0, *e
		}
		return 0, fmt.Errorf("persist: wal is closed")
	}
	rr := <-reply
	if rr.err != nil {
		return 0, rr.err
	}
	cut := rr.cutLSN

	ds, err := readDir(s.dir)
	if err != nil {
		return 0, err
	}
	model := newRecoverModel()
	var prevCut uint64
	var prevName string
	var covered []string
	for _, sf := range ds.snapshots[s.id] {
		if sf.meta >= cut {
			return 0, fmt.Errorf("persist: stripe %d snapshot %d already covers cut %d", s.id, sf.meta, cut)
		}
		prevCut, prevName = sf.meta, sf.name
	}
	if prevCut > 0 {
		path := filepath.Join(s.dir, prevName)
		fr, err := readRecordFile(path, snapMagic, s.key)
		if err != nil {
			return 0, err
		}
		if !fr.sealed || fr.tornBytes > 0 {
			return 0, fmt.Errorf("persist: snapshot %s is not sealed", path)
		}
		for i := range fr.recs {
			if err := model.add(&fr.recs[i]); err != nil {
				return 0, fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	for _, sf := range ds.snapshots[s.id] {
		if sf.meta < cut {
			covered = append(covered, sf.name)
		}
	}
	for _, sf := range ds.segments[s.id] {
		if sf.meta >= cut {
			continue
		}
		covered = append(covered, sf.name)
		if sf.meta < prevCut {
			continue // already inside the previous snapshot
		}
		path := filepath.Join(s.dir, sf.name)
		fr, err := readRecordFile(path, segMagic, s.key)
		if err != nil {
			return 0, err
		}
		if !fr.sealed || fr.tornBytes > 0 {
			return 0, fmt.Errorf("persist: segment %s is not sealed at snapshot time", path)
		}
		for i := range fr.recs {
			if err := model.add(&fr.recs[i]); err != nil {
				return 0, fmt.Errorf("%s: %w", path, err)
			}
		}
	}

	recs, err := model.compact()
	if err != nil {
		return 0, err
	}
	lsns := make([]uint64, len(recs))
	for i := range lsns {
		lsns[i] = uint64(i)
	}
	if err := writeSealedFile(s.dir, snapshotName(s.id, cut), snapMagic, cut, s.key, recs, lsns); err != nil {
		return 0, err
	}
	for _, name := range covered {
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return 0, err
		}
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	return cut, nil
}
