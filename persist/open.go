package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"auditreg"
	"auditreg/store"
)

// RecoverResult summarizes what Open reconstructed from a data directory.
type RecoverResult struct {
	// Replay counts what was re-executed against the store.
	Replay ReplayStats
	// Records is the number of durable records scanned (snapshot + tail).
	Records int
	// Segments is the number of WAL segments scanned.
	Segments int
	// SnapshotCut is the cut LSN of the snapshot that seeded recovery, 0
	// when the directory had none.
	SnapshotCut uint64
	// TornBytes is the size of the torn tail discarded from the active
	// segment (records never acknowledged as durable).
	TornBytes int64
	// AuditedNames lists the objects whose audit cursors had published
	// reports before the crash; the server re-audits them on boot.
	AuditedNames []string
	// UnknownFiles lists directory entries persist does not recognize.
	UnknownFiles []string
}

// Open recovers the data directory into st — which must be fresh and
// journal-less — and returns a running WAL ready to be attached with
// st.SetJournal. A directory that cannot be replayed exactly (corrupt
// snapshot, corrupt sealed segment, impossible record structure) fails with
// an explicit error; the only damage Open repairs silently is a torn tail
// at the end of the active segment, whose byte count it reports.
//
// The directory is created if absent and held under an advisory lock for
// the WAL's lifetime (released by Close, or by the operating system on
// process death).
func Open(dir string, key auditreg.Key, st *store.Store[uint64], opts Options) (*WAL, *RecoverResult, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, nil, err
	}
	w, res, err := open(dir, key, st, opts, lock)
	if err != nil {
		lock.Close()
		return nil, nil, err
	}
	return w, res, nil
}

func open(dir string, key auditreg.Key, st *store.Store[uint64], opts Options, lock *os.File) (*WAL, *RecoverResult, error) {
	ds, err := readDir(dir)
	if err != nil {
		return nil, nil, err
	}
	res := &RecoverResult{UnknownFiles: ds.others}
	model := newRecoverModel()
	nextLSN := uint64(1)
	var stale []string // fully covered files to delete after replay

	// Seed from the newest snapshot, which must be complete: it was
	// published by an atomic rename and sealed, so anything less is
	// corruption, and the segments it replaced are gone.
	var cut uint64
	if n := len(ds.snapshots); n > 0 {
		cut = ds.snapshots[n-1]
		path := filepath.Join(dir, snapshotName(cut))
		fr, err := readRecordFile(path, snapMagic, key)
		if err != nil {
			return nil, nil, err
		}
		if !fr.sealed || fr.tornBytes > 0 {
			return nil, nil, fmt.Errorf("persist: snapshot %s is not sealed", path)
		}
		for i := range fr.recs {
			if err := model.add(&fr.recs[i]); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
		}
		res.SnapshotCut = cut
		if cut > nextLSN {
			nextLSN = cut
		}
		for _, old := range ds.snapshots[:n-1] {
			stale = append(stale, snapshotName(old))
		}
	}

	// Scan the segment tail. Segments below the cut are fully covered by
	// the snapshot (a crash interrupted their deletion); every tail segment
	// but the last must be sealed; the last may end in a torn tail.
	var tail []uint64
	for _, base := range ds.segments {
		if base < cut {
			stale = append(stale, segmentName(base))
			continue
		}
		tail = append(tail, base)
	}
	var activeFR *fileRecords
	var activeBase uint64
	for i, base := range tail {
		path := filepath.Join(dir, segmentName(base))
		fr, err := readRecordFile(path, segMagic, key)
		if err != nil {
			return nil, nil, err
		}
		last := i == len(tail)-1
		if !last && (!fr.sealed || fr.tornBytes > 0) {
			return nil, nil, fmt.Errorf("persist: non-final segment %s is not sealed", path)
		}
		res.Segments++
		if base > nextLSN {
			nextLSN = base
		}
		for k := range fr.recs {
			if err := model.add(&fr.recs[k]); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			if fr.lsns[k] >= nextLSN {
				nextLSN = fr.lsns[k] + 1
			}
		}
		if fr.sealed {
			// The seal record consumed an LSN too.
			nextLSN++
		}
		if last {
			res.TornBytes = fr.tornBytes
			if !fr.sealed {
				frCopy := fr
				activeFR = &frCopy
				activeBase = base
			}
		}
	}
	res.Records = model.records

	stats, err := model.replayInto(st)
	if err != nil {
		return nil, nil, err
	}
	res.Replay = stats
	seqBase := make(map[string]uint64, len(model.objects))
	for name, om := range model.objects {
		if om.maxSeq > 0 {
			seqBase[name] = om.maxSeq
		}
	}
	for name := range model.audited {
		res.AuditedNames = append(res.AuditedNames, name)
	}
	sort.Strings(res.AuditedNames)

	// Finish any interrupted cleanup before going live.
	for _, name := range stale {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return nil, nil, err
		}
	}
	if len(stale) > 0 {
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
	}

	w := &WAL{
		dir:      dir,
		key:      key,
		opts:     opts,
		lock:     lock,
		stripes:  make([]stripe, opts.Stripes),
		mask:     uint64(opts.Stripes - 1),
		notify:   make(chan struct{}, 1),
		stopc:    make(chan struct{}),
		killc:    make(chan struct{}),
		rotatec:  make(chan chan rotateReply),
		flushc:   make(chan chan error),
		done:     make(chan struct{}),
		syncc:    make(chan syncJob),
		syncack:  make(chan syncAck, 1),
		syncdone: make(chan struct{}),
		cur:      make([]pending, 0, 256),
		spare:    make([]pending, 0, 256),
		nextLSN:  nextLSN,
		seqBase:  seqBase,
	}
	if activeFR != nil {
		// The crashed run's active segment is never appended to again: its
		// torn tail may hold a partial frame whose keystream prefix already
		// reached an attacker's disk image, so reusing its (nonce, lsn)
		// stream would be a two-time pad. Rewrite the valid records into a
		// sealed replacement under a fresh nonce (atomic rename), or drop
		// the file entirely when it holds none, and start a fresh segment.
		path := filepath.Join(dir, segmentName(activeBase))
		if len(activeFR.recs) > 0 {
			if err := writeSealedFile(dir, segmentName(activeBase), segMagic, activeBase, key, activeFR.recs, activeFR.lsns); err != nil {
				return nil, nil, err
			}
		} else {
			if err := os.Remove(path); err != nil {
				return nil, nil, err
			}
			if err := syncDir(dir); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := w.openSegment(w.nextLSN); err != nil {
		return nil, nil, err
	}
	w.lastSync = time.Now()
	go w.run()
	go w.syncLoop()
	return w, res, nil
}

// Snapshot compacts the log: it flushes and seals the active segment (the
// cut), scans everything sealed into the minimal audit-equivalent record
// sequence, publishes it as a snapshot file via atomic rename, and deletes
// the covered segments and older snapshots. Traffic keeps flowing while the
// scan runs; only the flush-and-rotate moment synchronizes with the writer.
// It returns the cut LSN.
func (w *WAL) Snapshot() (uint64, error) {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	if err := w.err(); err != nil {
		return 0, err
	}
	reply := make(chan rotateReply, 1)
	select {
	case w.rotatec <- reply:
	case <-w.done:
		return 0, w.err()
	}
	rr := <-reply
	if rr.err != nil {
		return 0, rr.err
	}
	cut := rr.cutLSN

	ds, err := readDir(w.dir)
	if err != nil {
		return 0, err
	}
	model := newRecoverModel()
	var prevCut uint64
	var covered []string
	for _, sc := range ds.snapshots {
		if sc >= cut {
			return 0, fmt.Errorf("persist: snapshot %d already covers cut %d", sc, cut)
		}
		prevCut = sc
	}
	if prevCut > 0 {
		path := filepath.Join(w.dir, snapshotName(prevCut))
		fr, err := readRecordFile(path, snapMagic, w.key)
		if err != nil {
			return 0, err
		}
		if !fr.sealed || fr.tornBytes > 0 {
			return 0, fmt.Errorf("persist: snapshot %s is not sealed", path)
		}
		for i := range fr.recs {
			if err := model.add(&fr.recs[i]); err != nil {
				return 0, fmt.Errorf("%s: %w", path, err)
			}
		}
	}
	for _, sc := range ds.snapshots {
		if sc < cut {
			covered = append(covered, snapshotName(sc))
		}
	}
	for _, base := range ds.segments {
		if base >= cut {
			continue
		}
		covered = append(covered, segmentName(base))
		if base < prevCut {
			continue // already inside the previous snapshot
		}
		path := filepath.Join(w.dir, segmentName(base))
		fr, err := readRecordFile(path, segMagic, w.key)
		if err != nil {
			return 0, err
		}
		if !fr.sealed || fr.tornBytes > 0 {
			return 0, fmt.Errorf("persist: segment %s is not sealed at snapshot time", path)
		}
		for i := range fr.recs {
			if err := model.add(&fr.recs[i]); err != nil {
				return 0, fmt.Errorf("%s: %w", path, err)
			}
		}
	}

	recs, err := model.compact()
	if err != nil {
		return 0, err
	}
	lsns := make([]uint64, len(recs))
	for i := range lsns {
		lsns[i] = uint64(i)
	}
	if err := writeSealedFile(w.dir, snapshotName(cut), snapMagic, cut, w.key, recs, lsns); err != nil {
		return 0, err
	}
	for _, name := range covered {
		if err := os.Remove(filepath.Join(w.dir, name)); err != nil && !os.IsNotExist(err) {
			return 0, err
		}
	}
	if err := syncDir(w.dir); err != nil {
		return 0, err
	}
	w.snaps.Add(1)
	return cut, nil
}
