//go:build !linux

package persist

import "os"

// fdatasync falls back to a full fsync where fdatasync(2) is unavailable
// (darwin et al.) — strictly stronger, just slower.
func fdatasync(f *os.File) error { return f.Sync() }
