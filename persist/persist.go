// Package persist is the durability layer of auditd: a segmented,
// append-only, CRC-framed write-ahead log over the mutations of a sharded
// store (package auditreg/store), with group commit, compacting snapshots,
// and deterministic crash recovery.
//
// # No leaks at rest
//
// PR 3 pinned the wire invariant — no transmitted frame ever carries a
// decrypted reader set. This package extends the same invariant to stable
// storage: every record body (object names, values, reader indices, sequence
// numbers — everything after the fixed CRC frame) is XOR-encrypted under a
// per-record pad stream derived from a persist key that lives only in server
// memory, never in the data directory. A curious party with disk access, or
// a stolen snapshot, learns no more than a curious network observer: record
// counts, sizes, and types, but no reader set, no register value, no object
// name. persist's leak test sweeps the raw bytes of every file in a data
// directory for exactly the plaintext patterns a naive log would contain,
// mirroring server/leak_test.go; cmd/leakprobe and internal/attacker share
// the same scanner (ScanPlaintext).
//
// # Write path
//
// The WAL implements store.Journal[uint64]: the log is split into
// Options.Stripes independently committing stripe groups, and an object's
// mutations always land in the stripe its name hashes to (the same hash the
// store's shard map uses), so per-object record order survives the fan-out.
// Each stripe owns its segment files and runs its own writer goroutine,
// which drains the stripe's append buffer, assigns that stripe's log
// sequence numbers, encrypts the whole batch against the active segment's
// block-derived pad stream, appends, and fsyncs per policy — SyncAlways
// (adaptive group commit with a pipelined fsync: mutators block until their
// batch is stable, and the writer holds the commit window open up to
// Options.BatchDelay while more blocked mutators are in flight on the same
// stripe, so one fsync absorbs them all; announce and audit records ride
// along without ever paying for, or causing, a sync), SyncInterval (bounded
// data loss window), or SyncNever (page cache only). The hot path is never
// serialized through a single lock or a single disk queue: stripes contend
// only within themselves, commits on distinct stripes fsync concurrently,
// and only SyncAlways mutators wait. Stats.SyncHist — surfaced through the
// server's STATS verb, summed across stripes — histograms records-per-fsync,
// making the batching observable rather than inferred.
//
// # Recovery and snapshots
//
// Recovery replays a data directory into a fresh store: the newest snapshot
// first, then every sealed segment, then the torn tail of the active
// segment. Replay is ordered per object by the sequence numbers recorded at
// journal time (concurrent writers may journal out of install order), and a
// fetch record can stand in for the write it observed when that write's own
// record missed the final group commit — an acknowledged effective read is
// therefore never silently dropped. Anything that cannot be replayed exactly
// halts recovery with an explicit error; the only tolerated damage is a torn
// tail at the very end of the active segment.
//
// Snapshot compacts: it seals the active segment, scans everything sealed
// into the minimal record sequence that reproduces an audit-equivalent store
// (one write per audited value, one fetch per audited pair, the final
// value), writes it as a snapshot file via atomic rename, and deletes the
// covered segments and older snapshots. auditd triggers it on SIGHUP.
package persist

import (
	"crypto/sha256"
	"runtime"
	"time"

	"auditreg"
	"auditreg/internal/telem"
)

// Policy selects when the WAL writer calls fsync.
type Policy uint8

const (
	// SyncAlways fsyncs every batch; mutations with durability semantics
	// (open, write, fetch) block until their record is stable. The paper's
	// guarantee survives kill -9: every acknowledged effective read is in
	// the log.
	SyncAlways Policy = iota
	// SyncInterval fsyncs at least every Options.Interval; mutations never
	// block on the disk. A crash loses at most one interval of
	// acknowledged operations.
	SyncInterval
	// SyncNever leaves flushing to the operating system. A crash of the
	// process alone loses nothing (the page cache survives); a machine
	// crash may lose anything unflushed.
	SyncNever
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return "Policy(?)"
	}
}

// ParsePolicy parses the -fsync flag spellings.
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "always":
		return SyncAlways, true
	case "interval":
		return SyncInterval, true
	case "never":
		return SyncNever, true
	default:
		return 0, false
	}
}

// Defaults for Options fields left zero. Stripes defaults to
// runtime.GOMAXPROCS(0) — one independently committing WAL stripe per
// executor the server runs — rounded up to a power of two and capped at
// MaxStripes.
const (
	DefaultInterval     = 50 * time.Millisecond
	DefaultSegmentBytes = 64 << 20
	DefaultBatchDelay   = 500 * time.Microsecond
	DefaultBatchBytes   = 1 << 20
)

// MaxStripes bounds the stripe-group count: the stripe id is rendered as two
// hex digits in file names, and 256 writer goroutines is already far past
// any sensible configuration.
const MaxStripes = 256

// Options configures a WAL. The zero value of every field selects the
// documented default (policy SyncAlways).
type Options struct {
	// Policy selects the fsync policy (default SyncAlways).
	Policy Policy
	// Interval is the flush+fsync cadence under SyncInterval (default
	// DefaultInterval). Ignored by the other policies.
	Interval time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default DefaultSegmentBytes).
	SegmentBytes int64
	// Stripes is the number of WAL stripe groups (default
	// runtime.GOMAXPROCS(0), rounded up to a power of two, capped at
	// MaxStripes). Each stripe owns its segment files, its writer
	// goroutine, its adaptive group-commit window, and its pipelined
	// fsync, so commits on distinct stripes proceed — and sync — in
	// parallel. One object's records always land in one stripe (chosen by
	// the same name hash the store's shard map uses), preserving their
	// order; per-stripe snapshots therefore always see whole per-object
	// histories.
	//
	// A non-empty data directory pins its stripe count: Open infers it
	// from the files on disk and ignores this field, so the name→stripe
	// mapping — and with it the whole-history property — survives restarts
	// under a different configuration. To restripe, compact into a fresh
	// directory.
	Stripes int
	// BatchDelay bounds the adaptive group-commit window under SyncAlways:
	// when more blocking mutators are in flight than the drained batch
	// already holds, the writer waits up to this long for their records
	// before the one fsync that makes the whole batch stable. The window
	// closes as soon as every known waiter is absorbed, so an uncontended
	// log pays none of it. 0 selects DefaultBatchDelay; negative disables
	// the window. Ignored by the other policies.
	BatchDelay time.Duration
	// BatchBytes closes the window early once the pending batch's encoded
	// size exceeds it (default DefaultBatchBytes).
	BatchBytes int
	// SyncLatency, when non-nil, receives one observation per fdatasync on
	// segment data — the wall-clock cost of making a group commit stable.
	// Each stripe observes on its own histogram stripe (by stripe id), so
	// the hook adds no contention to the sync path. Aggregate-only, like
	// all telemetry (see internal/telem).
	SyncLatency *telem.Hist
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.Stripes <= 0 {
		o.Stripes = runtime.GOMAXPROCS(0)
	}
	if o.Stripes > MaxStripes {
		o.Stripes = MaxStripes
	}
	n := 1
	for n < o.Stripes {
		n <<= 1
	}
	o.Stripes = n
	if o.BatchDelay == 0 {
		o.BatchDelay = DefaultBatchDelay
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = DefaultBatchBytes
	}
	return o
}

// DeriveKey derives the persist key from the store master key: SHA-256 over
// a domain tag and the key, so the on-disk pad streams are disjoint from
// every pad family the store and the wire derive from the same secret. The
// derived key must be held outside the data directory — it is what makes a
// stolen data directory worthless.
func DeriveKey(storeKey auditreg.Key) auditreg.Key {
	h := sha256.New()
	h.Write([]byte("auditreg/persist/key/v1\x00"))
	h.Write(storeKey[:])
	var out auditreg.Key
	h.Sum(out[:0])
	return out
}
