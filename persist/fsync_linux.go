package persist

import (
	"os"
	"syscall"
)

// fdatasync makes f's appended data durable: fdatasync(2), which skips the
// inode timestamp flush fsync pays but — per POSIX — still flushes the
// metadata required to retrieve the data (the size, for an append). That is
// exactly the WAL's need: a record is durable when its bytes can be read
// back after a crash, and recovery already tolerates a torn tail.
func fdatasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}
