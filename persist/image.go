package persist

import (
	"os"
	"path/filepath"
	"sort"
)

// ImageFile is one captured file of a data directory: its path relative to
// the directory root and its full contents.
type ImageFile struct {
	Name string
	Data []byte
}

// CaptureImage reads every regular file under dir (recursively) and returns
// them sorted by relative path — a deterministic flattening of a data
// directory, the raw material of paired-run disk attacks: an observer diffs
// the images of two alternate executions (read happened vs. didn't, reader 0
// vs. reader 1) and tries to tell them apart. internal/attacker's disk
// distinguisher and cmd/leakprobe's E18 series are built on it; it shares
// nothing with the record decoders on purpose, so a leak in any layer of the
// on-disk format — headers, padding, names — is visible to it.
func CaptureImage(dir string) ([]ImageFile, error) {
	var out []ImageFile
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || !info.Mode().IsRegular() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out = append(out, ImageFile{Name: rel, Data: b})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
