package persist

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
)

// Needle is one plaintext pattern a curious party with disk access would
// look for. BuildNeedles derives the standard set from known traffic; tests
// and cmd/leakprobe add their own.
type Needle struct {
	// Desc says what the pattern is, for reporting ("value 0xA1B2... LE").
	Desc string
	// Pattern is the raw byte pattern.
	Pattern []byte
}

// Finding is one needle located in one file: the on-disk leak a masked log
// must never produce.
type Finding struct {
	File   string
	Offset int64
	Desc   string
}

// BuildNeedles derives the standard plaintext patterns for known traffic:
// every value in both byte orders, every object name, and — the paper's
// cardinal sin — the 16-byte (value, reader-set) row a naive audit log would
// contain, for every value with a non-empty reader set.
func BuildNeedles(names []string, values []uint64, readerSets map[uint64]uint64) []Needle {
	var out []Needle
	for _, name := range names {
		if len(name) >= 4 { // shorter strings would false-positive on random bytes
			out = append(out, Needle{Desc: "object name " + name, Pattern: []byte(name)})
		}
	}
	for _, v := range values {
		var be, le [8]byte
		binary.BigEndian.PutUint64(be[:], v)
		binary.LittleEndian.PutUint64(le[:], v)
		out = append(out, Needle{Desc: "value (big-endian)", Pattern: be[:]})
		out = append(out, Needle{Desc: "value (little-endian)", Pattern: le[:]})
	}
	for v, readers := range readerSets {
		if readers == 0 {
			continue
		}
		var row [16]byte
		binary.BigEndian.PutUint64(row[:8], v)
		binary.BigEndian.PutUint64(row[8:], readers)
		out = append(out, Needle{Desc: "audit row (value, reader set)", Pattern: row[:]})
	}
	return out
}

// ScanPlaintext sweeps the raw bytes of every regular file under dir
// (recursively) for the needles. It is decoder-independent by design — the
// same sweep the wire-level leak test runs over transmitted frames, aimed
// at the data directory — and it is shared by persist's own leak test,
// internal/attacker, and cmd/leakprobe.
func ScanPlaintext(dir string, needles []Needle) (findings []Finding, filesScanned int, bytesScanned int64, err error) {
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || !info.Mode().IsRegular() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		filesScanned++
		bytesScanned += int64(len(b))
		for _, n := range needles {
			if len(n.Pattern) == 0 {
				continue
			}
			for off := 0; ; {
				i := bytes.Index(b[off:], n.Pattern)
				if i < 0 {
					break
				}
				findings = append(findings, Finding{File: path, Offset: int64(off + i), Desc: n.Desc})
				off += i + 1
			}
		}
		return nil
	})
	return findings, filesScanned, bytesScanned, err
}
