package persist

import (
	"sync"
	"testing"
	"time"

	"auditreg/store"
)

// TestGroupCommitAbsorbsConcurrentMutators pins the adaptive commit window:
// many goroutines writing under SyncAlways must share fsyncs — far fewer
// syncs than records — and the batch-size histogram must record multi-record
// syncs, while every write still blocks until stable.
func TestGroupCommitAbsorbsConcurrentMutators(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{Policy: SyncAlways, BatchDelay: 2 * time.Millisecond})
	const writers = 8
	const perWriter = 50
	objs := make([]*store.Object[uint64], writers)
	for i := range objs {
		var err error
		if objs[i], err = st.Open("batch-"+string(rune('a'+i)), store.Register); err != nil {
			t.Fatalf("Open: %v", err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				if err := objs[i].Write(uint64(k + 1)); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	stats := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if stats.Records < writers*perWriter {
		t.Fatalf("recorded %d records, want >= %d", stats.Records, writers*perWriter)
	}
	// With 8 concurrent blocked writers the window must coalesce: demand
	// strictly better than one fsync per two records (the pre-adaptive
	// behavior hovered at ~2 records/sync under much higher concurrency).
	if stats.Syncs == 0 || stats.Records/stats.Syncs < 2 {
		t.Fatalf("group commit did not batch: %d syncs for %d records", stats.Syncs, stats.Records)
	}
	var multi, histTotal uint64
	for i, n := range stats.SyncHist {
		histTotal += n
		if i >= 2 { // buckets ≤4 and up
			multi += n
		}
	}
	if histTotal != stats.Syncs {
		t.Fatalf("histogram counts %d syncs, Stats.Syncs says %d", histTotal, stats.Syncs)
	}
	if multi == 0 {
		t.Fatalf("no sync batched more than 2 records; histogram %v", stats.SyncHist)
	}
}

// TestUncontendedWritePaysNoWindow pins the adaptive half of the window: a
// single blocking mutator (waiters == batch) must commit without waiting out
// BatchDelay. With a deliberately enormous delay, 20 sequential writes only
// finish in reasonable time if the window closes immediately.
func TestUncontendedWritePaysNoWindow(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{Policy: SyncAlways, BatchDelay: time.Second})
	obj, err := st.Open("solo", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	start := time.Now()
	for k := 0; k < 20; k++ {
		if err := obj.Write(uint64(k + 1)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	elapsed := time.Since(start)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// 20 windows of 1s would take 20s; even one would take 1s. Allow wide
	// slack for slow CI disks — the point is the order of magnitude.
	if elapsed > 5*time.Second {
		t.Fatalf("20 uncontended writes took %v; the commit window is not closing early", elapsed)
	}
}

// TestSyncAlwaysAnnouncesDoNotSync pins that announce records — pure
// helping, journaled non-blocking — do not trigger fsyncs of their own under
// SyncAlways: after a read's fetch has synced, its pipelined announce leaves
// the sync count alone (the periodic tick may flush it later).
func TestSyncAlwaysAnnouncesDoNotSync(t *testing.T) {
	dir := t.TempDir()
	w, _, st := openWAL(t, dir, Options{Policy: SyncAlways, Interval: time.Hour})
	obj, err := st.Open("ann", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := obj.Write(7); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := obj.Read(0); err != nil { // fetch (blocking, syncs) + announce (not)
		t.Fatalf("Read: %v", err)
	}
	base := w.Stats().Syncs
	deadline := time.Now().Add(time.Second)
	for w.Stats().Records < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond) // let the writer consume the announce
	}
	if got := w.Stats().Syncs; got != base {
		t.Fatalf("announce record triggered a sync: %d -> %d", base, got)
	}
	// The announce still becomes durable on close (drain forces a sync).
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
