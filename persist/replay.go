package persist

import (
	"fmt"
	"sort"

	"auditreg/store"
)

// recoverModel accumulates the logical content of a record stream (snapshot
// plus segment tail) before it is replayed into a store or compacted into a
// fresh snapshot. Records may arrive in any interleaving across objects;
// within one object the model keeps arrival order and sorts by sequence
// number where replay demands it.
type recoverModel struct {
	objects map[string]*objModel
	order   []string
	audited map[string]bool

	records   int
	announces int
}

type objModel struct {
	name     string
	kind     store.Kind
	capacity uint32
	openSeen bool   // an explicit OpOpen record arrived
	maxSeq   uint64 // highest sequence number any record carries
	writes   []writeEv
	fetches  []fetchEv
}

type writeEv struct {
	seq   uint64 // Register install seq; 0 for MaxRegister
	value uint64
}

type fetchEv struct {
	reader int
	seq    uint64
	value  uint64
}

func newRecoverModel() *recoverModel {
	return &recoverModel{objects: make(map[string]*objModel), audited: make(map[string]bool)}
}

// obj returns (creating if needed) the model of the named object. A missing
// open record — possible when the open missed the final group commit but a
// later mutation record survived — synthesizes one from the mutation's kind.
func (m *recoverModel) obj(name string, kind store.Kind) (*objModel, error) {
	om, ok := m.objects[name]
	if !ok {
		om = &objModel{name: name, kind: kind}
		m.objects[name] = om
		m.order = append(m.order, name)
		return om, nil
	}
	if om.kind != kind {
		return nil, fmt.Errorf("persist: object %q recorded as both %v and %v", name, om.kind, kind)
	}
	return om, nil
}

// add folds one record into the model.
func (m *recoverModel) add(rec *Record) error {
	m.records++
	kind := store.Kind(rec.Kind)
	switch rec.Op {
	case OpOpen:
		if kind != store.Register && kind != store.MaxRegister {
			return fmt.Errorf("persist: open record for %q with unreplayable kind %d", rec.Name, rec.Kind)
		}
		om, err := m.obj(rec.Name, kind)
		if err != nil {
			return err
		}
		if om.openSeen {
			return fmt.Errorf("persist: duplicate open record for %q", rec.Name)
		}
		om.openSeen = true
		om.capacity = rec.Capacity
	case OpWrite:
		om, err := m.obj(rec.Name, kind)
		if err != nil {
			return err
		}
		if kind == store.Register && rec.Seq == 0 {
			return fmt.Errorf("persist: register write record for %q with seq 0", rec.Name)
		}
		if rec.Seq > om.maxSeq {
			om.maxSeq = rec.Seq
		}
		om.writes = append(om.writes, writeEv{seq: rec.Seq, value: rec.Value})
	case OpFetch:
		om, err := m.obj(rec.Name, kind)
		if err != nil {
			return err
		}
		if rec.Seq > om.maxSeq {
			om.maxSeq = rec.Seq
		}
		om.fetches = append(om.fetches, fetchEv{reader: int(rec.Reader), seq: rec.Seq, value: rec.Value})
	case OpAnnounce:
		m.announces++
	case OpAudit:
		m.audited[rec.Name] = true
	case OpSeal:
		// Seals are consumed by the file reader; one here is corruption.
		return fmt.Errorf("persist: seal record in record stream")
	default:
		return fmt.Errorf("persist: unknown record op %d", uint8(rec.Op))
	}
	return nil
}

// regEvent is one sequence-number slot of a Register's replay schedule: the
// write that installed it (possibly absent — then the slot's fetches testify
// to its value) and the effective reads that observed it.
type regEvent struct {
	seq      uint64
	value    uint64
	hasWrite bool
	fetches  []fetchEv
}

// registerSchedule validates and orders a Register object's events: writes
// sorted by install seq, fetches attached to the seq they observed. It
// returns the schedule and the final register value (the value of the
// highest slot), hasFinal false when the object saw no events.
func (om *objModel) registerSchedule() (events []regEvent, finalValue uint64, hasFinal bool, err error) {
	slots := make(map[uint64]*regEvent)
	slot := func(seq uint64) *regEvent {
		ev, ok := slots[seq]
		if !ok {
			ev = &regEvent{seq: seq}
			slots[seq] = ev
		}
		return ev
	}
	for _, wr := range om.writes {
		ev := slot(wr.seq)
		if ev.hasWrite && ev.value != wr.value {
			return nil, 0, false, fmt.Errorf("persist: %q: conflicting writes at seq %d (%d and %d)", om.name, wr.seq, ev.value, wr.value)
		}
		ev.hasWrite = true
		ev.value = wr.value
	}
	seen := make(map[[2]uint64]bool) // (reader, seq) pairs
	for _, f := range om.fetches {
		k := [2]uint64{uint64(f.reader), f.seq}
		if seen[k] {
			return nil, 0, false, fmt.Errorf("persist: %q: duplicate fetch record for reader %d at seq %d", om.name, f.reader, f.seq)
		}
		seen[k] = true
		if f.seq == 0 {
			// Seq 0 is the initial value: no write slot to check against.
			ev := slot(0)
			ev.value = f.value
			ev.fetches = append(ev.fetches, f)
			continue
		}
		ev := slot(f.seq)
		if ev.hasWrite && ev.value != f.value {
			return nil, 0, false, fmt.Errorf("persist: %q: fetch at seq %d observed %d but the write installed %d", om.name, f.seq, f.value, ev.value)
		}
		if !ev.hasWrite && len(ev.fetches) > 0 && ev.value != f.value {
			return nil, 0, false, fmt.Errorf("persist: %q: fetches at seq %d observed both %d and %d", om.name, f.seq, ev.value, f.value)
		}
		ev.value = f.value
		ev.fetches = append(ev.fetches, f)
	}
	events = make([]regEvent, 0, len(slots))
	for _, ev := range slots {
		events = append(events, *ev)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].seq < events[j].seq })
	// Per-reader fetch seqs must be strictly increasing — they are in any
	// real history (SN is monotone and a reader fetches a seq at most once).
	last := make(map[int]uint64)
	for _, ev := range events {
		for _, f := range ev.fetches {
			if prev, ok := last[f.reader]; ok && f.seq <= prev {
				return nil, 0, false, fmt.Errorf("persist: %q: reader %d fetch seqs not increasing (%d after %d)", om.name, f.reader, f.seq, prev)
			}
			last[f.reader] = f.seq
		}
	}
	if n := len(events); n > 0 {
		lastEv := events[n-1]
		if lastEv.seq > 0 || lastEv.hasWrite {
			finalValue, hasFinal = lastEv.value, true
		}
	}
	return events, finalValue, hasFinal, nil
}

// maxSchedule validates and orders a MaxRegister object's events: fetches in
// seq (chronological) order — whose observed values must be nondecreasing,
// as a max register's reads are — and writes in value order.
func (om *objModel) maxSchedule() (writes []writeEv, fetches []fetchEv, err error) {
	writes = append([]writeEv(nil), om.writes...)
	sort.SliceStable(writes, func(i, j int) bool { return writes[i].value < writes[j].value })
	fetches = append([]fetchEv(nil), om.fetches...)
	sort.SliceStable(fetches, func(i, j int) bool { return fetches[i].seq < fetches[j].seq })
	seen := make(map[[2]uint64]bool)
	var lastVal uint64
	for i, f := range fetches {
		k := [2]uint64{uint64(f.reader), f.seq}
		if seen[k] {
			return nil, nil, fmt.Errorf("persist: %q: duplicate fetch record for reader %d at seq %d", om.name, f.reader, f.seq)
		}
		seen[k] = true
		if i > 0 && f.value < lastVal {
			return nil, nil, fmt.Errorf("persist: %q: fetched values not nondecreasing (%d after %d)", om.name, f.value, lastVal)
		}
		lastVal = f.value
	}
	return writes, fetches, nil
}

// ReplayStats summarizes what recovery reconstructed.
type ReplayStats struct {
	Objects     int // objects re-opened
	Writes      int // write records replayed
	Fetches     int // effective reads replayed (and re-audited)
	Synthesized int // writes re-created from the fetch records that observed them
}

// replayInto re-executes the model against a fresh store. The store must be
// journal-less (recovery must not re-journal itself); the caller attaches
// the WAL afterwards. Replay is serial, so every operation completes and
// the resulting audit state is exactly the model's pair set; any observation
// that cannot be reproduced — a fetch whose value the replayed object does
// not return — halts with an error rather than dropping an audited read.
func (m *recoverModel) replayInto(st *store.Store[uint64]) (ReplayStats, error) {
	var stats ReplayStats
	if st.Journaled() {
		return stats, fmt.Errorf("persist: replay target store already has a journal attached")
	}
	for _, name := range m.order {
		om := m.objects[name]
		var opts []store.OpenOption
		if om.capacity > 0 {
			opts = append(opts, store.WithObjectCapacity(int(om.capacity)))
		}
		obj, err := st.Open(name, om.kind, opts...)
		if err != nil {
			return stats, fmt.Errorf("persist: replay open %q: %w", name, err)
		}
		stats.Objects++
		switch om.kind {
		case store.Register:
			err = replayRegister(obj, om, &stats)
		case store.MaxRegister:
			err = replayMax(obj, om, &stats)
		default:
			err = fmt.Errorf("persist: replay %q: unreplayable kind %v", name, om.kind)
		}
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func replayRegister(obj *store.Object[uint64], om *objModel, stats *ReplayStats) error {
	events, _, _, err := om.registerSchedule()
	if err != nil {
		return err
	}
	for _, ev := range events {
		if ev.seq > 0 {
			if err := obj.Write(ev.value); err != nil {
				return fmt.Errorf("persist: replay write %q: %w", om.name, err)
			}
			if ev.hasWrite {
				stats.Writes++
			} else {
				stats.Synthesized++
			}
		}
		for _, f := range ev.fetches {
			if err := replayFetch(obj, om.name, f, stats); err != nil {
				return err
			}
		}
	}
	return nil
}

func replayMax(obj *store.Object[uint64], om *objModel, stats *ReplayStats) error {
	writes, fetches, err := om.maxSchedule()
	if err != nil {
		return err
	}
	var appliedMax uint64
	hasApplied := false
	apply := func(v uint64, synth bool) error {
		if err := obj.Write(v); err != nil {
			return fmt.Errorf("persist: replay writeMax %q: %w", om.name, err)
		}
		if !hasApplied || v > appliedMax {
			appliedMax, hasApplied = v, true
		}
		if synth {
			stats.Synthesized++
		} else {
			stats.Writes++
		}
		return nil
	}
	wi := 0
	for _, f := range fetches {
		for wi < len(writes) && writes[wi].value <= f.value {
			if err := apply(writes[wi].value, false); err != nil {
				return err
			}
			wi++
		}
		// Seq 0 observes the initial value; nothing to synthesize for it.
		if f.seq > 0 && (!hasApplied || appliedMax < f.value) {
			if err := apply(f.value, true); err != nil {
				return err
			}
		}
		if err := replayFetch(obj, om.name, f, stats); err != nil {
			return err
		}
	}
	for ; wi < len(writes); wi++ {
		if err := apply(writes[wi].value, false); err != nil {
			return err
		}
	}
	return nil
}

// replayFetch re-executes one effective read and verifies it observes the
// recorded value.
func replayFetch(obj *store.Object[uint64], name string, f fetchEv, stats *ReplayStats) error {
	val, _, _, err := obj.ReadFetch(f.reader)
	if err != nil {
		return fmt.Errorf("persist: replay fetch %q reader %d: %w", name, f.reader, err)
	}
	if val != f.value {
		return fmt.Errorf("persist: replay fetch %q reader %d at seq %d observed %d, log recorded %d — refusing to drop an audited read", name, f.reader, f.seq, val, f.value)
	}
	stats.Fetches++
	return nil
}

// compact emits the minimal record sequence that reproduces the model's
// audit state: per object, one open record, one write per value that must be
// observable, one fetch per audited (reader, value) pair, and a final write
// restoring the current value; plus one audit record per object that had a
// published report. Original sequence numbers are preserved so records in
// segment tails beyond the snapshot keep interleaving correctly.
func (m *recoverModel) compact() ([]Record, error) {
	var out []Record
	for _, name := range m.order {
		om := m.objects[name]
		out = append(out, Record{Op: OpOpen, Name: name, Kind: uint8(om.kind), Capacity: om.capacity})
		var err error
		switch om.kind {
		case store.Register:
			out, err = om.compactRegister(out)
		case store.MaxRegister:
			out, err = om.compactMax(out)
		default:
			err = fmt.Errorf("persist: compact %q: unreplayable kind %v", name, om.kind)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, name := range m.order {
		if m.audited[name] {
			out = append(out, Record{Op: OpAudit, Name: name, Kind: uint8(m.objects[name].kind)})
		}
	}
	return out, nil
}

func (om *objModel) compactRegister(out []Record) ([]Record, error) {
	events, finalValue, hasFinal, err := om.registerSchedule()
	if err != nil {
		return nil, err
	}
	paired := make(map[[2]uint64]bool) // (reader, value) pairs already emitted
	var lastEmitted uint64
	hasEmitted := false
	for _, ev := range events {
		for _, f := range ev.fetches {
			k := [2]uint64{uint64(f.reader), f.value}
			if paired[k] {
				continue
			}
			paired[k] = true
			if ev.seq > 0 && (!hasEmitted || lastEmitted != ev.value) {
				out = append(out, Record{Op: OpWrite, Name: om.name, Kind: uint8(store.Register), Seq: ev.seq, Value: ev.value})
				lastEmitted, hasEmitted = ev.value, true
			}
			out = append(out, Record{Op: OpFetch, Name: om.name, Kind: uint8(store.Register), Reader: uint8(f.reader), Seq: ev.seq, Value: f.value})
		}
	}
	if hasFinal && (!hasEmitted || lastEmitted != finalValue) {
		out = append(out, Record{Op: OpWrite, Name: om.name, Kind: uint8(store.Register), Seq: events[len(events)-1].seq, Value: finalValue})
	}
	return out, nil
}

func (om *objModel) compactMax(out []Record) ([]Record, error) {
	writes, fetches, err := om.maxSchedule()
	if err != nil {
		return nil, err
	}
	var finalMax uint64
	hasMax := false
	note := func(v uint64) {
		if !hasMax || v > finalMax {
			finalMax, hasMax = v, true
		}
	}
	for _, wr := range writes {
		note(wr.value)
	}
	paired := make(map[[2]uint64]bool)
	var lastEmitted uint64
	hasEmitted := false
	for _, f := range fetches {
		if f.seq > 0 {
			note(f.value)
		}
		k := [2]uint64{uint64(f.reader), f.value}
		if paired[k] {
			continue
		}
		paired[k] = true
		if f.seq > 0 && (!hasEmitted || lastEmitted < f.value) {
			out = append(out, Record{Op: OpWrite, Name: om.name, Kind: uint8(store.MaxRegister), Value: f.value})
			lastEmitted, hasEmitted = f.value, true
		}
		out = append(out, Record{Op: OpFetch, Name: om.name, Kind: uint8(store.MaxRegister), Reader: uint8(f.reader), Seq: f.seq, Value: f.value})
	}
	if hasMax && (!hasEmitted || lastEmitted < finalMax) {
		out = append(out, Record{Op: OpWrite, Name: om.name, Kind: uint8(store.MaxRegister), Value: finalMax})
	}
	return out, nil
}
