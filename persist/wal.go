package persist

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"auditreg"
	"auditreg/internal/shard"
	"auditreg/internal/telem"
	"auditreg/store"
)

// lockFileName is the advisory-lock file guarding a data directory against
// two daemons. flock releases it on process death, so a kill -9 never wedges
// the directory.
const lockFileName = "wal.lock"

// pending is one record awaiting a stripe's group-commit writer; done is
// non-nil when the mutator blocks for durability (SyncAlways opens, writes,
// and fetches).
type pending struct {
	rec  Record
	done chan error
}

// encSize estimates the record's encoded frame size, for the BatchBytes
// window cutoff.
func (p *pending) encSize() int {
	return frameOverhead + 16 + len(p.rec.Name)
}

// doneChans pools the one-shot completion channels of blocking records: the
// writer sends exactly one verdict, the mutator consumes it and returns the
// empty channel — so a blocking mutation costs no channel allocation at
// steady state.
var doneChans = sync.Pool{New: func() any { return make(chan error, 1) }}

// SyncHistBuckets is the number of buckets of the group-commit batch-size
// histogram: records per fsync, in power-of-two buckets ≤1, ≤2, ≤4, ...,
// ≤64, and a final overflow bucket.
const SyncHistBuckets = 8

// syncBucket maps a records-per-fsync count to its histogram bucket.
func syncBucket(n int) int {
	if n < 1 {
		n = 1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b >= SyncHistBuckets {
		b = SyncHistBuckets - 1
	}
	return b
}

// WAL is the write-ahead log over one data directory: Options.Stripes
// independently committing stripe groups, each with its own segment files,
// writer goroutine, adaptive commit window, and pipelined fsync. An object's
// records always land in the stripe its name hashes to, so per-object order
// — the property recovery and snapshots rely on — survives the fan-out.
//
// It implements store.Journal[uint64]: attach it with store.Store.SetJournal
// (after recovery) or store.WithJournal (fresh store). Construct with Open;
// all methods are safe for concurrent use.
type WAL struct {
	dir  string
	key  auditreg.Key
	opts Options

	// seqBase maps each recovered object to the highest sequence number
	// its on-disk records carry. Replay renumbers in-memory sequence
	// numbers from 1 (compaction and synthesis drop unobservable writes),
	// so journaled seqs are shifted above the base to keep every object's
	// on-disk seqs strictly increasing across process generations —
	// otherwise a later recovery would see two different writes claiming
	// one seq and halt on perfectly healthy data. Built once before the
	// writers start; read-only afterwards.
	seqBase map[string]uint64

	lock   *os.File
	groups []*walStripe
	gmask  uint64

	stopc  chan struct{} // closed by Close: broadcast to every stripe
	killc  chan struct{} // closed by abandon: crash simulation
	closed atomic.Bool

	// failed is the sticky failure, shared across stripes: one stripe
	// losing its disk poisons the whole log, exactly as the single-writer
	// WAL did — a partially durable log must not keep acknowledging.
	failed atomic.Pointer[error]

	snapMu sync.Mutex // serializes Snapshot
	snaps  atomic.Uint64
}

// walStripe is one stripe group: an append buffer, a writer goroutine
// (run), a sync goroutine (syncLoop), and the stripe's own segment files and
// LSN space.
type walStripe struct {
	id   int
	dir  string
	key  auditreg.Key
	opts Options

	// Shared WAL state (see WAL): sticky failure, close/crash broadcast.
	failed *atomic.Pointer[error]
	closed *atomic.Bool
	stopc  chan struct{}
	killc  chan struct{}

	// The append buffer.
	mu   sync.Mutex
	recs []pending

	notify   chan struct{}
	rotatec  chan chan rotateReply
	flushc   chan chan error
	done     chan struct{}
	syncc    chan syncJob // writer → sync goroutine (unbuffered; one job in flight)
	syncack  chan syncAck // sync goroutine → writer (buffered; never blocks the syncer)
	syncdone chan struct{}

	// waiters counts blocking mutators whose records this stripe's writer
	// has not yet committed (incremented on entry to append, decremented
	// when the record completes). The adaptive commit window compares it
	// against the blocking records already drained: while more waiters are
	// known to be in flight on this stripe, holding the fsync open a little
	// longer absorbs them into the same batch.
	waiters atomic.Int64

	// Writer-goroutine state; untouched by other goroutines.
	active      *os.File
	activeNonce [fileNonceLen]byte
	activePads  padStream
	activeBase  uint64
	activeSize  int64
	nextLSN     uint64
	lastSync    time.Time
	dirty       bool      // appended records not yet covered by an issued fsync
	cur         []pending // batch buffer for the next drain
	spare       []pending // second batch buffer (ping-pong with the in-flight job)
	encBuf      []byte    // reused frame encode buffer
	sinceSync   int       // records appended since the last issued fsync
	blockSync   int       // blocking records appended since the last issued fsync
	inFlight    bool      // a syncJob is with the sync goroutine

	// cohort is the EWMA of blocking records per fsync on this stripe —
	// the concurrency estimate steering the adaptive window. Written by the
	// sync goroutine, read by the writer (absorb); float bits in an atomic
	// word.
	cohort atomic.Uint64

	records   atomic.Uint64
	batches   atomic.Uint64
	syncs     atomic.Uint64
	rotations atomic.Uint64
	bytes     atomic.Uint64
	syncHist  [SyncHistBuckets]atomic.Uint64
}

type rotateReply struct {
	cutLSN uint64
	err    error
}

var (
	_ store.Journal[uint64]      = (*WAL)(nil)
	_ store.AsyncJournal[uint64] = (*WAL)(nil)
)

// lockDir takes the directory's advisory lock.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// newStripe builds one stripe group wired to the WAL's shared state. The
// caller sets nextLSN and opens the active segment before starting the
// goroutines (start).
func newStripe(w *WAL, id int) *walStripe {
	return &walStripe{
		id:       id,
		dir:      w.dir,
		key:      w.key,
		opts:     w.opts,
		failed:   &w.failed,
		closed:   &w.closed,
		stopc:    w.stopc,
		killc:    w.killc,
		notify:   make(chan struct{}, 1),
		rotatec:  make(chan chan rotateReply),
		flushc:   make(chan chan error),
		done:     make(chan struct{}),
		syncc:    make(chan syncJob),
		syncack:  make(chan syncAck, 1),
		syncdone: make(chan struct{}),
		cur:      make([]pending, 0, 64),
		spare:    make([]pending, 0, 64),
		nextLSN:  1,
	}
}

// start launches the stripe's writer and sync goroutines.
func (s *walStripe) start() {
	s.lastSync = time.Now()
	go s.run()
	go s.syncLoop()
}

// stripeOf picks the stripe group for an object name, hashing exactly as the
// store's shard map does.
func (w *WAL) stripeOf(name string) *walStripe {
	return w.groups[shard.Hash(name)&w.gmask]
}

// append encodes the mutation and appends it to the name's stripe, returning
// the stripe and the completion channel for blocking records (nil
// otherwise). Shared core of Record and RecordAsync.
func (w *WAL) append(r *store.JournalRecord[uint64]) (*walStripe, chan error, error) {
	if err := w.err(); err != nil {
		return nil, nil, err
	}
	rec := fromJournal(r)
	if rec.Op == 0 {
		return nil, nil, fmt.Errorf("persist: unknown journal op %d", r.Op)
	}
	if len(r.Name) > maxName {
		// Refuse rather than write a frame the decoder must reject: one
		// oversized record would make every future recovery halt.
		return nil, nil, fmt.Errorf("persist: object name of %d bytes exceeds %d", len(r.Name), maxName)
	}
	if base := w.seqBase[r.Name]; base > 0 {
		switch rec.Op {
		case OpFetch, OpAnnounce:
			rec.Seq += base
		case OpWrite:
			if rec.Seq > 0 { // register installs; max-register writes carry no seq
				rec.Seq += base
			}
		}
	}
	blocking := w.opts.Policy == SyncAlways &&
		(rec.Op == OpOpen || rec.Op == OpWrite || rec.Op == OpFetch)
	p := pending{rec: rec}
	s := w.stripeOf(r.Name)
	if blocking {
		p.done = doneChans.Get().(chan error)
		s.waiters.Add(1)
	}
	s.mu.Lock()
	// Re-check under the stripe lock: the writer's final drain on stopc
	// takes this lock after Close sets closed, so a record appended while
	// closed is still false here is guaranteed to be in that drain — no
	// record can be acknowledged and then stranded in a buffer.
	if w.closed.Load() {
		s.mu.Unlock()
		if blocking {
			s.waiters.Add(-1)
			doneChans.Put(p.done)
		}
		return nil, nil, fmt.Errorf("persist: wal is closed")
	}
	s.recs = append(s.recs, p)
	s.mu.Unlock()
	s.kick()
	return s, p.done, nil
}

// wait collects the durability verdict of one appended blocking record.
func (s *walStripe) wait(done chan error) error {
	select {
	case err := <-done:
		doneChans.Put(done)
		return err
	case <-s.done:
		// The writer exited (Close racing this append). It may still have
		// committed the record in its final drain; prefer that verdict.
		select {
		case err := <-done:
			doneChans.Put(done)
			return err
		default:
			// The channel may yet receive a late verdict; let it go to the
			// collector instead of poisoning the pool.
			return fmt.Errorf("persist: wal closed before the record committed")
		}
	}
}

// Record implements store.Journal: encode the mutation, append it to the
// name's stripe, and — under SyncAlways, for records with durability
// semantics — block until that stripe's group-commit writer reports the
// record stable. Announce and audit records never block: they are pure
// helping and derived state.
func (w *WAL) Record(r store.JournalRecord[uint64]) error {
	s, done, err := w.append(&r)
	if err != nil || done == nil {
		return err
	}
	return s.wait(done)
}

// RecordAsync implements store.AsyncJournal: append like Record, but hand
// the durability wait back to the caller as a commit closure, so a
// pipelined caller (the network server) can keep executing requests while
// the stripe's group-commit writer absorbs every in-flight mutation — the
// whole pending buffer — into one fsync.
func (w *WAL) RecordAsync(r store.JournalRecord[uint64]) (func() error, error) {
	s, done, err := w.append(&r)
	if err != nil || done == nil {
		return nil, err
	}
	return func() error { return s.wait(done) }, nil
}

// err returns the sticky failure, if any.
func (w *WAL) err() error {
	if w.closed.Load() {
		return fmt.Errorf("persist: wal is closed")
	}
	if e := w.failed.Load(); e != nil {
		return *e
	}
	return nil
}

// kick nudges the stripe's writer without blocking.
func (s *walStripe) kick() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// syncJob is one batch handed to the sync goroutine: fsync fd, then
// complete the batch's waiters. records/blocking carry the counts since the
// previous issued fsync, for the histogram and the cohort estimate.
type syncJob struct {
	fd       *os.File
	batch    []pending
	records  int
	blocking int
}

// syncAck returns the fsync verdict and the job's batch buffer (for the
// writer's ping-pong reuse).
type syncAck struct {
	err error
	buf []pending
}

// run is the stripe's group-commit writer: drain the append buffer, hold the
// adaptive commit window open while the blocked-mutator cohort is still
// arriving, assign LSNs, encrypt the batch against the active segment's pad
// stream, and append. Under SyncAlways the fsync itself is pipelined: a
// dedicated sync goroutine (syncLoop) carries at most one fsync in flight
// while this goroutine keeps draining and appending the next batch — the
// ZooKeeper-style batched-fsync pipeline, where the next group forms for
// free during the previous group's fsync and the commit cycle is max(fsync,
// arrivals) rather than their sum. Other policies fsync inline, as does
// every barrier path (rotate, flush, close).
func (s *walStripe) run() {
	defer close(s.done)
	defer close(s.syncc)
	tick := time.NewTicker(s.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.killc:
			// Crash simulation (tests): stop dead, no drain, no seal.
			return
		case <-s.stopc:
			s.syncBarrier()
			batch := s.drain(s.cur)
			s.commitInline(batch, true)
			s.sealActive()
			return
		case reply := <-s.rotatec:
			s.syncBarrier()
			batch := s.drain(s.cur)
			s.commitInline(batch, true)
			s.cur = batch[:0]
			var rr rotateReply
			rr.err = s.rotate()
			rr.cutLSN = s.activeBase
			if e := s.failed.Load(); rr.err == nil && e != nil {
				rr.err = *e
			}
			reply <- rr
		case reply := <-s.flushc:
			s.syncBarrier()
			batch := s.drain(s.cur)
			s.commitInline(batch, true)
			s.cur = batch[:0]
			var err error
			if e := s.failed.Load(); e != nil {
				err = *e
			}
			reply <- err
		case <-s.notify:
			if s.opts.Policy == SyncAlways {
				s.pipelineCommit()
			} else {
				// Not forced: commit syncs exactly when the interval is due.
				batch := s.drain(s.cur)
				s.commitInline(batch, false)
				s.cur = batch[:0]
			}
		case <-tick.C:
			// Flush leftovers (announce records appended since the last
			// sync) so helping state lags stability by at most one interval.
			s.syncBarrier()
			batch := s.drain(s.cur)
			s.commitInline(batch, s.opts.Policy == SyncAlways)
			s.cur = batch[:0]
		}
	}
}

// pipelineCommit handles one notify wakeup under SyncAlways: drain, keep
// absorbing arrivals for as long as the in-flight fsync forms a free commit
// window (bounded by BatchBytes), optionally top the batch up to the
// predicted cohort (absorb), then append and hand off. A shutdown or crash
// signal parks the batch on s.cur for the outer loop to finish.
func (s *walStripe) pipelineCommit() {
	batch := s.drain(s.cur)
	approx := batchBytes(batch)
	for s.inFlight && approx < s.opts.BatchBytes {
		select {
		case <-s.notify:
			before := len(batch)
			batch = s.drain(batch)
			for i := before; i < len(batch); i++ {
				approx += batch[i].encSize()
			}
		case ack := <-s.syncack:
			s.inFlight = false
			s.spare = ack.buf[:0]
		case <-s.stopc:
			s.cur = batch
			return
		case <-s.killc:
			s.cur = batch
			return
		}
	}
	batch = s.absorb(batch)
	s.commitPipelined(batch)
}

// syncLoop is the fsync half of the pipelined group commit: one job at a
// time, fsync, publish the batching telemetry, wake the job's waiters,
// hand the buffer back.
func (s *walStripe) syncLoop() {
	defer close(s.syncdone)
	for job := range s.syncc {
		t0 := telem.Now()
		err := fdatasync(job.fd)
		if h := s.opts.SyncLatency; h != nil {
			h.Observe(uint64(s.id), telem.Now()-t0)
		}
		if err != nil {
			err = fmt.Errorf("persist: wal fsync: %w", err)
			s.failed.CompareAndSwap(nil, &err)
			s.fail(job.batch, err)
		} else {
			s.syncs.Add(1)
			s.syncHist[syncBucket(job.records)].Add(1)
			if job.blocking > 0 {
				s.setCohort(0.75*s.cohortEstimate() + 0.25*float64(job.blocking))
			}
			for i := range job.batch {
				if job.batch[i].done != nil {
					s.waiters.Add(-1)
					job.batch[i].done <- nil
				}
			}
		}
		s.syncack <- syncAck{err: err, buf: job.batch}
	}
}

// syncBarrier waits out the in-flight fsync, if any, reclaiming its batch
// buffer. Every non-pipelined touch of the active file (inline sync,
// rotation, seal) starts here.
func (s *walStripe) syncBarrier() {
	if !s.inFlight {
		return
	}
	ack := <-s.syncack
	s.inFlight = false
	s.spare = ack.buf[:0]
}

// cohortEstimate and setCohort move the concurrency EWMA across the
// writer/syncer boundary.
func (s *walStripe) cohortEstimate() float64 { return math.Float64frombits(s.cohort.Load()) }
func (s *walStripe) setCohort(v float64)     { s.cohort.Store(math.Float64bits(v)) }

// drain steals the stripe's pending records, appending them to batch (a
// reused buffer).
func (s *walStripe) drain(batch []pending) []pending {
	s.mu.Lock()
	if len(s.recs) > 0 {
		batch = append(batch, s.recs...)
		s.recs = s.recs[:0]
	}
	s.mu.Unlock()
	return batch
}

// blockingRecords counts the batch's records with waiters attached.
func blockingRecords(batch []pending) int {
	n := 0
	for i := range batch {
		if batch[i].done != nil {
			n++
		}
	}
	return n
}

// absorb is the adaptive commit window: hold the fsync open — up to
// BatchDelay, bounded by BatchBytes — while the blocked-mutator cohort is
// still arriving, so one fsync covers it whole. Two signals open the
// window: waiters the writer can already see (blocking mutators in flight
// on this stripe beyond the batch), and the cohort EWMA — the recent
// blocking-records-per-fsync average — which predicts the stragglers it
// cannot see yet: under concurrency, a record that lands right after a sync
// would otherwise commit alone, and the next conn's record half a
// round-trip behind it would buy a second fsync. The window closes as soon
// as the batch reaches the predicted cohort with no further waiters in
// flight; with a single steady mutator the EWMA decays to one and the
// window stops opening at all — an uncontended stripe adds no latency.
// Shutdown and crash signals abort the window.
func (s *walStripe) absorb(batch []pending) []pending {
	nb := blockingRecords(batch)
	if s.opts.BatchDelay <= 0 || nb == 0 {
		return batch
	}
	target := int(s.cohortEstimate() + 0.5)
	if int64(nb) >= s.waiters.Load() && nb >= target {
		return batch
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	approx := batchBytes(batch)
	for approx < s.opts.BatchBytes {
		if timer == nil {
			timer = time.NewTimer(s.opts.BatchDelay)
		}
		select {
		case <-s.notify:
			before := len(batch)
			batch = s.drain(batch)
			for i := before; i < len(batch); i++ {
				if batch[i].done != nil {
					nb++
				}
				approx += batch[i].encSize()
			}
			if int64(nb) >= s.waiters.Load() && nb >= target {
				return batch
			}
		case <-timer.C:
			return batch
		case <-s.stopc:
			return batch
		case <-s.killc:
			return batch
		}
	}
	return batch
}

// batchBytes estimates the encoded size of a batch.
func batchBytes(batch []pending) int {
	n := 0
	for i := range batch {
		n += batch[i].encSize()
	}
	return n
}

// appendBatch encodes the batch into the reused frame buffer and appends it
// to the active segment with one write, rotating first when the segment is
// over size (callers on the pipelined path have already barriered).
func (s *walStripe) appendBatch(batch []pending) error {
	if len(batch) == 0 {
		return nil
	}
	if s.activeSize > s.opts.SegmentBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	buf := s.encBuf[:0]
	for i := range batch {
		buf = appendFrame(buf, s.activePads, s.activeSize+int64(len(buf)), s.nextLSN, &batch[i].rec)
		s.nextLSN++
	}
	n, err := s.active.Write(buf)
	s.activeSize += int64(n)
	s.bytes.Add(uint64(n))
	s.encBuf = buf
	if err != nil {
		return err
	}
	s.dirty = true
	s.sinceSync += len(batch)
	s.blockSync += blockingRecords(batch)
	s.records.Add(uint64(len(batch)))
	s.batches.Add(1)
	return nil
}

// commitPipelined is the SyncAlways notify path: append the batch, and —
// when it carries waiters — hand it to the sync goroutine. The barrier
// before the handoff keeps exactly one fsync in flight per stripe;
// everything appended before the handoff is covered by the fsync it
// triggers (the syscall is issued strictly after the writes). A batch with
// no waiters appends without syncing: pure helping never pays for, or
// causes, a sync. The writer reclaims the previous job's buffer at the
// barrier, so two batch buffers ping-pong between the halves with no
// allocation.
func (s *walStripe) commitPipelined(batch []pending) {
	if e := s.failed.Load(); e != nil {
		s.fail(batch, *e)
		s.cur = batch[:0]
		return
	}
	rotating := len(batch) > 0 && s.activeSize > s.opts.SegmentBytes
	if rotating || blockingRecords(batch) > 0 {
		// The in-flight fsync must finish before we seal its file or issue
		// the next one.
		s.syncBarrier()
	}
	if err := s.appendBatch(batch); err != nil {
		err = fmt.Errorf("persist: wal append: %w", err)
		s.failed.CompareAndSwap(nil, &err)
		s.fail(batch, err)
		s.cur = batch[:0]
		return
	}
	if blockingRecords(batch) == 0 {
		s.cur = batch[:0] // keep the buffer; nobody waits
		return
	}
	s.syncc <- syncJob{fd: s.active, batch: batch, records: s.sinceSync, blocking: s.blockSync}
	s.inFlight = true
	s.dirty = false // the issued fsync covers everything appended so far
	s.sinceSync, s.blockSync = 0, 0
	s.cur = s.spare[:0]
	s.spare = nil
}

// commitInline writes one batch to the active segment and fsyncs when the
// policy (or force) calls for it, then completes the batch's waiters — the
// non-pipelined path, used by the Interval/Never policies and by every
// barrier (rotate, flush, close, tick leftovers). Pipelined callers
// syncBarrier first.
func (s *walStripe) commitInline(batch []pending, force bool) {
	if e := s.failed.Load(); e != nil {
		s.fail(batch, *e)
		return
	}
	err := s.appendBatch(batch)
	if err == nil && s.dirty {
		sync := force
		if !sync {
			switch s.opts.Policy {
			case SyncAlways:
				// Whatever drained this batch (notify, tick), a waiter must
				// never be released before its record is stable.
				sync = blockingRecords(batch) > 0
			case SyncInterval:
				if time.Since(s.lastSync) >= s.opts.Interval {
					sync = true
				}
			}
		}
		if sync {
			t0 := telem.Now()
			err = fdatasync(s.active)
			if h := s.opts.SyncLatency; h != nil {
				h.Observe(uint64(s.id), telem.Now()-t0)
			}
			if err == nil {
				s.dirty = false
				s.lastSync = time.Now()
				s.syncs.Add(1)
				s.syncHist[syncBucket(s.sinceSync)].Add(1)
				if s.blockSync > 0 {
					// Update the concurrency estimate from syncs that carried
					// waiters (tick-driven announce flushes say nothing about
					// mutator concurrency).
					s.setCohort(0.75*s.cohortEstimate() + 0.25*float64(s.blockSync))
				}
				s.sinceSync, s.blockSync = 0, 0
			}
		}
	}
	if err != nil {
		err = fmt.Errorf("persist: wal append: %w", err)
		s.failed.CompareAndSwap(nil, &err)
		s.fail(batch, err)
		return
	}
	for i := range batch {
		if batch[i].done != nil {
			s.waiters.Add(-1)
			batch[i].done <- nil
		}
	}
}

// fail completes a batch's waiters with err.
func (s *walStripe) fail(batch []pending, err error) {
	for i := range batch {
		if batch[i].done != nil {
			s.waiters.Add(-1)
			batch[i].done <- err
		}
	}
}

// rotate seals the active segment and opens a fresh one whose base is the
// next LSN.
func (s *walStripe) rotate() error {
	if err := s.sealActive(); err != nil {
		return err
	}
	if err := s.openSegment(s.nextLSN); err != nil {
		return err
	}
	s.rotations.Add(1)
	return nil
}

// sealActive appends the seal record, fsyncs, and closes the active
// segment.
func (s *walStripe) sealActive() error {
	if s.active == nil {
		return nil
	}
	if e := s.failed.Load(); e != nil {
		// A sticky failure may have left a partial frame at the tail.
		// Appending a valid seal after it would turn auto-repairable torn
		// damage into hard corruption the next recovery must refuse; leave
		// the segment unsealed and let recovery truncate the tail.
		err := s.active.Close()
		s.active = nil
		s.dirty = false
		return err
	}
	seal := Record{Op: OpSeal}
	buf := appendFrame(s.encBuf[:0], s.activePads, s.activeSize, s.nextLSN, &seal)
	s.nextLSN++
	n, err := s.active.Write(buf)
	s.activeSize += int64(n)
	if err != nil {
		return err
	}
	if err := s.active.Sync(); err != nil {
		return err
	}
	err = s.active.Close()
	s.active = nil
	s.dirty = false
	return err
}

// openSegment creates and syncs a fresh active segment with the given base
// LSN, deriving the segment's pad stream from its header nonce.
func (s *walStripe) openSegment(base uint64) error {
	hdr, nonce, err := newHeader(segMagic, base)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(s.id, base)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.active = f
	s.activeNonce = nonce
	s.activePads = newPadStream(s.key, &nonce)
	s.activeBase = base
	s.activeSize = headerLen
	return nil
}

// Sync forces everything appended so far onto stable storage, regardless of
// policy: drain, write, fsync, on every stripe. It returns once the whole
// log is stable.
func (w *WAL) Sync() error {
	if err := w.err(); err != nil {
		return err
	}
	var first error
	for _, s := range w.groups {
		reply := make(chan error, 1)
		select {
		case s.flushc <- reply:
			if err := <-reply; err != nil && first == nil {
				first = err
			}
		case <-s.done:
			if err := w.err(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Close drains and seals every stripe, then releases the directory lock.
// The WAL is unusable afterwards; a clean Close leaves every segment
// sealed, so the next recovery finds no torn tail.
func (w *WAL) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		w.join()
		return nil
	}
	close(w.stopc)
	w.join()
	var err error
	if e := w.failed.Load(); e != nil {
		err = *e
	}
	if w.lock != nil {
		syscall.Flock(int(w.lock.Fd()), syscall.LOCK_UN)
		w.lock.Close()
	}
	return err
}

// join waits for every stripe's writer and sync goroutine to exit.
func (w *WAL) join() {
	for _, s := range w.groups {
		<-s.done
		<-s.syncdone
	}
}

// abandon simulates kill -9 for in-process tests: every stripe's writer
// stops without draining its buffer or sealing its active segment, and the
// directory lock is released so the "restarted" process can take it.
// Everything the OS already has (every completed Write syscall) stays on
// disk, exactly as after a real SIGKILL on one machine.
func (w *WAL) abandon() {
	if !w.closed.CompareAndSwap(false, true) {
		w.join()
		return
	}
	close(w.killc)
	w.join() // in-flight fsyncs finish before the fds close
	for _, s := range w.groups {
		if s.active != nil {
			s.active.Close()
			s.active = nil
		}
	}
	if w.lock != nil {
		syscall.Flock(int(w.lock.Fd()), syscall.LOCK_UN)
		w.lock.Close()
	}
}

// Stats is a point-in-time snapshot of the WAL's counters, summed across
// stripes.
type Stats struct {
	Stripes   int    // stripe groups (pinned by the data directory)
	Records   uint64 // records appended
	Batches   uint64 // group commits
	Syncs     uint64 // fsync calls on segment data
	Rotations uint64 // segment rotations
	Snapshots uint64 // snapshots taken
	Bytes     uint64 // record bytes appended
	// SyncHist is the group-commit batch-size histogram: SyncHist[i] counts
	// fsyncs that made ≤ 2^i records stable (the last bucket collects
	// everything larger), summed across stripes so the series reads the
	// same whether the log runs one stripe or sixteen. It is the direct
	// observable behind the batching claim: a healthy concurrent workload
	// piles its mass in the upper buckets.
	SyncHist [SyncHistBuckets]uint64
}

// Stats returns the WAL's counters.
func (w *WAL) Stats() Stats {
	st := Stats{
		Stripes:   len(w.groups),
		Snapshots: w.snaps.Load(),
	}
	for _, s := range w.groups {
		// Load numerators before their denominators so a snapshot taken
		// mid-traffic can't tear the derived ratios the wrong way: a sync is
		// counted only after its records are, so syncs/records from one
		// snapshot never exceeds what the stripe actually did.
		st.Syncs += s.syncs.Load()
		st.Batches += s.batches.Load()
		st.Records += s.records.Load()
		st.Rotations += s.rotations.Load()
		st.Bytes += s.bytes.Load()
		for i := range st.SyncHist {
			st.SyncHist[i] += s.syncHist[i].Load()
		}
	}
	return st
}
