package persist

import (
	"fmt"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"auditreg"
	"auditreg/internal/shard"
	"auditreg/store"
)

// lockFileName is the advisory-lock file guarding a data directory against
// two daemons. flock releases it on process death, so a kill -9 never wedges
// the directory.
const lockFileName = "wal.lock"

// pending is one record awaiting the group-commit writer; done is non-nil
// when the mutator blocks for durability (SyncAlways opens, writes, and
// fetches).
type pending struct {
	rec  Record
	done chan error
}

// encSize estimates the record's encoded frame size, for the BatchBytes
// window cutoff.
func (p *pending) encSize() int {
	return frameOverhead + 16 + len(p.rec.Name)
}

// doneChans pools the one-shot completion channels of blocking records: the
// writer sends exactly one verdict, the mutator consumes it and returns the
// empty channel — so a blocking mutation costs no channel allocation at
// steady state.
var doneChans = sync.Pool{New: func() any { return make(chan error, 1) }}

// stripe is one append buffer. An object's records always land in the
// stripe its name hashes to, so per-object order survives the fan-in.
type stripe struct {
	mu   sync.Mutex
	recs []pending
}

// SyncHistBuckets is the number of buckets of the group-commit batch-size
// histogram: records per fsync, in power-of-two buckets ≤1, ≤2, ≤4, ...,
// ≤64, and a final overflow bucket.
const SyncHistBuckets = 8

// syncBucket maps a records-per-fsync count to its histogram bucket.
func syncBucket(n int) int {
	if n < 1 {
		n = 1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b >= SyncHistBuckets {
		b = SyncHistBuckets - 1
	}
	return b
}

// WAL is the write-ahead log over one data directory. It implements
// store.Journal[uint64]: attach it with store.Store.SetJournal (after
// recovery) or store.WithJournal (fresh store). Construct with Open; all
// methods are safe for concurrent use.
type WAL struct {
	dir  string
	key  auditreg.Key
	opts Options

	// seqBase maps each recovered object to the highest sequence number
	// its on-disk records carry. Replay renumbers in-memory sequence
	// numbers from 1 (compaction and synthesis drop unobservable writes),
	// so journaled seqs are shifted above the base to keep every object's
	// on-disk seqs strictly increasing across process generations —
	// otherwise a later recovery would see two different writes claiming
	// one seq and halt on perfectly healthy data. Built once before the
	// writer starts; read-only afterwards.
	seqBase map[string]uint64

	lock     *os.File
	stripes  []stripe
	mask     uint64
	notify   chan struct{}
	stopc    chan struct{}
	killc    chan struct{}
	rotatec  chan chan rotateReply
	flushc   chan chan error
	done     chan struct{}
	syncc    chan syncJob // writer → sync goroutine (unbuffered; one job in flight)
	syncack  chan syncAck // sync goroutine → writer (buffered; never blocks the syncer)
	syncdone chan struct{}
	closed   atomic.Bool

	// waiters counts blocking mutators whose records the writer has not yet
	// committed (incremented on entry to Record, decremented by the writer
	// when it completes the record). The adaptive commit window compares it
	// against the blocking records already drained: while more waiters are
	// known to be in flight, holding the fsync open a little longer absorbs
	// them into the same batch.
	waiters atomic.Int64

	failed atomic.Pointer[error]

	// Writer-goroutine state; untouched by other goroutines.
	active      *os.File
	activeNonce [fileNonceLen]byte
	activePads  padStream
	activeBase  uint64
	activeSize  int64
	nextLSN     uint64
	lastSync    time.Time
	dirty       bool      // appended records not yet covered by an issued fsync
	cur         []pending // batch buffer for the next drain
	spare       []pending // second batch buffer (ping-pong with the in-flight job)
	encBuf      []byte    // reused frame encode buffer
	sinceSync   int       // records appended since the last issued fsync
	blockSync   int       // blocking records appended since the last issued fsync
	inFlight    bool      // a syncJob is with the sync goroutine

	// cohort is the EWMA of blocking records per fsync — the concurrency
	// estimate steering the adaptive window. Written by the sync goroutine,
	// read by the writer (absorb); float bits in an atomic word.
	cohort atomic.Uint64

	snapMu sync.Mutex // serializes Snapshot

	records   atomic.Uint64
	batches   atomic.Uint64
	syncs     atomic.Uint64
	rotations atomic.Uint64
	snaps     atomic.Uint64
	bytes     atomic.Uint64
	syncHist  [SyncHistBuckets]atomic.Uint64
}

type rotateReply struct {
	cutLSN uint64
	err    error
}

var (
	_ store.Journal[uint64]      = (*WAL)(nil)
	_ store.AsyncJournal[uint64] = (*WAL)(nil)
)

// lockDir takes the directory's advisory lock.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// stripeOf picks the append buffer for an object name, hashing exactly as
// the store's shard map does.
func (w *WAL) stripeOf(name string) *stripe {
	return &w.stripes[shard.Hash(name)&w.mask]
}

// append encodes the mutation and appends it to the name's stripe,
// returning the completion channel for blocking records (nil otherwise).
// Shared core of Record and RecordAsync.
func (w *WAL) append(r *store.JournalRecord[uint64]) (chan error, error) {
	if err := w.err(); err != nil {
		return nil, err
	}
	rec := fromJournal(r)
	if rec.Op == 0 {
		return nil, fmt.Errorf("persist: unknown journal op %d", r.Op)
	}
	if len(r.Name) > maxName {
		// Refuse rather than write a frame the decoder must reject: one
		// oversized record would make every future recovery halt.
		return nil, fmt.Errorf("persist: object name of %d bytes exceeds %d", len(r.Name), maxName)
	}
	if base := w.seqBase[r.Name]; base > 0 {
		switch rec.Op {
		case OpFetch, OpAnnounce:
			rec.Seq += base
		case OpWrite:
			if rec.Seq > 0 { // register installs; max-register writes carry no seq
				rec.Seq += base
			}
		}
	}
	blocking := w.opts.Policy == SyncAlways &&
		(rec.Op == OpOpen || rec.Op == OpWrite || rec.Op == OpFetch)
	p := pending{rec: rec}
	if blocking {
		p.done = doneChans.Get().(chan error)
		w.waiters.Add(1)
	}
	s := w.stripeOf(r.Name)
	s.mu.Lock()
	// Re-check under the stripe lock: Close's final drain takes every
	// stripe lock after setting closed, so a record appended while closed
	// is still false here is guaranteed to be in that drain — no record
	// can be acknowledged and then stranded in a buffer.
	if w.closed.Load() {
		s.mu.Unlock()
		if blocking {
			w.waiters.Add(-1)
			doneChans.Put(p.done)
		}
		return nil, fmt.Errorf("persist: wal is closed")
	}
	s.recs = append(s.recs, p)
	s.mu.Unlock()
	w.kick()
	return p.done, nil
}

// wait collects the durability verdict of one appended blocking record.
func (w *WAL) wait(done chan error) error {
	select {
	case err := <-done:
		doneChans.Put(done)
		return err
	case <-w.done:
		// The writer exited (Close racing this append). It may still have
		// committed the record in its final drain; prefer that verdict.
		select {
		case err := <-done:
			doneChans.Put(done)
			return err
		default:
			// The channel may yet receive a late verdict; let it go to the
			// collector instead of poisoning the pool.
			return fmt.Errorf("persist: wal closed before the record committed")
		}
	}
}

// Record implements store.Journal: encode the mutation, append it to the
// name's stripe, and — under SyncAlways, for records with durability
// semantics — block until the group-commit writer reports the record
// stable. Announce and audit records never block: they are pure helping and
// derived state.
func (w *WAL) Record(r store.JournalRecord[uint64]) error {
	done, err := w.append(&r)
	if err != nil || done == nil {
		return err
	}
	return w.wait(done)
}

// RecordAsync implements store.AsyncJournal: append like Record, but hand
// the durability wait back to the caller as a commit closure, so a
// pipelined caller (the network server) can keep executing requests while
// the group-commit writer absorbs every in-flight mutation — the whole
// pending stripe set — into one fsync.
func (w *WAL) RecordAsync(r store.JournalRecord[uint64]) (func() error, error) {
	done, err := w.append(&r)
	if err != nil || done == nil {
		return nil, err
	}
	return func() error { return w.wait(done) }, nil
}

// err returns the sticky failure, if any.
func (w *WAL) err() error {
	if w.closed.Load() {
		return fmt.Errorf("persist: wal is closed")
	}
	if e := w.failed.Load(); e != nil {
		return *e
	}
	return nil
}

// kick nudges the writer without blocking.
func (w *WAL) kick() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// syncJob is one batch handed to the sync goroutine: fsync fd, then
// complete the batch's waiters. records/blocking carry the counts since the
// previous issued fsync, for the histogram and the cohort estimate.
type syncJob struct {
	fd       *os.File
	batch    []pending
	records  int
	blocking int
}

// syncAck returns the fsync verdict and the job's batch buffer (for the
// writer's ping-pong reuse).
type syncAck struct {
	err error
	buf []pending
}

// run is the group-commit writer: drain the stripes, hold the adaptive
// commit window open while the blocked-mutator cohort is still arriving,
// assign LSNs, encrypt the batch against the active segment's pad stream,
// and append. Under SyncAlways the fsync itself is pipelined: a dedicated
// sync goroutine (syncLoop) carries at most one fsync in flight while this
// goroutine keeps draining and appending the next batch — the ZooKeeper-
// style batched-fsync pipeline, where the next group forms for free during
// the previous group's fsync and the commit cycle is max(fsync, arrivals)
// rather than their sum. Other policies fsync inline, as does every
// barrier path (rotate, flush, close).
func (w *WAL) run() {
	defer close(w.done)
	defer close(w.syncc)
	tick := time.NewTicker(w.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.killc:
			// Crash simulation (tests): stop dead, no drain, no seal.
			return
		case <-w.stopc:
			w.syncBarrier()
			batch := w.drain(w.cur)
			w.commitInline(batch, true)
			w.sealActive()
			return
		case reply := <-w.rotatec:
			w.syncBarrier()
			batch := w.drain(w.cur)
			w.commitInline(batch, true)
			w.cur = batch[:0]
			var rr rotateReply
			rr.err = w.rotate()
			rr.cutLSN = w.activeBase
			if e := w.failed.Load(); rr.err == nil && e != nil {
				rr.err = *e
			}
			reply <- rr
		case reply := <-w.flushc:
			w.syncBarrier()
			batch := w.drain(w.cur)
			w.commitInline(batch, true)
			w.cur = batch[:0]
			var err error
			if e := w.failed.Load(); e != nil {
				err = *e
			}
			reply <- err
		case <-w.notify:
			if w.opts.Policy == SyncAlways {
				w.pipelineCommit()
			} else {
				// Not forced: commit syncs exactly when the interval is due.
				batch := w.drain(w.cur)
				w.commitInline(batch, false)
				w.cur = batch[:0]
			}
		case <-tick.C:
			// Flush leftovers (announce records appended since the last
			// sync) so helping state lags stability by at most one interval.
			w.syncBarrier()
			batch := w.drain(w.cur)
			w.commitInline(batch, w.opts.Policy == SyncAlways)
			w.cur = batch[:0]
		}
	}
}

// pipelineCommit handles one notify wakeup under SyncAlways: drain, keep
// absorbing arrivals for as long as the in-flight fsync forms a free commit
// window (bounded by BatchBytes), optionally top the batch up to the
// predicted cohort (absorb), then append and hand off. A shutdown or crash
// signal parks the batch on w.cur for the outer loop to finish.
func (w *WAL) pipelineCommit() {
	batch := w.drain(w.cur)
	approx := batchBytes(batch)
	for w.inFlight && approx < w.opts.BatchBytes {
		select {
		case <-w.notify:
			before := len(batch)
			batch = w.drain(batch)
			for i := before; i < len(batch); i++ {
				approx += batch[i].encSize()
			}
		case ack := <-w.syncack:
			w.inFlight = false
			w.spare = ack.buf[:0]
		case <-w.stopc:
			w.cur = batch
			return
		case <-w.killc:
			w.cur = batch
			return
		}
	}
	batch = w.absorb(batch)
	w.commitPipelined(batch)
}

// syncLoop is the fsync half of the pipelined group commit: one job at a
// time, fsync, publish the batching telemetry, wake the job's waiters,
// hand the buffer back.
func (w *WAL) syncLoop() {
	defer close(w.syncdone)
	for job := range w.syncc {
		err := fdatasync(job.fd)
		if err != nil {
			err = fmt.Errorf("persist: wal fsync: %w", err)
			w.failed.CompareAndSwap(nil, &err)
			w.fail(job.batch, err)
		} else {
			w.syncs.Add(1)
			w.syncHist[syncBucket(job.records)].Add(1)
			if job.blocking > 0 {
				w.setCohort(0.75*w.cohortEstimate() + 0.25*float64(job.blocking))
			}
			for i := range job.batch {
				if job.batch[i].done != nil {
					w.waiters.Add(-1)
					job.batch[i].done <- nil
				}
			}
		}
		w.syncack <- syncAck{err: err, buf: job.batch}
	}
}

// syncBarrier waits out the in-flight fsync, if any, reclaiming its batch
// buffer. Every non-pipelined touch of the active file (inline sync,
// rotation, seal) starts here.
func (w *WAL) syncBarrier() {
	if !w.inFlight {
		return
	}
	ack := <-w.syncack
	w.inFlight = false
	w.spare = ack.buf[:0]
}

// cohortEstimate and setCohort move the concurrency EWMA across the
// writer/syncer boundary.
func (w *WAL) cohortEstimate() float64 { return math.Float64frombits(w.cohort.Load()) }
func (w *WAL) setCohort(v float64)     { w.cohort.Store(math.Float64bits(v)) }

// drain steals every stripe's pending records, appending them to batch
// (a reused buffer).
func (w *WAL) drain(batch []pending) []pending {
	for i := range w.stripes {
		s := &w.stripes[i]
		s.mu.Lock()
		if len(s.recs) > 0 {
			batch = append(batch, s.recs...)
			s.recs = s.recs[:0]
		}
		s.mu.Unlock()
	}
	return batch
}

// blockingRecords counts the batch's records with waiters attached.
func blockingRecords(batch []pending) int {
	n := 0
	for i := range batch {
		if batch[i].done != nil {
			n++
		}
	}
	return n
}

// absorb is the adaptive commit window: hold the fsync open — up to
// BatchDelay, bounded by BatchBytes — while the blocked-mutator cohort is
// still arriving, so one fsync covers it whole. Two signals open the
// window: waiters the writer can already see (blocking mutators in flight
// beyond the batch), and the cohort EWMA — the recent blocking-records-per-
// fsync average — which predicts the stragglers it cannot see yet: under
// concurrency, a record that lands right after a sync would otherwise
// commit alone, and the next conn's record half a round-trip behind it
// would buy a second fsync. The window closes as soon as the batch reaches
// the predicted cohort with no further waiters in flight; with a single
// steady mutator the EWMA decays to one and the window stops opening at
// all — an uncontended log adds no latency. Shutdown and crash signals
// abort the window.
func (w *WAL) absorb(batch []pending) []pending {
	nb := blockingRecords(batch)
	if w.opts.BatchDelay <= 0 || nb == 0 {
		return batch
	}
	target := int(w.cohortEstimate() + 0.5)
	if int64(nb) >= w.waiters.Load() && nb >= target {
		return batch
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	approx := batchBytes(batch)
	for approx < w.opts.BatchBytes {
		if timer == nil {
			timer = time.NewTimer(w.opts.BatchDelay)
		}
		select {
		case <-w.notify:
			before := len(batch)
			batch = w.drain(batch)
			for i := before; i < len(batch); i++ {
				if batch[i].done != nil {
					nb++
				}
				approx += batch[i].encSize()
			}
			if int64(nb) >= w.waiters.Load() && nb >= target {
				return batch
			}
		case <-timer.C:
			return batch
		case <-w.stopc:
			return batch
		case <-w.killc:
			return batch
		}
	}
	return batch
}

// batchBytes estimates the encoded size of a batch.
func batchBytes(batch []pending) int {
	n := 0
	for i := range batch {
		n += batch[i].encSize()
	}
	return n
}

// appendBatch encodes the batch into the reused frame buffer and appends it
// to the active segment with one write, rotating first when the segment is
// over size (callers on the pipelined path have already barriered).
func (w *WAL) appendBatch(batch []pending) error {
	if len(batch) == 0 {
		return nil
	}
	if w.activeSize > w.opts.SegmentBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	buf := w.encBuf[:0]
	for i := range batch {
		buf = appendFrame(buf, w.activePads, w.activeSize+int64(len(buf)), w.nextLSN, &batch[i].rec)
		w.nextLSN++
	}
	n, err := w.active.Write(buf)
	w.activeSize += int64(n)
	w.bytes.Add(uint64(n))
	w.encBuf = buf
	if err != nil {
		return err
	}
	w.dirty = true
	w.sinceSync += len(batch)
	w.blockSync += blockingRecords(batch)
	w.records.Add(uint64(len(batch)))
	w.batches.Add(1)
	return nil
}

// commitPipelined is the SyncAlways notify path: append the batch, and —
// when it carries waiters — hand it to the sync goroutine. The barrier
// before the handoff keeps exactly one fsync in flight; everything appended
// before the handoff is covered by the fsync it triggers (the syscall is
// issued strictly after the writes). A batch with no waiters appends
// without syncing: pure helping never pays for, or causes, a sync. The
// writer reclaims the previous job's buffer at the barrier, so two batch
// buffers ping-pong between the halves with no allocation.
func (w *WAL) commitPipelined(batch []pending) {
	if e := w.failed.Load(); e != nil {
		w.fail(batch, *e)
		w.cur = batch[:0]
		return
	}
	rotating := len(batch) > 0 && w.activeSize > w.opts.SegmentBytes
	if rotating || blockingRecords(batch) > 0 {
		// The in-flight fsync must finish before we seal its file or issue
		// the next one.
		w.syncBarrier()
	}
	if err := w.appendBatch(batch); err != nil {
		err = fmt.Errorf("persist: wal append: %w", err)
		w.failed.CompareAndSwap(nil, &err)
		w.fail(batch, err)
		w.cur = batch[:0]
		return
	}
	if blockingRecords(batch) == 0 {
		w.cur = batch[:0] // keep the buffer; nobody waits
		return
	}
	w.syncc <- syncJob{fd: w.active, batch: batch, records: w.sinceSync, blocking: w.blockSync}
	w.inFlight = true
	w.dirty = false // the issued fsync covers everything appended so far
	w.sinceSync, w.blockSync = 0, 0
	w.cur = w.spare[:0]
	w.spare = nil
}

// commitInline writes one batch to the active segment and fsyncs when the
// policy (or force) calls for it, then completes the batch's waiters — the
// non-pipelined path, used by the Interval/Never policies and by every
// barrier (rotate, flush, close, tick leftovers). Pipelined callers
// syncBarrier first.
func (w *WAL) commitInline(batch []pending, force bool) {
	if e := w.failed.Load(); e != nil {
		w.fail(batch, *e)
		return
	}
	err := w.appendBatch(batch)
	if err == nil && w.dirty {
		sync := force
		if !sync {
			switch w.opts.Policy {
			case SyncAlways:
				// Whatever drained this batch (notify, tick), a waiter must
				// never be released before its record is stable.
				sync = blockingRecords(batch) > 0
			case SyncInterval:
				if time.Since(w.lastSync) >= w.opts.Interval {
					sync = true
				}
			}
		}
		if sync {
			err = fdatasync(w.active)
			if err == nil {
				w.dirty = false
				w.lastSync = time.Now()
				w.syncs.Add(1)
				w.syncHist[syncBucket(w.sinceSync)].Add(1)
				if w.blockSync > 0 {
					// Update the concurrency estimate from syncs that carried
					// waiters (tick-driven announce flushes say nothing about
					// mutator concurrency).
					w.setCohort(0.75*w.cohortEstimate() + 0.25*float64(w.blockSync))
				}
				w.sinceSync, w.blockSync = 0, 0
			}
		}
	}
	if err != nil {
		err = fmt.Errorf("persist: wal append: %w", err)
		w.failed.CompareAndSwap(nil, &err)
		w.fail(batch, err)
		return
	}
	for i := range batch {
		if batch[i].done != nil {
			w.waiters.Add(-1)
			batch[i].done <- nil
		}
	}
}

// fail completes a batch's waiters with err.
func (w *WAL) fail(batch []pending, err error) {
	for i := range batch {
		if batch[i].done != nil {
			w.waiters.Add(-1)
			batch[i].done <- err
		}
	}
}

// rotate seals the active segment and opens a fresh one whose base is the
// next LSN.
func (w *WAL) rotate() error {
	if err := w.sealActive(); err != nil {
		return err
	}
	if err := w.openSegment(w.nextLSN); err != nil {
		return err
	}
	w.rotations.Add(1)
	return nil
}

// sealActive appends the seal record, fsyncs, and closes the active
// segment.
func (w *WAL) sealActive() error {
	if w.active == nil {
		return nil
	}
	if e := w.failed.Load(); e != nil {
		// A sticky failure may have left a partial frame at the tail.
		// Appending a valid seal after it would turn auto-repairable torn
		// damage into hard corruption the next recovery must refuse; leave
		// the segment unsealed and let recovery truncate the tail.
		err := w.active.Close()
		w.active = nil
		w.dirty = false
		return err
	}
	seal := Record{Op: OpSeal}
	buf := appendFrame(w.encBuf[:0], w.activePads, w.activeSize, w.nextLSN, &seal)
	w.nextLSN++
	n, err := w.active.Write(buf)
	w.activeSize += int64(n)
	if err != nil {
		return err
	}
	if err := w.active.Sync(); err != nil {
		return err
	}
	err = w.active.Close()
	w.active = nil
	w.dirty = false
	return err
}

// openSegment creates and syncs a fresh active segment with the given base
// LSN, deriving the segment's pad stream from its header nonce.
func (w *WAL) openSegment(base uint64) error {
	hdr, nonce, err := newHeader(segMagic, base)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(base)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeNonce = nonce
	w.activePads = newPadStream(w.key, &nonce)
	w.activeBase = base
	w.activeSize = headerLen
	return nil
}

// Sync forces everything appended so far onto stable storage, regardless of
// policy: drain, write, fsync. It returns once the log is stable.
func (w *WAL) Sync() error {
	if err := w.err(); err != nil {
		return err
	}
	reply := make(chan error, 1)
	select {
	case w.flushc <- reply:
		return <-reply
	case <-w.done:
		return w.err()
	}
}

// Close drains and seals the log, then releases the directory lock. The WAL
// is unusable afterwards; a clean Close leaves every segment sealed, so the
// next recovery finds no torn tail.
func (w *WAL) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		<-w.done
		<-w.syncdone
		return nil
	}
	close(w.stopc)
	<-w.done
	<-w.syncdone
	var err error
	if e := w.failed.Load(); e != nil {
		err = *e
	}
	if w.lock != nil {
		syscall.Flock(int(w.lock.Fd()), syscall.LOCK_UN)
		w.lock.Close()
	}
	return err
}

// abandon simulates kill -9 for in-process tests: the writer stops without
// draining its stripes or sealing the active segment, and the directory
// lock is released so the "restarted" process can take it. Everything the
// OS already has (every completed Write syscall) stays on disk, exactly as
// after a real SIGKILL on one machine.
func (w *WAL) abandon() {
	if !w.closed.CompareAndSwap(false, true) {
		<-w.done
		return
	}
	close(w.killc)
	<-w.done
	<-w.syncdone // an fsync may still be in flight; let it finish before closing the fd
	if w.active != nil {
		w.active.Close()
		w.active = nil
	}
	if w.lock != nil {
		syscall.Flock(int(w.lock.Fd()), syscall.LOCK_UN)
		w.lock.Close()
	}
}

// Stats is a point-in-time snapshot of the WAL's counters.
type Stats struct {
	Records   uint64 // records appended
	Batches   uint64 // group commits
	Syncs     uint64 // fsync calls on segment data
	Rotations uint64 // segment rotations
	Snapshots uint64 // snapshots taken
	Bytes     uint64 // record bytes appended
	// SyncHist is the group-commit batch-size histogram: SyncHist[i] counts
	// fsyncs that made ≤ 2^i records stable (the last bucket collects
	// everything larger). It is the direct observable behind the batching
	// claim: a healthy concurrent workload piles its mass in the upper
	// buckets.
	SyncHist [SyncHistBuckets]uint64
}

// Stats returns the WAL's counters.
func (w *WAL) Stats() Stats {
	st := Stats{
		Records:   w.records.Load(),
		Batches:   w.batches.Load(),
		Syncs:     w.syncs.Load(),
		Rotations: w.rotations.Load(),
		Snapshots: w.snaps.Load(),
		Bytes:     w.bytes.Load(),
	}
	for i := range st.SyncHist {
		st.SyncHist[i] = w.syncHist[i].Load()
	}
	return st
}
