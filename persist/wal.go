package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"auditreg"
	"auditreg/internal/shard"
	"auditreg/store"
)

// lockFileName is the advisory-lock file guarding a data directory against
// two daemons. flock releases it on process death, so a kill -9 never wedges
// the directory.
const lockFileName = "wal.lock"

// pending is one record awaiting the group-commit writer; done is non-nil
// when the mutator blocks for durability (SyncAlways opens, writes, and
// fetches).
type pending struct {
	rec  Record
	done chan error
}

// stripe is one append buffer. An object's records always land in the
// stripe its name hashes to, so per-object order survives the fan-in.
type stripe struct {
	mu   sync.Mutex
	recs []pending
}

// WAL is the write-ahead log over one data directory. It implements
// store.Journal[uint64]: attach it with store.Store.SetJournal (after
// recovery) or store.WithJournal (fresh store). Construct with Open; all
// methods are safe for concurrent use.
type WAL struct {
	dir  string
	key  auditreg.Key
	opts Options

	// seqBase maps each recovered object to the highest sequence number
	// its on-disk records carry. Replay renumbers in-memory sequence
	// numbers from 1 (compaction and synthesis drop unobservable writes),
	// so journaled seqs are shifted above the base to keep every object's
	// on-disk seqs strictly increasing across process generations —
	// otherwise a later recovery would see two different writes claiming
	// one seq and halt on perfectly healthy data. Built once before the
	// writer starts; read-only afterwards.
	seqBase map[string]uint64

	lock    *os.File
	stripes []stripe
	mask    uint64
	notify  chan struct{}
	stopc   chan struct{}
	killc   chan struct{}
	rotatec chan chan rotateReply
	flushc  chan chan error
	done    chan struct{}
	closed  atomic.Bool

	failed atomic.Pointer[error]

	// Writer-goroutine state; untouched by other goroutines.
	active      *os.File
	activeNonce [fileNonceLen]byte
	activeBase  uint64
	activeSize  int64
	nextLSN     uint64
	lastSync    time.Time
	dirty       bool

	snapMu sync.Mutex // serializes Snapshot

	records   atomic.Uint64
	batches   atomic.Uint64
	syncs     atomic.Uint64
	rotations atomic.Uint64
	snaps     atomic.Uint64
	bytes     atomic.Uint64
}

type rotateReply struct {
	cutLSN uint64
	err    error
}

var _ store.Journal[uint64] = (*WAL)(nil)

// lockDir takes the directory's advisory lock.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: data dir %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// stripeOf picks the append buffer for an object name, hashing exactly as
// the store's shard map does.
func (w *WAL) stripeOf(name string) *stripe {
	return &w.stripes[shard.Hash(name)&w.mask]
}

// Record implements store.Journal: encode the mutation, append it to the
// name's stripe, and — under SyncAlways, for records with durability
// semantics — block until the group-commit writer reports the record
// stable. Announce and audit records never block: they are pure helping and
// derived state.
func (w *WAL) Record(r store.JournalRecord[uint64]) error {
	if err := w.err(); err != nil {
		return err
	}
	rec := fromJournal(&r)
	if rec.Op == 0 {
		return fmt.Errorf("persist: unknown journal op %d", r.Op)
	}
	if len(r.Name) > maxName {
		// Refuse rather than write a frame the decoder must reject: one
		// oversized record would make every future recovery halt.
		return fmt.Errorf("persist: object name of %d bytes exceeds %d", len(r.Name), maxName)
	}
	if base := w.seqBase[r.Name]; base > 0 {
		switch rec.Op {
		case OpFetch, OpAnnounce:
			rec.Seq += base
		case OpWrite:
			if rec.Seq > 0 { // register installs; max-register writes carry no seq
				rec.Seq += base
			}
		}
	}
	blocking := w.opts.Policy == SyncAlways &&
		(rec.Op == OpOpen || rec.Op == OpWrite || rec.Op == OpFetch)
	p := pending{rec: rec}
	if blocking {
		p.done = make(chan error, 1)
	}
	s := w.stripeOf(r.Name)
	s.mu.Lock()
	// Re-check under the stripe lock: Close's final drain takes every
	// stripe lock after setting closed, so a record appended while closed
	// is still false here is guaranteed to be in that drain — no record
	// can be acknowledged and then stranded in a buffer.
	if w.closed.Load() {
		s.mu.Unlock()
		return fmt.Errorf("persist: wal is closed")
	}
	s.recs = append(s.recs, p)
	s.mu.Unlock()
	w.kick()
	if !blocking {
		return nil
	}
	select {
	case err := <-p.done:
		return err
	case <-w.done:
		// The writer exited (Close racing this append). It may still have
		// committed the record in its final drain; prefer that verdict.
		select {
		case err := <-p.done:
			return err
		default:
			return fmt.Errorf("persist: wal closed before the record committed")
		}
	}
}

// err returns the sticky failure, if any.
func (w *WAL) err() error {
	if w.closed.Load() {
		return fmt.Errorf("persist: wal is closed")
	}
	if e := w.failed.Load(); e != nil {
		return *e
	}
	return nil
}

// kick nudges the writer without blocking.
func (w *WAL) kick() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// run is the group-commit writer: drain the stripes, assign LSNs, encrypt,
// append, fsync per policy, wake the waiters.
func (w *WAL) run() {
	defer close(w.done)
	tick := time.NewTicker(w.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-w.killc:
			// Crash simulation (tests): stop dead, no drain, no seal.
			return
		case <-w.stopc:
			w.commit(w.drain(), true)
			w.sealActive()
			return
		case reply := <-w.rotatec:
			w.commit(w.drain(), true)
			var rr rotateReply
			rr.err = w.rotate()
			rr.cutLSN = w.activeBase
			if e := w.failed.Load(); rr.err == nil && e != nil {
				rr.err = *e
			}
			reply <- rr
		case reply := <-w.flushc:
			w.commit(w.drain(), true)
			var err error
			if e := w.failed.Load(); e != nil {
				err = *e
			}
			reply <- err
		case <-w.notify:
			w.commit(w.drain(), w.opts.Policy == SyncAlways)
		case <-tick.C:
			w.commit(w.drain(), false)
		}
	}
}

// drain steals every stripe's pending records.
func (w *WAL) drain() []pending {
	var batch []pending
	for i := range w.stripes {
		s := &w.stripes[i]
		s.mu.Lock()
		if len(s.recs) > 0 {
			batch = append(batch, s.recs...)
			s.recs = nil
		}
		s.mu.Unlock()
	}
	return batch
}

// commit writes one batch to the active segment and fsyncs when the policy
// (or force) calls for it, then completes the batch's waiters.
func (w *WAL) commit(batch []pending, force bool) {
	if e := w.failed.Load(); e != nil {
		fail(batch, *e)
		return
	}
	var err error
	if len(batch) > 0 {
		if w.activeSize > w.opts.SegmentBytes {
			err = w.rotate()
		}
		if err == nil {
			buf := make([]byte, 0, len(batch)*96)
			for i := range batch {
				buf = appendFrame(buf, w.key, &w.activeNonce, w.nextLSN, &batch[i].rec)
				w.nextLSN++
			}
			var n int
			n, err = w.active.Write(buf)
			w.activeSize += int64(n)
			w.bytes.Add(uint64(n))
			if err == nil {
				w.dirty = true
				w.records.Add(uint64(len(batch)))
				w.batches.Add(1)
			}
		}
	}
	if err == nil && w.dirty {
		sync := force
		if !sync {
			switch w.opts.Policy {
			case SyncAlways:
				// Whatever drained this batch (notify, tick), a waiter must
				// never be released before its record is stable.
				for i := range batch {
					if batch[i].done != nil {
						sync = true
						break
					}
				}
			case SyncInterval:
				if time.Since(w.lastSync) >= w.opts.Interval {
					sync = true
				}
			}
		}
		if sync {
			err = w.active.Sync()
			if err == nil {
				w.dirty = false
				w.lastSync = time.Now()
				w.syncs.Add(1)
			}
		}
	}
	if err != nil {
		err = fmt.Errorf("persist: wal append: %w", err)
		w.failed.CompareAndSwap(nil, &err)
		fail(batch, err)
		return
	}
	for i := range batch {
		if batch[i].done != nil {
			batch[i].done <- nil
		}
	}
}

func fail(batch []pending, err error) {
	for i := range batch {
		if batch[i].done != nil {
			batch[i].done <- err
		}
	}
}

// rotate seals the active segment and opens a fresh one whose base is the
// next LSN.
func (w *WAL) rotate() error {
	if err := w.sealActive(); err != nil {
		return err
	}
	if err := w.openSegment(w.nextLSN); err != nil {
		return err
	}
	w.rotations.Add(1)
	return nil
}

// sealActive appends the seal record, fsyncs, and closes the active
// segment.
func (w *WAL) sealActive() error {
	if w.active == nil {
		return nil
	}
	if e := w.failed.Load(); e != nil {
		// A sticky failure may have left a partial frame at the tail.
		// Appending a valid seal after it would turn auto-repairable torn
		// damage into hard corruption the next recovery must refuse; leave
		// the segment unsealed and let recovery truncate the tail.
		err := w.active.Close()
		w.active = nil
		w.dirty = false
		return err
	}
	seal := Record{Op: OpSeal}
	buf := appendFrame(nil, w.key, &w.activeNonce, w.nextLSN, &seal)
	w.nextLSN++
	if _, err := w.active.Write(buf); err != nil {
		return err
	}
	if err := w.active.Sync(); err != nil {
		return err
	}
	err := w.active.Close()
	w.active = nil
	w.dirty = false
	return err
}

// openSegment creates and syncs a fresh active segment with the given base
// LSN.
func (w *WAL) openSegment(base uint64) error {
	hdr, nonce, err := newHeader(segMagic, base)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(base)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.active = f
	w.activeNonce = nonce
	w.activeBase = base
	w.activeSize = headerLen
	return nil
}

// Sync forces everything appended so far onto stable storage, regardless of
// policy: drain, write, fsync. It returns once the log is stable.
func (w *WAL) Sync() error {
	if err := w.err(); err != nil {
		return err
	}
	reply := make(chan error, 1)
	select {
	case w.flushc <- reply:
		return <-reply
	case <-w.done:
		return w.err()
	}
}

// Close drains and seals the log, then releases the directory lock. The WAL
// is unusable afterwards; a clean Close leaves every segment sealed, so the
// next recovery finds no torn tail.
func (w *WAL) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		<-w.done
		return nil
	}
	close(w.stopc)
	<-w.done
	var err error
	if e := w.failed.Load(); e != nil {
		err = *e
	}
	if w.lock != nil {
		syscall.Flock(int(w.lock.Fd()), syscall.LOCK_UN)
		w.lock.Close()
	}
	return err
}

// abandon simulates kill -9 for in-process tests: the writer stops without
// draining its stripes or sealing the active segment, and the directory
// lock is released so the "restarted" process can take it. Everything the
// OS already has (every completed Write syscall) stays on disk, exactly as
// after a real SIGKILL on one machine.
func (w *WAL) abandon() {
	if !w.closed.CompareAndSwap(false, true) {
		<-w.done
		return
	}
	close(w.killc)
	<-w.done
	if w.active != nil {
		w.active.Close()
		w.active = nil
	}
	if w.lock != nil {
		syscall.Flock(int(w.lock.Fd()), syscall.LOCK_UN)
		w.lock.Close()
	}
}

// Stats is a point-in-time snapshot of the WAL's counters.
type Stats struct {
	Records   uint64 // records appended
	Batches   uint64 // group commits
	Syncs     uint64 // fsync calls on segment data
	Rotations uint64 // segment rotations
	Snapshots uint64 // snapshots taken
	Bytes     uint64 // record bytes appended
}

// Stats returns the WAL's counters.
func (w *WAL) Stats() Stats {
	return Stats{
		Records:   w.records.Load(),
		Batches:   w.batches.Load(),
		Syncs:     w.syncs.Load(),
		Rotations: w.rotations.Load(),
		Snapshots: w.snaps.Load(),
		Bytes:     w.bytes.Load(),
	}
}
