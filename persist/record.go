package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"auditreg"
	"auditreg/internal/otp"
	"auditreg/store"
)

// Op identifies a durable record type. The type byte is part of the
// encrypted body: a curious party with disk access cannot even distinguish
// a fetch from a write.
type Op uint8

// The record types. OpOpen..OpAudit mirror store.JournalOp one-to-one;
// OpSeal is persist's own: the last record of every cleanly finished file.
const (
	OpOpen Op = iota + 1
	OpWrite
	OpFetch
	OpAnnounce
	OpAudit
	OpSeal
)

// String returns the op's name.
func (op Op) String() string {
	switch op {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpFetch:
		return "fetch"
	case OpAnnounce:
		return "announce"
	case OpAudit:
		return "audit"
	case OpSeal:
		return "seal"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Record is the decoded form of one WAL or snapshot record. Which fields are
// meaningful depends on Op, exactly as in store.JournalRecord.
type Record struct {
	Op       Op
	Name     string
	Kind     uint8 // store.Kind byte
	Capacity uint32
	Reader   uint8
	Seq      uint64
	Value    uint64
	Pairs    uint32
}

// Limits. maxName matches the store's practical name sizes (the wire bounds
// names at 1024); maxPlain bounds any record body, so a reader can always
// bound its buffer.
const (
	maxName  = 1024
	maxPlain = maxName + 64
)

// appendPlain serializes the record body (unencrypted) onto dst.
func (r *Record) appendPlain(dst []byte) []byte {
	dst = append(dst, byte(r.Op))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Name)))
	dst = append(dst, r.Name...)
	switch r.Op {
	case OpOpen:
		dst = append(dst, r.Kind)
		dst = binary.BigEndian.AppendUint32(dst, r.Capacity)
	case OpWrite:
		dst = append(dst, r.Kind)
		dst = binary.BigEndian.AppendUint64(dst, r.Seq)
		dst = binary.BigEndian.AppendUint64(dst, r.Value)
	case OpFetch:
		dst = append(dst, r.Kind, r.Reader)
		dst = binary.BigEndian.AppendUint64(dst, r.Seq)
		dst = binary.BigEndian.AppendUint64(dst, r.Value)
	case OpAnnounce:
		dst = append(dst, r.Kind, r.Reader)
		dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	case OpAudit:
		dst = append(dst, r.Kind)
		dst = binary.BigEndian.AppendUint32(dst, r.Pairs)
	case OpSeal:
	}
	return dst
}

// decodePlain parses a record body. The body must be fully consumed.
func decodePlain(b []byte) (Record, error) {
	var r Record
	if len(b) < 3 {
		return r, fmt.Errorf("persist: record body of %d bytes", len(b))
	}
	r.Op = Op(b[0])
	n := int(binary.BigEndian.Uint16(b[1:]))
	b = b[3:]
	if n > maxName {
		return r, fmt.Errorf("persist: record name of %d bytes exceeds %d", n, maxName)
	}
	if len(b) < n {
		return r, fmt.Errorf("persist: record name truncated")
	}
	r.Name = string(b[:n])
	b = b[n:]
	need := func(k int) bool { return len(b) >= k }
	switch r.Op {
	case OpOpen:
		if !need(5) {
			return r, fmt.Errorf("persist: open record truncated")
		}
		r.Kind = b[0]
		r.Capacity = binary.BigEndian.Uint32(b[1:])
		b = b[5:]
	case OpWrite:
		if !need(17) {
			return r, fmt.Errorf("persist: write record truncated")
		}
		r.Kind = b[0]
		r.Seq = binary.BigEndian.Uint64(b[1:])
		r.Value = binary.BigEndian.Uint64(b[9:])
		b = b[17:]
	case OpFetch:
		if !need(18) {
			return r, fmt.Errorf("persist: fetch record truncated")
		}
		r.Kind = b[0]
		r.Reader = b[1]
		r.Seq = binary.BigEndian.Uint64(b[2:])
		r.Value = binary.BigEndian.Uint64(b[10:])
		b = b[18:]
	case OpAnnounce:
		if !need(10) {
			return r, fmt.Errorf("persist: announce record truncated")
		}
		r.Kind = b[0]
		r.Reader = b[1]
		r.Seq = binary.BigEndian.Uint64(b[2:])
		b = b[10:]
	case OpAudit:
		if !need(5) {
			return r, fmt.Errorf("persist: audit record truncated")
		}
		r.Kind = b[0]
		r.Pairs = binary.BigEndian.Uint32(b[1:])
		b = b[5:]
	case OpSeal:
	default:
		return r, fmt.Errorf("persist: unknown record op %d", uint8(r.Op))
	}
	if len(b) != 0 {
		return r, fmt.Errorf("persist: %d trailing bytes after record body", len(b))
	}
	return r, nil
}

// Frame layout. Every record is framed as
//
//	u32 frameLen | u32 crc32c | u64 lsn | ciphertext
//
// with frameLen covering everything after the crc field (so a frame occupies
// frameLen+8 bytes on disk) and crc32c (Castagnoli) covering the lsn and the
// ciphertext — corruption is detected without decrypting.
//
// The ciphertext is the record body XORed with the file's pad stream: a
// per-file otp.BlockPads instance — one 41-byte SHA-256 digest yields 32
// keystream bytes, against the two compression calls the v1 per-record
// derivation paid for the same coverage — keyed by SHA-256(tag, key, file
// nonce) and indexed by the byte offset of the ciphertext within the file.
// A group commit therefore encrypts its whole batch against one dense,
// shared pad stream (adjacent records share pad blocks; the BlockPads window
// makes the reuse one cache hit, not a re-derivation).
//
// Pads never repeat: offsets are unique within a file (frames are written
// sequentially, and a crashed active segment is never appended to — see
// open.go), and the per-file random nonce makes streams disjoint across
// files. Relocating a frame breaks its decryption twice over: to a different
// offset (the pad index moves) and to a different file (the pad key moves).
const (
	frameOverhead = 16 // len + crc + lsn
	maxFrame      = frameOverhead + maxPlain
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// fileNonceLen is the size of the random per-file nonce in every file
// header.
const fileNonceLen = 16

const padTag = "auditreg/persist/pads/v2\x00"

// padStream is the keystream of one record file, derived in blocks from
// otp.BlockPads. Safe for concurrent use (distinct files are scanned
// concurrently with the writer appending to the active one; each has its
// own stream).
type padStream struct {
	pads *otp.BlockPads
}

// newPadStream derives the file's pad stream from the persist key and the
// file's nonce.
func newPadStream(key auditreg.Key, nonce *[fileNonceLen]byte) padStream {
	h := sha256.New()
	h.Write([]byte(padTag))
	h.Write(key[:])
	h.Write(nonce[:])
	var fileKey auditreg.Key
	h.Sum(fileKey[:0])
	// MaxReaders-wide pads are full 64-bit words: the stream is a general
	// keystream here, not an m-bit reader-set mask.
	pads, err := otp.NewBlockPads(fileKey, otp.MaxReaders)
	if err != nil {
		// Unreachable: MaxReaders is a valid reader count by definition.
		panic(fmt.Sprintf("persist: pad stream: %v", err))
	}
	return padStream{pads: pads}
}

// xor XORs buf in place with the pad stream covering file bytes
// [off, off+len(buf)).
func (p padStream) xor(buf []byte, off int64) {
	q := uint64(off)
	for i := 0; i < len(buf); {
		w := p.pads.Mask(q / 8)
		for b := q % 8; b < 8 && i < len(buf); b, q, i = b+1, q+1, i+1 {
			buf[i] ^= byte(w >> (8 * b))
		}
	}
}

// appendFrame appends the complete encrypted frame for rec at lsn onto dst,
// where off is the file offset the frame starts at (that is, where
// dst[len(dst)] will land on disk).
func appendFrame(dst []byte, ps padStream, off int64, lsn uint64, rec *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frameLen + crc placeholders
	dst = binary.BigEndian.AppendUint64(dst, lsn)
	body := len(dst)
	dst = rec.appendPlain(dst)
	ps.xor(dst[body:], off+frameOverhead)
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-8))
	binary.BigEndian.PutUint32(dst[start+4:], crc32.Checksum(dst[start+8:], castagnoli))
	return dst
}

// errTornFrame reports a frame cut short by the end of the input: the one
// kind of damage recovery tolerates, and only at the very tail of the active
// segment.
var errTornFrame = fmt.Errorf("persist: torn frame")

// parseFrame decodes the first frame of b — located at file offset off —
// returning the record, its lsn, and the unconsumed remainder. errTornFrame
// (possibly wrapped) reports that the input ends mid-frame; any other error
// is corruption.
func parseFrame(b []byte, ps padStream, off int64) (rec Record, lsn uint64, rest []byte, err error) {
	if len(b) < 8 {
		return rec, 0, b, fmt.Errorf("%w: %d header bytes", errTornFrame, len(b))
	}
	n := binary.BigEndian.Uint32(b)
	if n < 8 || n > maxFrame-8 {
		return rec, 0, b, fmt.Errorf("persist: frame length %d out of range", n)
	}
	if len(b) < int(8+n) {
		return rec, 0, b, fmt.Errorf("%w: frame of %d bytes, %d available", errTornFrame, 8+n, len(b))
	}
	payload := b[8 : 8+n]
	if got, want := crc32.Checksum(payload, castagnoli), binary.BigEndian.Uint32(b[4:]); got != want {
		return rec, 0, b, fmt.Errorf("persist: frame crc mismatch (%08x != %08x)", got, want)
	}
	lsn = binary.BigEndian.Uint64(payload)
	plain := append([]byte(nil), payload[8:]...)
	ps.xor(plain, off+frameOverhead)
	rec, err = decodePlain(plain)
	if err != nil {
		return rec, lsn, b, err
	}
	return rec, lsn, b[8+n:], nil
}

// fromJournal converts a store journal record into a durable record.
func fromJournal(r *store.JournalRecord[uint64]) Record {
	rec := Record{
		Name:     r.Name,
		Kind:     uint8(r.Kind),
		Capacity: uint32(r.Capacity),
		Reader:   uint8(r.Reader),
		Seq:      r.Seq,
		Value:    r.Value,
		Pairs:    uint32(r.Pairs),
	}
	switch r.Op {
	case store.JournalOpen:
		rec.Op = OpOpen
	case store.JournalWrite:
		rec.Op = OpWrite
	case store.JournalFetch:
		rec.Op = OpFetch
	case store.JournalAnnounce:
		rec.Op = OpAnnounce
	case store.JournalAudit:
		rec.Op = OpAudit
	}
	return rec
}
