// Package auditreg is a Go implementation of "Auditing without Leaks Despite
// Curiosity" (Attiya, Fernández Anta, Milani, Rapetti, Travers — PODC 2025):
// wait-free, linearizable auditable shared objects that track who effectively
// read which value, without leaking those accesses — or unread values — to
// curious readers.
//
// # Objects
//
//   - Register (Algorithm 1): a multi-writer multi-reader register whose
//     Audit reports exactly the effective reads. A read is auditable from the
//     instant the reader could know the value, so a process cannot learn a
//     value and dodge the audit by stopping early.
//   - MaxRegister (Algorithm 2): an auditable max register; random nonces
//     prevent readers from inferring intermediate writes from sequence gaps.
//   - Snapshot (Algorithm 3): an auditable atomic snapshot built from a max
//     register and a wait-free snapshot substrate.
//   - Versioned (Theorem 13): a transform making any versioned type (counter,
//     logical clock, register, histogram, ...) auditable.
//
// # Roles and secrets
//
// Access logs are encrypted with one-time pads derived from a shared secret
// Key. Writers and auditors hold the key; readers must not. Each process uses
// its own handle (Reader, Writer, Auditor): handles are cheap, carry the
// per-process protocol state, and are not safe for concurrent use, while the
// underlying objects are.
//
// # Quick start
//
//	key, _ := auditreg.NewKey()
//	pads, _ := auditreg.NewKeyedPads(key, 4) // 4 readers
//	reg, _ := auditreg.NewRegister(4, "v0", pads)
//
//	rd, _ := reg.Reader(0)
//	_ = reg.Write("v1")
//	fmt.Println(rd.Read()) // "v1"
//
//	rep, _ := reg.Auditor().Audit()
//	fmt.Println(rep) // {(0, v1)}
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory. To host many named auditable objects behind one API — with
// sharded lookup and batched asynchronous auditing — see package
// auditreg/store.
package auditreg

import (
	"auditreg/internal/core"
	"auditreg/internal/maxreg"
	"auditreg/internal/otp"
	"auditreg/internal/snapshot"
	"auditreg/internal/versioned"
)

// MaxReaders is the largest supported number of readers per object (the
// tracking bits live in one 64-bit word, as in the paper's register R).
const MaxReaders = core.MaxReaders

// Key is the 256-bit shared secret of writers and auditors.
type Key = otp.Key

// PadSource yields the per-sequence-number one-time pads.
type PadSource = otp.PadSource

// NonceSource yields the nonces of max-register writes.
type NonceSource = otp.NonceSource

// NewKey returns a fresh random key.
func NewKey() (Key, error) { return otp.NewKey() }

// KeyFromSeed derives a key deterministically; for tests and reproducible
// experiments only.
func KeyFromSeed(seed uint64) Key { return otp.KeyFromSeed(seed) }

// NewKeyedPads returns the pad source for m readers backed by key: one
// SHA-256 digest per pad lookup.
func NewKeyedPads(key Key, m int) (PadSource, error) { return otp.NewKeyedPads(key, m) }

// NewBlockPads returns the block-derived pad source for m readers backed by
// key: one SHA-256 digest yields four consecutive pads, served through a
// lock-free window cache. Prefer it on write- or audit-heavy workloads; it is
// as strong as NewKeyedPads but derives a different pad sequence from the
// same key.
func NewBlockPads(key Key, m int) (PadSource, error) { return otp.NewBlockPads(key, m) }

// NewSeededNonces returns a deterministic nonce source for the writer with
// the given 8-bit owner id.
func NewSeededNonces(seed uint64, owner uint8) NonceSource {
	return otp.NewSeededNonces(seed, owner)
}

// NewCryptoNonces returns a cryptographically random nonce source.
func NewCryptoNonces(owner uint8) NonceSource { return otp.NewCryptoNonces(owner) }

// Register is the auditable multi-writer multi-reader register (Algorithm 1).
type Register[V comparable] = core.Register[V]

// Reader is a per-process read handle of a Register.
type Reader[V comparable] = core.Reader[V]

// Writer is a per-process write handle of a Register.
type Writer[V comparable] = core.Writer[V]

// Auditor is a per-process audit handle of a Register.
type Auditor[V comparable] = core.Auditor[V]

// Entry is one audited access: reader j read Value.
type Entry[V comparable] = core.Entry[V]

// Report is an audit response: a set of Entry values.
type Report[V comparable] = core.Report[V]

// NewReport builds a report from explicit entries, deduplicated, preserving
// first occurrence order. Producers that reconstruct reports — tests,
// specifications, the network client unmasking an audit response — use it to
// obtain a Report comparable with Report.Equal.
func NewReport[V comparable](entries ...Entry[V]) Report[V] { return core.NewReport(entries...) }

// HandleOption configures a process handle (instrumentation probe, pid).
type HandleOption = core.HandleOption

// RegisterOption configures a Register.
type RegisterOption[V comparable] = core.Option[V]

// NewRegister returns an auditable register for m readers holding initial.
// The pads embody the writer/auditor secret; never hand them to readers.
func NewRegister[V comparable](m int, initial V, pads PadSource, opts ...RegisterOption[V]) (*Register[V], error) {
	return core.New(m, initial, pads, opts...)
}

// WithCapacity bounds the auditable history length of a Register.
func WithCapacity[V comparable](n int) RegisterOption[V] { return core.WithCapacity[V](n) }

// MaxRegister is the auditable max register (Algorithm 2).
type MaxRegister[V comparable] = maxreg.Auditable[V]

// MaxReader is a per-process read handle of a MaxRegister.
type MaxReader[V comparable] = maxreg.Reader[V]

// MaxWriter is a per-process writeMax handle of a MaxRegister.
type MaxWriter[V comparable] = maxreg.Writer[V]

// MaxAuditor is a per-process audit handle of a MaxRegister.
type MaxAuditor[V comparable] = maxreg.Auditor[V]

// Less is a strict total order on V.
type Less[V any] = maxreg.Less[V]

// MaxRegisterOption configures a MaxRegister.
type MaxRegisterOption[V comparable] = maxreg.AuditableOption[V]

// WithMaxCapacity bounds the auditable history length of a MaxRegister.
func WithMaxCapacity[V comparable](n int) MaxRegisterOption[V] {
	return maxreg.WithAuditableCapacity[V](n)
}

// NewMaxRegister returns an auditable max register for m readers holding
// initial, ordered by less.
func NewMaxRegister[V comparable](m int, initial V, less Less[V], pads PadSource, opts ...MaxRegisterOption[V]) (*MaxRegister[V], error) {
	return maxreg.NewAuditable(m, initial, less, pads, opts...)
}

// Snapshot is the auditable atomic snapshot (Algorithm 3).
type Snapshot[V comparable] = snapshot.Auditable[V]

// SnapshotUpdater is the single-writer update handle of one component.
type SnapshotUpdater[V comparable] = snapshot.SnapUpdater[V]

// SnapshotScanner is a per-process scan handle.
type SnapshotScanner[V comparable] = snapshot.SnapScanner[V]

// SnapshotAuditor is a per-process audit handle.
type SnapshotAuditor[V comparable] = snapshot.SnapAuditor[V]

// ViewEntry is one audited scan: Reader obtained View.
type ViewEntry[V comparable] = snapshot.ViewEntry[V]

// SnapshotOption configures a Snapshot.
type SnapshotOption[V comparable] = snapshot.AuditableOption[V]

// WithSnapshotCapacity bounds the audit history length of a Snapshot's
// underlying max register.
func WithSnapshotCapacity[V comparable](n int) SnapshotOption[V] {
	return snapshot.WithSnapshotCapacity[V](n)
}

// NewSnapshot returns an auditable snapshot with n single-writer components
// and m scanners, every component holding initial.
func NewSnapshot[V comparable](n, m int, initial V, pads PadSource, opts ...SnapshotOption[V]) (*Snapshot[V], error) {
	return snapshot.NewAuditable(n, m, initial, pads, opts...)
}

// ContainsView reports whether an audit's entries include (reader, view).
func ContainsView[V comparable](entries []ViewEntry[V], reader int, view []V) bool {
	return snapshot.ContainsView(entries, reader, view)
}

// VersionedType is the sequential specification tuple (Q, q0, I, O, f, g) of
// a versioned type.
type VersionedType[Q, I, O any] = versioned.Type[Q, I, O]

// VersionedBase is a linearizable versioned implementation.
type VersionedBase[I, O any] = versioned.Base[I, O]

// Versioned is the auditable variant of a versioned type (Theorem 13).
type Versioned[I any, O comparable] = versioned.Auditable[I, O]

// VersionedUpdater is a per-process update handle.
type VersionedUpdater[I any, O comparable] = versioned.AuditableUpdater[I, O]

// VersionedReader is a per-process read handle.
type VersionedReader[I any, O comparable] = versioned.AuditableReader[I, O]

// NewVersionedBase returns a lock-free versioned implementation of t.
func NewVersionedBase[Q, I, O any](t VersionedType[Q, I, O]) *versioned.CASBase[Q, I, O] {
	return versioned.NewCAS(t)
}

// NewVersioned wraps a versioned base (at version 0) into an auditable object
// for m readers.
func NewVersioned[I any, O comparable](m int, base VersionedBase[I, O], pads PadSource) (*Versioned[I, O], error) {
	return versioned.NewAuditable(m, base, pads)
}

// CounterType is a monotone counter versioned type.
func CounterType() VersionedType[uint64, struct{}, uint64] { return versioned.CounterType() }

// LamportClockType is a Lamport logical clock versioned type.
func LamportClockType() VersionedType[uint64, uint64, uint64] { return versioned.LamportClockType() }

// RegisterType is an overwriting register versioned type.
func RegisterType[V any](initial V) VersionedType[V, V, V] { return versioned.RegisterType(initial) }
