// Package otp implements the one-time-pad and nonce infrastructure of
// "Auditing without Leaks Despite Curiosity" (Attiya et al., PODC 2025).
//
// The paper assumes an infinite sequence of random m-bit strings
// rand_0, rand_1, ... shared by writers and auditors but unknown to readers
// (Section 2, "One-time pads"). Each rand_s encrypts the reader set of the
// value with sequence number s: the empty set is encrypted as rand_s itself,
// and reader j inserts itself by XOR-ing tracking bit j, exploiting the
// additive malleability of the pad.
//
// We realize the shared sequence as a PRF over a 256-bit shared secret:
// rand_s = SHA-256(key ‖ s) truncated to m bits. To a computationally bounded
// observer without the key this is indistinguishable from the paper's
// sequence of independent uniform strings, and it makes runs reproducible.
package otp

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	mathrand "math/rand/v2"
	"sync"
	"sync/atomic"
)

// MaxReaders is the largest number of readers m supported by a single pad:
// the m tracking bits are packed into one 64-bit word, as the paper packs
// them into the low bits of the register R.
const MaxReaders = 64

// PadSource yields the per-sequence-number masks rand_s shared by writers and
// auditors. Implementations must be safe for concurrent use and must return
// the same mask for the same sequence number on every call.
type PadSource interface {
	// Mask returns the m-bit pad rand_s for sequence number s, in the low
	// m bits of the result. Bits at positions >= m are zero.
	Mask(s uint64) uint64
}

// Key is the 256-bit shared secret from which a pad sequence is derived.
// It must be known to writers and auditors only; a reader holding the key can
// decrypt tracking bits and compromise other readers' accesses.
type Key [32]byte

// NewKey returns a fresh random key using the operating system's entropy
// source.
func NewKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("otp: generating key: %w", err)
	}
	return k, nil
}

// KeyFromSeed derives a key deterministically from a 64-bit seed. It is
// intended for tests and reproducible experiments; production code should use
// NewKey.
func KeyFromSeed(seed uint64) Key {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	return sha256.Sum256(buf[:])
}

// KeyedPads derives rand_s = SHA-256(key ‖ s) truncated to m bits.
// The zero value is not usable; construct with NewKeyedPads.
type KeyedPads struct {
	key         Key
	m           int
	derivations atomic.Uint64
}

var _ PadSource = (*KeyedPads)(nil)
var _ DerivationCounter = (*KeyedPads)(nil)

// NewKeyedPads returns a pad source for m readers (1 <= m <= MaxReaders)
// backed by the given shared key.
func NewKeyedPads(key Key, m int) (*KeyedPads, error) {
	if m < 1 || m > MaxReaders {
		return nil, fmt.Errorf("otp: m must be in [1, %d], got %d", MaxReaders, m)
	}
	return &KeyedPads{key: key, m: m}, nil
}

// Readers returns the number of readers m the pads cover.
func (p *KeyedPads) Readers() int { return p.m }

// Mask implements PadSource: one SHA-256 digest per call. BlockPads derives
// the same-strength pads at a quarter digest per fresh sequence number.
func (p *KeyedPads) Mask(s uint64) uint64 {
	p.derivations.Add(1)
	var buf [40]byte
	copy(buf[:32], p.key[:])
	binary.LittleEndian.PutUint64(buf[32:], s)
	sum := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(sum[:8]) & MaskBits(p.m)
}

// Derivations implements DerivationCounter.
func (p *KeyedPads) Derivations() uint64 { return p.derivations.Load() }

// FixedPads serves masks from an explicit table, cycling past the end.
// It is intended for tests that need hand-picked pads.
type FixedPads struct {
	masks []uint64
}

var _ PadSource = (*FixedPads)(nil)

// NewFixedPads returns a pad source serving masks[s % len(masks)].
func NewFixedPads(masks ...uint64) (*FixedPads, error) {
	if len(masks) == 0 {
		return nil, fmt.Errorf("otp: fixed pads need at least one mask")
	}
	cp := make([]uint64, len(masks))
	copy(cp, masks)
	return &FixedPads{masks: cp}, nil
}

// Mask implements PadSource.
func (p *FixedPads) Mask(s uint64) uint64 {
	return p.masks[s%uint64(len(p.masks))]
}

// ZeroPads disables encryption: every mask is zero, so tracking bits are
// stored in the clear. It exists to reproduce the paper's Section 3.1
// observation that plaintext reader sets compromise reads, and as the
// "encryption off" ablation in benchmarks. Never use it where the leak-
// freedom guarantees matter.
type ZeroPads struct{}

var _ PadSource = ZeroPads{}

// Mask implements PadSource: always zero.
func (ZeroPads) Mask(uint64) uint64 { return 0 }

// MaskBits returns a word with the low m bits set (m in [0, 64]).
func MaskBits(m int) uint64 {
	if m >= 64 {
		return ^uint64(0)
	}
	if m <= 0 {
		return 0
	}
	return (uint64(1) << uint(m)) - 1
}

// NonceSource yields the random nonces appended to max-register inputs
// (Algorithm 2). Nonces from a single source must be unique.
type NonceSource interface {
	// Next returns a fresh nonce.
	Next() uint64
}

// SeededNonces is a deterministic nonce source: 56 random bits from a seeded
// PCG generator concatenated with an 8-bit owner id. Embedding the owner id
// guarantees global uniqueness across sources with distinct owners, which the
// paper obtains probabilistically from "fresh random nonces". Safe for
// concurrent use.
type SeededNonces struct {
	mu    sync.Mutex
	rng   *mathrand.Rand
	owner uint8
}

var _ NonceSource = (*SeededNonces)(nil)

// NewSeededNonces returns a nonce source owned by the given 8-bit id.
func NewSeededNonces(seed uint64, owner uint8) *SeededNonces {
	return &SeededNonces{
		rng:   mathrand.New(mathrand.NewPCG(seed, uint64(owner)+0x9e3779b97f4a7c15)),
		owner: owner,
	}
}

// Next implements NonceSource.
func (n *SeededNonces) Next() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Uint64()<<8 | uint64(n.owner)
}

// FixedNonce always returns the same nonce. It is the "nonces off" ablation
// for Algorithm 2: with a constant nonce, re-writing the same value never
// raises the max register, so sequence-number gaps reveal exactly how many
// distinct values were written — the leak the paper's nonces close
// (Lemma 38). Never use it where leak-freedom matters.
type FixedNonce uint64

var _ NonceSource = FixedNonce(0)

// Next implements NonceSource: always the fixed value.
func (n FixedNonce) Next() uint64 { return uint64(n) }

// CryptoNonces draws nonces from the operating system's entropy source,
// with the owner id in the low byte as for SeededNonces.
type CryptoNonces struct {
	owner uint8
}

var _ NonceSource = (*CryptoNonces)(nil)

// NewCryptoNonces returns a cryptographically random nonce source.
func NewCryptoNonces(owner uint8) *CryptoNonces { return &CryptoNonces{owner: owner} }

// Next implements NonceSource.
func (n *CryptoNonces) Next() uint64 {
	var buf [8]byte
	// rand.Read on the crypto source never fails on supported platforms;
	// if it ever does, a zero nonce is still unique thanks to the owner id
	// but loses unpredictability, so surface loudly.
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("otp: crypto nonce source failed: %v", err))
	}
	return binary.LittleEndian.Uint64(buf[:])<<8 | uint64(n.owner)
}
