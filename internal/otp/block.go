package otp

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// MasksPerBlock is how many consecutive pads one SHA-256 digest yields: the
// 32-byte digest is cut into four little-endian 64-bit masks
// rand_{4b} .. rand_{4b+3}.
const MasksPerBlock = 4

// blockDomain separates the block derivation from the per-sequence-number
// derivation of KeyedPads, so the two sources never share digest inputs even
// under the same key.
const blockDomain = 0xB1

// DefaultPadWindow is the default number of pad blocks the lock-free window
// cache of BlockPads retains (a power of two). It covers
// DefaultPadWindow*MasksPerBlock consecutive sequence numbers, comfortably
// more than the spread between the register's current sequence number and the
// trailing writers and auditors that still decode it.
const DefaultPadWindow = 64

// DerivationCounter is implemented by pad sources that count how many SHA-256
// digest computations they have performed. Benchmarks use it to report
// hash compressions per operation.
type DerivationCounter interface {
	// Derivations returns the cumulative number of SHA-256 digests computed.
	Derivations() uint64
}

// padBlock is one derived block: the four masks for sequence numbers
// [4*idx, 4*idx+3].
type padBlock struct {
	idx   uint64
	masks [MasksPerBlock]uint64
}

// BlockPads derives pads in blocks: one SHA-256 digest over
// (key ‖ blockIndex ‖ domain) yields the four masks rand_{4b}..rand_{4b+3}.
// Blocks are served through a lock-free power-of-two window cache, so the
// write path of Algorithm 1 — which looks up the outgoing pad rand_{lsn} and
// the incoming pad rand_{sn} on every CAS attempt — amortizes to a quarter of
// a digest per fresh sequence number instead of two digests per attempt.
//
// To a computationally bounded observer without the key the sequence is
// indistinguishable from independent uniform masks, exactly as for KeyedPads;
// the two sources draw from disjoint digest inputs (see blockDomain) and
// therefore produce independent pad sequences even under the same key.
//
// Safe for concurrent use. Construct with NewBlockPads; the zero value is not
// usable.
type BlockPads struct {
	key   Key
	m     int
	maskM uint64

	windowMask  uint64
	window      []atomic.Pointer[padBlock]
	derivations atomic.Uint64
}

var _ PadSource = (*BlockPads)(nil)
var _ DerivationCounter = (*BlockPads)(nil)

// NewBlockPads returns a block-derived pad source for m readers
// (1 <= m <= MaxReaders) backed by the given shared key, with the default
// window size.
func NewBlockPads(key Key, m int) (*BlockPads, error) {
	return NewBlockPadsWindow(key, m, DefaultPadWindow)
}

// NewBlockPadsWindow is NewBlockPads with an explicit window size, which must
// be a power of two. Smaller windows stress eviction in tests; larger windows
// serve deeper incremental-audit backlogs without re-hashing.
func NewBlockPadsWindow(key Key, m, window int) (*BlockPads, error) {
	if m < 1 || m > MaxReaders {
		return nil, fmt.Errorf("otp: m must be in [1, %d], got %d", MaxReaders, m)
	}
	if window < 1 || window&(window-1) != 0 {
		return nil, fmt.Errorf("otp: window must be a positive power of two, got %d", window)
	}
	return &BlockPads{
		key:        key,
		m:          m,
		maskM:      MaskBits(m),
		windowMask: uint64(window - 1),
		window:     make([]atomic.Pointer[padBlock], window),
	}, nil
}

// Readers returns the number of readers m the pads cover.
func (p *BlockPads) Readers() int { return p.m }

// Derivations implements DerivationCounter.
func (p *BlockPads) Derivations() uint64 { return p.derivations.Load() }

// Mask implements PadSource. A hit in the window cache is two atomic loads;
// a miss derives the whole four-mask block and publishes it. Concurrent
// misses on the same block may derive it more than once; the derivation is
// deterministic, so every copy is identical and last-publish-wins is safe.
func (p *BlockPads) Mask(s uint64) uint64 {
	b := s / MasksPerBlock
	slot := &p.window[b&p.windowMask]
	if blk := slot.Load(); blk != nil && blk.idx == b {
		return blk.masks[s%MasksPerBlock] & p.maskM
	}
	blk := p.derive(b)
	slot.Store(blk)
	return blk.masks[s%MasksPerBlock] & p.maskM
}

// derive computes the block for index b: one SHA-256 over 41 bytes (a single
// compression-function call), cut into four little-endian words.
func (p *BlockPads) derive(b uint64) *padBlock {
	p.derivations.Add(1)
	var buf [41]byte
	copy(buf[:32], p.key[:])
	binary.LittleEndian.PutUint64(buf[32:40], b)
	buf[40] = blockDomain
	sum := sha256.Sum256(buf[:])
	blk := &padBlock{idx: b}
	for i := range blk.masks {
		blk.masks[i] = binary.LittleEndian.Uint64(sum[8*i:])
	}
	return blk
}

// PadCache is a small direct-mapped per-handle memo in front of a PadSource.
// Writer handles look up the same two pads — rand_{lsn} for the value they
// copy out and rand_{sn} for the value they install — on every iteration of
// their CAS retry loop, and incremental auditors re-decode rand_{rsn} on
// every audit; the cache turns those repeats into four comparisons and no
// shared-memory traffic at all.
//
// Not safe for concurrent use: embed one per process handle. The zero value
// is not usable; construct with NewPadCache.
type PadCache struct {
	src  PadSource
	seq  [4]uint64
	mask [4]uint64
	ok   [4]bool
}

// NewPadCache returns a cache in front of src.
func NewPadCache(src PadSource) PadCache {
	return PadCache{src: src}
}

// Mask returns src.Mask(s), memoized. Four direct-mapped entries cover the
// writer's (lsn, sn) working set, which occupies distinct slots in the common
// case sn = lsn+1.
func (c *PadCache) Mask(s uint64) uint64 {
	i := s & 3
	if c.ok[i] && c.seq[i] == s {
		return c.mask[i]
	}
	m := c.src.Mask(s)
	c.seq[i], c.mask[i], c.ok[i] = s, m, true
	return m
}
