package otp_test

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/otp"
)

// naiveBlockMask re-derives rand_s from scratch, independently of BlockPads'
// window cache: one SHA-256 over (key ‖ s/4 ‖ 0xB1), sliced at offset 8*(s%4).
func naiveBlockMask(key otp.Key, m int, s uint64) uint64 {
	var buf [41]byte
	copy(buf[:32], key[:])
	binary.LittleEndian.PutUint64(buf[32:40], s/4)
	buf[40] = 0xB1
	sum := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(sum[8*(s%4):]) & otp.MaskBits(m)
}

// TestBlockPadsDerivationEquivalence: the windowed, cached fast path must
// agree with a from-scratch re-derivation on every sequence number, under
// sequential, strided, and random access patterns (which exercise window hits,
// misses, and evictions).
func TestBlockPadsDerivationEquivalence(t *testing.T) {
	t.Parallel()
	key := otp.KeyFromSeed(11)
	const m = 48
	p, err := otp.NewBlockPadsWindow(key, m, 8) // tiny window: force evictions
	if err != nil {
		t.Fatalf("NewBlockPadsWindow: %v", err)
	}
	// Sequential.
	for s := uint64(0); s < 500; s++ {
		if got, want := p.Mask(s), naiveBlockMask(key, m, s); got != want {
			t.Fatalf("sequential: Mask(%d) = %#x, want %#x", s, got, want)
		}
	}
	// Random access, including revisits of evicted blocks.
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 2000; i++ {
		s := rng.Uint64N(1 << 20)
		if got, want := p.Mask(s), naiveBlockMask(key, m, s); got != want {
			t.Fatalf("random: Mask(%d) = %#x, want %#x", s, got, want)
		}
	}
}

func TestBlockPadsDeterministicAndKeyed(t *testing.T) {
	t.Parallel()
	key := otp.KeyFromSeed(7)
	p1, err := otp.NewBlockPads(key, 16)
	if err != nil {
		t.Fatalf("NewBlockPads: %v", err)
	}
	p2, err := otp.NewBlockPads(key, 16)
	if err != nil {
		t.Fatalf("NewBlockPads: %v", err)
	}
	other, err := otp.NewBlockPads(otp.KeyFromSeed(8), 16)
	if err != nil {
		t.Fatalf("NewBlockPads: %v", err)
	}
	differs := false
	for s := uint64(0); s < 256; s++ {
		if p1.Mask(s) != p2.Mask(s) {
			t.Fatalf("pad sequence not deterministic at s=%d", s)
		}
		if p1.Mask(s) != other.Mask(s) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("distinct keys produced identical pad sequences")
	}
}

func TestBlockPadsRespectWidth(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, mRaw uint8, s uint64) bool {
		m := int(mRaw)%otp.MaxReaders + 1
		p, err := otp.NewBlockPads(otp.KeyFromSeed(seed), m)
		if err != nil {
			return false
		}
		return p.Mask(s)&^otp.MaskBits(m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBlockPadsDisjointFromKeyedPads: under the same key, the block-derived
// sequence must be unrelated to the legacy per-sequence-number sequence — the
// domain byte keeps their digest inputs disjoint.
func TestBlockPadsDisjointFromKeyedPads(t *testing.T) {
	t.Parallel()
	key := otp.KeyFromSeed(3)
	block, err := otp.NewBlockPads(key, 64)
	if err != nil {
		t.Fatalf("NewBlockPads: %v", err)
	}
	keyed, err := otp.NewKeyedPads(key, 64)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	collisions := 0
	for s := uint64(0); s < 256; s++ {
		if block.Mask(s) == keyed.Mask(s) {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("block and keyed sequences collide on %d/256 masks", collisions)
	}
}

// TestBlockPadsAmortizedDerivations: a sequential scan of S sequence numbers
// must cost about S/4 digests — the 4x compression-count win over KeyedPads.
func TestBlockPadsAmortizedDerivations(t *testing.T) {
	t.Parallel()
	p, err := otp.NewBlockPads(otp.KeyFromSeed(5), 32)
	if err != nil {
		t.Fatalf("NewBlockPads: %v", err)
	}
	const span = 4096
	for s := uint64(0); s < span; s++ {
		p.Mask(s)
		p.Mask(s) // repeat lookups must be free
	}
	if got := p.Derivations(); got != span/otp.MasksPerBlock {
		t.Fatalf("scan of %d seqs cost %d derivations, want %d", span, got, span/otp.MasksPerBlock)
	}

	keyed, err := otp.NewKeyedPads(otp.KeyFromSeed(5), 32)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	for s := uint64(0); s < span; s++ {
		keyed.Mask(s)
	}
	if got := keyed.Derivations(); got != span {
		t.Fatalf("KeyedPads cost %d derivations over %d masks", got, span)
	}
}

// TestBlockPadsConcurrent hammers one source from many goroutines; run under
// -race this checks the lock-free window, and the per-goroutine comparison
// against the naive derivation checks that racing publishes never serve a
// wrong block.
func TestBlockPadsConcurrent(t *testing.T) {
	t.Parallel()
	key := otp.KeyFromSeed(21)
	const m = 64
	p, err := otp.NewBlockPadsWindow(key, m, 4)
	if err != nil {
		t.Fatalf("NewBlockPadsWindow: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 9))
			for i := 0; i < 3000; i++ {
				s := rng.Uint64N(256)
				if got, want := p.Mask(s), naiveBlockMask(key, m, s); got != want {
					select {
					case errs <- "mask mismatch under concurrency":
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func TestBlockPadsValidation(t *testing.T) {
	t.Parallel()
	if _, err := otp.NewBlockPads(otp.Key{}, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := otp.NewBlockPads(otp.Key{}, 65); err == nil {
		t.Error("m=65 accepted")
	}
	if _, err := otp.NewBlockPadsWindow(otp.Key{}, 4, 3); err == nil {
		t.Error("non-power-of-two window accepted")
	}
	if _, err := otp.NewBlockPadsWindow(otp.Key{}, 4, 0); err == nil {
		t.Error("zero window accepted")
	}
}

// TestPadCache: repeats hit the memo (no derivations), the writer's (lsn, sn)
// working set coexists, and values always match the underlying source.
func TestPadCache(t *testing.T) {
	t.Parallel()
	src, err := otp.NewKeyedPads(otp.KeyFromSeed(13), 16)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	ref, err := otp.NewKeyedPads(otp.KeyFromSeed(13), 16)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	c := otp.NewPadCache(src)

	// Writer working set: pads lsn and sn=lsn+1, repeated per retry.
	for retry := 0; retry < 10; retry++ {
		if c.Mask(41) != ref.Mask(41) || c.Mask(42) != ref.Mask(42) {
			t.Fatal("cached mask diverged from source")
		}
	}
	if got := src.Derivations(); got != 2 {
		t.Fatalf("10 retries over {41, 42} cost %d derivations, want 2", got)
	}

	// Random probes stay correct through evictions.
	rng := rand.New(rand.NewPCG(4, 4))
	for i := 0; i < 500; i++ {
		s := rng.Uint64N(64)
		if c.Mask(s) != ref.Mask(s) {
			t.Fatalf("PadCache.Mask(%d) diverged", s)
		}
	}
}
