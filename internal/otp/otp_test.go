package otp_test

import (
	"testing"
	"testing/quick"

	"auditreg/internal/otp"
)

func TestKeyedPadsDeterministic(t *testing.T) {
	t.Parallel()
	key := otp.KeyFromSeed(7)
	p1, err := otp.NewKeyedPads(key, 16)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	p2, err := otp.NewKeyedPads(key, 16)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	for s := uint64(0); s < 100; s++ {
		if p1.Mask(s) != p2.Mask(s) {
			t.Fatalf("pad sequence not deterministic at s=%d", s)
		}
	}
}

func TestKeyedPadsRespectWidth(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, mRaw uint8, s uint64) bool {
		m := int(mRaw)%otp.MaxReaders + 1
		p, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), m)
		if err != nil {
			return false
		}
		return p.Mask(s)&^otp.MaskBits(m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedPadsDifferAcrossKeysAndSeqs(t *testing.T) {
	t.Parallel()
	pA, _ := otp.NewKeyedPads(otp.KeyFromSeed(1), 64)
	pB, _ := otp.NewKeyedPads(otp.KeyFromSeed(2), 64)
	// Distinct keys and distinct sequence numbers should essentially never
	// collide on 64-bit masks; check a window.
	seen := make(map[uint64]string, 200)
	for s := uint64(0); s < 100; s++ {
		for name, p := range map[string]*otp.KeyedPads{"A": pA, "B": pB} {
			m := p.Mask(s)
			if prev, dup := seen[m]; dup {
				t.Fatalf("mask collision between %s@%d and %s", name, s, prev)
			}
			seen[m] = name
		}
	}
}

func TestKeyedPadsValidation(t *testing.T) {
	t.Parallel()
	if _, err := otp.NewKeyedPads(otp.Key{}, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := otp.NewKeyedPads(otp.Key{}, 65); err == nil {
		t.Error("m=65 accepted")
	}
}

func TestFixedPadsCycle(t *testing.T) {
	t.Parallel()
	p, err := otp.NewFixedPads(1, 2, 3)
	if err != nil {
		t.Fatalf("NewFixedPads: %v", err)
	}
	want := []uint64{1, 2, 3, 1, 2, 3, 1}
	for s, w := range want {
		if got := p.Mask(uint64(s)); got != w {
			t.Fatalf("Mask(%d) = %d, want %d", s, got, w)
		}
	}
	if _, err := otp.NewFixedPads(); err == nil {
		t.Error("empty fixed pads accepted")
	}
}

func TestZeroPads(t *testing.T) {
	t.Parallel()
	var p otp.ZeroPads
	for s := uint64(0); s < 10; s++ {
		if p.Mask(s) != 0 {
			t.Fatalf("ZeroPads.Mask(%d) != 0", s)
		}
	}
}

func TestMaskBits(t *testing.T) {
	t.Parallel()
	cases := []struct {
		m    int
		want uint64
	}{
		{-1, 0},
		{0, 0},
		{1, 1},
		{8, 0xff},
		{63, 1<<63 - 1},
		{64, ^uint64(0)},
		{100, ^uint64(0)},
	}
	for _, c := range cases {
		if got := otp.MaskBits(c.m); got != c.want {
			t.Errorf("MaskBits(%d) = %#x, want %#x", c.m, got, c.want)
		}
	}
}

func TestSeededNoncesUniqueAndOwnerTagged(t *testing.T) {
	t.Parallel()
	src := otp.NewSeededNonces(99, 7)
	seen := make(map[uint64]struct{}, 1000)
	for i := 0; i < 1000; i++ {
		n := src.Next()
		if n&0xff != 7 {
			t.Fatalf("nonce %#x lost its owner tag", n)
		}
		if _, dup := seen[n]; dup {
			t.Fatalf("duplicate nonce %#x", n)
		}
		seen[n] = struct{}{}
	}
}

func TestSeededNoncesDisjointAcrossOwners(t *testing.T) {
	t.Parallel()
	a := otp.NewSeededNonces(1, 1)
	b := otp.NewSeededNonces(1, 2)
	// Same seed, different owners: low byte alone separates them.
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			t.Fatal("owners collided")
		}
	}
}

func TestCryptoNonces(t *testing.T) {
	t.Parallel()
	src := otp.NewCryptoNonces(3)
	a, b := src.Next(), src.Next()
	if a&0xff != 3 || b&0xff != 3 {
		t.Fatal("owner tag missing")
	}
	if a == b {
		t.Fatal("crypto nonces collided immediately")
	}
}

func TestNewKey(t *testing.T) {
	t.Parallel()
	k1, err := otp.NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	k2, err := otp.NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	if k1 == k2 {
		t.Fatal("two fresh keys are identical")
	}
}
