// Package shard provides the concurrent name-to-object map underlying the
// multi-object store: a power-of-two array of independently locked buckets
// with lazy, exactly-once object creation. Shard count is fixed at
// construction, so lookups never take a global lock and sweeps (audits,
// metrics) can walk one shard at a time, bounding how much of the map any
// maintenance pass pins at once.
package shard

import (
	"fmt"
	"sync"
)

// DefaultShards is the shard count selected when NewMap is given 0. It is
// sized for a few dozen cores hammering disjoint names: large enough that
// bucket collisions are rare, small enough that a per-shard sweep touches a
// useful fraction of the map.
const DefaultShards = 64

// MaxShards bounds the shard count (1 Mi buckets is far beyond any sensible
// configuration and keeps the power-of-two rounding overflow-free).
const MaxShards = 1 << 20

// Map is a sharded map from object names to values of type T. All methods
// are safe for concurrent use. The zero value is not usable; construct with
// NewMap.
type Map[T any] struct {
	mask    uint64
	buckets []bucket[T]
}

type bucket[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

// NewMap returns a map with the given shard count rounded up to a power of
// two. A count of 0 selects DefaultShards.
func NewMap[T any](shards int) (*Map[T], error) {
	if shards == 0 {
		shards = DefaultShards
	}
	if shards < 0 || shards > MaxShards {
		return nil, fmt.Errorf("shard: shard count must be in [1, %d], got %d", MaxShards, shards)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &Map[T]{mask: uint64(n - 1), buckets: make([]bucket[T], n)}
	for i := range m.buckets {
		m.buckets[i].m = make(map[string]T)
	}
	return m, nil
}

// Shards returns the shard count (a power of two).
func (m *Map[T]) Shards() int { return len(m.buckets) }

// ShardOf returns the index of the shard holding name.
func (m *Map[T]) ShardOf(name string) int { return int(fnv1a(name) & m.mask) }

// Hash exposes the map's name hash (64-bit FNV-1a) for layers that must
// stripe by object name the same way — persist's WAL append buffers use it
// so there is exactly one hash to keep in sync.
func Hash(name string) uint64 { return fnv1a(name) }

// HashBytes is Hash over a byte slice, for callers that hold an object name
// as bytes inside a larger frame and must not allocate a string to route it
// (the server's shard dispatcher). HashBytes(b) == Hash(string(b)) always.
func HashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// fnv1a is the 64-bit FNV-1a hash; inlined to keep Get allocation-free
// (hash/fnv would force the string through an io.Writer).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Get returns the value stored under name, if any.
func (m *Map[T]) Get(name string) (T, bool) {
	b := &m.buckets[m.ShardOf(name)]
	b.mu.RLock()
	v, ok := b.m[name]
	b.mu.RUnlock()
	return v, ok
}

// GetOrCreate returns the value stored under name, creating it with create
// if absent. Exactly one concurrent caller runs create per name; the others
// observe its result. created reports whether this call ran create. If
// create fails nothing is stored and the error is returned.
//
// create runs while the shard is locked: it must be quick and must not touch
// this Map.
func (m *Map[T]) GetOrCreate(name string, create func() (T, error)) (v T, created bool, err error) {
	b := &m.buckets[m.ShardOf(name)]
	b.mu.RLock()
	v, ok := b.m[name]
	b.mu.RUnlock()
	if ok {
		return v, false, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if v, ok = b.m[name]; ok {
		return v, false, nil
	}
	v, err = create()
	if err != nil {
		var zero T
		return zero, false, err
	}
	b.m[name] = v
	return v, true, nil
}

// Len returns the total number of stored entries.
func (m *Map[T]) Len() int {
	n := 0
	for i := range m.buckets {
		b := &m.buckets[i]
		b.mu.RLock()
		n += len(b.m)
		b.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false, shard by shard, in
// unspecified order within a shard; entries added or removed concurrently
// may or may not be visited. f runs without any shard lock held, so it may
// call back into the Map.
func (m *Map[T]) Range(f func(name string, v T) bool) {
	for i := range m.buckets {
		if !m.RangeShard(i, f) {
			return
		}
	}
}

// RangeShard calls f for every entry of shard i (in unspecified order — a
// sweep that needs ordering sorts its own output) and reports whether the
// sweep ran to completion (false if f stopped it). Like Range, f runs
// without the shard lock held: the shard's entries are snapshotted first,
// so f observes the membership as of the snapshot.
func (m *Map[T]) RangeShard(i int, f func(name string, v T) bool) bool {
	b := &m.buckets[i]
	b.mu.RLock()
	names := make([]string, 0, len(b.m))
	vals := make([]T, 0, len(b.m))
	for name, v := range b.m {
		names = append(names, name)
		vals = append(vals, v)
	}
	b.mu.RUnlock()
	for k, name := range names {
		if !f(name, vals[k]) {
			return false
		}
	}
	return true
}
