package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewMapRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		m, err := NewMap[int](c.in)
		if err != nil {
			t.Fatalf("NewMap(%d): %v", c.in, err)
		}
		if m.Shards() != c.want {
			t.Errorf("NewMap(%d).Shards() = %d, want %d", c.in, m.Shards(), c.want)
		}
	}
	if _, err := NewMap[int](-1); err == nil {
		t.Error("NewMap(-1) should fail")
	}
	if _, err := NewMap[int](MaxShards + 1); err == nil {
		t.Error("NewMap(MaxShards+1) should fail")
	}
}

func TestGetOrCreateExactlyOnce(t *testing.T) {
	m, _ := NewMap[int](8)
	var creations atomic.Int64
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("obj-%d", i)
				v, _, err := m.GetOrCreate(name, func() (int, error) {
					creations.Add(1)
					return i * 10, nil
				})
				if err != nil {
					t.Errorf("GetOrCreate(%s): %v", name, err)
					return
				}
				if v != i*10 {
					t.Errorf("GetOrCreate(%s) = %d, want %d", name, v, i*10)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := creations.Load(); got != 100 {
		t.Errorf("create ran %d times, want 100", got)
	}
	if m.Len() != 100 {
		t.Errorf("Len() = %d, want 100", m.Len())
	}
}

func TestGetOrCreateError(t *testing.T) {
	m, _ := NewMap[int](1)
	wantErr := fmt.Errorf("boom")
	_, _, err := m.GetOrCreate("x", func() (int, error) { return 0, wantErr })
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if _, ok := m.Get("x"); ok {
		t.Error("failed creation must not store an entry")
	}
	// A later create may succeed.
	v, created, err := m.GetOrCreate("x", func() (int, error) { return 7, nil })
	if err != nil || !created || v != 7 {
		t.Fatalf("retry = (%d, %v, %v), want (7, true, nil)", v, created, err)
	}
}

func TestRangeVisitsEverything(t *testing.T) {
	m, _ := NewMap[string](4)
	want := map[string]string{}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("n%02d", i)
		want[name] = name + "!"
		m.GetOrCreate(name, func() (string, error) { return name + "!", nil })
	}
	got := map[string]string{}
	m.Range(func(name, v string) bool {
		got[name] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range saw %s=%q, want %q", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	m, _ := NewMap[int](2)
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("k%d", i)
		m.GetOrCreate(name, func() (int, error) { return i, nil })
	}
	seen := 0
	m.Range(func(string, int) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early-stopped Range visited %d entries, want 3", seen)
	}
}

func TestRangeShardPartition(t *testing.T) {
	m, _ := NewMap[int](8)
	const n = 200
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("object-%03d", i)
		m.GetOrCreate(name, func() (int, error) { return i, nil })
	}
	// Every name lands in exactly one shard's sweep, and that shard is
	// ShardOf(name).
	total := 0
	for s := 0; s < m.Shards(); s++ {
		m.RangeShard(s, func(name string, _ int) bool {
			total++
			if got := m.ShardOf(name); got != s {
				t.Errorf("name %s swept in shard %d, ShardOf says %d", name, s, got)
			}
			return true
		})
	}
	if total != n {
		t.Errorf("per-shard sweeps visited %d entries, want %d", total, n)
	}
}

func TestRangeCallbackMayReenter(t *testing.T) {
	m, _ := NewMap[int](2)
	m.GetOrCreate("a", func() (int, error) { return 1, nil })
	m.GetOrCreate("b", func() (int, error) { return 2, nil })
	// f holds no shard lock, so calling back into the map must not deadlock.
	m.Range(func(name string, v int) bool {
		if got, ok := m.Get(name); !ok || got != v {
			t.Errorf("reentrant Get(%s) = (%d, %v), want (%d, true)", name, got, ok, v)
		}
		return true
	})
}
