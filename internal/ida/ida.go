// Package ida implements Rabin's information dispersal algorithm over
// GF(2^8): a value is encoded into n shares such that any k reconstruct it
// and fewer than k reveal nothing about missing positions beyond length. The
// replicated auditable register baseline (internal/replicated) disperses
// register values across servers with it, following Cogo & Bessani: a reader
// must gather k shares — and therefore be logged by k servers — to learn the
// value.
//
// Encoding streams row-major: the value is de-interleaved once into k
// contiguous stripes (stripe j holds the bytes at positions ≡ j mod k), and
// each share row is then accumulated with whole-stripe gf256.MulAdd kernels —
// one table lookup and one XOR per byte — instead of a per-column
// matrix-vector product. Decoding caches the inverted k×k submatrix per
// share-index set, so steady-state reconstruction from the same quorum pays
// the Gauss-Jordan elimination once.
package ida

import (
	"fmt"
	"sort"
	"sync"

	"auditreg/internal/gf256"
)

// Coder encodes values into n shares with reconstruction threshold k, using
// a Vandermonde matrix over GF(2^8) (rows x_i = i+1, columns x_i^j): every
// k×k submatrix is invertible because the x_i are distinct.
//
// Construct with New. Safe for concurrent use.
type Coder struct {
	f      *gf256.Field
	n, k   int
	matrix [][]byte // n rows × k columns

	mu  sync.Mutex
	inv map[string][][]byte // inverted submatrix per k-share index set
}

// MaxShares bounds n: Vandermonde rows need distinct nonzero points in
// GF(2^8).
const MaxShares = 255

// maxCachedInverses bounds the decode cache. Real deployments reconstruct
// from a handful of recurring quorums; if a workload somehow cycles through
// more index sets than this, the cache resets rather than growing without
// bound.
const maxCachedInverses = 512

// New returns a coder producing n shares with threshold k.
func New(n, k int) (*Coder, error) {
	if k < 1 || n < k || n > MaxShares {
		return nil, fmt.Errorf("ida: need 1 <= k <= n <= %d, got n=%d k=%d", MaxShares, n, k)
	}
	f := gf256.New()
	matrix := make([][]byte, n)
	for i := range matrix {
		row := make([]byte, k)
		x := byte(i + 1)
		for j := 0; j < k; j++ {
			row[j] = f.Pow(x, j)
		}
		matrix[i] = row
	}
	return &Coder{f: f, n: n, k: k, matrix: matrix, inv: make(map[string][][]byte)}, nil
}

// Shares returns n, the number of shares produced.
func (c *Coder) Shares() int { return c.n }

// Threshold returns k, the number of shares needed to reconstruct.
func (c *Coder) Threshold() int { return c.k }

// ShareSize returns the per-share byte size for a value of dataLen bytes.
func (c *Coder) ShareSize(dataLen int) int { return (dataLen + c.k - 1) / c.k }

// Split encodes data into n shares. Data is implicitly zero-padded to a
// multiple of k; Reconstruct needs the original length to strip the padding.
func (c *Coder) Split(data []byte) [][]byte {
	cols := c.ShareSize(len(data))

	// De-interleave into k contiguous stripes (one zeroed slab), so each
	// matrix coefficient applies to a whole contiguous row.
	stripeSlab := make([]byte, c.k*cols)
	stripes := make([][]byte, c.k)
	for j := range stripes {
		stripes[j] = stripeSlab[j*cols : (j+1)*cols]
	}
	// (An index-counter walk, not p%k / p/k per byte: a hardware divide per
	// byte would rival the field arithmetic it feeds.)
	p := 0
	for col := 0; col < cols; col++ {
		for j := 0; j < c.k && p < len(data); j++ {
			stripes[j][col] = data[p]
			p++
		}
	}

	// Accumulate share i = Σ_j matrix[i][j] · stripe j, row-major. The
	// share slab is zeroed by make, so MulAdd accumulates from zero.
	shareSlab := make([]byte, c.n*cols)
	shares := make([][]byte, c.n)
	for i := range shares {
		shares[i] = shareSlab[i*cols : (i+1)*cols]
		c.accumulate(shares[i], stripes, c.matrix[i])
	}
	return shares
}

// accumulate adds Σ_j coeffs[j] · rows[j] into dst, four rows per pass: the
// fused kernels read dst once per pass instead of once per row.
func (c *Coder) accumulate(dst []byte, rows [][]byte, coeffs []byte) {
	j := 0
	for ; j+3 < len(rows); j += 4 {
		c.f.MulAdd4(dst, rows[j], rows[j+1], rows[j+2], rows[j+3],
			coeffs[j], coeffs[j+1], coeffs[j+2], coeffs[j+3])
	}
	if j+1 < len(rows) {
		c.f.MulAdd2(dst, rows[j], rows[j+1], coeffs[j], coeffs[j+1])
		j += 2
	}
	if j < len(rows) {
		c.f.MulAdd(dst, rows[j], coeffs[j])
	}
}

// Reconstruct recovers a value of length dataLen from at least k shares,
// given as a map from share index (0-based) to share bytes.
func (c *Coder) Reconstruct(shares map[int][]byte, dataLen int) ([]byte, error) {
	if len(shares) < c.k {
		return nil, fmt.Errorf("ida: have %d shares, need %d", len(shares), c.k)
	}
	cols := c.ShareSize(dataLen)

	// Pick the k smallest share indices. Deterministic selection (rather
	// than the map's randomized iteration order) keys the inverse cache
	// canonically, so a steady quorum hits it on every call.
	idx := make([]int, 0, len(shares))
	for i := range shares {
		if i < 0 || i >= c.n {
			return nil, fmt.Errorf("ida: share index %d out of range [0, %d)", i, c.n)
		}
		idx = append(idx, i)
	}
	sort.Ints(idx)
	idx = idx[:c.k]
	for _, i := range idx {
		if len(shares[i]) != cols {
			return nil, fmt.Errorf("ida: share %d has %d bytes, want %d", i, len(shares[i]), cols)
		}
	}
	inv, err := c.invertedSubmatrix(idx)
	if err != nil {
		return nil, err
	}

	// Stripe j = Σ_r inv[j][r] · share idx[r], row-major over whole shares,
	// then re-interleave the stripes into the original byte order.
	picked := make([][]byte, c.k)
	for r, i := range idx {
		picked[r] = shares[i]
	}
	stripeSlab := make([]byte, c.k*cols)
	stripes := make([][]byte, c.k)
	for j := range stripes {
		stripes[j] = stripeSlab[j*cols : (j+1)*cols]
		c.accumulate(stripes[j], picked, inv[j])
	}
	out := make([]byte, dataLen)
	p := 0
	for col := 0; col < cols; col++ {
		for j := 0; j < c.k && p < dataLen; j++ {
			out[p] = stripes[j][col]
			p++
		}
	}
	return out, nil
}

// Verify reconstructs a value and cross-checks every provided share against
// it: the reconstructed value is re-encoded and each share compared to its
// recomputed row, returning the (sorted) indices that disagree. Information
// dispersal has no inherent integrity — any k shares decode to SOMETHING —
// so detection rides entirely on redundancy: with more than k shares, a
// corrupted share either disagrees with the value the canonical k decoded
// (it is reported), or it was among the canonical k and skewed the decode,
// making the honest surplus shares disagree instead. Either way bad is
// non-empty whenever any share is corrupt and len(shares) > k; the indices
// say only WHERE disagreement surfaced, not which share lied. With exactly
// k shares there is no redundancy and Verify reports nothing — callers that
// need detection must supply a surplus.
func (c *Coder) Verify(shares map[int][]byte, dataLen int) (data []byte, bad []int, err error) {
	data, err = c.Reconstruct(shares, dataLen)
	if err != nil {
		return nil, nil, err
	}
	expect := c.Split(data)
	for i, s := range shares {
		if !bytesEqual(s, expect[i]) {
			bad = append(bad, i)
		}
	}
	sort.Ints(bad)
	return data, bad, nil
}

// bytesEqual avoids importing bytes for one comparison.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// invertedSubmatrix returns the inverse of the k×k submatrix whose rows are
// the dispersal-matrix rows at idx, memoized per index set. idx must be the
// canonical (sorted) selection: the order permutes the inverse's columns, so
// it is part of the cache contract.
func (c *Coder) invertedSubmatrix(idx []int) ([][]byte, error) {
	key := make([]byte, len(idx))
	for p, i := range idx {
		key[p] = byte(i)
	}
	c.mu.Lock()
	inv, ok := c.inv[string(key)]
	c.mu.Unlock()
	if ok {
		return inv, nil
	}

	sub := make([][]byte, c.k)
	for r, i := range idx {
		sub[r] = c.matrix[i]
	}
	inv, ok = c.f.InvertMatrix(sub)
	if !ok {
		return nil, fmt.Errorf("ida: submatrix not invertible (corrupt share indices?)")
	}
	c.mu.Lock()
	if len(c.inv) >= maxCachedInverses {
		c.inv = make(map[string][][]byte)
	}
	c.inv[string(key)] = inv
	c.mu.Unlock()
	return inv, nil
}
