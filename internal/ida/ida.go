// Package ida implements Rabin's information dispersal algorithm over
// GF(2^8): a value is encoded into n shares such that any k reconstruct it
// and fewer than k reveal nothing about missing positions beyond length. The
// replicated auditable register baseline (internal/replicated) disperses
// register values across servers with it, following Cogo & Bessani: a reader
// must gather k shares — and therefore be logged by k servers — to learn the
// value.
package ida

import (
	"fmt"

	"auditreg/internal/gf256"
)

// Coder encodes values into n shares with reconstruction threshold k, using
// a Vandermonde matrix over GF(2^8) (rows x_i = i+1, columns x_i^j): every
// k×k submatrix is invertible because the x_i are distinct.
//
// Construct with New.
type Coder struct {
	f      *gf256.Field
	n, k   int
	matrix [][]byte // n rows × k columns
}

// MaxShares bounds n: Vandermonde rows need distinct nonzero points in
// GF(2^8).
const MaxShares = 255

// New returns a coder producing n shares with threshold k.
func New(n, k int) (*Coder, error) {
	if k < 1 || n < k || n > MaxShares {
		return nil, fmt.Errorf("ida: need 1 <= k <= n <= %d, got n=%d k=%d", MaxShares, n, k)
	}
	f := gf256.New()
	matrix := make([][]byte, n)
	for i := range matrix {
		row := make([]byte, k)
		x := byte(i + 1)
		for j := 0; j < k; j++ {
			row[j] = f.Pow(x, j)
		}
		matrix[i] = row
	}
	return &Coder{f: f, n: n, k: k, matrix: matrix}, nil
}

// Shares returns n, the number of shares produced.
func (c *Coder) Shares() int { return c.n }

// Threshold returns k, the number of shares needed to reconstruct.
func (c *Coder) Threshold() int { return c.k }

// ShareSize returns the per-share byte size for a value of dataLen bytes.
func (c *Coder) ShareSize(dataLen int) int { return (dataLen + c.k - 1) / c.k }

// Split encodes data into n shares. Data is implicitly zero-padded to a
// multiple of k; Reconstruct needs the original length to strip the padding.
func (c *Coder) Split(data []byte) [][]byte {
	cols := c.ShareSize(len(data))
	padded := make([]byte, cols*c.k)
	copy(padded, data)

	shares := make([][]byte, c.n)
	for i := range shares {
		shares[i] = make([]byte, cols)
	}
	vec := make([]byte, c.k)
	for col := 0; col < cols; col++ {
		for j := 0; j < c.k; j++ {
			vec[j] = padded[col*c.k+j]
		}
		for i := 0; i < c.n; i++ {
			shares[i][col] = c.f.MulVec(c.matrix[i], vec)
		}
	}
	return shares
}

// Reconstruct recovers a value of length dataLen from at least k shares,
// given as a map from share index (0-based) to share bytes.
func (c *Coder) Reconstruct(shares map[int][]byte, dataLen int) ([]byte, error) {
	if len(shares) < c.k {
		return nil, fmt.Errorf("ida: have %d shares, need %d", len(shares), c.k)
	}
	cols := c.ShareSize(dataLen)

	// Pick k shares and build the corresponding submatrix.
	idx := make([]int, 0, c.k)
	for i := range shares {
		if i < 0 || i >= c.n {
			return nil, fmt.Errorf("ida: share index %d out of range [0, %d)", i, c.n)
		}
		if len(shares[i]) != cols {
			return nil, fmt.Errorf("ida: share %d has %d bytes, want %d", i, len(shares[i]), cols)
		}
		idx = append(idx, i)
		if len(idx) == c.k {
			break
		}
	}
	sub := make([][]byte, c.k)
	for r, i := range idx {
		sub[r] = c.matrix[i]
	}
	inv, ok := c.f.InvertMatrix(sub)
	if !ok {
		return nil, fmt.Errorf("ida: submatrix not invertible (corrupt share indices?)")
	}

	out := make([]byte, cols*c.k)
	vec := make([]byte, c.k)
	for col := 0; col < cols; col++ {
		for r, i := range idx {
			vec[r] = shares[i][col]
		}
		for j := 0; j < c.k; j++ {
			out[col*c.k+j] = c.f.MulVec(inv[j], vec)
		}
	}
	return out[:dataLen], nil
}
