package ida_test

import (
	"bytes"
	"fmt"
	"testing"

	"auditreg/internal/ida"
)

// logExpField replicates the pre-overhaul scalar arithmetic (log/exp tables,
// zero tests, per-column MulVec) as the differential reference and benchmark
// baseline for the row-major slab encoder.
type logExpField struct {
	exp [512]byte
	log [256]byte
}

func newLogExpField() *logExpField {
	f := &logExpField{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		f.exp[i] = x
		f.log[x] = byte(i)
		hi := x & 0x80
		x <<= 1
		if hi != 0 {
			x ^= 0x1d
		}
	}
	for i := 255; i < 512; i++ {
		f.exp[i] = f.exp[i-255]
	}
	return f
}

func (f *logExpField) mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

func (f *logExpField) mulVec(row, vec []byte) byte {
	var acc byte
	for i := range row {
		acc ^= f.mul(row[i], vec[i])
	}
	return acc
}

func (f *logExpField) pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return f.exp[(int(f.log[a])*n)%255]
}

// scalarSplit is the pre-overhaul encoder: a per-column matrix-vector
// product, one k-byte gather per output column.
func scalarSplit(f *logExpField, matrix [][]byte, n, k int, data []byte) [][]byte {
	cols := (len(data) + k - 1) / k
	padded := make([]byte, cols*k)
	copy(padded, data)
	shares := make([][]byte, n)
	for i := range shares {
		shares[i] = make([]byte, cols)
	}
	vec := make([]byte, k)
	for col := 0; col < cols; col++ {
		for j := 0; j < k; j++ {
			vec[j] = padded[col*k+j]
		}
		for i := 0; i < n; i++ {
			shares[i][col] = f.mulVec(matrix[i], vec)
		}
	}
	return shares
}

func vandermonde(f *logExpField, n, k int) [][]byte {
	matrix := make([][]byte, n)
	for i := range matrix {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = f.pow(byte(i+1), j)
		}
		matrix[i] = row
	}
	return matrix
}

// TestSplitMatchesScalarReference: the row-major slab encoder emits the exact
// same share bytes as the per-column scalar encoder, so shares written before
// the overhaul reconstruct after it and vice versa.
func TestSplitMatchesScalarReference(t *testing.T) {
	t.Parallel()
	f := newLogExpField()
	for _, tc := range []struct{ n, k, size int }{
		{5, 2, 0}, {5, 2, 1}, {5, 3, 40}, {16, 8, 4096}, {16, 8, 4097},
	} {
		c, err := ida.New(tc.n, tc.k)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", tc.n, tc.k, err)
		}
		data := make([]byte, tc.size)
		for i := range data {
			data[i] = byte(i*7 + 3)
		}
		got := c.Split(data)
		want := scalarSplit(f, vandermonde(f, tc.n, tc.k), tc.n, tc.k, data)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("n=%d k=%d size=%d: share %d diverges from scalar reference",
					tc.n, tc.k, tc.size, i)
			}
		}
	}
}

// TestReconstructRepeatedQuorum: repeated reconstruction from the same (and
// from permuted) share subsets stays correct — exercising the inverse cache
// on hits, misses, and order-permuted keys.
func TestReconstructRepeatedQuorum(t *testing.T) {
	t.Parallel()
	c, err := ida.New(7, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	data := []byte("repeated quorum reconstruction hits the inverse cache")
	shares := c.Split(data)
	for round := 0; round < 10; round++ {
		a, b2, d := round%5, (round%5)+1, (round%5)+2
		subset := map[int][]byte{a: shares[a], b2: shares[b2], d: shares[d]}
		got, err := c.Reconstruct(subset, len(data))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round %d reconstructed %q", round, got)
		}
	}
}

func benchCoder(b *testing.B, n, k int) *ida.Coder {
	b.Helper()
	c, err := ida.New(n, k)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchData(size int) []byte {
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 13)
	}
	return data
}

// BenchmarkSplit: the acceptance configuration n=16, k=8 on 4 KiB values,
// bulk row-major encoder vs the scalar per-column reference.
func BenchmarkSplit(b *testing.B) {
	for _, tc := range []struct{ n, k, size int }{
		{5, 2, 1024}, {16, 8, 4096}, {16, 8, 65536},
	} {
		name := fmt.Sprintf("n=%d/k=%d/size=%d", tc.n, tc.k, tc.size)
		c := benchCoder(b, tc.n, tc.k)
		data := benchData(tc.size)
		b.Run("bulk/"+name, func(b *testing.B) {
			b.SetBytes(int64(tc.size))
			for i := 0; i < b.N; i++ {
				_ = c.Split(data)
			}
		})
		f := newLogExpField()
		matrix := vandermonde(f, tc.n, tc.k)
		b.Run("scalar/"+name, func(b *testing.B) {
			b.SetBytes(int64(tc.size))
			for i := 0; i < b.N; i++ {
				_ = scalarSplit(f, matrix, tc.n, tc.k, data)
			}
		})
	}
}

// BenchmarkVerify prices the verified read path: a Reconstruct plus a full
// re-encode and n share comparisons, from all n shares (the surplus case the
// cluster routes through Verify). Compare against BenchmarkReconstruct at the
// same geometry to see what the integrity check costs.
func BenchmarkVerify(b *testing.B) {
	for _, tc := range []struct{ n, k, size int }{
		{5, 2, 1024}, {5, 3, 8}, {16, 8, 4096},
	} {
		name := fmt.Sprintf("n=%d/k=%d/size=%d", tc.n, tc.k, tc.size)
		c := benchCoder(b, tc.n, tc.k)
		data := benchData(tc.size)
		shares := c.Split(data)
		all := make(map[int][]byte, tc.n)
		for i, s := range shares {
			all[i] = s
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(tc.size))
			for i := 0; i < b.N; i++ {
				_, bad, err := c.Verify(all, len(data))
				if err != nil || len(bad) != 0 {
					b.Fatalf("bad=%v err=%v", bad, err)
				}
			}
		})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	for _, tc := range []struct{ n, k, size int }{
		{5, 2, 1024}, {16, 8, 4096},
	} {
		name := fmt.Sprintf("n=%d/k=%d/size=%d", tc.n, tc.k, tc.size)
		c := benchCoder(b, tc.n, tc.k)
		data := benchData(tc.size)
		shares := c.Split(data)
		subset := make(map[int][]byte, tc.k)
		for i := 0; i < tc.k; i++ {
			subset[i*2%tc.n] = shares[i*2%tc.n]
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(tc.size))
			for i := 0; i < b.N; i++ {
				if _, err := c.Reconstruct(subset, len(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
