package ida

import (
	"bytes"
	"fmt"
	"testing"
)

// clusterGeometries enumerates every (n, f) pair the dispersal cluster
// admits up to n=7: n ≥ 2f+2 so that the threshold k = n−2f keeps any two
// (n−f)-quorums intersecting in ≥ k nodes.
func clusterGeometries(maxN int) [][2]int {
	var out [][2]int
	for n := 2; n <= maxN; n++ {
		for f := 0; 2*f+2 <= n; f++ {
			out = append(out, [2]int{n, f})
		}
	}
	return out
}

// subsets calls fn with every size-r subset of {0, …, n−1}.
func subsets(n, r int, fn func(idx []int)) {
	idx := make([]int, r)
	var rec func(pos, next int)
	rec = func(pos, next int) {
		if pos == r {
			fn(idx)
			return
		}
		for i := next; i <= n-(r-pos); i++ {
			idx[pos] = i
			rec(pos+1, i+1)
		}
	}
	rec(0, 0)
}

// TestClusterGeometriesExhaustive reconstructs from EVERY minimal share
// subset of every admissible (n, f) geometry up to n=7 — each size-k
// subset, with the adversary choosing which n−k shares to withhold. The
// cluster's read path only ever guarantees k surviving shares via quorum
// intersection, and which k survive is up to the crash schedule, so every
// subset must decode: any k×k Vandermonde submatrix being invertible is the
// algebraic fact this pins.
func TestClusterGeometriesExhaustive(t *testing.T) {
	value := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67} // 8 bytes, the cluster's value width
	for _, g := range clusterGeometries(7) {
		n, f := g[0], g[1]
		k := n - 2*f
		t.Run(fmt.Sprintf("n=%d_f=%d_k=%d", n, f, k), func(t *testing.T) {
			c, err := New(n, k)
			if err != nil {
				t.Fatalf("New(%d, %d): %v", n, k, err)
			}
			shares := c.Split(value)
			tried := 0
			subsets(n, k, func(idx []int) {
				tried++
				m := make(map[int][]byte, k)
				for _, i := range idx {
					m[i] = shares[i]
				}
				got, err := c.Reconstruct(m, len(value))
				if err != nil {
					t.Fatalf("Reconstruct from %v: %v", idx, err)
				}
				if !bytes.Equal(got, value) {
					t.Fatalf("Reconstruct from %v = %x, want %x", idx, got, value)
				}
			})
			// Also every quorum-sized subset (n−f shares): what a read
			// actually gathers.
			subsets(n, n-f, func(idx []int) {
				tried++
				m := make(map[int][]byte, len(idx))
				for _, i := range idx {
					m[i] = shares[i]
				}
				got, err := c.Reconstruct(m, len(value))
				if err != nil || !bytes.Equal(got, value) {
					t.Fatalf("quorum Reconstruct from %v = %x, %v", idx, got, err)
				}
			})
			if tried == 0 {
				t.Fatal("no subsets exercised")
			}
			// One below threshold must fail.
			m := make(map[int][]byte, k-1)
			for i := 0; i < k-1; i++ {
				m[i] = shares[i]
			}
			if _, err := c.Reconstruct(m, len(value)); err == nil {
				t.Fatalf("Reconstruct from %d < k shares succeeded", k-1)
			}
		})
	}
}

// TestVerifyIdentificationLimits pins exactly how far Verify's detection and
// identification reach, exhaustively over every admissible (n, f) geometry up
// to n=7, every provided share subset with surplus, and every corrupt subset
// within the surplus budget. Three facts, each a theorem of the Vandermonde
// code rather than an accident of the test vectors:
//
//  1. Detection: with s = len(shares) − k surplus shares, any c ≤ s corrupt
//     shares are detected (bad non-empty). If bad were empty all shares would
//     match the re-encode of the decode d, and the ≥ k honest shares also
//     match Split of the true value v — k matching shares force d = v, so
//     the corrupt shares would have to disagree after all.
//  2. Blind spot (padding-free lengths only): bad never includes the
//     canonical k smallest provided indices — the decode interpolates
//     exactly through them, so a corrupt share hiding there skews d and
//     surfaces as disagreement elsewhere. When k does not divide the value
//     length this is NOT a theorem: a corrupt canonical share skews the
//     decode's discarded padding bytes, Split re-pads with zeros, and the
//     re-encode can disagree at the corrupt canonical index itself.
//  3. Exact identification: when the corrupt set is disjoint from the
//     canonical k, the decode is the true value and bad is exactly the
//     corrupt set. (Callers cannot choose this — it is why the cluster
//     treats bad as "where disagreement surfaced", quarantines suspects,
//     and re-derives the value by consensus rather than trusting d.)
func TestVerifyIdentificationLimits(t *testing.T) {
	for _, g := range clusterGeometries(7) {
		n, f := g[0], g[1]
		k := n - 2*f
		if n == k {
			continue // no surplus at any provided-subset size
		}
		c, err := New(n, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, vlen := range []int{8, 2 * k} {
			value := make([]byte, vlen)
			for i := range value {
				value[i] = byte(i*29 + 13)
			}
			padded := vlen%k != 0
			clean := c.Split(value)
			cases := 0
			// Every provided subset with at least one surplus share…
			for m := k + 1; m <= n; m++ {
				subsets(n, m, func(provided []int) {
					prov := append([]int(nil), provided...)
					canonical := make(map[int]bool, k)
					for _, i := range prov[:k] {
						canonical[i] = true
					}
					surplus := m - k
					// …and every corrupt subset within the surplus budget.
					for corrupt := 1; corrupt <= surplus; corrupt++ {
						subsets(m, corrupt, func(pos []int) {
							cases++
							bad := make(map[int]bool, corrupt)
							shares := make(map[int][]byte, m)
							for _, i := range prov {
								shares[i] = clean[i]
							}
							for _, p := range pos {
								i := prov[p]
								bad[i] = true
								s := append([]byte(nil), clean[i]...)
								s[i%len(s)] ^= byte(0x5A + i) // distinct flip per index
								shares[i] = s
							}
							data, got, err := c.Verify(shares, len(value))
							if err != nil {
								t.Fatalf("n=%d k=%d provided=%v corrupt=%v: %v", n, k, prov, pos, err)
							}
							// (1) c ≤ s corruptions never pass silently.
							if len(got) == 0 {
								t.Fatalf("n=%d k=%d provided=%v corrupt=%v: undetected", n, k, prov, pos)
							}
							// (2) padding-free: the canonical k are never flagged.
							if !padded {
								for _, i := range got {
									if canonical[i] {
										t.Fatalf("n=%d k=%d provided=%v: canonical share %d flagged", n, k, prov, i)
									}
								}
							}
							// (3) corrupt set disjoint from canonical ⇒ exact.
							disjoint := true
							for i := range bad {
								if canonical[i] {
									disjoint = false
								}
							}
							if disjoint {
								if !bytes.Equal(data, value) {
									t.Fatalf("n=%d k=%d provided=%v corrupt=%v: data skewed despite clean canonical set", n, k, prov, pos)
								}
								if len(got) != len(bad) {
									t.Fatalf("n=%d k=%d provided=%v: bad=%v want exactly the corrupt set", n, k, prov, got)
								}
								for _, i := range got {
									if !bad[i] {
										t.Fatalf("n=%d k=%d provided=%v: honest share %d flagged", n, k, prov, i)
									}
								}
							}
						})
					}
				})
			}
			if cases == 0 {
				t.Fatalf("n=%d k=%d: no cases exercised", n, k)
			}
		}
	}
}

// TestVerifyDetectsCorruption flips bytes in single shares across every
// cluster geometry and checks Verify's contract: with a surplus share
// available (len > k) the disagreement always surfaces; with exactly k
// shares it provably cannot.
func TestVerifyDetectsCorruption(t *testing.T) {
	value := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for _, g := range clusterGeometries(7) {
		n, f := g[0], g[1]
		k := n - 2*f
		if n == k {
			continue // no surplus possible; nothing to detect with
		}
		c, err := New(n, k)
		if err != nil {
			t.Fatal(err)
		}
		for corrupt := 0; corrupt < n; corrupt++ {
			shares := c.Split(value)
			shares[corrupt][0] ^= 0x5A
			m := make(map[int][]byte, n)
			for i, s := range shares {
				m[i] = s
			}
			_, bad, err := c.Verify(m, len(value))
			if err != nil {
				t.Fatalf("n=%d k=%d corrupt=%d: Verify: %v", n, k, corrupt, err)
			}
			if len(bad) == 0 {
				t.Fatalf("n=%d k=%d: corruption of share %d went undetected", n, k, corrupt)
			}
		}

		// Clean shares: no false positives, data intact.
		shares := c.Split(value)
		m := make(map[int][]byte, n)
		for i, s := range shares {
			m[i] = s
		}
		data, bad, err := c.Verify(m, len(value))
		if err != nil || len(bad) != 0 {
			t.Fatalf("n=%d k=%d: clean Verify = bad %v, %v", n, k, bad, err)
		}
		if !bytes.Equal(data, value) {
			t.Fatalf("n=%d k=%d: clean Verify data = %x", n, k, data)
		}

		// Exactly k shares: undetectable by construction.
		m = make(map[int][]byte, k)
		for i := 0; i < k; i++ {
			m[i] = shares[i]
		}
		m[0] = append([]byte(nil), m[0]...)
		m[0][0] ^= 0xFF
		if _, bad, err := c.Verify(m, len(value)); err != nil || len(bad) != 0 {
			t.Fatalf("n=%d k=%d: Verify with no surplus = bad %v, %v (expected silent)", n, k, bad, err)
		}
	}
}
