package ida_test

import (
	"bytes"
	"testing"

	"auditreg/internal/ida"
)

// FuzzVerifyCorruption drives the corrupted-share detector across fuzzed
// geometry, payload, and corruption site: any single-byte corruption of any
// share must (1) surface in Verify whenever a surplus share exists, and
// (2) never survive into a reconstruction from the honest shares.
func FuzzVerifyCorruption(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(5), uint8(1), uint16(0), byte(0x5A))
	f.Add([]byte("dispersed"), uint8(7), uint8(2), uint16(3), byte(0x01))
	f.Add([]byte{0xFF}, uint8(4), uint8(1), uint16(9), byte(0x80))
	f.Add([]byte{}, uint8(6), uint8(2), uint16(1), byte(0xAA))

	f.Fuzz(func(t *testing.T, data []byte, nRaw, fRaw uint8, site uint16, xor byte) {
		// Map the raw bytes onto an admissible cluster geometry with a
		// surplus: n in [3, 7], f maximal admissible bound, k = n−2f ≥ 1.
		n := 3 + int(nRaw)%5
		ff := int(fRaw) % (n / 2)
		k := n - 2*ff
		if k < 1 || k >= n {
			return
		}
		if len(data) > 64 {
			data = data[:64]
		}
		if xor == 0 {
			xor = 1 // a zero XOR is no corruption
		}
		c, err := ida.New(n, k)
		if err != nil {
			t.Fatalf("New(%d, %d): %v", n, k, err)
		}
		shares := c.Split(data)
		cols := c.ShareSize(len(data))
		if cols == 0 {
			return // empty payload: shares carry no bytes to corrupt
		}
		corrupt := int(site) % n
		at := (int(site) / n) % cols
		shares[corrupt][at] ^= xor

		all := make(map[int][]byte, n)
		for i, s := range shares {
			all[i] = s
		}
		_, bad, err := c.Verify(all, len(data))
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if len(bad) == 0 {
			t.Fatalf("n=%d k=%d: corruption of share %d byte %d (xor %#x) undetected", n, k, corrupt, at, xor)
		}

		// The honest shares still reconstruct the truth.
		honest := make(map[int][]byte, n-1)
		for i, s := range shares {
			if i != corrupt {
				honest[i] = s
			}
		}
		if len(honest) >= k {
			got, err := c.Reconstruct(honest, len(data))
			if err != nil {
				t.Fatalf("honest Reconstruct: %v", err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("honest Reconstruct = %x, want %x", got, data)
			}
		}
	})
}
