package ida_test

import (
	"bytes"
	mathrand "math/rand/v2"
	"testing"
	"testing/quick"

	"auditreg/internal/ida"
)

func TestNewValidation(t *testing.T) {
	t.Parallel()
	if _, err := ida.New(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ida.New(2, 3); err == nil {
		t.Error("n < k accepted")
	}
	if _, err := ida.New(300, 3); err == nil {
		t.Error("n > 255 accepted")
	}
	c, err := ida.New(5, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Shares() != 5 || c.Threshold() != 2 {
		t.Fatalf("params = (%d, %d)", c.Shares(), c.Threshold())
	}
}

func TestSplitReconstructAllSubsets(t *testing.T) {
	t.Parallel()
	c, err := ida.New(5, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	data := []byte("auditing without leaks despite curiosity")
	shares := c.Split(data)
	if len(shares) != 5 {
		t.Fatalf("got %d shares", len(shares))
	}

	// Every 3-subset of the 5 shares reconstructs.
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			for d := b + 1; d < 5; d++ {
				subset := map[int][]byte{a: shares[a], b: shares[b], d: shares[d]}
				got, err := c.Reconstruct(subset, len(data))
				if err != nil {
					t.Fatalf("subset {%d,%d,%d}: %v", a, b, d, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("subset {%d,%d,%d} reconstructed %q", a, b, d, got)
				}
			}
		}
	}
}

func TestReconstructBelowThreshold(t *testing.T) {
	t.Parallel()
	c, err := ida.New(5, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	shares := c.Split([]byte("secret"))
	if _, err := c.Reconstruct(map[int][]byte{0: shares[0], 1: shares[1]}, 6); err == nil {
		t.Fatal("reconstruction from k-1 shares accepted")
	}
}

func TestReconstructValidation(t *testing.T) {
	t.Parallel()
	c, err := ida.New(4, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	shares := c.Split([]byte("abcd"))
	// Bad index.
	if _, err := c.Reconstruct(map[int][]byte{0: shares[0], 9: shares[1]}, 4); err == nil {
		t.Fatal("out-of-range share index accepted")
	}
	// Wrong length.
	if _, err := c.Reconstruct(map[int][]byte{0: shares[0], 1: shares[1][:1]}, 4); err == nil {
		t.Fatal("truncated share accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(data []byte, seed uint64) bool {
		rng := mathrand.New(mathrand.NewPCG(seed, 3))
		k := 1 + rng.IntN(6)
		n := k + rng.IntN(6)
		c, err := ida.New(n, k)
		if err != nil {
			return false
		}
		shares := c.Split(data)
		// Random k-subset.
		perm := rng.Perm(n)
		subset := make(map[int][]byte, k)
		for _, i := range perm[:k] {
			subset[i] = shares[i]
		}
		got, err := c.Reconstruct(subset, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyValue(t *testing.T) {
	t.Parallel()
	c, err := ida.New(5, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	shares := c.Split(nil)
	got, err := c.Reconstruct(map[int][]byte{1: shares[1], 3: shares[3]}, 0)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("reconstructed %q from empty value", got)
	}
}

func TestShareSize(t *testing.T) {
	t.Parallel()
	c, err := ida.New(7, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cases := map[int]int{0: 0, 1: 1, 3: 1, 4: 2, 9: 3, 10: 4}
	for dataLen, want := range cases {
		if got := c.ShareSize(dataLen); got != want {
			t.Errorf("ShareSize(%d) = %d, want %d", dataLen, got, want)
		}
	}
	// Shares are k times smaller than the data (the space advantage of
	// IDA over full replication).
	data := make([]byte, 300)
	for _, s := range c.Split(data) {
		if len(s) != 100 {
			t.Fatalf("share size %d, want 100", len(s))
		}
	}
}
