// Package baseline implements the comparison points the paper argues
// against, plus simple reference designs:
//
//   - Strawman: the "initial design" of Section 3.1 — reader sets stored in
//     plaintext and inserted with a read-then-compare&swap sequence. It is
//     only lock-free, a reader can learn the current value without ever being
//     audited (the crash-simulating attack), and every reader sees who else
//     read the current value. The attacker experiments (internal/attacker)
//     demonstrate all three defects.
//   - Mutex: a coarse-grained lock-based auditable register — trivially
//     correct and leak-free against read-only attackers, but blocking; the
//     price-of-wait-freedom baseline in benchmarks.
//   - Plain: a non-auditable atomic register; the price-of-auditability
//     baseline.
package baseline

import (
	"fmt"
	"sync/atomic"

	"auditreg/internal/core"
	"auditreg/internal/otp"
	"auditreg/internal/unbounded"
)

// Strawman is the Section 3.1 initial design of an auditable register.
// Tracking state is public: the reader set of the current value sits in
// plaintext next to it.
//
// Construct with NewStrawman.
type Strawman[V comparable] struct {
	m     int
	maskM uint64
	p     atomic.Pointer[strawState[V]]
	vals  *unbounded.Array[V]
	bits  *unbounded.BitTable
}

type strawState[V comparable] struct {
	seq     uint64
	val     V
	readers uint64 // plaintext reader set — the leak
}

// NewStrawman returns a strawman register for m readers holding initial.
func NewStrawman[V comparable](m int, initial V) (*Strawman[V], error) {
	if m < 1 || m > 64 {
		return nil, fmt.Errorf("baseline: reader count m must be in [1, 64], got %d", m)
	}
	s := &Strawman[V]{m: m, maskM: otp.MaskBits(m)}
	vals, err := unbounded.NewArray[V](0)
	if err != nil {
		return nil, err
	}
	bits, err := unbounded.NewBitTable(0)
	if err != nil {
		return nil, err
	}
	s.vals, s.bits = vals, bits
	s.p.Store(&strawState[V]{seq: 0, val: initial})
	return s, nil
}

// Read performs the strawman read for reader j: fetch the state, insert j
// into the plaintext reader set with compare&swap, retry on interference.
// Only lock-free. It returns the value read and — because the set is
// plaintext — the reader set the reader observed, which is exactly the
// information Lemma 7 says a leak-free implementation must hide.
func (s *Strawman[V]) Read(j int) (V, uint64) {
	bit := uint64(1) << uint(j)
	for {
		cur := s.p.Load()
		if cur.readers&bit != 0 {
			return cur.val, cur.readers
		}
		next := &strawState[V]{seq: cur.seq, val: cur.val, readers: cur.readers | bit}
		if s.p.CompareAndSwap(cur, next) {
			return cur.val, cur.readers
		}
	}
}

// Peek is the crash-simulating attack of Section 3.1: the reader runs the
// first step of its read code (the load of R), learns the current value, and
// stops. No shared state changes, so no audit can ever report the access.
func (s *Strawman[V]) Peek() V {
	return s.p.Load().val
}

// Write installs a new value, copying the outgoing value and its plaintext
// reader set for auditors.
func (s *Strawman[V]) Write(v V) error {
	for {
		cur := s.p.Load()
		if err := s.vals.Store(cur.seq, cur.val); err != nil {
			return err
		}
		if err := s.bits.Or(cur.seq, cur.readers&s.maskM); err != nil {
			return err
		}
		next := &strawState[V]{seq: cur.seq + 1, val: v}
		if s.p.CompareAndSwap(cur, next) {
			return nil
		}
	}
}

// Audit reports the (reader, value) pairs recorded so far. Unlike
// Algorithm 1 it misses every Peek and every read that stopped before its
// compare&swap landed.
func (s *Strawman[V]) Audit() (core.Report[V], error) {
	cur := s.p.Load()
	var entries []core.Entry[V]
	for q := uint64(0); q < cur.seq; q++ {
		val, ok := s.vals.Load(q)
		if !ok {
			return core.Report[V]{}, fmt.Errorf("baseline: uninitialized history slot %d", q)
		}
		entries = appendRow(entries, s.bits.Row(q)&s.maskM, val)
	}
	entries = appendRow(entries, cur.readers&s.maskM, cur.val)
	return core.NewReport(entries...), nil
}

func appendRow[V comparable](entries []core.Entry[V], row uint64, val V) []core.Entry[V] {
	for j := 0; row != 0; j++ {
		if row&1 != 0 {
			entries = append(entries, core.Entry[V]{Reader: j, Value: val})
		}
		row >>= 1
	}
	return entries
}
