package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"auditreg/internal/core"
)

// Mutex is a coarse-grained lock-based auditable register: one lock guards
// the value and the audit log. Semantically equivalent to Algorithm 1 for
// processes that never stop inside an operation, but blocking (neither
// lock-free nor wait-free) — the classic simple design Algorithm 1 is
// measured against.
//
// Construct with NewMutex.
type Mutex[V comparable] struct {
	mu    sync.Mutex
	m     int
	cur   V
	seen  map[core.Entry[V]]struct{}
	pairs []core.Entry[V]
}

// NewMutex returns a lock-based auditable register for m readers.
func NewMutex[V comparable](m int, initial V) (*Mutex[V], error) {
	if m < 1 || m > 64 {
		return nil, fmt.Errorf("baseline: reader count m must be in [1, 64], got %d", m)
	}
	return &Mutex[V]{m: m, cur: initial, seen: make(map[core.Entry[V]]struct{})}, nil
}

// Read returns the current value, recording the access of reader j.
func (r *Mutex[V]) Read(j int) V {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := core.Entry[V]{Reader: j, Value: r.cur}
	if _, dup := r.seen[e]; !dup {
		r.seen[e] = struct{}{}
		r.pairs = append(r.pairs, e)
	}
	return r.cur
}

// Write sets the current value.
func (r *Mutex[V]) Write(v V) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cur = v
}

// Audit returns the set of recorded accesses.
func (r *Mutex[V]) Audit() core.Report[V] {
	r.mu.Lock()
	defer r.mu.Unlock()
	return core.NewReport(r.pairs...)
}

// Plain is a non-auditable linearizable register: the floor for read/write
// cost against which the price of auditability is measured.
//
// Construct with NewPlain.
type Plain[V any] struct {
	p atomic.Pointer[V]
}

// NewPlain returns a plain register holding initial.
func NewPlain[V any](initial V) *Plain[V] {
	r := &Plain[V]{}
	r.p.Store(&initial)
	return r
}

// Read returns the current value.
func (r *Plain[V]) Read() V { return *r.p.Load() }

// Write sets the current value.
func (r *Plain[V]) Write(v V) { r.p.Store(&v) }
