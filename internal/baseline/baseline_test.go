package baseline_test

import (
	"sync"
	"testing"

	"auditreg/internal/baseline"
)

func TestStrawmanValidation(t *testing.T) {
	t.Parallel()
	if _, err := baseline.NewStrawman[int](0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := baseline.NewStrawman[int](65, 0); err == nil {
		t.Error("m=65 accepted")
	}
}

func TestStrawmanReadWriteAudit(t *testing.T) {
	t.Parallel()
	s, err := baseline.NewStrawman(4, uint64(1))
	if err != nil {
		t.Fatalf("NewStrawman: %v", err)
	}
	v, _ := s.Read(2)
	if v != 1 {
		t.Fatalf("read = %d", v)
	}
	if err := s.Write(5); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, _ = s.Read(3)
	if v != 5 {
		t.Fatalf("read = %d", v)
	}
	rep, err := s.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Contains(2, 1) || !rep.Contains(3, 5) {
		t.Fatalf("audit = %v", rep)
	}
}

// TestStrawmanLeaksReaderSet documents the defect: a reader observes other
// readers' identities in plaintext.
func TestStrawmanLeaksReaderSet(t *testing.T) {
	t.Parallel()
	s, err := baseline.NewStrawman(4, uint64(9))
	if err != nil {
		t.Fatalf("NewStrawman: %v", err)
	}
	s.Read(1)
	s.Read(3)
	_, observed := s.Read(0)
	if observed&(1<<1) == 0 || observed&(1<<3) == 0 {
		t.Fatalf("strawman unexpectedly hid readers: bits %#x", observed)
	}
}

// TestStrawmanPeekInvisible documents the crash-simulating defect: Peek
// learns the value but no audit ever reports it.
func TestStrawmanPeekInvisible(t *testing.T) {
	t.Parallel()
	s, err := baseline.NewStrawman(2, uint64(33))
	if err != nil {
		t.Fatalf("NewStrawman: %v", err)
	}
	if got := s.Peek(); got != 33 {
		t.Fatalf("peek = %d", got)
	}
	rep, err := s.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if rep.Len() != 0 {
		t.Fatalf("audit after peek-only = %v, want empty", rep)
	}
}

func TestStrawmanConcurrent(t *testing.T) {
	t.Parallel()
	s, err := baseline.NewStrawman(8, uint64(0))
	if err != nil {
		t.Fatalf("NewStrawman: %v", err)
	}
	var wg sync.WaitGroup
	for j := 0; j < 8; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Read(j)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 200; i++ {
			if err := s.Write(uint64(i)); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if _, err := s.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestMutexRegister(t *testing.T) {
	t.Parallel()
	if _, err := baseline.NewMutex[int](0, 0); err == nil {
		t.Error("m=0 accepted")
	}
	r, err := baseline.NewMutex(2, uint64(7))
	if err != nil {
		t.Fatalf("NewMutex: %v", err)
	}
	if got := r.Read(0); got != 7 {
		t.Fatalf("read = %d", got)
	}
	r.Write(8)
	if got := r.Read(1); got != 8 {
		t.Fatalf("read = %d", got)
	}
	rep := r.Audit()
	if !rep.Contains(0, 7) || !rep.Contains(1, 8) || rep.Len() != 2 {
		t.Fatalf("audit = %v", rep)
	}
}

func TestMutexConcurrent(t *testing.T) {
	t.Parallel()
	r, err := baseline.NewMutex(4, uint64(0))
	if err != nil {
		t.Fatalf("NewMutex: %v", err)
	}
	var wg sync.WaitGroup
	for j := 0; j < 4; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Read(j)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			r.Write(uint64(i))
		}
	}()
	wg.Wait()
	r.Audit()
}

func TestPlainRegister(t *testing.T) {
	t.Parallel()
	r := baseline.NewPlain(uint64(3))
	if got := r.Read(); got != 3 {
		t.Fatalf("read = %d", got)
	}
	r.Write(4)
	if got := r.Read(); got != 4 {
		t.Fatalf("read = %d", got)
	}
}
