// Package gf256 implements arithmetic over the finite field GF(2^8) with the
// AES-style reduction polynomial x^8+x^4+x^3+x^2+1 (0x11d generator tables).
// It is the algebra under the information-dispersal scheme (internal/ida)
// used by the replicated auditable-register baseline of Cogo & Bessani,
// reproduced in internal/replicated.
package gf256

// Field provides GF(2^8) arithmetic via log/exp tables, plus a full product
// table feeding the bulk kernels of mul.go.
// Construct with New; the zero value is not usable.
type Field struct {
	exp [512]byte // doubled to skip the mod 255 in Mul
	log [256]byte
	mul [256][256]byte // mul[a][b] = a*b; rows feed MulAdd/MulSlice
}

// New builds the field tables. The polynomial 0x11d is primitive with root
// α = 2, so successive powers of 2 enumerate the whole multiplicative group.
func New() *Field {
	f := &Field{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		f.exp[i] = x
		f.log[x] = byte(i)
		hi := x & 0x80
		x <<= 1
		if hi != 0 {
			x ^= 0x1d
		}
	}
	for i := 255; i < 512; i++ {
		f.exp[i] = f.exp[i-255]
	}
	f.buildMulTable()
	return f
}

// Add returns a+b (XOR in characteristic 2).
func (f *Field) Add(a, b byte) byte { return a ^ b }

// Mul returns a*b.
func (f *Field) Mul(a, b byte) byte { return f.mul[a][b] }

// Inv returns the multiplicative inverse of a; Inv(0) panics, as division by
// zero is a programming error in matrix inversion code.
func (f *Field) Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return f.exp[255-int(f.log[a])]
}

// Div returns a/b; Div(_, 0) panics.
func (f *Field) Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+255-int(f.log[b])]
}

// Pow returns a^n.
func (f *Field) Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	idx := (int(f.log[a]) * n) % 255
	if idx < 0 {
		idx += 255
	}
	return f.exp[idx]
}

// MulVec returns the dot product of row and vec.
func (f *Field) MulVec(row, vec []byte) byte {
	var acc byte
	for i := range row {
		acc ^= f.mul[row[i]][vec[i]]
	}
	return acc
}

// InvertMatrix inverts a square matrix in place using Gauss-Jordan
// elimination, returning the inverse. It returns ok=false for singular
// matrices. The input is not modified.
func (f *Field) InvertMatrix(m [][]byte) (inv [][]byte, ok bool) {
	n := len(m)
	// Augment [m | I].
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Normalize pivot row.
		pinv := f.Inv(aug[col][col])
		for c := 0; c < 2*n; c++ {
			aug[col][c] = f.Mul(aug[col][c], pinv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			factor := aug[r][col]
			for c := 0; c < 2*n; c++ {
				aug[r][c] ^= f.Mul(factor, aug[col][c])
			}
		}
	}
	inv = make([][]byte, n)
	for i := range inv {
		inv[i] = aug[i][n:]
	}
	return inv, true
}
