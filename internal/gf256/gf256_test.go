package gf256_test

import (
	"testing"
	"testing/quick"

	"auditreg/internal/gf256"
)

func TestFieldAxioms(t *testing.T) {
	t.Parallel()
	f := gf256.New()

	// Identity and zero.
	for a := 0; a < 256; a++ {
		ab := byte(a)
		if f.Mul(ab, 1) != ab {
			t.Fatalf("%d * 1 != %d", a, a)
		}
		if f.Mul(ab, 0) != 0 {
			t.Fatalf("%d * 0 != 0", a)
		}
		if f.Add(ab, ab) != 0 {
			t.Fatalf("%d + %d != 0 in characteristic 2", a, a)
		}
	}

	// Inverses.
	for a := 1; a < 256; a++ {
		ab := byte(a)
		if f.Mul(ab, f.Inv(ab)) != 1 {
			t.Fatalf("%d * inv(%d) != 1", a, a)
		}
	}
}

func TestFieldQuickProperties(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	// Commutativity, associativity, distributivity.
	if err := quick.Check(func(a, b, c byte) bool {
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			return false
		}
		return f.Mul(a, f.Add(b, c)) == f.Add(f.Mul(a, b), f.Mul(a, c))
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Division inverts multiplication.
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return f.Div(f.Mul(a, b), b) == a
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	for a := 0; a < 256; a++ {
		if f.Pow(byte(a), 0) != 1 {
			t.Fatalf("%d^0 != 1", a)
		}
	}
	if f.Pow(0, 5) != 0 {
		t.Fatal("0^5 != 0")
	}
	// a^3 == a*a*a for all a.
	for a := 0; a < 256; a++ {
		ab := byte(a)
		want := f.Mul(ab, f.Mul(ab, ab))
		if got := f.Pow(ab, 3); got != want {
			t.Fatalf("%d^3 = %d, want %d", a, got, want)
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	f.Div(3, 0)
}

func TestInvertMatrixRoundTrip(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	// A Vandermonde 3x3 (always invertible).
	m := [][]byte{
		{1, 1, 1},
		{1, 2, f.Mul(2, 2)},
		{1, 3, f.Mul(3, 3)},
	}
	inv, ok := f.InvertMatrix(m)
	if !ok {
		t.Fatal("Vandermonde matrix reported singular")
	}
	// m * inv == identity.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var acc byte
			for k := 0; k < 3; k++ {
				acc ^= f.Mul(m[i][k], inv[k][j])
			}
			want := byte(0)
			if i == j {
				want = 1
			}
			if acc != want {
				t.Fatalf("(m*inv)[%d][%d] = %d, want %d", i, j, acc, want)
			}
		}
	}
}

func TestInvertSingularMatrix(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	m := [][]byte{
		{1, 2},
		{1, 2}, // duplicate row
	}
	if _, ok := f.InvertMatrix(m); ok {
		t.Fatal("singular matrix inverted")
	}
}

func TestMulVec(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	row := []byte{1, 2, 3}
	vec := []byte{4, 5, 6}
	want := f.Add(f.Add(f.Mul(1, 4), f.Mul(2, 5)), f.Mul(3, 6))
	if got := f.MulVec(row, vec); got != want {
		t.Fatalf("MulVec = %d, want %d", got, want)
	}
}
