package gf256_test

import (
	"bytes"
	mathrand "math/rand/v2"
	"testing"

	"auditreg/internal/gf256"
)

// refMul is an independent scalar reference: carry-less (Russian peasant)
// multiplication with the 0x11d reduction, sharing no tables with the
// package, so a systematically wrong product table cannot hide.
func refMul(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1d
		}
		b >>= 1
	}
	return p
}

// scalarMulAdd is the reference the bulk kernels are checked against: the
// naive per-byte loop over the independent scalar multiply.
func scalarMulAdd(f *gf256.Field, dst, src []byte, c byte) {
	for i := range src {
		dst[i] ^= refMul(c, src[i])
	}
}

// TestMulAddDifferential: MulAdd agrees with the scalar loop for every
// coefficient, across lengths chosen to hit the word-wide XOR fast path, its
// byte tail, and the empty slice.
func TestMulAddDifferential(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	rng := mathrand.New(mathrand.NewPCG(7, 11))
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 100, 1024} {
		src := make([]byte, n)
		init := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Uint64())
			init[i] = byte(rng.Uint64())
		}
		for c := 0; c < 256; c++ {
			want := append([]byte(nil), init...)
			scalarMulAdd(f, want, src, byte(c))
			got := append([]byte(nil), init...)
			f.MulAdd(got, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAdd(c=%d, n=%d) diverges from scalar reference", c, n)
			}
		}
	}
}

// TestMulAdd2Differential: the fused two-source kernel agrees with two
// scalar accumulations for coefficient pairs covering 0, 1, and general
// values on both sides.
func TestMulAdd2Differential(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	rng := mathrand.New(mathrand.NewPCG(19, 23))
	coeffs := []byte{0, 1, 2, 0x1d, 0x57, 0xff}
	for _, n := range []int{0, 1, 9, 64, 1024} {
		src1 := make([]byte, n)
		src2 := make([]byte, n)
		init := make([]byte, n)
		for i := range src1 {
			src1[i] = byte(rng.Uint64())
			src2[i] = byte(rng.Uint64())
			init[i] = byte(rng.Uint64())
		}
		for _, c1 := range coeffs {
			for _, c2 := range coeffs {
				want := append([]byte(nil), init...)
				scalarMulAdd(f, want, src1, c1)
				scalarMulAdd(f, want, src2, c2)
				got := append([]byte(nil), init...)
				f.MulAdd2(got, src1, src2, c1, c2)
				if !bytes.Equal(got, want) {
					t.Fatalf("MulAdd2(c1=%d, c2=%d, n=%d) diverges", c1, c2, n)
				}
			}
		}
	}
}

// TestMulAdd4Differential: the four-source kernel agrees with four scalar
// accumulations across random coefficient quadruples plus the all-zero and
// all-one corners.
func TestMulAdd4Differential(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	rng := mathrand.New(mathrand.NewPCG(29, 31))
	quads := [][4]byte{{0, 0, 0, 0}, {1, 1, 1, 1}, {0, 1, 2, 3}}
	for i := 0; i < 32; i++ {
		quads = append(quads, [4]byte{byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64()), byte(rng.Uint64())})
	}
	for _, n := range []int{0, 1, 9, 64, 1024} {
		srcs := make([][]byte, 4)
		for s := range srcs {
			srcs[s] = make([]byte, n)
			for i := range srcs[s] {
				srcs[s][i] = byte(rng.Uint64())
			}
		}
		init := make([]byte, n)
		for i := range init {
			init[i] = byte(rng.Uint64())
		}
		for _, q := range quads {
			want := append([]byte(nil), init...)
			for s := range srcs {
				scalarMulAdd(f, want, srcs[s], q[s])
			}
			got := append([]byte(nil), init...)
			f.MulAdd4(got, srcs[0], srcs[1], srcs[2], srcs[3], q[0], q[1], q[2], q[3])
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAdd4(c=%v, n=%d) diverges", q, n)
			}
		}
	}
}

// TestMulSliceDifferential: MulSlice agrees with the scalar product for every
// coefficient, including in-place (dst == src).
func TestMulSliceDifferential(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	rng := mathrand.New(mathrand.NewPCG(13, 17))
	for _, n := range []int{0, 1, 9, 64, 1024} {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Uint64())
		}
		for c := 0; c < 256; c++ {
			want := make([]byte, n)
			for i := range src {
				want[i] = refMul(byte(c), src[i])
			}
			got := make([]byte, n)
			f.MulSlice(got, src, byte(c))
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice(c=%d, n=%d) diverges from scalar product", c, n)
			}
			inPlace := append([]byte(nil), src...)
			f.MulSlice(inPlace, inPlace, byte(c))
			if !bytes.Equal(inPlace, want) {
				t.Fatalf("in-place MulSlice(c=%d, n=%d) diverges", c, n)
			}
		}
	}
}

// TestRowMatchesMul: the precomputed rows are exactly the multiplication
// table.
func TestRowMatchesMul(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	for c := 0; c < 256; c++ {
		row := f.Row(byte(c))
		for x := 0; x < 256; x++ {
			if row[x] != refMul(byte(c), byte(x)) {
				t.Fatalf("Row(%d)[%d] = %d, want %d", c, x, row[x], refMul(byte(c), byte(x)))
			}
		}
	}
}

// TestMulAddLengthMismatchPanics: mismatched lengths are programming errors.
func TestMulAddLengthMismatchPanics(t *testing.T) {
	t.Parallel()
	f := gf256.New()
	defer func() {
		if recover() == nil {
			t.Fatal("MulAdd with mismatched lengths did not panic")
		}
	}()
	f.MulAdd(make([]byte, 4), make([]byte, 5), 2)
}

func BenchmarkMulAdd(b *testing.B) {
	f := gf256.New()
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 31)
	}
	b.Run("bulk", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			f.MulAdd(dst, src, 0x57)
		}
	})
	b.Run("bulk-xor", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			f.MulAdd(dst, src, 1)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		// The pre-overhaul cost model: per-byte log/exp lookups with zero
		// tests, as Mul computed before the product table existed.
		lf := newLogExpField()
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			for j := range src {
				dst[j] ^= lf.mul(0x57, src[j])
			}
		}
	})
}

// logExpField replicates the pre-overhaul scalar multiply (log/exp tables,
// zero tests) as the benchmark baseline.
type logExpField struct {
	exp [512]byte
	log [256]byte
}

func newLogExpField() *logExpField {
	f := &logExpField{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		f.exp[i] = x
		f.log[x] = byte(i)
		hi := x & 0x80
		x <<= 1
		if hi != 0 {
			x ^= 0x1d
		}
	}
	for i := 255; i < 512; i++ {
		f.exp[i] = f.exp[i-255]
	}
	return f
}

func (f *logExpField) mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}
