package gf256

import "encoding/binary"

// Bulk kernels over GF(2^8). The scalar Mul pays a zero test plus two table
// indirections per byte; dispersing a KiB-sized value multiplies every byte by
// a handful of matrix coefficients, so internal/ida streams whole share rows
// through the kernels below instead. Each kernel walks a single precomputed
// 256-byte product row — one L1-resident lookup and one XOR per byte — and the
// coefficients 0 and 1 short-circuit to clears, copies, and word-wide XORs.

// buildMulTable fills the full 256×256 product table from the log/exp tables.
// 64 KiB once per Field; Row hands out 256-byte slices of it.
func (f *Field) buildMulTable() {
	for a := 1; a < 256; a++ {
		row := &f.mul[a]
		la := int(f.log[a])
		for b := 1; b < 256; b++ {
			row[b] = f.exp[la+int(f.log[b])]
		}
	}
}

// Row returns the precomputed product row of c: Row(c)[x] == Mul(c, x).
// The returned array is shared and must not be modified.
func (f *Field) Row(c byte) *[256]byte { return &f.mul[c] }

// MulAdd sets dst[i] ^= c * src[i] for every i — one accumulation step of a
// matrix-vector product over whole rows. dst and src must have the same
// length and must not overlap (dst == src entirely is not meaningful here
// because dst is both read and written).
func (f *Field) MulAdd(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulAdd length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorBytes(dst, src)
		return
	}
	row := &f.mul[c]
	dst = dst[:len(src)] // hoist the bounds check out of the loop
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulAdd2 sets dst[i] ^= c1*src1[i] ^ c2*src2[i] — two accumulation steps
// fused into one pass, halving the loads and stores of dst relative to two
// MulAdd calls. All three slices must have the same length; the sources must
// not overlap dst. Coefficients 0 and 1 are served by the same row lookups
// (row 0 is all zeros, row 1 is the identity permutation), so callers need no
// special-casing.
func (f *Field) MulAdd2(dst, src1, src2 []byte, c1, c2 byte) {
	if len(dst) != len(src1) || len(dst) != len(src2) {
		panic("gf256: MulAdd2 length mismatch")
	}
	row1, row2 := &f.mul[c1], &f.mul[c2]
	src2 = src2[:len(src1)] // hoist the bounds checks out of the loop
	dst = dst[:len(src1)]
	for i, s := range src1 {
		dst[i] ^= row1[s] ^ row2[src2[i]]
	}
}

// MulAdd4 is MulAdd2 over four sources: dst[i] ^= Σ c_j*src_j[i] in a single
// pass over dst. Four is where fusing stops paying: more rows exhaust
// registers and the product-table lines competing for L1.
func (f *Field) MulAdd4(dst, src1, src2, src3, src4 []byte, c1, c2, c3, c4 byte) {
	if len(dst) != len(src1) || len(dst) != len(src2) || len(dst) != len(src3) || len(dst) != len(src4) {
		panic("gf256: MulAdd4 length mismatch")
	}
	row1, row2, row3, row4 := &f.mul[c1], &f.mul[c2], &f.mul[c3], &f.mul[c4]
	n := len(src1)
	src2 = src2[:n] // hoist the bounds checks out of the loop
	src3 = src3[:n]
	src4 = src4[:n]
	dst = dst[:n]
	for i, s := range src1 {
		dst[i] ^= row1[s] ^ row2[src2[i]] ^ row3[src3[i]] ^ row4[src4[i]]
	}
}

// MulSlice sets dst[i] = c * src[i] for every i. dst and src must have the
// same length; dst == src is allowed.
func (f *Field) MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &f.mul[c]
	dst = dst[:len(src)] // hoist the bounds check out of the loop
	for i, s := range src {
		dst[i] = row[s]
	}
}

// xorBytes sets dst[i] ^= src[i], eight bytes per step for the bulk of the
// slice. The c == 1 case of MulAdd lands here; for a Vandermonde dispersal
// matrix that is every coefficient of the first column.
func xorBytes(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
