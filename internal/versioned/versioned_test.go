package versioned_test

import (
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/core"
	"auditreg/internal/otp"
	"auditreg/internal/versioned"
)

func TestCASBaseCounter(t *testing.T) {
	t.Parallel()
	b := versioned.NewCAS(versioned.CounterType())
	if o, vn := b.Read(); o != 0 || vn != 0 {
		t.Fatalf("initial = (%d, %d)", o, vn)
	}
	for i := 1; i <= 10; i++ {
		b.Update(struct{}{})
		if o, vn := b.Read(); o != uint64(i) || vn != uint64(i) {
			t.Fatalf("after %d incs: (%d, %d)", i, o, vn)
		}
	}
}

func TestLockedBaseMatchesCAS(t *testing.T) {
	t.Parallel()
	f := func(deltas []uint16) bool {
		cas := versioned.NewCAS(versioned.LamportClockType())
		locked := versioned.NewLocked(versioned.LamportClockType())
		for _, d := range deltas {
			cas.Update(uint64(d))
			locked.Update(uint64(d))
			co, cv := cas.Read()
			lo, lv := locked.Read()
			if co != lo || cv != lv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCASBaseConcurrentCounter(t *testing.T) {
	t.Parallel()
	b := versioned.NewCAS(versioned.CounterType())
	const procs, per = 8, 1000
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Update(struct{}{})
			}
		}()
	}
	wg.Wait()
	if o, vn := b.Read(); o != procs*per || vn != procs*per {
		t.Fatalf("final = (%d, %d), want (%d, %d)", o, vn, procs*per, procs*per)
	}
}

func TestVersionStrictlyIncreases(t *testing.T) {
	t.Parallel()
	b := versioned.NewCAS(versioned.RegisterType(uint64(0)))
	// Updates that do not change the observation still bump the version.
	_, v0 := b.Read()
	b.Update(0)
	_, v1 := b.Read()
	if v1 != v0+1 {
		t.Fatalf("idempotent update did not advance version: %d -> %d", v0, v1)
	}
}

func newAuditableCounter(t *testing.T, m int) *versioned.Auditable[struct{}, uint64] {
	t.Helper()
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(5), m)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	reg, err := versioned.NewAuditable[struct{}, uint64](m, versioned.NewCAS(versioned.CounterType()), pads)
	if err != nil {
		t.Fatalf("NewAuditable: %v", err)
	}
	return reg
}

func TestAuditableCounterSequential(t *testing.T) {
	t.Parallel()
	reg := newAuditableCounter(t, 2)
	u, err := reg.Updater(otp.NewSeededNonces(1, 1))
	if err != nil {
		t.Fatalf("Updater: %v", err)
	}
	rd, err := reg.Reader(0)
	if err != nil {
		t.Fatalf("Reader: %v", err)
	}
	if got := rd.Read(); got != 0 {
		t.Fatalf("initial read = %d", got)
	}
	for i := 1; i <= 5; i++ {
		if err := u.Update(struct{}{}); err != nil {
			t.Fatalf("Update: %v", err)
		}
		if got := rd.Read(); got != uint64(i) {
			t.Fatalf("read = %d, want %d", got, i)
		}
	}
	rep, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	for i := uint64(0); i <= 5; i++ {
		if !rep.Contains(0, i) {
			t.Fatalf("audit %v missing (0, %d)", rep, i)
		}
	}
	if rep.Len() != 6 {
		t.Fatalf("audit has %d entries, want 6: %v", rep.Len(), rep)
	}
}

func TestAuditableValidatesBase(t *testing.T) {
	t.Parallel()
	pads, _ := otp.NewKeyedPads(otp.KeyFromSeed(1), 2)
	if _, err := versioned.NewAuditable[struct{}, uint64](2, nil, pads); err == nil {
		t.Error("nil base accepted")
	}
	// A base that already advanced must be rejected.
	b := versioned.NewCAS(versioned.CounterType())
	b.Update(struct{}{})
	if _, err := versioned.NewAuditable[struct{}, uint64](2, b, pads); err == nil {
		t.Error("non-zero-version base accepted")
	}
}

func TestAuditableReadVersioned(t *testing.T) {
	t.Parallel()
	reg := newAuditableCounter(t, 1)
	u, _ := reg.Updater(otp.NewSeededNonces(2, 2))
	rd, _ := reg.Reader(0)
	u.Update(struct{}{})
	u.Update(struct{}{})
	o, vn := rd.ReadVersioned()
	if o != 2 || vn != 2 {
		t.Fatalf("ReadVersioned = (%d, %d), want (2, 2)", o, vn)
	}
}

// TestAuditableLamportConcurrent: concurrent clock updates; reads are
// monotone; quiescent audit equivalence holds.
func TestAuditableLamportConcurrent(t *testing.T) {
	t.Parallel()
	const (
		m       = 4
		writers = 3
		per     = 100
	)
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(9), m)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	reg, err := versioned.NewAuditable[uint64, uint64](m, versioned.NewCAS(versioned.LamportClockType()), pads)
	if err != nil {
		t.Fatalf("NewAuditable: %v", err)
	}

	var wg sync.WaitGroup
	returned := make([]map[uint64]struct{}, m)
	for j := 0; j < m; j++ {
		j := j
		returned[j] = make(map[uint64]struct{})
		rd, err := reg.Reader(j)
		if err != nil {
			t.Fatalf("Reader: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < per; i++ {
				v := rd.Read()
				if v < last {
					t.Errorf("clock regressed at reader %d: %d -> %d", j, last, v)
					return
				}
				last = v
				returned[j][v] = struct{}{}
			}
		}()
	}
	for i := 0; i < writers; i++ {
		u, err := reg.Updater(otp.NewSeededNonces(uint64(i)+50, uint8(i)))
		if err != nil {
			t.Fatalf("Updater: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := u.Update(uint64(k)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	rep, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	for j := 0; j < m; j++ {
		for v := range returned[j] {
			if !rep.Contains(j, v) {
				t.Fatalf("read (%d, %d) returned but not audited", j, v)
			}
		}
	}
	for _, e := range rep.Entries() {
		if _, ok := returned[e.Reader][e.Value]; !ok {
			t.Fatalf("audited pair (%d, %d) was never read", e.Reader, e.Value)
		}
	}
}

func TestBoundedHistogramType(t *testing.T) {
	t.Parallel()
	ht := versioned.BoundedHistogramType([]string{"get", "put", "del"})
	b := versioned.NewCAS(ht)
	b.Update("get")
	b.Update("get")
	b.Update("put")
	o, vn := b.Read()
	if vn != 3 {
		t.Fatalf("version = %d, want 3", vn)
	}
	if o[0] != 2 || o[1] != 1 || o[2] != 0 {
		t.Fatalf("histogram = %v", o)
	}
}

// TestAuditableHistogram exercises the transform with a composite observation
// type (an array), checking audits carry full views.
func TestAuditableHistogram(t *testing.T) {
	t.Parallel()
	pads, _ := otp.NewKeyedPads(otp.KeyFromSeed(3), 1)
	base := versioned.NewCAS(versioned.BoundedHistogramType([]string{"a", "b"}))
	reg, err := versioned.NewAuditable[string, [8]uint64](1, base, pads)
	if err != nil {
		t.Fatalf("NewAuditable: %v", err)
	}
	u, _ := reg.Updater(otp.NewSeededNonces(1, 1))
	rd, _ := reg.Reader(0)

	u.Update("a")
	u.Update("b")
	got := rd.Read()
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("read = %v", got)
	}
	rep, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	var want [8]uint64
	want[0], want[1] = 1, 1
	if !rep.Contains(0, want) {
		t.Fatalf("audit %v missing histogram view", rep)
	}
}

// TestQuickAuditableRegisterMatchesOracle: the versioned-register transform
// behaves like a plain auditable register in sequential runs.
func TestQuickAuditableRegisterMatchesOracle(t *testing.T) {
	t.Parallel()
	type op struct {
		Kind   uint8
		Reader uint8
		Value  uint16
	}
	f := func(ops []op, seed uint64) bool {
		const m = 3
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), m)
		if err != nil {
			return false
		}
		base := versioned.NewCAS(versioned.RegisterType(uint64(0)))
		reg, err := versioned.NewAuditable[uint64, uint64](m, base, pads)
		if err != nil {
			return false
		}
		u, err := reg.Updater(otp.NewSeededNonces(seed, 1))
		if err != nil {
			return false
		}
		readers := make([]*versioned.AuditableReader[uint64, uint64], m)
		for j := range readers {
			rd, err := reg.Reader(j)
			if err != nil {
				return false
			}
			readers[j] = rd
		}
		auditor := reg.Auditor()

		cur := uint64(0)
		type pair = core.Entry[uint64]
		seen := make(map[pair]struct{})
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				j := int(o.Reader) % m
				got := readers[j].Read()
				if got != cur {
					return false
				}
				seen[pair{Reader: j, Value: got}] = struct{}{}
			case 1:
				if err := u.Update(uint64(o.Value)); err != nil {
					return false
				}
				cur = uint64(o.Value)
			case 2:
				rep, err := auditor.Audit()
				if err != nil {
					return false
				}
				if rep.Len() != len(seen) {
					return false
				}
				for e := range seen {
					if !rep.Contains(e.Reader, e.Value) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
