package versioned

// This file provides ready-made versioned types the paper calls out as
// naturally versioned: counters and logical clocks (Section 5.3), plus a
// versioned register (the degenerate type whose update overwrites the state).

// CounterType is a monotone counter: update increments, read returns the
// count. It is intrinsically versioned — the count is its own version — but
// the generic transform keeps an explicit version for uniformity.
func CounterType() Type[uint64, struct{}, uint64] {
	return Type[uint64, struct{}, uint64]{
		Init:    0,
		Apply:   func(q uint64, _ struct{}) uint64 { return q + 1 },
		Observe: func(q uint64) uint64 { return q },
	}
}

// LamportClockType is a Lamport logical clock: update(observed) advances the
// clock to max(local, observed) + 1; read returns the clock value.
func LamportClockType() Type[uint64, uint64, uint64] {
	return Type[uint64, uint64, uint64]{
		Init: 0,
		Apply: func(q uint64, observed uint64) uint64 {
			if observed > q {
				q = observed
			}
			return q + 1
		},
		Observe: func(q uint64) uint64 { return q },
	}
}

// RegisterType is an overwriting register over values of type V: update
// replaces the state, read returns it. Made auditable through the versioned
// transform it provides the same interface as Algorithm 1 built from
// Algorithm 2's machinery.
func RegisterType[V any](initial V) Type[V, V, V] {
	return Type[V, V, V]{
		Init:    initial,
		Apply:   func(_ V, v V) V { return v },
		Observe: func(q V) V { return q },
	}
}

// BoundedHistogramType is a small fixed-width histogram: update(bucket)
// increments a bucket, read returns the bucket counts as a value (arrays are
// comparable, so the observation can flow through the auditable transform).
func BoundedHistogramType[K comparable](buckets []K) Type[map[K]uint64, K, [8]uint64] {
	index := make(map[K]int, len(buckets))
	for i, b := range buckets {
		if i >= 8 {
			break
		}
		index[b] = i
	}
	return Type[map[K]uint64, K, [8]uint64]{
		Init: make(map[K]uint64, len(buckets)),
		Apply: func(q map[K]uint64, k K) map[K]uint64 {
			next := make(map[K]uint64, len(q)+1)
			for key, v := range q {
				next[key] = v
			}
			next[k]++
			return next
		},
		Observe: func(q map[K]uint64) [8]uint64 {
			var out [8]uint64
			for k, v := range q {
				if i, ok := index[k]; ok {
					out[i] = v
				}
			}
			return out
		},
	}
}
