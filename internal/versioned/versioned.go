// Package versioned implements Section 5.3 of "Auditing without Leaks
// Despite Curiosity": versioned types and the transformation that makes any
// versioned type auditable using an auditable max register.
//
// A type t = (Q, q0, I, O, f, g) has states Q, update inputs I, read outputs
// O; update(v) moves the state from q to g(q, v), read() returns f(q). Its
// versioned variant t' augments the state with a version number that strictly
// increases with every update and is returned by every read.
//
// Given any linearizable, wait-free versioned implementation T of t, the
// auditable variant works exactly like Algorithm 3: an update applies to T,
// reads back (o, vn), and writes the pair to an auditable max register M
// ordered by vn; a read reads M; an audit audits M. The auditable variant
// inherits T's type behaviour and M's auditability (Theorem 13).
package versioned

import (
	"sync"
	"sync/atomic"
)

// Type is the sequential specification tuple (Q, q0, I, O, f, g).
type Type[Q, I, O any] struct {
	// Init is the initial state q0.
	Init Q
	// Apply is the update transition g: I × Q → Q.
	Apply func(Q, I) Q
	// Observe is the read function f: Q → O.
	Observe func(Q) O
}

// Base is a linearizable versioned implementation of some type: updates
// advance the state and its version; reads return the observation together
// with the version number. Implementations must be safe for concurrent use.
type Base[I, O any] interface {
	// Update applies an update with input v.
	Update(v I)
	// Read returns the current observation and version number.
	Read() (O, uint64)
}

// CASBase is a lock-free versioned implementation of a Type: an atomic
// pointer to an immutable (state, version) record, advanced with CAS.
// Construct with NewCAS.
type CASBase[Q, I, O any] struct {
	t Type[Q, I, O]
	p atomic.Pointer[versionedState[Q]]
}

type versionedState[Q any] struct {
	q  Q
	vn uint64
}

var _ Base[int, int] = (*CASBase[int, int, int])(nil)

// NewCAS returns a lock-free versioned implementation of t.
func NewCAS[Q, I, O any](t Type[Q, I, O]) *CASBase[Q, I, O] {
	b := &CASBase[Q, I, O]{t: t}
	b.p.Store(&versionedState[Q]{q: t.Init, vn: 0})
	return b
}

// Update implements Base.
func (b *CASBase[Q, I, O]) Update(v I) {
	for {
		cur := b.p.Load()
		next := &versionedState[Q]{q: b.t.Apply(cur.q, v), vn: cur.vn + 1}
		if b.p.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Read implements Base.
func (b *CASBase[Q, I, O]) Read() (O, uint64) {
	cur := b.p.Load()
	return b.t.Observe(cur.q), cur.vn
}

// LockedBase is the mutex-protected reference versioned implementation.
// Construct with NewLocked.
type LockedBase[Q, I, O any] struct {
	t  Type[Q, I, O]
	mu sync.Mutex
	q  Q
	vn uint64
}

var _ Base[int, int] = (*LockedBase[int, int, int])(nil)

// NewLocked returns a mutex-based versioned implementation of t.
func NewLocked[Q, I, O any](t Type[Q, I, O]) *LockedBase[Q, I, O] {
	return &LockedBase[Q, I, O]{t: t, q: t.Init}
}

// Update implements Base.
func (b *LockedBase[Q, I, O]) Update(v I) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.q = b.t.Apply(b.q, v)
	b.vn++
}

// Read implements Base.
func (b *LockedBase[Q, I, O]) Read() (O, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.t.Observe(b.q), b.vn
}
