package versioned

import (
	"fmt"

	"auditreg/internal/core"
	"auditreg/internal/maxreg"
	"auditreg/internal/otp"
)

// Out is the value type the transform writes to the auditable max register:
// the observation tagged with the version number that totally orders it.
type Out[O comparable] struct {
	// VN is the version number of the state the observation was taken at.
	VN uint64
	// Val is the observation f(q).
	Val O
}

// Auditable is the auditable variant of a versioned type (Theorem 13): it
// provides update, read, and audit, where audits report exactly the
// effective reads, and reads/updates are uncompromised by readers.
//
// Construct with NewAuditable.
type Auditable[I any, O comparable] struct {
	base Base[I, O]
	mreg *maxreg.Auditable[Out[O]]
}

// NewAuditable wraps the versioned implementation base (whose current version
// must be 0) into an auditable object for m readers.
func NewAuditable[I any, O comparable](m int, base Base[I, O], pads otp.PadSource, opts ...maxreg.AuditableOption[Out[O]]) (*Auditable[I, O], error) {
	if base == nil {
		return nil, fmt.Errorf("versioned: base implementation must not be nil")
	}
	o0, vn0 := base.Read()
	if vn0 != 0 {
		return nil, fmt.Errorf("versioned: base must start at version 0, got %d", vn0)
	}
	mreg, err := maxreg.NewAuditable(m, Out[O]{VN: 0, Val: o0},
		func(a, b Out[O]) bool { return a.VN < b.VN },
		pads, opts...)
	if err != nil {
		return nil, err
	}
	return &Auditable[I, O]{base: base, mreg: mreg}, nil
}

// Readers returns the number of readers m.
func (reg *Auditable[I, O]) Readers() int { return reg.mreg.Readers() }

// AuditableUpdater is the per-process update handle. Not safe for concurrent
// use; create one per updating process.
type AuditableUpdater[I any, O comparable] struct {
	reg *Auditable[I, O]
	mw  *maxreg.Writer[Out[O]]
}

// Updater returns an update handle drawing nonces from the given source.
func (reg *Auditable[I, O]) Updater(nonces otp.NonceSource, opts ...core.HandleOption) (*AuditableUpdater[I, O], error) {
	mw, err := reg.mreg.Writer(nonces, opts...)
	if err != nil {
		return nil, err
	}
	return &AuditableUpdater[I, O]{reg: reg, mw: mw}, nil
}

// Update applies an update with input v: advance the versioned base, read
// back the (observation, version) pair, and publish it to M.
func (u *AuditableUpdater[I, O]) Update(v I) error {
	u.reg.base.Update(v)
	o, vn := u.reg.base.Read()
	return u.mw.WriteMax(Out[O]{VN: vn, Val: o})
}

// AuditableReader is the per-process read handle. Not safe for concurrent
// use.
type AuditableReader[I any, O comparable] struct {
	mr *maxreg.Reader[Out[O]]
	j  int
}

// Reader returns the handle for reader j (0 <= j < m).
func (reg *Auditable[I, O]) Reader(j int, opts ...core.HandleOption) (*AuditableReader[I, O], error) {
	mr, err := reg.mreg.Reader(j, opts...)
	if err != nil {
		return nil, err
	}
	return &AuditableReader[I, O]{mr: mr, j: j}, nil
}

// Index returns the reader's index j.
func (rd *AuditableReader[I, O]) Index() int { return rd.j }

// Read returns the observation of the latest published state.
func (rd *AuditableReader[I, O]) Read() O { return rd.mr.Read().Val }

// ReadVersioned returns the observation together with its version number.
func (rd *AuditableReader[I, O]) ReadVersioned() (O, uint64) {
	out := rd.mr.Read()
	return out.Val, out.VN
}

// AuditableAuditor is the per-process audit handle.
type AuditableAuditor[I any, O comparable] struct {
	ma *maxreg.Auditor[Out[O]]
}

// Auditor returns an auditor handle with its own cumulative audit set.
func (reg *Auditable[I, O]) Auditor(opts ...core.HandleOption) *AuditableAuditor[I, O] {
	return &AuditableAuditor[I, O]{ma: reg.mreg.Auditor(opts...)}
}

// Audit reports the set of (reader, observation) pairs such that the reader
// has an effective read of the observation, with version numbers stripped.
func (a *AuditableAuditor[I, O]) Audit() (core.Report[O], error) {
	rep, err := a.ma.Audit()
	if err != nil {
		return core.Report[O]{}, err
	}
	entries := make([]core.Entry[O], 0, rep.Len())
	for _, e := range rep.Entries() {
		entries = append(entries, core.Entry[O]{Reader: e.Reader, Value: e.Value.Val})
	}
	return core.NewReport(entries...), nil
}
