// Package unbounded provides the "infinite" shared arrays of Algorithms 1-3:
// V[0..∞] holding past values and B[0..∞][0..m-1] holding decrypted reader
// sets. Both are realized as lazily allocated two-level radix structures with
// lock-free reads and writes: a fixed directory of atomically installed
// chunks. Capacity is bounded by the directory size (16 Mi entries by
// default), standing in for the paper's truly infinite arrays; every slot
// below the current sequence number is written before R's sequence number
// advances past it, so readers always find initialized slots.
package unbounded

import (
	"fmt"
	"sync/atomic"
)

const (
	chunkBits = 10
	chunkSize = 1 << chunkBits // entries per chunk
)

// DefaultCapacity is the default maximum index plus one.
const DefaultCapacity = 1 << 24

// Array is an unbounded array of T with atomic Store and Load per slot.
// Slots follow the register semantics of the paper's V[s]: concurrent stores
// to the same slot always carry the same value (established by Lemma 18), so
// last-writer-wins is indistinguishable from write-once.
//
// Construct with NewArray; the zero value is not usable.
type Array[T any] struct {
	dir []atomic.Pointer[chunk[T]]
}

type chunk[T any] struct {
	slots [chunkSize]atomic.Pointer[T]
}

// NewArray returns an array addressable on [0, capacity). A capacity of 0
// selects DefaultCapacity.
func NewArray[T any](capacity int) (*Array[T], error) {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if capacity < 0 {
		return nil, fmt.Errorf("unbounded: negative capacity %d", capacity)
	}
	nChunks := (capacity + chunkSize - 1) / chunkSize
	return &Array[T]{dir: make([]atomic.Pointer[chunk[T]], nChunks)}, nil
}

// Capacity returns the number of addressable slots.
func (a *Array[T]) Capacity() uint64 { return uint64(len(a.dir)) * chunkSize }

// Store atomically publishes v at index i. It returns an error only when i is
// beyond the array's capacity.
func (a *Array[T]) Store(i uint64, v T) error {
	c, err := a.chunkFor(i, true)
	if err != nil {
		return err
	}
	c.slots[i&(chunkSize-1)].Store(&v)
	return nil
}

// Load returns the value at index i and whether the slot has been written.
func (a *Array[T]) Load(i uint64) (T, bool) {
	var zero T
	c, err := a.chunkFor(i, false)
	if err != nil || c == nil {
		return zero, false
	}
	p := c.slots[i&(chunkSize-1)].Load()
	if p == nil {
		return zero, false
	}
	return *p, true
}

func (a *Array[T]) chunkFor(i uint64, create bool) (*chunk[T], error) {
	ci := i >> chunkBits
	if ci >= uint64(len(a.dir)) {
		return nil, fmt.Errorf("unbounded: index %d beyond capacity %d", i, a.Capacity())
	}
	if c := a.dir[ci].Load(); c != nil {
		return c, nil
	}
	if !create {
		return nil, nil
	}
	fresh := new(chunk[T])
	if a.dir[ci].CompareAndSwap(nil, fresh) {
		return fresh, nil
	}
	return a.dir[ci].Load(), nil
}
