package unbounded_test

import (
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/unbounded"
)

func TestArrayStoreLoad(t *testing.T) {
	t.Parallel()
	a, err := unbounded.NewArray[string](0)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	if _, ok := a.Load(0); ok {
		t.Fatal("empty slot reported written")
	}
	if err := a.Store(0, "x"); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if v, ok := a.Load(0); !ok || v != "x" {
		t.Fatalf("Load = (%q, %t)", v, ok)
	}
	// Far index in a different chunk.
	if err := a.Store(123456, "y"); err != nil {
		t.Fatalf("Store far: %v", err)
	}
	if v, ok := a.Load(123456); !ok || v != "y" {
		t.Fatalf("Load far = (%q, %t)", v, ok)
	}
	// Neighbours untouched.
	if _, ok := a.Load(123455); ok {
		t.Fatal("neighbour slot reported written")
	}
}

func TestArrayCapacityBound(t *testing.T) {
	t.Parallel()
	a, err := unbounded.NewArray[int](100)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	capSlots := a.Capacity()
	if err := a.Store(capSlots-1, 1); err != nil {
		t.Fatalf("Store at capacity-1: %v", err)
	}
	if err := a.Store(capSlots, 1); err == nil {
		t.Fatal("Store beyond capacity accepted")
	}
	if _, ok := a.Load(capSlots); ok {
		t.Fatal("Load beyond capacity reported written")
	}
}

func TestArrayNegativeCapacity(t *testing.T) {
	t.Parallel()
	if _, err := unbounded.NewArray[int](-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestArrayQuickSparse(t *testing.T) {
	t.Parallel()
	a, err := unbounded.NewArray[uint64](1 << 20)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	written := make(map[uint64]uint64)
	f := func(idx uint32, v uint64) bool {
		i := uint64(idx) % a.Capacity()
		if err := a.Store(i, v); err != nil {
			return false
		}
		written[i] = v
		got, ok := a.Load(i)
		return ok && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	for i, v := range written {
		if got, ok := a.Load(i); !ok || got != v {
			t.Fatalf("slot %d = (%d, %t), want %d", i, got, ok, v)
		}
	}
}

func TestArrayConcurrentDistinctSlots(t *testing.T) {
	t.Parallel()
	a, err := unbounded.NewArray[int](0)
	if err != nil {
		t.Fatalf("NewArray: %v", err)
	}
	const procs, per = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				idx := uint64(p*per + i)
				if err := a.Store(idx, p); err != nil {
					t.Errorf("Store(%d): %v", idx, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for p := 0; p < procs; p++ {
		for i := 0; i < per; i++ {
			if v, ok := a.Load(uint64(p*per + i)); !ok || v != p {
				t.Fatalf("slot %d = (%d, %t), want %d", p*per+i, v, ok, p)
			}
		}
	}
}

func TestBitTableSetRow(t *testing.T) {
	t.Parallel()
	b, err := unbounded.NewBitTable(0)
	if err != nil {
		t.Fatalf("NewBitTable: %v", err)
	}
	if got := b.Row(7); got != 0 {
		t.Fatalf("fresh row = %#x", got)
	}
	if err := b.Set(7, 3); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := b.Set(7, 0); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if got := b.Row(7); got != 0b1001 {
		t.Fatalf("row = %#x, want 0b1001", got)
	}
	// Or merges.
	if err := b.Or(7, 0b0110); err != nil {
		t.Fatalf("Or: %v", err)
	}
	if got := b.Row(7); got != 0b1111 {
		t.Fatalf("row after Or = %#x, want 0b1111", got)
	}
	// Or with zero is a no-op even out of range.
	if err := b.Or(1<<40, 0); err != nil {
		t.Fatalf("Or(.., 0) should be a no-op: %v", err)
	}
}

func TestBitTableValidation(t *testing.T) {
	t.Parallel()
	b, err := unbounded.NewBitTable(10)
	if err != nil {
		t.Fatalf("NewBitTable: %v", err)
	}
	if err := b.Set(0, -1); err == nil {
		t.Error("negative bit accepted")
	}
	if err := b.Set(0, 64); err == nil {
		t.Error("bit 64 accepted")
	}
	if err := b.Set(b.Capacity(), 0); err == nil {
		t.Error("row beyond capacity accepted")
	}
	if _, err := unbounded.NewBitTable(-5); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestBitTableConcurrentOrsMerge(t *testing.T) {
	t.Parallel()
	b, err := unbounded.NewBitTable(0)
	if err != nil {
		t.Fatalf("NewBitTable: %v", err)
	}
	const procs = 32
	var wg sync.WaitGroup
	for j := 0; j < procs; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := b.Set(5, j); err != nil {
				t.Errorf("Set(5, %d): %v", j, err)
			}
		}()
	}
	wg.Wait()
	if got := b.Row(5); got != 1<<procs-1 {
		t.Fatalf("row = %#x, want all %d bits", got, procs)
	}
}

func TestBitTableQuickIdempotentMonotone(t *testing.T) {
	t.Parallel()
	b, err := unbounded.NewBitTable(1 << 16)
	if err != nil {
		t.Fatalf("NewBitTable: %v", err)
	}
	f := func(row uint16, bit uint8) bool {
		j := int(bit) % 64
		before := b.Row(uint64(row))
		if err := b.Set(uint64(row), j); err != nil {
			return false
		}
		after := b.Row(uint64(row))
		// Monotone, contains the new bit, and changes nothing else.
		return after&before == before && after&(1<<j) != 0 && after&^(before|1<<j) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
