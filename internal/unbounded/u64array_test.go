package unbounded_test

import (
	"sync"
	"testing"

	"auditreg/internal/unbounded"
)

func TestU64ArrayStoreLoad(t *testing.T) {
	t.Parallel()
	a, err := unbounded.NewU64Array(0)
	if err != nil {
		t.Fatalf("NewU64Array: %v", err)
	}
	if _, ok := a.Load(0); ok {
		t.Fatal("empty slot reported written")
	}
	// A stored zero must be distinguishable from an empty slot.
	if err := a.Store(0, 0); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if v, ok := a.Load(0); !ok || v != 0 {
		t.Fatalf("Load = (%d, %t), want (0, true)", v, ok)
	}
	if err := a.Store(123456, 77); err != nil {
		t.Fatalf("Store far: %v", err)
	}
	if v, ok := a.Load(123456); !ok || v != 77 {
		t.Fatalf("Load far = (%d, %t)", v, ok)
	}
	if _, ok := a.Load(123455); ok {
		t.Fatal("neighbour slot reported written")
	}
}

func TestU64ArrayCapacityBound(t *testing.T) {
	t.Parallel()
	a, err := unbounded.NewU64Array(100)
	if err != nil {
		t.Fatalf("NewU64Array: %v", err)
	}
	if err := a.Store(a.Capacity(), 1); err == nil {
		t.Fatal("store beyond capacity accepted")
	}
	if _, ok := a.Load(a.Capacity() + 5); ok {
		t.Fatal("load beyond capacity reported written")
	}
	if _, err := unbounded.NewU64Array(-1); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

// TestU64ArrayStoreAllocationFree: after a slot's chunk exists, Store must
// not allocate — this is what makes the uint64 write path of the register
// allocation-free.
func TestU64ArrayStoreAllocationFree(t *testing.T) {
	a, err := unbounded.NewU64Array(0)
	if err != nil {
		t.Fatalf("NewU64Array: %v", err)
	}
	if err := a.Store(0, 1); err != nil { // materialize chunk 0
		t.Fatalf("Store: %v", err)
	}
	var i uint64
	if n := testing.AllocsPerRun(500, func() {
		i++
		if err := a.Store(i%1000, i); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Store allocated %v times per run", n)
	}
}

func TestU64ArrayConcurrentSameValueStores(t *testing.T) {
	t.Parallel()
	a, err := unbounded.NewU64Array(0)
	if err != nil {
		t.Fatalf("NewU64Array: %v", err)
	}
	// The register's usage: concurrent stores to one slot carry one value.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 2000; i++ {
				_ = a.Store(i, i*3)
			}
		}()
	}
	wg.Wait()
	for i := uint64(0); i < 2000; i++ {
		if v, ok := a.Load(i); !ok || v != i*3 {
			t.Fatalf("slot %d = (%d, %t), want (%d, true)", i, v, ok, i*3)
		}
	}
}
