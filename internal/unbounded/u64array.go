package unbounded

import (
	"fmt"
	"sync/atomic"
)

// U64Array is the word-sized specialization of Array: values live inline in
// atomic words instead of behind per-slot pointers, so Store is
// allocation-free once a slot's chunk exists (Array[T].Store heap-allocates a
// boxed value on every call). A presence bitmap distinguishes "never written"
// from a stored zero.
//
// As for Array, concurrent stores to the same slot always carry the same
// value (Lemma 18), so the value word and its presence bit need no joint
// atomicity: a reader that sees the bit sees some writer's store of the one
// value the slot can hold.
//
// Construct with NewU64Array; the zero value is not usable.
type U64Array struct {
	dir []atomic.Pointer[u64Chunk]
}

type u64Chunk struct {
	present [chunkSize / 64]atomic.Uint64
	vals    [chunkSize]atomic.Uint64
}

// NewU64Array returns an array addressable on [0, capacity). A capacity of 0
// selects DefaultCapacity.
func NewU64Array(capacity int) (*U64Array, error) {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if capacity < 0 {
		return nil, fmt.Errorf("unbounded: negative capacity %d", capacity)
	}
	nChunks := (capacity + chunkSize - 1) / chunkSize
	return &U64Array{dir: make([]atomic.Pointer[u64Chunk], nChunks)}, nil
}

// Capacity returns the number of addressable slots.
func (a *U64Array) Capacity() uint64 { return uint64(len(a.dir)) * chunkSize }

// Store atomically publishes v at index i. It returns an error only when i is
// beyond the array's capacity.
func (a *U64Array) Store(i uint64, v uint64) error {
	c, err := a.chunkFor(i, true)
	if err != nil {
		return err
	}
	o := i & (chunkSize - 1)
	c.vals[o].Store(v)
	c.present[o>>6].Or(1 << (o & 63))
	return nil
}

// Load returns the value at index i and whether the slot has been written.
func (a *U64Array) Load(i uint64) (uint64, bool) {
	c, err := a.chunkFor(i, false)
	if err != nil || c == nil {
		return 0, false
	}
	o := i & (chunkSize - 1)
	if c.present[o>>6].Load()&(1<<(o&63)) == 0 {
		return 0, false
	}
	return c.vals[o].Load(), true
}

func (a *U64Array) chunkFor(i uint64, create bool) (*u64Chunk, error) {
	ci := i >> chunkBits
	if ci >= uint64(len(a.dir)) {
		return nil, fmt.Errorf("unbounded: index %d beyond capacity %d", i, a.Capacity())
	}
	if c := a.dir[ci].Load(); c != nil {
		return c, nil
	}
	if !create {
		return nil, nil
	}
	fresh := new(u64Chunk)
	if a.dir[ci].CompareAndSwap(nil, fresh) {
		return fresh, nil
	}
	return a.dir[ci].Load(), nil
}
