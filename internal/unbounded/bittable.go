package unbounded

import (
	"fmt"
	"sync/atomic"
)

// BitTable is the array B[0..∞][0..m-1] of Algorithms 1-3: one m-bit row per
// sequence number, m <= 64. B[s][j] is set (never cleared) when reader j's
// access to the value with sequence number s is copied out of R by a writer.
// Set uses an atomic OR, so concurrent writers copying the same row merge
// their observations, exactly as concurrent B[s][j].write(true) do in the
// paper.
//
// Construct with NewBitTable; the zero value is not usable.
type BitTable struct {
	dir []atomic.Pointer[bitChunk]
}

type bitChunk struct {
	rows [chunkSize]atomic.Uint64
}

// NewBitTable returns a table addressable on rows [0, capacity). A capacity
// of 0 selects DefaultCapacity.
func NewBitTable(capacity int) (*BitTable, error) {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if capacity < 0 {
		return nil, fmt.Errorf("unbounded: negative capacity %d", capacity)
	}
	nChunks := (capacity + chunkSize - 1) / chunkSize
	return &BitTable{dir: make([]atomic.Pointer[bitChunk], nChunks)}, nil
}

// Capacity returns the number of addressable rows.
func (t *BitTable) Capacity() uint64 { return uint64(len(t.dir)) * chunkSize }

// Or atomically ORs bits into row s.
func (t *BitTable) Or(s uint64, bits uint64) error {
	if bits == 0 {
		return nil
	}
	c, err := t.chunkFor(s, true)
	if err != nil {
		return err
	}
	c.rows[s&(chunkSize-1)].Or(bits)
	return nil
}

// Set atomically sets bit j of row s, recording that reader j read the value
// with sequence number s.
func (t *BitTable) Set(s uint64, j int) error {
	if j < 0 || j >= 64 {
		return fmt.Errorf("unbounded: bit index %d out of range", j)
	}
	return t.Or(s, uint64(1)<<uint(j))
}

// Row returns the current bits of row s (zero if never written).
func (t *BitTable) Row(s uint64) uint64 {
	c, err := t.chunkFor(s, false)
	if err != nil || c == nil {
		return 0
	}
	return c.rows[s&(chunkSize-1)].Load()
}

func (t *BitTable) chunkFor(s uint64, create bool) (*bitChunk, error) {
	ci := s >> chunkBits
	if ci >= uint64(len(t.dir)) {
		return nil, fmt.Errorf("unbounded: row %d beyond capacity %d", s, t.Capacity())
	}
	if c := t.dir[ci].Load(); c != nil {
		return c, nil
	}
	if !create {
		return nil, nil
	}
	fresh := new(bitChunk)
	if t.dir[ci].CompareAndSwap(nil, fresh) {
		return fresh, nil
	}
	return t.dir[ci].Load(), nil
}
