// Package replicated implements the related-work baseline the paper builds
// on: an auditable register emulated over an asynchronous message-passing
// system with crash faults, in the style of Cogo & Bessani ("Auditable
// Register Emulations", DISC 2021) as summarized in the paper's Section 1.3.
//
// The register value is dispersed with Rabin's IDA across n = 4f+1 servers
// (threshold k = f+1), of which up to f may crash. A reader must collect k
// shares to reconstruct the value, and every server logs the access before
// releasing its share — so any effective read is logged by at least k = f+1
// servers, and an audit that hears from n-f servers misses at most f of them,
// hence sees the read.
//
// The baseline contrasts with Algorithms 1-3 on exactly the axes the paper
// identifies:
//
//   - audits are only threshold-complete: a reader that gathered fewer than k
//     shares learned nothing but may still be logged (inexact accuracy),
//     while Algorithm 1 audits exactly the effective reads;
//   - reads cost 2n messages and writes 2n more, versus a handful of shared-
//     memory steps;
//   - the access logs sit in plaintext at the servers: any party that can
//     query servers can audit, unlike the one-time-pad-protected logs.
package replicated

import (
	"fmt"
	"sort"

	"auditreg/internal/ida"
	"auditreg/internal/netsim"
)

// Cluster is a replicated auditable register deployment: n = 4f+1 server
// nodes on a simulated asynchronous network. Construct with NewCluster.
// Operations are executed one at a time (the simulation is single-threaded);
// asynchrony and failures come from randomized delivery order and crashes.
type Cluster struct {
	f, n, k int
	net     *netsim.Network
	coder   *ida.Coder
	nextID  netsim.NodeID
}

// NewCluster returns a cluster tolerating f crash faults (n = 4f+1 servers),
// with delivery order driven by seed.
func NewCluster(f int, seed uint64) (*Cluster, error) {
	if f < 1 {
		return nil, fmt.Errorf("replicated: fault bound f must be positive, got %d", f)
	}
	n := 4*f + 1
	coder, err := ida.New(n, f+1)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		f:      f,
		n:      n,
		k:      f + 1,
		net:    netsim.New(seed),
		coder:  coder,
		nextID: netsim.NodeID(1000),
	}
	for i := 0; i < n; i++ {
		c.net.Register(netsim.NodeID(i), &server{
			id:      netsim.NodeID(i),
			history: make(map[uint64]stored),
			logged:  make(map[logKey]struct{}),
		})
	}
	return c, nil
}

// Servers returns n.
func (c *Cluster) Servers() int { return c.n }

// FaultBound returns f.
func (c *Cluster) FaultBound() int { return c.f }

// Crash crashes server i (at most f crashes keep the register live).
func (c *Cluster) Crash(i int) error {
	if i < 0 || i >= c.n {
		return fmt.Errorf("replicated: server %d out of range [0, %d)", i, c.n)
	}
	c.net.Crash(netsim.NodeID(i))
	return nil
}

// Stats returns the network activity counters.
func (c *Cluster) Stats() netsim.Stats { return c.net.Stats() }

func (c *Cluster) clientID() netsim.NodeID {
	id := c.nextID
	c.nextID++
	return id
}

// --- protocol messages ---

type writeReq struct {
	ts    uint64
	share []byte
	size  int
}

type writeAck struct {
	ts uint64
}

type readReq struct {
	reader int
}

type readResp struct {
	ts    uint64
	share []byte
	size  int
}

type logKey struct {
	reader int
	ts     uint64
}

type auditReq struct{}

type auditResp struct {
	log     []logKey
	history map[uint64]stored
}

type stored struct {
	share []byte
	size  int
}

// --- server ---

type server struct {
	id      netsim.NodeID
	curTS   uint64
	history map[uint64]stored
	logged  map[logKey]struct{}
	logSeq  []logKey
}

// Deliver implements netsim.Handler.
func (s *server) Deliver(m netsim.Message) []netsim.Message {
	switch req := m.Payload.(type) {
	case writeReq:
		s.history[req.ts] = stored{share: req.share, size: req.size}
		if req.ts > s.curTS {
			s.curTS = req.ts
		}
		return []netsim.Message{{From: s.id, To: m.From, Payload: writeAck{ts: req.ts}}}
	case readReq:
		// Log the access *before* releasing the share: the reader
		// cannot reconstruct without being logged k times.
		key := logKey{reader: req.reader, ts: s.curTS}
		if _, dup := s.logged[key]; !dup {
			s.logged[key] = struct{}{}
			s.logSeq = append(s.logSeq, key)
		}
		cur := s.history[s.curTS]
		return []netsim.Message{{From: s.id, To: m.From, Payload: readResp{ts: s.curTS, share: cur.share, size: cur.size}}}
	case auditReq:
		log := make([]logKey, len(s.logSeq))
		copy(log, s.logSeq)
		hist := make(map[uint64]stored, len(s.history))
		for ts, v := range s.history {
			hist[ts] = v
		}
		return []netsim.Message{{From: s.id, To: m.From, Payload: auditResp{log: log, history: hist}}}
	default:
		return nil
	}
}

// --- writer ---

// Writer is a writing client. One handle per writing process; writer ids
// must be unique (they break timestamp ties).
type Writer struct {
	c    *Cluster
	node netsim.NodeID
	id   uint8
	seq  uint64
	acks int
	want uint64
}

// Writer returns a new writing client with the given unique 8-bit id.
func (c *Cluster) Writer(id uint8) *Writer {
	w := &Writer{c: c, node: c.clientID(), id: id}
	c.net.Register(w.node, w)
	return w
}

// Deliver implements netsim.Handler.
func (w *Writer) Deliver(m netsim.Message) []netsim.Message {
	if ack, ok := m.Payload.(writeAck); ok && ack.ts == w.want {
		w.acks++
	}
	return nil
}

// Write disperses v across the servers and returns once n-f acknowledged.
func (w *Writer) Write(v []byte) error {
	w.seq++
	ts := w.seq<<8 | uint64(w.id)
	w.want, w.acks = ts, 0

	shares := w.c.coder.Split(v)
	msgs := make([]netsim.Message, w.c.n)
	for i := 0; i < w.c.n; i++ {
		msgs[i] = netsim.Message{
			From:    w.node,
			To:      netsim.NodeID(i),
			Payload: writeReq{ts: ts, share: shares[i], size: len(v)},
		}
	}
	w.c.net.Send(msgs...)
	return w.c.net.Pump(func() bool { return w.acks >= w.c.n-w.c.f })
}

// --- reader ---

// Reader is a reading client. One handle per reading process.
type Reader struct {
	c      *Cluster
	node   netsim.NodeID
	j      int
	resps  int
	byTS   map[uint64]map[int][]byte
	sizes  map[uint64]int
	server map[netsim.NodeID]bool
}

// Reader returns a new reading client with reader id j.
func (c *Cluster) Reader(j int) *Reader {
	r := &Reader{c: c, node: c.clientID(), j: j}
	c.net.Register(r.node, r)
	return r
}

// Deliver implements netsim.Handler.
func (r *Reader) Deliver(m netsim.Message) []netsim.Message {
	resp, ok := m.Payload.(readResp)
	if !ok || r.server[m.From] {
		return nil
	}
	r.server[m.From] = true
	r.resps++
	if resp.share != nil {
		if r.byTS[resp.ts] == nil {
			r.byTS[resp.ts] = make(map[int][]byte)
		}
		r.byTS[resp.ts][int(m.From)] = resp.share
		r.sizes[resp.ts] = resp.size
	} else if resp.ts == 0 {
		// Initial state: the register holds the empty value.
		if r.byTS[0] == nil {
			r.byTS[0] = make(map[int][]byte)
		}
		r.byTS[0][int(m.From)] = []byte{}
		r.sizes[0] = 0
	}
	return nil
}

// Read collects shares from n-f servers and reconstructs the newest value
// covered by at least k shares. The empty slice is the initial value.
func (r *Reader) Read() ([]byte, error) {
	r.resps = 0
	r.byTS = make(map[uint64]map[int][]byte)
	r.sizes = make(map[uint64]int)
	r.server = make(map[netsim.NodeID]bool)

	msgs := make([]netsim.Message, r.c.n)
	for i := 0; i < r.c.n; i++ {
		msgs[i] = netsim.Message{From: r.node, To: netsim.NodeID(i), Payload: readReq{reader: r.j}}
	}
	r.c.net.Send(msgs...)
	if err := r.c.net.Pump(func() bool { return r.resps >= r.c.n-r.c.f }); err != nil {
		return nil, err
	}

	// Newest timestamp with at least k shares wins.
	var best uint64
	found := false
	for ts, shares := range r.byTS {
		if len(shares) >= r.c.k && (!found || ts > best) {
			best, found = ts, true
		}
	}
	if !found {
		return nil, fmt.Errorf("replicated: no timestamp reached the reconstruction threshold")
	}
	if best == 0 {
		return []byte{}, nil
	}
	return r.c.coder.Reconstruct(r.byTS[best], r.sizes[best])
}

// --- auditor ---

// Access is one audited access reported by the replicated register.
type Access struct {
	// Reader is the reading client's id.
	Reader int
	// TS is the timestamp of the value whose share release was logged.
	TS uint64
	// Value is the reconstructed value; nil when the value's write had not
	// completed at enough surviving servers.
	Value []byte
	// Evidence is how many of the contacted servers logged the access.
	Evidence int
}

// Auditor is an auditing client. One handle per auditing process.
type Auditor struct {
	c     *Cluster
	node  netsim.NodeID
	resps map[netsim.NodeID]auditResp
}

// Auditor returns a new auditing client.
func (c *Cluster) Auditor() *Auditor {
	a := &Auditor{c: c, node: c.clientID()}
	c.net.Register(a.node, a)
	return a
}

// Deliver implements netsim.Handler.
func (a *Auditor) Deliver(m netsim.Message) []netsim.Message {
	resp, ok := m.Payload.(auditResp)
	if !ok {
		return nil
	}
	if _, dup := a.resps[m.From]; dup {
		return nil
	}
	a.resps[m.From] = resp
	return nil
}

// Audit collects access logs from n-f servers and reports every logged
// access, with the value reconstructed where possible. Unlike Algorithm 1's
// audit this is threshold-based: accesses by readers that never reached the
// reconstruction threshold may still appear (with low Evidence), and an
// effective read is guaranteed to appear because it was logged at k = f+1
// servers of which at most f are missing.
func (a *Auditor) Audit() ([]Access, error) {
	a.resps = make(map[netsim.NodeID]auditResp)

	msgs := make([]netsim.Message, a.c.n)
	for i := 0; i < a.c.n; i++ {
		msgs[i] = netsim.Message{From: a.node, To: netsim.NodeID(i), Payload: auditReq{}}
	}
	a.c.net.Send(msgs...)
	if err := a.c.net.Pump(func() bool { return len(a.resps) >= a.c.n-a.c.f }); err != nil {
		return nil, err
	}

	evidence := make(map[logKey]int)
	var order []logKey
	for _, resp := range a.resps {
		for _, key := range resp.log {
			if evidence[key] == 0 {
				order = append(order, key)
			}
			evidence[key]++
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].ts != order[j].ts {
			return order[i].ts < order[j].ts
		}
		return order[i].reader < order[j].reader
	})

	out := make([]Access, 0, len(order))
	for _, key := range order {
		acc := Access{Reader: key.reader, TS: key.ts, Evidence: evidence[key]}
		if key.ts == 0 {
			acc.Value = []byte{}
		} else if v, err := a.reconstruct(key.ts); err == nil {
			acc.Value = v
		}
		out = append(out, acc)
	}
	return out, nil
}

func (a *Auditor) reconstruct(ts uint64) ([]byte, error) {
	shares := make(map[int][]byte)
	size := -1
	for sid, resp := range a.resps {
		if v, ok := resp.history[ts]; ok {
			shares[int(sid)] = v.share
			size = v.size
		}
	}
	if len(shares) < a.c.k || size < 0 {
		return nil, fmt.Errorf("replicated: timestamp %d below reconstruction threshold", ts)
	}
	return a.c.coder.Reconstruct(shares, size)
}
