package replicated_test

import (
	"bytes"
	"testing"

	"auditreg/internal/replicated"
)

func newCluster(t *testing.T, f int, seed uint64) *replicated.Cluster {
	t.Helper()
	c, err := replicated.NewCluster(f, seed)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestClusterValidation(t *testing.T) {
	t.Parallel()
	if _, err := replicated.NewCluster(0, 1); err == nil {
		t.Error("f=0 accepted")
	}
	c := newCluster(t, 1, 1)
	if c.Servers() != 5 || c.FaultBound() != 1 {
		t.Fatalf("cluster = (%d, %d)", c.Servers(), c.FaultBound())
	}
	if err := c.Crash(9); err == nil {
		t.Error("crash of unknown server accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	t.Parallel()
	for _, f := range []int{1, 2, 3} {
		c := newCluster(t, f, 42)
		w := c.Writer(1)
		r := c.Reader(0)

		if err := w.Write([]byte("v1")); err != nil {
			t.Fatalf("f=%d: Write: %v", f, err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatalf("f=%d: Read: %v", f, err)
		}
		if !bytes.Equal(got, []byte("v1")) {
			t.Fatalf("f=%d: read %q", f, got)
		}

		if err := w.Write([]byte("value-two")); err != nil {
			t.Fatalf("f=%d: Write: %v", f, err)
		}
		got, err = r.Read()
		if err != nil {
			t.Fatalf("f=%d: Read: %v", f, err)
		}
		if !bytes.Equal(got, []byte("value-two")) {
			t.Fatalf("f=%d: read %q", f, got)
		}
	}
}

func TestReadInitialValue(t *testing.T) {
	t.Parallel()
	c := newCluster(t, 1, 7)
	got, err := c.Reader(3).Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("initial read = %q, want empty", got)
	}
}

func TestSurvivesFCrashes(t *testing.T) {
	t.Parallel()
	const f = 2
	c := newCluster(t, f, 9)
	w := c.Writer(1)
	r := c.Reader(0)

	if err := w.Write([]byte("before")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for i := 0; i < f; i++ {
		if err := c.Crash(i); err != nil {
			t.Fatalf("Crash: %v", err)
		}
	}
	got, err := r.Read()
	if err != nil {
		t.Fatalf("Read after %d crashes: %v", f, err)
	}
	if !bytes.Equal(got, []byte("before")) {
		t.Fatalf("read %q", got)
	}
	if err := w.Write([]byte("after")); err != nil {
		t.Fatalf("Write after crashes: %v", err)
	}
	got, err = r.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, []byte("after")) {
		t.Fatalf("read %q", got)
	}
}

func TestTooManyCrashesLoseQuorum(t *testing.T) {
	t.Parallel()
	c := newCluster(t, 1, 3)
	for i := 0; i < 2; i++ { // f+1 crashes
		if err := c.Crash(i); err != nil {
			t.Fatalf("Crash: %v", err)
		}
	}
	if err := c.Writer(1).Write([]byte("x")); err == nil {
		t.Fatal("write completed without a quorum")
	}
}

func TestAuditCompleteness(t *testing.T) {
	t.Parallel()
	c := newCluster(t, 1, 11)
	w := c.Writer(1)
	r2 := c.Reader(2)
	r5 := c.Reader(5)

	if err := w.Write([]byte("classified")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	v, err := r2.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := r5.Read(); err != nil {
		t.Fatalf("Read: %v", err)
	}

	accesses, err := c.Auditor().Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	found2, found5 := false, false
	for _, a := range accesses {
		if a.Reader == 2 && bytes.Equal(a.Value, v) {
			found2 = true
			// An effective read is logged at k = f+1 servers, and
			// the audit misses at most f, so evidence >= 1; here
			// with no crashes every contacted server that logged
			// it reports it.
			if a.Evidence < 1 {
				t.Fatalf("evidence = %d", a.Evidence)
			}
		}
		if a.Reader == 5 {
			found5 = true
		}
	}
	if !found2 || !found5 {
		t.Fatalf("audit missed readers: %+v", accesses)
	}
}

func TestAuditSurvivesCrashesAfterRead(t *testing.T) {
	t.Parallel()
	const f = 1
	c := newCluster(t, f, 13)
	w := c.Writer(1)
	if err := w.Write([]byte("s3cret")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := c.Reader(4).Read(); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// f servers crash *after* the read; the access must still be audited
	// because it was logged at >= f+1 servers.
	if err := c.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	accesses, err := c.Auditor().Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	for _, a := range accesses {
		if a.Reader == 4 && bytes.Equal(a.Value, []byte("s3cret")) {
			return
		}
	}
	t.Fatalf("audit lost the read after %d crashes: %+v", f, accesses)
}

func TestMessageCosts(t *testing.T) {
	t.Parallel()
	c := newCluster(t, 1, 17)
	n := c.Servers()

	before := c.Stats()
	if err := c.Writer(1).Write([]byte("v")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	writeMsgs := c.Stats().Sent - before.Sent
	if writeMsgs != 2*n {
		t.Fatalf("write cost %d messages, want %d (request+ack per server)", writeMsgs, 2*n)
	}

	before = c.Stats()
	if _, err := c.Reader(0).Read(); err != nil {
		t.Fatalf("Read: %v", err)
	}
	readMsgs := c.Stats().Sent - before.Sent
	if readMsgs != 2*n {
		t.Fatalf("read cost %d messages, want %d", readMsgs, 2*n)
	}
}

func TestMultiWriterLastTimestampWins(t *testing.T) {
	t.Parallel()
	c := newCluster(t, 1, 19)
	w1 := c.Writer(1)
	w2 := c.Writer(2)
	r := c.Reader(0)

	if err := w1.Write([]byte("from-w1")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w2.Write([]byte("from-w2")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := r.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	// w2's timestamp (same seq, higher writer id) wins.
	if !bytes.Equal(got, []byte("from-w2")) {
		t.Fatalf("read %q", got)
	}
}

func TestManySeedsDeterministicOutcome(t *testing.T) {
	t.Parallel()
	// Whatever the asynchronous delivery order, a read after a completed
	// write returns that write's value.
	for seed := uint64(0); seed < 50; seed++ {
		c := newCluster(t, 1, seed)
		if err := c.Writer(1).Write([]byte("stable")); err != nil {
			t.Fatalf("seed %d: Write: %v", seed, err)
		}
		got, err := c.Reader(1).Read()
		if err != nil {
			t.Fatalf("seed %d: Read: %v", seed, err)
		}
		if !bytes.Equal(got, []byte("stable")) {
			t.Fatalf("seed %d: read %q", seed, got)
		}
	}
}
