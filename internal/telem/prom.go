package telem

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteStages writes the stage snapshots as Prometheus text exposition
// (version 0.0.4): one cumulative histogram family
// auditreg_stage_duration_seconds{stage=...} plus quantized-quantile gauges
// auditreg_stage_latency_ns{stage=...,q=...} for scrapers that want the
// STATS-frame summaries without doing histogram math. Only non-empty
// buckets get a _bucket line (plus the mandatory +Inf); the full bucket
// layout is fixed (powers of two in nanoseconds), so sparse output loses
// nothing.
func WriteStages(w io.Writer, stages []StageSnapshot) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP auditreg_stage_duration_seconds Per-stage pipeline latency, quantized to power-of-two nanosecond buckets. Aggregate-only: no per-object or per-reader dimensions.\n")
	fmt.Fprintf(bw, "# TYPE auditreg_stage_duration_seconds histogram\n")
	for _, st := range stages {
		var cum uint64
		for i, n := range st.Buckets {
			if n == 0 {
				continue
			}
			cum += n
			fmt.Fprintf(bw, "auditreg_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n",
				st.Name, formatSeconds(BucketBound(i)), cum)
		}
		fmt.Fprintf(bw, "auditreg_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", st.Name, st.Count)
		fmt.Fprintf(bw, "auditreg_stage_duration_seconds_sum{stage=%q} %s\n", st.Name, formatSeconds(st.Sum))
		fmt.Fprintf(bw, "auditreg_stage_duration_seconds_count{stage=%q} %d\n", st.Name, st.Count)
	}
	fmt.Fprintf(bw, "# HELP auditreg_stage_latency_ns Quantized per-stage latency summaries (bucket upper bounds, nanoseconds).\n")
	fmt.Fprintf(bw, "# TYPE auditreg_stage_latency_ns gauge\n")
	for _, st := range stages {
		fmt.Fprintf(bw, "auditreg_stage_latency_ns{stage=%q,q=\"p50\"} %d\n", st.Name, st.Quantile(0.50))
		fmt.Fprintf(bw, "auditreg_stage_latency_ns{stage=%q,q=\"p99\"} %d\n", st.Name, st.Quantile(0.99))
		fmt.Fprintf(bw, "auditreg_stage_latency_ns{stage=%q,q=\"max\"} %d\n", st.Name, st.Max())
	}
	return bw.Flush()
}

// WriteCounter writes one counter-typed sample.
func WriteCounter(w io.Writer, name string, v uint64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}

// formatSeconds renders a nanosecond count as seconds without float round
// trips ("0.000016384"), the unit Prometheus histograms conventionally use.
func formatSeconds(ns uint64) string {
	sec := ns / 1e9
	frac := ns % 1e9
	if frac == 0 {
		return strconv.FormatUint(sec, 10)
	}
	s := fmt.Sprintf("%d.%09d", sec, frac)
	return strings.TrimRight(s, "0")
}

// ParseText parses Prometheus text exposition into a flat map keyed by the
// sample's full name-with-labels (exactly as it appears on the line, e.g.
// `auditreg_stage_latency_ns{stage="store-op",q="p50"}`). It is the
// scraper-side inverse of WriteStages, shared by cmd/loadgen and the E18
// metrics observer; comment lines are skipped and unparsable values ignored.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is everything after the last space; label values never
		// contain spaces in our exposition.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SortedKeys returns the map's keys sorted — scrape deltas need a stable
// feature order across trials.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
