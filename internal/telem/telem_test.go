package telem

import (
	"strings"
	"sync"
	"testing"
)

func TestBucketMapping(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11},
		{1 << 38, 38}, {1<<39 + 1, NumBuckets - 1}, {1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		// The bucket invariant: v <= bound(bucket) and v > bound(bucket-1).
		if c.v >= 1 && c.want < NumBuckets-1 {
			if uint64(c.v) > BucketBound(c.want) {
				t.Errorf("v=%d above its bucket bound %d", c.v, BucketBound(c.want))
			}
		}
	}
}

func TestQuantile(t *testing.T) {
	h := NewHist(1)
	var empty Snapshot
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 {
		t.Fatal("empty snapshot must report zero quantiles")
	}
	// 99 observations at ~1µs, 1 at ~1ms: p50 is the 1µs bucket bound,
	// p99+ and max the 1ms one.
	for i := 0; i < 99; i++ {
		h.Observe(0, 1000)
	}
	h.Observe(0, 1_000_000)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.Quantile(0.50); got != BucketBound(bucketOf(1000)) {
		t.Errorf("p50 = %d, want %d", got, BucketBound(bucketOf(1000)))
	}
	if got := s.Quantile(0.999); got != BucketBound(bucketOf(1_000_000)) {
		t.Errorf("p99.9 = %d, want %d", got, BucketBound(bucketOf(1_000_000)))
	}
	if got := s.Max(); got != BucketBound(bucketOf(1_000_000)) {
		t.Errorf("max = %d, want %d", got, BucketBound(bucketOf(1_000_000)))
	}
}

// TestConcurrentObserveMerge hammers one histogram from many goroutines on
// clashing stripes and checks the merged snapshot is exact — under -race
// this also proves Observe/Snapshot need no locks.
func TestConcurrentObserveMerge(t *testing.T) {
	const (
		workers = 8
		perW    = 10000
	)
	h := NewHist(4) // fewer stripes than workers: forced sharing
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(uint64(w), int64(i%5000)+1)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("count = %d, want %d", s.Count, workers*perW)
	}
	var bsum uint64
	for _, n := range s.Buckets {
		bsum += n
	}
	if bsum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bsum, s.Count)
	}
	var other Snapshot
	other.Merge(s)
	other.Merge(s)
	if other.Count != 2*s.Count || other.Sum != 2*s.Sum {
		t.Fatal("Merge did not double counts")
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Stage("zeta", 1).Observe(0, 10)
	r.Stage("alpha", 1).Observe(0, 20)
	if same := r.Stage("zeta", 1); same != r.Stage("zeta", 4) {
		t.Fatal("Stage must return the existing histogram on re-registration")
	}
	snaps := r.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "alpha" || snaps[1].Name != "zeta" {
		t.Fatalf("snapshot order wrong: %+v", snaps)
	}
	if snaps[0].Count != 1 || snaps[1].Count != 1 {
		t.Fatalf("counts wrong: %+v", snaps)
	}
}

func TestPromRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Stage("store-op", 1)
	for i := 0; i < 100; i++ {
		h.Observe(0, 2000)
	}
	var sb strings.Builder
	if err := WriteStages(&sb, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	m, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := m[`auditreg_stage_duration_seconds_count{stage="store-op"}`]; got != 100 {
		t.Fatalf("parsed count = %v, want 100\nexposition:\n%s", got, text)
	}
	want := float64(BucketBound(bucketOf(2000)))
	if got := m[`auditreg_stage_latency_ns{stage="store-op",q="p50"}`]; got != want {
		t.Fatalf("parsed p50 = %v, want %v", got, want)
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Fatal("histogram missing +Inf bucket")
	}
}

// TestObserveAllocFree pins the hot-path contract: Observe and Now are
// allocation-free. (Named *Alloc* so CI's bench-smoke -run 'Alloc' runs it.)
func TestObserveAllocFree(t *testing.T) {
	h := NewHist(4)
	if n := testing.AllocsPerRun(1000, func() {
		t0 := Now()
		h.Observe(uint64(t0), Now()-t0)
	}); n != 0 {
		t.Fatalf("Observe allocates %v times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = h.Snapshot()
	}); n != 0 {
		t.Fatalf("Snapshot allocates %v times per op, want 0", n)
	}
}
