// Package telem is the zero-allocation telemetry core of the auditd stack:
// fixed-bucket log-scale latency histograms with per-shard striped atomic
// counters, mergeable snapshots, and a monotonic nanosecond clock — the
// primitives behind the per-stage pipeline tracing the server, the WAL, and
// the client thread through their hot paths.
//
// # Leak contract
//
// Telemetry is itself an observable channel — the E18 lab's metricsobs
// observer attacks it — so the package enforces the shape that keeps it
// safe by construction: everything is aggregate-only. A histogram carries
// no per-object, per-reader, or per-connection dimension, and its buckets
// are quantized to powers of two, so one observation moves one anonymous
// bucket counter and nothing else. Consumers (the STATS frame, the
// Prometheus endpoint) must only ever export these aggregates; the
// invariant is pinned by the leak-gate's metrics observer (see DESIGN.md,
// "Observability").
//
// # Hot-path discipline
//
// Observe is two atomic adds on a caller-striped shard — no locks, no
// allocation, no time.Time. Callers timestamp with Now (a monotonic int64,
// alloc-free) and carry the start through the pooled request structs they
// already own. Snapshots merge the stripes; they are the only readers of
// the bucket arrays.
package telem

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every histogram: bucket i counts
// observations v (in nanoseconds) with 2^(i-1) < v <= 2^i, i.e. the bucket's
// upper bound is 2^i ns. Bucket 0 holds v <= 1ns, the last bucket collects
// everything above ~2^38 ns (≈ 4.6 minutes) — far beyond any request stage.
const NumBuckets = 40

// bucketOf maps an observation to its bucket: ceil(log2 v), clamped.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2 v)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketBound returns bucket i's upper bound in nanoseconds. The last
// bucket is unbounded; its nominal bound (2^(NumBuckets-1) ns) is what
// quantile estimates report for mass that lands there.
func BucketBound(i int) uint64 { return 1 << uint(i) }

// histShard is one stripe of a histogram, padded out to a whole number of
// cache lines so two stripes never false-share. (40+1)*8 = 328 bytes of
// counters + 56 pad = 384 = 6 lines.
type histShard struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64
	_       [56]byte
}

// Hist is a striped fixed-bucket latency histogram. Construct with NewHist;
// all methods are safe for concurrent use.
type Hist struct {
	shards []histShard
	mask   uint64
}

// NewHist returns a histogram with the given stripe count, rounded up to a
// power of two (n <= 0 selects GOMAXPROCS). Pick one stripe per writer
// (executor index, connection slot) so hot-path observes never contend.
func NewHist(n int) *Hist {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return &Hist{shards: make([]histShard, p), mask: uint64(p - 1)}
}

// Observe records one duration (nanoseconds; negative clamps to zero) on the
// given stripe — any uint64 the caller has handy (executor index, connection
// slot, even the observation's own start timestamp); it is masked into
// range. Two atomic adds, no allocation.
func (h *Hist) Observe(stripe uint64, v int64) {
	if v < 0 {
		v = 0
	}
	s := &h.shards[stripe&h.mask]
	s.buckets[bucketOf(v)].Add(1)
	s.sum.Add(uint64(v))
}

// Snapshot is a point-in-time merge of a histogram's stripes (or of several
// histograms — see Merge). The zero value is an empty snapshot.
type Snapshot struct {
	Buckets [NumBuckets]uint64
	Count   uint64 // total observations (sum over Buckets)
	Sum     uint64 // total nanoseconds observed
}

// Snapshot merges the stripes into one snapshot. Counters are loaded
// independently (they only ever grow), so a snapshot taken mid-Observe may
// be one count ahead of its sum — bounded skew, never a torn ratio the
// wrong way: buckets are loaded before sums, so Sum can only include
// observations Count already saw.
func (h *Hist) Snapshot() Snapshot {
	var out Snapshot
	for i := range h.shards {
		s := &h.shards[i]
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	for i := range h.shards {
		out.Sum += h.shards[i].sum.Load()
	}
	for _, n := range out.Buckets {
		out.Count += n
	}
	return out
}

// Merge folds o into s.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns the q-quantile (0 <= q <= 1) as the upper bound of the
// bucket the quantile lands in — deliberately quantized: the histogram never
// resolves an individual observation, so neither can anything exported from
// it. Returns 0 for an empty snapshot.
func (s *Snapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum > rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket — the
// quantized maximum. Returns 0 for an empty snapshot.
func (s *Snapshot) Max() uint64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return BucketBound(i)
		}
	}
	return 0
}

// Registry is a named set of stage histograms, snapshotted together: the
// STATS frame and the Prometheus endpoint both read one registry, so every
// exporter sees the same stage taxonomy. Construct with NewRegistry.
type Registry struct {
	mu     sync.Mutex
	stages map[string]*Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stages: make(map[string]*Hist)}
}

// Stage returns the named stage's histogram, creating it with the given
// stripe count on first use. Registration is cheap but not hot-path; callers
// hold the returned *Hist and Observe on it directly.
func (r *Registry) Stage(name string, stripes int) *Hist {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.stages[name]
	if !ok {
		h = NewHist(stripes)
		r.stages[name] = h
	}
	return h
}

// StageSnapshot is one named stage's snapshot.
type StageSnapshot struct {
	Name string
	Snapshot
}

// Snapshot snapshots every registered stage, sorted by name.
func (r *Registry) Snapshot() []StageSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.stages))
	hists := make([]*Hist, 0, len(r.stages))
	for name := range r.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hists = append(hists, r.stages[name])
	}
	r.mu.Unlock()
	out := make([]StageSnapshot, len(names))
	for i := range names {
		out[i] = StageSnapshot{Name: names[i], Snapshot: hists[i].Snapshot()}
	}
	return out
}

// base anchors Now: time.Since reads the monotonic clock without
// allocating, and an int64 of nanoseconds-since-boot is what the pooled
// request structs carry through the pipeline.
var base = time.Now()

// Now returns a monotonic timestamp in nanoseconds, suitable only for
// differencing against other Now values. It never allocates.
func Now() int64 { return int64(time.Since(base)) }
