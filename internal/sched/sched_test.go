package sched_test

import (
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/sched"
	"auditreg/internal/shmem"
)

func TestPolicies(t *testing.T) {
	t.Parallel()
	ready := []int{1, 3, 5}

	rr := &sched.RoundRobinPolicy{}
	got := []int{rr.Pick(ready), rr.Pick(ready), rr.Pick(ready), rr.Pick(ready)}
	want := []int{1, 3, 5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin picks = %v, want %v", got, want)
		}
	}

	sp := sched.NewScriptPolicy(5, 5, 1, 9)
	if p := sp.Pick(ready); p != 5 {
		t.Fatalf("script pick 1 = %d", p)
	}
	if p := sp.Pick(ready); p != 5 {
		t.Fatalf("script pick 2 = %d", p)
	}
	if p := sp.Pick(ready); p != 1 {
		t.Fatalf("script pick 3 = %d", p)
	}
	// 9 is never ready; falls back to lowest.
	if p := sp.Pick(ready); p != 1 {
		t.Fatalf("script fallback = %d", p)
	}

	rp := sched.NewRandomPolicy(1)
	for i := 0; i < 100; i++ {
		p := rp.Pick(ready)
		if p != 1 && p != 3 && p != 5 {
			t.Fatalf("random policy picked %d not in ready set", p)
		}
	}
}

// newSchedReg builds a register whose reader/writer handles are gated by the
// scheduler.
func newSchedReg(t *testing.T, s *sched.Scheduler, m int) (*core.Register[uint64], []*core.Reader[uint64], *core.Writer[uint64]) {
	t.Helper()
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(2), m)
	if err != nil {
		t.Fatalf("pads: %v", err)
	}
	reg, err := core.New(m, uint64(0), pads)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	readers := make([]*core.Reader[uint64], m)
	for j := 0; j < m; j++ {
		rd, err := reg.Reader(j, core.WithProbe(s.Probe(j)))
		if err != nil {
			t.Fatalf("Reader: %v", err)
		}
		readers[j] = rd
	}
	w := reg.Writer(core.WithProbe(s.Probe(100)), core.WithPID(100))
	return reg, readers, w
}

func TestSchedulerRunsToCompletion(t *testing.T) {
	t.Parallel()
	s := sched.New(sched.NewRandomPolicy(7))
	_, readers, w := newSchedReg(t, s, 2)

	var r0, r1 uint64
	err := s.Run(map[int]func(){
		0:   func() { r0 = readers[0].Read(); r0 = readers[0].Read() },
		1:   func() { r1 = readers[1].Read() },
		100: func() { _ = w.Write(42); _ = w.Write(43) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Steps() == 0 {
		t.Fatal("scheduler granted no steps")
	}
	for _, v := range []uint64{r0, r1} {
		if v != 0 && v != 42 && v != 43 {
			t.Fatalf("read returned %d, not a written value", v)
		}
	}
}

// TestSchedulerDeterministic: the same seed yields the same step count and
// the same outputs.
func TestSchedulerDeterministic(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) (int, [2]uint64) {
		s := sched.New(sched.NewRandomPolicy(seed))
		_, readers, w := newSchedReg(t, s, 2)
		var out [2]uint64
		if err := s.Run(map[int]func(){
			0:   func() { out[0] = readers[0].Read() },
			1:   func() { out[1] = readers[1].Read() },
			100: func() { _ = w.Write(9) },
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s.Steps(), out
	}
	s1, o1 := run(11)
	s2, o2 := run(11)
	if s1 != s2 || o1 != o2 {
		t.Fatalf("same seed diverged: (%d, %v) vs (%d, %v)", s1, o1, s2, o2)
	}
}

func TestSchedulerMissingProbe(t *testing.T) {
	t.Parallel()
	s := sched.New(&sched.RoundRobinPolicy{})
	if err := s.Run(map[int]func(){3: func() {}}); err == nil {
		t.Fatal("Run accepted a process without probe")
	}
}

func TestSchedulerProcessWithoutSteps(t *testing.T) {
	t.Parallel()
	s := sched.New(&sched.RoundRobinPolicy{})
	_ = s.Probe(1)
	ran := false
	if err := s.Run(map[int]func(){1: func() { ran = true }}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("process did not run")
	}
}

// TestSingleXorPerSeq is experiment E12 (Lemma 17): under many adversarial
// schedules, no reader ever applies two fetch&xors while R holds the same
// sequence number — the guard that keeps each pad observed at most once.
func TestSingleXorPerSeq(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 50; seed++ {
		s := sched.New(sched.NewRandomPolicy(seed))
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), 2)
		if err != nil {
			t.Fatalf("pads: %v", err)
		}
		reg, err := core.New(2, uint64(0), pads)
		if err != nil {
			t.Fatalf("New: %v", err)
		}

		type key struct {
			reader int
			seq    uint64
		}
		seen := make(map[key]int)
		mkReader := func(j int) *core.Reader[uint64] {
			gate := s.Probe(j)
			rd, err := reg.Reader(j, core.WithProbe(func(e probe.Event) {
				gate(e)
				if e.Prim == probe.RXor && e.Kind == probe.Return {
					tr := e.Detail.(shmem.Triple[uint64])
					seen[key{reader: j, seq: tr.Seq}]++
				}
			}))
			if err != nil {
				t.Fatalf("Reader: %v", err)
			}
			return rd
		}
		rd0, rd1 := mkReader(0), mkReader(1)
		w := reg.Writer(core.WithProbe(s.Probe(100)))

		if err := s.Run(map[int]func(){
			0:   func() { rd0.Read(); rd0.Read(); rd0.Read() },
			1:   func() { rd1.Read(); rd1.Read() },
			100: func() { _ = w.Write(1); _ = w.Write(2) },
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		for k, n := range seen {
			if n > 1 {
				t.Fatalf("seed %d: reader %d applied %d fetch&xors at seq %d", seed, k.reader, n, k.seq)
			}
		}
	}
}
