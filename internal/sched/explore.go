package sched

import "fmt"

// Explore enumerates schedules of a scenario exhaustively, depth-first: every
// run replays the scenario from scratch under a forced prefix of scheduling
// decisions, extends it greedily, and backtracks over the deepest decision
// with an untried alternative. For small scenarios this covers *every*
// interleaving of shared-memory primitives, turning the linearizability
// checker into a bounded model checker.
//
// The scenario callback must build a fresh system (object, handles, process
// functions) around the provided scheduler and run it, returning an error if
// an invariant failed; Explore stops at the first failing schedule.
//
// maxRuns caps the number of schedules; Explore returns the number of runs
// performed and whether the tree was exhausted within the cap.
func Explore(scenario func(s *Scheduler) error, maxRuns int) (runs int, exhausted bool, err error) {
	prefix := []int{}
	for runs < maxRuns {
		policy := &explorePolicy{prefix: prefix}
		s := New(policy)
		if err := scenario(s); err != nil {
			return runs + 1, false, fmt.Errorf("sched: schedule %v: %w", policy.taken, err)
		}
		runs++

		// Backtrack: find the deepest decision with an untried
		// alternative and advance it.
		next := nextPrefix(policy.decisions)
		if next == nil {
			return runs, true, nil
		}
		prefix = next
	}
	return runs, false, nil
}

// decision records one choice point: the sorted ready set and which index was
// taken.
type decision struct {
	ready []int
	taken int // index into ready
}

// explorePolicy follows a forced prefix of pids, then always takes the first
// ready process, recording every decision.
type explorePolicy struct {
	prefix    []int
	pos       int
	decisions []decision
	taken     []int
}

// Pick implements Policy.
func (p *explorePolicy) Pick(ready []int) int {
	takenIdx := 0
	if p.pos < len(p.prefix) {
		want := p.prefix[p.pos]
		for i, pid := range ready {
			if pid == want {
				takenIdx = i
				break
			}
		}
		// If the forced pid is not ready the tree shape changed between
		// replays, which would mean the scenario is nondeterministic;
		// falling back to the first ready pid keeps exploration sound
		// (it still enumerates the actual tree).
	}
	p.pos++
	cp := make([]int, len(ready))
	copy(cp, ready)
	p.decisions = append(p.decisions, decision{ready: cp, taken: takenIdx})
	p.taken = append(p.taken, ready[takenIdx])
	return ready[takenIdx]
}

// nextPrefix returns the forced-pid prefix of the lexicographically next
// unexplored schedule, or nil when the tree is exhausted.
func nextPrefix(decisions []decision) []int {
	for i := len(decisions) - 1; i >= 0; i-- {
		d := decisions[i]
		if d.taken+1 < len(d.ready) {
			prefix := make([]int, 0, i+1)
			for _, prev := range decisions[:i] {
				prefix = append(prefix, prev.ready[prev.taken])
			}
			return append(prefix, d.ready[d.taken+1])
		}
	}
	return nil
}
