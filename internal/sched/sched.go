// Package sched provides a deterministic scheduler for controlled-
// interleaving tests. Processes run as goroutines whose probes block at every
// primitive step (the Invoke event); the scheduler grants steps one at a
// time, so the interleaving of shared-memory primitives — the step
// granularity of the paper's model — is fully controlled and reproducible
// from a seed or an explicit script.
package sched

import (
	"fmt"
	mathrand "math/rand/v2"
	"sort"

	"auditreg/internal/probe"
)

// Policy picks the next process to step among the ready ones.
type Policy interface {
	// Pick chooses one pid from ready (sorted ascending, non-empty).
	Pick(ready []int) int
}

// RandomPolicy picks uniformly with a seeded generator.
type RandomPolicy struct {
	rng *mathrand.Rand
}

// NewRandomPolicy returns a seeded random policy.
func NewRandomPolicy(seed uint64) *RandomPolicy {
	return &RandomPolicy{rng: mathrand.New(mathrand.NewPCG(seed, 0x9d))}
}

// Pick implements Policy.
func (p *RandomPolicy) Pick(ready []int) int { return ready[p.rng.IntN(len(ready))] }

// RoundRobinPolicy cycles through pids in ascending order.
type RoundRobinPolicy struct {
	last int
}

// Pick implements Policy.
func (p *RoundRobinPolicy) Pick(ready []int) int {
	for _, pid := range ready {
		if pid > p.last {
			p.last = pid
			return pid
		}
	}
	p.last = ready[0]
	return ready[0]
}

// ScriptPolicy follows an explicit pid script, falling back to the lowest
// ready pid when the scripted pid is not ready or the script is exhausted.
// It makes targeted adversarial interleavings reproducible in tests.
type ScriptPolicy struct {
	script []int
	pos    int
}

// NewScriptPolicy returns a policy following script.
func NewScriptPolicy(script ...int) *ScriptPolicy {
	cp := make([]int, len(script))
	copy(cp, script)
	return &ScriptPolicy{script: cp}
}

// Pick implements Policy.
func (p *ScriptPolicy) Pick(ready []int) int {
	for p.pos < len(p.script) {
		want := p.script[p.pos]
		p.pos++
		for _, pid := range ready {
			if pid == want {
				return pid
			}
		}
	}
	return ready[0]
}

// Scheduler serializes the primitive steps of a set of processes.
// Construct with New; run one workload with Run. A Scheduler is single-use.
type Scheduler struct {
	policy   Policy
	announce chan int
	done     chan int
	grants   map[int]chan struct{}
	steps    int
}

// New returns a scheduler with the given policy.
func New(policy Policy) *Scheduler {
	return &Scheduler{
		policy:   policy,
		announce: make(chan int),
		done:     make(chan int),
		grants:   make(map[int]chan struct{}),
	}
}

// Probe returns the instrumentation hook for process pid. Attach it to the
// process's handles (core.WithProbe); each primitive then waits for a grant.
// Probes may be composed with others by the caller.
func (s *Scheduler) Probe(pid int) probe.Probe {
	gate := make(chan struct{})
	s.grants[pid] = gate
	return func(e probe.Event) {
		if e.Kind != probe.Invoke {
			return
		}
		s.announce <- pid
		<-gate
	}
}

// Steps returns the number of primitive steps granted during Run.
func (s *Scheduler) Steps() int { return s.steps }

// Run drives the processes to completion under the scheduler's policy. Every
// pid in procs must have had Probe(pid) attached to the handles its function
// uses; a process that performs no primitive step is also handled.
func (s *Scheduler) Run(procs map[int]func()) error {
	for pid := range procs {
		if _, ok := s.grants[pid]; !ok {
			return fmt.Errorf("sched: process %d has no probe attached", pid)
		}
	}
	running := 0
	for pid, fn := range procs {
		pid, fn := pid, fn
		running++
		go func() {
			fn()
			s.done <- pid
		}()
	}

	var ready []int
	for running > 0 || len(ready) > 0 {
		// Drain state changes until every live process is either done
		// or parked at a primitive.
		for running > 0 {
			select {
			case pid := <-s.announce:
				ready = append(ready, pid)
				running--
			case <-s.done:
				running--
			}
		}
		if len(ready) == 0 {
			break
		}
		sort.Ints(ready)
		pick := s.policy.Pick(ready)
		for i, pid := range ready {
			if pid == pick {
				ready = append(ready[:i], ready[i+1:]...)
				break
			}
		}
		s.steps++
		running++ // the granted process is running again
		s.grants[pick] <- struct{}{}
	}
	return nil
}
