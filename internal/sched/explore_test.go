package sched_test

import (
	"fmt"
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/history"
	"auditreg/internal/linearizability"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/sched"
)

// TestExploreEnumeratesAllInterleavings: two processes with 2 and 1 steps
// have C(3,1) = 3 interleavings; with a and b steps, C(a+b, a).
func TestExploreEnumeratesAllInterleavings(t *testing.T) {
	t.Parallel()
	type stepper struct {
		steps int
	}
	cases := []struct {
		a, b int
		want int // C(a+b, a)
	}{
		{1, 1, 2},
		{2, 1, 3},
		{2, 2, 6},
		{3, 2, 10},
	}
	for _, c := range cases {
		seen := make(map[string]bool)
		scenario := func(s *sched.Scheduler) error {
			var trace string
			mkProc := func(pid int, steps int) func() {
				gate := s.Probe(pid)
				return func() {
					for i := 0; i < steps; i++ {
						gate(probeInvoke(pid))
						trace += fmt.Sprint(pid)
					}
				}
			}
			if err := s.Run(map[int]func(){
				1: mkProc(1, c.a),
				2: mkProc(2, c.b),
			}); err != nil {
				return err
			}
			seen[trace] = true
			return nil
		}
		runs, exhausted, err := sched.Explore(scenario, 1000)
		if err != nil {
			t.Fatalf("Explore: %v", err)
		}
		if !exhausted {
			t.Fatalf("(%d,%d): not exhausted in %d runs", c.a, c.b, runs)
		}
		if len(seen) != c.want {
			t.Fatalf("(%d,%d): saw %d distinct interleavings, want %d: %v", c.a, c.b, len(seen), c.want, seen)
		}
	}
}

// probeInvoke builds a minimal Invoke event for stepping a gate manually.
func probeInvoke(pid int) probe.Event {
	return probe.Event{PID: pid, Kind: probe.Invoke}
}

// TestExploreFindsInjectedBug: exploration reports the failing schedule.
func TestExploreFindsInjectedBug(t *testing.T) {
	t.Parallel()
	count := 0
	scenario := func(s *sched.Scheduler) error {
		g1, g2 := s.Probe(1), s.Probe(2)
		order := ""
		if err := s.Run(map[int]func(){
			1: func() { g1(probeInvoke(1)); order += "a" },
			2: func() { g2(probeInvoke(2)); order += "b" },
		}); err != nil {
			return err
		}
		count++
		if order == "ba" {
			return fmt.Errorf("injected failure")
		}
		return nil
	}
	_, _, err := sched.Explore(scenario, 100)
	if err == nil {
		t.Fatal("Explore missed the injected failure")
	}
}

// TestExploreRegisterLinearizableExhaustive is the strongest correctness test
// in the repository: for a small scenario (one reader performing a read, one
// writer performing a write, one auditor performing an audit on Algorithm 1),
// EVERY interleaving of shared-memory primitives is executed and every
// resulting history is checked against the auditable-register specification.
func TestExploreRegisterLinearizableExhaustive(t *testing.T) {
	t.Parallel()
	scenario := func(s *sched.Scheduler) error {
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(1), 1)
		if err != nil {
			return err
		}
		reg, err := core.New(1, uint64(0), pads)
		if err != nil {
			return err
		}
		rd, err := reg.Reader(0, core.WithProbe(s.Probe(0)))
		if err != nil {
			return err
		}
		w := reg.Writer(core.WithProbe(s.Probe(100)))
		aud := reg.Auditor(core.WithProbe(s.Probe(200)))

		var rec history.Recorder
		if err := s.Run(map[int]func(){
			0: func() {
				p := rec.Begin(0, "read", 0)
				p.SetOut(rd.Read()).End()
			},
			100: func() {
				p := rec.Begin(100, "write", 5)
				if err := w.Write(5); err != nil {
					panic(err)
				}
				p.End()
			},
			200: func() {
				p := rec.Begin(200, "audit", 0)
				rep, err := aud.Audit()
				if err != nil {
					panic(err)
				}
				pairs := make([]history.Pair, 0, rep.Len())
				for _, e := range rep.Entries() {
					pairs = append(pairs, history.Pair{Reader: e.Reader, Value: e.Value})
				}
				p.SetOutSet(pairs).End()
			},
		}); err != nil {
			return err
		}
		res, err := linearizability.Check(linearizability.AuditableRegisterModel{Initial: 0}, rec.Ops())
		if err != nil {
			return err
		}
		if !res.Ok {
			return fmt.Errorf("history not linearizable: %v", rec.Ops())
		}
		return nil
	}

	runs, exhausted, err := sched.Explore(scenario, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted {
		t.Fatalf("schedule tree not exhausted within %d runs", runs)
	}
	t.Logf("exhaustively explored %d schedules", runs)
	if runs < 50 {
		t.Fatalf("suspiciously few schedules explored: %d", runs)
	}
}

// TestExploreTwoReadersWriterExhaustive: both readers and a writer, checking
// audit semantics of the final state for every interleaving.
func TestExploreTwoReadersWriterExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration of ~140k schedules; skipped with -short")
	}
	t.Parallel()
	scenario := func(s *sched.Scheduler) error {
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(2), 2)
		if err != nil {
			return err
		}
		reg, err := core.New(2, uint64(0), pads)
		if err != nil {
			return err
		}
		rd0, err := reg.Reader(0, core.WithProbe(s.Probe(0)))
		if err != nil {
			return err
		}
		rd1, err := reg.Reader(1, core.WithProbe(s.Probe(1)))
		if err != nil {
			return err
		}
		w := reg.Writer(core.WithProbe(s.Probe(100)))

		var v0, v1 uint64
		if err := s.Run(map[int]func(){
			0:   func() { v0 = rd0.Read() },
			1:   func() { v1 = rd1.Read() },
			100: func() { _ = w.Write(7) },
		}); err != nil {
			return err
		}
		// Quiescent audit equivalence for this schedule.
		rep, err := reg.Auditor().Audit()
		if err != nil {
			return err
		}
		if !rep.Contains(0, v0) || !rep.Contains(1, v1) {
			return fmt.Errorf("audit %v misses reads (0,%d) or (1,%d)", rep, v0, v1)
		}
		if rep.Len() != 2 {
			return fmt.Errorf("audit %v has phantom entries", rep)
		}
		return nil
	}
	runs, exhausted, err := sched.Explore(scenario, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted {
		t.Fatalf("schedule tree not exhausted within %d runs", runs)
	}
	t.Logf("exhaustively explored %d schedules", runs)
}
