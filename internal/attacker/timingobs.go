package attacker

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/internal/shard"
	"auditreg/server"
	"auditreg/store"
)

// Timing observer (E18, timing channel). The paper's silent read is the
// whole point of the construction: a read that finds the tracking state
// already current touches no shared state, so concurrent writers proceed as
// if it never happened. This observer checks the claim with a stopwatch
// instead of a memory model: a victim writer measures its own write
// latencies while a curious reader polls — silently — some other object,
// and the distinguisher asks whether the writer can tell from its latency
// distribution that the poller exists.
//
// The positive control replaces the silent poller with the loudest one the
// protocol allows: a tight-loop reader of the object being written. Every
// write renumbers the sequence, so each poll turns into an effective fetch
// — fetch&xor on the written object's own shared state, an announce, WAL
// records — all serialized on the victim's own shard executor. That must be
// visible, or the stopwatch has no resolution.

const (
	// timingWrites is the number of write latencies sampled per trial.
	timingWrites = 24
	// timingPollGap paces the honest silent poller at a realistic curious-
	// reader rate (~1k polls/s). The claim under test is that a silent read
	// touches no shared state, not that the server hides CPU load — a
	// tight-loop poller of ANY request kind is visible to a stopwatch simply
	// by occupying the machine, which is why the lab paces the honest poller
	// and routes it to a different shard executor than the victim (see
	// NewTimingLab), leaving shared-state contention as the only signal the
	// game can carry.
	timingPollGap = time.Millisecond
)

// timingWriteTarget is the victim's object. The poll target is picked so
// its name hashes to a different shard executor than the victim's whenever
// the server runs more than one (executor = hash & pow2mask, so differing in
// the hash's low bit separates them at every executor count > 1): the honest
// game must not measure executor-queue sharing between two unrelated
// objects, which any two requests exhibit, read or not.
const timingWriteTarget = "e18/timing/write-target"

func timingPollTarget() string {
	want := shard.Hash(timingWriteTarget)&1 ^ 1
	for i := 0; ; i++ {
		name := fmt.Sprintf("e18/timing/poll-target-%d", i)
		if shard.Hash(name)&1 == want {
			return name
		}
	}
}

// TimingLab drives the timing games against a live auditd, remote (addr) or
// in-process (addr == "").
type TimingLab struct {
	srv    *server.Server
	writer *client.Client
	poller *client.Client
	wObj   *client.Object // write target
	pObj   *client.Object // silent-poll target (distinct object)
	ctr    uint64
}

// NewTimingLab dials addr, or boots an in-process auditd when addr is empty
// (volatile — timing needs no data directory), and warms both targets.
func NewTimingLab(addr string, seed uint64) (*TimingLab, error) {
	l := &TimingLab{}
	if addr == "" {
		srv, err := server.New(server.Config{Key: auditreg.KeyFromSeed(seed), Readers: 4})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		l.srv = srv
		go srv.Serve(ln)
		addr = ln.Addr().String()
	}
	var err error
	if l.writer, err = client.Dial(addr, client.WithConns(1)); err != nil {
		l.Close()
		return nil, err
	}
	// The poller gets its own connection pool: the honest-but-curious reader
	// is a separate process, and sharing the writer's pipe would measure
	// head-of-line blocking in the lab's own client, not the server.
	if l.poller, err = client.Dial(addr, client.WithConns(1)); err != nil {
		l.Close()
		return nil, err
	}
	if l.wObj, err = l.writer.Open(timingWriteTarget, store.Register); err != nil {
		l.Close()
		return nil, err
	}
	if l.pObj, err = l.poller.Open(timingPollTarget(), store.Register); err != nil {
		l.Close()
		return nil, err
	}
	// Warm both objects: a write each, and a first (effective) read of the
	// poll target so the poller's subsequent reads are silent.
	if err = l.wObj.Write(1); err != nil {
		l.Close()
		return nil, err
	}
	if err = l.pObj.Write(1); err != nil {
		l.Close()
		return nil, err
	}
	if _, err = l.pObj.Read(0); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// Close tears the lab down.
func (l *TimingLab) Close() {
	if l.writer != nil {
		l.writer.Close()
	}
	if l.poller != nil {
		l.poller.Close()
	}
	if l.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		l.srv.Shutdown(ctx)
	}
}

func timingFeatures() []string {
	return []string{"mean-ns", "p50-ns", "p90-ns", "min-ns"}
}

// SilentRead is the honest game: the secret is whether a paced silent-read
// poller runs against a *different* object while the victim writes. Silence
// means the writer's latency distribution cannot tell.
func (l *TimingLab) SilentRead() Distinguisher {
	return Distinguisher{
		Name:     "timing/silent-read",
		Features: timingFeatures(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(b, l.pollSilent)
		},
	}
}

// EffectiveRead is the positive control: the poller tight-loops effective
// reads of the write target itself, contending on its shared state and its
// shard executor. The stopwatch must see this.
func (l *TimingLab) EffectiveRead() Distinguisher {
	return Distinguisher{
		Name:     "timing/effective-read+loud",
		Control:  true,
		Features: timingFeatures(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(b, l.pollEffective)
		},
	}
}

// trial measures timingWrites write latencies; with b == 1 the given poller
// runs concurrently until the measurements end.
func (l *TimingLab) trial(b int, poll func(stop <-chan struct{}) error) ([]float64, error) {
	stop := make(chan struct{})
	pollErr := make(chan error, 1)
	if b == 1 {
		go func() { pollErr <- poll(stop) }()
	}

	lats := make([]float64, 0, timingWrites)
	for k := 0; k < timingWrites; k++ {
		l.ctr++
		v := 0x7131_0000_0000 + l.ctr
		t0 := time.Now()
		err := l.wObj.Write(v)
		lat := time.Since(t0)
		if err != nil {
			close(stop)
			return nil, err
		}
		lats = append(lats, float64(lat.Nanoseconds()))
	}

	close(stop)
	if b == 1 {
		if err := <-pollErr; err != nil {
			return nil, err
		}
	}
	return timingFeaturesOf(lats), nil
}

// pollSilent reads the poll target — a stable object the poller's cache is
// already current for, so every round is a silent fetch — paced at
// timingPollGap, until stopped.
func (l *TimingLab) pollSilent(stop <-chan struct{}) error {
	tick := time.NewTicker(timingPollGap)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-tick.C:
			if _, err := l.pObj.Read(0); err != nil {
				return err
			}
		}
	}
}

// pollEffective tight-loops reads of the write target itself; the victim's
// writes keep renumbering it, so the reads keep turning effective.
func (l *TimingLab) pollEffective(stop <-chan struct{}) error {
	// Its own handle, so the poller's cache state doesn't alias the writer's.
	obj, err := l.poller.Open(timingWriteTarget, store.Register)
	if err != nil {
		return err
	}
	for {
		select {
		case <-stop:
			return nil
		default:
			if _, err := obj.Read(1); err != nil {
				return err
			}
		}
	}
}

// timingFeaturesOf reduces one trial's latency samples to the observer's
// summary statistics.
func timingFeaturesOf(lats []float64) []float64 {
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	n := len(sorted)
	return []float64{
		sum / float64(n),
		sorted[n/2],
		sorted[n*9/10],
		sorted[0],
	}
}
