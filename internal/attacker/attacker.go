// Package attacker implements the paper's honest-but-curious attacker
// (Section 2, "Attacks") as executable experiments. An attacker adheres to
// the protocol but may stop an operation prematurely and perform arbitrary
// local computation on the responses it obtained from base objects. Here
// those responses are captured through the probe instrumentation, which sees
// exactly what the attacking process's own primitives returned — never the
// private state of other processes.
//
// Three attacks are implemented:
//
//   - crash-simulating read (Section 3.1): stop right after learning the
//     value; against the strawman this access is invisible to audits, against
//     Algorithm 1 the access is already logged by the very step that revealed
//     the value;
//   - reader-set inference (Lemma 7): a curious reader tries to decide
//     whether another reader read the current value from the tracking bits it
//     observed; plaintext bits make this certain, one-time-pad bits make it a
//     coin flip;
//   - max-register gap inference (Lemma 38): a curious reader of the max
//     register tries to deduce that an intermediate value was written from
//     sequence-number gaps; constant nonces make this certain, random nonces
//     destroy the signal.
package attacker

import (
	"fmt"
	mathrand "math/rand/v2"

	"auditreg/internal/baseline"
	"auditreg/internal/core"
	"auditreg/internal/maxreg"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/shmem"
)

// abort is the sentinel panic used to stop an operation mid-flight, emulating
// a process that halts between two primitive steps.
type abort struct{}

// EffectiveRead performs reader j's read protocol against reg but stops
// immediately after the fetch&xor on R returns — the moment the read becomes
// effective (Claim 4). It returns the value the attacker learned. The handle
// is discarded afterwards, like a crashed process's local state.
func EffectiveRead[V comparable](reg *core.Register[V], j int) (V, error) {
	var (
		learned V
		got     bool
	)
	rd, err := reg.Reader(j, core.WithProbe(func(e probe.Event) {
		if e.Prim == probe.RXor && e.Kind == probe.Return {
			t, ok := e.Detail.(shmem.Triple[V])
			if !ok {
				panic(fmt.Sprintf("attacker: unexpected probe detail %T", e.Detail))
			}
			learned, got = t.Val, true
			panic(abort{}) // stop prematurely: no helping CAS, no local caching
		}
	}))
	if err != nil {
		return learned, err
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abort); !ok {
					panic(r)
				}
			}
		}()
		rd.Read()
	}()
	if !got {
		return learned, fmt.Errorf("attacker: read returned without touching R (silent); no value learned")
	}
	return learned, nil
}

// CrashSimulationResult reports experiment E3.
type CrashSimulationResult struct {
	// Value is the register value the attacker learned in both worlds.
	Value uint64
	// CoreAudited is whether Algorithm 1's audit reported the access.
	CoreAudited bool
	// StrawmanAudited is whether the strawman's audit reported the access.
	StrawmanAudited bool
}

// RunCrashSimulation performs the crash-simulating attack against both
// Algorithm 1 and the strawman, then audits both. The attacker is reader j=0
// out of m; the register holds `value`.
func RunCrashSimulation(m int, value uint64, seed uint64) (CrashSimulationResult, error) {
	var res CrashSimulationResult

	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), m)
	if err != nil {
		return res, err
	}
	reg, err := core.New(m, value, pads)
	if err != nil {
		return res, err
	}
	learned, err := EffectiveRead(reg, 0)
	if err != nil {
		return res, err
	}
	res.Value = learned
	rep, err := reg.Auditor().Audit()
	if err != nil {
		return res, err
	}
	res.CoreAudited = rep.Contains(0, learned)

	straw, err := baseline.NewStrawman(m, value)
	if err != nil {
		return res, err
	}
	peeked := straw.Peek() // learns the value, touches nothing
	srep, err := straw.Audit()
	if err != nil {
		return res, err
	}
	res.StrawmanAudited = srep.Contains(0, peeked)
	return res, nil
}

// InferenceResult reports the statistics of a guessing attack.
type InferenceResult struct {
	// Trials is the number of independent trials.
	Trials int
	// Correct is how many times the attacker guessed right.
	Correct int
	// Claims is how many times the attacker asserted the secret event
	// happened.
	Claims int
	// FalseClaims is how many of those assertions were wrong. A sound
	// inference (the paper's leak) has FalseClaims == 0; the one-time
	// pad / nonce machinery makes the inference unsound.
	FalseClaims int
}

// Rate returns the attacker's guessing accuracy.
func (r InferenceResult) Rate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Trials)
}

// FalseClaimRate returns the fraction of the attacker's positive assertions
// that were wrong.
func (r InferenceResult) FalseClaimRate() float64 {
	if r.Claims == 0 {
		return 0
	}
	return float64(r.FalseClaims) / float64(r.Claims)
}

// RunReaderSetInference measures experiment E4: in each trial, reader 1 reads
// the current value with probability 1/2; then the curious reader 0 performs
// its own read and — from the tracking bits its fetch&xor returned — guesses
// whether reader 1 read. Against the strawman the bits are plaintext and the
// attacker is always right; against Algorithm 1 the bits are one-time-pad
// encrypted and the best strategy is a coin flip.
func RunReaderSetInference(trials int, seed uint64) (coreRes, strawRes InferenceResult, err error) {
	rng := mathrand.New(mathrand.NewPCG(seed, 0xabcdef))
	const m = 2

	for trial := 0; trial < trials; trial++ {
		victimReads := rng.IntN(2) == 1

		// --- Algorithm 1 world ---
		pads, perr := otp.NewKeyedPads(otp.KeyFromSeed(seed+uint64(trial)), m)
		if perr != nil {
			return coreRes, strawRes, perr
		}
		reg, rerr := core.New(m, uint64(41), pads)
		if rerr != nil {
			return coreRes, strawRes, rerr
		}
		if victimReads {
			victim, verr := reg.Reader(1)
			if verr != nil {
				return coreRes, strawRes, verr
			}
			victim.Read()
		}
		var observed uint64
		attacker, aerr := reg.Reader(0, core.WithProbe(func(e probe.Event) {
			if e.Prim == probe.RXor && e.Kind == probe.Return {
				observed = e.Detail.(shmem.Triple[uint64]).Bits
			}
		}))
		if aerr != nil {
			return coreRes, strawRes, aerr
		}
		attacker.Read()
		// Best-effort guess without the pad: read the victim's tracking
		// bit as if the pad were zero.
		guess := observed&(1<<1) != 0
		coreRes.Trials++
		if guess {
			coreRes.Claims++
			if !victimReads {
				coreRes.FalseClaims++
			}
		}
		if guess == victimReads {
			coreRes.Correct++
		}

		// --- Strawman world ---
		straw, serr := baseline.NewStrawman(m, uint64(41))
		if serr != nil {
			return coreRes, strawRes, serr
		}
		if victimReads {
			straw.Read(1)
		}
		_, plaintext := straw.Read(0)
		sguess := plaintext&(1<<1) != 0
		strawRes.Trials++
		if sguess {
			strawRes.Claims++
			if !victimReads {
				strawRes.FalseClaims++
			}
		}
		if sguess == victimReads {
			strawRes.Correct++
		}
	}
	return coreRes, strawRes, nil
}

// RunMaxGapInference measures experiment E5 against the auditable max
// register. In each trial the writer first writes v, the attacker reads
// (observing sequence number s), then the writer either
//
//	case A: writes v+1 then v+2 (the intermediate value exists), or
//	case B: writes v+2 twice     (no intermediate value),
//
// and the attacker reads again, observing v+2 and sequence number s'. The
// attacker claims "v+1 was written" iff s'-s >= 2.
//
// With constant nonces (the ablation) the duplicate in case B never raises
// the register, so the gap separates the cases perfectly: accuracy 1.0 and no
// false claims — the inference is sound, which is precisely the leak. With
// random nonces the duplicate consumes a sequence number whenever its nonce
// is larger, so case B shows the same gap half the time: the attacker's
// claims acquire false positives, realizing Lemma 38's indistinguishable
// execution in which no writeMax(v+1) occurs.
func RunMaxGapInference(trials int, seed uint64, nonced bool) (InferenceResult, error) {
	var res InferenceResult
	rng := mathrand.New(mathrand.NewPCG(seed, 0x5eed))
	const m = 1

	for trial := 0; trial < trials; trial++ {
		intermediateWritten := rng.IntN(2) == 1

		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed+uint64(trial)), m)
		if err != nil {
			return res, err
		}
		reg, err := maxreg.NewAuditable(m, uint64(0), func(a, b uint64) bool { return a < b }, pads)
		if err != nil {
			return res, err
		}
		var nonces otp.NonceSource = otp.FixedNonce(0)
		if nonced {
			nonces = otp.NewSeededNonces(seed+uint64(trial), 1)
		}
		w, err := reg.Writer(nonces)
		if err != nil {
			return res, err
		}

		v := uint64(10)
		if err := w.WriteMax(v); err != nil {
			return res, err
		}

		var seqs []uint64
		attacker, err := reg.Reader(0, core.WithProbe(func(e probe.Event) {
			if e.Prim == probe.RXor && e.Kind == probe.Return {
				seqs = append(seqs, e.Detail.(shmem.Triple[maxreg.Nonced[uint64]]).Seq)
			}
		}))
		if err != nil {
			return res, err
		}
		attacker.Read() // observes v and its sequence number

		if intermediateWritten {
			if err := w.WriteMax(v + 1); err != nil {
				return res, err
			}
			if err := w.WriteMax(v + 2); err != nil {
				return res, err
			}
		} else {
			if err := w.WriteMax(v + 2); err != nil {
				return res, err
			}
			if err := w.WriteMax(v + 2); err != nil { // duplicate value, fresh nonce
				return res, err
			}
		}
		attacker.Read() // observes v+2 and its sequence number

		if len(seqs) != 2 {
			return res, fmt.Errorf("attacker expected 2 direct reads, saw %d", len(seqs))
		}
		guess := seqs[1]-seqs[0] >= 2
		res.Trials++
		if guess {
			res.Claims++
			if !intermediateWritten {
				res.FalseClaims++
			}
		}
		if guess == intermediateWritten {
			res.Correct++
		}
	}
	return res, nil
}
