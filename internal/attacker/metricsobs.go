package attacker

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/internal/telem"
	"auditreg/server"
	"auditreg/store"
)

// Metrics-endpoint observer (E18, metrics channel). The -metrics-addr
// endpoint is auditd's richest telemetry surface — every counter STATS
// exports plus per-stage latency histograms — and, like STATS, it is
// unauthenticated by design: Prometheus scrapes it. The observer scrapes the
// full exposition before and after a victim's activity window and asks what
// the per-sample deltas give away.
//
// The channel's contract is the telemetry leak contract (DESIGN.md,
// "Observability"): everything aggregate-only, latencies quantized to
// power-of-two buckets, and no per-object, per-reader, or per-connection
// dimension anywhere. The honest games encode the two attributions the
// contract forbids: WHICH object a read touched (both branches perform one
// silent read, differing only in the target) and WHICH reader principal
// performed it. The positive control scrapes a deliberately leaky daemon
// (server.Config.LeakyPerObjectReads: a per-object read counter, exactly
// the "harmless" label an operator might add) and must fire — proving the
// observer can see a single-label violation at the configured trial count.

// Fixed object names: the trials reuse them, so the probed feature vector —
// fixed at lab construction — includes whatever per-object series a leaky
// exposition grows for them.
const (
	metricsVictim = "e18/metrics/victim"
	metricsDecoy  = "e18/metrics/decoy"
)

// metricsStack is one daemon under observation: its wire client, its
// metrics endpoint, the two warmed objects, and the probed feature keys.
type metricsStack struct {
	srv  *server.Server // nil when remote
	hsrv *http.Server   // nil when remote
	cl   *client.Client
	url  string
	keys []string // probed metric sample keys, fixed across trials

	victim, decoy *client.Object
}

// MetricsLab drives the games against a live metrics endpoint. The honest
// stack is remote when both addr (wire) and metricsURL (HTTP) are given,
// in-process otherwise; the leaky control stack is always in-process — the
// planted per-object counter must never run on a shared daemon.
type MetricsLab struct {
	honest *metricsStack
	leaky  *metricsStack
}

// NewMetricsLab builds both stacks and warms them: every object written
// once and read once per reader principal the games use, so all trial reads
// are silent — the aggregate counters then move identically on both
// branches of every honest game, and attribution is the only signal left to
// find.
func NewMetricsLab(addr, metricsURL string, seed uint64) (*MetricsLab, error) {
	l := &MetricsLab{}
	var err error
	if l.honest, err = newMetricsStack(addr, metricsURL, seed, false); err != nil {
		return nil, err
	}
	if l.leaky, err = newMetricsStack("", "", seed+1, true); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// newMetricsStack dials a remote stack or boots an in-process one (volatile
// — the metrics games need no data directory), warms the fixed objects, and
// probes the endpoint once to fix the feature vector.
func newMetricsStack(addr, metricsURL string, seed uint64, leaky bool) (*metricsStack, error) {
	st := &metricsStack{url: metricsURL}
	if addr == "" || metricsURL == "" {
		srv, err := server.New(server.Config{
			Key:                 auditreg.KeyFromSeed(seed),
			Readers:             4,
			LeakyPerObjectReads: leaky,
		})
		if err != nil {
			return nil, err
		}
		st.srv = srv
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			st.Close()
			return nil, err
		}
		go srv.Serve(ln)
		addr = ln.Addr().String()
		mln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			st.Close()
			return nil, err
		}
		st.hsrv = &http.Server{Handler: srv.MetricsMux()}
		go st.hsrv.Serve(mln)
		st.url = fmt.Sprintf("http://%s/metrics", mln.Addr())
	}
	cl, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		st.Close()
		return nil, err
	}
	st.cl = cl

	// Warm: one write per object, then one read per (object, reader) the
	// games use, so every trial read is silent — and so a leaky exposition
	// has already grown its per-object series before the probe below fixes
	// the feature vector.
	if st.victim, err = cl.Open(metricsVictim, store.Register); err != nil {
		st.Close()
		return nil, err
	}
	if st.decoy, err = cl.Open(metricsDecoy, store.Register); err != nil {
		st.Close()
		return nil, err
	}
	for _, obj := range []*client.Object{st.victim, st.decoy} {
		if err := obj.Write(0x3E7_0000 + seed); err != nil {
			st.Close()
			return nil, err
		}
		for reader := 0; reader < 2; reader++ {
			if _, err := obj.Read(reader); err != nil {
				st.Close()
				return nil, err
			}
		}
	}

	samples, err := st.scrape()
	if err != nil {
		st.Close()
		return nil, err
	}
	st.keys = telem.SortedKeys(samples)
	return st, nil
}

// Close tears down whatever the stack owns.
func (st *metricsStack) Close() {
	if st.cl != nil {
		st.cl.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if st.hsrv != nil {
		st.hsrv.Shutdown(ctx)
	}
	if st.srv != nil {
		st.srv.Shutdown(ctx)
	}
}

// Close tears the lab down.
func (l *MetricsLab) Close() {
	if l.honest != nil {
		l.honest.Close()
	}
	if l.leaky != nil {
		l.leaky.Close()
	}
}

// scrape fetches and parses one exposition.
func (st *metricsStack) scrape() (map[string]float64, error) {
	hc := http.Client{Timeout: 10 * time.Second}
	resp, err := hc.Get(st.url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: status %s", st.url, resp.Status)
	}
	return telem.ParseText(resp.Body)
}

// trial scrapes, runs one activity window, scrapes again, and returns the
// per-sample deltas over the probed key set (samples that appear later read
// as zero on both scrapes, hence zero delta).
func (st *metricsStack) trial(window func() error) ([]float64, error) {
	before, err := st.scrape()
	if err != nil {
		return nil, err
	}
	if err := window(); err != nil {
		return nil, err
	}
	after, err := st.scrape()
	if err != nil {
		return nil, err
	}
	feats := make([]float64, len(st.keys))
	for i, key := range st.keys {
		feats[i] = after[key] - before[key]
	}
	return feats, nil
}

// Occurrence is the honest object-attribution game: one silent read happens
// either way; the secret is whether it touched the victim or the decoy. Any
// sample whose delta depends on WHICH object was read is a leak — this is
// exactly the game the planted per-object counter loses.
func (l *MetricsLab) Occurrence() Distinguisher {
	return Distinguisher{
		Name:     "metrics/read-occurrence",
		Features: l.honest.Features(),
		Trial: func(b int) ([]float64, error) {
			return l.honest.trial(func() error {
				obj := l.honest.decoy
				if b == 1 {
					obj = l.honest.victim
				}
				_, err := obj.Read(0)
				return err
			})
		},
	}
}

// Identity is the honest reader-attribution game: the victim is read either
// way; the secret is which reader principal did it. Both branches are one
// silent read, so every aggregate sample must sit at chance.
func (l *MetricsLab) Identity() Distinguisher {
	return Distinguisher{
		Name:     "metrics/reader-identity",
		Features: l.honest.Features(),
		Trial: func(b int) ([]float64, error) {
			return l.honest.trial(func() error {
				_, err := l.honest.victim.Read(b)
				return err
			})
		},
	}
}

// OccurrenceLeaky is the positive control: the occurrence game against the
// in-process daemon running with the planted per-object read counter. The
// leaky sample auditreg_leaky_object_reads_total{object="…/victim"} moves
// only when the victim is read, so the observer must win — or the lab has
// no power against single-label contract violations.
func (l *MetricsLab) OccurrenceLeaky() Distinguisher {
	return Distinguisher{
		Name:     "metrics/read-occurrence+objcount",
		Control:  true,
		Features: l.leaky.Features(),
		Trial: func(b int) ([]float64, error) {
			return l.leaky.trial(func() error {
				obj := l.leaky.decoy
				if b == 1 {
					obj = l.leaky.victim
				}
				_, err := obj.Read(0)
				return err
			})
		},
	}
}

// Features returns the stack's probed sample keys (the feature vector is
// their per-trial deltas).
func (st *metricsStack) Features() []string {
	return append([]string(nil), st.keys...)
}
