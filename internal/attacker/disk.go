package attacker

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"auditreg"
	"auditreg/persist"
	"auditreg/store"
)

// DiskSweepResult reports experiment E15: a curious party with access to
// auditd's data directory (or a stolen snapshot of it) sweeps every raw byte
// for the plaintext a naive durable log would contain.
type DiskSweepResult struct {
	// FilesScanned and BytesScanned size the sweep.
	FilesScanned int
	BytesScanned int64
	// Findings are plaintext hits in the real data directory. Leak-freedom
	// at rest means zero.
	Findings []persist.Finding
	// SelfCheckFindings are the hits against a deliberately unencrypted
	// shadow of the same records: nonzero, or the sweep proves nothing.
	SelfCheckFindings int
}

// RunDiskSweep drives known traffic — distinctive values, three reader
// principals, a register and a max register, audits, a snapshot, a crash
// and a recovery — through a journaled store rooted at dir, then plays the
// honest-but-curious disk attacker: scan every file for the object names,
// the written values in either byte order, and the (value, reader-set)
// audit rows. It shares its scanner (persist.ScanPlaintext) with persist's
// own leak test and cmd/leakprobe.
func RunDiskSweep(dir string, seed uint64) (DiskSweepResult, error) {
	var res DiskSweepResult
	dataDir := filepath.Join(dir, "data")
	key := auditreg.KeyFromSeed(seed)

	newStore := func() (*store.Store[uint64], error) {
		return store.New[uint64](key,
			store.WithReaders[uint64](4),
			store.WithLess[uint64](func(a, b uint64) bool { return a < b }),
		)
	}
	st, err := newStore()
	if err != nil {
		return res, err
	}
	w, _, err := persist.Open(dataDir, persist.DeriveKey(key), st, persist.Options{SegmentBytes: 4 << 10})
	if err != nil {
		return res, err
	}
	st.SetJournal(w)

	names := []string{"patients/records", "payroll/maximum"}
	kinds := []store.Kind{store.Register, store.MaxRegister}
	var values []uint64
	for i, name := range names {
		obj, err := st.Open(name, kinds[i])
		if err != nil {
			return res, err
		}
		for k := 1; k <= 16; k++ {
			v := 0xC0DE_0000_0000_0000 + uint64(i)<<32 + uint64(k)*0x0107_0b0d
			values = append(values, v)
			if err := obj.Write(v); err != nil {
				return res, err
			}
			for j := 0; j < 3; j++ {
				if _, err := obj.Read(j); err != nil {
					return res, err
				}
			}
		}
	}
	pool, err := st.NewAuditPool()
	if err != nil {
		return res, err
	}
	if err := pool.Flush(); err != nil {
		return res, err
	}
	readerSets := make(map[uint64]uint64)
	for _, name := range names {
		aud, err := st.Audit(name)
		if err != nil {
			return res, err
		}
		for _, e := range aud.Report.Entries() {
			readerSets[e.Value] |= 1 << uint(e.Reader)
		}
	}
	if _, err := w.Snapshot(); err != nil {
		return res, err
	}
	if err := w.Close(); err != nil {
		return res, err
	}
	// A recovery cycle, so recovery-written bytes are swept too.
	st2, err := newStore()
	if err != nil {
		return res, err
	}
	w2, _, err := persist.Open(dataDir, persist.DeriveKey(key), st2, persist.Options{})
	if err != nil {
		return res, err
	}
	if err := w2.Close(); err != nil {
		return res, err
	}

	needles := persist.BuildNeedles(names, values, readerSets)
	findings, files, bytes, err := persist.ScanPlaintext(dataDir, needles)
	if err != nil {
		return res, err
	}
	res.Findings = findings
	res.FilesScanned = files
	res.BytesScanned = bytes

	// Self-check: the same records written in the clear must trip the
	// sweep, or the zero above is meaningless.
	shadow := filepath.Join(dir, "cleartext")
	if err := os.MkdirAll(shadow, 0o700); err != nil {
		return res, err
	}
	var leaky []byte
	for _, name := range names {
		leaky = append(leaky, name...)
	}
	for _, v := range values {
		leaky = binary.BigEndian.AppendUint64(leaky, v)
	}
	for v, readers := range readerSets {
		leaky = binary.BigEndian.AppendUint64(leaky, v)
		leaky = binary.BigEndian.AppendUint64(leaky, readers)
	}
	if err := os.WriteFile(filepath.Join(shadow, "wal-cleartext.seg"), leaky, 0o600); err != nil {
		return res, err
	}
	tripped, _, _, err := persist.ScanPlaintext(shadow, needles)
	if err != nil {
		return res, err
	}
	res.SelfCheckFindings = len(tripped)
	if res.SelfCheckFindings == 0 {
		return res, fmt.Errorf("attacker: disk sweep self-check found nothing in a cleartext log")
	}
	return res, nil
}
