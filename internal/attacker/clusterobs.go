package attacker

import (
	"context"
	"fmt"
	"net"
	"time"

	"auditreg/client"
	"auditreg/cluster"
	"auditreg/internal/ida"
	"auditreg/server"
)

// Per-node cluster observer (E18, dispersal channel). The single-node wire
// observer (wireobs.go) pins the audit channel of one auditd; this lab pins
// the distributed invariant the dispersal cluster adds on top: a curious
// observer tapping ONE node's wire — every SHARE and AUDIT frame that node
// exchanges — learns nothing about read occurrence or reader identity, even
// though that node journals a share of every write and serves a share of
// every read.
//
// The observer here is strictly stronger than the paper's curious server: it
// is handed the combining-matrix row mapping — which Vandermonde row its
// node applies, hence exactly which packed share value the trial's write
// must have produced under that node's pad — so it can locate the audited
// row for the write under test with certainty. Indistinguishability must
// survive that: the row's reader set crosses the wire under the per-audit
// wire.AuditMask stream, and the share itself sits under an independent
// per-(node, object, wid) pad, so locating the row yields masked bits only.
//
// The positive control plays the same games against the frames a leaky node
// would have sent: the captured audit rows with their masks stripped (the
// lab holds the node's store key). With the matrix-row mapping locating the
// row and the mask gone, the tracking bits are plaintext and the harness
// must flag the leak — that is the game's power proof.

// clusterObsNodes/clusterObsF fix the lab geometry: n=4, f=1 gives
// threshold k=2 and 4-byte shares — the smallest geometry where no single
// node's share reconstructs anything and a full wid fits the packed layout.
const (
	clusterObsNodes = 4
	clusterObsF     = 1
)

// ClusterLab hosts an in-process n-node dispersal cluster with a frame tap
// on node 1 plus a cluster client that is both the victim (the dispersed
// writes and reads under test) and the auditor (the merged audit whose
// node-1 exchange is the observed window). One lab serves any number of
// distinguisher runs; trials use fresh objects.
type ClusterLab struct {
	m    cluster.Membership
	srvs []*server.Server
	lns  []net.Listener
	tap  *frameTap
	cc   *cluster.Client
	cod  *ida.Coder
	ctr  int
}

// NewClusterLab starts the lab's daemons and cluster client.
func NewClusterLab(seed uint64) (*ClusterLab, error) {
	l := &ClusterLab{tap: &frameTap{}}
	addrs := make([]string, clusterObsNodes)
	l.lns = make([]net.Listener, clusterObsNodes)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			l.Close()
			return nil, err
		}
		l.lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	l.m = cluster.SeededMembership(addrs, clusterObsF, seed)
	for i := 0; i < clusterObsNodes; i++ {
		cfg := server.Config{
			Key:     l.m.Nodes[i].Key,
			Readers: wireReaders,
			NodeID:  l.m.Nodes[i].ID,
		}
		if i == 0 {
			cfg.FrameTap = l.tap.tap // the observed node
		}
		srv, err := server.New(cfg)
		if err != nil {
			l.Close()
			return nil, err
		}
		l.srvs = append(l.srvs, srv)
		go srv.Serve(l.lns[i])
	}
	cod, err := ida.New(clusterObsNodes, l.m.Threshold())
	if err != nil {
		l.Close()
		return nil, err
	}
	l.cod = cod
	// Single-connection pools: per-conn FIFO makes the drain below airtight
	// and keeps each trial's observation window down to the audit exchange.
	cc, err := cluster.Dial(l.m, cluster.WithClientOptions(func(cluster.Node) []client.Option {
		return []client.Option{client.WithConns(1)}
	}))
	if err != nil {
		l.Close()
		return nil, err
	}
	l.cc = cc
	return l, nil
}

// Close tears the lab down.
func (l *ClusterLab) Close() {
	if l.cc != nil {
		l.cc.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, srv := range l.srvs {
		srv.Shutdown(ctx)
	}
	for _, ln := range l.lns {
		if ln != nil {
			ln.Close()
		}
	}
}

// Occurrence is the read-occurrence game on the dispersed object: reader 1
// always reads the current value; the secret is whether reader 0 read it
// too. unmasked selects the positive control (node 1's frames with the
// audit masks stripped).
func (l *ClusterLab) Occurrence(unmasked bool) Distinguisher {
	return Distinguisher{
		Name:     gameName("cluster/read-occurrence", unmasked),
		Control:  unmasked,
		Features: wireFeatures(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(unmasked, func(obj *cluster.Object) error {
				if _, err := obj.Read(1); err != nil {
					return err
				}
				if b == 1 {
					if _, err := obj.Read(0); err != nil {
						return err
					}
				}
				return nil
			})
		},
	}
}

// Identity is the reader-identity game: exactly one dispersed read happens;
// the secret is whether reader 0 or reader 1 performed it.
func (l *ClusterLab) Identity(unmasked bool) Distinguisher {
	return Distinguisher{
		Name:     gameName("cluster/reader-identity", unmasked),
		Control:  unmasked,
		Features: wireFeatures(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(unmasked, func(obj *cluster.Object) error {
				_, err := obj.Read(b)
				return err
			})
		},
	}
}

// trial plays one round: fresh dispersed object, one cluster write, the
// game's cluster reads, a drain, then — inside the observation window — one
// merged audit, of which node 1's exchange is what the tap sees.
func (l *ClusterLab) trial(unmasked bool, reads func(obj *cluster.Object) error) ([]float64, error) {
	l.ctr++
	name := fmt.Sprintf("e18/cluster/%08d", l.ctr)
	value := 0xC1_0000_0000 + uint64(l.ctr)

	obj, err := l.cc.Open(name)
	if err != nil {
		return nil, err
	}
	if err := obj.Write(value); err != nil {
		return nil, err
	}
	if err := reads(obj); err != nil {
		return nil, err
	}
	// Drain, identically in both branches: reader 2 never read this object,
	// so its first cluster read posts one announce per node; the second is
	// silent everywhere and — FIFO on each node's single connection —
	// returns only after every node consumed every pipelined announce of
	// the game reads above. After it, no victim frame can land inside the
	// observation window.
	for i := 0; i < 2; i++ {
		if _, err := obj.Read(2); err != nil {
			return nil, err
		}
	}

	// The combining-matrix row mapping: the observer knows node 1 applies
	// Vandermonde row 0, so it computes the exact packed value node 1's
	// audit log must carry for this trial's write (wid 1) — share masked
	// under node 1's pad, wid in the high bits — and locates the audited
	// row with certainty. Everything it finds there is still masked bits.
	var data [8]byte
	for i := range data {
		data[i] = byte(value >> (56 - 8*i))
	}
	shares := l.cod.Split(data[:])
	shareLen := l.m.ShareLen()
	masked := shareToUintObs(shares[0]) ^ cluster.SharePad(l.m.Secret, l.m.Nodes[0].ID, name, 1, shareLen)
	packed := cluster.Pack(1, masked, shareLen)

	l.tap.reset()
	if _, err := obj.Audit(); err != nil {
		return nil, err
	}
	// Node 1's audit rows ride the same frame format as the single-node
	// lab's, so feature extraction is shared: traffic shape plus the
	// (un)masked tracking bits of the located row.
	return wireFeaturesOf(l.tap.snapshot(), packed, unmasked, l.m.Nodes[0].Key)
}

// shareToUintObs packs share bytes big-endian, mirroring the cluster
// client's on-wire share encoding.
func shareToUintObs(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
