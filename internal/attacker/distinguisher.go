package attacker

import (
	"fmt"
	"math"
	mathrand "math/rand/v2"
)

// This file is the statistical half of the adversarial audit lab (E18): a
// generic distinguisher harness in the hypothesis-testing style of the
// privacy-audit literature ("Privacy Audit as Bits Transmission" — the
// observer tries to receive one secret bit per trial). A game hides a secret
// bit b in each trial; the observer extracts a feature vector from whatever
// channel it taps (wire frames, a disk image, STATS counters, latencies) and
// must guess b. The harness runs balanced trials, learns the observer's best
// guessing rule on a calibration half, scores it on a held-out test half, and
// converts test accuracy into a leak verdict with a Wilson confidence bound:
// the channel leaks only if the accuracy's lower confidence bound clears
// chance by more than delta. The calibration/test split keeps the verdict
// honest — a rule selected on the same trials it is scored on would look
// better than chance on pure noise.
//
// Every concrete observer also ships a positive control: the same game
// against a deliberately leaky configuration (unmasked audit rows, a naive
// cleartext log, a shared-state-touching reader) that the harness MUST flag.
// A lab that never fires proves nothing; the controls prove its statistical
// power at the configured trial count.

// Trial plays one round of a distinguisher game under secret bit b (0 or 1)
// and returns the observer's feature vector. The vector must have the same
// length on every call; trials run sequentially.
type Trial func(b int) ([]float64, error)

// Distinguisher is one observer playing one game.
type Distinguisher struct {
	// Name identifies the game in reports, conventionally "channel/game".
	Name string
	// Control marks a positive control: a deliberately leaky configuration
	// the harness is required to detect (Verdict.Leak must come back true,
	// or the lab has no power at this trial count).
	Control bool
	// Features names the feature vector's entries, index-aligned with what
	// Trial returns; used to report which feature carried the leak.
	Features []string
	// Trial plays one round.
	Trial Trial
}

// Verdict is the outcome of running one distinguisher.
type Verdict struct {
	Name    string
	Control bool
	// Trials is the total rounds played; TestTrials the held-out half the
	// accuracy is scored on.
	Trials     int
	TestTrials int
	Correct    int
	// Accuracy is Correct/TestTrials; chance is 0.5 by construction (trials
	// are balanced between the two branches).
	Accuracy float64
	// WilsonLow and WilsonHigh bound the true accuracy at 95% confidence.
	WilsonLow  float64
	WilsonHigh float64
	// Delta is the leak threshold the verdict was computed against.
	Delta float64
	// Leak reports whether the observer beats chance by more than Delta
	// with confidence: WilsonLow > 0.5 + Delta.
	Leak bool
	// TopFeature is the feature the calibration half selected as most
	// separating, and Separation its |mean0-mean1|/pooled-stddev score —
	// when a leak fires, this is where the signal lives.
	TopFeature string
	Separation float64
}

// Passed reports whether the verdict is the required one: no leak for an
// honest configuration, a detected leak for a positive control.
func (v Verdict) Passed() bool {
	if v.Control {
		return v.Leak
	}
	return !v.Leak
}

// String renders the verdict as one report line.
func (v Verdict) String() string {
	verdict := "no leak"
	if v.Leak {
		verdict = fmt.Sprintf("LEAK via %s (sep %.2f)", v.TopFeature, v.Separation)
	}
	return fmt.Sprintf("%-28s acc %.3f  wilson95 [%.3f, %.3f]  %s",
		v.Name, v.Accuracy, v.WilsonLow, v.WilsonHigh, verdict)
}

// minTrials is the floor RunDistinguisher pads requests up to: below it the
// Wilson bound is too wide for either verdict to mean anything.
const minTrials = 40

// RunDistinguisher plays the game for the requested number of trials
// (rounded to a multiple of 4, floored at minTrials, so both halves are
// exactly balanced) and returns the verdict at the given delta threshold.
//
// The guessing rule is a calibrated threshold test: on the calibration half
// it scores every feature by |mean0-mean1|/pooled-stddev, picks the most
// separating one, and guesses by nearest branch mean; the rule is then scored
// on the untouched test half. This detects any feature whose distribution
// shifts with the secret — a tracking bit, a counter, a file byte, a latency
// — while staying at chance on channels that carry none.
func RunDistinguisher(d Distinguisher, trials int, delta float64, seed uint64) (Verdict, error) {
	if trials < minTrials {
		trials = minTrials
	}
	trials -= trials % 4
	rng := mathrand.New(mathrand.NewPCG(seed, hashName(d.Name)))

	half := trials / 2
	bits := append(balancedBits(half, rng), balancedBits(half, rng)...)

	var feats [][]float64
	for i, b := range bits {
		f, err := d.Trial(b)
		if err != nil {
			return Verdict{}, fmt.Errorf("attacker: %s trial %d: %w", d.Name, i, err)
		}
		if len(feats) > 0 && len(f) != len(feats[0]) {
			return Verdict{}, fmt.Errorf("attacker: %s trial %d: %d features, want %d", d.Name, i, len(f), len(feats[0]))
		}
		feats = append(feats, f)
	}
	nf := len(feats[0])
	if nf == 0 {
		return Verdict{}, fmt.Errorf("attacker: %s produced no features", d.Name)
	}

	// Calibration: per-branch means and pooled stddev of every feature on
	// the first half; the most separating feature becomes the guessing rule.
	best, bestScore := 0, -1.0
	var bestM0, bestM1 float64
	for k := 0; k < nf; k++ {
		m0, m1, sd := branchStats(feats[:half], bits[:half], k)
		score := math.Abs(m0-m1) / (sd + 1e-9)
		if score > bestScore {
			best, bestScore = k, score
			bestM0, bestM1 = m0, m1
		}
	}

	// Test: nearest-branch-mean on the held-out half.
	correct := 0
	for i := half; i < trials; i++ {
		x := feats[i][best]
		guess := 0
		if math.Abs(x-bestM1) < math.Abs(x-bestM0) {
			guess = 1
		}
		if guess == bits[i] {
			correct++
		}
	}

	acc := float64(correct) / float64(half)
	lo, hi := wilson(correct, half, 1.96)
	v := Verdict{
		Name:       d.Name,
		Control:    d.Control,
		Trials:     trials,
		TestTrials: half,
		Correct:    correct,
		Accuracy:   acc,
		WilsonLow:  lo,
		WilsonHigh: hi,
		Delta:      delta,
		Leak:       lo > 0.5+delta,
		Separation: bestScore,
	}
	if best < len(d.Features) {
		v.TopFeature = d.Features[best]
	} else {
		v.TopFeature = fmt.Sprintf("feature-%d", best)
	}
	return v, nil
}

// balancedBits returns n secret bits, exactly half of each value, shuffled.
func balancedBits(n int, rng *mathrand.Rand) []int {
	bits := make([]int, n)
	for i := n / 2; i < n; i++ {
		bits[i] = 1
	}
	rng.Shuffle(n, func(i, j int) { bits[i], bits[j] = bits[j], bits[i] })
	return bits
}

// branchStats returns the per-branch means and the pooled stddev of feature
// k over the given trials.
func branchStats(feats [][]float64, bits []int, k int) (m0, m1, sd float64) {
	var n0, n1 int
	for i, f := range feats {
		if bits[i] == 0 {
			m0 += f[k]
			n0++
		} else {
			m1 += f[k]
			n1++
		}
	}
	m0 /= float64(n0)
	m1 /= float64(n1)
	var ss float64
	for i, f := range feats {
		d := f[k] - m0
		if bits[i] == 1 {
			d = f[k] - m1
		}
		ss += d * d
	}
	return m0, m1, math.Sqrt(ss / float64(len(feats)))
}

// wilson returns the Wilson score interval for correct successes out of n at
// critical value z.
func wilson(correct, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(correct) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := p + z*z/(2*nf)
	margin := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	return math.Max(0, (center-margin)/denom), math.Min(1, (center+margin)/denom)
}

// hashName seeds each distinguisher's RNG stream distinctly (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
