package attacker

import (
	"testing"
)

// The E18 lab smoke tests run each observer's games at a reduced trial
// count: enough for the positive controls (near-perfect signals) to fire and
// for the honest games to stay at chance, small enough for the ordinary test
// run. The full-power series at CI trial counts and the gate's δ=0.05 runs
// through leakprobe -ci in the leak-gate job; the smoke asserts at a looser
// δ because with only smokeTrials/2 test trials pure noise clears 0.55
// roughly once per hundred games — a flake budget the per-push test job
// can't afford — while clearing 0.60 on noise is a ~4-in-10000 event.
const (
	smokeTrials = 64
	smokeDelta  = 0.10
)

func runSmoke(t *testing.T, d Distinguisher) {
	t.Helper()
	v, err := RunDistinguisher(d, smokeTrials, smokeDelta, 0xE18)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(v.String())
	if !v.Passed() {
		if v.Control {
			t.Fatalf("positive control did not detect its planted leak: %+v", v)
		}
		t.Fatalf("honest configuration flagged as leaking: %+v", v)
	}
}

func TestWireLab(t *testing.T) {
	lab, err := NewWireLab(101)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	t.Run("occurrence", func(t *testing.T) { runSmoke(t, lab.Occurrence(false)) })
	t.Run("identity", func(t *testing.T) { runSmoke(t, lab.Identity(false)) })
	t.Run("occurrence-control", func(t *testing.T) { runSmoke(t, lab.Occurrence(true)) })
	t.Run("identity-control", func(t *testing.T) { runSmoke(t, lab.Identity(true)) })
}

func TestClusterLab(t *testing.T) {
	lab, err := NewClusterLab(106)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	t.Run("occurrence", func(t *testing.T) { runSmoke(t, lab.Occurrence(false)) })
	t.Run("identity", func(t *testing.T) { runSmoke(t, lab.Identity(false)) })
	t.Run("occurrence-control", func(t *testing.T) { runSmoke(t, lab.Occurrence(true)) })
	t.Run("identity-control", func(t *testing.T) { runSmoke(t, lab.Identity(true)) })
}

func TestDiskLab(t *testing.T) {
	lab := NewDiskLab(t.TempDir(), 102)
	t.Run("identity", func(t *testing.T) { runSmoke(t, lab.Identity(false)) })
	t.Run("identity-control", func(t *testing.T) { runSmoke(t, lab.Identity(true)) })
}

func TestStatsLab(t *testing.T) {
	lab, err := NewStatsLab("", t.TempDir(), 103)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	t.Run("identity", func(t *testing.T) { runSmoke(t, lab.Identity()) })
	t.Run("occurrence-control", func(t *testing.T) { runSmoke(t, lab.Occurrence()) })
}

func TestMetricsLab(t *testing.T) {
	lab, err := NewMetricsLab("", "", 105)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	t.Run("occurrence", func(t *testing.T) { runSmoke(t, lab.Occurrence()) })
	t.Run("identity", func(t *testing.T) { runSmoke(t, lab.Identity()) })
	t.Run("occurrence-control", func(t *testing.T) { runSmoke(t, lab.OccurrenceLeaky()) })
}

func TestTimingLab(t *testing.T) {
	if testing.Short() {
		t.Skip("timing distributions need real wall-clock")
	}
	lab, err := NewTimingLab("", 104)
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	// Only the control is asserted here: it must be loud enough to prove the
	// stopwatch works. The honest silent-read verdict is a statistical
	// statement about scheduler noise — asserted at full trial counts in the
	// leak-gate (leakprobe -ci), logged here.
	t.Run("effective-read-control", func(t *testing.T) { runSmoke(t, lab.EffectiveRead()) })
	v, err := RunDistinguisher(lab.SilentRead(), smokeTrials, smokeDelta, 0xE18)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(v.String())
}
