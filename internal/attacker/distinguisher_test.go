package attacker

import (
	"math"
	mathrand "math/rand/v2"
	"testing"
)

// TestWilson pins the Wilson interval against hand-checked values and its
// structural properties.
func TestWilson(t *testing.T) {
	lo, hi := wilson(50, 100, 1.96)
	if math.Abs(lo-0.404) > 0.005 || math.Abs(hi-0.596) > 0.005 {
		t.Fatalf("wilson(50,100) = [%.3f, %.3f], want ~[0.404, 0.596]", lo, hi)
	}
	lo, _ = wilson(100, 100, 1.96)
	if lo < 0.95 {
		t.Fatalf("wilson(100,100) lower bound %.3f, want > 0.95", lo)
	}
	if lo, hi = wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Fatalf("wilson(0,0) = [%v, %v], want [0, 1]", lo, hi)
	}
	for _, n := range []int{10, 50, 400} {
		for c := 0; c <= n; c += n / 5 {
			lo, hi := wilson(c, n, 1.96)
			p := float64(c) / float64(n)
			if lo > p || hi < p || lo < 0 || hi > 1 {
				t.Fatalf("wilson(%d,%d) = [%.3f, %.3f] does not bracket %.3f", c, n, lo, hi, p)
			}
		}
	}
}

// TestBalancedBits checks exact balance at every size the harness produces.
func TestBalancedBits(t *testing.T) {
	rng := mathrand.New(mathrand.NewPCG(1, 2))
	for _, n := range []int{20, 50, 200} {
		ones := 0
		for _, b := range balancedBits(n, rng) {
			ones += b
		}
		if ones != n/2 {
			t.Fatalf("balancedBits(%d): %d ones, want %d", n, ones, n/2)
		}
	}
}

// TestRunDistinguisherPerfectSignal: a channel that transmits the secret bit
// outright must be flagged as a leak, attributed to the carrying feature.
func TestRunDistinguisherPerfectSignal(t *testing.T) {
	d := Distinguisher{
		Name:     "test/perfect",
		Features: []string{"noise", "signal"},
		Trial: func(b int) ([]float64, error) {
			return []float64{42, float64(b)}, nil
		},
	}
	v, err := RunDistinguisher(d, 40, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Leak || v.Accuracy != 1 {
		t.Fatalf("perfect channel not flagged: %+v", v)
	}
	if v.TopFeature != "signal" {
		t.Fatalf("leak attributed to %q, want signal", v.TopFeature)
	}
	if v.Passed() {
		t.Fatal("honest verdict Passed() on a leak")
	}
}

// TestRunDistinguisherNoise: a channel of pure noise must sit at chance —
// the calibration/test split keeps the selected rule from looking better
// than it is.
func TestRunDistinguisherNoise(t *testing.T) {
	rng := mathrand.New(mathrand.NewPCG(3, 4))
	d := Distinguisher{
		Name:     "test/noise",
		Features: []string{"n0", "n1", "n2", "n3"},
		Trial: func(b int) ([]float64, error) {
			return []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}, nil
		},
	}
	v, err := RunDistinguisher(d, 400, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if v.Leak {
		t.Fatalf("noise flagged as leak: %+v", v)
	}
	if !v.Passed() {
		t.Fatal("honest no-leak verdict did not pass")
	}
}

// TestRunDistinguisherControlSemantics: a control that fails to leak fails
// the run.
func TestRunDistinguisherControlSemantics(t *testing.T) {
	d := Distinguisher{
		Name:     "test/dead-control",
		Control:  true,
		Features: []string{"flat"},
		Trial:    func(b int) ([]float64, error) { return []float64{1}, nil },
	}
	v, err := RunDistinguisher(d, 40, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Leak {
		t.Fatalf("constant channel flagged as leak: %+v", v)
	}
	if v.Passed() {
		t.Fatal("powerless control Passed()")
	}
}

// TestRunDistinguisherTrialFloor: requested trial counts are padded to the
// floor and balanced in both halves.
func TestRunDistinguisherTrialFloor(t *testing.T) {
	n := 0
	d := Distinguisher{
		Name:     "test/floor",
		Features: []string{"x"},
		Trial: func(b int) ([]float64, error) {
			n++
			return []float64{0}, nil
		},
	}
	v, err := RunDistinguisher(d, 1, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n != minTrials || v.Trials != minTrials || v.TestTrials != minTrials/2 {
		t.Fatalf("ran %d trials, verdict %+v; want floor %d", n, v, minTrials)
	}
}
