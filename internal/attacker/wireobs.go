package attacker

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/server"
	"auditreg/store"
	"auditreg/wire"
)

// Wire-frame observer (E18, wire channel). The observer taps the audit
// channel of a live auditd — every frame the server exchanges with an
// auditor client — and tries to learn what the paper says the audit
// machinery must not reveal: whether a given reader read (read occurrence)
// and which reader read (reader identity). Reader principals' own channels
// are out of scope by the deployment model (each principal's connection is
// private to it — TLS in production — and a principal's own traffic
// trivially reveals its own actions); the audit channel is the one the
// auditing machinery adds, and the claim is that it carries reader sets only
// under fresh pads, so an observer of its frames — bytes, sizes, counts —
// sits at chance.
//
// The positive control replays the same games against the frames a leaky
// server would have sent: the captured audit responses with their masks
// stripped (the lab holds the key, so it can compute exactly the plaintext-
// tracking-bit frames of a naive implementation). The observer must detect
// those, or the game has no power.

// frameTap is a resettable FrameTap sink: the lab scopes each trial's
// observation window by resetting it right before the audited phase.
type frameTap struct {
	mu     sync.Mutex
	frames []tappedFrame
}

type tappedFrame struct {
	outbound bool
	raw      []byte
}

func (t *frameTap) tap(outbound bool, frame []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.frames = append(t.frames, tappedFrame{outbound, append([]byte(nil), frame...)})
}

func (t *frameTap) reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.frames = t.frames[:0]
}

func (t *frameTap) snapshot() []tappedFrame {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]tappedFrame(nil), t.frames...)
}

// wireReaders is the reader count of the lab's objects; the observer gets
// one tracking-bit feature per reader.
const wireReaders = 4

// WireLab hosts an in-process auditd with a frame tap plus a victim client
// (the read traffic under test) and an auditor client (the observed
// channel). One lab serves any number of distinguisher runs; trials use
// fresh objects.
type WireLab struct {
	key    auditreg.Key
	srv    *server.Server
	tap    *frameTap
	victim *client.Client
	audit  *client.Client
	ctr    int
}

// NewWireLab starts the lab's server and clients.
func NewWireLab(seed uint64) (*WireLab, error) {
	l := &WireLab{key: auditreg.KeyFromSeed(seed), tap: &frameTap{}}
	srv, err := server.New(server.Config{Key: l.key, Readers: wireReaders, FrameTap: l.tap.tap})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l.srv = srv
	go srv.Serve(ln)
	addr := ln.Addr().String()
	// Single-connection clients: the per-conn open cache keeps every trial's
	// observation window down to exactly the audit exchange.
	if l.victim, err = client.Dial(addr, client.WithConns(1)); err != nil {
		l.Close()
		return nil, err
	}
	if l.audit, err = client.Dial(addr, client.WithKey(l.key), client.WithConns(1)); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// Close tears the lab down.
func (l *WireLab) Close() {
	if l.victim != nil {
		l.victim.Close()
	}
	if l.audit != nil {
		l.audit.Close()
	}
	if l.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		l.srv.Shutdown(ctx)
	}
}

// wireFeatures names the audit-channel feature vector: traffic shape
// (counts, sizes) plus the tracking bits of the audited row.
func wireFeatures() []string {
	names := []string{"frames", "bytes", "audit-rows", "row-found"}
	for j := 0; j < wireReaders; j++ {
		names = append(names, fmt.Sprintf("row-bit-%d", j))
	}
	return names
}

// Occurrence is the read-occurrence game: reader 1 always reads the current
// value; the secret is whether reader 0 read it too. Traffic volume is
// identical in both branches by construction, so the only possible signal is
// the audited row's masked reader set. unmasked selects the positive
// control: the observer sees the frames a leaky server (plaintext tracking
// bits) would have transmitted.
func (l *WireLab) Occurrence(unmasked bool) Distinguisher {
	return Distinguisher{
		Name:     gameName("wire/read-occurrence", unmasked),
		Control:  unmasked,
		Features: wireFeatures(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(unmasked, func(obj *client.Object) error {
				if _, err := obj.Read(1); err != nil {
					return err
				}
				if b == 1 {
					if _, err := obj.Read(0); err != nil {
						return err
					}
				}
				return nil
			})
		},
	}
}

// Identity is the reader-identity game: exactly one read happens; the secret
// is whether reader 0 or reader 1 performed it.
func (l *WireLab) Identity(unmasked bool) Distinguisher {
	return Distinguisher{
		Name:     gameName("wire/reader-identity", unmasked),
		Control:  unmasked,
		Features: wireFeatures(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(unmasked, func(obj *client.Object) error {
				_, err := obj.Read(b)
				return err
			})
		},
	}
}

func gameName(base string, control bool) string {
	if control {
		return base + "+leaky"
	}
	return base
}

// trial plays one round: fresh object, one write, the game's reads, a
// drain, then — inside the observation window — one audit.
func (l *WireLab) trial(unmasked bool, reads func(obj *client.Object) error) ([]float64, error) {
	l.ctr++
	name := fmt.Sprintf("e18/wire/%08d", l.ctr)
	value := 0xE18_0000_0000 + uint64(l.ctr)

	obj, err := l.victim.Open(name, store.Register)
	if err != nil {
		return nil, err
	}
	if err := obj.Write(value); err != nil {
		return nil, err
	}
	if err := reads(obj); err != nil {
		return nil, err
	}
	// Drain, identically in both branches: reader 2 never read this object,
	// so its first read is always an effective fetch that posts one announce;
	// the second read is always silent and — FIFO on the single connection —
	// returns only after the server consumed that announce and every
	// pipelined announce of the game reads above. After it, no victim frame
	// can land inside the observation window, and the drain's own traffic is
	// independent of the secret.
	for i := 0; i < 2; i++ {
		if _, err := obj.Read(2); err != nil {
			return nil, err
		}
	}
	aobj, err := l.audit.Open(name, store.Register)
	if err != nil {
		return nil, err
	}
	aud, err := aobj.Auditor()
	if err != nil {
		return nil, err
	}

	l.tap.reset()
	if _, err := aud.Audit(); err != nil {
		return nil, err
	}
	return wireFeaturesOf(l.tap.snapshot(), value, unmasked, l.key)
}

// wireFeaturesOf extracts the observer's features from one window of audit-
// channel frames. With unmask set, audit rows are stripped of their masks
// first — the positive control's leaky world.
func wireFeaturesOf(frames []tappedFrame, value uint64, unmask bool, key auditreg.Key) ([]float64, error) {
	var totalBytes, rows, found float64
	bits := make([]float64, wireReaders)
	for j := range bits {
		bits[j] = 0.5 // absent row: no information either way
	}
	for _, tf := range frames {
		totalBytes += float64(len(tf.raw))
		if !tf.outbound {
			continue
		}
		f, rest, err := wire.ParseFrame(tf.raw)
		if err != nil || len(rest) != 0 {
			return nil, fmt.Errorf("attacker: tapped a malformed frame: %v", err)
		}
		if f.Verb != wire.VerbAudit {
			continue
		}
		var resp wire.AuditResp
		if err := resp.Decode(f.Body); err != nil {
			return nil, fmt.Errorf("attacker: audit response: %w", err)
		}
		rows += float64(len(resp.Rows))
		for i, row := range resp.Rows {
			readers := row.Readers
			if unmask {
				readers ^= wire.AuditMask(key, resp.Nonce, i)
			}
			if row.Value != value {
				continue
			}
			found = 1
			for j := 0; j < wireReaders; j++ {
				bits[j] = float64((readers >> uint(j)) & 1)
			}
		}
	}
	feats := []float64{float64(len(frames)), totalBytes, rows, found}
	return append(feats, bits...), nil
}
