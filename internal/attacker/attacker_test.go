package attacker_test

import (
	"testing"

	"auditreg/internal/attacker"
	"auditreg/internal/core"
	"auditreg/internal/otp"
)

// TestCrashSimulation reproduces the paper's headline property (E3): the
// crash-simulating attack learns the value in both designs, but only
// Algorithm 1 still audits it.
func TestCrashSimulation(t *testing.T) {
	t.Parallel()
	for seed := uint64(0); seed < 20; seed++ {
		res, err := attacker.RunCrashSimulation(4, 77, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Value != 77 {
			t.Fatalf("seed %d: attacker learned %d, want 77", seed, res.Value)
		}
		if !res.CoreAudited {
			t.Fatalf("seed %d: Algorithm 1 failed to audit an effective read", seed)
		}
		if res.StrawmanAudited {
			t.Fatalf("seed %d: strawman audited a peek it cannot see", seed)
		}
	}
}

// TestEffectiveReadAuditedEvenWithLaterWrites: the effective read stays in
// the audit trail after the value is overwritten (it migrates to B/V).
func TestEffectiveReadAuditedEvenWithLaterWrites(t *testing.T) {
	t.Parallel()
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(3), 2)
	if err != nil {
		t.Fatalf("pads: %v", err)
	}
	reg, err := core.New(2, uint64(10), pads)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	learned, err := attacker.EffectiveRead(reg, 1)
	if err != nil {
		t.Fatalf("EffectiveRead: %v", err)
	}
	if learned != 10 {
		t.Fatalf("learned %d, want 10", learned)
	}
	for i := uint64(11); i < 20; i++ {
		if err := reg.Write(i); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	rep, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if !rep.Contains(1, 10) {
		t.Fatalf("audit %v lost the pre-overwrite effective read", rep)
	}
}

// TestReaderSetInference (E4): plaintext tracking bits make the attacker
// omniscient; one-time-pad bits reduce it to coin flipping.
func TestReaderSetInference(t *testing.T) {
	t.Parallel()
	const trials = 400
	coreRes, strawRes, err := attacker.RunReaderSetInference(trials, 1234)
	if err != nil {
		t.Fatalf("RunReaderSetInference: %v", err)
	}
	if strawRes.Rate() != 1.0 {
		t.Fatalf("strawman attacker accuracy = %.3f, want 1.0", strawRes.Rate())
	}
	if strawRes.FalseClaimRate() != 0 {
		t.Fatalf("strawman attacker made false claims: %.3f", strawRes.FalseClaimRate())
	}
	if r := coreRes.Rate(); r < 0.35 || r > 0.65 {
		t.Fatalf("Algorithm 1 attacker accuracy = %.3f, want ~0.5 (chance)", r)
	}
}

// TestMaxGapInference (E5): constant nonces make the gap inference sound
// (accuracy 1.0, zero false claims); random nonces break its soundness.
func TestMaxGapInference(t *testing.T) {
	t.Parallel()
	const trials = 300

	plain, err := attacker.RunMaxGapInference(trials, 99, false)
	if err != nil {
		t.Fatalf("fixed-nonce run: %v", err)
	}
	if plain.Rate() != 1.0 {
		t.Fatalf("fixed-nonce attacker accuracy = %.3f, want 1.0", plain.Rate())
	}
	if plain.FalseClaimRate() != 0 {
		t.Fatalf("fixed-nonce attacker false-claim rate = %.3f, want 0", plain.FalseClaimRate())
	}

	nonced, err := attacker.RunMaxGapInference(trials, 99, true)
	if err != nil {
		t.Fatalf("nonced run: %v", err)
	}
	if nonced.FalseClaimRate() < 0.15 {
		t.Fatalf("nonced attacker false-claim rate = %.3f, want substantial (inference unsound)", nonced.FalseClaimRate())
	}
	if nonced.Rate() >= plain.Rate() {
		t.Fatalf("nonces did not degrade the attacker: %.3f >= %.3f", nonced.Rate(), plain.Rate())
	}
}

// TestEffectiveReadSilentPath: if the attacker's reader has already cached
// the current sequence number, the "read" is silent and nothing is learned
// through shared memory — EffectiveRead reports that.
func TestEffectiveReadSilentPath(t *testing.T) {
	t.Parallel()
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(8), 1)
	if err != nil {
		t.Fatalf("pads: %v", err)
	}
	reg, err := core.New(1, uint64(5), pads)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// First effective read works.
	if _, err := attacker.EffectiveRead(reg, 0); err != nil {
		t.Fatalf("first EffectiveRead: %v", err)
	}
	// A fresh handle is used each time, so a second attack is a fresh
	// direct read and also works (the attacker "crashed" and restarted).
	if _, err := attacker.EffectiveRead(reg, 0); err != nil {
		t.Fatalf("second EffectiveRead: %v", err)
	}
}

// TestRunDiskSweep pins experiment E15: the disk-access attacker finds no
// plaintext in a durable data directory, while the cleartext shadow log
// (self-check) trips the very same sweep.
func TestRunDiskSweep(t *testing.T) {
	res, err := attacker.RunDiskSweep(t.TempDir(), 42)
	if err != nil {
		t.Fatalf("RunDiskSweep: %v", err)
	}
	if res.FilesScanned < 2 || res.BytesScanned == 0 {
		t.Fatalf("sweep degenerate: %d files, %d bytes", res.FilesScanned, res.BytesScanned)
	}
	for _, f := range res.Findings {
		t.Errorf("plaintext on disk: %s at %s+%d", f.Desc, f.File, f.Offset)
	}
	if res.SelfCheckFindings == 0 {
		t.Fatal("self-check found nothing in the cleartext shadow")
	}
}
