package attacker

import (
	"context"
	"fmt"
	"net"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/persist"
	"auditreg/server"
	"auditreg/store"
)

// STATS-counter observer (E18, stats channel). STATS is auditd's operational
// telemetry — shard queue depths, WAL batch histograms, global operation
// counters — and it is deliberately unauthenticated: operators scrape it.
// The observer snapshots every counter before and after a victim's activity
// window and asks what the deltas give away.
//
// The channel's contract is scoped, and the games encode it. Aggregate
// operation counts are the channel's purpose — reads-silent going up says
// *someone* read, exactly as a packet counter on a router says someone sent
// a packet — so read occurrence is not a secret STATS keeps, and the
// occurrence game is this lab's positive control: it must fire, proving the
// observer has the power to see counter-sized signal at the configured trial
// count. What STATS must never reveal is attribution: WHICH reader
// principal acted. The honest game hides the reader identity in otherwise
// identical activity windows and requires every shard-*, wal-*, conn-* and
// operation counter to sit at chance.

// StatsLab drives the games against a live auditd, remote (addr) or
// in-process (addr == "" — the lab boots a durable server so wal-* counters
// exist, dataDir holding its directory).
type StatsLab struct {
	srv   *server.Server
	cl    *client.Client
	names []string // probed counter set, fixed across trials
	ctr   int
}

// NewStatsLab dials addr, or boots an in-process durable auditd under
// dataDir when addr is empty.
func NewStatsLab(addr, dataDir string, seed uint64) (*StatsLab, error) {
	l := &StatsLab{}
	if addr == "" {
		srv, err := server.New(server.Config{
			Key:     auditreg.KeyFromSeed(seed),
			Readers: 4,
			DataDir: dataDir,
			Fsync:   persist.SyncNever,
		})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		l.srv = srv
		go srv.Serve(ln)
		addr = ln.Addr().String()
	}
	cl, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		l.Close()
		return nil, err
	}
	l.cl = cl
	// Probe once to fix the feature vector: one counter delta per name the
	// server exports. Counters that appear later read as zero-delta.
	pairs, err := cl.Stats()
	if err != nil {
		l.Close()
		return nil, err
	}
	for _, p := range pairs {
		l.names = append(l.names, p.Name)
	}
	return l, nil
}

// Close tears down whatever the lab owns.
func (l *StatsLab) Close() {
	if l.cl != nil {
		l.cl.Close()
	}
	if l.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		l.srv.Shutdown(ctx)
	}
}

// Features returns the probed counter names (the feature vector is their
// per-trial deltas).
func (l *StatsLab) Features() []string {
	return append([]string(nil), l.names...)
}

// Identity is the honest game: the victim opens a fresh object, writes, and
// one read happens — by reader 0 or reader 1, the secret. Both branches
// perform identical operation counts, so any counter that attributes the
// read to a principal is a leak.
func (l *StatsLab) Identity() Distinguisher {
	return Distinguisher{
		Name:     "stats/reader-identity",
		Features: l.Features(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(func(obj *client.Object) error {
				_, err := obj.Read(b)
				return err
			})
		},
	}
}

// Occurrence is the positive control: the secret is whether the read
// happened at all. STATS counts operations by design, so this must be
// detected — it calibrates the lab's power, and it documents that read
// *occurrence* is outside what the telemetry channel promises to hide.
func (l *StatsLab) Occurrence() Distinguisher {
	return Distinguisher{
		Name:     "stats/read-occurrence+count",
		Control:  true,
		Features: l.Features(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(func(obj *client.Object) error {
				if b == 0 {
					return nil
				}
				_, err := obj.Read(0)
				return err
			})
		},
	}
}

// trial snapshots the counters, runs one activity window (fresh object, one
// write, the game's reads) and returns the per-counter deltas. The client
// holds one connection, so the synchronous fetch round-trip orders the whole
// window before the closing STATS request server-side.
func (l *StatsLab) trial(reads func(obj *client.Object) error) ([]float64, error) {
	before, err := l.statsMap()
	if err != nil {
		return nil, err
	}
	l.ctr++
	obj, err := l.cl.Open(fmt.Sprintf("e18/stats/%08d", l.ctr), store.Register)
	if err != nil {
		return nil, err
	}
	if err := obj.Write(0x57A7_0000_0000 + uint64(l.ctr)); err != nil {
		return nil, err
	}
	if err := reads(obj); err != nil {
		return nil, err
	}
	after, err := l.statsMap()
	if err != nil {
		return nil, err
	}
	feats := make([]float64, len(l.names))
	for i, name := range l.names {
		feats[i] = float64(after[name]) - float64(before[name])
	}
	return feats, nil
}

func (l *StatsLab) statsMap() (map[string]uint64, error) {
	pairs, err := l.cl.Stats()
	if err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(pairs))
	for _, p := range pairs {
		m[p.Name] = p.Value
	}
	return m, nil
}
