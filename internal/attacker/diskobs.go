package attacker

import (
	"fmt"
	"os"
	"path/filepath"

	"auditreg"
	"auditreg/persist"
	"auditreg/store"
)

// Disk-image observer (E18, disk channel). Where E15's sweep greps a single
// data directory for known plaintext, this observer plays the stronger
// paired-run game from the paper's threat model: it holds the complete
// post-run disk images of two alternate executions — identical except for
// which reader read — and must tell them apart. Any read-correlated signal
// in the on-disk format counts: file names, counts, sizes, record layout,
// or bytes, whether or not it resembles a known needle.
//
// Each trial runs under a fresh store key. The record keystream is
// deterministic per (key, file, offset) by design — replay-stable recovery
// needs that — so two runs under one key differ exactly in their plaintext
// bits, and the game would measure determinism, not leakage. A real operator
// provisions a key per deployment, not per reader action; fresh keys per
// trial model comparing images of distinct deployments.
//
// The positive control is the naive implementation the paper argues against:
// alongside the encrypted WAL, the leaky configuration drops a cleartext
// sidecar log of who read — one byte of reader index. The byte-level
// features must catch it.

// diskImageBytes is how many leading bytes of the flattened image become
// per-byte features, on top of the shape features (file count and sizes).
const diskImageBytes = 512

// diskWrites is the number of values written per trial before the secret
// read.
const diskWrites = 3

// DiskLab runs paired journaled executions under a base directory.
type DiskLab struct {
	base string
	ctr  uint64
	seed uint64
}

// NewDiskLab creates a lab whose trial directories live under base (one
// subdirectory per trial, removed as each trial ends).
func NewDiskLab(base string, seed uint64) *DiskLab {
	return &DiskLab{base: base, seed: seed}
}

func diskFeatures() []string {
	names := []string{"file-count", "total-bytes"}
	for i := 0; i < diskImageBytes; i++ {
		names = append(names, fmt.Sprintf("byte-%04d", i))
	}
	return names
}

// Identity is the reader-identity game over disk images: the secret is
// whether reader 0 or reader 1 read the last written value. leaky selects
// the positive control, which adds the cleartext sidecar log.
func (l *DiskLab) Identity(leaky bool) Distinguisher {
	return Distinguisher{
		Name:     gameName("disk/reader-identity", leaky),
		Control:  leaky,
		Features: diskFeatures(),
		Trial: func(b int) ([]float64, error) {
			return l.trial(b, leaky)
		},
	}
}

// trial runs one journaled execution end to end and returns the image
// features of the data directory it leaves behind.
func (l *DiskLab) trial(b int, leaky bool) ([]float64, error) {
	l.ctr++
	dir := filepath.Join(l.base, fmt.Sprintf("trial-%08d", l.ctr))
	defer os.RemoveAll(dir)
	// Fresh key per trial (see the package comment above): the keystream is
	// deterministic per key, so a shared key would leak determinism, not
	// secrets.
	key := auditreg.KeyFromSeed(l.seed ^ (l.ctr * 0x9E3779B97F4A7C15))

	st, err := store.New[uint64](key, store.WithReaders[uint64](2))
	if err != nil {
		return nil, err
	}
	w, _, err := persist.Open(dir, persist.DeriveKey(key), st, persist.Options{
		Policy:  persist.SyncNever,
		Stripes: 1,
	})
	if err != nil {
		return nil, err
	}
	st.SetJournal(w)

	obj, err := st.Open("e18/disk/object", store.Register)
	if err != nil {
		return nil, err
	}
	for k := 1; k <= diskWrites; k++ {
		if err := obj.Write(0xD15C_0000_0000 + uint64(k)); err != nil {
			return nil, err
		}
	}
	if _, err := obj.Read(b); err != nil {
		return nil, err
	}
	if _, err := w.Snapshot(); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if leaky {
		// The naive sidecar a non-paper implementation would keep.
		line := []byte(fmt.Sprintf("read reader=%d\n", b))
		if err := os.WriteFile(filepath.Join(dir, "naive-audit.log"), line, 0o600); err != nil {
			return nil, err
		}
	}

	img, err := persist.CaptureImage(dir)
	if err != nil {
		return nil, err
	}
	return diskFeaturesOf(img), nil
}

// diskFeaturesOf flattens a captured image into the fixed feature vector:
// file count, total size, and the first diskImageBytes bytes of the files
// concatenated in sorted-name order (zero-padded when shorter).
func diskFeaturesOf(img []persist.ImageFile) []float64 {
	var total float64
	flat := make([]byte, 0, diskImageBytes)
	for _, f := range img {
		total += float64(len(f.Data))
		if len(flat) < diskImageBytes {
			flat = append(flat, f.Data...)
		}
	}
	if len(flat) > diskImageBytes {
		flat = flat[:diskImageBytes]
	}
	feats := []float64{float64(len(img)), total}
	for i := 0; i < diskImageBytes; i++ {
		if i < len(flat) {
			feats = append(feats, float64(flat[i]))
		} else {
			feats = append(feats, 0)
		}
	}
	return feats
}
