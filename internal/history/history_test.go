package history_test

import (
	"sync"
	"testing"

	"auditreg/internal/history"
)

func TestRecorderTimestampsOrdered(t *testing.T) {
	t.Parallel()
	var rec history.Recorder
	p1 := rec.Begin(1, "write", 5)
	p1.End()
	p2 := rec.Begin(2, "read", 0)
	p2.SetOut(5).End()

	ops := rec.Ops()
	if len(ops) != 2 {
		t.Fatalf("len = %d", len(ops))
	}
	if !(ops[0].Inv < ops[0].Ret && ops[0].Ret < ops[1].Inv && ops[1].Inv < ops[1].Ret) {
		t.Fatalf("timestamps not strictly ordered: %+v", ops)
	}
	if ops[1].Out != 5 {
		t.Fatalf("output lost: %+v", ops[1])
	}
}

func TestRecorderOverlapPreserved(t *testing.T) {
	t.Parallel()
	var rec history.Recorder
	p1 := rec.Begin(1, "write", 5)
	p2 := rec.Begin(2, "read", 0) // invoked before p1 returns
	p1.End()
	p2.SetOut(0).End()

	ops := rec.Ops()
	// Sorted by Inv: p1 first; intervals overlap.
	if ops[0].Proc != 1 || ops[1].Proc != 2 {
		t.Fatalf("order: %+v", ops)
	}
	if ops[1].Inv > ops[0].Ret {
		t.Fatal("overlap lost")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	t.Parallel()
	var rec history.Recorder
	const procs, per = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.Begin(p, "read", 0).SetOut(uint64(i)).End()
			}
		}()
	}
	wg.Wait()
	if rec.Len() != procs*per {
		t.Fatalf("recorded %d ops, want %d", rec.Len(), procs*per)
	}
	ops := rec.Ops()
	seen := make(map[int64]bool, 2*len(ops))
	for _, op := range ops {
		if op.Inv >= op.Ret {
			t.Fatalf("bad interval: %+v", op)
		}
		if seen[op.Inv] || seen[op.Ret] {
			t.Fatalf("duplicate timestamp in %+v", op)
		}
		seen[op.Inv], seen[op.Ret] = true, true
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].Inv >= ops[i].Inv {
			t.Fatal("Ops not sorted by invocation")
		}
	}
}

func TestOpString(t *testing.T) {
	t.Parallel()
	cases := []history.Op{
		{Proc: 1, Call: "write", Arg: 5, Inv: 1, Ret: 2},
		{Proc: 2, Call: "read", Out: 5, Inv: 3, Ret: 4},
		{Proc: 3, Call: "audit", OutSet: []history.Pair{{Reader: 2, Value: 5}}, Inv: 5, Ret: 6},
		{Proc: 4, Call: "scan", OutVec: []uint64{1, 2}, Inv: 7, Ret: 8},
		{Proc: 5, Call: "writeMax", Arg: 9, Inv: 9, Ret: 10},
	}
	for _, c := range cases {
		if c.String() == "" {
			t.Fatalf("empty String for %+v", c)
		}
	}
}
