// Package history records concurrent operation histories — invocation and
// response events in a global total order — for the linearizability checker.
// Timestamps come from a single atomic counter: an operation's invocation is
// stamped when it starts, its response when it completes, so real-time
// precedence in the recorded history implies real-time precedence in the run.
package history

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Pair is one audit-entry (reader, value) in an operation's output set.
type Pair struct {
	// Reader is the reader/scanner id.
	Reader int
	// Value is the value it was audited reading.
	Value uint64
}

// Op is one completed operation in a history.
type Op struct {
	// Proc is the process that performed the operation.
	Proc int
	// Call names the operation: "read", "write", "audit", "writeMax",
	// "scan", "update".
	Call string
	// Arg is the input (writes, updates).
	Arg uint64
	// Out is the scalar output (reads).
	Out uint64
	// OutSet is the audit output.
	OutSet []Pair
	// OutVec is the vector output (scans).
	OutVec []uint64
	// Inv and Ret are the global timestamps of invocation and response.
	Inv, Ret int64
}

// String renders the operation compactly for failure messages.
func (o Op) String() string {
	switch o.Call {
	case "write", "update":
		return fmt.Sprintf("p%d.%s(%d)@[%d,%d]", o.Proc, o.Call, o.Arg, o.Inv, o.Ret)
	case "read":
		return fmt.Sprintf("p%d.read()=%d@[%d,%d]", o.Proc, o.Out, o.Inv, o.Ret)
	case "scan":
		return fmt.Sprintf("p%d.scan()=%v@[%d,%d]", o.Proc, o.OutVec, o.Inv, o.Ret)
	case "audit":
		return fmt.Sprintf("p%d.audit()=%v@[%d,%d]", o.Proc, o.OutSet, o.Inv, o.Ret)
	default:
		return fmt.Sprintf("p%d.%s@[%d,%d]", o.Proc, o.Call, o.Inv, o.Ret)
	}
}

// Recorder collects operations from concurrently running processes.
// The zero value is ready to use.
type Recorder struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   []Op
}

// Pending is an operation that has been invoked but not yet completed.
type Pending struct {
	r  *Recorder
	op Op
}

// Begin stamps the invocation of an operation.
func (r *Recorder) Begin(proc int, call string, arg uint64) *Pending {
	return &Pending{
		r:  r,
		op: Op{Proc: proc, Call: call, Arg: arg, Inv: r.clock.Add(1)},
	}
}

// End stamps the response and commits the operation to the history.
// Output mutators may be applied to the pending op before End.
func (p *Pending) End() {
	p.op.Ret = p.r.clock.Add(1)
	p.r.mu.Lock()
	defer p.r.mu.Unlock()
	p.r.ops = append(p.r.ops, p.op)
}

// SetOut records a scalar output.
func (p *Pending) SetOut(v uint64) *Pending {
	p.op.Out = v
	return p
}

// SetOutSet records an audit output.
func (p *Pending) SetOutSet(pairs []Pair) *Pending {
	p.op.OutSet = pairs
	return p
}

// SetOutVec records a vector output.
func (p *Pending) SetOutVec(view []uint64) *Pending {
	p.op.OutVec = view
	return p
}

// Ops returns the completed operations sorted by invocation time.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	sort.Slice(out, func(i, j int) bool { return out[i].Inv < out[j].Inv })
	return out
}

// Len returns the number of completed operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
