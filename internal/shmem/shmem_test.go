package shmem_test

import (
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/shmem"
)

// backendNames lists every TripleReg backend, first entry the reference.
var backendNames = []string{"ptr", "locked", "packed", "seqlock", "packed128"}

// newBackends returns one of each TripleReg backend holding init, for
// cross-checking tests. Values must fit 16 bits for the packed register.
func newBackends(t *testing.T, init shmem.Triple[uint64]) map[string]shmem.TripleReg[uint64] {
	t.Helper()
	packed, err := shmem.NewPacked64(shmem.Layout{SeqBits: 28, ValBits: 16, ReaderBits: 20}, init)
	if err != nil {
		t.Fatalf("NewPacked64: %v", err)
	}
	packed128, err := shmem.NewPacked128(shmem.DefaultLayout128, init)
	if err != nil {
		t.Fatalf("NewPacked128: %v", err)
	}
	return map[string]shmem.TripleReg[uint64]{
		"ptr":       shmem.NewPtrTriple(init),
		"locked":    shmem.NewLockedTriple(init),
		"packed":    packed,
		"seqlock":   shmem.NewSeqlockTriple(init),
		"packed128": packed128,
	}
}

func TestTripleRegBasics(t *testing.T) {
	t.Parallel()
	init := shmem.Triple[uint64]{Seq: 0, Val: 5, Bits: 0b1010}
	for name, r := range newBackends(t, init) {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if got := r.Load(); got != init {
				t.Fatalf("Load = %+v, want %+v", got, init)
			}
			// Failed CAS: wrong old.
			if r.CompareAndSwap(shmem.Triple[uint64]{Seq: 9}, shmem.Triple[uint64]{Seq: 1}) {
				t.Fatal("CAS with wrong old succeeded")
			}
			// Successful CAS.
			next := shmem.Triple[uint64]{Seq: 1, Val: 7, Bits: 0b0101}
			if !r.CompareAndSwap(init, next) {
				t.Fatal("CAS with correct old failed")
			}
			if got := r.Load(); got != next {
				t.Fatalf("Load after CAS = %+v, want %+v", got, next)
			}
			// FetchXor returns the pre-state and flips only bits.
			prev := r.FetchXor(0b0011)
			if prev != next {
				t.Fatalf("FetchXor returned %+v, want %+v", prev, next)
			}
			want := next
			want.Bits ^= 0b0011
			if got := r.Load(); got != want {
				t.Fatalf("Load after xor = %+v, want %+v", got, want)
			}
		})
	}
}

// TestTripleRegCrossCheck drives the same random primitive sequence against
// all backends and requires identical observable behaviour.
func TestTripleRegCrossCheck(t *testing.T) {
	t.Parallel()
	type step struct {
		Op   uint8 // mod 3: 0 load, 1 cas, 2 xor
		Seq  uint8
		Val  uint16
		Bits uint16 // masked to 16 bits (within every backend's reader field)
	}
	f := func(steps []step) bool {
		init := shmem.Triple[uint64]{Seq: 0, Val: 1, Bits: 0}
		regs := newBackends(t, init)
		names := backendNames
		for _, s := range steps {
			switch s.Op % 3 {
			case 0:
				want := regs[names[0]].Load()
				for _, n := range names[1:] {
					if regs[n].Load() != want {
						return false
					}
				}
			case 1:
				// Propose a CAS from the current content of the
				// first backend; all must agree on the outcome.
				old := regs[names[0]].Load()
				if s.Seq%2 == 0 {
					old.Seq++ // make it fail half the time
				}
				next := shmem.Triple[uint64]{Seq: old.Seq + 1, Val: uint64(s.Val), Bits: uint64(s.Bits)}
				want := regs[names[0]].CompareAndSwap(old, next)
				for _, n := range names[1:] {
					if regs[n].CompareAndSwap(old, next) != want {
						return false
					}
				}
			case 2:
				mask := uint64(s.Bits)
				want := regs[names[0]].FetchXor(mask)
				for _, n := range names[1:] {
					if regs[n].FetchXor(mask) != want {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTripleRegConcurrentXorsCommute: n goroutines each xor a distinct bit
// once; afterwards all bits must be flipped regardless of interleaving, and
// every goroutine must have observed a distinct pre-state (atomicity).
func TestTripleRegConcurrentXorsCommute(t *testing.T) {
	t.Parallel()
	init := shmem.Triple[uint64]{Seq: 3, Val: 9, Bits: 0}
	for name, r := range newBackends(t, init) {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 16
			prevs := make([]shmem.Triple[uint64], n)
			var wg sync.WaitGroup
			for j := 0; j < n; j++ {
				j := j
				wg.Add(1)
				go func() {
					defer wg.Done()
					prevs[j] = r.FetchXor(1 << uint(j))
				}()
			}
			wg.Wait()
			if got := r.Load().Bits; got != 1<<n-1 {
				t.Fatalf("final bits %#x, want %#x", got, uint64(1<<n-1))
			}
			seen := make(map[uint64]bool, n)
			for _, p := range prevs {
				if seen[p.Bits] {
					t.Fatalf("two xors observed the same pre-state %#x: not atomic", p.Bits)
				}
				seen[p.Bits] = true
			}
		})
	}
}

func TestLayoutValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name   string
		layout shmem.Layout
		ok     bool
	}{
		{"default", shmem.DefaultLayout, true},
		{"exact64", shmem.Layout{SeqBits: 32, ValBits: 16, ReaderBits: 16}, true},
		{"over64", shmem.Layout{SeqBits: 33, ValBits: 16, ReaderBits: 16}, false},
		{"zeroSeq", shmem.Layout{SeqBits: 0, ValBits: 16, ReaderBits: 16}, false},
		{"zeroVal", shmem.Layout{SeqBits: 16, ValBits: 0, ReaderBits: 16}, false},
		{"zeroReaders", shmem.Layout{SeqBits: 16, ValBits: 16, ReaderBits: 0}, false},
	}
	for _, c := range cases {
		if err := c.layout.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", c.name, err, c.ok)
		}
	}
}

func TestLayoutPackUnpackRoundTrip(t *testing.T) {
	t.Parallel()
	layout := shmem.Layout{SeqBits: 20, ValBits: 24, ReaderBits: 20}
	f := func(seq, val, bits uint64) bool {
		tr := shmem.Triple[uint64]{
			Seq:  seq & layout.MaxSeq(),
			Val:  val & layout.MaxVal(),
			Bits: bits & (1<<20 - 1),
		}
		w, err := layout.Pack(tr)
		if err != nil {
			return false
		}
		return layout.Unpack(w) == tr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutPackRejectsOverflow(t *testing.T) {
	t.Parallel()
	layout := shmem.Layout{SeqBits: 8, ValBits: 8, ReaderBits: 8}
	if _, err := layout.Pack(shmem.Triple[uint64]{Seq: 256}); err == nil {
		t.Error("seq overflow accepted")
	}
	if _, err := layout.Pack(shmem.Triple[uint64]{Val: 256}); err == nil {
		t.Error("val overflow accepted")
	}
	if _, err := layout.Pack(shmem.Triple[uint64]{Bits: 256}); err == nil {
		t.Error("bits overflow accepted")
	}
}

func TestPacked64RejectsUnrepresentableCAS(t *testing.T) {
	t.Parallel()
	layout := shmem.Layout{SeqBits: 8, ValBits: 8, ReaderBits: 8}
	r, err := shmem.NewPacked64(layout, shmem.Triple[uint64]{Val: 1})
	if err != nil {
		t.Fatalf("NewPacked64: %v", err)
	}
	if r.CompareAndSwap(r.Load(), shmem.Triple[uint64]{Seq: 1, Val: 1 << 20}) {
		t.Fatal("CAS to unrepresentable triple succeeded")
	}
	if got := r.Load(); got.Val != 1 {
		t.Fatalf("register corrupted: %+v", got)
	}
}

func TestSeqRegs(t *testing.T) {
	t.Parallel()
	for name, r := range map[string]shmem.SeqReg{
		"atomic": &shmem.AtomicSeq{},
		"locked": &shmem.LockedSeq{},
	} {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if r.Load() != 0 {
				t.Fatal("zero value not 0")
			}
			if r.CompareAndSwap(1, 2) {
				t.Fatal("CAS with wrong old succeeded")
			}
			if !r.CompareAndSwap(0, 5) {
				t.Fatal("CAS with correct old failed")
			}
			if r.Load() != 5 {
				t.Fatal("CAS did not store")
			}
		})
	}
}

func TestAtomicSeqConcurrentMonotone(t *testing.T) {
	t.Parallel()
	var r shmem.AtomicSeq
	const procs = 8
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				cur := r.Load()
				r.CompareAndSwap(cur, cur+1)
			}
		}()
	}
	wg.Wait()
	if got := r.Load(); got == 0 || got > procs*1000 {
		t.Fatalf("implausible final count %d", got)
	}
}
