package shmem

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Layout128 describes how a Packed128 register partitions its two 64-bit
// words:
//
//	word0: | Seq (SeqBits) | tracking bits (ReaderBits) |
//	word1: | Seq tag (64-ValBits) | Val (ValBits) |
//
// SeqBits+ReaderBits must be at most 64 and ValBits at most 48, leaving a
// sequence tag of at least 16 bits in word1 to bind a value to its sequence
// number.
type Layout128 struct {
	// SeqBits is the width of the sequence-number field in word0.
	SeqBits int
	// ValBits is the width of the value field in word1.
	ValBits int
	// ReaderBits is the number of tracking bits, i.e. the maximum m.
	ReaderBits int
}

// DefaultLayout128 supports 2^40 writes, 32-bit values, and 24 readers.
var DefaultLayout128 = Layout128{SeqBits: 40, ValBits: 32, ReaderBits: 24}

// Validate reports whether the layout is well-formed.
func (l Layout128) Validate() error {
	switch {
	case l.SeqBits < 1 || l.ValBits < 1 || l.ReaderBits < 1:
		return fmt.Errorf("shmem: layout fields must be positive: %+v", l)
	case l.SeqBits+l.ReaderBits > 64:
		return fmt.Errorf("shmem: seq and reader bits exceed word0: %+v", l)
	case l.ValBits > 48:
		return fmt.Errorf("shmem: value field leaves a sequence tag under 16 bits: %+v", l)
	case l.ReaderBits > MaxReaders:
		return fmt.Errorf("shmem: layout supports at most %d readers: %+v", MaxReaders, l)
	default:
		return nil
	}
}

// MaxSeq returns the largest representable sequence number.
func (l Layout128) MaxSeq() uint64 { return mask(l.SeqBits) }

// MaxVal returns the largest representable value.
func (l Layout128) MaxVal() uint64 { return mask(l.ValBits) }

func (l Layout128) tagBits() int { return 64 - l.ValBits }

func (l Layout128) pack0(seq, bits uint64) uint64 { return seq<<uint(l.ReaderBits) | bits }

func (l Layout128) unpack0(w uint64) (seq, bits uint64) {
	return w >> uint(l.ReaderBits), w & mask(l.ReaderBits)
}

func (l Layout128) pack1(seq, val uint64) uint64 {
	return (seq&mask(l.tagBits()))<<uint(l.ValBits) | val
}

func (l Layout128) tagMatches(w1, seq uint64) bool {
	return w1>>uint(l.ValBits) == seq&mask(l.tagBits())
}

func (l Layout128) val(w1 uint64) uint64 { return w1 & mask(l.ValBits) }

func (l Layout128) check(t Triple[uint64]) error {
	switch {
	case t.Seq > l.MaxSeq():
		return fmt.Errorf("shmem: sequence number %d exceeds layout capacity %d", t.Seq, l.MaxSeq())
	case t.Val > l.MaxVal():
		return fmt.Errorf("shmem: value %d exceeds layout capacity %d", t.Val, l.MaxVal())
	case t.Bits > mask(l.ReaderBits):
		return fmt.Errorf("shmem: tracking bits %#x exceed %d reader bits", t.Bits, l.ReaderBits)
	default:
		return nil
	}
}

// Packed128 packs the triple into two atomic 64-bit words — twice the
// register width of Packed64, with none of PtrTriple's allocations. It
// exploits a structural invariant of Algorithms 1 and 2: the register's
// sequence number only ever increases, and the value changes only together
// with the sequence number, so (Seq -> Val) is a function over the register's
// reachable states. Word0 carries (Seq | Bits) and is the CAS arbiter; word1
// carries (Seq tag | Val) and is published by the unique CAS winner for each
// sequence number. A load assembles (seq, bits) from word0 and waits for
// word1's tag to match.
//
// Like SeqlockTriple this trades wait-freedom for allocation-freedom: a CAS
// winner preempted between its word0 CAS and its word1 publish stalls loads
// of the new sequence number (the publish is the very next instruction, so
// the window is a few nanoseconds in practice). The sequence tag wraps every
// 2^(64-ValBits) writes; a load would need to sleep across an entire wrap of
// writes to mis-bind a value, which the >= 16-bit minimum tag makes
// unrealistic.
//
// Callers must keep sequence numbers monotone and below MaxSeq, and values
// below MaxVal; a CompareAndSwap that changes Val while keeping Seq, or that
// decreases Seq, is outside the supported usage and simply fails.
//
// Construct with NewPacked128; the zero value is not usable.
type Packed128 struct {
	layout Layout128
	w0     atomic.Uint64
	w1     atomic.Uint64
}

var _ TripleReg[uint64] = (*Packed128)(nil)

// NewPacked128 returns a two-word packed register with the given layout
// holding init.
func NewPacked128(layout Layout128, init Triple[uint64]) (*Packed128, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if err := layout.check(init); err != nil {
		return nil, err
	}
	r := &Packed128{layout: layout}
	r.w0.Store(layout.pack0(init.Seq, init.Bits))
	r.w1.Store(layout.pack1(init.Seq, init.Val))
	return r, nil
}

// Layout returns the register's bit layout.
func (r *Packed128) Layout() Layout128 { return r.layout }

// Load implements TripleReg.
func (r *Packed128) Load() Triple[uint64] {
	l := r.layout
	for spin := 0; ; spin++ {
		w0 := r.w0.Load()
		seq, bits := l.unpack0(w0)
		w1 := r.w1.Load()
		if l.tagMatches(w1, seq) {
			// w1 is the published value of seq (tag wrap aside, see the
			// type comment). Bits from w0 and the value of seq form a
			// state the register held while w0 was current.
			return Triple[uint64]{Seq: seq, Val: l.val(w1), Bits: bits}
		}
		if spin&31 == 31 {
			runtime.Gosched()
		}
	}
}

// CompareAndSwap implements TripleReg. Triples outside the layout or outside
// the seq-monotone usage cannot be (or become) register contents, so the swap
// fails for them.
func (r *Packed128) CompareAndSwap(old, new Triple[uint64]) bool {
	l := r.layout
	if l.check(old) != nil || l.check(new) != nil {
		return false
	}
	if new.Seq < old.Seq || (new.Seq == old.Seq && new.Val != old.Val) {
		return false // outside the supported seq-monotone usage
	}
	// Guard against a fabricated old: if old.Seq is current, the published
	// value for it must be old.Val, else the register never held old.
	w1 := r.w1.Load()
	if l.tagMatches(w1, old.Seq) && l.val(w1) != old.Val {
		return false
	}
	if !r.w0.CompareAndSwap(l.pack0(old.Seq, old.Bits), l.pack0(new.Seq, new.Bits)) {
		return false
	}
	if new.Seq != old.Seq {
		// This CAS is the unique winner for new.Seq: publish its value.
		r.w1.Store(l.pack1(new.Seq, new.Val))
	}
	return true
}

// FetchXor implements TripleReg. The value is snapshotted from word1 before
// the word0 CAS: while the CAS target w0 stays current, word1 can only hold
// the value published for w0's sequence number, so a successful CAS certifies
// the snapshot. Capturing it after the CAS would race a later writer
// overwriting word1.
func (r *Packed128) FetchXor(maskBits uint64) Triple[uint64] {
	l := r.layout
	maskBits &= mask(l.ReaderBits)
	for spin := 0; ; spin++ {
		w0 := r.w0.Load()
		seq, bits := l.unpack0(w0)
		w1 := r.w1.Load()
		if l.tagMatches(w1, seq) && r.w0.CompareAndSwap(w0, w0^maskBits) {
			return Triple[uint64]{Seq: seq, Val: l.val(w1), Bits: bits}
		}
		if spin&31 == 31 {
			runtime.Gosched()
		}
	}
}
