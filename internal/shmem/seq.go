package shmem

import "sync/atomic"

// AtomicSeq is the default SeqReg backend: a single atomic 64-bit word.
// The zero value holds 0 and is ready to use.
type AtomicSeq struct {
	v atomic.Uint64
}

var _ SeqReg = (*AtomicSeq)(nil)

// Load implements SeqReg.
func (r *AtomicSeq) Load() uint64 { return r.v.Load() }

// CompareAndSwap implements SeqReg.
func (r *AtomicSeq) CompareAndSwap(old, new uint64) bool {
	return r.v.CompareAndSwap(old, new)
}
