// Package shmem provides the shared-memory base objects of the paper's model
// (Section 2): linearizable registers accessed with read, write,
// compare&swap, and fetch&xor primitives.
//
// The central object is the register R of Algorithms 1 and 2, which holds a
// triple (sequence number, value, m-bit tracking string). Three backends
// implement the same TripleReg interface:
//
//   - PtrTriple: lock-free, built on a pointer to an immutable triple with
//     pointer compare&swap (the default);
//   - LockedTriple: a mutex-protected reference implementation, trivially
//     linearizable, used to cross-check the lock-free backends;
//   - Packed64: the whole triple packed into a single 64-bit word operated on
//     with sync/atomic, the closest analogue of the hardware register the
//     paper assumes.
//
// Go's sync/atomic has no fetch&xor (only And/Or since Go 1.23), so every
// backend realizes fetch&xor as a linearizable read-modify-write: a CAS retry
// loop for the lock-free backends, a critical section for LockedTriple. Each
// fetch&xor still takes effect atomically, which is the only property the
// paper's proofs rely on; the step-count bounds (Lemma 2) are asserted in the
// deterministic scheduler where a fetch&xor is a single step.
package shmem

// MaxReaders is the largest supported number of readers m: the tracking bits
// occupy one 64-bit word.
const MaxReaders = 64

// Triple is the content of the register R: the current value, its sequence
// number, and the encrypted reader set in the low m bits of Bits.
type Triple[V comparable] struct {
	// Seq is the value's sequence number.
	Seq uint64
	// Val is the register's current value.
	Val V
	// Bits is the one-time-pad-encrypted reader set of Val.
	Bits uint64
}

// TripleReg is a linearizable register holding a Triple, supporting the
// primitives Algorithm 1 applies to R. Implementations must be safe for
// concurrent use.
type TripleReg[V comparable] interface {
	// Load atomically reads the triple.
	Load() Triple[V]
	// CompareAndSwap atomically replaces the content with new if it
	// currently equals old, reporting whether it did.
	CompareAndSwap(old, new Triple[V]) bool
	// FetchXor atomically XORs mask into the tracking bits and returns the
	// triple held immediately before the operation.
	FetchXor(mask uint64) Triple[V]
}

// SeqReg is a linearizable register holding a sequence number, supporting the
// primitives Algorithms 1 and 2 apply to SN. Implementations must be safe for
// concurrent use.
type SeqReg interface {
	// Load atomically reads the sequence number.
	Load() uint64
	// CompareAndSwap atomically replaces the content with new if it
	// currently equals old, reporting whether it did.
	CompareAndSwap(old, new uint64) bool
}
