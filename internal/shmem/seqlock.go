package shmem

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// SeqlockTriple is an allocation-free TripleReg for word-sized values: the
// three fields live in separate atomic words guarded by a seqlock version.
// Load never blocks on a lock and never allocates; CompareAndSwap and
// FetchXor serialize through a writer mutex and never allocate either —
// unlike PtrTriple, which heap-allocates an immutable Triple per mutation.
//
// Consistency protocol:
//
//   - CompareAndSwap bumps the version to odd, stores the three fields, and
//     bumps it back to even. A Load that overlaps such a window retries.
//   - FetchXor rewrites only the tracking bits. Seq and Val are untouched, so
//     any (seq, val, bits) combination a Load can assemble across a FetchXor
//     is a state the register actually held; no version bump is needed, and
//     readers racing a FetchXor never retry.
//
// The trade-off against PtrTriple is progress, not safety: a mutator
// preempted inside its critical section delays other mutators (mutex) and
// loaders (odd version), so the backend is linearizable but not wait-free.
// Its mutation critical sections are a handful of straight-line atomic
// stores, which is why core auto-selects it for uint64 registers on the
// measured hot paths; PtrTriple remains the fully lock-free general backend.
//
// Construct with NewSeqlockTriple; the zero value is not usable.
type SeqlockTriple struct {
	mu   sync.Mutex // serializes CompareAndSwap and FetchXor
	ver  atomic.Uint64
	seq  atomic.Uint64
	val  atomic.Uint64
	bits atomic.Uint64
}

var _ TripleReg[uint64] = (*SeqlockTriple)(nil)

// NewSeqlockTriple returns a SeqlockTriple holding init.
func NewSeqlockTriple(init Triple[uint64]) *SeqlockTriple {
	r := &SeqlockTriple{}
	r.seq.Store(init.Seq)
	r.val.Store(init.Val)
	r.bits.Store(init.Bits)
	return r
}

// Load implements TripleReg. It is allocation-free and retries only while a
// CompareAndSwap is mid-flight.
func (r *SeqlockTriple) Load() Triple[uint64] {
	for spin := 0; ; spin++ {
		v1 := r.ver.Load()
		if v1&1 == 0 {
			t := Triple[uint64]{Seq: r.seq.Load(), Val: r.val.Load(), Bits: r.bits.Load()}
			if r.ver.Load() == v1 {
				return t
			}
		}
		if spin&31 == 31 {
			runtime.Gosched()
		}
	}
}

// CompareAndSwap implements TripleReg.
func (r *SeqlockTriple) CompareAndSwap(old, new Triple[uint64]) bool {
	r.mu.Lock()
	// Under mu the fields are stable: only mutators write them, and all
	// mutators hold mu.
	if r.seq.Load() != old.Seq || r.val.Load() != old.Val || r.bits.Load() != old.Bits {
		r.mu.Unlock()
		return false
	}
	r.ver.Add(1) // odd: loaders stand back
	r.seq.Store(new.Seq)
	r.val.Store(new.Val)
	r.bits.Store(new.Bits)
	r.ver.Add(1) // even: stable again
	r.mu.Unlock()
	return true
}

// FetchXor implements TripleReg. Only the bits word changes, so no version
// bump is needed; see the type comment.
func (r *SeqlockTriple) FetchXor(mask uint64) Triple[uint64] {
	r.mu.Lock()
	prev := Triple[uint64]{Seq: r.seq.Load(), Val: r.val.Load(), Bits: r.bits.Load()}
	r.bits.Store(prev.Bits ^ mask)
	r.mu.Unlock()
	return prev
}
