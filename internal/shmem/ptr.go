package shmem

import "sync/atomic"

// PtrTriple is the default, lock-free TripleReg backend: an atomic pointer to
// an immutable Triple. CompareAndSwap compares triple values (not pointers),
// so it is immune to pointer-identity ABA: a swap succeeds exactly when the
// register's current content equals old at the instant of the underlying
// pointer CAS.
//
// Construct with NewPtrTriple; the zero value is not usable.
type PtrTriple[V comparable] struct {
	p atomic.Pointer[Triple[V]]
}

var _ TripleReg[int] = (*PtrTriple[int])(nil)

// NewPtrTriple returns a PtrTriple holding init.
func NewPtrTriple[V comparable](init Triple[V]) *PtrTriple[V] {
	r := &PtrTriple[V]{}
	r.p.Store(&init)
	return r
}

// Load implements TripleReg.
func (r *PtrTriple[V]) Load() Triple[V] { return *r.p.Load() }

// CompareAndSwap implements TripleReg.
func (r *PtrTriple[V]) CompareAndSwap(old, new Triple[V]) bool {
	next := &new
	for {
		cur := r.p.Load()
		if *cur != old {
			return false
		}
		if r.p.CompareAndSwap(cur, next) {
			return true
		}
		// The pointer moved under us; if the new content still equals
		// old the swap must still be allowed to succeed, so retry.
	}
}

// FetchXor implements TripleReg.
func (r *PtrTriple[V]) FetchXor(mask uint64) Triple[V] {
	for {
		cur := r.p.Load()
		next := *cur
		next.Bits ^= mask
		if r.p.CompareAndSwap(cur, &next) {
			return *cur
		}
	}
}
