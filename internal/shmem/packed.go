package shmem

import "fmt"

import "sync/atomic"

// Layout describes how a Packed64 register partitions its 64-bit word into
// the triple's three fields, from most to least significant:
//
//	| Seq (SeqBits) | Val (ValBits) | tracking bits (ReaderBits) |
//
// The widths must be positive and sum to at most 64.
type Layout struct {
	// SeqBits is the width of the sequence-number field; the register can
	// represent 2^SeqBits-1 writes before overflowing.
	SeqBits int
	// ValBits is the width of the value field.
	ValBits int
	// ReaderBits is the number of tracking bits, i.e. the maximum number
	// of readers m.
	ReaderBits int
}

// DefaultLayout supports 2^28 writes, 16-bit values, and 20 readers.
var DefaultLayout = Layout{SeqBits: 28, ValBits: 16, ReaderBits: 20}

// Validate reports whether the layout is well-formed.
func (l Layout) Validate() error {
	switch {
	case l.SeqBits < 1 || l.ValBits < 1 || l.ReaderBits < 1:
		return fmt.Errorf("shmem: layout fields must be positive: %+v", l)
	case l.SeqBits+l.ValBits+l.ReaderBits > 64:
		return fmt.Errorf("shmem: layout exceeds 64 bits: %+v", l)
	case l.ReaderBits > MaxReaders:
		return fmt.Errorf("shmem: layout supports at most %d readers: %+v", MaxReaders, l)
	default:
		return nil
	}
}

// MaxSeq returns the largest representable sequence number.
func (l Layout) MaxSeq() uint64 { return mask(l.SeqBits) }

// MaxVal returns the largest representable value.
func (l Layout) MaxVal() uint64 { return mask(l.ValBits) }

// Pack encodes a triple. Fields wider than the layout are rejected.
func (l Layout) Pack(t Triple[uint64]) (uint64, error) {
	if t.Seq > l.MaxSeq() {
		return 0, fmt.Errorf("shmem: sequence number %d exceeds layout capacity %d", t.Seq, l.MaxSeq())
	}
	if t.Val > l.MaxVal() {
		return 0, fmt.Errorf("shmem: value %d exceeds layout capacity %d", t.Val, l.MaxVal())
	}
	if t.Bits > mask(l.ReaderBits) {
		return 0, fmt.Errorf("shmem: tracking bits %#x exceed %d reader bits", t.Bits, l.ReaderBits)
	}
	return t.Seq<<uint(l.ValBits+l.ReaderBits) | t.Val<<uint(l.ReaderBits) | t.Bits, nil
}

// Unpack decodes a packed word into a triple.
func (l Layout) Unpack(w uint64) Triple[uint64] {
	return Triple[uint64]{
		Seq:  w >> uint(l.ValBits+l.ReaderBits),
		Val:  w >> uint(l.ReaderBits) & mask(l.ValBits),
		Bits: w & mask(l.ReaderBits),
	}
}

// Packed64 packs the whole triple into one atomic 64-bit word: the closest
// analogue of the single hardware register R the paper assumes. Sequence
// numbers, values, and tracking bits are bounded by the layout; callers must
// keep values within Layout.MaxVal and histories within Layout.MaxSeq.
//
// FetchXor is a CAS retry loop because sync/atomic lacks an XOR primitive;
// see the package comment.
//
// Construct with NewPacked64; the zero value is not usable.
type Packed64 struct {
	layout Layout
	w      atomic.Uint64
}

var _ TripleReg[uint64] = (*Packed64)(nil)

// NewPacked64 returns a packed register with the given layout holding init.
func NewPacked64(layout Layout, init Triple[uint64]) (*Packed64, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	w, err := layout.Pack(init)
	if err != nil {
		return nil, err
	}
	r := &Packed64{layout: layout}
	r.w.Store(w)
	return r, nil
}

// Layout returns the register's bit layout.
func (r *Packed64) Layout() Layout { return r.layout }

// Load implements TripleReg.
func (r *Packed64) Load() Triple[uint64] { return r.layout.Unpack(r.w.Load()) }

// CompareAndSwap implements TripleReg. Triples that do not fit the layout
// cannot be register contents, so the swap simply fails for them.
func (r *Packed64) CompareAndSwap(old, new Triple[uint64]) bool {
	ow, err := r.layout.Pack(old)
	if err != nil {
		return false
	}
	nw, err := r.layout.Pack(new)
	if err != nil {
		// The caller attempted to store an unrepresentable triple;
		// failing the CAS keeps the register consistent and surfaces
		// the condition as a stuck writer in tests rather than silent
		// truncation.
		return false
	}
	return r.w.CompareAndSwap(ow, nw)
}

// FetchXor implements TripleReg.
func (r *Packed64) FetchXor(maskBits uint64) Triple[uint64] {
	maskBits &= mask(r.layout.ReaderBits)
	for {
		cur := r.w.Load()
		if r.w.CompareAndSwap(cur, cur^maskBits) {
			return r.layout.Unpack(cur)
		}
	}
}

func mask(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	if bits <= 0 {
		return 0
	}
	return uint64(1)<<uint(bits) - 1
}
