package shmem

import "sync"

// LockedTriple is the mutex-protected reference TripleReg backend. Every
// primitive executes in a critical section, so linearizability is immediate.
// It exists to cross-check the lock-free backends and as the backend of the
// deterministic scheduler, where the scheduler serializes steps anyway.
//
// The zero value holds the zero Triple and is ready to use; NewLockedTriple
// sets an initial value.
type LockedTriple[V comparable] struct {
	mu sync.Mutex
	t  Triple[V]
}

var _ TripleReg[int] = (*LockedTriple[int])(nil)

// NewLockedTriple returns a LockedTriple holding init.
func NewLockedTriple[V comparable](init Triple[V]) *LockedTriple[V] {
	return &LockedTriple[V]{t: init}
}

// Load implements TripleReg.
func (r *LockedTriple[V]) Load() Triple[V] {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.t
}

// CompareAndSwap implements TripleReg.
func (r *LockedTriple[V]) CompareAndSwap(old, new Triple[V]) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.t != old {
		return false
	}
	r.t = new
	return true
}

// FetchXor implements TripleReg.
func (r *LockedTriple[V]) FetchXor(mask uint64) Triple[V] {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev := r.t
	r.t.Bits ^= mask
	return prev
}

// LockedSeq is a mutex-protected SeqReg, the reference counterpart of
// AtomicSeq. The zero value holds 0 and is ready to use.
type LockedSeq struct {
	mu sync.Mutex
	v  uint64
}

var _ SeqReg = (*LockedSeq)(nil)

// Load implements SeqReg.
func (r *LockedSeq) Load() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// CompareAndSwap implements SeqReg.
func (r *LockedSeq) CompareAndSwap(old, new uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.v != old {
		return false
	}
	r.v = new
	return true
}
