package shmem_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"auditreg/internal/shmem"
)

// TestFastBackendsAllocationFree: the whole point of the seqlock and
// two-word-packed backends is that no primitive heap-allocates.
func TestFastBackendsAllocationFree(t *testing.T) {
	init := shmem.Triple[uint64]{Seq: 0, Val: 1, Bits: 0}
	packed128, err := shmem.NewPacked128(shmem.DefaultLayout128, init)
	if err != nil {
		t.Fatalf("NewPacked128: %v", err)
	}
	for name, r := range map[string]shmem.TripleReg[uint64]{
		"seqlock":   shmem.NewSeqlockTriple(init),
		"packed128": packed128,
	} {
		r := r
		t.Run(name, func(t *testing.T) {
			var seq uint64
			if n := testing.AllocsPerRun(200, func() {
				cur := r.Load()
				next := shmem.Triple[uint64]{Seq: seq + 1, Val: cur.Val + 1, Bits: cur.Bits}
				if !r.CompareAndSwap(cur, next) {
					t.Fatal("sequential CAS failed")
				}
				seq++
				r.FetchXor(0b11)
				r.Load()
			}); n != 0 {
				t.Fatalf("load/cas/xor cycle allocated %v times per run", n)
			}
		})
	}
}

// TestPacked128Validation: layouts and triples outside the representable
// range are rejected at construction, and unrepresentable or non-monotone
// CAS arguments fail without corrupting the register.
func TestPacked128Validation(t *testing.T) {
	t.Parallel()
	if err := (shmem.Layout128{SeqBits: 0, ValBits: 8, ReaderBits: 8}).Validate(); err == nil {
		t.Error("zero seq bits accepted")
	}
	if err := (shmem.Layout128{SeqBits: 60, ValBits: 8, ReaderBits: 8}).Validate(); err == nil {
		t.Error("word0 overflow accepted")
	}
	if err := (shmem.Layout128{SeqBits: 8, ValBits: 56, ReaderBits: 8}).Validate(); err == nil {
		t.Error("sub-16-bit sequence tag accepted")
	}
	if _, err := shmem.NewPacked128(shmem.DefaultLayout128, shmem.Triple[uint64]{Val: 1 << 40}); err == nil {
		t.Error("unrepresentable init accepted")
	}

	r, err := shmem.NewPacked128(shmem.Layout128{SeqBits: 8, ValBits: 8, ReaderBits: 8}, shmem.Triple[uint64]{Val: 1})
	if err != nil {
		t.Fatalf("NewPacked128: %v", err)
	}
	cur := r.Load()
	if r.CompareAndSwap(cur, shmem.Triple[uint64]{Seq: 1, Val: 1 << 20}) {
		t.Error("CAS to unrepresentable triple succeeded")
	}
	// Same seq, different value: outside the seq-monotone contract.
	if r.CompareAndSwap(cur, shmem.Triple[uint64]{Seq: cur.Seq, Val: cur.Val + 1}) {
		t.Error("same-seq value change succeeded")
	}
	// Decreasing seq.
	if !r.CompareAndSwap(cur, shmem.Triple[uint64]{Seq: 5, Val: 2}) {
		t.Fatal("monotone CAS failed")
	}
	if r.CompareAndSwap(r.Load(), shmem.Triple[uint64]{Seq: 3, Val: 3}) {
		t.Error("seq decrease succeeded")
	}
	// Fabricated old: current seq with a value the register never held.
	if r.CompareAndSwap(shmem.Triple[uint64]{Seq: 5, Val: 99}, shmem.Triple[uint64]{Seq: 6, Val: 4}) {
		t.Error("CAS from fabricated old succeeded")
	}
	if got := r.Load(); got.Seq != 5 || got.Val != 2 {
		t.Fatalf("register corrupted: %+v", got)
	}
}

// TestFastBackendsWriterReaderStress runs the register's actual access
// pattern — one writer CASing monotone (seq, val) pairs, readers loading and
// xoring — and checks every observed triple is internally consistent
// (val == seq+base, a relation the writer maintains). Run with -race this
// doubles as the memory-model check for the seqlock and two-word protocols.
func TestFastBackendsWriterReaderStress(t *testing.T) {
	t.Parallel()
	const base = 1000
	init := shmem.Triple[uint64]{Seq: 0, Val: base, Bits: 0}
	packed128, err := shmem.NewPacked128(shmem.DefaultLayout128, init)
	if err != nil {
		t.Fatalf("NewPacked128: %v", err)
	}
	for name, r := range map[string]shmem.TripleReg[uint64]{
		"seqlock":   shmem.NewSeqlockTriple(init),
		"packed128": packed128,
	} {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const writes = 20000
			var bad atomic.Uint64
			var wg sync.WaitGroup
			stop := make(chan struct{})
			check := func(tr shmem.Triple[uint64]) {
				if tr.Val != tr.Seq+base {
					bad.Add(1)
				}
			}
			for g := 0; g < 3; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if i%4 == 0 {
							check(r.FetchXor(1 << uint(g)))
						} else {
							check(r.Load())
						}
					}
				}()
			}
			for i := uint64(0); i < writes; {
				cur := r.Load()
				check(cur)
				next := shmem.Triple[uint64]{Seq: cur.Seq + 1, Val: cur.Seq + 1 + base, Bits: cur.Bits}
				if r.CompareAndSwap(cur, next) {
					i++
				}
			}
			close(stop)
			wg.Wait()
			if n := bad.Load(); n != 0 {
				t.Fatalf("%d torn (seq, val) pairs observed", n)
			}
			if got := r.Load(); got.Seq != writes {
				t.Fatalf("final seq %d, want %d", got.Seq, writes)
			}
		})
	}
}
