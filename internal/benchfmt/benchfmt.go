// Package benchfmt defines the machine-readable benchmark result schema
// shared by cmd/benchjson and cmd/loadgen (the BENCH_*.json files of the
// perf trajectory; see EXPERIMENTS.md), plus the parser for `go test -bench`
// output. One schema means one trajectory: results from the benchmark suite
// and from the workload driver land in identical files and are compared with
// identical tooling.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Schema is the format tag of every report this package writes.
const Schema = "auditreg-bench/v1"

// Result is one benchmark's (or one workload configuration's) aggregated
// outcome.
type Result struct {
	Name    string             `json:"name"`
	Package string             `json:"package"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
	// Stages, when present, attributes the cell's latency to pipeline
	// stages: one entry per stage name (conn-decode, exec-queue-wait,
	// store-op, wal-commit-wait, completion, conn-flush, wal-fsync,
	// client-rtt), scraped from the daemon's metrics endpoint at cell end.
	// Values are quantized bucket upper bounds in nanoseconds — the same
	// aggregate-only numbers the endpoint serves.
	Stages map[string]StageLatency `json:"stages,omitempty"`
}

// StageLatency is one pipeline stage's latency summary in a Result.
type StageLatency struct {
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
	MaxNs float64 `json:"max_ns"`
	Count float64 `json:"count"`
}

// Report is the BENCH_*.json schema: the environment the numbers were taken
// in plus one Result per benchmark. Numbers are comparable only within one
// report (same machine, same run) — which is why every report records the
// environment completely (Go version, CPU count, GOMAXPROCS, hostname):
// once series are produced on different machines (a loadgen driver here, an
// auditd server there, see series E13), the metadata is what says whether
// two files are comparable at all.
type Report struct {
	Schema     string   `json:"schema"`
	Created    string   `json:"created"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Hostname   string   `json:"hostname,omitempty"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	Packages   []string `json:"packages"`
	Results    []Result `json:"results"`
}

// NewReport returns a report stamped with the current environment. bench and
// benchtime describe how the numbers were produced (a -bench regexp for the
// benchmark suite, a workload description for loadgen), count the number of
// repetitions folded into each result.
func NewReport(bench, benchtime string, count int, packages []string) Report {
	hostname, _ := os.Hostname() // best effort; omitted when unavailable
	return Report{
		Schema:     Schema,
		Created:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Hostname:   hostname,
		Bench:      bench,
		Benchtime:  benchtime,
		Count:      count,
		Packages:   packages,
	}
}

// WriteFile writes the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// ReadFile loads a BENCH_*.json report, validating the schema tag. It is
// how regression gates (cmd/loadgen -baseline, CI's bench-smoke job) load
// the checked-in baseline.
func ReadFile(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return r, fmt.Errorf("benchfmt: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return r, nil
}

// Parse reads `go test -bench` output, attributing benchmarks to the package
// announced by the preceding "pkg:" line and folding repeated runs of one
// benchmark into their per-metric best (see Better). Results come back
// sorted by package, then name.
func Parse(r io.Reader) ([]Result, error) {
	byKey := make(map[string]*Result)
	var order []string
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := TrimProcSuffix(fields[0])
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		key := pkg + " " + name
		res := byKey[key]
		if res == nil {
			res = &Result{Name: name, Package: pkg, Metrics: make(map[string]float64)}
			byKey[key] = res
			order = append(order, key)
		}
		if iters > res.Iters {
			res.Iters = iters
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := NormalizeUnit(fields[i+1])
			prev, seen := res.Metrics[unit]
			if !seen || Better(unit, v, prev) {
				res.Metrics[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Package != out[j].Package {
			return out[i].Package < out[j].Package
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// NormalizeUnit maps go test's memory-metric spellings onto the schema's
// canonical names, so `-benchmem` output and loadgen's runtime.MemStats
// deltas land under the same keys: "B/op" becomes "bytes/op"; "allocs/op"
// is already canonical. Every other unit passes through unchanged.
func NormalizeUnit(unit string) string {
	if unit == "B/op" {
		return "bytes/op"
	}
	return unit
}

// throughputUnits are higher-is-better; every other unit is a cost
// (ns/op, bytes/op, allocs/op, ...).
var throughputUnits = map[string]bool{
	"MB/s":  true,
	"ops/s": true,
}

// Better reports whether v beats prev for the unit: throughput units are
// higher-is-better, every cost unit lower-is-better.
func Better(unit string, v, prev float64) bool {
	if throughputUnits[unit] {
		return v > prev
	}
	return v < prev
}

// TrimProcSuffix drops the -GOMAXPROCS suffix go test appends to benchmark
// names, so results compare across machines.
func TrimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Metric builds a metric map from alternating unit, value pairs; a
// convenience for producers that assemble results directly (loadgen).
func Metric(pairs ...any) (map[string]float64, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("benchfmt: Metric takes unit/value pairs, got %d arguments", len(pairs))
	}
	m := make(map[string]float64, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		unit, ok := pairs[i].(string)
		if !ok {
			return nil, fmt.Errorf("benchfmt: Metric unit %v is not a string", pairs[i])
		}
		switch v := pairs[i+1].(type) {
		case float64:
			m[unit] = v
		case int:
			m[unit] = float64(v)
		case int64:
			m[unit] = float64(v)
		case uint64:
			m[unit] = float64(v)
		default:
			return nil, fmt.Errorf("benchfmt: Metric value for %q has unsupported type %T", unit, v)
		}
	}
	return m, nil
}
