package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: auditreg
cpu: Some CPU
BenchmarkE7SilentRead-8   	100000000	        10.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkE7SilentRead-8   	120000000	         9.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkE1Write/pads=block-8         	 5000000	       250.0 ns/op	         1.20 cas/write	         0.25 sha/write
pkg: auditreg/internal/ida
BenchmarkSplit/bulk-8     	   20000	     60000 ns/op	 800.0 MB/s
BenchmarkSplit/bulk-8     	   21000	     59000 ns/op	 820.0 MB/s
PASS
`

func TestParseFoldsRepsToBest(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}

	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}

	silent := byName["BenchmarkE7SilentRead"]
	if silent.Package != "auditreg" {
		t.Errorf("package = %q, want auditreg", silent.Package)
	}
	if silent.Metrics["ns/op"] != 9.8 {
		t.Errorf("ns/op = %v, want the best (minimum) 9.8", silent.Metrics["ns/op"])
	}
	if silent.Iters != 120000000 {
		t.Errorf("iters = %d, want the max 120000000", silent.Iters)
	}

	split := byName["BenchmarkSplit/bulk"]
	if split.Package != "auditreg/internal/ida" {
		t.Errorf("package = %q, want auditreg/internal/ida", split.Package)
	}
	if split.Metrics["MB/s"] != 820.0 {
		t.Errorf("MB/s = %v, want the best (maximum) 820", split.Metrics["MB/s"])
	}
	if split.Metrics["ns/op"] != 59000.0 {
		t.Errorf("ns/op = %v, want 59000", split.Metrics["ns/op"])
	}

	write := byName["BenchmarkE1Write/pads=block"]
	if write.Metrics["sha/write"] != 0.25 {
		t.Errorf("sha/write = %v, want 0.25", write.Metrics["sha/write"])
	}
}

func TestParseSortsByPackageThenName(t *testing.T) {
	results, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	for i := 1; i < len(results); i++ {
		a, b := results[i-1], results[i]
		if a.Package > b.Package || (a.Package == b.Package && a.Name > b.Name) {
			t.Fatalf("results out of order: %s/%s before %s/%s", a.Package, a.Name, b.Package, b.Name)
		}
	}
}

func TestBetter(t *testing.T) {
	cases := []struct {
		unit    string
		v, prev float64
		want    bool
	}{
		{"ns/op", 5, 10, true},
		{"ns/op", 10, 5, false},
		{"allocs/op", 0, 1, true},
		{"MB/s", 900, 800, true},
		{"MB/s", 700, 800, false},
		{"ops/s", 2e6, 1e6, true},
	}
	for _, c := range cases {
		if got := Better(c.unit, c.v, c.prev); got != c.want {
			t.Errorf("Better(%q, %v, %v) = %v, want %v", c.unit, c.v, c.prev, got, c.want)
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkX-8", "BenchmarkX"},
		{"BenchmarkX-16", "BenchmarkX"},
		{"BenchmarkX/sub=a-8", "BenchmarkX/sub=a"},
		{"BenchmarkX", "BenchmarkX"},
		{"BenchmarkX-y", "BenchmarkX-y"},
	}
	for _, c := range cases {
		if got := TrimProcSuffix(c.in); got != c.want {
			t.Errorf("TrimProcSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNewReportStampsEnvironment(t *testing.T) {
	rep := NewReport("Loadgen", "1x", 1, []string{"auditreg/cmd/loadgen"})
	if rep.Schema != Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, Schema)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" || rep.CPUs == 0 {
		t.Errorf("environment fields missing: %+v", rep)
	}
	if rep.GoMaxProcs != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d", rep.GoMaxProcs, runtime.GOMAXPROCS(0))
	}
	if host, err := os.Hostname(); err == nil && rep.Hostname != host {
		t.Errorf("hostname = %q, want %q", rep.Hostname, host)
	}
	if rep.Created == "" {
		t.Error("created timestamp missing")
	}
	// The metadata lands in the serialized form remote/local series are
	// compared through.
	enc, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, field := range []string{`"gomaxprocs"`, `"cpus"`, `"go"`} {
		if !strings.Contains(string(enc), field) {
			t.Errorf("serialized report lacks %s: %s", field, enc)
		}
	}
}

func TestMetric(t *testing.T) {
	m, err := Metric("ns/op", 12.5, "reads", int64(100), "ops/s", 2e6)
	if err != nil {
		t.Fatalf("Metric: %v", err)
	}
	if m["ns/op"] != 12.5 || m["reads"] != 100 || m["ops/s"] != 2e6 {
		t.Errorf("Metric = %v", m)
	}
	if _, err := Metric("odd"); err == nil {
		t.Error("odd argument count must fail")
	}
	if _, err := Metric(1, 2); err == nil {
		t.Error("non-string unit must fail")
	}
	if _, err := Metric("u", "not-a-number"); err == nil {
		t.Error("unsupported value type must fail")
	}
}

func TestParseCarriesMemMetrics(t *testing.T) {
	out := `
pkg: auditreg/wire
BenchmarkEncode-8   1000000   95.2 ns/op   0 B/op   0 allocs/op
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	m := results[0].Metrics
	if _, ok := m["B/op"]; ok {
		t.Error("B/op must be normalized away")
	}
	if v, ok := m["bytes/op"]; !ok || v != 0 {
		t.Errorf("bytes/op = %v, %v", v, ok)
	}
	if v, ok := m["allocs/op"]; !ok || v != 0 {
		t.Errorf("allocs/op = %v, %v", v, ok)
	}
	// Both are costs: lower is better.
	if !Better("bytes/op", 1, 2) || Better("allocs/op", 2, 1) {
		t.Error("mem metrics must compare lower-is-better")
	}
}

func TestReadFileRoundTrip(t *testing.T) {
	rep := NewReport("X", "1x", 1, []string{"p"})
	rep.Results = []Result{{Name: "A", Package: "p", Iters: 1,
		Metrics: map[string]float64{"ops/s": 1000, "allocs/op": 0.5}}}
	path := filepath.Join(t.TempDir(), "BENCH_T.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got.Results) != 1 || got.Results[0].Metrics["ops/s"] != 1000 {
		t.Fatalf("round trip lost data: %+v", got.Results)
	}
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("foreign schema must be rejected")
	}
}
