// Package netsim is a small deterministic asynchronous message-passing
// simulator: nodes exchange messages through a network that delivers them one
// at a time in a seeded pseudo-random order, with optional crash faults and
// optional seeded per-link delays.
// It hosts the replicated auditable-register baseline (internal/replicated),
// matching the asynchronous crash-prone model of Cogo & Bessani, and is the
// groundwork for multi-server dispersal scenarios where link asymmetry
// matters.
package netsim

import (
	"fmt"
	mathrand "math/rand/v2"
)

// NodeID identifies a node.
type NodeID int

// Message is an envelope in flight.
type Message struct {
	// From and To are the endpoints.
	From, To NodeID
	// Payload is the protocol message.
	Payload any
}

// Handler is a node's protocol logic: Deliver consumes one message and
// returns the messages it sends in response. Handlers run only inside
// Network.Pump, one at a time; they need no internal locking.
type Handler interface {
	Deliver(msg Message) []Message
}

// NodeStats counts one node's activity.
type NodeStats struct {
	// Sent is the number of messages the node handed to the network.
	Sent int
	// Delivered is the number of messages delivered to the node.
	Delivered int
}

// Stats counts network activity.
type Stats struct {
	// Sent is the number of messages handed to the network.
	Sent int
	// Delivered is the number of messages delivered to handlers.
	Delivered int
	// Dropped counts messages to or from crashed nodes.
	Dropped int
}

// pending is one in-flight message and the virtual time it becomes
// deliverable.
type pending struct {
	msg     Message
	readyAt uint64
}

// Network is the simulator. Construct with New; not safe for concurrent use
// (the simulation is single-threaded by design — asynchrony comes from the
// randomized delivery order, not from goroutines).
type Network struct {
	seed     uint64
	rng      *mathrand.Rand
	handlers map[NodeID]Handler
	crashed  map[NodeID]bool
	inflight []pending
	stats    Stats
	perNode  map[NodeID]*NodeStats

	now      uint64
	delayMax int
	// everDelayed latches once SetLinkDelay enables delays: from then on
	// Step must honor readyAt ordering even if delays are later disabled
	// (delayed messages may still be in flight). While false, every
	// in-flight message is deliverable immediately and Step picks in O(1).
	everDelayed bool
	// linkDelays memoizes the seeded per-link delay, so Send derives each
	// link's delay once rather than re-seeding an RNG per message.
	linkDelays map[[2]NodeID]uint64
}

// New returns a network with the given delivery-order seed.
func New(seed uint64) *Network {
	return &Network{
		seed:     seed,
		rng:      mathrand.New(mathrand.NewPCG(seed, 0x7e7)),
		handlers: make(map[NodeID]Handler),
		crashed:  make(map[NodeID]bool),
		perNode:  make(map[NodeID]*NodeStats),
	}
}

// Register attaches a handler to an id. Re-registering replaces the handler.
func (n *Network) Register(id NodeID, h Handler) {
	n.handlers[id] = h
}

// Crash marks a node as crashed: messages to and from it vanish.
func (n *Network) Crash(id NodeID) { n.crashed[id] = true }

// Crashed reports whether a node is crashed.
func (n *Network) Crashed(id NodeID) bool { return n.crashed[id] }

// SetLinkDelay gives every ordered link (from, to) a fixed delay in
// [0, max] virtual time steps, drawn deterministically from the network seed
// — same seed, same topology of slow and fast links. One virtual step
// elapses per delivery. Zero (the default) restores the delay-free model.
// Delays only postpone eligibility; every message is still delivered
// eventually, so quiescence and the crash semantics are unchanged.
func (n *Network) SetLinkDelay(max int) {
	if max < 0 {
		max = 0
	}
	n.delayMax = max
	if max > 0 {
		n.everDelayed = true
	}
	n.linkDelays = nil // re-derive under the new bound
}

// linkDelay returns the seeded delay of the ordered link (from, to),
// memoized per link.
func (n *Network) linkDelay(from, to NodeID) uint64 {
	if n.delayMax == 0 {
		return 0
	}
	key := [2]NodeID{from, to}
	if d, ok := n.linkDelays[key]; ok {
		return d
	}
	r := mathrand.New(mathrand.NewPCG(n.seed^0x6c696e6b, uint64(from)<<32^uint64(uint32(to))))
	d := uint64(r.IntN(n.delayMax + 1))
	if n.linkDelays == nil {
		n.linkDelays = make(map[[2]NodeID]uint64)
	}
	n.linkDelays[key] = d
	return d
}

// node returns the per-node counter cell for id.
func (n *Network) node(id NodeID) *NodeStats {
	ns := n.perNode[id]
	if ns == nil {
		ns = &NodeStats{}
		n.perNode[id] = ns
	}
	return ns
}

// Send queues messages for asynchronous delivery.
func (n *Network) Send(msgs ...Message) {
	for _, m := range msgs {
		if n.crashed[m.From] {
			n.stats.Dropped++
			continue
		}
		n.stats.Sent++
		n.node(m.From).Sent++
		n.inflight = append(n.inflight, pending{msg: m, readyAt: n.now + n.linkDelay(m.From, m.To)})
	}
}

// Pending returns the number of messages in flight.
func (n *Network) Pending() int { return len(n.inflight) }

// Stats returns the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// NodeStats returns one node's activity counters.
func (n *Network) NodeStats(id NodeID) NodeStats {
	if ns := n.perNode[id]; ns != nil {
		return *ns
	}
	return NodeStats{}
}

// Step delivers one randomly chosen deliverable in-flight message, advancing
// virtual time past any link delays as needed. It reports whether a message
// was available.
func (n *Network) Step() (bool, error) {
	for len(n.inflight) > 0 {
		var i int
		if !n.everDelayed {
			// Delay-free network: every message is deliverable now; pick
			// uniformly in O(1), as before delays existed.
			i = n.rng.IntN(len(n.inflight))
		} else {
			// Advance virtual time to the earliest deliverable message,
			// then choose uniformly among everything deliverable now.
			minReady := n.inflight[0].readyAt
			for _, p := range n.inflight {
				if p.readyAt < minReady {
					minReady = p.readyAt
				}
			}
			if minReady > n.now {
				n.now = minReady
			}
			ready := 0
			for _, p := range n.inflight {
				if p.readyAt <= n.now {
					ready++
				}
			}
			pick := n.rng.IntN(ready)
			for j, p := range n.inflight {
				if p.readyAt <= n.now {
					if pick == 0 {
						i = j
						break
					}
					pick--
				}
			}
		}

		m := n.inflight[i].msg
		last := len(n.inflight) - 1
		n.inflight[i] = n.inflight[last]
		n.inflight = n.inflight[:last]
		n.now++

		if n.crashed[m.To] {
			n.stats.Dropped++
			continue
		}
		h, ok := n.handlers[m.To]
		if !ok {
			return false, fmt.Errorf("netsim: message to unregistered node %d", m.To)
		}
		n.stats.Delivered++
		n.node(m.To).Delivered++
		n.Send(h.Deliver(m)...)
		return true, nil
	}
	return false, nil
}

// Pump delivers messages until the network is quiescent or until the
// predicate becomes true (checked after every delivery). A nil predicate
// pumps to quiescence. It errors if the predicate is non-nil and unmet at
// quiescence — the protocol deadlocked or lost a needed quorum.
func (n *Network) Pump(done func() bool) error {
	for {
		if done != nil && done() {
			return nil
		}
		progressed, err := n.Step()
		if err != nil {
			return err
		}
		if !progressed {
			if done == nil {
				return nil
			}
			return fmt.Errorf("netsim: quiescent before completion (lost quorum?)")
		}
	}
}
