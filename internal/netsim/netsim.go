// Package netsim is a small deterministic asynchronous message-passing
// simulator: nodes exchange messages through a network that delivers them one
// at a time in a seeded pseudo-random order, with optional crash faults.
// It hosts the replicated auditable-register baseline (internal/replicated),
// matching the asynchronous crash-prone model of Cogo & Bessani.
package netsim

import (
	"fmt"
	mathrand "math/rand/v2"
)

// NodeID identifies a node.
type NodeID int

// Message is an envelope in flight.
type Message struct {
	// From and To are the endpoints.
	From, To NodeID
	// Payload is the protocol message.
	Payload any
}

// Handler is a node's protocol logic: Deliver consumes one message and
// returns the messages it sends in response. Handlers run only inside
// Network.Pump, one at a time; they need no internal locking.
type Handler interface {
	Deliver(msg Message) []Message
}

// Stats counts network activity.
type Stats struct {
	// Sent is the number of messages handed to the network.
	Sent int
	// Delivered is the number of messages delivered to handlers.
	Delivered int
	// Dropped counts messages to or from crashed nodes.
	Dropped int
}

// Network is the simulator. Construct with New; not safe for concurrent use
// (the simulation is single-threaded by design — asynchrony comes from the
// randomized delivery order, not from goroutines).
type Network struct {
	rng      *mathrand.Rand
	handlers map[NodeID]Handler
	crashed  map[NodeID]bool
	inflight []Message
	stats    Stats
}

// New returns a network with the given delivery-order seed.
func New(seed uint64) *Network {
	return &Network{
		rng:      mathrand.New(mathrand.NewPCG(seed, 0x7e7)),
		handlers: make(map[NodeID]Handler),
		crashed:  make(map[NodeID]bool),
	}
}

// Register attaches a handler to an id. Re-registering replaces the handler.
func (n *Network) Register(id NodeID, h Handler) {
	n.handlers[id] = h
}

// Crash marks a node as crashed: messages to and from it vanish.
func (n *Network) Crash(id NodeID) { n.crashed[id] = true }

// Crashed reports whether a node is crashed.
func (n *Network) Crashed(id NodeID) bool { return n.crashed[id] }

// Send queues messages for asynchronous delivery.
func (n *Network) Send(msgs ...Message) {
	for _, m := range msgs {
		if n.crashed[m.From] {
			n.stats.Dropped++
			continue
		}
		n.stats.Sent++
		n.inflight = append(n.inflight, m)
	}
}

// Pending returns the number of messages in flight.
func (n *Network) Pending() int { return len(n.inflight) }

// Stats returns the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// Step delivers one randomly chosen in-flight message. It reports whether a
// message was available.
func (n *Network) Step() (bool, error) {
	for len(n.inflight) > 0 {
		i := n.rng.IntN(len(n.inflight))
		m := n.inflight[i]
		last := len(n.inflight) - 1
		n.inflight[i] = n.inflight[last]
		n.inflight = n.inflight[:last]

		if n.crashed[m.To] {
			n.stats.Dropped++
			continue
		}
		h, ok := n.handlers[m.To]
		if !ok {
			return false, fmt.Errorf("netsim: message to unregistered node %d", m.To)
		}
		n.stats.Delivered++
		n.Send(h.Deliver(m)...)
		return true, nil
	}
	return false, nil
}

// Pump delivers messages until the network is quiescent or until the
// predicate becomes true (checked after every delivery). A nil predicate
// pumps to quiescence. It errors if the predicate is non-nil and unmet at
// quiescence — the protocol deadlocked or lost a needed quorum.
func (n *Network) Pump(done func() bool) error {
	for {
		if done != nil && done() {
			return nil
		}
		progressed, err := n.Step()
		if err != nil {
			return err
		}
		if !progressed {
			if done == nil {
				return nil
			}
			return fmt.Errorf("netsim: quiescent before completion (lost quorum?)")
		}
	}
}
