package netsim_test

import (
	"testing"

	"auditreg/internal/netsim"
)

// echoNode replies to every string message with "ack:<msg>".
type echoNode struct {
	id       netsim.NodeID
	received []string
}

func (e *echoNode) Deliver(m netsim.Message) []netsim.Message {
	s := m.Payload.(string)
	e.received = append(e.received, s)
	if len(s) >= 4 && s[:4] == "ack:" {
		return nil
	}
	return []netsim.Message{{From: e.id, To: m.From, Payload: "ack:" + s}}
}

func TestPumpToQuiescence(t *testing.T) {
	t.Parallel()
	net := netsim.New(1)
	a := &echoNode{id: 1}
	b := &echoNode{id: 2}
	net.Register(1, a)
	net.Register(2, b)

	net.Send(netsim.Message{From: 1, To: 2, Payload: "hello"})
	if err := net.Pump(nil); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	if len(b.received) != 1 || b.received[0] != "hello" {
		t.Fatalf("b received %v", b.received)
	}
	if len(a.received) != 1 || a.received[0] != "ack:hello" {
		t.Fatalf("a received %v", a.received)
	}
	st := net.Stats()
	if st.Sent != 2 || st.Delivered != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCrashDropsMessages(t *testing.T) {
	t.Parallel()
	net := netsim.New(1)
	a := &echoNode{id: 1}
	b := &echoNode{id: 2}
	net.Register(1, a)
	net.Register(2, b)
	net.Crash(2)

	if !net.Crashed(2) {
		t.Fatal("Crashed(2) = false")
	}
	net.Send(netsim.Message{From: 1, To: 2, Payload: "hello"})
	if err := net.Pump(nil); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	if len(b.received) != 0 {
		t.Fatal("crashed node received a message")
	}
	if net.Stats().Dropped != 1 {
		t.Fatalf("stats = %+v", net.Stats())
	}
	// Messages from a crashed node vanish too.
	net.Send(netsim.Message{From: 2, To: 1, Payload: "zombie"})
	if err := net.Pump(nil); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	if len(a.received) != 0 {
		t.Fatal("message from crashed node delivered")
	}
}

func TestPumpPredicateUnmet(t *testing.T) {
	t.Parallel()
	net := netsim.New(1)
	net.Register(1, &echoNode{id: 1})
	// Nothing in flight, predicate never satisfied.
	if err := net.Pump(func() bool { return false }); err == nil {
		t.Fatal("Pump returned nil despite unmet predicate")
	}
}

func TestUnregisteredDestination(t *testing.T) {
	t.Parallel()
	net := netsim.New(1)
	net.Register(1, &echoNode{id: 1})
	net.Send(netsim.Message{From: 1, To: 99, Payload: "void"})
	if err := net.Pump(nil); err == nil {
		t.Fatal("message to unregistered node accepted")
	}
}

// orderNode records the order in which payload ints arrive.
type orderNode struct {
	got []int
}

func (o *orderNode) Deliver(m netsim.Message) []netsim.Message {
	o.got = append(o.got, m.Payload.(int))
	return nil
}

func TestPerNodeCounters(t *testing.T) {
	t.Parallel()
	net := netsim.New(3)
	a := &echoNode{id: 1}
	b := &echoNode{id: 2}
	c := &echoNode{id: 3}
	net.Register(1, a)
	net.Register(2, b)
	net.Register(3, c)

	net.Send(netsim.Message{From: 1, To: 2, Payload: "x"})
	net.Send(netsim.Message{From: 1, To: 3, Payload: "y"})
	net.Send(netsim.Message{From: 2, To: 3, Payload: "z"})
	if err := net.Pump(nil); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	// 3 originals + 3 acks.
	if got := net.NodeStats(1); got.Sent != 2 || got.Delivered != 2 {
		t.Fatalf("node 1 stats = %+v", got)
	}
	if got := net.NodeStats(2); got.Sent != 2 || got.Delivered != 2 {
		t.Fatalf("node 2 stats = %+v", got)
	}
	if got := net.NodeStats(3); got.Sent != 2 || got.Delivered != 2 {
		t.Fatalf("node 3 stats = %+v", got)
	}
	// Per-node counters tie out against the global ones.
	st := net.Stats()
	var sent, delivered int
	for id := netsim.NodeID(1); id <= 3; id++ {
		ns := net.NodeStats(id)
		sent += ns.Sent
		delivered += ns.Delivered
	}
	if sent != st.Sent || delivered != st.Delivered {
		t.Fatalf("per-node sums (%d, %d) != global (%d, %d)", sent, delivered, st.Sent, st.Delivered)
	}
	if net.NodeStats(99) != (netsim.NodeStats{}) {
		t.Fatal("unknown node has nonzero stats")
	}
}

func TestSeededLinkDelay(t *testing.T) {
	t.Parallel()
	run := func(seed uint64, maxDelay int) []int {
		net := netsim.New(seed)
		node := &orderNode{}
		net.Register(1, node)
		net.Register(2, &orderNode{})
		net.Register(3, &orderNode{})
		net.SetLinkDelay(maxDelay)
		for i := 0; i < 30; i++ {
			net.Send(netsim.Message{From: netsim.NodeID(2 + i%2), To: 1, Payload: i})
		}
		if err := net.Pump(nil); err != nil {
			t.Fatalf("Pump: %v", err)
		}
		return node.got
	}
	// Determinism: same seed and delay bound, same delivery order; and
	// despite delays, every message is delivered.
	a, b := run(7, 16), run(7, 16)
	if len(a) != 30 {
		t.Fatalf("delivered %d messages, want 30", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed and delay produced different delivery orders")
		}
	}
	// Delays actually reorder traffic relative to the delay-free run with
	// the same seed: the two orders differ somewhere.
	free := run(7, 0)
	same := true
	for i := range a {
		if a[i] != free[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("per-link delays changed nothing about delivery order")
	}
	// Crash semantics are unchanged under delays.
	net := netsim.New(9)
	net.Register(1, &orderNode{})
	net.SetLinkDelay(8)
	net.Crash(2)
	net.Send(netsim.Message{From: 2, To: 1, Payload: 1})
	if err := net.Pump(nil); err != nil {
		t.Fatalf("Pump: %v", err)
	}
	if net.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", net.Stats().Dropped)
	}
}

func TestDeliveryOrderSeededDeterministic(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) []int {
		net := netsim.New(seed)
		node := &orderNode{}
		net.Register(1, node)
		for i := 0; i < 20; i++ {
			net.Send(netsim.Message{From: 2, To: 1, Payload: i})
		}
		net.Register(2, &orderNode{})
		if err := net.Pump(nil); err != nil {
			t.Fatalf("Pump: %v", err)
		}
		return node.got
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different delivery orders")
		}
	}
	// Different seeds almost surely shuffle differently.
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: two seeds produced identical order (possible but unlikely)")
	}
}
