package netsim

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// TestFabricRoundTrip pushes bytes both ways across one fabric link.
func TestFabricRoundTrip(t *testing.T) {
	f := NewFabric(1, 0)
	ln, err := f.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type accepted struct {
		err error
	}
	done := make(chan accepted, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- accepted{err}
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- accepted{err}
			return
		}
		if !bytes.Equal(buf, []byte("hello")) {
			done <- accepted{io.ErrUnexpectedEOF}
			return
		}
		_, err = c.Write([]byte("world"))
		done <- accepted{err}
	}()

	c, err := f.Dialer("cli")("srv", time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if c.RemoteAddr().String() != "srv" || c.LocalAddr().String() != "cli" {
		t.Fatalf("addrs = %v -> %v", c.LocalAddr(), c.RemoteAddr())
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	if a := <-done; a.err != nil {
		t.Fatalf("server side: %v", a.err)
	}
}

// TestFabricSeededDelays pins determinism and asymmetry: the same seed
// yields the same per-direction delays, a different seed a different
// topology (with overwhelming probability at this range).
func TestFabricSeededDelays(t *testing.T) {
	a := NewFabric(7, 10*time.Millisecond)
	b := NewFabric(7, 10*time.Millisecond)
	c := NewFabric(8, 10*time.Millisecond)
	pairs := [][2]string{{"x", "y"}, {"y", "x"}, {"x", "z"}, {"w", "y"}}
	differs := false
	for _, p := range pairs {
		da, db, dc := a.linkDelay(p[0], p[1]), b.linkDelay(p[0], p[1]), c.linkDelay(p[0], p[1])
		if da != db {
			t.Errorf("link %v: same seed gave %v vs %v", p, da, db)
		}
		if da != dc {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical delay topologies")
	}
	if a.linkDelay("x", "y") == a.linkDelay("y", "x") && a.linkDelay("x", "z") == a.linkDelay("z", "x") {
		t.Error("every sampled link is symmetric; asymmetric draws expected")
	}
}

// TestFabricSetDelay checks the dynamic override: it must reach a LIVE
// connection (the chaos lab's delay-spike scenario), not just future dials,
// and revising it back down must release the link promptly — including a
// chunk already sleeping under a huge "hung link" delay.
func TestFabricSetDelay(t *testing.T) {
	f := NewFabric(3, 0)
	ln, err := f.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()

	c, err := f.Dialer("cli")("srv", time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	one := make([]byte, 1)
	rtt := func() time.Duration {
		start := time.Now()
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := io.ReadFull(c, one); err != nil {
			t.Fatalf("read: %v", err)
		}
		return time.Since(start)
	}

	if d := rtt(); d > 100*time.Millisecond {
		t.Fatalf("baseline echo took %v on an instant fabric", d)
	}

	// Spike the request direction of the live connection.
	f.SetDelay("cli", "srv", 80*time.Millisecond)
	if d := rtt(); d < 80*time.Millisecond {
		t.Fatalf("echo took %v; the 80ms override did not reach the live link", d)
	}

	// Hang the link, park a byte in it, then release: the parked byte must
	// come back promptly once the override drops, not after the original
	// huge delay.
	f.SetDelay("cli", "srv", time.Hour)
	start := time.Now()
	if _, err := c.Write([]byte("y")); err != nil {
		t.Fatalf("write into hung link: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := c.Read(one); err == nil {
		t.Fatal("byte crossed a link hung for an hour")
	}
	c.SetReadDeadline(time.Time{})
	f.SetDelay("cli", "srv", 0)
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatalf("read after release: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("parked byte took %v to release", elapsed)
	}
	if one[0] != 'y' {
		t.Fatalf("released byte = %q", one)
	}
}

// TestFabricPartition checks that a cut severs established connections,
// fails new dials, and heals.
func TestFabricPartition(t *testing.T) {
	f := NewFabric(2, 0)
	ln, err := f.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()

	dial := f.Dialer("cli")
	c, err := dial("srv", time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(c, one); err != nil {
		t.Fatalf("echo: %v", err)
	}

	f.Partition("cli", "srv")
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(one); err == nil {
		t.Fatal("read across a partition succeeded")
	}
	if _, err := dial("srv", 100*time.Millisecond); err == nil {
		t.Fatal("dial across a partition succeeded")
	}

	f.Heal("cli", "srv")
	c2, err := dial("srv", time.Second)
	if err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
	c2.Close()
}
