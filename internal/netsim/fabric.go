package netsim

import (
	"fmt"
	"io"
	mathrand "math/rand/v2"
	"net"
	"sync"
	"time"
)

// Fabric exports the simulator's seeded per-link delay model to real
// byte-stream code: in-memory net.Listener / dialer pairs over net.Pipe,
// with a deterministic asymmetric latency per ordered (from, to) endpoint
// pair and cuttable links — a whole auditd cluster, its client pools, and a
// partition schedule in one process, no sockets involved.
//
// Endpoints are names: a listener is registered under the name it Listens
// on, and each dialer is constructed with the name of the principal doing
// the dialing, so the (from, to) link a connection crosses is explicit.
// Same seed, same latency topology — the property the message-passing
// Network above guarantees for protocol steps, carried over to streams.
//
// Safe for concurrent use.
type Fabric struct {
	seed     uint64
	maxDelay time.Duration

	mu        sync.Mutex
	listeners map[string]*fabListener
	cut       map[[2]string]bool
	conns     map[[2]string][]io.Closer
	delays    map[[2]string]time.Duration
}

// NewFabric returns a fabric whose links carry a seeded one-way delay in
// [0, maxDelay] per ordered endpoint pair (zero maxDelay: instant links).
func NewFabric(seed uint64, maxDelay time.Duration) *Fabric {
	if maxDelay < 0 {
		maxDelay = 0
	}
	return &Fabric{
		seed:      seed,
		maxDelay:  maxDelay,
		listeners: make(map[string]*fabListener),
		cut:       make(map[[2]string]bool),
		conns:     make(map[[2]string][]io.Closer),
		delays:    make(map[[2]string]time.Duration),
	}
}

// linkDelay returns the current delay of the ordered link (from, to):
// a SetDelay override if one is in force, else the seeded draw, memoized —
// the stream twin of Network.linkDelay. Asymmetry is the point: the two
// directions of a pair draw independently, like real paths.
func (f *Fabric) linkDelay(from, to string) time.Duration {
	key := [2]string{from, to}
	f.mu.Lock()
	defer f.mu.Unlock()
	if d, ok := f.delays[key]; ok {
		return d
	}
	if f.maxDelay == 0 {
		return 0
	}
	h1, h2 := f.seed^0x66616272, uint64(0x6963) // "fabr", "ic"
	for _, s := range []string{from, "\x00", to} {
		for _, b := range []byte(s) {
			h1 = (h1 ^ uint64(b)) * 0x100000001b3
		}
	}
	r := mathrand.New(mathrand.NewPCG(h1, h2))
	d := time.Duration(r.Int64N(int64(f.maxDelay) + 1))
	f.delays[key] = d
	return d
}

// SetDelay overrides the one-way delay of the ordered link (from, to) from
// now on, replacing the seeded draw. Unlike the frozen-at-first-use seeded
// delays, the override takes effect on LIVE connections: pumps consult the
// fabric per chunk, and a chunk already sleeping re-checks the delay every
// few milliseconds, so revising a huge delay back down releases it promptly.
// A huge delay is the fabric's "hung node": bytes stall indefinitely while
// the connection stays open — no RST, exactly the failure a crash detector
// cannot see. Negative d clamps to zero. Call once per direction to stall a
// pair both ways.
func (f *Fabric) SetDelay(from, to string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.mu.Lock()
	f.delays[[2]string{from, to}] = d
	f.mu.Unlock()
}

// Partition cuts both directions between two endpoint names: established
// connections across the cut are severed immediately (both sides see the
// connection die, exactly like a pulled cable) and new dials fail until
// Heal. Listeners and other links are untouched.
func (f *Fabric) Partition(a, b string) {
	f.mu.Lock()
	f.cut[[2]string{a, b}] = true
	f.cut[[2]string{b, a}] = true
	doomed := append([]io.Closer(nil), f.conns[[2]string{a, b}]...)
	doomed = append(doomed, f.conns[[2]string{b, a}]...)
	delete(f.conns, [2]string{a, b})
	delete(f.conns, [2]string{b, a})
	f.mu.Unlock()
	for _, c := range doomed {
		c.Close()
	}
}

// Heal removes the cut between two endpoint names; subsequent dials succeed.
func (f *Fabric) Heal(a, b string) {
	f.mu.Lock()
	delete(f.cut, [2]string{a, b})
	delete(f.cut, [2]string{b, a})
	f.mu.Unlock()
}

// Listen registers a listener under name. The returned net.Listener plugs
// straight into server.Serve.
func (f *Fabric) Listen(name string) (net.Listener, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.listeners[name]; ok {
		return nil, fmt.Errorf("netsim: fabric address %q already in use", name)
	}
	ln := &fabListener{f: f, name: name, ch: make(chan net.Conn), done: make(chan struct{})}
	f.listeners[name] = ln
	return ln, nil
}

// Dialer returns the dial function of the named endpoint — the value a
// cluster test hands to client.WithDialer. Each successful dial crosses the
// (from, addr) link: its two directions carry their seeded delays, and a
// Partition covering the pair kills it.
func (f *Fabric) Dialer(from string) func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		f.mu.Lock()
		ln := f.listeners[addr]
		severed := f.cut[[2]string{from, addr}]
		f.mu.Unlock()
		if severed {
			return nil, fmt.Errorf("netsim: dial %s from %s: link partitioned", addr, from)
		}
		if ln == nil {
			return nil, fmt.Errorf("netsim: dial %s from %s: connection refused", addr, from)
		}

		// Two pipes bridged by delay pumps: the client end and the server
		// end never touch directly, so each direction's latency is imposed
		// by its pump.
		cliEnd, cliFab := net.Pipe()
		srvFab, srvEnd := net.Pipe()
		go pump(cliFab, srvFab, func() time.Duration { return f.linkDelay(from, addr) })
		go pump(srvFab, cliFab, func() time.Duration { return f.linkDelay(addr, from) })

		f.mu.Lock()
		key := [2]string{from, addr}
		f.conns[key] = append(f.conns[key], cliFab, srvFab)
		f.mu.Unlock()

		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case ln.ch <- &fabConn{Conn: srvEnd, local: addr, remote: from}:
			return &fabConn{Conn: cliEnd, local: from, remote: addr}, nil
		case <-ln.done:
			cliFab.Close()
			return nil, fmt.Errorf("netsim: dial %s from %s: connection refused (listener closed)", addr, from)
		case <-timer.C:
			cliFab.Close()
			return nil, fmt.Errorf("netsim: dial %s from %s: timeout", addr, from)
		}
	}
}

// pump relays one direction, imposing the link's current delay per chunk —
// re-read from the fabric each time so SetDelay reaches live connections.
// Closing either pipe end unblocks it; it closes the far side so connection
// death propagates both ways, like a TCP reset.
func pump(src, dst net.Conn, delay func() time.Duration) {
	defer dst.Close()
	defer src.Close()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			// Sleep in short slices, re-consulting the delay each time: a
			// chunk caught under a huge "hung link" override is released as
			// soon as the override is revised down, instead of serving out
			// the original sentence.
			for start := time.Now(); ; {
				d := delay()
				elapsed := time.Since(start)
				if elapsed >= d {
					break
				}
				if rem := d - elapsed; rem < 10*time.Millisecond {
					time.Sleep(rem)
				} else {
					time.Sleep(10 * time.Millisecond)
				}
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// fabListener is a fabric listening endpoint.
type fabListener struct {
	f    *Fabric
	name string
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func (l *fabListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *fabListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.f.mu.Lock()
		if l.f.listeners[l.name] == l {
			delete(l.f.listeners, l.name)
		}
		l.f.mu.Unlock()
	})
	return nil
}

func (l *fabListener) Addr() net.Addr { return fabAddr(l.name) }

// fabConn tags a pipe end with its fabric endpoints.
type fabConn struct {
	net.Conn
	local, remote string
}

func (c *fabConn) LocalAddr() net.Addr  { return fabAddr(c.local) }
func (c *fabConn) RemoteAddr() net.Addr { return fabAddr(c.remote) }

// fabAddr is a fabric endpoint name as a net.Addr.
type fabAddr string

func (a fabAddr) Network() string { return "fabric" }
func (a fabAddr) String() string  { return string(a) }
