// Package spec holds sequential specifications of the objects implemented in
// this repository. They serve as oracles: property-based tests replay random
// operation sequences against both the concurrent implementation and the
// spec, and the linearizability checker searches for an order of concurrent
// operations that the spec accepts.
//
// The auditable specifications implement the paper's sequential definition
// (Section 2): an audit returns a pair (j, v) if and only if a read by p_j
// returning v precedes the audit (accuracy + completeness).
package spec

import (
	"auditreg/internal/core"
)

// AuditableRegister is the sequential specification of Algorithm 1's object.
type AuditableRegister[V comparable] struct {
	cur   V
	seen  map[core.Entry[V]]struct{}
	pairs []core.Entry[V]
}

// NewAuditableRegister returns a specification register holding initial.
func NewAuditableRegister[V comparable](initial V) *AuditableRegister[V] {
	return &AuditableRegister[V]{
		cur:  initial,
		seen: make(map[core.Entry[V]]struct{}),
	}
}

// Read returns the current value and records that reader j read it.
func (s *AuditableRegister[V]) Read(j int) V {
	s.record(core.Entry[V]{Reader: j, Value: s.cur})
	return s.cur
}

// Write sets the current value.
func (s *AuditableRegister[V]) Write(v V) { s.cur = v }

// Audit returns the set of all (reader, value) pairs read so far.
func (s *AuditableRegister[V]) Audit() core.Report[V] {
	return core.NewReport(s.pairs...)
}

// Current returns the register's value without recording a read.
func (s *AuditableRegister[V]) Current() V { return s.cur }

func (s *AuditableRegister[V]) record(e core.Entry[V]) {
	if _, dup := s.seen[e]; dup {
		return
	}
	s.seen[e] = struct{}{}
	s.pairs = append(s.pairs, e)
}

// AuditableMax is the sequential specification of Algorithm 2's object: reads
// return the largest value written so far, audits report effective reads.
// Values are compared with the user ordering; the nonce machinery of the
// implementation is invisible at this level.
type AuditableMax[V comparable] struct {
	cur   V
	less  func(a, b V) bool
	seen  map[core.Entry[V]]struct{}
	pairs []core.Entry[V]
}

// NewAuditableMax returns a specification max register holding initial,
// ordered by less.
func NewAuditableMax[V comparable](initial V, less func(a, b V) bool) *AuditableMax[V] {
	return &AuditableMax[V]{
		cur:  initial,
		less: less,
		seen: make(map[core.Entry[V]]struct{}),
	}
}

// Read returns the largest value written and records the access of reader j.
func (s *AuditableMax[V]) Read(j int) V {
	e := core.Entry[V]{Reader: j, Value: s.cur}
	if _, dup := s.seen[e]; !dup {
		s.seen[e] = struct{}{}
		s.pairs = append(s.pairs, e)
	}
	return s.cur
}

// WriteMax raises the register to v if v is larger than the current value.
func (s *AuditableMax[V]) WriteMax(v V) {
	if s.less(s.cur, v) {
		s.cur = v
	}
}

// Audit returns the set of all (reader, value) pairs read so far.
func (s *AuditableMax[V]) Audit() core.Report[V] {
	return core.NewReport(s.pairs...)
}

// Current returns the largest value written without recording a read.
func (s *AuditableMax[V]) Current() V { return s.cur }

// ViewPair is one audited snapshot access: reader j obtained View.
type ViewPair[V comparable] struct {
	// Reader is the scanning process id.
	Reader int
	// View is the snapshot view it obtained.
	View []V
}

// AuditableSnapshot is the sequential specification of Algorithm 3's object:
// an n-component single-writer-per-component snapshot whose audits report the
// views returned by scans.
type AuditableSnapshot[V comparable] struct {
	state []V
	pairs []ViewPair[V]
}

// NewAuditableSnapshot returns a specification snapshot with n components
// holding initial.
func NewAuditableSnapshot[V comparable](n int, initial V) *AuditableSnapshot[V] {
	state := make([]V, n)
	for i := range state {
		state[i] = initial
	}
	return &AuditableSnapshot[V]{state: state}
}

// Update sets component i to v.
func (s *AuditableSnapshot[V]) Update(i int, v V) { s.state[i] = v }

// Scan returns the current view and records the access of reader j.
func (s *AuditableSnapshot[V]) Scan(j int) []V {
	view := make([]V, len(s.state))
	copy(view, s.state)
	if !s.contains(j, view) {
		s.pairs = append(s.pairs, ViewPair[V]{Reader: j, View: view})
	}
	return view
}

// Audit returns all (reader, view) pairs scanned so far.
func (s *AuditableSnapshot[V]) Audit() []ViewPair[V] {
	out := make([]ViewPair[V], len(s.pairs))
	copy(out, s.pairs)
	return out
}

func (s *AuditableSnapshot[V]) contains(j int, view []V) bool {
	for _, p := range s.pairs {
		if p.Reader != j || len(p.View) != len(view) {
			continue
		}
		same := true
		for i := range view {
			if p.View[i] != view[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
