package spec_test

import (
	"testing"

	"auditreg/internal/spec"
)

func TestAuditableRegisterSpec(t *testing.T) {
	t.Parallel()
	s := spec.NewAuditableRegister(10)
	if got := s.Read(0); got != 10 {
		t.Fatalf("read = %d", got)
	}
	s.Write(20)
	if got := s.Current(); got != 20 {
		t.Fatalf("current = %d", got)
	}
	s.Read(1)
	s.Read(1) // duplicate pair, set semantics
	rep := s.Audit()
	if !rep.Contains(0, 10) || !rep.Contains(1, 20) || rep.Len() != 2 {
		t.Fatalf("audit = %v", rep)
	}
}

func TestAuditableMaxSpec(t *testing.T) {
	t.Parallel()
	s := spec.NewAuditableMax(0, func(a, b int) bool { return a < b })
	s.WriteMax(5)
	s.WriteMax(3)
	if got := s.Read(2); got != 5 {
		t.Fatalf("read = %d", got)
	}
	if got := s.Current(); got != 5 {
		t.Fatalf("current = %d", got)
	}
	rep := s.Audit()
	if !rep.Contains(2, 5) || rep.Len() != 1 {
		t.Fatalf("audit = %v", rep)
	}
}

func TestAuditableSnapshotSpec(t *testing.T) {
	t.Parallel()
	s := spec.NewAuditableSnapshot(3, 0)
	view := s.Scan(1)
	if len(view) != 3 || view[0] != 0 {
		t.Fatalf("view = %v", view)
	}
	s.Update(2, 9)
	view2 := s.Scan(1)
	if view2[2] != 9 {
		t.Fatalf("view = %v", view2)
	}
	s.Scan(1) // duplicate view for the same reader: deduplicated
	pairs := s.Audit()
	if len(pairs) != 2 {
		t.Fatalf("audit = %+v", pairs)
	}
	// Mutating the returned view must not corrupt the spec state.
	view2[0] = 99
	if s.Scan(0)[0] == 99 {
		t.Fatal("spec state aliased to returned view")
	}
}
