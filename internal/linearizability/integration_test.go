package linearizability_test

import (
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/history"
	"auditreg/internal/linearizability"
	"auditreg/internal/maxreg"
	"auditreg/internal/otp"
	"auditreg/internal/sched"
)

// auditPairs converts a core report to history pairs.
func auditPairs(rep core.Report[uint64]) []history.Pair {
	entries := rep.Entries()
	out := make([]history.Pair, len(entries))
	for i, e := range entries {
		out[i] = history.Pair{Reader: e.Reader, Value: e.Value}
	}
	return out
}

// TestRegisterLinearizableUnderScheduler (E2) drives Algorithm 1 under many
// seeded deterministic schedules — every interleaving of shared-memory
// primitives is scheduler-chosen — records the operation history, and runs
// the linearizability checker against the auditable-register specification.
func TestRegisterLinearizableUnderScheduler(t *testing.T) {
	t.Parallel()
	const seeds = 150
	for seed := uint64(0); seed < seeds; seed++ {
		runScheduledRegisterCheck(t, seed)
	}
}

func runScheduledRegisterCheck(t *testing.T, seed uint64) {
	t.Helper()
	s := sched.New(sched.NewRandomPolicy(seed))
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), 2)
	if err != nil {
		t.Fatalf("pads: %v", err)
	}
	reg, err := core.New(2, uint64(0), pads)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	rd0, err := reg.Reader(0, core.WithProbe(s.Probe(0)))
	if err != nil {
		t.Fatalf("Reader: %v", err)
	}
	rd1, err := reg.Reader(1, core.WithProbe(s.Probe(1)))
	if err != nil {
		t.Fatalf("Reader: %v", err)
	}
	w := reg.Writer(core.WithProbe(s.Probe(100)))
	w2 := reg.Writer(core.WithProbe(s.Probe(101)))
	aud := reg.Auditor(core.WithProbe(s.Probe(200)))

	var rec history.Recorder
	read := func(proc int, rd *core.Reader[uint64]) {
		p := rec.Begin(proc, "read", 0)
		p.SetOut(rd.Read()).End()
	}
	write := func(proc int, w *core.Writer[uint64], v uint64) {
		p := rec.Begin(proc, "write", v)
		if err := w.Write(v); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		p.End()
	}
	audit := func(proc int) {
		p := rec.Begin(proc, "audit", 0)
		rep, err := aud.Audit()
		if err != nil {
			t.Errorf("audit: %v", err)
			return
		}
		p.SetOutSet(auditPairs(rep)).End()
	}

	if err := s.Run(map[int]func(){
		0:   func() { read(0, rd0); read(0, rd0) },
		1:   func() { read(1, rd1) },
		100: func() { write(100, w, 7) },
		101: func() { write(101, w2, 9) },
		200: func() { audit(200) },
	}); err != nil {
		t.Fatalf("seed %d: Run: %v", seed, err)
	}

	ops := rec.Ops()
	res, err := linearizability.Check(linearizability.AuditableRegisterModel{Initial: 0}, ops)
	if err != nil {
		t.Fatalf("seed %d: Check: %v", seed, err)
	}
	if !res.Ok {
		t.Fatalf("seed %d: history not linearizable:\n%v", seed, ops)
	}
}

// TestRegisterLinearizableUnderRealConcurrency (E2) repeats the check with
// free-running goroutines (true parallelism, no scheduler), many rounds.
func TestRegisterLinearizableUnderRealConcurrency(t *testing.T) {
	t.Parallel()
	const rounds = 120
	for round := 0; round < rounds; round++ {
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(uint64(round)), 2)
		if err != nil {
			t.Fatalf("pads: %v", err)
		}
		reg, err := core.New(2, uint64(0), pads)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rd0, _ := reg.Reader(0)
		rd1, _ := reg.Reader(1)
		w := reg.Writer()
		aud := reg.Auditor()

		var rec history.Recorder
		done := make(chan struct{}, 4)
		go func() {
			for i := 0; i < 2; i++ {
				p := rec.Begin(0, "read", 0)
				p.SetOut(rd0.Read()).End()
			}
			done <- struct{}{}
		}()
		go func() {
			p := rec.Begin(1, "read", 0)
			p.SetOut(rd1.Read()).End()
			done <- struct{}{}
		}()
		go func() {
			for _, v := range []uint64{3, 5} {
				p := rec.Begin(100, "write", v)
				if err := w.Write(v); err != nil {
					panic(err)
				}
				p.End()
			}
			done <- struct{}{}
		}()
		go func() {
			p := rec.Begin(200, "audit", 0)
			rep, err := aud.Audit()
			if err != nil {
				panic(err)
			}
			p.SetOutSet(auditPairs(rep)).End()
			done <- struct{}{}
		}()
		for i := 0; i < 4; i++ {
			<-done
		}

		res, err := linearizability.Check(linearizability.AuditableRegisterModel{Initial: 0}, rec.Ops())
		if err != nil {
			t.Fatalf("round %d: Check: %v", round, err)
		}
		if !res.Ok {
			t.Fatalf("round %d: history not linearizable:\n%v", round, rec.Ops())
		}
	}
}

// TestMaxRegisterLinearizableUnderScheduler (E5/Thm 40) checks Algorithm 2
// histories against the auditable max specification under seeded schedules.
func TestMaxRegisterLinearizableUnderScheduler(t *testing.T) {
	t.Parallel()
	const seeds = 100
	for seed := uint64(0); seed < seeds; seed++ {
		s := sched.New(sched.NewRandomPolicy(seed))
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), 2)
		if err != nil {
			t.Fatalf("pads: %v", err)
		}
		reg, err := maxreg.NewAuditable(2, uint64(0), func(a, b uint64) bool { return a < b }, pads)
		if err != nil {
			t.Fatalf("NewAuditable: %v", err)
		}
		rd0, err := reg.Reader(0, core.WithProbe(s.Probe(0)))
		if err != nil {
			t.Fatalf("Reader: %v", err)
		}
		rd1, err := reg.Reader(1, core.WithProbe(s.Probe(1)))
		if err != nil {
			t.Fatalf("Reader: %v", err)
		}
		w1, err := reg.Writer(otp.NewSeededNonces(seed, 1), core.WithProbe(s.Probe(100)))
		if err != nil {
			t.Fatalf("Writer: %v", err)
		}
		w2, err := reg.Writer(otp.NewSeededNonces(seed, 2), core.WithProbe(s.Probe(101)))
		if err != nil {
			t.Fatalf("Writer: %v", err)
		}
		aud := reg.Auditor(core.WithProbe(s.Probe(200)))

		var rec history.Recorder
		if err := s.Run(map[int]func(){
			0: func() {
				p := rec.Begin(0, "read", 0)
				p.SetOut(rd0.Read()).End()
				p = rec.Begin(0, "read", 0)
				p.SetOut(rd0.Read()).End()
			},
			1: func() {
				p := rec.Begin(1, "read", 0)
				p.SetOut(rd1.Read()).End()
			},
			100: func() {
				p := rec.Begin(100, "writeMax", 5)
				if err := w1.WriteMax(5); err != nil {
					t.Errorf("writeMax: %v", err)
					return
				}
				p.End()
			},
			101: func() {
				p := rec.Begin(101, "writeMax", 3)
				if err := w2.WriteMax(3); err != nil {
					t.Errorf("writeMax: %v", err)
					return
				}
				p.End()
			},
			200: func() {
				p := rec.Begin(200, "audit", 0)
				rep, err := aud.Audit()
				if err != nil {
					t.Errorf("audit: %v", err)
					return
				}
				p.SetOutSet(auditPairs(rep)).End()
			},
		}); err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}

		res, err := linearizability.Check(linearizability.AuditableMaxModel{Initial: 0}, rec.Ops())
		if err != nil {
			t.Fatalf("seed %d: Check: %v", seed, err)
		}
		if !res.Ok {
			t.Fatalf("seed %d: max history not linearizable:\n%v", seed, rec.Ops())
		}
	}
}
