package linearizability_test

import (
	"fmt"
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/history"
	"auditreg/internal/linearizability"
	"auditreg/internal/otp"
	"auditreg/internal/sched"
	"auditreg/internal/shmem"
)

// newBackendReg builds a 2-reader uint64 register over the named R backend
// with block-derived pads, so the scheduler-driven checks below exercise the
// exact configuration of the fast path: seqlock or two-word-packed R plus
// BlockPads.
func newBackendReg(t *testing.T, backend string, pads otp.PadSource) *core.Register[uint64] {
	t.Helper()
	init := shmem.Triple[uint64]{Seq: 0, Val: 0, Bits: pads.Mask(0) & otp.MaskBits(2)}
	var opts []core.Option[uint64]
	switch backend {
	case "ptr":
		opts = append(opts, core.WithTripleReg[uint64](shmem.NewPtrTriple(init)))
	case "seqlock":
		opts = append(opts, core.WithTripleReg[uint64](shmem.NewSeqlockTriple(init)))
	case "packed128":
		r, err := shmem.NewPacked128(shmem.DefaultLayout128, init)
		if err != nil {
			t.Fatalf("NewPacked128: %v", err)
		}
		opts = append(opts, core.WithTripleReg[uint64](r))
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	reg, err := core.New(2, uint64(0), pads, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return reg
}

// TestBackendEquivalenceUnderScheduler (E2) drives the PtrTriple reference
// and the allocation-free backends through scheduler-chosen interleavings and
// checks every recorded history against the auditable-register specification:
// the fast backends must be linearizable exactly where the reference is.
func TestBackendEquivalenceUnderScheduler(t *testing.T) {
	t.Parallel()
	const seeds = 40
	for _, backend := range []string{"ptr", "seqlock", "packed128"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < seeds; seed++ {
				runScheduledBackendCheck(t, backend, seed)
			}
		})
	}
}

func runScheduledBackendCheck(t *testing.T, backend string, seed uint64) {
	t.Helper()
	s := sched.New(sched.NewRandomPolicy(seed))
	pads, err := otp.NewBlockPads(otp.KeyFromSeed(seed), 2)
	if err != nil {
		t.Fatalf("pads: %v", err)
	}
	reg := newBackendReg(t, backend, pads)

	rd0, err := reg.Reader(0, core.WithProbe(s.Probe(0)))
	if err != nil {
		t.Fatalf("Reader: %v", err)
	}
	rd1, err := reg.Reader(1, core.WithProbe(s.Probe(1)))
	if err != nil {
		t.Fatalf("Reader: %v", err)
	}
	w := reg.Writer(core.WithProbe(s.Probe(100)))
	w2 := reg.Writer(core.WithProbe(s.Probe(101)))
	aud := reg.Auditor(core.WithProbe(s.Probe(200)))

	var rec history.Recorder
	if err := s.Run(map[int]func(){
		0: func() {
			for i := 0; i < 2; i++ {
				p := rec.Begin(0, "read", 0)
				p.SetOut(rd0.Read()).End()
			}
		},
		1: func() {
			p := rec.Begin(1, "read", 0)
			p.SetOut(rd1.Read()).End()
		},
		100: func() {
			p := rec.Begin(100, "write", 7)
			if err := w.Write(7); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			p.End()
		},
		101: func() {
			p := rec.Begin(101, "write", 9)
			if err := w2.Write(9); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			p.End()
		},
		200: func() {
			p := rec.Begin(200, "audit", 0)
			rep, err := aud.Audit()
			if err != nil {
				t.Errorf("audit: %v", err)
				return
			}
			p.SetOutSet(auditPairs(rep)).End()
		},
	}); err != nil {
		t.Fatalf("%s seed %d: Run: %v", backend, seed, err)
	}

	ops := rec.Ops()
	res, err := linearizability.Check(linearizability.AuditableRegisterModel{Initial: 0}, ops)
	if err != nil {
		t.Fatalf("%s seed %d: Check: %v", backend, seed, err)
	}
	if !res.Ok {
		t.Fatalf("%s seed %d: history not linearizable:\n%v", backend, seed,
			fmt.Sprintf("%v", ops))
	}
}
