package linearizability_test

import (
	"testing"

	"auditreg/internal/history"
	"auditreg/internal/linearizability"
)

// op builds a history op succinctly for hand-written cases.
func op(proc int, call string, arg, out uint64, inv, ret int64) history.Op {
	return history.Op{Proc: proc, Call: call, Arg: arg, Out: out, Inv: inv, Ret: ret}
}

func check(t *testing.T, model linearizability.Model, ops []history.Op) linearizability.Result {
	t.Helper()
	res, err := linearizability.Check(model, ops)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return res
}

func TestCheckerSequentialRegister(t *testing.T) {
	t.Parallel()
	ops := []history.Op{
		op(1, "write", 5, 0, 1, 2),
		op(2, "read", 0, 5, 3, 4),
	}
	if res := check(t, linearizability.RegisterModel{Initial: 0}, ops); !res.Ok {
		t.Fatal("sequential history rejected")
	}
}

func TestCheckerRejectsStaleRead(t *testing.T) {
	t.Parallel()
	// write(5) completes before the read starts, yet the read returns 0.
	ops := []history.Op{
		op(1, "write", 5, 0, 1, 2),
		op(2, "read", 0, 0, 3, 4),
	}
	if res := check(t, linearizability.RegisterModel{Initial: 0}, ops); res.Ok {
		t.Fatal("stale read accepted")
	}
}

func TestCheckerAcceptsConcurrentEitherOrder(t *testing.T) {
	t.Parallel()
	// The read overlaps the write: both 0 and 5 are valid outputs.
	for _, out := range []uint64{0, 5} {
		ops := []history.Op{
			op(1, "write", 5, 0, 1, 4),
			op(2, "read", 0, out, 2, 3),
		}
		if res := check(t, linearizability.RegisterModel{Initial: 0}, ops); !res.Ok {
			t.Fatalf("concurrent read returning %d rejected", out)
		}
	}
}

func TestCheckerRejectsNewOldInversion(t *testing.T) {
	t.Parallel()
	// Two sequential reads around a write: new-old inversion (read 5 then
	// read 0 after the write completed) must be rejected.
	ops := []history.Op{
		op(1, "write", 5, 0, 1, 2),
		op(2, "read", 0, 5, 3, 4),
		op(2, "read", 0, 0, 5, 6),
	}
	if res := check(t, linearizability.RegisterModel{Initial: 0}, ops); res.Ok {
		t.Fatal("new-old inversion accepted")
	}
}

func TestCheckerAuditCompleteness(t *testing.T) {
	t.Parallel()
	// A completed read must appear in a later audit: empty audit rejected.
	ops := []history.Op{
		op(2, "read", 0, 0, 1, 2),
		{Proc: 3, Call: "audit", OutSet: nil, Inv: 3, Ret: 4},
	}
	if res := check(t, linearizability.AuditableRegisterModel{Initial: 0}, ops); res.Ok {
		t.Fatal("audit missing a completed read accepted")
	}
	// With the right pair it passes.
	ops[1].OutSet = []history.Pair{{Reader: 2, Value: 0}}
	if res := check(t, linearizability.AuditableRegisterModel{Initial: 0}, ops); !res.Ok {
		t.Fatal("correct audit rejected")
	}
}

func TestCheckerAuditAccuracy(t *testing.T) {
	t.Parallel()
	// An audit reporting a read that never happened must be rejected.
	ops := []history.Op{
		{Proc: 3, Call: "audit", OutSet: []history.Pair{{Reader: 2, Value: 0}}, Inv: 1, Ret: 2},
	}
	if res := check(t, linearizability.AuditableRegisterModel{Initial: 0}, ops); res.Ok {
		t.Fatal("phantom audit entry accepted")
	}
}

func TestCheckerAuditConcurrentRead(t *testing.T) {
	t.Parallel()
	// Read concurrent with audit: the audit may or may not include it.
	for _, outset := range [][]history.Pair{nil, {{Reader: 2, Value: 7}}} {
		ops := []history.Op{
			op(1, "write", 7, 0, 1, 2),
			op(2, "read", 0, 7, 3, 6),
			{Proc: 3, Call: "audit", OutSet: outset, Inv: 4, Ret: 5},
		}
		if res := check(t, linearizability.AuditableRegisterModel{Initial: 0}, ops); !res.Ok {
			t.Fatalf("valid concurrent audit %v rejected", outset)
		}
	}
}

func TestCheckerMaxModel(t *testing.T) {
	t.Parallel()
	ops := []history.Op{
		op(1, "writeMax", 5, 0, 1, 2),
		op(1, "writeMax", 3, 0, 3, 4), // lower write
		op(2, "read", 0, 5, 5, 6),
	}
	if res := check(t, linearizability.AuditableMaxModel{Initial: 0}, ops); !res.Ok {
		t.Fatal("max history rejected")
	}
	// A read below the established max must be rejected.
	ops[2].Out = 3
	if res := check(t, linearizability.AuditableMaxModel{Initial: 0}, ops); res.Ok {
		t.Fatal("sub-max read accepted")
	}
}

func TestCheckerSnapshotModel(t *testing.T) {
	t.Parallel()
	ops := []history.Op{
		op(0, "update", 4, 0, 1, 2),
		{Proc: 9, Call: "scan", OutVec: []uint64{4, 0}, Inv: 3, Ret: 4},
	}
	if res := check(t, linearizability.SnapshotModel{N: 2}, ops); !res.Ok {
		t.Fatal("snapshot history rejected")
	}
	ops[1].OutVec = []uint64{0, 4} // wrong component
	if res := check(t, linearizability.SnapshotModel{N: 2}, ops); res.Ok {
		t.Fatal("misplaced component accepted")
	}
}

func TestCheckerValidation(t *testing.T) {
	t.Parallel()
	// Inverted interval.
	bad := []history.Op{op(1, "read", 0, 0, 5, 3)}
	if _, err := linearizability.Check(linearizability.RegisterModel{}, bad); err == nil {
		t.Fatal("inverted interval accepted")
	}
	// Oversized history.
	big := make([]history.Op, linearizability.MaxOps+1)
	for i := range big {
		big[i] = op(1, "read", 0, 0, int64(2*i+1), int64(2*i+2))
	}
	if _, err := linearizability.Check(linearizability.RegisterModel{}, big); err == nil {
		t.Fatal("oversized history accepted")
	}
}

func TestCheckerWitnessIsValidOrder(t *testing.T) {
	t.Parallel()
	ops := []history.Op{
		op(1, "write", 5, 0, 1, 4),
		op(2, "read", 0, 5, 2, 3),
	}
	res := check(t, linearizability.RegisterModel{Initial: 0}, ops)
	if !res.Ok {
		t.Fatal("history rejected")
	}
	if len(res.Witness) != len(ops) {
		t.Fatalf("witness has %d ops, want %d", len(res.Witness), len(ops))
	}
	// Replaying the witness through the model must succeed.
	st := linearizability.RegisterModel{Initial: 0}.Init()
	for _, idx := range res.Witness {
		next, ok := st.Apply(ops[idx])
		if !ok {
			t.Fatalf("witness step %d invalid", idx)
		}
		st = next
	}
}
