package linearizability

import (
	"fmt"

	"auditreg/internal/history"
)

// AuditableRegisterModel is the sequential specification of Algorithm 1:
// reads return the latest written value; an audit returns exactly the pairs
// (j, v) of reads linearized before it.
type AuditableRegisterModel struct {
	// Initial is the register's initial value.
	Initial uint64
}

// Init implements Model.
func (m AuditableRegisterModel) Init() State {
	return regState{cur: m.Initial, pairs: map[history.Pair]struct{}{}}
}

type regState struct {
	cur   uint64
	pairs map[history.Pair]struct{}
}

// Apply implements State.
func (s regState) Apply(op history.Op) (State, bool) {
	switch op.Call {
	case "write":
		return regState{cur: op.Arg, pairs: s.pairs}, true
	case "read":
		if op.Out != s.cur {
			return nil, false
		}
		next := clonePairs(s.pairs)
		next[history.Pair{Reader: op.Proc, Value: op.Out}] = struct{}{}
		return regState{cur: s.cur, pairs: next}, true
	case "audit":
		return s, samePairSet(s.pairs, op.OutSet)
	default:
		return nil, false
	}
}

// Key implements State.
func (s regState) Key() string {
	return fmt.Sprintf("%d|%s", s.cur, pairSetKey(s.pairs))
}

// AuditableMaxModel is the sequential specification of Algorithm 2: reads
// return the largest value written; audits report effective reads.
type AuditableMaxModel struct {
	// Initial is the max register's initial value.
	Initial uint64
}

// Init implements Model.
func (m AuditableMaxModel) Init() State {
	return maxState{cur: m.Initial, pairs: map[history.Pair]struct{}{}}
}

type maxState struct {
	cur   uint64
	pairs map[history.Pair]struct{}
}

// Apply implements State.
func (s maxState) Apply(op history.Op) (State, bool) {
	switch op.Call {
	case "writeMax":
		cur := s.cur
		if op.Arg > cur {
			cur = op.Arg
		}
		return maxState{cur: cur, pairs: s.pairs}, true
	case "read":
		if op.Out != s.cur {
			return nil, false
		}
		next := clonePairs(s.pairs)
		next[history.Pair{Reader: op.Proc, Value: op.Out}] = struct{}{}
		return maxState{cur: s.cur, pairs: next}, true
	case "audit":
		return s, samePairSet(s.pairs, op.OutSet)
	default:
		return nil, false
	}
}

// Key implements State.
func (s maxState) Key() string {
	return fmt.Sprintf("%d|%s", s.cur, pairSetKey(s.pairs))
}

// RegisterModel is the plain (non-auditable) MWMR register specification;
// audits are rejected. Used to sanity-check the checker itself.
type RegisterModel struct {
	// Initial is the register's initial value.
	Initial uint64
}

// Init implements Model.
func (m RegisterModel) Init() State { return plainState{cur: m.Initial} }

type plainState struct {
	cur uint64
}

// Apply implements State.
func (s plainState) Apply(op history.Op) (State, bool) {
	switch op.Call {
	case "write":
		return plainState{cur: op.Arg}, true
	case "read":
		return s, op.Out == s.cur
	default:
		return nil, false
	}
}

// Key implements State.
func (s plainState) Key() string { return fmt.Sprintf("%d", s.cur) }

// SnapshotModel is the sequential specification of an n-component snapshot
// with per-component single writers: update(i, v) encoded as Call "update"
// with Proc = i and Arg = v; scans return the component vector.
type SnapshotModel struct {
	// N is the component count.
	N int
}

// Init implements Model.
func (m SnapshotModel) Init() State {
	return snapState{view: make([]uint64, m.N)}
}

type snapState struct {
	view []uint64
}

// Apply implements State.
func (s snapState) Apply(op history.Op) (State, bool) {
	switch op.Call {
	case "update":
		if op.Proc < 0 || op.Proc >= len(s.view) {
			return nil, false
		}
		next := make([]uint64, len(s.view))
		copy(next, s.view)
		next[op.Proc] = op.Arg
		return snapState{view: next}, true
	case "scan":
		if len(op.OutVec) != len(s.view) {
			return nil, false
		}
		for i := range s.view {
			if op.OutVec[i] != s.view[i] {
				return nil, false
			}
		}
		return s, true
	default:
		return nil, false
	}
}

// Key implements State.
func (s snapState) Key() string { return fmt.Sprint(s.view) }
