// Package linearizability implements a Wing & Gong style linearizability
// checker with memoization: it searches for a permutation of a concurrent
// history that respects real-time order and a sequential specification
// (Definition 1 of the paper). States are deduplicated by fingerprint, so the
// search prunes permutations that reach the same (linearized-set, state)
// configuration twice.
//
// The checker consumes histories recorded by internal/history and models from
// this package: an auditable register model, an auditable max register model,
// and an auditable snapshot model, each encoding the paper's sequential
// specification including audit accuracy + completeness.
package linearizability

import (
	"fmt"
	"sort"
	"strings"

	"auditreg/internal/history"
)

// State is one state of a sequential specification.
type State interface {
	// Apply attempts to apply op, returning the successor state. ok is
	// false when the op's recorded output contradicts the specification.
	Apply(op history.Op) (next State, ok bool)
	// Key fingerprints the state for memoization. Equal states must have
	// equal keys.
	Key() string
}

// Model supplies the initial state of a specification.
type Model interface {
	// Init returns the initial state.
	Init() State
}

// MaxOps bounds the history size the checker accepts; the search is
// exponential in the worst case.
const MaxOps = 63

// Result reports the outcome of a check.
type Result struct {
	// Ok is whether the history is linearizable with respect to the model.
	Ok bool
	// Witness is one linearization order (indices into the input ops) when
	// Ok; nil otherwise.
	Witness []int
	// Explored counts visited configurations (diagnostic).
	Explored int
}

// Check searches for a linearization of ops against the model.
func Check(model Model, ops []history.Op) (Result, error) {
	if len(ops) > MaxOps {
		return Result{}, fmt.Errorf("linearizability: history of %d ops exceeds limit %d", len(ops), MaxOps)
	}
	for _, op := range ops {
		if op.Ret <= op.Inv {
			return Result{}, fmt.Errorf("linearizability: op %v has no valid interval", op)
		}
	}

	n := len(ops)
	full := uint64(1)<<uint(n) - 1
	memo := make(map[string]struct{})
	var witness []int

	var dfs func(mask uint64, st State) bool
	dfs = func(mask uint64, st State) bool {
		if mask == full {
			return true
		}
		key := fmt.Sprintf("%x|%s", mask, st.Key())
		if _, seen := memo[key]; seen {
			return false
		}
		memo[key] = struct{}{}

		// minRet over unlinearized ops: only ops invoked before it may
		// linearize next (real-time order).
		minRet := int64(1) << 62
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 && ops[i].Ret < minRet {
				minRet = ops[i].Ret
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 || ops[i].Inv > minRet {
				continue
			}
			next, ok := st.Apply(ops[i])
			if !ok {
				continue
			}
			witness = append(witness, i)
			if dfs(mask|1<<uint(i), next) {
				return true
			}
			witness = witness[:len(witness)-1]
		}
		return false
	}

	ok := dfs(0, model.Init())
	res := Result{Ok: ok, Explored: len(memo)}
	if ok {
		res.Witness = append([]int(nil), witness...)
	}
	return res, nil
}

// pairSetKey canonicalizes a pair set for fingerprints and comparisons.
func pairSetKey(pairs map[history.Pair]struct{}) string {
	keys := make([]string, 0, len(pairs))
	for p := range pairs {
		keys = append(keys, fmt.Sprintf("%d:%d", p.Reader, p.Value))
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func samePairSet(pairs map[history.Pair]struct{}, out []history.Pair) bool {
	if len(out) != len(pairs) {
		return false
	}
	for _, p := range out {
		if _, ok := pairs[p]; !ok {
			return false
		}
	}
	return true
}

func clonePairs(pairs map[history.Pair]struct{}) map[history.Pair]struct{} {
	out := make(map[history.Pair]struct{}, len(pairs))
	for p := range pairs {
		out[p] = struct{}{}
	}
	return out
}
