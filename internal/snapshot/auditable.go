package snapshot

import (
	"fmt"

	"auditreg/internal/core"
	"auditreg/internal/handle"
	"auditreg/internal/maxreg"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
)

// Store is the substrate snapshot interface of Algorithm 3: any linearizable,
// wait-free snapshot object (Afek by default, Locked for cross-checking).
type Store[V any] interface {
	// Scan returns an atomic view of all components.
	Scan() []V
	// Update sets component i to v (single writer per component).
	Update(i int, v V) error
	// Components returns the number of components.
	Components() int
}

var (
	_ Store[int] = (*Afek[int])(nil)
	_ Store[int] = (*Locked[int])(nil)
)

// comp is a component of the substrate S: the user value tagged with the
// writer's local sequence number sn_i (Algorithm 3 line 2). The sum of the
// tags over a view is the view's unique, increasing version number.
type comp[V comparable] struct {
	sn  uint64
	val V
}

// view is the value type written to the auditable max register M: the
// version number paired with an immutable snapshot view. Pointer identity
// stands in for content equality: version numbers uniquely identify states
// along the linearization of S, so any two views with the same vn have equal
// content.
type view[V comparable] struct {
	vn   uint64
	data *[]V
}

// ViewEntry is one audited snapshot access: the scanner and the view it
// effectively obtained.
type ViewEntry[V comparable] struct {
	// Reader is the scanner's index.
	Reader int
	// View is the snapshot view it read.
	View []V
}

// Auditable is the auditable n-component snapshot of Algorithm 3, built from
// a non-auditable snapshot S and an auditable max register M (Algorithm 2).
//
// Guarantees (Theorem 12): wait-free and linearizable; audits report exactly
// the effective scans; scans are uncompromised by other scanners; updates are
// uncompromised by scanners.
//
// Construct with NewAuditable.
type Auditable[V comparable] struct {
	n    int
	m    int
	s    Store[comp[V]]
	mreg *maxreg.Auditable[view[V]]
}

// AuditableOption configures an auditable snapshot.
type AuditableOption[V comparable] func(*auditableConfig[V])

type auditableConfig[V comparable] struct {
	store    Store[comp[V]]
	locked   bool
	capacity int
}

// WithLockedStore substitutes the mutex-based reference snapshot for the
// Afek substrate (cross-checking, benchmarks).
func WithLockedStore[V comparable]() AuditableOption[V] {
	return func(c *auditableConfig[V]) { c.locked = true }
}

// WithSnapshotCapacity bounds the audit history length of the underlying max
// register.
func WithSnapshotCapacity[V comparable](n int) AuditableOption[V] {
	return func(c *auditableConfig[V]) { c.capacity = n }
}

// NewAuditable returns an auditable snapshot with n components (one designated
// updater each) and m scanners, every component holding initial.
func NewAuditable[V comparable](n, m int, initial V, pads otp.PadSource, opts ...AuditableOption[V]) (*Auditable[V], error) {
	if n < 1 {
		return nil, fmt.Errorf("snapshot: component count must be positive, got %d", n)
	}
	var cfg auditableConfig[V]
	for _, opt := range opts {
		opt(&cfg)
	}

	var store Store[comp[V]]
	var err error
	if cfg.locked {
		store, err = NewLocked(n, comp[V]{sn: 0, val: initial})
	} else {
		store, err = NewAfek(n, comp[V]{sn: 0, val: initial})
	}
	if err != nil {
		return nil, err
	}

	initData := make([]V, n)
	for i := range initData {
		initData[i] = initial
	}
	initView := view[V]{vn: 0, data: &initData}
	mreg, err := maxreg.NewAuditable(m, initView,
		func(a, b view[V]) bool { return a.vn < b.vn },
		pads,
		maxreg.WithAuditableCapacity[view[V]](cfg.capacity),
	)
	if err != nil {
		return nil, err
	}
	return &Auditable[V]{n: n, m: m, s: store, mreg: mreg}, nil
}

// Components returns the number of components n.
func (reg *Auditable[V]) Components() int { return reg.n }

// Scanners returns the number of scanners m.
func (reg *Auditable[V]) Scanners() int { return reg.m }

// SnapUpdater is the single-writer update handle for one component
// (Algorithm 3 lines 1-5). Not safe for concurrent use.
type SnapUpdater[V comparable] struct {
	reg   *Auditable[V]
	i     int
	sn    uint64
	mw    *maxreg.Writer[view[V]]
	pid   int
	probe probe.Probe
}

// Updater returns the update handle for component i. Nonces feed the
// underlying auditable max register's writeMax.
func (reg *Auditable[V]) Updater(i int, nonces otp.NonceSource, opts ...core.HandleOption) (*SnapUpdater[V], error) {
	if i < 0 || i >= reg.n {
		return nil, fmt.Errorf("snapshot: component %d out of range [0, %d)", i, reg.n)
	}
	cfg := handle.Apply(i, opts)
	mw, err := reg.mreg.Writer(nonces, core.WithPID(cfg.PID), core.WithProbe(cfg.Probe))
	if err != nil {
		return nil, err
	}
	return &SnapUpdater[V]{reg: reg, i: i, mw: mw, pid: cfg.PID, probe: cfg.Probe}, nil
}

// Component returns the component index this handle updates.
func (u *SnapUpdater[V]) Component() int { return u.i }

// Update sets component i to v: bump the local sequence number, install the
// tagged value in S, scan S, and publish (version, view) to M (lines 2-5).
func (u *SnapUpdater[V]) Update(v V) error {
	reg := u.reg

	// Line 2: sn_i++ ; S.update_i((sn_i, v)).
	u.sn++
	u.probe.Emit(probe.Event{PID: u.pid, Kind: probe.Invoke, Prim: probe.SUpdate})
	if err := reg.s.Update(u.i, comp[V]{sn: u.sn, val: v}); err != nil {
		return err
	}
	u.probe.Emit(probe.Event{PID: u.pid, Kind: probe.Return, Prim: probe.SUpdate})

	// Line 3: sview <- S.scan(); vn <- sum of sequence tags.
	u.probe.Emit(probe.Event{PID: u.pid, Kind: probe.Invoke, Prim: probe.SScan})
	sview := reg.s.Scan()
	u.probe.Emit(probe.Event{PID: u.pid, Kind: probe.Return, Prim: probe.SScan})

	var vn uint64
	data := make([]V, len(sview))
	for k, c := range sview {
		vn += c.sn
		data[k] = c.val // line 4: strip the tags
	}

	// Line 5: M.writeMax((vn, view)).
	return u.mw.WriteMax(view[V]{vn: vn, data: &data})
}

// SnapScanner is the per-process scan handle (Algorithm 3 lines 6-7): a scan
// is a single read of the auditable max register M, so it is effective — and
// audited — exactly when that read is.
type SnapScanner[V comparable] struct {
	mr *maxreg.Reader[view[V]]
	j  int
}

// Scanner returns the handle for scanner j (0 <= j < m). Not safe for
// concurrent use.
func (reg *Auditable[V]) Scanner(j int, opts ...core.HandleOption) (*SnapScanner[V], error) {
	mr, err := reg.mreg.Reader(j, opts...)
	if err != nil {
		return nil, err
	}
	return &SnapScanner[V]{mr: mr, j: j}, nil
}

// Index returns the scanner's index j.
func (sc *SnapScanner[V]) Index() int { return sc.j }

// Scan returns an atomic view of the snapshot.
func (sc *SnapScanner[V]) Scan() []V {
	v := sc.mr.Read()
	out := make([]V, len(*v.data))
	copy(out, *v.data)
	return out
}

// SnapAuditor is the per-process audit handle (lines 8-10): an audit of the
// snapshot is an audit of M with version numbers stripped.
type SnapAuditor[V comparable] struct {
	ma *maxreg.Auditor[view[V]]
}

// Auditor returns an auditor handle with its own cumulative audit set.
func (reg *Auditable[V]) Auditor(opts ...core.HandleOption) *SnapAuditor[V] {
	return &SnapAuditor[V]{ma: reg.mreg.Auditor(opts...)}
}

// Audit reports the set of (scanner, view) pairs such that the scanner has an
// effective scan returning the view, deduplicated by view content.
func (a *SnapAuditor[V]) Audit() ([]ViewEntry[V], error) {
	rep, err := a.ma.Audit()
	if err != nil {
		return nil, err
	}
	var out []ViewEntry[V]
	for _, e := range rep.Entries() {
		data := make([]V, len(*e.Value.data))
		copy(data, *e.Value.data)
		entry := ViewEntry[V]{Reader: e.Reader, View: data}
		if !containsViewEntry(out, entry) {
			out = append(out, entry)
		}
	}
	return out, nil
}

func containsViewEntry[V comparable](entries []ViewEntry[V], e ViewEntry[V]) bool {
	for _, x := range entries {
		if x.Reader != e.Reader || len(x.View) != len(e.View) {
			continue
		}
		same := true
		for i := range e.View {
			if x.View[i] != e.View[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// ContainsView reports whether entries includes (reader, view), comparing
// views by content. Exported for tests and examples.
func ContainsView[V comparable](entries []ViewEntry[V], reader int, v []V) bool {
	return containsViewEntry(entries, ViewEntry[V]{Reader: reader, View: v})
}
