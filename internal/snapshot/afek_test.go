package snapshot_test

import (
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/snapshot"
)

func TestAfekValidation(t *testing.T) {
	t.Parallel()
	if _, err := snapshot.NewAfek(0, 0); err == nil {
		t.Error("n=0 accepted")
	}
	s, err := snapshot.NewAfek(3, 7)
	if err != nil {
		t.Fatalf("NewAfek: %v", err)
	}
	if s.Components() != 3 {
		t.Fatalf("Components = %d", s.Components())
	}
	if err := s.Update(3, 0); err == nil {
		t.Error("out-of-range update accepted")
	}
	if _, err := s.Updater(-1); err == nil {
		t.Error("negative updater accepted")
	}
}

func TestAfekInitialScan(t *testing.T) {
	t.Parallel()
	s, err := snapshot.NewAfek(4, 9)
	if err != nil {
		t.Fatalf("NewAfek: %v", err)
	}
	for i, v := range s.Scan() {
		if v != 9 {
			t.Fatalf("component %d = %d, want 9", i, v)
		}
	}
}

func TestAfekSequentialUpdateScan(t *testing.T) {
	t.Parallel()
	s, err := snapshot.NewAfek(3, 0)
	if err != nil {
		t.Fatalf("NewAfek: %v", err)
	}
	u0, _ := s.Updater(0)
	u2, _ := s.Updater(2)
	u0.Update(10)
	u2.Update(30)
	got := s.Scan()
	want := []int{10, 0, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
}

// TestQuickAfekMatchesLocked replays random update/scan scripts sequentially
// against Afek and the locked reference; both must agree.
func TestQuickAfekMatchesLocked(t *testing.T) {
	t.Parallel()
	type op struct {
		Comp uint8
		Val  uint16
		Scan bool
	}
	f := func(ops []op) bool {
		const n = 4
		afek, err := snapshot.NewAfek(n, uint64(0))
		if err != nil {
			return false
		}
		locked, err := snapshot.NewLocked(n, uint64(0))
		if err != nil {
			return false
		}
		for _, o := range ops {
			if o.Scan {
				a, l := afek.Scan(), locked.Scan()
				for i := range a {
					if a[i] != l[i] {
						return false
					}
				}
				continue
			}
			i := int(o.Comp) % n
			if err := afek.Update(i, uint64(o.Val)); err != nil {
				return false
			}
			if err := locked.Update(i, uint64(o.Val)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAfekConcurrentRegularity: concurrent scans must be consistent with the
// per-component write orders — each component's value sequence is monotone in
// the writer's own order (values here encode a counter), so every scanned
// view must be component-wise monotone over time at each scanner, and a
// scanner must never see a *later* write in one scan and an *earlier* one in
// a subsequent scan.
func TestAfekConcurrentRegularity(t *testing.T) {
	t.Parallel()
	const (
		n    = 4
		per  = 300
		scns = 4
	)
	s, err := snapshot.NewAfek(n, uint64(0))
	if err != nil {
		t.Fatalf("NewAfek: %v", err)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		u, err := s.Updater(i)
		if err != nil {
			t.Fatalf("Updater(%d): %v", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= per; k++ {
				u.Update(uint64(k))
			}
		}()
	}
	for sc := 0; sc < scns; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := make([]uint64, n)
			for k := 0; k < per; k++ {
				view := s.Scan()
				for i, v := range view {
					if v < prev[i] {
						t.Errorf("scanner saw component %d regress: %d -> %d", i, prev[i], v)
						return
					}
					prev[i] = v
				}
			}
		}()
	}
	wg.Wait()

	final := s.Scan()
	for i, v := range final {
		if v != per {
			t.Fatalf("component %d = %d at quiescence, want %d", i, v, per)
		}
	}
}

// TestAfekScanReflectsOwnUpdate: an updater's subsequent scan always includes
// its own latest update (read-your-writes through linearizability).
func TestAfekScanReflectsOwnUpdate(t *testing.T) {
	t.Parallel()
	s, err := snapshot.NewAfek(2, 0)
	if err != nil {
		t.Fatalf("NewAfek: %v", err)
	}
	u, _ := s.Updater(1)
	for k := 1; k <= 100; k++ {
		u.Update(k)
		if got := s.Scan()[1]; got != k {
			t.Fatalf("scan after Update(%d) shows %d", k, got)
		}
	}
}
