// Package snapshot implements atomic snapshot objects: the classic wait-free
// construction of Afek, Attiya, Dolev, Gafni, Merritt and Shavit ("Atomic
// Snapshots of Shared Memory", J.ACM 1993) as the substrate S, and on top of
// it Algorithm 3 of "Auditing without Leaks Despite Curiosity": an auditable
// snapshot whose effective scans are audited and whose scans/updates are
// uncompromised by scanners.
package snapshot

import (
	"fmt"
	"sync/atomic"
)

// Afek is the wait-free n-component single-writer-per-component atomic
// snapshot of Afek et al. Each component register carries, besides the data,
// a sequence number and an embedded view: an updater performs an embedded
// scan and publishes it with its write, so a scanner that sees the same
// component move twice can borrow that embedded view (the "helping" that
// makes scan wait-free after at most n+1 double collects).
//
// Construct with NewAfek. Scan may be called by any number of goroutines;
// Update(i, ...) must only be called by component i's designated writer (use
// Updater handles to enforce this).
type Afek[V any] struct {
	regs []atomic.Pointer[afekCell[V]]
}

type afekCell[V any] struct {
	val  V
	seq  uint64
	view []V
}

// NewAfek returns an n-component snapshot, every component holding initial.
func NewAfek[V any](n int, initial V) (*Afek[V], error) {
	if n < 1 {
		return nil, fmt.Errorf("snapshot: component count must be positive, got %d", n)
	}
	s := &Afek[V]{regs: make([]atomic.Pointer[afekCell[V]], n)}
	initView := make([]V, n)
	for i := range initView {
		initView[i] = initial
	}
	for i := range s.regs {
		s.regs[i].Store(&afekCell[V]{val: initial, seq: 0, view: initView})
	}
	return s, nil
}

// Components returns the number of components n.
func (s *Afek[V]) Components() int { return len(s.regs) }

// Scan returns an atomic view of all components.
func (s *Afek[V]) Scan() []V {
	n := len(s.regs)
	moved := make([]uint8, n)
	c1 := s.collect()
	for {
		c2 := s.collect()
		if sameCollect(c1, c2) {
			// Clean double collect: the memory was still in between,
			// so the values form an atomic view.
			out := make([]V, n)
			for i, c := range c2 {
				out[i] = c.val
			}
			return out
		}
		for i := range c1 {
			if c1[i].seq != c2[i].seq {
				if moved[i] > 0 {
					// Component i moved twice during this scan:
					// its writer completed a full update — and
					// hence a full embedded scan — inside our
					// interval. Borrow it.
					out := make([]V, n)
					copy(out, c2[i].view)
					return out
				}
				moved[i]++
			}
		}
		c1 = c2
	}
}

// Update sets component i to v. Must be called only by component i's single
// designated writer.
func (s *Afek[V]) Update(i int, v V) error {
	if i < 0 || i >= len(s.regs) {
		return fmt.Errorf("snapshot: component %d out of range [0, %d)", i, len(s.regs))
	}
	view := s.Scan() // the embedded scan that enables helping
	cur := s.regs[i].Load()
	s.regs[i].Store(&afekCell[V]{val: v, seq: cur.seq + 1, view: view})
	return nil
}

func (s *Afek[V]) collect() []*afekCell[V] {
	out := make([]*afekCell[V], len(s.regs))
	for i := range s.regs {
		out[i] = s.regs[i].Load()
	}
	return out
}

func sameCollect[V any](a, b []*afekCell[V]) bool {
	for i := range a {
		if a[i].seq != b[i].seq {
			return false
		}
	}
	return true
}

// Updater is the single-writer handle for one component; it enforces the
// single-writer-per-component discipline of the object.
type Updater[V any] struct {
	s *Afek[V]
	i int
}

// Updater returns the write handle for component i.
func (s *Afek[V]) Updater(i int) (*Updater[V], error) {
	if i < 0 || i >= len(s.regs) {
		return nil, fmt.Errorf("snapshot: component %d out of range [0, %d)", i, len(s.regs))
	}
	return &Updater[V]{s: s, i: i}, nil
}

// Component returns the component index this handle writes.
func (u *Updater[V]) Component() int { return u.i }

// Update sets the component to v.
func (u *Updater[V]) Update(v V) { _ = u.s.Update(u.i, v) }
