package snapshot_test

import (
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/otp"
	"auditreg/internal/snapshot"
	"auditreg/internal/spec"
)

func newAuditableSnap(t *testing.T, n, m int, initial uint64, opts ...snapshot.AuditableOption[uint64]) *snapshot.Auditable[uint64] {
	t.Helper()
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(11), m)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	reg, err := snapshot.NewAuditable(n, m, initial, pads, opts...)
	if err != nil {
		t.Fatalf("NewAuditable: %v", err)
	}
	return reg
}

func equalViews(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAuditableSnapshotValidation(t *testing.T) {
	t.Parallel()
	pads, _ := otp.NewKeyedPads(otp.KeyFromSeed(1), 2)
	if _, err := snapshot.NewAuditable[uint64](0, 2, 0, pads); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := snapshot.NewAuditable[uint64](2, 0, 0, pads); err == nil {
		t.Error("m=0 accepted")
	}
	reg := newAuditableSnap(t, 2, 2, 0)
	if _, err := reg.Updater(2, otp.NewSeededNonces(1, 1)); err == nil {
		t.Error("out-of-range updater accepted")
	}
	if _, err := reg.Scanner(2); err == nil {
		t.Error("out-of-range scanner accepted")
	}
}

func TestAuditableSnapshotBasics(t *testing.T) {
	t.Parallel()
	for _, locked := range []bool{false, true} {
		name := "afek"
		var opts []snapshot.AuditableOption[uint64]
		if locked {
			name = "locked"
			opts = append(opts, snapshot.WithLockedStore[uint64]())
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			reg := newAuditableSnap(t, 3, 2, 0, opts...)
			u0, err := reg.Updater(0, otp.NewSeededNonces(1, 10))
			if err != nil {
				t.Fatalf("Updater: %v", err)
			}
			u2, err := reg.Updater(2, otp.NewSeededNonces(2, 12))
			if err != nil {
				t.Fatalf("Updater: %v", err)
			}
			sc, err := reg.Scanner(0)
			if err != nil {
				t.Fatalf("Scanner: %v", err)
			}

			if got := sc.Scan(); !equalViews(got, []uint64{0, 0, 0}) {
				t.Fatalf("initial scan = %v", got)
			}
			if err := u0.Update(5); err != nil {
				t.Fatalf("Update: %v", err)
			}
			if err := u2.Update(7); err != nil {
				t.Fatalf("Update: %v", err)
			}
			if got := sc.Scan(); !equalViews(got, []uint64{5, 0, 7}) {
				t.Fatalf("scan = %v, want [5 0 7]", got)
			}

			entries, err := reg.Auditor().Audit()
			if err != nil {
				t.Fatalf("Audit: %v", err)
			}
			if !snapshot.ContainsView(entries, 0, []uint64{0, 0, 0}) {
				t.Fatalf("audit %v missing initial view of scanner 0", entries)
			}
			if !snapshot.ContainsView(entries, 0, []uint64{5, 0, 7}) {
				t.Fatalf("audit %v missing second view of scanner 0", entries)
			}
			if snapshot.ContainsView(entries, 1, []uint64{0, 0, 0}) {
				t.Fatalf("audit reports scanner 1 which never scanned: %v", entries)
			}
		})
	}
}

// TestQuickAuditableSnapshotMatchesSpec replays random sequential scripts
// against the implementation and the sequential specification.
func TestQuickAuditableSnapshotMatchesSpec(t *testing.T) {
	t.Parallel()
	type op struct {
		Kind    uint8 // mod 3: 0 scan, 1 update, 2 audit
		Proc    uint8
		Payload uint16
	}
	f := func(ops []op, seed uint64) bool {
		const (
			n = 3
			m = 3
		)
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), m)
		if err != nil {
			return false
		}
		reg, err := snapshot.NewAuditable[uint64](n, m, 0, pads)
		if err != nil {
			return false
		}
		oracle := spec.NewAuditableSnapshot[uint64](n, 0)

		updaters := make([]*snapshot.SnapUpdater[uint64], n)
		for i := range updaters {
			u, err := reg.Updater(i, otp.NewSeededNonces(seed+uint64(i), uint8(i)))
			if err != nil {
				return false
			}
			updaters[i] = u
		}
		scanners := make([]*snapshot.SnapScanner[uint64], m)
		for j := range scanners {
			sc, err := reg.Scanner(j)
			if err != nil {
				return false
			}
			scanners[j] = sc
		}
		auditor := reg.Auditor()

		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				j := int(o.Proc) % m
				got := scanners[j].Scan()
				want := oracle.Scan(j)
				if !equalViews(got, want) {
					return false
				}
			case 1:
				i := int(o.Proc) % n
				if err := updaters[i].Update(uint64(o.Payload)); err != nil {
					return false
				}
				oracle.Update(i, uint64(o.Payload))
			case 2:
				got, err := auditor.Audit()
				if err != nil {
					return false
				}
				want := oracle.Audit()
				if len(got) != len(want) {
					return false
				}
				for _, w := range want {
					if !snapshot.ContainsView(got, w.Reader, w.View) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAuditableSnapshotConcurrent checks component-wise monotonicity of
// scanned views, scan containment of completed updates, and quiescent audit
// equivalence.
func TestAuditableSnapshotConcurrent(t *testing.T) {
	t.Parallel()
	const (
		n   = 3
		m   = 4
		per = 120
	)
	reg := newAuditableSnap(t, n, m, 0)

	var wg sync.WaitGroup
	type viewKey [n]uint64
	returned := make([]map[viewKey]struct{}, m)

	for i := 0; i < n; i++ {
		u, err := reg.Updater(i, otp.NewSeededNonces(uint64(i)+100, uint8(i)))
		if err != nil {
			t.Fatalf("Updater: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= per; k++ {
				if err := u.Update(uint64(k)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}()
	}
	for j := 0; j < m; j++ {
		j := j
		returned[j] = make(map[viewKey]struct{})
		sc, err := reg.Scanner(j)
		if err != nil {
			t.Fatalf("Scanner: %v", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := make([]uint64, n)
			for k := 0; k < per; k++ {
				got := sc.Scan()
				var key viewKey
				for i, v := range got {
					if v < prev[i] {
						t.Errorf("scanner %d: component %d regressed %d -> %d", j, i, prev[i], v)
						return
					}
					prev[i] = v
					key[i] = v
				}
				returned[j][key] = struct{}{}
			}
		}()
	}
	wg.Wait()

	// Quiescent audit equivalence.
	entries, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	for j := 0; j < m; j++ {
		for key := range returned[j] {
			if !snapshot.ContainsView(entries, j, key[:]) {
				t.Fatalf("scan (%d, %v) returned but not audited", j, key)
			}
		}
	}
	for _, e := range entries {
		var key viewKey
		copy(key[:], e.View)
		if _, ok := returned[e.Reader][key]; !ok {
			t.Fatalf("audited view (%d, %v) was never scanned", e.Reader, e.View)
		}
	}

	// Final scan shows every completed update.
	sc, _ := reg.Scanner(0)
	final := sc.Scan()
	for i, v := range final {
		if v != per {
			t.Fatalf("component %d = %d at quiescence, want %d", i, v, per)
		}
	}
}
