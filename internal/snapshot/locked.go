package snapshot

import (
	"fmt"
	"sync"
)

// Locked is the mutex-protected reference snapshot, trivially atomic. It
// cross-checks Afek in tests and serves as an injectable substrate for the
// auditable snapshot.
type Locked[V any] struct {
	mu    sync.Mutex
	state []V
}

// NewLocked returns an n-component locked snapshot holding initial.
func NewLocked[V any](n int, initial V) (*Locked[V], error) {
	if n < 1 {
		return nil, fmt.Errorf("snapshot: component count must be positive, got %d", n)
	}
	state := make([]V, n)
	for i := range state {
		state[i] = initial
	}
	return &Locked[V]{state: state}, nil
}

// Components returns the number of components n.
func (s *Locked[V]) Components() int { return len(s.state) }

// Scan returns an atomic view of all components.
func (s *Locked[V]) Scan() []V {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]V, len(s.state))
	copy(out, s.state)
	return out
}

// Update sets component i to v.
func (s *Locked[V]) Update(i int, v V) error {
	if i < 0 || i >= len(s.state) {
		return fmt.Errorf("snapshot: component %d out of range [0, %d)", i, len(s.state))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state[i] = v
	return nil
}
