package core_test

import (
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/shmem"
	"auditreg/internal/spec"
)

// backends enumerates the interchangeable R implementations every behavioural
// test runs against. "seqlock" is what core.New auto-selects for uint64, so
// it doubles as the default-path entry; "ptr" is injected explicitly to keep
// the lock-free pointer backend covered.
var backends = []string{"ptr", "locked", "packed", "seqlock", "packed128"}

// newReg builds a register over uint64 values with the requested backend.
// Values must stay within 16 bits so the packed backend can represent them.
func newReg(t *testing.T, backend string, m int, initial uint64) *core.Register[uint64] {
	t.Helper()
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(42), m)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	var opts []core.Option[uint64]
	switch backend {
	case "ptr":
		init := shmem.Triple[uint64]{Seq: 0, Val: initial, Bits: pads.Mask(0)}
		opts = append(opts, core.WithTripleReg[uint64](shmem.NewPtrTriple(init)))
	case "seqlock":
		// What core.New picks by itself for uint64; exercised via the
		// default path on purpose.
	case "packed128":
		if m > shmem.DefaultLayout128.ReaderBits {
			t.Skipf("packed128 layout supports %d readers, need %d", shmem.DefaultLayout128.ReaderBits, m)
		}
		init := shmem.Triple[uint64]{Seq: 0, Val: initial, Bits: pads.Mask(0)}
		r, err := shmem.NewPacked128(shmem.DefaultLayout128, init)
		if err != nil {
			t.Fatalf("NewPacked128: %v", err)
		}
		opts = append(opts, core.WithTripleReg[uint64](r))
	case "locked":
		init := shmem.Triple[uint64]{Seq: 0, Val: initial, Bits: pads.Mask(0)}
		opts = append(opts, core.WithTripleReg[uint64](shmem.NewLockedTriple(init)))
		opts = append(opts, core.WithSeqReg[uint64](&shmem.LockedSeq{}))
	case "packed":
		layout := shmem.Layout{SeqBits: 28, ValBits: 16, ReaderBits: 20}
		if m > layout.ReaderBits {
			t.Skipf("packed layout supports %d readers, need %d", layout.ReaderBits, m)
		}
		init := shmem.Triple[uint64]{Seq: 0, Val: initial, Bits: pads.Mask(0)}
		r, err := shmem.NewPacked64(layout, init)
		if err != nil {
			t.Fatalf("NewPacked64: %v", err)
		}
		opts = append(opts, core.WithTripleReg[uint64](r))
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	reg, err := core.New[uint64](m, initial, pads, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return reg
}

func mustReader(t *testing.T, reg *core.Register[uint64], j int, opts ...core.HandleOption) *core.Reader[uint64] {
	t.Helper()
	rd, err := reg.Reader(j, opts...)
	if err != nil {
		t.Fatalf("Reader(%d): %v", j, err)
	}
	return rd
}

func mustAudit(t *testing.T, a *core.Auditor[uint64]) core.Report[uint64] {
	t.Helper()
	rep, err := a.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	return rep
}

func TestNewValidation(t *testing.T) {
	t.Parallel()
	pads, _ := otp.NewKeyedPads(otp.KeyFromSeed(1), 4)

	if _, err := core.New[int](0, 0, pads); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := core.New[int](65, 0, pads); err == nil {
		t.Error("m=65 accepted")
	}
	if _, err := core.New[int](4, 0, nil); err == nil {
		t.Error("nil pads accepted")
	}

	// Injected R must hold the correct initial triple.
	bad := shmem.NewLockedTriple(shmem.Triple[int]{Seq: 7, Val: 0, Bits: 0})
	if _, err := core.New[int](4, 0, pads, core.WithTripleReg[int](bad)); err == nil {
		t.Error("mis-initialized injected R accepted")
	}

	// Injected SN must hold 0.
	sn := &shmem.LockedSeq{}
	sn.CompareAndSwap(0, 3)
	if _, err := core.New[int](4, 0, pads, core.WithSeqReg[int](sn)); err == nil {
		t.Error("mis-initialized injected SN accepted")
	}

	reg, err := core.New[int](4, 0, pads)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := reg.Reader(-1); err == nil {
		t.Error("Reader(-1) accepted")
	}
	if _, err := reg.Reader(4); err == nil {
		t.Error("Reader(m) accepted")
	}
}

func TestInitialValueReadAndAudited(t *testing.T) {
	t.Parallel()
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			reg := newReg(t, backend, 3, 99)
			rd := mustReader(t, reg, 1)
			if got := rd.Read(); got != 99 {
				t.Fatalf("initial read = %d, want 99", got)
			}
			rep := mustAudit(t, reg.Auditor())
			if !rep.Contains(1, 99) {
				t.Fatalf("audit %v missing (1, 99)", rep)
			}
			if rep.Len() != 1 {
				t.Fatalf("audit has %d entries, want 1: %v", rep.Len(), rep)
			}
		})
	}
}

func TestReadAfterWrite(t *testing.T) {
	t.Parallel()
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			reg := newReg(t, backend, 2, 0)
			w := reg.Writer()
			rd := mustReader(t, reg, 0)
			for i := uint64(1); i <= 10; i++ {
				if err := w.Write(i); err != nil {
					t.Fatalf("Write(%d): %v", i, err)
				}
				if got := rd.Read(); got != i {
					t.Fatalf("read after Write(%d) = %d", i, got)
				}
			}
		})
	}
}

func TestAuditMatchesSpecSequential(t *testing.T) {
	t.Parallel()
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			const m = 4
			reg := newReg(t, backend, m, 7)
			oracle := spec.NewAuditableRegister[uint64](7)
			readers := make([]*core.Reader[uint64], m)
			for j := range readers {
				readers[j] = mustReader(t, reg, j)
			}
			w := reg.Writer()
			auditor := reg.Auditor()

			// A fixed but shape-rich schedule: interleaved writes,
			// reads by various readers, repeated (silent) reads,
			// and audits at several points.
			script := []struct {
				op  string
				arg uint64
			}{
				{"r", 0}, {"r", 1}, {"a", 0},
				{"w", 100}, {"r", 0}, {"r", 0}, {"a", 0},
				{"w", 200}, {"w", 300}, {"r", 2}, {"a", 0},
				{"r", 3}, {"r", 1}, {"a", 0},
				{"w", 400}, {"a", 0}, {"r", 1}, {"a", 0},
			}
			for i, step := range script {
				switch step.op {
				case "r":
					got := readers[step.arg].Read()
					want := oracle.Read(int(step.arg))
					if got != want {
						t.Fatalf("step %d: read by %d = %d, want %d", i, step.arg, got, want)
					}
				case "w":
					if err := w.Write(step.arg); err != nil {
						t.Fatalf("step %d: write: %v", i, err)
					}
					oracle.Write(step.arg)
				case "a":
					got := mustAudit(t, auditor)
					want := oracle.Audit()
					if !got.Equal(want) {
						t.Fatalf("step %d: audit = %v, want %v", i, got, want)
					}
				}
			}
		})
	}
}

func TestSilentReadSkipsSharedMemory(t *testing.T) {
	t.Parallel()
	reg := newReg(t, "ptr", 2, 5)
	counter := probe.NewCounter()
	rd := mustReader(t, reg, 0, core.WithProbe(counter.Probe()))

	rd.Read()
	if got := counter.Invokes[probe.RXor]; got != 1 {
		t.Fatalf("first read applied %d fetch&xor, want 1", got)
	}
	// No write happened: the next reads must be silent (one SN read each,
	// no fetch&xor), so the reader never observes the same pad twice.
	for i := 0; i < 5; i++ {
		rd.Read()
	}
	if got := counter.Invokes[probe.RXor]; got != 1 {
		t.Fatalf("silent reads applied fetch&xor: total %d, want 1", got)
	}
	if got := counter.Invokes[probe.SNRead]; got != 6 {
		t.Fatalf("SN reads = %d, want 6", got)
	}

	// After a write the reader becomes direct again: exactly one more xor.
	if err := reg.Write(9); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := rd.Read(); got != 9 {
		t.Fatalf("read = %d, want 9", got)
	}
	if got := counter.Invokes[probe.RXor]; got != 2 {
		t.Fatalf("fetch&xor after write = %d, want 2", got)
	}
}

func TestAuditCumulativeAndIncremental(t *testing.T) {
	t.Parallel()
	reg := newReg(t, "ptr", 2, 0)
	rd0 := mustReader(t, reg, 0)
	rd1 := mustReader(t, reg, 1)

	counter := probe.NewCounter()
	auditor := reg.Auditor(core.WithProbe(counter.Probe()))

	rd0.Read()
	reg.Write(1)
	rd1.Read()
	rep := mustAudit(t, auditor)
	if !rep.Contains(0, 0) || !rep.Contains(1, 1) || rep.Len() != 2 {
		t.Fatalf("audit = %v, want {(0,0), (1,1)}", rep)
	}
	firstScan := counter.Invokes[probe.VLoad]

	// 10 more writes, then audit again: the incremental cursor means the
	// second audit scans only the new suffix.
	for i := uint64(2); i < 12; i++ {
		reg.Write(i)
	}
	rd0.Read()
	rep = mustAudit(t, auditor)
	if !rep.Contains(0, 0) || !rep.Contains(1, 1) || !rep.Contains(0, 11) {
		t.Fatalf("cumulative audit lost entries: %v", rep)
	}
	secondScan := counter.Invokes[probe.VLoad] - firstScan
	if secondScan > 11 {
		t.Fatalf("second audit scanned %d rows, want <= 11 (incremental from lsa)", secondScan)
	}

	// A third audit with no new writes scans nothing.
	before := counter.Invokes[probe.VLoad]
	mustAudit(t, auditor)
	if counter.Invokes[probe.VLoad] != before {
		t.Fatalf("no-op audit rescanned history")
	}
}

func TestTwoAuditorsIndependentCursors(t *testing.T) {
	t.Parallel()
	reg := newReg(t, "ptr", 2, 0)
	rd := mustReader(t, reg, 1)
	a1 := reg.Auditor()
	a2 := reg.Auditor()

	rd.Read()
	reg.Write(5)
	rep1 := mustAudit(t, a1)
	if !rep1.Contains(1, 0) {
		t.Fatalf("a1 audit missing (1,0): %v", rep1)
	}
	rd.Read()
	// A fresh auditor starting now must still discover the old read of 0
	// (via B) and the new read of 5 (via R's tracking bits).
	rep2 := mustAudit(t, a2)
	if !rep2.Contains(1, 0) || !rep2.Contains(1, 5) {
		t.Fatalf("late auditor missed history: %v", rep2)
	}
}

func TestWriteSilentWhenOverwrittenConcurrently(t *testing.T) {
	// A write that observes R.seq >= its target must terminate without
	// CASing R (it is linearized as immediately overwritten). We force
	// that by pre-advancing R through another writer between the SN read
	// and the loop — emulated here by a probe-triggered write.
	t.Parallel()
	reg := newReg(t, "ptr", 1, 0)
	w2 := reg.Writer()

	fired := false
	p := func(e probe.Event) {
		if e.Prim == probe.SNRead && e.Kind == probe.Return && !fired {
			fired = true
			if err := w2.Write(77); err != nil {
				t.Errorf("interleaved write: %v", err)
			}
		}
	}
	counter := probe.NewCounter()
	w1 := reg.Writer(core.WithProbe(func(e probe.Event) { p(e); counter.Probe()(e) }))

	if err := w1.Write(1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if got := counter.Invokes[probe.RCAS]; got != 0 {
		t.Fatalf("silent write applied %d CAS on R, want 0", got)
	}
	rd := mustReader(t, reg, 0)
	if got := rd.Read(); got != 77 {
		t.Fatalf("read = %d, want 77 (the overwriting value)", got)
	}
}

func TestHistoryCapacityExhaustion(t *testing.T) {
	t.Parallel()
	reg, err := core.New[uint64](1, 0, otp.ZeroPads{}, core.WithCapacity[uint64](1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := reg.Writer()
	var writeErr error
	for i := uint64(1); i < 3000; i++ {
		if writeErr = w.Write(i); writeErr != nil {
			break
		}
	}
	if writeErr == nil {
		t.Fatal("writes never hit the capacity bound")
	}
	// The failed write did not corrupt the register: reads and audits on
	// the recorded history still work.
	rd := mustReader(t, reg, 0)
	got := rd.Read()
	rep := mustAudit(t, reg.Auditor())
	if !rep.Contains(0, got) {
		t.Fatalf("audit %v missing surviving read (0, %d)", rep, got)
	}
}

func TestSeqMonotone(t *testing.T) {
	t.Parallel()
	reg := newReg(t, "ptr", 1, 0)
	last := reg.Seq()
	for i := uint64(1); i <= 100; i++ {
		reg.Write(i)
		cur := reg.Seq()
		if cur < last {
			t.Fatalf("SN went backwards: %d -> %d", last, cur)
		}
		last = cur
	}
	if last != 100 {
		t.Fatalf("SN = %d after 100 writes, want 100", last)
	}
}
