package core_test

import (
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/otp"
	"auditreg/internal/shmem"
)

// TestSilentReadAllocationFree: a read that finds no new write answers from
// the handle cache — one atomic load, zero heap allocations, regardless of
// backend or value type.
func TestSilentReadAllocationFree(t *testing.T) {
	reg := newReg(t, "seqlock", 2, 7)
	rd := mustReader(t, reg, 0)
	if err := reg.Write(42); err != nil {
		t.Fatalf("Write: %v", err)
	}
	rd.Read() // populate the cache; every further read is silent
	if n := testing.AllocsPerRun(1000, func() {
		if rd.Read() != 42 {
			t.Fatal("silent read returned wrong value")
		}
	}); n != 0 {
		t.Fatalf("silent Read allocated %v times per run", n)
	}
}

// TestUint64WriteAllocationFree: on the auto-selected seqlock backend and on
// the two-word packed backend, an uncontended uint64 write performs no heap
// allocation — the triple CAS, the value log store, and the bit-table OR all
// work in place. FixedPads isolate the register path from pad derivation
// (BlockPads amortize one small block allocation over four sequence numbers;
// see TestUint64WriteBlockPadsAmortized).
func TestUint64WriteAllocationFree(t *testing.T) {
	pads, err := otp.NewFixedPads(0xA5A5, 0x5A5A, 0xFFFF, 0x0101)
	if err != nil {
		t.Fatalf("NewFixedPads: %v", err)
	}
	for _, backend := range []string{"seqlock", "packed128"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			var opts []core.Option[uint64]
			if backend == "packed128" {
				init := shmem.Triple[uint64]{Seq: 0, Val: 0, Bits: pads.Mask(0) & otp.MaskBits(4)}
				r, err := shmem.NewPacked128(shmem.DefaultLayout128, init)
				if err != nil {
					t.Fatalf("NewPacked128: %v", err)
				}
				opts = append(opts, core.WithTripleReg[uint64](r))
			}
			reg, err := core.New[uint64](4, 0, pads, opts...)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			w := reg.Writer()
			if err := w.Write(1); err != nil { // materialize history chunk 0
				t.Fatalf("Write: %v", err)
			}
			var i uint64
			// Stay below one unbounded chunk (1024 sequence numbers) so no
			// chunk materialization is charged to the measured writes.
			if n := testing.AllocsPerRun(500, func() {
				i++
				if err := w.Write(i); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Fatalf("uint64 Write on %s allocated %v times per run", backend, n)
			}
		})
	}
}

// TestUint64WriteBlockPadsAmortized: with the production BlockPads source the
// only write-path allocation left is the pad block itself — one small object
// per four sequence numbers, amortizing to zero in AllocsPerRun's integer
// average.
func TestUint64WriteBlockPadsAmortized(t *testing.T) {
	pads, err := otp.NewBlockPads(otp.KeyFromSeed(9), 4)
	if err != nil {
		t.Fatalf("NewBlockPads: %v", err)
	}
	reg, err := core.New[uint64](4, 0, pads)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := reg.Writer()
	if err := w.Write(1); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var i uint64
	if n := testing.AllocsPerRun(500, func() {
		i++
		if err := w.Write(i); err != nil {
			t.Fatal(err)
		}
	}); n >= 1 {
		t.Fatalf("uint64 Write under BlockPads allocated %v times per run, want amortized < 1", n)
	}
}

// TestIncrementalAuditAllocationFree: an audit that finds no new history rows
// and no new readers of the current value must not allocate — the lsa cursor
// skips the scan, the pad memo skips the digest, and the report is a
// zero-copy view.
func TestIncrementalAuditAllocationFree(t *testing.T) {
	reg := newReg(t, "seqlock", 2, 0)
	rd := mustReader(t, reg, 0)
	w := reg.Writer()
	for i := 0; i < 10; i++ {
		if err := w.Write(uint64(i + 1)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		rd.Read()
	}
	auditor := reg.Auditor()
	if _, err := auditor.Audit(); err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := auditor.Audit(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("quiescent incremental Audit allocated %v times per run", n)
	}
}
