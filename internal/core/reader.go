package core

import "auditreg/internal/probe"

// Reader is the per-process read handle (code for reader p_j, Algorithm 1
// lines 1-6). It caches the latest value read (prev_val) and its sequence
// number (prev_sn); a read returns from the cache — a "silent" read — when
// SN shows no new write, which is what guarantees each reader applies at most
// one fetch&xor to R per sequence number (Lemma 17) and hence that no pad is
// observed twice by the same reader.
//
// A silent read costs one atomic load and zero heap allocations; probe event
// construction is guarded so an uninstrumented handle pays nothing for it.
//
// Not safe for concurrent use: it models a single sequential process.
type Reader[V comparable] struct {
	reg   *Register[V]
	j     int
	pid   int
	probe probe.Probe

	prevSN  uint64
	prevVal V
}

// Index returns the reader's index j.
func (rd *Reader[V]) Index() int { return rd.j }

// Read returns the register's current value. It is wait-free in the paper's
// base-object model: at most three primitive steps (on the default
// word-sized backend the base objects trade strict wait-freedom for
// allocation-freedom; see the package comment). The read is effective — and
// auditable — the instant the fetch&xor on R takes effect (Claim 4);
// everything after that is local or helping.
func (rd *Reader[V]) Read() V {
	reg := rd.reg

	// Line 2: sn <- SN.read()
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.SNRead})
	}
	sn := reg.sn.Load()
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.SNRead, Detail: sn})
	}

	// Line 3: no new write since the latest read by this process.
	if sn == rd.prevSN {
		return rd.prevVal
	}

	// Line 4: fetch the current value and insert j into the encrypted
	// reader set, in one atomic step.
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.RXor})
	}
	t := reg.r.FetchXor(uint64(1) << uint(rd.j))
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.RXor, Detail: t})
	}

	// Line 5: help complete the t.Seq-th write. For t.Seq == 0 the CAS
	// arguments wrap to (MaxUint64, 0) and can never succeed, matching the
	// paper where there is no 0-th write to help.
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
	}
	ok := reg.sn.CompareAndSwap(t.Seq-1, t.Seq)
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
	}

	// Line 6.
	rd.prevSN, rd.prevVal = t.Seq, t.Val
	return t.Val
}

// Last returns the reader's cached value and sequence number, and whether the
// cache is populated (i.e. whether the reader has ever read). Diagnostic.
func (rd *Reader[V]) Last() (val V, seq uint64, ok bool) {
	if rd.prevSN == ^uint64(0) {
		var zero V
		return zero, 0, false
	}
	return rd.prevVal, rd.prevSN, true
}
