package core

import "auditreg/internal/probe"

// Reader is the per-process read handle (code for reader p_j, Algorithm 1
// lines 1-6). It caches the latest value read (prev_val) and its sequence
// number (prev_sn); a read returns from the cache — a "silent" read — when
// SN shows no new write, which is what guarantees each reader applies at most
// one fetch&xor to R per sequence number (Lemma 17) and hence that no pad is
// observed twice by the same reader.
//
// A silent read costs one atomic load and zero heap allocations; probe event
// construction is guarded so an uninstrumented handle pays nothing for it.
//
// Not safe for concurrent use: it models a single sequential process.
type Reader[V comparable] struct {
	reg   *Register[V]
	j     int
	pid   int
	probe probe.Probe

	prevSN  uint64
	prevVal V
}

// Index returns the reader's index j.
func (rd *Reader[V]) Index() int { return rd.j }

// Read returns the register's current value. It is wait-free in the paper's
// base-object model: at most three primitive steps (on the default
// word-sized backend the base objects trade strict wait-freedom for
// allocation-freedom; see the package comment). The read is effective — and
// auditable — the instant the fetch&xor on R takes effect (Claim 4);
// everything after that is local or helping.
//
// Read is exactly ReadFetch followed, when a fetch happened, by Announce:
// the split is what a remote reader drives over the wire (package
// auditreg/server), one message per half.
func (rd *Reader[V]) Read() V {
	v, seq, fetched := rd.ReadFetch()
	if fetched {
		rd.Announce(seq)
	}
	return v
}

// ReadFetch performs the shared-memory fetch half of a read: lines 2-4 and
// the cache update of line 6, but not the helping CAS of line 5. It returns
// the value, its sequence number, and whether a fetch&xor was applied to R —
// false means the read was silent (no new write since this reader's latest
// read) and touched nothing but SN. After a fetched ReadFetch the caller
// should invoke Announce(seq) to help complete the seq-th write; skipping it
// never violates safety (announcing is pure helping), it only delays the
// sequence-number announcement until the next writer or auditor step.
func (rd *Reader[V]) ReadFetch() (val V, seq uint64, fetched bool) {
	reg := rd.reg

	// Line 2: sn <- SN.read()
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.SNRead})
	}
	sn := reg.sn.Load()
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.SNRead, Detail: sn})
	}

	// Line 3: no new write since the latest read by this process.
	if sn == rd.prevSN {
		return rd.prevVal, rd.prevSN, false
	}

	// Line 4: fetch the current value and insert j into the encrypted
	// reader set, in one atomic step.
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.RXor})
	}
	t := reg.r.FetchXor(uint64(1) << uint(rd.j))
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.RXor, Detail: t})
	}

	// Line 6.
	rd.prevSN, rd.prevVal = t.Seq, t.Val
	return t.Val, t.Seq, true
}

// Announce performs the announce half of a read (line 5): help complete the
// seq-th write by advancing SN from seq-1 to seq. Only the sequence number
// this reader's latest ReadFetch actually fetched may be announced — any
// other seq is ignored (returning false) without touching SN. The guard is
// what makes announcing safe to expose to untrusted callers (the network
// layer's READ-ANNOUNCE verb): a fetched seq was read from R, so a write
// with that seq exists and the CAS is the paper's helping step, while a
// forged SN advance past the last real write would defeat every reader's
// silent-read check and let them re-fetch&xor the same triple, toggling
// their tracking bits off the audit. Dropping an announce is always safe —
// it is pure helping — so rejecting is never a correctness problem for the
// caller. It reports whether the CAS succeeded (false also when another
// process already announced — purely diagnostic).
func (rd *Reader[V]) Announce(seq uint64) bool {
	if seq != rd.prevSN || seq == ^uint64(0) {
		return false
	}
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
	}
	ok := rd.reg.sn.CompareAndSwap(seq-1, seq)
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
	}
	return ok
}

// Last returns the reader's cached value and sequence number, and whether the
// cache is populated (i.e. whether the reader has ever read). Diagnostic.
func (rd *Reader[V]) Last() (val V, seq uint64, ok bool) {
	if rd.prevSN == ^uint64(0) {
		var zero V
		return zero, 0, false
	}
	return rd.prevVal, rd.prevSN, true
}
