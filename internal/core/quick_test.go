package core_test

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"auditreg/internal/core"
	"auditreg/internal/otp"
	"auditreg/internal/spec"
)

// opCode drives the random sequential scripts of the property tests.
type opCode struct {
	Kind   uint8  // interpreted mod 3: 0 read, 1 write, 2 audit
	Reader uint8  // interpreted mod m
	Value  uint16 // write payload (16 bits so the packed backend fits)
}

// TestQuickSequentialEquivalence replays random operation scripts against the
// implementation (all backends) and the sequential specification; under a
// sequential schedule the two must agree on every response.
func TestQuickSequentialEquivalence(t *testing.T) {
	t.Parallel()
	for _, backend := range backends {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			f := func(ops []opCode, seed uint64) bool {
				const m = 5
				reg := newReg(t, backend, m, 0)
				oracle := spec.NewAuditableRegister[uint64](0)
				readers := make([]*core.Reader[uint64], m)
				for j := range readers {
					readers[j] = mustReader(t, reg, j)
				}
				w := reg.Writer()
				auditor := reg.Auditor()
				for _, op := range ops {
					switch op.Kind % 3 {
					case 0:
						j := int(op.Reader) % m
						if readers[j].Read() != oracle.Read(j) {
							return false
						}
					case 1:
						if err := w.Write(uint64(op.Value)); err != nil {
							return false
						}
						oracle.Write(uint64(op.Value))
					case 2:
						rep, err := auditor.Audit()
						if err != nil {
							return false
						}
						if !rep.Equal(oracle.Audit()) {
							return false
						}
					}
				}
				// Final audit by a fresh auditor must reconstruct
				// the full read history from B/V alone.
				rep, err := reg.Auditor().Audit()
				if err != nil {
					return false
				}
				return rep.Equal(oracle.Audit())
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestQuickPadsDoNotAffectSemantics: the observable read/write/audit
// behaviour is identical under keyed pads, fixed pads, and zero pads — the
// pad only changes what a curious reader can infer, never what honest
// operations return.
func TestQuickPadsDoNotAffectSemantics(t *testing.T) {
	t.Parallel()
	f := func(ops []opCode, seed uint64) bool {
		const m = 4
		keyed, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), m)
		if err != nil {
			return false
		}
		fixed, err := otp.NewFixedPads(0xA, 0x5, 0xF, 0x3)
		if err != nil {
			return false
		}
		sources := []otp.PadSource{keyed, fixed, otp.ZeroPads{}}

		type world struct {
			reg     *core.Register[uint64]
			readers []*core.Reader[uint64]
			auditor *core.Auditor[uint64]
		}
		worlds := make([]world, len(sources))
		for i, src := range sources {
			reg, err := core.New[uint64](m, 0, src)
			if err != nil {
				return false
			}
			w := world{reg: reg, auditor: reg.Auditor()}
			for j := 0; j < m; j++ {
				rd, err := reg.Reader(j)
				if err != nil {
					return false
				}
				w.readers = append(w.readers, rd)
			}
			worlds[i] = w
		}

		for _, op := range ops {
			switch op.Kind % 3 {
			case 0:
				j := int(op.Reader) % m
				v0 := worlds[0].readers[j].Read()
				for _, w := range worlds[1:] {
					if w.readers[j].Read() != v0 {
						return false
					}
				}
			case 1:
				for _, w := range worlds {
					if err := w.reg.Write(uint64(op.Value)); err != nil {
						return false
					}
				}
			case 2:
				r0, err := worlds[0].auditor.Audit()
				if err != nil {
					return false
				}
				for _, w := range worlds[1:] {
					r, err := w.auditor.Audit()
					if err != nil {
						return false
					}
					if !r.Equal(r0) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomConcurrencyQuiescentAudit drives randomized concurrent
// workloads (sizes drawn from the quick generator) and checks the quiescent
// audit-equivalence property of Lemmas 3/5/24.
func TestQuickRandomConcurrencyQuiescentAudit(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		m := 1 + rng.IntN(8)
		writers := 1 + rng.IntN(4)
		perProc := 20 + rng.IntN(80)

		reg := newReg(t, "ptr", m, 0)
		type result struct {
			j    int
			vals map[uint64]struct{}
		}
		results := make(chan result, m)
		done := make(chan struct{})

		for j := 0; j < m; j++ {
			j := j
			rd := mustReader(t, reg, j)
			go func() {
				vals := make(map[uint64]struct{})
				for i := 0; i < perProc; i++ {
					vals[rd.Read()] = struct{}{}
				}
				results <- result{j: j, vals: vals}
			}()
		}
		go func() {
			defer close(done)
			var err error
			for i := 0; i < writers; i++ {
				w := reg.Writer()
				for k := 0; k < perProc && err == nil; k++ {
					err = w.Write(uint64(i*perProc+k+1) & 0xffff)
				}
			}
		}()

		returned := make([]map[uint64]struct{}, m)
		for i := 0; i < m; i++ {
			r := <-results
			returned[r.j] = r.vals
		}
		<-done

		rep, err := reg.Auditor().Audit()
		if err != nil {
			return false
		}
		for j := 0; j < m; j++ {
			for v := range returned[j] {
				if !rep.Contains(j, v) {
					return false
				}
			}
		}
		for _, e := range rep.Entries() {
			if _, ok := returned[e.Reader][e.Value]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
