package core

import (
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/shmem"
)

// Writer is the per-process write handle (code for writer p_i, Algorithm 1
// lines 7-15). Writers share the pad sequence with auditors: before
// installing a new value they decrypt the reader set of the value they
// overwrite and copy it, with the value, into the audit arrays B and V.
//
// The handle carries a pad memo (otp.PadCache), so the CAS retry loop pays
// for each pad once no matter how many readers defeat its CAS attempts.
//
// Not safe for concurrent use: it models a single sequential process.
// Distinct Writer handles may write concurrently.
type Writer[V comparable] struct {
	reg   *Register[V]
	pid   int
	probe probe.Probe
	padc  otp.PadCache
}

// Write sets the register's value to v. It is wait-free in the paper's
// base-object model: the retry loop runs at most m+1 iterations (Lemma 2),
// because a CAS on R can only be defeated by one of the m readers' single
// fetch&xor per sequence number or by a concurrent write that lets this one
// terminate as overwritten ("silent"). On the default word-sized backend the
// base objects themselves trade strict wait-freedom for allocation-freedom;
// see the package comment.
//
// The only possible error is history-capacity exhaustion (see WithCapacity).
func (w *Writer[V]) Write(v V) error {
	_, _, err := w.WriteSeq(v)
	return err
}

// WriteSeq performs Write and additionally reports where the write landed in
// the register's history. installed is true when this write's CAS placed
// (seq, v) into R itself; then seq is the write's sequence number, and
// installed sequence numbers are exactly the consecutive integers 1, 2, 3...
// (a successful CAS always advances R.seq by one). installed is false when a
// concurrent write absorbed this one — the write is linearized immediately
// before the write that installed seq, so v was never observable in R and no
// read can ever return it.
//
// Durability layers use the pair to journal writes in replayable order:
// installed writes replayed in seq order reconstruct the register history,
// and absorbed writes may be dropped without any observer noticing.
func (w *Writer[V]) WriteSeq(v V) (seq uint64, installed bool, err error) {
	reg := w.reg

	// Line 8: sn <- SN.read() + 1.
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.SNRead})
	}
	sn := reg.sn.Load() + 1
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.SNRead, Detail: sn - 1})
	}

	for {
		// Line 10: (lsn, lval, bits) <- R.read().
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.RRead})
		}
		t := reg.r.Load()
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.RRead, Detail: t})
		}

		// Line 11: a concurrent write already installed sn or later;
		// this write may be linearized immediately before it.
		if t.Seq >= sn {
			seq, installed = t.Seq, false
			break
		}

		// Line 12: copy the outgoing value for auditors.
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.VStore})
		}
		if err := reg.vals.Store(t.Seq, t.Val); err != nil {
			return 0, false, err
		}
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.VStore})
		}

		// Line 13: decrypt the tracking bits and copy the reader set.
		readers := (t.Bits ^ w.padc.Mask(t.Seq)) & reg.maskM
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.BSet, Detail: readers})
		}
		if err := reg.bits.Or(t.Seq, readers); err != nil {
			return 0, false, err
		}
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.BSet})
		}

		// Line 14: install (sn, v, fresh empty encrypted reader set).
		next := shmem.Triple[V]{Seq: sn, Val: v, Bits: w.padc.Mask(sn) & reg.maskM}
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.RCAS})
		}
		ok := reg.r.CompareAndSwap(t, next)
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.RCAS, Detail: ok})
		}
		if ok {
			seq, installed = sn, true
			break
		}
	}

	// Line 15: announce the new sequence number.
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
	}
	ok := reg.sn.CompareAndSwap(sn-1, sn)
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
	}
	return seq, installed, nil
}
