package core_test

import (
	"fmt"
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/probe"
)

// crashAfter runs fn and aborts it at the k-th primitive Invoke emitted
// through the returned option (1-based); it reports whether the abort fired.
// This models the paper's processes that "stop prematurely" at any step.
type crashPoint struct {
	k     int
	seen  int
	fired bool
}

type crashSignal struct{}

func (c *crashPoint) option() core.HandleOption {
	return core.WithProbe(func(e probe.Event) {
		if e.Kind != probe.Invoke {
			return
		}
		c.seen++
		if c.seen == c.k {
			c.fired = true
			panic(crashSignal{})
		}
	})
}

func runWithCrash(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); !ok {
				panic(r)
			}
		}
	}()
	fn()
}

// TestWriterCrashAtEveryStep injects a writer crash before each primitive of
// a write (SN read, R read, V store, B set, R CAS, SN CAS) and checks that
// the register stays fully usable and the audit stays exact: readers help
// finish interrupted writes, so a writer dying mid-operation — even between
// the CAS on R and the announcement on SN — never wedges or corrupts the
// object.
func TestWriterCrashAtEveryStep(t *testing.T) {
	t.Parallel()
	// A clean write performs 6 primitives; probe one to count.
	counter := probe.NewCounter()
	{
		reg := newReg(t, "ptr", 1, 0)
		w := reg.Writer(core.WithProbe(counter.Probe()))
		if err := w.Write(7); err != nil {
			t.Fatal(err)
		}
	}
	steps := counter.Total()
	if steps < 4 {
		t.Fatalf("unexpectedly few primitives per write: %d", steps)
	}

	for k := 1; k <= steps; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-step-%d", k), func(t *testing.T) {
			t.Parallel()
			reg := newReg(t, "ptr", 1, 0)
			cp := &crashPoint{k: k}
			w1 := reg.Writer(cp.option())
			runWithCrash(func() {
				if err := w1.Write(7); err != nil {
					t.Errorf("Write: %v", err)
				}
			})
			if !cp.fired {
				t.Fatalf("crash point %d not reached", k)
			}

			// The register must remain readable; the value is 0 or 7
			// depending on whether the crash hit before or after the
			// CAS on R.
			rd := mustReader(t, reg, 0)
			v1 := rd.Read()
			if v1 != 0 && v1 != 7 {
				t.Fatalf("read after crash = %d", v1)
			}

			// Another writer completes normally (wait-freedom is
			// per-process: the dead writer blocks nobody).
			w2 := reg.Writer()
			if err := w2.Write(9); err != nil {
				t.Fatalf("post-crash write: %v", err)
			}
			if got := rd.Read(); got != 9 {
				t.Fatalf("read after recovery write = %d", got)
			}

			// The audit is exact: both reads, nothing else.
			rep := mustAudit(t, reg.Auditor())
			if !rep.Contains(0, v1) || !rep.Contains(0, 9) {
				t.Fatalf("audit %v lost reads (0,%d)/(0,9)", rep, v1)
			}
			if rep.Len() != 2 {
				t.Fatalf("audit %v has phantom entries", rep)
			}
		})
	}
}

// TestAuditorCrashAtEveryStep: an auditor dying mid-audit leaves the register
// unharmed and a fresh auditor reconstructs the full history.
func TestAuditorCrashAtEveryStep(t *testing.T) {
	t.Parallel()
	// Build a history: 3 writes, 2 reads.
	build := func() (*core.Register[uint64], uint64, uint64) {
		reg := newReg(t, "ptr", 1, 0)
		rd := mustReader(t, reg, 0)
		w := reg.Writer()
		var v1, v2 uint64
		if err := w.Write(5); err != nil {
			t.Fatal(err)
		}
		v1 = rd.Read()
		if err := w.Write(6); err != nil {
			t.Fatal(err)
		}
		if err := w.Write(7); err != nil {
			t.Fatal(err)
		}
		v2 = rd.Read()
		return reg, v1, v2
	}

	// Count a full audit's primitives.
	counter := probe.NewCounter()
	{
		reg, _, _ := build()
		a := reg.Auditor(core.WithProbe(counter.Probe()))
		if _, err := a.Audit(); err != nil {
			t.Fatal(err)
		}
	}
	steps := counter.Total()

	for k := 1; k <= steps; k++ {
		reg, v1, v2 := build()
		cp := &crashPoint{k: k}
		dying := reg.Auditor(cp.option())
		runWithCrash(func() {
			if _, err := dying.Audit(); err != nil {
				t.Errorf("audit: %v", err)
			}
		})
		if !cp.fired {
			t.Fatalf("crash point %d not reached", k)
		}
		rep := mustAudit(t, reg.Auditor())
		if !rep.Contains(0, v1) || !rep.Contains(0, v2) || rep.Len() != 2 {
			t.Fatalf("crash at %d: fresh audit = %v, want {(0,%d),(0,%d)}", k, rep, v1, v2)
		}
	}
}

// TestReaderCrashLeavesSystemConsistent: a reader dying at any of its steps
// leaves writers and auditors fully functional, and if the crash happened at
// or after the fetch&xor, the read is effective and audited (Lemma 5).
func TestReaderCrashLeavesSystemConsistent(t *testing.T) {
	t.Parallel()
	for k := 1; k <= 3; k++ { // SN read, R xor, SN CAS
		reg := newReg(t, "ptr", 2, 0)
		if err := reg.Write(5); err != nil {
			t.Fatal(err)
		}
		cp := &crashPoint{k: k}
		rd0, err := reg.Reader(0, cp.option())
		if err != nil {
			t.Fatal(err)
		}
		runWithCrash(func() { rd0.Read() })
		if !cp.fired {
			t.Fatalf("crash point %d not reached", k)
		}

		if err := reg.Write(6); err != nil {
			t.Fatalf("crash at %d: write: %v", k, err)
		}
		rd1 := mustReader(t, reg, 1)
		if got := rd1.Read(); got != 6 {
			t.Fatalf("crash at %d: read = %d", k, got)
		}
		rep := mustAudit(t, reg.Auditor())
		// The crash fires immediately *before* the k-th primitive, so
		// the fetch&xor (primitive 2) has executed only for k >= 3:
		// then the read is effective and must be audited; for k <= 2
		// nothing was read and nothing may be reported.
		if k >= 3 && !rep.Contains(0, 5) {
			t.Fatalf("crash at %d: effective read (0,5) not audited: %v", k, rep)
		}
		if k <= 2 && rep.Contains(0, 5) {
			t.Fatalf("crash at %d: phantom read audited: %v", k, rep)
		}
	}
}
