package core

import (
	"fmt"

	"auditreg/internal/otp"
	"auditreg/internal/probe"
)

// Auditor is the per-process audit handle (Algorithm 1 lines 16-22). It
// accumulates the audit set A across calls and remembers the latest audited
// sequence number lsa, so successive audits scan only the new suffix of the
// history plus the (always re-decoded) current value. See AuditSet for how A
// deduplicates and how reports avoid copying.
//
// Not safe for concurrent use: it models a single sequential process.
// Distinct Auditor handles may audit concurrently, each with its own A.
type Auditor[V comparable] struct {
	reg   *Register[V]
	pid   int
	probe probe.Probe
	padc  otp.PadCache

	lsa uint64
	set AuditSet[V]
}

// Audit reports which values have been read and by whom: the set of pairs
// (reader, value) such that the reader has an effective read of the value
// linearized before this audit (Theorem 8). The report is cumulative over the
// auditor's lifetime.
//
// The audit is linearized at its read of R. The only possible error is an
// uninitialized history slot, which can occur only after a writer hit the
// history-capacity bound.
func (a *Auditor[V]) Audit() (Report[V], error) {
	reg := a.reg

	// Line 17: (rsn, rval, rbits) <- R.read(). The audit linearizes here.
	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.RRead})
	}
	t := reg.r.Load()
	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.RRead, Detail: t})
	}

	// Lines 18-20: collect readers of past values from V and B. The scan
	// starts at lsa, not 0: rows below lsa were already folded into A.
	for s := a.lsa; s < t.Seq; s++ {
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.VLoad})
		}
		val, ok := reg.vals.Load(s)
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.VLoad, Detail: val})
		}
		if !ok {
			return Report[V]{}, fmt.Errorf("core: audit found uninitialized V[%d]; history capacity was exceeded", s)
		}
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.BRow})
		}
		row := reg.bits.Row(s)
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.BRow, Detail: row})
		}
		a.set.Add(row&reg.maskM, val)
	}

	// Line 21: decrypt the current value's tracking bits.
	a.set.Add((t.Bits^a.padc.Mask(t.Seq))&reg.maskM, t.Val)

	// Line 22: advance the cursor to rsn (not rsn+1: more readers may
	// still join the current sequence number) and help complete the
	// rsn-th write before returning, ending any transition phase.
	a.lsa = t.Seq
	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
	}
	ok := reg.sn.CompareAndSwap(t.Seq-1, t.Seq)
	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
	}

	return a.set.View(), nil
}
