package core_test

import (
	"sync"
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/probe"
)

// TestConcurrentAuditCompleteness runs readers, writers, and auditors
// concurrently, then checks the paper's audit guarantees at quiescence:
// after all operations complete, a final audit must report exactly the set of
// (reader, value) pairs returned by reads (every completed read is effective,
// Lemma 5; and audits report only effective reads, Lemma 3 + Lemma 24).
func TestConcurrentAuditCompleteness(t *testing.T) {
	t.Parallel()
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			const (
				m        = 8
				writers  = 4
				perProc  = 200
				auditors = 2
			)
			reg := newReg(t, backend, m, 0)

			var wg sync.WaitGroup
			returned := make([]map[uint64]struct{}, m)

			for j := 0; j < m; j++ {
				j := j
				returned[j] = make(map[uint64]struct{})
				rd := mustReader(t, reg, j)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perProc; i++ {
						returned[j][rd.Read()] = struct{}{}
					}
				}()
			}
			for i := 0; i < writers; i++ {
				i := i
				w := reg.Writer()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for k := 0; k < perProc; k++ {
						// Distinct per-writer values in 16 bits.
						v := uint64(i)<<12 | uint64(k) | 1<<15
						if err := w.Write(v); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}()
			}
			// Auditors run concurrently; their intermediate reports
			// must only ever grow (cumulative A).
			for a := 0; a < auditors; a++ {
				aud := reg.Auditor()
				wg.Add(1)
				go func() {
					defer wg.Done()
					prev := 0
					for i := 0; i < perProc/4; i++ {
						rep, err := aud.Audit()
						if err != nil {
							t.Errorf("audit: %v", err)
							return
						}
						if rep.Len() < prev {
							t.Errorf("audit set shrank: %d -> %d", prev, rep.Len())
							return
						}
						prev = rep.Len()
					}
				}()
			}
			wg.Wait()

			final, err := reg.Auditor().Audit()
			if err != nil {
				t.Fatalf("final audit: %v", err)
			}
			// Completeness: every returned (j, v) is audited.
			for j := 0; j < m; j++ {
				for v := range returned[j] {
					if !final.Contains(j, v) {
						t.Fatalf("read (%d, %d) returned but not audited", j, v)
					}
				}
			}
			// Accuracy at quiescence: every audited pair was returned
			// by a completed read.
			for _, e := range final.Entries() {
				if _, ok := returned[e.Reader][e.Value]; !ok {
					t.Fatalf("audited pair (%d, %v) was never read", e.Reader, e.Value)
				}
			}
		})
	}
}

// TestWriteRetryBound checks Lemma 2's wait-freedom bound: with a single
// writer and m readers, every write's repeat loop runs at most m+1 iterations
// (each reader can defeat the CAS at most once per sequence number).
func TestWriteRetryBound(t *testing.T) {
	t.Parallel()
	const (
		m      = 8
		writes = 300
	)
	reg := newReg(t, "ptr", m, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for j := 0; j < m; j++ {
		rd := mustReader(t, reg, j)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rd.Read()
				}
			}
		}()
	}

	counter := probe.NewCounter()
	w := reg.Writer(core.WithProbe(counter.Probe()))
	maxIter := 0
	for i := 0; i < writes; i++ {
		before := counter.Invokes[probe.RRead]
		if err := w.Write(uint64(i) & 0xffff); err != nil {
			t.Fatalf("write: %v", err)
		}
		if iters := counter.Invokes[probe.RRead] - before; iters > maxIter {
			maxIter = iters
		}
	}
	close(stop)
	wg.Wait()

	if maxIter > m+1 {
		t.Fatalf("write loop ran %d iterations, Lemma 2 bound is m+1 = %d", maxIter, m+1)
	}
	t.Logf("max write-loop iterations observed: %d (bound %d)", maxIter, m+1)
}

// TestConcurrentReadersSeeMonotoneSeqs verifies readers never observe the
// sequence number regress (Invariant 15 as seen through fetch&xor responses).
func TestConcurrentReadersSeeMonotoneSeqs(t *testing.T) {
	t.Parallel()
	const m = 4
	reg := newReg(t, "ptr", m, 0)

	var wg sync.WaitGroup
	for j := 0; j < m; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			rd := mustReader(t, reg, j)
			for i := 0; i < 500; i++ {
				rd.Read()
				_, seq, ok := rd.Last()
				if ok && seq < last {
					t.Errorf("reader %d saw seq regress %d -> %d", j, last, seq)
					return
				}
				if ok {
					last = seq
				}
			}
		}()
	}
	w := reg.Writer()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			if err := w.Write(uint64(i) & 0xffff); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestManyWritersAgreeOnFinalValue checks multi-writer convergence: after all
// writers finish, all readers agree on one final value that was written.
func TestManyWritersAgreeOnFinalValue(t *testing.T) {
	t.Parallel()
	const (
		m       = 4
		writers = 8
	)
	reg := newReg(t, "ptr", m, 0)
	written := make(map[uint64]struct{})
	var mu sync.Mutex

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		w := reg.Writer()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				v := uint64(i)<<8 | uint64(k) | 1<<14
				mu.Lock()
				written[v] = struct{}{}
				mu.Unlock()
				if err := w.Write(v); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	var vals []uint64
	for j := 0; j < m; j++ {
		vals = append(vals, mustReader(t, reg, j).Read())
	}
	for _, v := range vals {
		if v != vals[0] {
			t.Fatalf("readers disagree at quiescence: %v", vals)
		}
	}
	if _, ok := written[vals[0]]; !ok {
		t.Fatalf("final value %d was never written", vals[0])
	}
}
