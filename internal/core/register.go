// Package core implements Algorithm 1 of "Auditing without Leaks Despite
// Curiosity" (Attiya et al., PODC 2025): a wait-free, linearizable,
// multi-writer multi-reader auditable register.
//
// The register guarantees, beyond linearizability of read/write/audit:
//
//   - Effective reads are audited (Lemma 5): a read is linearized — and hence
//     reported by every later audit — as soon as its fetch&xor on R takes
//     effect, even if the reading process never completes the operation. This
//     defeats the crash-simulating attack of Section 3.1.
//   - Reads are uncompromised by other readers (Lemma 7): reader sets stored
//     in R are encrypted with one-time pads known only to writers and
//     auditors, so a curious reader learns nothing about other readers.
//   - Writes are uncompromised by readers (Lemma 6): a reader learns a value
//     only through a fetch&xor on R that makes one of its own reads
//     effective — at which point that read is itself audited.
//
// Shared state, as in the paper's pseudo-code:
//
//	R  — a TripleReg holding (seq, value, encrypted reader set)
//	SN — a SeqReg holding the announced sequence number
//	V  — unbounded array of past values, indexed by sequence number
//	B  — unbounded bit table of decrypted past reader sets
//
// Process handles are cheap and single-goroutine: create one Reader per
// reading process (it carries the prev_sn/prev_val cache), one Writer per
// writing process, one Auditor per auditing process (it carries the audit
// set A and the cursor lsa). The Register itself is safe for concurrent use
// through any number of handles.
//
// One deviation from the paper's model is opt-out rather than opt-in: for
// word-sized values New defaults R to the allocation-free seqlock backend,
// which is linearizable but not strictly wait-free — a mutator preempted
// inside its few-instruction critical section briefly delays other
// processes' steps on R. The paper's per-operation step bounds are
// unchanged; only the assumption that every base-object primitive completes
// regardless of other processes' speed is weakened to the scheduler not
// parking a process inside those few instructions indefinitely. Inject
// shmem.NewPtrTriple via WithTripleReg to restore fully wait-free base
// objects at one heap allocation per mutation.
package core

import (
	"fmt"

	"auditreg/internal/handle"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/shmem"
	"auditreg/internal/unbounded"
)

// MaxReaders is the largest supported number of readers m.
const MaxReaders = shmem.MaxReaders

// Register is an auditable multi-writer, m-reader register over values of
// type V. Construct with New.
type Register[V comparable] struct {
	m     int
	maskM uint64
	pads  otp.PadSource

	r    shmem.TripleReg[V]
	sn   shmem.SeqReg
	vals valueLog[V]
	bits *unbounded.BitTable
}

// valueLog abstracts the audit array V so word-sized values can use the
// allocation-free inline store while arbitrary V keeps the boxed store.
type valueLog[V comparable] interface {
	Store(i uint64, v V) error
	Load(i uint64) (V, bool)
}

// u64Log adapts unbounded.U64Array to valueLog[uint64]; its concrete method
// signatures mean calls through the interface never box the value.
type u64Log struct{ a *unbounded.U64Array }

func (l u64Log) Store(i uint64, v uint64) error { return l.a.Store(i, v) }
func (l u64Log) Load(i uint64) (uint64, bool)   { return l.a.Load(i) }

// newValueLog picks the value store for V: the inline atomic array when V is
// uint64, the boxed array otherwise.
func newValueLog[V comparable](capacity int) (valueLog[V], error) {
	var zero V
	if _, is64 := any(zero).(uint64); is64 {
		arr, err := unbounded.NewU64Array(capacity)
		if err != nil {
			return nil, err
		}
		if lg, ok := any(u64Log{a: arr}).(valueLog[V]); ok {
			return lg, nil
		}
	}
	return unbounded.NewArray[V](capacity)
}

// defaultTripleReg picks the backend for R when none is injected: the
// allocation-free seqlock register for word-sized values, the lock-free
// pointer register otherwise. See shmem.SeqlockTriple and the package doc
// for the wait-freedom trade this makes.
func defaultTripleReg[V comparable](init shmem.Triple[V]) shmem.TripleReg[V] {
	if i64, ok := any(init).(shmem.Triple[uint64]); ok {
		if r, ok := any(shmem.NewSeqlockTriple(i64)).(shmem.TripleReg[V]); ok {
			return r
		}
	}
	return shmem.NewPtrTriple(init)
}

// Option configures a Register.
type Option[V comparable] func(*config[V])

type config[V comparable] struct {
	tripleReg shmem.TripleReg[V]
	seqReg    shmem.SeqReg
	capacity  int
}

// WithTripleReg injects a custom backend for the register R (for example a
// shmem.NewPtrTriple for strictly wait-free base objects, a
// shmem.LockedTriple for cross-checking, a shmem.Packed64 for uint64 values,
// or a scheduler-instrumented register). The backend must be initialized to
// the triple (0, initial, pads.Mask(0)); New verifies this.
func WithTripleReg[V comparable](r shmem.TripleReg[V]) Option[V] {
	return func(c *config[V]) { c.tripleReg = r }
}

// WithSeqReg injects a custom backend for the register SN. It must hold 0.
func WithSeqReg[V comparable](sn shmem.SeqReg) Option[V] {
	return func(c *config[V]) { c.seqReg = sn }
}

// WithCapacity bounds the history length (number of writes) the register can
// record for auditing. Zero selects unbounded.DefaultCapacity.
func WithCapacity[V comparable](n int) Option[V] {
	return func(c *config[V]) { c.capacity = n }
}

// New returns an auditable register for m readers (1 <= m <= MaxReaders)
// with the given initial value. The pad source embodies the shared secret of
// writers and auditors; handing it to readers would void the leak-freedom
// guarantees.
func New[V comparable](m int, initial V, pads otp.PadSource, opts ...Option[V]) (*Register[V], error) {
	if m < 1 || m > MaxReaders {
		return nil, fmt.Errorf("core: reader count m must be in [1, %d], got %d", MaxReaders, m)
	}
	if pads == nil {
		return nil, fmt.Errorf("core: pad source must not be nil")
	}
	var cfg config[V]
	for _, opt := range opts {
		opt(&cfg)
	}

	maskM := otp.MaskBits(m)
	vals, err := newValueLog[V](cfg.capacity)
	if err != nil {
		return nil, err
	}
	bits, err := unbounded.NewBitTable(cfg.capacity)
	if err != nil {
		return nil, err
	}

	reg := &Register[V]{
		m:     m,
		maskM: maskM,
		pads:  pads,
		vals:  vals,
		bits:  bits,
	}

	init := shmem.Triple[V]{Seq: 0, Val: initial, Bits: pads.Mask(0) & maskM}
	switch {
	case cfg.tripleReg != nil:
		if got := cfg.tripleReg.Load(); got != init {
			return nil, fmt.Errorf("core: injected R holds %+v, want %+v", got, init)
		}
		reg.r = cfg.tripleReg
	default:
		reg.r = defaultTripleReg(init)
	}
	switch {
	case cfg.seqReg != nil:
		if got := cfg.seqReg.Load(); got != 0 {
			return nil, fmt.Errorf("core: injected SN holds %d, want 0", got)
		}
		reg.sn = cfg.seqReg
	default:
		reg.sn = &shmem.AtomicSeq{}
	}
	return reg, nil
}

// Readers returns the register's reader count m.
func (reg *Register[V]) Readers() int { return reg.m }

// Seq returns the current announced sequence number (the content of SN).
// It is a diagnostic; the paper's object does not expose it.
func (reg *Register[V]) Seq() uint64 { return reg.sn.Load() }

// Write performs a write with an anonymous writer handle. Handy when the
// caller does not need instrumentation.
func (reg *Register[V]) Write(v V) error {
	w := Writer[V]{reg: reg, pid: -1, padc: otp.NewPadCache(reg.pads)}
	return w.Write(v)
}

// HandleOption configures a process handle (probe, pid). It is shared across
// the auditable objects of this repository.
type HandleOption = handle.Option

// WithProbe attaches an instrumentation probe to the handle. The probe is
// invoked synchronously around every primitive the handle applies to shared
// base objects.
func WithProbe(p probe.Probe) HandleOption { return handle.WithProbe(p) }

// WithPID overrides the process id reported in probe events. Readers default
// to their reader index; writers and auditors default to -1.
func WithPID(pid int) HandleOption { return handle.WithPID(pid) }

// Reader returns the handle for reader j (0 <= j < m). Each reading process
// must use its own handle; a handle is not safe for concurrent use.
func (reg *Register[V]) Reader(j int, opts ...HandleOption) (*Reader[V], error) {
	if j < 0 || j >= reg.m {
		return nil, fmt.Errorf("core: reader index %d out of range [0, %d)", j, reg.m)
	}
	cfg := handle.Apply(j, opts)
	return &Reader[V]{
		reg:    reg,
		j:      j,
		pid:    cfg.PID,
		probe:  cfg.Probe,
		prevSN: ^uint64(0), // the paper's prev_sn = -1
	}, nil
}

// Writer returns a writer handle. A handle is not safe for concurrent use;
// create one per writing process (they are stateless apart from
// instrumentation, so this is purely for probe attribution).
func (reg *Register[V]) Writer(opts ...HandleOption) *Writer[V] {
	cfg := handle.Apply(-1, opts)
	return &Writer[V]{reg: reg, pid: cfg.PID, probe: cfg.Probe, padc: otp.NewPadCache(reg.pads)}
}

// Auditor returns an auditor handle holding its own audit set A and cursor
// lsa, as in the paper. A handle is not safe for concurrent use.
func (reg *Register[V]) Auditor(opts ...HandleOption) *Auditor[V] {
	cfg := handle.Apply(-1, opts)
	return &Auditor[V]{
		reg:   reg,
		pid:   cfg.PID,
		probe: cfg.Probe,
		padc:  otp.NewPadCache(reg.pads),
		set:   NewAuditSet[V](),
	}
}
