package core

import (
	"fmt"
	"sort"
	"strings"
)

// Entry is one audited access: reader j effectively read Value.
type Entry[V comparable] struct {
	// Reader is the reader index j.
	Reader int
	// Value is the register value the reader obtained.
	Value V
}

// Report is an audit response: the set of pairs (j, v) such that p_j has an
// effective read of v linearized before the audit. Entries appear in
// discovery order (ascending sequence number, then ascending reader index
// within a row); the set semantics of the paper are preserved — no pair
// appears twice.
type Report[V comparable] struct {
	entries []Entry[V]
}

// NewReport builds a report from explicit entries, deduplicated, preserving
// first occurrence order. It is exported for tests and specifications.
func NewReport[V comparable](entries ...Entry[V]) Report[V] {
	seen := make(map[Entry[V]]struct{}, len(entries))
	out := make([]Entry[V], 0, len(entries))
	for _, e := range entries {
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	return Report[V]{entries: out}
}

// NewReportView wraps entries without copying or deduplicating. The entries
// must be distinct already and must not be mutated afterwards; appending to a
// slice the view was capped from is fine. It is the zero-copy counterpart of
// NewReport for producers that maintain the set invariant themselves.
func NewReportView[V comparable](entries []Entry[V]) Report[V] {
	return Report[V]{entries: entries}
}

// Len returns the number of distinct audited pairs.
func (r Report[V]) Len() int { return len(r.entries) }

// Entries returns a copy of the audited pairs.
func (r Report[V]) Entries() []Entry[V] {
	out := make([]Entry[V], len(r.entries))
	copy(out, r.entries)
	return out
}

// Contains reports whether the pair (reader, value) was audited.
func (r Report[V]) Contains(reader int, value V) bool {
	for _, e := range r.entries {
		if e.Reader == reader && e.Value == value {
			return true
		}
	}
	return false
}

// ValuesRead returns the distinct values reader j was audited reading, in
// discovery order.
func (r Report[V]) ValuesRead(reader int) []V {
	var out []V
	for _, e := range r.entries {
		if e.Reader == reader {
			out = append(out, e.Value)
		}
	}
	return out
}

// ReadersOf returns the sorted indices of readers audited reading value.
func (r Report[V]) ReadersOf(value V) []int {
	var out []int
	for _, e := range r.entries {
		if e.Value == value {
			out = append(out, e.Reader)
		}
	}
	sort.Ints(out)
	return out
}

// Equal reports whether two reports contain the same set of pairs,
// irrespective of order.
func (r Report[V]) Equal(other Report[V]) bool {
	if len(r.entries) != len(other.entries) {
		return false
	}
	set := make(map[Entry[V]]struct{}, len(r.entries))
	for _, e := range r.entries {
		set[e] = struct{}{}
	}
	for _, e := range other.entries {
		if _, ok := set[e]; !ok {
			return false
		}
	}
	return true
}

// String renders the report as "{(j, v), ...}" sorted by reader then value
// formatting, for stable test output.
func (r Report[V]) String() string {
	parts := make([]string, len(r.entries))
	for i, e := range r.entries {
		parts[i] = fmt.Sprintf("(%d, %v)", e.Reader, e.Value)
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
