package core

import "math/bits"

// AuditSet is the audit set A shared by the register and max-register
// auditors: an append-only entry list deduplicated through one reader
// bitmask per distinct value. Folding a decrypted history row in is a single
// AND-NOT when the row brings nothing new, and reports are O(1) snapshots of
// the list rather than copies.
//
// Not safe for concurrent use: one per auditor handle. Construct with
// NewAuditSet.
type AuditSet[V comparable] struct {
	seenBits map[V]uint64 // readers already recorded per value
	entries  []Entry[V]
}

// NewAuditSet returns an empty audit set.
func NewAuditSet[V comparable]() AuditSet[V] {
	return AuditSet[V]{seenBits: make(map[V]uint64)}
}

// Add folds a decrypted reader row for val into the set; only genuinely new
// readers are walked, one TrailingZeros64 per set bit.
func (a *AuditSet[V]) Add(row uint64, val V) {
	seen := a.seenBits[val]
	fresh := row &^ seen
	if fresh == 0 {
		return
	}
	a.seenBits[val] = seen | fresh
	for r := fresh; r != 0; r &= r - 1 {
		a.entries = append(a.entries, Entry[V]{Reader: bits.TrailingZeros64(r), Value: val})
	}
}

// View snapshots the set without copying: the entry list is append-only and
// its elements are never mutated, so a capacity-capped subslice stays valid
// as the auditor keeps appending.
func (a *AuditSet[V]) View() Report[V] {
	return NewReportView(a.entries[:len(a.entries):len(a.entries)])
}
