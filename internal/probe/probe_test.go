package probe_test

import (
	"testing"

	"auditreg/internal/probe"
)

func TestNilProbeEmitIsSafe(t *testing.T) {
	t.Parallel()
	var p probe.Probe
	p.Emit(probe.Event{PID: 1, Kind: probe.Invoke, Prim: probe.RXor})
}

func TestEmitDispatches(t *testing.T) {
	t.Parallel()
	var got []probe.Event
	p := probe.Probe(func(e probe.Event) { got = append(got, e) })
	p.Emit(probe.Event{PID: 3, Kind: probe.Invoke, Prim: probe.SNRead})
	p.Emit(probe.Event{PID: 3, Kind: probe.Return, Prim: probe.SNRead, Detail: uint64(7)})
	if len(got) != 2 {
		t.Fatalf("got %d events", len(got))
	}
	if got[1].Detail.(uint64) != 7 {
		t.Fatalf("detail = %v", got[1].Detail)
	}
}

func TestCounter(t *testing.T) {
	t.Parallel()
	c := probe.NewCounter()
	p := c.Probe()
	p(probe.Event{Kind: probe.Invoke, Prim: probe.RXor})
	p(probe.Event{Kind: probe.Return, Prim: probe.RXor}) // returns not counted
	p(probe.Event{Kind: probe.Invoke, Prim: probe.RXor})
	p(probe.Event{Kind: probe.Invoke, Prim: probe.RCAS})
	if c.Invokes[probe.RXor] != 2 || c.Invokes[probe.RCAS] != 1 {
		t.Fatalf("invokes = %v", c.Invokes)
	}
	if c.Total() != 3 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestStringers(t *testing.T) {
	t.Parallel()
	prims := []probe.Prim{
		probe.SNRead, probe.SNCAS, probe.RRead, probe.RCAS, probe.RXor,
		probe.VStore, probe.VLoad, probe.BSet, probe.BRow,
		probe.MWrite, probe.MRead, probe.SUpdate, probe.SScan,
	}
	seen := make(map[string]bool, len(prims))
	for _, p := range prims {
		s := p.String()
		if s == "" || s == "unknown" {
			t.Fatalf("prim %d has no name", p)
		}
		if seen[s] {
			t.Fatalf("duplicate prim name %q", s)
		}
		seen[s] = true
	}
	if probe.Prim(200).String() != "unknown" {
		t.Fatal("unknown prim not reported")
	}
	if probe.Invoke.String() != "invoke" || probe.Return.String() != "return" {
		t.Fatal("kind names wrong")
	}
	if probe.Kind(9).String() != "unknown" {
		t.Fatal("unknown kind not reported")
	}
}
