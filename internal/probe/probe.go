// Package probe defines the instrumentation hook threaded through the
// algorithm implementations.
//
// Each process handle (reader, writer, auditor) optionally carries a Probe.
// The handle reports every primitive it applies to shared base objects: an
// Invoke event immediately before the primitive and a Return event carrying
// the response. Probes serve three purposes in this repository:
//
//   - the deterministic scheduler (internal/sched) blocks processes inside
//     Invoke events to control interleavings at primitive granularity, which
//     is exactly the step granularity of the paper's model (Section 2);
//   - the honest-but-curious attacker (internal/attacker) records Return
//     events, which are precisely "the responses obtained from base objects"
//     the paper allows an attacker to compute on;
//   - tests count events to check step bounds such as the m+1 write-retry
//     bound of Lemma 2.
//
// A nil Probe costs a single nil check per primitive.
package probe

// Kind distinguishes the two event flavours.
type Kind uint8

// Event kinds.
const (
	// Invoke is emitted immediately before a primitive is applied.
	Invoke Kind = iota + 1
	// Return is emitted immediately after, with the primitive's response.
	Return
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Invoke:
		return "invoke"
	case Return:
		return "return"
	default:
		return "unknown"
	}
}

// Prim identifies which primitive on which base object is being applied.
type Prim uint8

// Primitives on the shared base objects of Algorithms 1-3.
const (
	// SNRead is a read of the sequence-number register SN.
	SNRead Prim = iota + 1
	// SNCAS is a compare&swap on SN.
	SNCAS
	// RRead is a read of the register R.
	RRead
	// RCAS is a compare&swap on R.
	RCAS
	// RXor is a fetch&xor on R.
	RXor
	// VStore is a write to V[s].
	VStore
	// VLoad is a read of V[s].
	VLoad
	// BSet is a write of true to B[s][j].
	BSet
	// BRow is a read of row B[s].
	BRow
	// MWrite is a writeMax on the underlying max register M (Algorithm 2).
	MWrite
	// MRead is a read of M (Algorithm 2).
	MRead
	// SUpdate is an update of the underlying snapshot S (Algorithm 3).
	SUpdate
	// SScan is a scan of S (Algorithm 3).
	SScan
)

// String returns the primitive's name as used in the paper's pseudo-code.
func (p Prim) String() string {
	switch p {
	case SNRead:
		return "SN.read"
	case SNCAS:
		return "SN.compare&swap"
	case RRead:
		return "R.read"
	case RCAS:
		return "R.compare&swap"
	case RXor:
		return "R.fetch&xor"
	case VStore:
		return "V.write"
	case VLoad:
		return "V.read"
	case BSet:
		return "B.write"
	case BRow:
		return "B.read"
	case MWrite:
		return "M.writeMax"
	case MRead:
		return "M.read"
	case SUpdate:
		return "S.update"
	case SScan:
		return "S.scan"
	default:
		return "unknown"
	}
}

// Event is one instrumentation record.
type Event struct {
	// PID is the process id of the handle applying the primitive.
	PID int
	// Kind is Invoke or Return.
	Kind Kind
	// Prim is the primitive applied.
	Prim Prim
	// Detail carries primitive-specific data: on Return it holds the
	// response (for example a shmem.Triple), on Invoke the arguments where
	// useful. It may be nil.
	Detail any
}

// Probe receives instrumentation events. Implementations may block (the
// scheduler does); algorithm code calls the probe synchronously.
type Probe func(Event)

// Emit calls p with the event if p is non-nil.
func (p Probe) Emit(e Event) {
	if p != nil {
		p(e)
	}
}

// Counter is a simple Probe that counts events per primitive. It is not safe
// for concurrent use; attach one Counter per handle.
type Counter struct {
	// Invokes counts Invoke events per primitive.
	Invokes map[Prim]int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{Invokes: make(map[Prim]int)}
}

// Probe returns the probe function recording into c.
func (c *Counter) Probe() Probe {
	return func(e Event) {
		if e.Kind == Invoke {
			c.Invokes[e.Prim]++
		}
	}
}

// Total returns the total number of Invoke events across primitives.
func (c *Counter) Total() int {
	n := 0
	for _, v := range c.Invokes {
		n += v
	}
	return n
}
