// Package handle holds the process-handle configuration shared by all
// auditable objects: every reader/writer/auditor handle can carry a probe for
// instrumentation and a process id for event attribution.
package handle

import "auditreg/internal/probe"

// Config is the resolved handle configuration.
type Config struct {
	// PID is the process id reported in probe events.
	PID int
	// Probe receives instrumentation events; nil disables instrumentation.
	Probe probe.Probe
}

// Option configures a process handle.
type Option func(*Config)

// WithProbe attaches an instrumentation probe to the handle. The probe is
// invoked synchronously around every primitive the handle applies to shared
// base objects.
func WithProbe(p probe.Probe) Option {
	return func(c *Config) { c.Probe = p }
}

// WithPID overrides the process id reported in probe events.
func WithPID(pid int) Option {
	return func(c *Config) { c.PID = pid }
}

// Apply resolves options over the given default process id.
func Apply(defaultPID int, opts []Option) Config {
	cfg := Config{PID: defaultPID}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}
