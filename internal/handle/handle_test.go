package handle_test

import (
	"testing"

	"auditreg/internal/handle"
	"auditreg/internal/probe"
)

func TestApplyDefaults(t *testing.T) {
	t.Parallel()
	cfg := handle.Apply(7, nil)
	if cfg.PID != 7 || cfg.Probe != nil {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestApplyOptions(t *testing.T) {
	t.Parallel()
	fired := false
	p := probe.Probe(func(probe.Event) { fired = true })
	cfg := handle.Apply(7, []handle.Option{handle.WithPID(42), handle.WithProbe(p)})
	if cfg.PID != 42 {
		t.Fatalf("pid = %d", cfg.PID)
	}
	if cfg.Probe == nil {
		t.Fatal("probe not attached")
	}
	cfg.Probe(probe.Event{})
	if !fired {
		t.Fatal("probe not wired through")
	}
}
