package maxreg_test

import (
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/core"
	"auditreg/internal/maxreg"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/shmem"
	"auditreg/internal/spec"
)

func lessU64(a, b uint64) bool { return a < b }

// newAuditable builds an auditable max register over uint64 with m readers.
func newAuditable(t *testing.T, m int, initial uint64, opts ...maxreg.AuditableOption[uint64]) *maxreg.Auditable[uint64] {
	t.Helper()
	pads, err := otp.NewKeyedPads(otp.KeyFromSeed(7), m)
	if err != nil {
		t.Fatalf("NewKeyedPads: %v", err)
	}
	reg, err := maxreg.NewAuditable(m, initial, lessU64, pads, opts...)
	if err != nil {
		t.Fatalf("NewAuditable: %v", err)
	}
	return reg
}

func newWriter(t *testing.T, reg *maxreg.Auditable[uint64], id uint8) *maxreg.Writer[uint64] {
	t.Helper()
	w, err := reg.Writer(otp.NewSeededNonces(uint64(id)+1, id))
	if err != nil {
		t.Fatalf("Writer: %v", err)
	}
	return w
}

func newAudReader(t *testing.T, reg *maxreg.Auditable[uint64], j int, opts ...core.HandleOption) *maxreg.Reader[uint64] {
	t.Helper()
	rd, err := reg.Reader(j, opts...)
	if err != nil {
		t.Fatalf("Reader(%d): %v", j, err)
	}
	return rd
}

func TestAuditableValidation(t *testing.T) {
	t.Parallel()
	pads, _ := otp.NewKeyedPads(otp.KeyFromSeed(1), 2)
	if _, err := maxreg.NewAuditable[uint64](0, 0, lessU64, pads); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := maxreg.NewAuditable[uint64](2, 0, nil, pads); err == nil {
		t.Error("nil less accepted")
	}
	if _, err := maxreg.NewAuditable[uint64](2, 0, lessU64, nil); err == nil {
		t.Error("nil pads accepted")
	}
	reg := newAuditable(t, 2, 0)
	if _, err := reg.Reader(2); err == nil {
		t.Error("reader index m accepted")
	}
	if _, err := reg.Writer(nil); err == nil {
		t.Error("nil nonce source accepted")
	}
}

func TestAuditableMaxSemantics(t *testing.T) {
	t.Parallel()
	reg := newAuditable(t, 2, 0)
	w := newWriter(t, reg, 1)
	rd := newAudReader(t, reg, 0)

	if got := rd.Read(); got != 0 {
		t.Fatalf("initial read = %d", got)
	}
	if err := w.WriteMax(10); err != nil {
		t.Fatalf("WriteMax: %v", err)
	}
	if got := rd.Read(); got != 10 {
		t.Fatalf("read = %d, want 10", got)
	}
	// A smaller writeMax leaves the register unchanged.
	if err := w.WriteMax(4); err != nil {
		t.Fatalf("WriteMax: %v", err)
	}
	if got := rd.Read(); got != 10 {
		t.Fatalf("read after lower write = %d, want 10", got)
	}
	if err := w.WriteMax(11); err != nil {
		t.Fatalf("WriteMax: %v", err)
	}
	if got := rd.Read(); got != 11 {
		t.Fatalf("read = %d, want 11", got)
	}
}

func TestAuditableAuditMatchesSpec(t *testing.T) {
	t.Parallel()
	const m = 3
	reg := newAuditable(t, m, 0)
	oracle := spec.NewAuditableMax[uint64](0, lessU64)
	w := newWriter(t, reg, 1)
	auditor := reg.Auditor()
	readers := make([]*maxreg.Reader[uint64], m)
	for j := range readers {
		readers[j] = newAudReader(t, reg, j)
	}

	script := []struct {
		op  string
		arg uint64
	}{
		{"r", 0}, {"a", 0},
		{"w", 5}, {"r", 1}, {"a", 0},
		{"w", 3}, {"r", 2}, // lower write: reader still sees 5
		{"a", 0},
		{"w", 9}, {"r", 0}, {"r", 0}, {"a", 0},
		{"w", 9}, {"r", 1}, {"a", 0}, // duplicate value via distinct nonce
	}
	for i, step := range script {
		switch step.op {
		case "r":
			got := readers[step.arg].Read()
			want := oracle.Read(int(step.arg))
			if got != want {
				t.Fatalf("step %d: read by %d = %d, want %d", i, step.arg, got, want)
			}
		case "w":
			if err := w.WriteMax(step.arg); err != nil {
				t.Fatalf("step %d: writeMax: %v", i, err)
			}
			oracle.WriteMax(step.arg)
		case "a":
			got, err := auditor.Audit()
			if err != nil {
				t.Fatalf("step %d: audit: %v", i, err)
			}
			if !got.Equal(oracle.Audit()) {
				t.Fatalf("step %d: audit = %v, want %v", i, got, oracle.Audit())
			}
		}
	}
}

func TestAuditableLockedBackendCrossCheck(t *testing.T) {
	t.Parallel()
	const m = 2
	pads, _ := otp.NewKeyedPads(otp.KeyFromSeed(7), m)
	init := maxreg.Nonced[uint64]{Val: 0, Nonce: 0}
	locked := shmem.NewLockedTriple(shmem.Triple[maxreg.Nonced[uint64]]{
		Seq: 0, Val: init, Bits: pads.Mask(0),
	})
	reg, err := maxreg.NewAuditable(m, 0, lessU64, pads,
		maxreg.WithAuditableTripleReg[uint64](locked),
		maxreg.WithAuditableSeqReg[uint64](&shmem.LockedSeq{}),
		maxreg.WithM[uint64](maxreg.NewLockedMax(init, func(a, b maxreg.Nonced[uint64]) bool {
			if a.Val != b.Val {
				return a.Val < b.Val
			}
			return a.Nonce < b.Nonce
		})),
	)
	if err != nil {
		t.Fatalf("NewAuditable: %v", err)
	}
	w, err := reg.Writer(otp.NewSeededNonces(3, 1))
	if err != nil {
		t.Fatalf("Writer: %v", err)
	}
	rd, err := reg.Reader(0)
	if err != nil {
		t.Fatalf("Reader: %v", err)
	}
	for _, v := range []uint64{4, 2, 8, 8, 16} {
		if err := w.WriteMax(v); err != nil {
			t.Fatalf("WriteMax(%d): %v", v, err)
		}
	}
	if got := rd.Read(); got != 16 {
		t.Fatalf("read = %d, want 16", got)
	}
	rep, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rep.Contains(0, 16) {
		t.Fatalf("audit %v missing (0, 16)", rep)
	}
}

func TestAuditableSilentReadSkipsSharedMemory(t *testing.T) {
	t.Parallel()
	reg := newAuditable(t, 2, 5)
	counter := probe.NewCounter()
	rd := newAudReader(t, reg, 1, core.WithProbe(counter.Probe()))

	rd.Read()
	rd.Read()
	rd.Read()
	if got := counter.Invokes[probe.RXor]; got != 1 {
		t.Fatalf("fetch&xor count = %d, want 1 (silent reads)", got)
	}

	// A lower writeMax does not change R's value but may advance its
	// sequence number; a subsequent read must still return the max.
	w := newWriter(t, reg, 1)
	if err := w.WriteMax(3); err != nil {
		t.Fatalf("WriteMax: %v", err)
	}
	if got := rd.Read(); got != 5 {
		t.Fatalf("read = %d, want 5", got)
	}
}

// TestQuickAuditableMatchesSpec replays random sequential scripts against the
// implementation and the sequential specification.
func TestQuickAuditableMatchesSpec(t *testing.T) {
	t.Parallel()
	type opCode struct {
		Kind   uint8
		Reader uint8
		Value  uint16
	}
	f := func(ops []opCode, seed uint64) bool {
		const m = 4
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(seed), m)
		if err != nil {
			return false
		}
		reg, err := maxreg.NewAuditable[uint64](m, 0, lessU64, pads)
		if err != nil {
			return false
		}
		oracle := spec.NewAuditableMax[uint64](0, lessU64)
		w, err := reg.Writer(otp.NewSeededNonces(seed, 9))
		if err != nil {
			return false
		}
		auditor := reg.Auditor()
		readers := make([]*maxreg.Reader[uint64], m)
		for j := range readers {
			rd, err := reg.Reader(j)
			if err != nil {
				return false
			}
			readers[j] = rd
		}
		for _, op := range ops {
			switch op.Kind % 3 {
			case 0:
				j := int(op.Reader) % m
				if readers[j].Read() != oracle.Read(j) {
					return false
				}
			case 1:
				if err := w.WriteMax(uint64(op.Value)); err != nil {
					return false
				}
				oracle.WriteMax(uint64(op.Value))
			case 2:
				rep, err := auditor.Audit()
				if err != nil {
					return false
				}
				if !rep.Equal(oracle.Audit()) {
					return false
				}
			}
		}
		rep, err := reg.Auditor().Audit()
		if err != nil {
			return false
		}
		return rep.Equal(oracle.Audit())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAuditableConcurrent verifies the quiescent audit-equivalence property
// and read monotonicity under concurrent writers, readers, and auditors.
func TestAuditableConcurrent(t *testing.T) {
	t.Parallel()
	const (
		m       = 6
		writers = 3
		perProc = 150
	)
	reg := newAuditable(t, m, 0)

	var wg sync.WaitGroup
	returned := make([]map[uint64]struct{}, m)
	for j := 0; j < m; j++ {
		j := j
		returned[j] = make(map[uint64]struct{})
		rd := newAudReader(t, reg, j)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for i := 0; i < perProc; i++ {
				v := rd.Read()
				if v < last {
					t.Errorf("reader %d: max regressed %d -> %d", j, last, v)
					return
				}
				last = v
				returned[j][v] = struct{}{}
			}
		}()
	}
	for i := 0; i < writers; i++ {
		i := i
		w := newWriter(t, reg, uint8(i+1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perProc; k++ {
				if err := w.WriteMax(uint64(k*writers + i)); err != nil {
					t.Errorf("writeMax: %v", err)
					return
				}
			}
		}()
	}
	aud := reg.Auditor()
	wg.Add(1)
	go func() {
		defer wg.Done()
		prev := 0
		for i := 0; i < 40; i++ {
			rep, err := aud.Audit()
			if err != nil {
				t.Errorf("audit: %v", err)
				return
			}
			if rep.Len() < prev {
				t.Errorf("audit shrank")
				return
			}
			prev = rep.Len()
		}
	}()
	wg.Wait()

	final, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatalf("final audit: %v", err)
	}
	for j := 0; j < m; j++ {
		for v := range returned[j] {
			if !final.Contains(j, v) {
				t.Fatalf("read (%d, %d) returned but not audited", j, v)
			}
		}
	}
	for _, e := range final.Entries() {
		if _, ok := returned[e.Reader][e.Value]; !ok {
			t.Fatalf("audited pair (%d, %v) was never read", e.Reader, e.Value)
		}
	}
}

// TestAuditableWriteMaxRetryBounded: with a single writer and m readers the
// writeMax loop is bounded (Lemma 28): value in R changes at most once after
// M holds w, and each reader defeats the CAS at most once per seq.
func TestAuditableWriteMaxRetryBounded(t *testing.T) {
	t.Parallel()
	const m = 6
	reg := newAuditable(t, m, 0)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for j := 0; j < m; j++ {
		rd := newAudReader(t, reg, j)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rd.Read()
				}
			}
		}()
	}

	counter := probe.NewCounter()
	w, err := reg.Writer(otp.NewSeededNonces(4, 2), core.WithProbe(counter.Probe()))
	if err != nil {
		t.Fatalf("Writer: %v", err)
	}
	maxIter := 0
	for i := 0; i < 200; i++ {
		before := counter.Invokes[probe.RRead]
		if err := w.WriteMax(uint64(i + 1)); err != nil {
			t.Fatalf("writeMax: %v", err)
		}
		if it := counter.Invokes[probe.RRead] - before; it > maxIter {
			maxIter = it
		}
	}
	close(stop)
	wg.Wait()

	// Single writer: one iteration may be lost to the at-most-one value
	// change after M.writeMax, plus m reader interferences, plus the
	// successful one.
	if bound := m + 2; maxIter > bound {
		t.Fatalf("writeMax loop ran %d iterations, want <= %d", maxIter, bound)
	}
	t.Logf("max writeMax-loop iterations observed: %d", maxIter)
}
