// Package maxreg implements max registers: objects whose read returns the
// largest value ever written (Aspnes, Attiya, Censor-Hillel).
//
// It provides three non-auditable max registers — the substrate M of
// Algorithm 2 — and the paper's auditable max register itself:
//
//   - CASMax: unbounded, lock-free, one atomic pointer + compare&swap;
//   - LockedMax: mutex reference implementation for cross-checking;
//   - TreeMax: the classic bounded wait-free construction from a binary tree
//     of one-bit switches (Aspnes–Attiya–Censor-Hillel), lazily allocated;
//   - Auditable: Algorithm 2 of the paper — an auditable max register whose
//     effective reads are audited and whose reads/writes are uncompromised by
//     readers, using random nonces to hide write multiplicity.
package maxreg

import "sync"

// MaxReg is a (non-auditable) max register over values of type V.
// Implementations must be safe for concurrent use.
type MaxReg[V any] interface {
	// WriteMax raises the register to v if v exceeds the current value.
	WriteMax(v V)
	// Read returns the largest value written so far.
	Read() V
}

// Less is a strict total order on V.
type Less[V any] func(a, b V) bool

// CASMax is an unbounded lock-free max register: an atomic pointer to the
// current maximum, raised with compare&swap. writeMax is lock-free (a failed
// CAS means another writeMax raised the register, so the loop re-checks
// dominance and usually exits); read is wait-free.
//
// Construct with NewCASMax; the zero value is not usable.
type CASMax[V any] struct {
	p    ptr[V]
	less Less[V]
}

// NewCASMax returns a CASMax holding initial, ordered by less.
func NewCASMax[V any](initial V, less Less[V]) *CASMax[V] {
	r := &CASMax[V]{less: less}
	r.p.store(&initial)
	return r
}

var _ MaxReg[int] = (*CASMax[int])(nil)

// WriteMax implements MaxReg.
func (r *CASMax[V]) WriteMax(v V) {
	next := &v
	for {
		cur := r.p.load()
		if !r.less(*cur, v) {
			return
		}
		if r.p.compareAndSwap(cur, next) {
			return
		}
	}
}

// Read implements MaxReg.
func (r *CASMax[V]) Read() V { return *r.p.load() }

// LockedMax is the mutex-protected reference max register.
// Construct with NewLockedMax; the zero value is not usable.
type LockedMax[V any] struct {
	mu   sync.Mutex
	cur  V
	less Less[V]
}

// NewLockedMax returns a LockedMax holding initial, ordered by less.
func NewLockedMax[V any](initial V, less Less[V]) *LockedMax[V] {
	return &LockedMax[V]{cur: initial, less: less}
}

var _ MaxReg[int] = (*LockedMax[int])(nil)

// WriteMax implements MaxReg.
func (r *LockedMax[V]) WriteMax(v V) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.less(r.cur, v) {
		r.cur = v
	}
}

// Read implements MaxReg.
func (r *LockedMax[V]) Read() V {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}
