package maxreg

import "sync/atomic"

// ptr is a tiny typed wrapper over atomic.Pointer used by CASMax. It exists
// so CASMax's hot path reads as the algorithm (load / compareAndSwap) rather
// than as atomic plumbing.
type ptr[V any] struct {
	p atomic.Pointer[V]
}

func (x *ptr[V]) load() *V                        { return x.p.Load() }
func (x *ptr[V]) store(v *V)                      { x.p.Store(v) }
func (x *ptr[V]) compareAndSwap(old, new *V) bool { return x.p.CompareAndSwap(old, new) }
