package maxreg_test

import (
	"fmt"
	"testing"

	"auditreg/internal/core"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
)

type crashSignal struct{}

// crashOption aborts the handle at its k-th primitive Invoke.
func crashOption(k int, fired *bool) core.HandleOption {
	seen := 0
	return core.WithProbe(func(e probe.Event) {
		if e.Kind != probe.Invoke {
			return
		}
		seen++
		if seen == k {
			*fired = true
			panic(crashSignal{})
		}
	})
}

func runWithCrash(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(crashSignal); !ok {
				panic(r)
			}
		}
	}()
	fn()
}

// TestWriteMaxCrashAtEveryStep kills a writeMax before each of its primitives
// (M write, SN read, R read, M read, V store, B set, R CAS, SN CAS) and
// checks that the max register stays monotone, usable, and exactly auditable.
func TestWriteMaxCrashAtEveryStep(t *testing.T) {
	t.Parallel()
	// Count a clean writeMax's primitives.
	counter := probe.NewCounter()
	{
		reg := newAuditable(t, 1, 0)
		w, err := reg.Writer(otp.NewSeededNonces(1, 1), core.WithProbe(counter.Probe()))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteMax(7); err != nil {
			t.Fatal(err)
		}
	}
	steps := counter.Total()
	if steps < 5 {
		t.Fatalf("unexpectedly few primitives per writeMax: %d", steps)
	}

	for k := 1; k <= steps; k++ {
		k := k
		t.Run(fmt.Sprintf("crash-at-step-%d", k), func(t *testing.T) {
			t.Parallel()
			reg := newAuditable(t, 1, 0)
			fired := false
			w1, err := reg.Writer(otp.NewSeededNonces(2, 1), crashOption(k, &fired))
			if err != nil {
				t.Fatal(err)
			}
			runWithCrash(func() {
				if err := w1.WriteMax(7); err != nil {
					t.Errorf("WriteMax: %v", err)
				}
			})
			if !fired {
				t.Fatalf("crash point %d not reached", k)
			}

			rd := newAudReader(t, reg, 0)
			v1 := rd.Read()
			if v1 != 0 && v1 != 7 {
				t.Fatalf("read after crash = %d", v1)
			}

			// A fresh writer raises the register past the wreck. Note
			// that 7 may live in M but not yet in R; the new writeMax
			// of a *larger* value must land regardless.
			w2, err := reg.Writer(otp.NewSeededNonces(3, 2))
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.WriteMax(9); err != nil {
				t.Fatalf("post-crash writeMax: %v", err)
			}
			if got := rd.Read(); got != 9 {
				t.Fatalf("read after recovery = %d", got)
			}

			rep, err := reg.Auditor().Audit()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Contains(0, v1) || !rep.Contains(0, 9) {
				t.Fatalf("audit %v lost reads (0,%d)/(0,9)", rep, v1)
			}
			if rep.Len() != 2 {
				t.Fatalf("audit %v has phantom entries", rep)
			}
		})
	}
}

// TestWriteMaxCrashThenSmallerWrite: after a crash that parked a large value
// in M but possibly not in R, a *smaller* writeMax by another process helps
// publish the larger value rather than losing it — M is the source of truth.
func TestWriteMaxCrashThenSmallerWrite(t *testing.T) {
	t.Parallel()
	reg := newAuditable(t, 1, 0)
	fired := false
	// Crash right after M.writeMax lands (step 2 is the SN read).
	w1, err := reg.Writer(otp.NewSeededNonces(4, 1), crashOption(2, &fired))
	if err != nil {
		t.Fatal(err)
	}
	runWithCrash(func() { _ = w1.WriteMax(100) })
	if !fired {
		t.Fatal("crash point not reached")
	}

	w2, err := reg.Writer(otp.NewSeededNonces(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteMax(50); err != nil {
		t.Fatalf("WriteMax: %v", err)
	}
	rd := newAudReader(t, reg, 0)
	// The second writer installs M's current maximum (100), not its own
	// input: the crashed write's value survives.
	if got := rd.Read(); got != 100 {
		t.Fatalf("read = %d, want 100 (rescued from M)", got)
	}
}
