package maxreg

import (
	"fmt"
	"sync/atomic"
)

// TreeMax is the bounded wait-free max register of Aspnes, Attiya and
// Censor-Hillel ("Polylogarithmic concurrent data structures from monotone
// circuits", J.ACM 2012): a binary tree of one-bit switches over the value
// range [0, 2^height). A writeMax descends height levels setting switches
// high-side-first; a read descends following set switches. Both operations
// are wait-free with exactly `height` register accesses — no helping, no
// retries.
//
// Nodes are allocated lazily along accessed paths, so a TreeMax over a 2^30
// range costs memory proportional to the values actually written.
//
// Construct with NewTreeMax; the zero value is not usable.
type TreeMax struct {
	height int
	root   *treeNode
}

type treeNode struct {
	// sw is the switch: once set, the maximum lives in the high subtree.
	sw   atomic.Bool
	low  atomic.Pointer[treeNode]
	high atomic.Pointer[treeNode]
}

var _ MaxReg[uint64] = (*TreeMax)(nil)

// MaxTreeHeight bounds the supported tree height (value range 2^60).
const MaxTreeHeight = 60

// NewTreeMax returns a tree max register over the value range [0, 2^height),
// initially holding 0.
func NewTreeMax(height int) (*TreeMax, error) {
	if height < 1 || height > MaxTreeHeight {
		return nil, fmt.Errorf("maxreg: tree height must be in [1, %d], got %d", MaxTreeHeight, height)
	}
	return &TreeMax{height: height, root: new(treeNode)}, nil
}

// Bound returns the exclusive upper bound of the register's range.
func (r *TreeMax) Bound() uint64 { return uint64(1) << uint(r.height) }

// WriteMax implements MaxReg. Values outside [0, Bound()) are clamped to
// Bound()-1; use TryWriteMax to detect range errors instead.
func (r *TreeMax) WriteMax(v uint64) {
	if v >= r.Bound() {
		v = r.Bound() - 1
	}
	writeTree(r.root, r.height, v)
}

// TryWriteMax is WriteMax with range checking.
func (r *TreeMax) TryWriteMax(v uint64) error {
	if v >= r.Bound() {
		return fmt.Errorf("maxreg: value %d outside range [0, %d)", v, r.Bound())
	}
	writeTree(r.root, r.height, v)
	return nil
}

func writeTree(n *treeNode, height int, v uint64) {
	if height == 0 {
		return // leaf: the value is fully encoded by the path
	}
	half := uint64(1) << uint(height-1)
	if v >= half {
		// Write the remainder into the high subtree *before* setting
		// the switch: a reader directed high must already find it.
		writeTree(child(&n.high), height-1, v-half)
		n.sw.Store(true)
		return
	}
	// Low side: only meaningful while the switch is unset; once set, any
	// high value dominates v and the write is already linearized as a
	// no-op.
	if !n.sw.Load() {
		writeTree(child(&n.low), height-1, v)
	}
}

// Read implements MaxReg.
func (r *TreeMax) Read() uint64 {
	return readTree(r.root, r.height)
}

func readTree(n *treeNode, height int) uint64 {
	if height == 0 {
		return 0
	}
	half := uint64(1) << uint(height-1)
	if n.sw.Load() {
		return half + readTree(child(&n.high), height-1)
	}
	return readTree(child(&n.low), height-1)
}

// child returns the node behind p, installing a fresh one on first touch.
func child(p *atomic.Pointer[treeNode]) *treeNode {
	if n := p.Load(); n != nil {
		return n
	}
	fresh := new(treeNode)
	if p.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return p.Load()
}
