package maxreg_test

import (
	"sync"
	"testing"
	"testing/quick"

	"auditreg/internal/maxreg"
)

func lessInt(a, b int) bool { return a < b }

func TestCASMaxSequential(t *testing.T) {
	t.Parallel()
	r := maxreg.NewCASMax(0, lessInt)
	if got := r.Read(); got != 0 {
		t.Fatalf("initial read = %d", got)
	}
	r.WriteMax(5)
	r.WriteMax(3) // lower: no effect
	if got := r.Read(); got != 5 {
		t.Fatalf("read = %d, want 5", got)
	}
	r.WriteMax(9)
	if got := r.Read(); got != 9 {
		t.Fatalf("read = %d, want 9", got)
	}
}

func TestLockedMaxSequential(t *testing.T) {
	t.Parallel()
	r := maxreg.NewLockedMax(0, lessInt)
	r.WriteMax(2)
	r.WriteMax(1)
	if got := r.Read(); got != 2 {
		t.Fatalf("read = %d, want 2", got)
	}
}

// TestQuickMaxBackendsAgree replays random writeMax/read scripts against
// CASMax, LockedMax, and TreeMax; all must behave identically.
func TestQuickMaxBackendsAgree(t *testing.T) {
	t.Parallel()
	f := func(ops []uint16) bool {
		lessU64 := func(a, b uint64) bool { return a < b }
		cas := maxreg.NewCASMax[uint64](0, lessU64)
		locked := maxreg.NewLockedMax[uint64](0, lessU64)
		tree, err := maxreg.NewTreeMax(16)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if op%3 == 0 {
				a, b, c := cas.Read(), locked.Read(), tree.Read()
				if a != b || b != c {
					return false
				}
				continue
			}
			v := uint64(op)
			cas.WriteMax(v)
			locked.WriteMax(v)
			tree.WriteMax(v)
		}
		return cas.Read() == locked.Read() && locked.Read() == tree.Read()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMaxMonotoneReads: for any script, successive reads never decrease.
func TestQuickMaxMonotoneReads(t *testing.T) {
	t.Parallel()
	f := func(vals []uint32) bool {
		r := maxreg.NewCASMax[uint64](0, func(a, b uint64) bool { return a < b })
		var last uint64
		for _, v := range vals {
			r.WriteMax(uint64(v))
			cur := r.Read()
			if cur < last || cur < uint64(v) {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxConcurrentConvergence(t *testing.T) {
	t.Parallel()
	tree, err := maxreg.NewTreeMax(20)
	if err != nil {
		t.Fatalf("NewTreeMax: %v", err)
	}
	regs := map[string]maxreg.MaxReg[uint64]{
		"cas":    maxreg.NewCASMax[uint64](0, func(a, b uint64) bool { return a < b }),
		"locked": maxreg.NewLockedMax[uint64](0, func(a, b uint64) bool { return a < b }),
		"tree":   tree,
	}
	for name, r := range regs {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const procs, per = 8, 1000
			var wg sync.WaitGroup
			for p := 0; p < procs; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					var localMax uint64
					for i := 0; i < per; i++ {
						v := uint64(p*per + i)
						r.WriteMax(v)
						got := r.Read()
						if got < v {
							t.Errorf("read %d below own write %d", got, v)
							return
						}
						if got < localMax {
							t.Errorf("read regressed: %d after %d", got, localMax)
							return
						}
						localMax = got
					}
				}()
			}
			wg.Wait()
			want := uint64(procs*per - 1)
			if got := r.Read(); got != want {
				t.Fatalf("final max = %d, want %d", got, want)
			}
		})
	}
}

func TestTreeMaxValidation(t *testing.T) {
	t.Parallel()
	if _, err := maxreg.NewTreeMax(0); err == nil {
		t.Error("height 0 accepted")
	}
	if _, err := maxreg.NewTreeMax(maxreg.MaxTreeHeight + 1); err == nil {
		t.Error("excess height accepted")
	}
	r, err := maxreg.NewTreeMax(4)
	if err != nil {
		t.Fatalf("NewTreeMax: %v", err)
	}
	if r.Bound() != 16 {
		t.Fatalf("Bound = %d, want 16", r.Bound())
	}
	if err := r.TryWriteMax(16); err == nil {
		t.Error("out-of-range TryWriteMax accepted")
	}
	if err := r.TryWriteMax(15); err != nil {
		t.Errorf("in-range TryWriteMax rejected: %v", err)
	}
	// WriteMax clamps.
	r2, _ := maxreg.NewTreeMax(4)
	r2.WriteMax(1 << 30)
	if got := r2.Read(); got != 15 {
		t.Fatalf("clamped write read back %d, want 15", got)
	}
}

func TestTreeMaxExactValues(t *testing.T) {
	t.Parallel()
	r, err := maxreg.NewTreeMax(10)
	if err != nil {
		t.Fatalf("NewTreeMax: %v", err)
	}
	// Every value must read back exactly when written in increasing order.
	for v := uint64(0); v < 1024; v++ {
		r.WriteMax(v)
		if got := r.Read(); got != v {
			t.Fatalf("after WriteMax(%d): read %d", v, got)
		}
	}
}

func TestTreeMaxHighLowBoundary(t *testing.T) {
	t.Parallel()
	r, err := maxreg.NewTreeMax(8)
	if err != nil {
		t.Fatalf("NewTreeMax: %v", err)
	}
	r.WriteMax(127) // all-low path
	if got := r.Read(); got != 127 {
		t.Fatalf("read = %d, want 127", got)
	}
	r.WriteMax(128) // flips the root switch
	if got := r.Read(); got != 128 {
		t.Fatalf("read = %d, want 128", got)
	}
	// A later smaller write must not lower the register.
	r.WriteMax(64)
	if got := r.Read(); got != 128 {
		t.Fatalf("read after low write = %d, want 128", got)
	}
}
