package maxreg

import (
	"fmt"

	"auditreg/internal/core"
	"auditreg/internal/handle"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/shmem"
	"auditreg/internal/unbounded"
)

// Nonced is the value actually stored by Algorithm 2: the user value paired
// with a random nonce, ordered lexicographically (first by value, then by
// nonce). The nonce introduces the "noisiness" that prevents a reader from
// inferring intermediate writeMax operations from sequence-number gaps
// (Lemma 38): consecutive observed values no longer reveal how many distinct
// user values were written in between.
type Nonced[V comparable] struct {
	// Val is the user value w.
	Val V
	// Nonce is the random nonce N appended by the writer.
	Nonce uint64
}

// Auditable is the auditable multi-writer, m-reader max register of
// Algorithm 2. Its shared state mirrors Algorithm 1 — R, SN, V, B — plus a
// non-auditable max register M shared by the writers.
//
// Guarantees (Theorem 40): linearizable and wait-free; an audit reports
// (j, v) iff p_j has a v-effective read; writeMax operations are
// uncompromised by readers that did not read the value; reads are
// uncompromised by other readers.
//
// Construct with NewAuditable.
type Auditable[V comparable] struct {
	m     int
	maskM uint64
	pads  otp.PadSource
	less  Less[V]

	r    shmem.TripleReg[Nonced[V]]
	sn   shmem.SeqReg
	mreg MaxReg[Nonced[V]]
	vals *unbounded.Array[V]
	bits *unbounded.BitTable
}

// AuditableOption configures an Auditable max register.
type AuditableOption[V comparable] func(*auditableConfig[V])

type auditableConfig[V comparable] struct {
	capacity int
	mreg     MaxReg[Nonced[V]]
	tripleR  shmem.TripleReg[Nonced[V]]
	seqReg   shmem.SeqReg
}

// WithAuditableCapacity bounds the recorded history length.
func WithAuditableCapacity[V comparable](n int) AuditableOption[V] {
	return func(c *auditableConfig[V]) { c.capacity = n }
}

// WithM injects the non-auditable max register substrate M. It must be
// initialized to the Nonced initial value passed to NewAuditable.
func WithM[V comparable](m MaxReg[Nonced[V]]) AuditableOption[V] {
	return func(c *auditableConfig[V]) { c.mreg = m }
}

// WithAuditableTripleReg injects the backend of R (e.g. a LockedTriple for
// cross-checking). It must hold (0, initial, pads.Mask(0)).
func WithAuditableTripleReg[V comparable](r shmem.TripleReg[Nonced[V]]) AuditableOption[V] {
	return func(c *auditableConfig[V]) { c.tripleR = r }
}

// WithAuditableSeqReg injects the backend of SN. It must hold 0.
func WithAuditableSeqReg[V comparable](sn shmem.SeqReg) AuditableOption[V] {
	return func(c *auditableConfig[V]) { c.seqReg = sn }
}

// NewAuditable returns an auditable max register for m readers holding
// initial (with nonce 0), ordered by less.
func NewAuditable[V comparable](m int, initial V, less Less[V], pads otp.PadSource, opts ...AuditableOption[V]) (*Auditable[V], error) {
	if m < 1 || m > shmem.MaxReaders {
		return nil, fmt.Errorf("maxreg: reader count m must be in [1, %d], got %d", shmem.MaxReaders, m)
	}
	if less == nil {
		return nil, fmt.Errorf("maxreg: ordering must not be nil")
	}
	if pads == nil {
		return nil, fmt.Errorf("maxreg: pad source must not be nil")
	}
	var cfg auditableConfig[V]
	for _, opt := range opts {
		opt(&cfg)
	}

	vals, err := unbounded.NewArray[V](cfg.capacity)
	if err != nil {
		return nil, err
	}
	bits, err := unbounded.NewBitTable(cfg.capacity)
	if err != nil {
		return nil, err
	}

	reg := &Auditable[V]{
		m:     m,
		maskM: otp.MaskBits(m),
		pads:  pads,
		less:  less,
		vals:  vals,
		bits:  bits,
	}
	init := Nonced[V]{Val: initial, Nonce: 0}
	initTriple := shmem.Triple[Nonced[V]]{Seq: 0, Val: init, Bits: pads.Mask(0) & reg.maskM}

	switch {
	case cfg.tripleR != nil:
		if got := cfg.tripleR.Load(); got != initTriple {
			return nil, fmt.Errorf("maxreg: injected R holds %+v, want %+v", got, initTriple)
		}
		reg.r = cfg.tripleR
	default:
		reg.r = shmem.NewPtrTriple(initTriple)
	}
	switch {
	case cfg.seqReg != nil:
		if got := cfg.seqReg.Load(); got != 0 {
			return nil, fmt.Errorf("maxreg: injected SN holds %d, want 0", got)
		}
		reg.sn = cfg.seqReg
	default:
		reg.sn = &shmem.AtomicSeq{}
	}
	switch {
	case cfg.mreg != nil:
		if got := cfg.mreg.Read(); got != init {
			return nil, fmt.Errorf("maxreg: injected M holds %+v, want %+v", got, init)
		}
		reg.mreg = cfg.mreg
	default:
		reg.mreg = NewCASMax(init, reg.lessNonced)
	}
	return reg, nil
}

// lessNonced orders Nonced pairs lexicographically: by user value, then by
// nonce.
func (reg *Auditable[V]) lessNonced(a, b Nonced[V]) bool {
	switch {
	case reg.less(a.Val, b.Val):
		return true
	case reg.less(b.Val, a.Val):
		return false
	default:
		return a.Nonce < b.Nonce
	}
}

// Readers returns the register's reader count m.
func (reg *Auditable[V]) Readers() int { return reg.m }

// Seq returns the current announced sequence number. Diagnostic.
func (reg *Auditable[V]) Seq() uint64 { return reg.sn.Load() }

// Peek returns the largest value written so far without any audit effect: a
// bare read of the substrate M, the same primitive the write protocol's own
// M.read step uses. It is a serving-plane accessor (the network layer's
// SHARE-WRITE acknowledgment reports the resident write id through it); an
// effective — auditable — read must go through Reader.ReadFetch. Peek may
// run ahead of Seq: a value lands in M before its sequence number is
// announced.
func (reg *Auditable[V]) Peek() V { return reg.mreg.Read().Val }

// Reader returns the handle for reader j (0 <= j < m). Not safe for
// concurrent use; one handle per reading process.
func (reg *Auditable[V]) Reader(j int, opts ...core.HandleOption) (*Reader[V], error) {
	if j < 0 || j >= reg.m {
		return nil, fmt.Errorf("maxreg: reader index %d out of range [0, %d)", j, reg.m)
	}
	cfg := handle.Apply(j, opts)
	return &Reader[V]{reg: reg, j: j, pid: cfg.PID, probe: cfg.Probe, prevSN: ^uint64(0)}, nil
}

// Writer returns a writer handle drawing nonces from the given source. Not
// safe for concurrent use; one handle per writing process, each with its own
// nonce source.
func (reg *Auditable[V]) Writer(nonces otp.NonceSource, opts ...core.HandleOption) (*Writer[V], error) {
	if nonces == nil {
		return nil, fmt.Errorf("maxreg: nonce source must not be nil")
	}
	cfg := handle.Apply(-1, opts)
	return &Writer[V]{reg: reg, nonces: nonces, pid: cfg.PID, probe: cfg.Probe, padc: otp.NewPadCache(reg.pads)}, nil
}

// Auditor returns an auditor handle with its own cumulative audit set. Not
// safe for concurrent use.
func (reg *Auditable[V]) Auditor(opts ...core.HandleOption) *Auditor[V] {
	cfg := handle.Apply(-1, opts)
	return &Auditor[V]{reg: reg, pid: cfg.PID, probe: cfg.Probe, padc: otp.NewPadCache(reg.pads), set: core.NewAuditSet[V]()}
}

// Reader is the per-process read handle of the auditable max register. The
// algorithm is identical to Algorithm 1's read — the silent-read cache, the
// fetch&xor, the helping CAS on SN — except that the nonce is stripped from
// returned values.
type Reader[V comparable] struct {
	reg   *Auditable[V]
	j     int
	pid   int
	probe probe.Probe

	prevSN  uint64
	prevVal V
}

// Index returns the reader's index j.
func (rd *Reader[V]) Index() int { return rd.j }

// Read returns the largest value written so far. Wait-free; effective (and
// auditable) as soon as the fetch&xor takes effect. As in core.Reader, Read
// is ReadFetch followed, when a fetch happened, by Announce.
func (rd *Reader[V]) Read() V {
	v, seq, fetched := rd.ReadFetch()
	if fetched {
		rd.Announce(seq)
	}
	return v
}

// ReadFetch performs the fetch half of a read: the silent-read check and the
// fetch&xor on R, without the helping CAS on SN. fetched reports whether a
// fetch&xor was applied; a silent read returns the cached value. See
// core.Reader.ReadFetch.
func (rd *Reader[V]) ReadFetch() (val V, seq uint64, fetched bool) {
	reg := rd.reg

	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.SNRead})
	}
	sn := reg.sn.Load()
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.SNRead, Detail: sn})
	}
	if sn == rd.prevSN {
		return rd.prevVal, rd.prevSN, false
	}

	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.RXor})
	}
	t := reg.r.FetchXor(uint64(1) << uint(rd.j))
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.RXor, Detail: t})
	}

	rd.prevSN, rd.prevVal = t.Seq, t.Val.Val
	return t.Val.Val, t.Seq, true
}

// Announce performs the announce half of a read: help complete the seq-th
// writeMax by advancing SN from seq-1 to seq. As in core.Reader.Announce,
// only the seq this reader's latest ReadFetch fetched is accepted; anything
// else is ignored, so untrusted remote announces cannot forge SN advances.
func (rd *Reader[V]) Announce(seq uint64) bool {
	if seq != rd.prevSN || seq == ^uint64(0) {
		return false
	}
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
	}
	ok := rd.reg.sn.CompareAndSwap(seq-1, seq)
	if rd.probe != nil {
		rd.probe.Emit(probe.Event{PID: rd.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
	}
	return ok
}

// Writer is the per-process writeMax handle (Algorithm 2 lines 22-35). Like
// the plain register's writer it memoizes pads per handle, so CAS retries do
// not re-derive them.
type Writer[V comparable] struct {
	reg    *Auditable[V]
	nonces otp.NonceSource
	pid    int
	probe  probe.Probe
	padc   otp.PadCache
}

// WriteMax raises the register to w if w exceeds the largest value written.
// Wait-free (Lemma 28): after the value lands in M, (R.seq, R.val) can change
// at most once before R.val dominates w, and then the retry loop is bounded
// by the readers' single fetch&xor per sequence number.
func (w *Writer[V]) WriteMax(val V) error {
	reg := w.reg

	// Line 23: append a fresh nonce.
	v := Nonced[V]{Val: val, Nonce: w.nonces.Next()}

	// Line 24: M.writeMax(v); sn <- SN.read() + 1.
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.MWrite})
	}
	reg.mreg.WriteMax(v)
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.MWrite})
	}

	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.SNRead})
	}
	sn := reg.sn.Load() + 1
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.SNRead, Detail: sn - 1})
	}

	for {
		// Line 26: (lsn, lval, bits) <- R.read().
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.RRead})
		}
		t := reg.r.Load()
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.RRead, Detail: t})
		}

		// Line 27: a value >= v is already installed.
		if !reg.lessNonced(t.Val, v) {
			sn = t.Seq
			break
		}

		// Lines 28-30: the target sequence number was consumed by a
		// concurrent writeMax; help announce it and take a fresh one.
		if t.Seq >= sn {
			if w.probe != nil {
				w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
			}
			ok := reg.sn.CompareAndSwap(sn-1, sn)
			if w.probe != nil {
				w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
			}

			if w.probe != nil {
				w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.SNRead})
			}
			sn = reg.sn.Load() + 1
			if w.probe != nil {
				w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.SNRead, Detail: sn - 1})
			}
			continue
		}

		// Line 31: mval <- M.read(); the candidate to install.
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.MRead})
		}
		mval := reg.mreg.Read()
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.MRead, Detail: mval})
		}

		// Lines 32-33: copy outgoing value (nonce stripped) and its
		// decrypted reader set for auditors.
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.VStore})
		}
		if err := reg.vals.Store(t.Seq, t.Val.Val); err != nil {
			return err
		}
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.VStore})
		}

		readers := (t.Bits ^ w.padc.Mask(t.Seq)) & reg.maskM
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.BSet, Detail: readers})
		}
		if err := reg.bits.Or(t.Seq, readers); err != nil {
			return err
		}
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.BSet})
		}

		// Line 34.
		next := shmem.Triple[Nonced[V]]{Seq: sn, Val: mval, Bits: w.padc.Mask(sn) & reg.maskM}
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.RCAS})
		}
		ok := reg.r.CompareAndSwap(t, next)
		if w.probe != nil {
			w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.RCAS, Detail: ok})
		}
		if ok {
			break
		}
	}

	// Line 35.
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
	}
	ok := reg.sn.CompareAndSwap(sn-1, sn)
	if w.probe != nil {
		w.probe.Emit(probe.Event{PID: w.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
	}
	return nil
}

// Auditor is the per-process audit handle; the code is Algorithm 1's audit
// with nonces stripped from reported values. The audit set is a
// core.AuditSet: deduplicated through per-value reader bitmasks, reported as
// zero-copy snapshots.
type Auditor[V comparable] struct {
	reg   *Auditable[V]
	pid   int
	probe probe.Probe
	padc  otp.PadCache

	lsa uint64
	set core.AuditSet[V]
}

// Audit reports the set of pairs (j, v) such that p_j has a v-effective read
// linearized before the audit. Cumulative over the auditor's lifetime.
func (a *Auditor[V]) Audit() (core.Report[V], error) {
	reg := a.reg

	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.RRead})
	}
	t := reg.r.Load()
	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.RRead, Detail: t})
	}

	for s := a.lsa; s < t.Seq; s++ {
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.VLoad})
		}
		val, ok := reg.vals.Load(s)
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.VLoad, Detail: val})
		}
		if !ok {
			return core.Report[V]{}, fmt.Errorf("maxreg: audit found uninitialized V[%d]; history capacity was exceeded", s)
		}
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.BRow})
		}
		row := reg.bits.Row(s)
		if a.probe != nil {
			a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.BRow, Detail: row})
		}
		a.set.Add(row&reg.maskM, val)
	}
	a.set.Add((t.Bits^a.padc.Mask(t.Seq))&reg.maskM, t.Val.Val)

	a.lsa = t.Seq
	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Invoke, Prim: probe.SNCAS})
	}
	ok := reg.sn.CompareAndSwap(t.Seq-1, t.Seq)
	if a.probe != nil {
		a.probe.Emit(probe.Event{PID: a.pid, Kind: probe.Return, Prim: probe.SNCAS, Detail: ok})
	}

	return a.set.View(), nil
}
