package cluster

import (
	"testing"

	"auditreg"
)

// TestPackUnpack round-trips the packing at every legal share width and its
// boundary values.
func TestPackUnpack(t *testing.T) {
	for shareLen := 1; shareLen <= 4; shareLen++ {
		widBits := 64 - 8*uint(shareLen)
		maxWid := uint64(1)<<widBits - 1
		maxShare := uint64(1)<<(8*uint(shareLen)) - 1
		for _, wid := range []uint64{0, 1, 7, maxWid} {
			for _, share := range []uint64{0, 1, 0xAB, maxShare} {
				p := Pack(wid, share, shareLen)
				gw, gs := Unpack(p, shareLen)
				if gw != wid || gs != share {
					t.Fatalf("shareLen=%d: Unpack(Pack(%d, %#x)) = (%d, %#x)", shareLen, wid, share, gw, gs)
				}
			}
		}
		// Ordering: wid dominates the packed comparison, which is what
		// makes writeMax newest-wid-wins.
		if Pack(2, 0, shareLen) <= Pack(1, maxShare, shareLen) {
			t.Fatalf("shareLen=%d: wid 2 packs below wid 1's largest share", shareLen)
		}
	}
}

// TestSharePadDomains checks that every derivation input separates pads:
// two pads agreeing across a changed node, name, wid, or secret would let
// one node's share leak another's.
func TestSharePadDomains(t *testing.T) {
	secret := auditreg.KeyFromSeed(1)
	base := SharePad(secret, 1, "obj", 1, 4)
	for name, other := range map[string]uint64{
		"node":   SharePad(secret, 2, "obj", 1, 4),
		"name":   SharePad(secret, 1, "obj2", 1, 4),
		"wid":    SharePad(secret, 1, "obj", 2, 4),
		"secret": SharePad(auditreg.KeyFromSeed(2), 1, "obj", 1, 4),
	} {
		if other == base {
			t.Errorf("pad collision when only %s differs", name)
		}
	}
	if again := SharePad(secret, 1, "obj", 1, 4); again != base {
		t.Errorf("SharePad not deterministic: %#x vs %#x", again, base)
	}
	for shareLen := 1; shareLen <= 4; shareLen++ {
		if p := SharePad(secret, 1, "obj", 1, shareLen); p>>(8*uint(shareLen)) != 0 {
			t.Errorf("shareLen=%d pad %#x wider than the share", shareLen, p)
		}
	}
}

// TestShareBytesRoundTrip pins the byte-order contract between the IDA
// share slices and their packed uint64 transport form.
func TestShareBytesRoundTrip(t *testing.T) {
	for _, b := range [][]byte{{0x01}, {0xAB, 0xCD}, {0x00, 0x01, 0x02}, {0xDE, 0xAD, 0xBE, 0xEF}} {
		v := shareToUint(b)
		out := make([]byte, len(b))
		uintToShare(out, v)
		for i := range b {
			if out[i] != b[i] {
				t.Fatalf("round trip %x -> %#x -> %x", b, v, out)
			}
		}
	}
}

// TestSharePadAllocFree pins the pad derivation's zero-allocation contract:
// it runs once per share per cluster write, read, and audit-merge row. The
// CI bench-smoke job runs this by its Alloc name.
func TestSharePadAllocFree(t *testing.T) {
	secret := auditreg.KeyFromSeed(3)
	if avg := testing.AllocsPerRun(200, func() {
		SharePad(secret, 3, "bench/object", 12345, 3)
	}); avg != 0 {
		t.Fatalf("SharePad allocates %.1f times per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		Pack(5, 0xAB, 3)
		Unpack(0xDEADBEEF, 3)
	}); avg != 0 {
		t.Fatalf("Pack/Unpack allocate %.1f times per call, want 0", avg)
	}
}
