package cluster_test

import (
	"net"
	"testing"
	"time"

	"auditreg/client"
	"auditreg/cluster"
	"auditreg/server"
)

// corruptNode returns a startCluster config hook planting the Byzantine
// test hook (server.Config.CorruptShares) on node index bad.
func corruptNode(bad int) func(i int, cfg *server.Config) {
	return func(i int, cfg *server.Config) {
		if i == bad {
			cfg.CorruptShares = true
		}
	}
}

// TestByzantineZeroWrongReads is the tentpole's correctness pin: with one
// node flipping a bit of every share it serves (n=5, f=1), every read must
// still return exactly the written value — the verified reconstruction and
// the consensus rule's quorum-support threshold make a wrong read
// impossible with ≤ f corrupt nodes — and the corruptor must be identified:
// flagged in the read trace, quarantined in the client, counted in the
// detection counters.
func TestByzantineZeroWrongReads(t *testing.T) {
	const bad = 2 // node index; node ID is bad+1
	tc := startCluster(t, 5, 1, 201, corruptNode(bad))
	cc := dialCluster(t, tc)
	obj, err := cc.Open("acct/byz")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	badID := tc.m.Nodes[bad].ID
	sawCorrupted := false
	for i, v := range []uint64{0xDEADBEEF, 1, 0xFFFF_FFFF_FFFF_FFFF, 42, 7} {
		if err := obj.Write(v); err != nil {
			t.Fatalf("Write #%d: %v", i, err)
		}
		for r := 0; r < obj.Readers(); r++ {
			got, trace, err := obj.ReadTraced(r)
			if err != nil {
				t.Fatalf("Read(%d) after write #%d: %v", r, i, err)
			}
			if got != v {
				t.Fatalf("WRONG READ: Read(%d) = %#x, want %#x (trace %+v)", r, got, v, trace)
			}
			for _, id := range trace.Corrupted {
				if id != badID {
					t.Fatalf("trace flagged honest node %d as corrupted (want only %d)", id, badID)
				}
				sawCorrupted = true
			}
		}
	}
	if !sawCorrupted {
		t.Fatal("no read trace flagged the corrupting node")
	}

	suspects := cc.Suspects()
	if len(suspects) != 1 || suspects[0] != badID {
		t.Fatalf("Suspects() = %v, want [%d]", suspects, badID)
	}
	ctr := cc.Counters()
	if ctr.CorruptShares == 0 || ctr.SuspectMarks == 0 {
		t.Fatalf("detection counters never fired: %+v", ctr)
	}
	if ctr.VerifiedDecodes == 0 {
		t.Fatalf("no decode took the verified path: %+v", ctr)
	}
}

// TestByzantineAuditStaysExact pins the wire-only nature of the corruption
// hook and the audit merge's robustness: the corrupting node journals the
// honest share it was asked to serve, so the merged audit still decodes
// every charged (reader, value) pair to the true cleartext and reports no
// journal corruption.
func TestByzantineAuditStaysExact(t *testing.T) {
	const bad = 0
	tc := startCluster(t, 5, 1, 202, corruptNode(bad))
	cc := dialCluster(t, tc)
	obj, err := cc.Open("acct/audit")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	const v = uint64(0xCAFEBABE)
	if err := obj.Write(v); err != nil {
		t.Fatalf("Write: %v", err)
	}
	for r := 0; r < 2; r++ {
		if got, err := obj.Read(r); err != nil || got != v {
			t.Fatalf("Read(%d) = %#x, %v; want %#x, nil", r, got, err, v)
		}
	}
	// Let every node's audit pool publish the fetches.
	time.Sleep(50 * time.Millisecond)

	merged, err := obj.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if len(merged.Corrupted) != 0 {
		t.Fatalf("merged audit reported journal corruption %v; the hook corrupts only the wire", merged.Corrupted)
	}
	for r := 0; r < 2; r++ {
		vals := merged.Report.ValuesRead(r)
		found := false
		for _, got := range vals {
			if got == v {
				found = true
			}
			if got != v && got != 0 {
				t.Fatalf("audit charged reader %d with wrong value %#x", r, got)
			}
		}
		if !found {
			t.Fatalf("audit did not charge reader %d with %#x (got %v)", r, v, vals)
		}
	}
}

// TestHungNodeLiveness pins deadline-bounded quorums: with one node
// accepting connections but never answering (a partition without RST — the
// failure a crash detector cannot see), a client dialed with a request
// timeout must keep reads and writes live and correct, each op bounded by
// the quorum of responsive nodes plus at most the configured timeout.
func TestHungNodeLiveness(t *testing.T) {
	const n, f, hung = 5, 1, 3
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tc := &testCluster{m: cluster.SeededMembership(addrs, f, 203)}
	for i := 0; i < n; i++ {
		if i == hung {
			// Swallow every connection's bytes; never answer.
			ln := lns[i]
			go func() {
				for {
					nc, err := ln.Accept()
					if err != nil {
						return
					}
					go func(nc net.Conn) {
						buf := make([]byte, 4096)
						for {
							if _, err := nc.Read(buf); err != nil {
								nc.Close()
								return
							}
						}
					}(nc)
				}
			}()
			tc.srvs = append(tc.srvs, nil)
			tc.dones = append(tc.dones, nil)
			t.Cleanup(func() { ln.Close() })
			continue
		}
		srv, err := server.New(server.Config{
			Key:          tc.m.Nodes[i].Key,
			Readers:      4,
			NodeID:       tc.m.Nodes[i].ID,
			PoolInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("server.New node %d: %v", i+1, err)
		}
		done := make(chan error, 1)
		ln := lns[i]
		go func() { done <- srv.Serve(ln) }()
		tc.srvs = append(tc.srvs, srv)
		tc.dones = append(tc.dones, done)
	}
	t.Cleanup(func() {
		for i := range tc.srvs {
			if tc.srvs[i] != nil {
				tc.stop(i)
			}
		}
	})

	const reqTimeout = 300 * time.Millisecond
	cc, err := cluster.Dial(tc.m, cluster.WithClientOptions(func(cluster.Node) []client.Option {
		return []client.Option{client.WithRequestTimeout(reqTimeout)}
	}))
	if err != nil {
		t.Fatalf("cluster.Dial: %v", err)
	}
	t.Cleanup(func() { cc.Close() })

	start := time.Now()
	obj, err := cc.Open("acct/hung")
	if err != nil {
		t.Fatalf("Open with a hung node: %v", err)
	}
	for i, v := range []uint64{11, 22, 33} {
		if err := obj.Write(v); err != nil {
			t.Fatalf("Write #%d with a hung node: %v", i, err)
		}
		got, trace, err := obj.ReadTraced(0)
		if err != nil {
			t.Fatalf("Read #%d with a hung node: %v", i, err)
		}
		if got != v {
			t.Fatalf("Read #%d = %d, want %d (trace %+v)", i, got, v, trace)
		}
	}
	// Open + 3 writes + 3 reads: the quorum path never waits on the hung
	// node, so the whole run is bounded by a handful of timeouts (the lazy
	// re-opens against the hung node ride in background goroutines), far
	// under the serial worst case.
	if elapsed := time.Since(start); elapsed > 20*reqTimeout {
		t.Fatalf("ops with a hung node took %v; quorum returns are not early", elapsed)
	}
}
