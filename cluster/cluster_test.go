package cluster_test

import (
	"context"
	"net"
	"testing"
	"time"

	"auditreg/cluster"
	"auditreg/server"
)

// testCluster is an in-process cluster: n auditd servers booted with their
// positional node ids and the seeded per-node store keys.
type testCluster struct {
	m     cluster.Membership
	srvs  []*server.Server
	dones []chan error
}

// startCluster boots the cluster; cfgHooks (optional) run against each
// node's config before server.New — how a test plants one Byzantine node.
func startCluster(t *testing.T, n, f int, seed uint64, cfgHooks ...func(i int, cfg *server.Config)) *testCluster {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tc := &testCluster{m: cluster.SeededMembership(addrs, f, seed)}
	if err := tc.m.Validate(); err != nil {
		t.Fatalf("membership: %v", err)
	}
	for i := 0; i < n; i++ {
		cfg := server.Config{
			Key:          tc.m.Nodes[i].Key,
			Readers:      4,
			NodeID:       tc.m.Nodes[i].ID,
			PoolInterval: time.Millisecond,
		}
		for _, hook := range cfgHooks {
			hook(i, &cfg)
		}
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatalf("server.New node %d: %v", i+1, err)
		}
		done := make(chan error, 1)
		ln := lns[i]
		go func() { done <- srv.Serve(ln) }()
		tc.srvs = append(tc.srvs, srv)
		tc.dones = append(tc.dones, done)
	}
	t.Cleanup(tc.stopAll)
	return tc
}

// stop shuts node i down (idempotent).
func (tc *testCluster) stop(i int) {
	if tc.srvs[i] == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tc.srvs[i].Shutdown(ctx)
	<-tc.dones[i]
	tc.srvs[i] = nil
}

func (tc *testCluster) stopAll() {
	for i := range tc.srvs {
		tc.stop(i)
	}
}

func dialCluster(t *testing.T, tc *testCluster) *cluster.Client {
	t.Helper()
	cc, err := cluster.Dial(tc.m)
	if err != nil {
		t.Fatalf("cluster.Dial: %v", err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

// TestWriteReadRoundTrip drives the basic dispersed register: the initial
// value is 0, each write becomes visible to every reader, and values
// round-trip exactly through split → mask → pack → fetch → unmask →
// reconstruct.
func TestWriteReadRoundTrip(t *testing.T) {
	tc := startCluster(t, 5, 1, 101)
	cc := dialCluster(t, tc)
	obj, err := cc.Open("acct/1")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	if v, err := obj.Read(0); err != nil || v != 0 {
		t.Fatalf("initial Read = %d, %v; want 0, nil", v, err)
	}
	for i, v := range []uint64{0xDEADBEEF, 1, 0xFFFF_FFFF_FFFF_FFFF, 42} {
		if err := obj.Write(v); err != nil {
			t.Fatalf("Write #%d: %v", i, err)
		}
		for r := 0; r < obj.Readers(); r++ {
			got, trace, err := obj.ReadTraced(r)
			if err != nil {
				t.Fatalf("Read(%d) after write #%d: %v", r, i, err)
			}
			if got != v {
				t.Fatalf("Read(%d) = %#x, want %#x", r, got, v)
			}
			if trace.Wid != uint64(i+1) {
				t.Fatalf("read wid = %d, want %d", trace.Wid, i+1)
			}
			if trace.Responded < tc.m.Quorum() {
				t.Fatalf("read heard %d nodes, want >= %d", trace.Responded, tc.m.Quorum())
			}
		}
	}
}

// TestWidRecovery pins writer-restart monotonicity: a fresh cluster client
// (a writer that lost its in-memory wid) must probe the cluster, resume
// above the newest resident wid, and never reuse one.
func TestWidRecovery(t *testing.T) {
	tc := startCluster(t, 4, 1, 102)
	cc := dialCluster(t, tc)
	obj, err := cc.Open("obj")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for v := uint64(1); v <= 3; v++ {
		if err := obj.Write(v * 100); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}

	cc2 := dialCluster(t, tc)
	obj2, err := cc2.Open("obj")
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	if err := obj2.Write(999); err != nil {
		t.Fatalf("post-restart Write: %v", err)
	}
	v, trace, err := obj2.ReadTraced(1)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if v != 999 {
		t.Fatalf("Read = %d, want 999", v)
	}
	if trace.Wid != 4 {
		t.Fatalf("restarted writer issued wid %d, want 4 (monotone across restart)", trace.Wid)
	}
}

// TestCrashTolerance kills f nodes outright and checks the cluster keeps
// serving: writes reach a quorum, reads reconstruct from the survivors, and
// every value written before or after the crash stays readable.
func TestCrashTolerance(t *testing.T) {
	tc := startCluster(t, 5, 1, 103)
	cc := dialCluster(t, tc)
	obj, err := cc.Open("obj")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := obj.Write(0xA1); err != nil {
		t.Fatalf("pre-crash Write: %v", err)
	}
	if v, err := obj.Read(0); err != nil || v != 0xA1 {
		t.Fatalf("pre-crash Read = %#x, %v", v, err)
	}

	tc.stop(2) // kill node 3

	if err := obj.Write(0xB2); err != nil {
		t.Fatalf("post-crash Write: %v", err)
	}
	for r := 0; r < obj.Readers(); r++ {
		v, trace, err := obj.ReadTraced(r)
		if err != nil {
			t.Fatalf("post-crash Read(%d): %v", r, err)
		}
		if v != 0xB2 {
			t.Fatalf("post-crash Read(%d) = %#x, want 0xB2", r, v)
		}
		if len(trace.Failed) > tc.m.F {
			t.Fatalf("read reported %d failed nodes, budget f=%d", len(trace.Failed), tc.m.F)
		}
	}
}

// TestAuditMergeExact is the package's exactness test: after a quiet run
// (no read overlaps a write), the merged audit must charge exactly the
// (reader, value) pairs that were actually read — every observed pair
// present (completeness), nothing else and no undecided residue
// (soundness).
func TestAuditMergeExact(t *testing.T) {
	tc := startCluster(t, 5, 1, 104)
	cc := dialCluster(t, tc)
	obj, err := cc.Open("ledger")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	type pair struct {
		reader int
		value  uint64
	}
	observed := make(map[pair]bool)
	read := func(r int) {
		v, err := obj.Read(r)
		if err != nil {
			t.Fatalf("Read(%d): %v", r, err)
		}
		if v != 0 {
			observed[pair{r, v}] = true
		}
	}

	if err := obj.Write(0x1111); err != nil {
		t.Fatal(err)
	}
	read(0)
	read(1)
	if err := obj.Write(0x2222); err != nil {
		t.Fatal(err)
	}
	read(1)
	read(2)
	if err := obj.Write(0x3333); err != nil {
		t.Fatal(err)
	}
	read(0)
	// Reader 3 never reads; reader 1 saw two values.

	merged, err := obj.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if merged.Nodes != tc.m.N() {
		t.Fatalf("merged %d node audits, want %d", merged.Nodes, tc.m.N())
	}
	if len(merged.Undecided) != 0 {
		t.Fatalf("quiet run left undecided pairs: %+v", merged.Undecided)
	}
	for p := range observed {
		if !merged.Report.Contains(p.reader, p.value) {
			t.Errorf("merged audit misses observed (reader %d, value %#x)", p.reader, p.value)
		}
	}
	for _, e := range merged.Report.Entries() {
		if !observed[pair{e.Reader, e.Value}] {
			t.Errorf("merged audit charges (reader %d, value %#x) which was never read", e.Reader, e.Value)
		}
	}
	if got, want := merged.Report.Len(), len(observed); got != want {
		t.Errorf("merged report has %d entries, want %d", got, want)
	}
}

// TestAuditMergeSurvivesCrashRestart checks end-of-run exactness across a
// crash: reads observed values through a quorum while one node was down;
// after the node restarts (here: a fresh server on the same address with
// the same key — an empty store, the worst recovery case), the merge over
// all n still charges every observed pair, because each completed read
// logged its fetches on ≥ k surviving nodes.
func TestAuditMergeAcrossCrash(t *testing.T) {
	tc := startCluster(t, 5, 1, 105)
	cc := dialCluster(t, tc)
	obj, err := cc.Open("obj")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := obj.Write(0xAA); err != nil {
		t.Fatal(err)
	}
	tc.stop(4) // node 5 down
	if err := obj.Write(0xBB); err != nil {
		t.Fatal(err)
	}
	if v, err := obj.Read(2); err != nil || v != 0xBB {
		t.Fatalf("Read during outage = %#x, %v", v, err)
	}

	merged, err := obj.Audit() // quorum merge: 4 of 5 nodes
	if err != nil {
		t.Fatalf("Audit with node down: %v", err)
	}
	if merged.Nodes != 4 {
		t.Fatalf("merged %d nodes, want 4", merged.Nodes)
	}
	if !merged.Report.Contains(2, 0xBB) {
		t.Fatalf("quorum merge misses (2, 0xBB): %v", merged.Report)
	}
}

// TestNodeStats checks the health fan-out: every live node reports its
// node-id and share counters.
func TestNodeStats(t *testing.T) {
	tc := startCluster(t, 4, 1, 106)
	cc := dialCluster(t, tc)
	obj, err := cc.Open("obj")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := obj.Write(7); err != nil {
		t.Fatal(err)
	}
	stats, err := cc.NodeStats()
	if err != nil {
		t.Fatalf("NodeStats: %v", err)
	}
	for i, ns := range stats {
		if ns.Err != nil {
			t.Fatalf("node %d stats: %v", ns.Node, ns.Err)
		}
		var nodeID, shareWrites uint64
		for _, p := range ns.Resp.Pairs {
			switch p.Name {
			case "node-id":
				nodeID = p.Value
			case "share-writes":
				shareWrites = p.Value
			}
		}
		if nodeID != uint64(i+1) {
			t.Errorf("node %d reports node-id %d", i+1, nodeID)
		}
		if shareWrites != 1 {
			t.Errorf("node %d share-writes = %d, want 1", i+1, shareWrites)
		}
	}
}

// TestMembershipValidate pins the quorum arithmetic's guard rails.
func TestMembershipValidate(t *testing.T) {
	mk := func(n, f int) cluster.Membership {
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = "127.0.0.1:1"
		}
		return cluster.SeededMembership(addrs, f, 1)
	}
	for _, tc := range []struct {
		n, f int
		ok   bool
	}{
		{2, 0, true},  // degenerate: k=2, no fault tolerance
		{3, 1, false}, // n < 2f+2
		{4, 1, true},  // k=2, shareLen=4
		{5, 1, true},  // k=3, shareLen=3
		{6, 2, true},  // k=2
		{7, 2, true},  // k=3
		{5, 2, false}, // n < 2f+2
		{4, -1, false},
	} {
		m := mk(tc.n, tc.f)
		err := m.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(n=%d, f=%d) = %v, want ok=%v", tc.n, tc.f, err, tc.ok)
		}
		if err == nil {
			if k := m.Threshold(); k != tc.n-2*tc.f {
				t.Errorf("Threshold(n=%d, f=%d) = %d", tc.n, tc.f, k)
			}
			if sl := m.ShareLen(); sl < 1 || sl > 4 {
				t.Errorf("ShareLen(n=%d, f=%d) = %d out of [1,4]", tc.n, tc.f, sl)
			}
		}
	}

	bad := mk(4, 1)
	bad.Nodes[2].ID = 9
	if bad.Validate() == nil {
		t.Error("Validate accepted a non-positional node id")
	}
	bad = mk(4, 1)
	bad.Nodes[0].Addr = ""
	if bad.Validate() == nil {
		t.Error("Validate accepted an empty address")
	}
}
