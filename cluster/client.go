package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"auditreg/client"
	"auditreg/internal/ida"
	"auditreg/store"
)

// Client is a dispersing client over a cluster membership: one pooled
// auditreg/client per node, fanned out per operation, quorum-counted per
// the package rules. Construct with Dial. Safe for concurrent use; the
// writer role of any one object is serialized internally (single-writer
// register).
type Client struct {
	m        Membership
	cod      *ida.Coder
	shareLen int

	clients []*client.Client // position i ↔ m.Nodes[i]

	suspects *suspectSet // Byzantine quarantine state (cluster/suspect.go)
	ctr      counters    // detection counters, snapshot via Counters()

	mu      sync.Mutex
	objects map[string]*Object
	closed  bool
}

// Option configures a cluster Dial.
type Option func(*dialConfig)

type dialConfig struct {
	perNode func(Node) []client.Option
}

// WithClientOptions supplies extra per-node options for the underlying
// auditreg/client pools — a netsim fabric's Dialer, a pool size, a dial
// timeout. Called once per node; the returned options are appended after
// the cluster's own (node assertion, audit key).
func WithClientOptions(f func(Node) []client.Option) Option {
	return func(c *dialConfig) { c.perNode = f }
}

// Dial validates the membership and connects one client pool per node. A
// node that cannot be dialed does not fail the call as long as at least
// quorum (n−f) pools connect: the dead node's pool is left nil and every
// operation counts it against f. Each pool asserts its node's id on OPEN
// (client.WithNode) and carries the node's audit key when the membership
// has one.
func Dial(m Membership, opts ...Option) (*Client, error) {
	cod, err := m.coder()
	if err != nil {
		return nil, err
	}
	var cfg dialConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Client{
		m:        m,
		cod:      cod,
		shareLen: m.ShareLen(),
		clients:  make([]*client.Client, m.N()),
		suspects: newSuspectSet(),
		objects:  make(map[string]*Object),
	}
	alive := 0
	var firstErr error
	for i, nd := range m.Nodes {
		copts := []client.Option{client.WithNode(nd.ID)}
		var zero [32]byte
		if nd.Key != zero {
			copts = append(copts, client.WithKey(nd.Key))
		}
		if cfg.perNode != nil {
			copts = append(copts, cfg.perNode(nd)...)
		}
		cl, err := client.Dial(nd.Addr, copts...)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.clients[i] = cl
		alive++
	}
	if alive < m.Quorum() {
		c.Close()
		return nil, fmt.Errorf("cluster: only %d of %d nodes dialable, need %d: %w", alive, m.N(), m.Quorum(), firstErr)
	}
	return c, nil
}

// Membership returns the cluster configuration the client was dialed with.
func (c *Client) Membership() Membership { return c.m }

// Close tears down every node pool.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
	return nil
}

// Open returns the dispersed object stored under name, creating its share
// object (a MaxRegister) on every reachable node. Up to f nodes may be
// unreachable; their opens are retried lazily by the first operation that
// finds them back.
func (c *Client) Open(name string) (*Object, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("cluster: client closed")
	}
	if obj, ok := c.objects[name]; ok {
		c.mu.Unlock()
		return obj, nil
	}
	c.mu.Unlock()

	o := &Object{c: c, name: name, nodes: make([]*client.Object, c.m.N())}
	type res struct {
		i   int
		obj *client.Object
		err error
	}
	ch := make(chan res, c.m.N())
	for i := range c.clients {
		go func(i int) {
			obj, err := c.openNode(name, i)
			ch <- res{i, obj, err}
		}(i)
	}
	opened := 0
	var firstErr error
	for range c.clients {
		r := <-ch
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		o.nodes[r.i] = r.obj
		opened++
		o.readers = r.obj.Readers()
	}
	if opened < c.m.Quorum() {
		return nil, fmt.Errorf("cluster: open %q reached %d of %d nodes, need %d: %w", name, opened, c.m.N(), c.m.Quorum(), firstErr)
	}
	o.rmu = make([]sync.Mutex, o.readers)

	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.objects[name]; ok {
		return prev, nil
	}
	c.objects[name] = o
	return o, nil
}

// openNode opens the share object on node i through its pool.
func (c *Client) openNode(name string, i int) (*client.Object, error) {
	cl := c.clients[i]
	if cl == nil {
		return nil, &client.NodeError{Addr: c.m.Nodes[i].Addr, Err: errNotDialed}
	}
	return cl.Open(name, store.MaxRegister)
}

// Object is one dispersed register: n per-node share objects behind a
// single Write/Read/Audit surface. The write side is serialized internally
// — the register is single-writer, and wids must be issued monotonically.
type Object struct {
	c       *Client
	name    string
	readers int

	nmu   sync.Mutex
	nodes []*client.Object // nil where the node was unreachable at Open

	wmu    sync.Mutex
	synced bool   // wid recovered from a quorum this session
	wid    uint64 // newest wid this writer installed or observed

	rmu []sync.Mutex // per-reader serialization of ReadTraced
}

// Name returns the object's name.
func (o *Object) Name() string { return o.name }

// Readers returns the reader count m of the share objects.
func (o *Object) Readers() int { return o.readers }

// node returns node i's share-object handle, retrying the open lazily when
// the node was unreachable before.
func (o *Object) node(i int) (*client.Object, error) {
	o.nmu.Lock()
	obj := o.nodes[i]
	o.nmu.Unlock()
	if obj != nil {
		return obj, nil
	}
	obj, err := o.c.openNode(o.name, i)
	if err != nil {
		return nil, err
	}
	o.nmu.Lock()
	if o.nodes[i] == nil {
		o.nodes[i] = obj
	} else {
		obj = o.nodes[i]
	}
	o.nmu.Unlock()
	return obj, nil
}

// shareResult is one node's answer to a fan-out.
type shareResult struct {
	i     int
	value uint64
	err   error
}

// fanOut launches op against every node concurrently and returns the result
// channel, which will eventually carry exactly n results. The channel is
// buffered to n, so the per-node goroutines complete into it no matter when
// (or whether) the caller stops reading — a collector that returns at a
// decisive quorum detaches, and the buffer is the drainer; nothing leaks
// and no goroutine ever blocks on an abandoned round (invariant:
// fan-out-never-blocks-past-quorum). A hung node's straggling answer lands
// in the buffer and is garbage-collected with it.
func (o *Object) fanOut(op func(i int, obj *client.Object) (uint64, error)) <-chan shareResult {
	n := o.c.m.N()
	ch := make(chan shareResult, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			obj, err := o.node(i)
			if err != nil {
				ch <- shareResult{i: i, err: err}
				return
			}
			v, err := op(i, obj)
			ch <- shareResult{i: i, value: v, err: err}
		}(i)
	}
	return ch
}

// collectQuorum reads fan-out results until the outcome is decided: success
// once quorum (n−f) calls acked, failure once more than f have errored
// (quorum is then unreachable). Stragglers stay in the fan-out buffer. It
// returns the results seen, the ack count, and the first error.
func (o *Object) collectQuorum(ch <-chan shareResult) (results []shareResult, acks int, firstErr error) {
	n, q := o.c.m.N(), o.c.m.Quorum()
	results = make([]shareResult, 0, n)
	for len(results) < n {
		r := <-ch
		results = append(results, r)
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			if len(results)-acks > n-q {
				return results, acks, firstErr // quorum unreachable
			}
			continue
		}
		if acks++; acks >= q {
			return results, acks, firstErr
		}
	}
	return results, acks, firstErr
}

// syncWid recovers the writer's wid from a quorum of probe responses: the
// maximum resident wid across n−f nodes is ≥ the newest completed write's
// wid (its write quorum intersects any n−f responses in ≥ k ≥ 1 nodes), so
// issuing from there preserves monotonicity across writer restarts.
// Caller holds wmu.
func (o *Object) syncWid() error {
	results, acks, firstErr := o.collectQuorum(o.fanOut(func(i int, obj *client.Object) (uint64, error) {
		return obj.ShareWrite(0, 0, o.c.shareLen)
	}))
	var max uint64
	for _, r := range results {
		if r.err == nil && r.value > max {
			max = r.value
		}
	}
	if acks < o.c.m.Quorum() {
		return fmt.Errorf("cluster: wid sync %q reached %d of %d nodes, need %d: %w", o.name, acks, o.c.m.N(), o.c.m.Quorum(), firstErr)
	}
	if max > o.wid {
		o.wid = max
	}
	o.synced = true
	return nil
}

// Write disperses v across the cluster as write id wid+1: IDA-split into n
// shares, each masked under its node's SharePad and installed on its node
// as the packed MaxRegister value. The call succeeds once n−f nodes have
// acknowledged — by quorum intersection, every subsequent quorum read then
// holds ≥ k shares and reconstructs v (or something newer). A failed write
// (under-quorum) leaves the wid burned and the writer unsynced; the next
// write re-probes before issuing.
func (o *Object) Write(v uint64) error {
	o.wmu.Lock()
	defer o.wmu.Unlock()
	if !o.synced {
		if err := o.syncWid(); err != nil {
			return err
		}
	}
	wid := o.wid + 1
	if maxWid := uint64(1)<<(64-8*uint(o.c.shareLen)) - 1; wid > maxWid {
		return fmt.Errorf("cluster: write %q: wid space exhausted (%d bits)", o.name, 64-8*o.c.shareLen)
	}

	var data [8]byte
	for i := range data {
		data[i] = byte(v >> (56 - 8*i))
	}
	shares := o.c.cod.Split(data[:])

	// The collector returns at quorum acks (the write is then complete by
	// definition — any later quorum read intersects the ack set in ≥ k
	// nodes) or once more than f nodes errored; a hung node's share install
	// proceeds in the background and lands whenever it lands.
	results, acks, firstErr := o.collectQuorum(o.fanOut(func(i int, obj *client.Object) (uint64, error) {
		masked := shareToUint(shares[i]) ^ SharePad(o.c.m.Secret, o.c.m.Nodes[i].ID, o.name, wid, o.c.shareLen)
		return obj.ShareWrite(wid, masked, o.c.shareLen)
	}))
	var maxResident uint64
	for _, r := range results {
		if r.err == nil && r.value > maxResident {
			maxResident = r.value
		}
	}
	// Adopt whatever newer wid the cluster reports — a recovered node may
	// hold a wid this writer issued before a crash and forgot.
	if maxResident > wid {
		o.wid = maxResident
	} else {
		o.wid = wid
	}
	if acks < o.c.m.Quorum() {
		o.synced = false
		return fmt.Errorf("cluster: write %q wid %d acked by %d of %d nodes, need %d: %w", o.name, wid, acks, o.c.m.N(), o.c.m.Quorum(), firstErr)
	}
	return nil
}

// ReadTrace documents how a cluster read resolved — the evidence the E19
// harness needs to reason about reads that raced a crash.
type ReadTrace struct {
	// Wid is the write id the read reconstructed; 0 means the initial
	// value (no write had completed anywhere the read looked).
	Wid uint64
	// Responded is how many nodes answered the final share-fetch round.
	Responded int
	// Shares is how many of those responses carried Wid.
	Shares int
	// Stale reports that some node answered with a DIFFERENT wid than the
	// one reconstructed: the read overlapped a write (or a recovering
	// node). Its per-node fetches at those other wids are in the nodes'
	// audit logs, so a verification harness must expect the merged audit to
	// charge this reader with those wids too once k nodes agree.
	Stale bool
	// Retries counts extra fan-out rounds spent waiting out an in-flight
	// write or a node outage.
	Retries int
	// Failed lists the node ids that errored in the final round.
	Failed []uint32
	// Corrupted lists the node ids whose shares disagreed with the value
	// the final round accepted: each one answered, at the right wid, with
	// arithmetic that does not fit the quorum-supported decode. The client
	// has already quarantined them (see Client.Suspects); the trace is how
	// a harness proves detection fired on this very read.
	Corrupted []uint32
}

// Read returns the dispersed object's current value as seen by the given
// reader index. See ReadTraced.
func (o *Object) Read(reader int) (uint64, error) {
	v, _, err := o.ReadTraced(reader)
	return v, err
}

// Read retry schedule: a round that cannot resolve (under-quorum, or no wid
// at threshold because a write is in flight) backs off and re-fans-out,
// doubling up to readMaxDelay, giving up after readRetryWindow. With a live
// writer the unresolvable window is one write fan-out; with f crashed nodes
// a quorum still answers, so retries terminate in practice long before the
// window does.
const (
	readBaseDelay   = 200 * time.Microsecond
	readMaxDelay    = 5 * time.Millisecond
	readRetryWindow = 2 * time.Second
)

// ReadTraced performs the cluster read and returns its trace: share fetches
// fan out to all n nodes, the round waits for n−f answers, and the newest
// write id holding ≥ k shares among them is unmasked and IDA-reconstructed.
// Quorum intersection guarantees ≥ k responses at or above the newest
// completed write's wid; when they are split across that wid and an
// in-flight successor (so no single wid reaches k), the round is
// inconclusive and the read retries — the register is regular, not atomic,
// and its reads are live while the single writer is (each write completes,
// resolving the split). A wid seen on fewer than k nodes is never returned:
// its write has not completed, and k is exactly the knowledge threshold.
//
// Each share fetch is an audited read on its node: the node journals the
// (reader, packed value) fetch exactly as a plain read would be journaled,
// which is what makes the merged audit exact. The reader principal appears
// in k nodes' logs iff it obtained k shares — iff it could know the value.
func (o *Object) ReadTraced(reader int) (uint64, ReadTrace, error) {
	if reader < 0 || reader >= o.readers {
		return 0, ReadTrace{}, fmt.Errorf("cluster: read %q: reader %d out of range [0, %d)", o.name, reader, o.readers)
	}
	o.rmu[reader].Lock()
	defer o.rmu[reader].Unlock()

	var trace ReadTrace
	delay := readBaseDelay
	deadline := time.Now().Add(readRetryWindow)
	for {
		v, done, err := o.readOnce(reader, &trace)
		if done || time.Now().After(deadline) {
			return v, trace, err
		}
		trace.Retries++
		time.Sleep(delay)
		if delay *= 2; delay > readMaxDelay {
			delay = readMaxDelay
		}
	}
}

// readOnce runs one fan-out round; done=false means the round was
// inconclusive and the caller should retry (err then describes why, in case
// the retry window runs out first).
//
// The round returns as soon as the outcome is decided — usually at the
// first quorum of answers — but an INCONCLUSIVE quorum keeps collecting
// stragglers up to all n before giving up on the round: when shares
// disagree (a Byzantine node in the quorum) or a write is mid-flight, the
// extra answers are exactly what tips the consensus rule over its support
// threshold. With a request timeout configured, a hung straggler bounds the
// wait instead of wedging it.
func (o *Object) readOnce(reader int, trace *ReadTrace) (v uint64, done bool, err error) {
	n, q := o.c.m.N(), o.c.m.Quorum()
	ch := o.fanOut(func(i int, obj *client.Object) (uint64, error) {
		return obj.ShareRead(reader)
	})

	trace.Responded, trace.Failed, trace.Corrupted = 0, trace.Failed[:0], trace.Corrupted[:0]
	byWid := make(map[uint64]map[int][]byte)
	var firstErr, lastReason error
	for got := 0; got < n; got++ {
		r := <-ch
		if r.err != nil {
			trace.Failed = append(trace.Failed, o.c.m.Nodes[r.i].ID)
			if firstErr == nil {
				firstErr = r.err
			}
			if len(trace.Failed) > n-q {
				return 0, false, fmt.Errorf("cluster: read %q answered by %d of %d nodes, need %d: %w",
					o.name, trace.Responded, n, q, firstErr)
			}
			continue
		}
		trace.Responded++
		wid, masked := Unpack(r.value, o.c.shareLen)
		m := byWid[wid]
		if m == nil {
			m = make(map[int][]byte)
			byWid[wid] = m
		}
		share := make([]byte, o.c.shareLen)
		uintToShare(share, masked^SharePad(o.c.m.Secret, o.c.m.Nodes[r.i].ID, o.name, wid, o.c.shareLen))
		m[r.i] = share

		if trace.Responded < q {
			continue
		}
		v, done, err = o.resolveRead(byWid, trace)
		if done {
			return v, true, err
		}
		lastReason = err
	}
	if lastReason == nil {
		lastReason = firstErr
	}
	return 0, false, fmt.Errorf("cluster: read %q inconclusive across %d responses: %w", o.name, trace.Responded, lastReason)
}

// resolveRead attempts to decide the read from the responses gathered so
// far (already ≥ quorum). Selection first: a completed write puts ≥ k
// nonzero-wid responses in any quorum (its write quorum intersects the
// responders in ≥ k nodes and wids only grow), so:
//
//   - some nonzero wid at ≥ k shares → newest such wid is the candidate;
//     its shares then face the verified decode, which accepts only with
//     quorum support — so a decode that succeeds is both fresh and correct
//     even against f Byzantine nodes;
//   - < k nonzero responses in total → no write has completed anywhere;
//     the register provably still holds its initial value (decided);
//   - otherwise — nonzero responses split below threshold, or a candidate
//     whose shares disagree without quorum support — the state is
//     inconclusive: an in-flight write, or corruption awaiting straggler
//     votes. Not decided; the caller gathers more answers or retries.
func (o *Object) resolveRead(byWid map[uint64]map[int][]byte, trace *ReadTrace) (v uint64, done bool, err error) {
	k := o.c.m.Threshold()
	best, nonzero := uint64(0), 0
	for wid, shares := range byWid {
		if wid == 0 {
			continue
		}
		nonzero += len(shares)
		if len(shares) >= k && wid > best {
			best = wid
		}
	}
	if best == 0 && nonzero >= k {
		return 0, false, fmt.Errorf("cluster: read %q: no write id reached %d shares across %d responses (write in flight)", o.name, k, trace.Responded)
	}
	trace.Wid = best
	trace.Shares = len(byWid[best])
	trace.Stale = len(byWid) > 1

	if best == 0 {
		return 0, true, nil
	}
	v, corrupted, err := o.decodeShares(byWid[best], true)
	if len(corrupted) > 0 {
		trace.Corrupted = trace.Corrupted[:0]
		for _, i := range corrupted {
			trace.Corrupted = append(trace.Corrupted, o.c.m.Nodes[i].ID)
		}
	}
	if errors.Is(err, errInconclusive) {
		return 0, false, fmt.Errorf("cluster: read %q wid %d: %w", o.name, best, err)
	}
	if err != nil {
		return 0, true, fmt.Errorf("cluster: read %q wid %d: %w", o.name, best, err)
	}
	return v, true, nil
}
