package cluster

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
)

// errInconclusive reports that a share set admits no value with quorum
// support: shares disagree and no candidate decode is consistent with k+f
// of them. Strict callers (reads) treat it as "gather more shares and
// retry"; the audit merge reports the pair as Undecided.
var errInconclusive = errors.New("cluster: shares inconclusive: no value reaches quorum support")

// suspectSet is the per-Client quarantine state: node indexes whose shares
// disagreed with an accepted decode and have not decoded cleanly since.
//
// Quarantine is deliberately asymmetric (invariant:
// quarantine-never-blocks-writes): a suspect node still receives every
// write — it may be a victim of transient bit rot or a restart mid-heal, and
// starving it of shares would turn one corrupt answer into a permanently
// lagging replica. Only the READ side discounts it: a suspect's shares are
// excluded from reconstruction whenever enough trusted shares remain, and
// its answers re-enter the decode only as votes (a share matching the
// accepted value clears the suspicion — the node "decodes cleanly again").
type suspectSet struct {
	mu  sync.Mutex
	bad map[int]bool // node index → quarantined
}

func newSuspectSet() *suspectSet { return &suspectSet{bad: make(map[int]bool)} }

// mark quarantines node i, reporting whether this call transitioned it.
func (s *suspectSet) mark(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bad[i] {
		return false
	}
	s.bad[i] = true
	return true
}

// clear lifts node i's quarantine, reporting whether this call transitioned
// it.
func (s *suspectSet) clear(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.bad[i] {
		return false
	}
	delete(s.bad, i)
	return true
}

// indexes returns the quarantined node indexes, sorted.
func (s *suspectSet) indexes() []int {
	s.mu.Lock()
	out := make([]int, 0, len(s.bad))
	for i := range s.bad {
		out = append(out, i)
	}
	s.mu.Unlock()
	sort.Ints(out)
	return out
}

// trusted returns shares minus the suspects' entries — unless that would
// drop the set below need, in which case the original map is returned
// untouched: quarantine must never cost the read its threshold (a wrongly
// suspected majority would otherwise wedge reads forever; with the full set
// the consensus rule still rejects anything f corrupt nodes could fake).
func (s *suspectSet) trusted(shares map[int][]byte, need int) map[int][]byte {
	s.mu.Lock()
	excluded := 0
	for i := range shares {
		if s.bad[i] {
			excluded++
		}
	}
	if excluded == 0 || len(shares)-excluded < need {
		s.mu.Unlock()
		return shares
	}
	out := make(map[int][]byte, len(shares)-excluded)
	for i, sh := range shares {
		if !s.bad[i] {
			out[i] = sh
		}
	}
	s.mu.Unlock()
	return out
}

// Counters is a snapshot of a cluster Client's Byzantine-detection counters.
// All are monotonic over the Client's lifetime.
type Counters struct {
	// VerifiedDecodes counts reconstructions that ran with surplus shares —
	// every one was consistency-checked against a re-encode before its value
	// was accepted (invariant: verified-decode-when-surplus).
	VerifiedDecodes uint64
	// ConsensusDecodes counts decodes that could not take the clean fast
	// path (some share disagreed) and were resolved by the quorum-support
	// search instead.
	ConsensusDecodes uint64
	// CorruptShares counts individual shares that disagreed with an accepted
	// decode, summed over reads and audit merges. One persistently
	// corrupting node increments this on every read that sees its share.
	CorruptShares uint64
	// SuspectMarks / SuspectClears count quarantine transitions. A node
	// oscillating between the two is corrupting intermittently.
	SuspectMarks  uint64
	SuspectClears uint64
}

// counters is the atomic backing store of Counters.
type counters struct {
	verifiedDecodes  atomic.Uint64
	consensusDecodes atomic.Uint64
	corruptShares    atomic.Uint64
	suspectMarks     atomic.Uint64
	suspectClears    atomic.Uint64
}

func (c *counters) snapshot() Counters {
	return Counters{
		VerifiedDecodes:  c.verifiedDecodes.Load(),
		ConsensusDecodes: c.consensusDecodes.Load(),
		CorruptShares:    c.corruptShares.Load(),
		SuspectMarks:     c.suspectMarks.Load(),
		SuspectClears:    c.suspectClears.Load(),
	}
}

// Counters returns a snapshot of the client's Byzantine-detection counters.
func (c *Client) Counters() Counters { return c.ctr.snapshot() }

// Suspects returns the node IDs currently quarantined by this client,
// sorted by membership position. Empty means every node's shares have
// decoded cleanly lately.
func (c *Client) Suspects() []uint32 {
	idx := c.suspects.indexes()
	out := make([]uint32, 0, len(idx))
	for _, i := range idx {
		out = append(out, c.m.Nodes[i].ID)
	}
	return out
}

// decodeShares is the single entry point for turning a set of unmasked
// shares (node index → share bytes, all claiming the same wid) into a
// value. Both the read path and the audit merge route through it.
//
// The rule set, in order:
//
//  1. Exactly k shares (strict==false callers only): plain unverified
//     Reconstruct. There is no redundancy, so no detection is possible —
//     this is the audit merge's charging threshold, where "k nodes logged
//     it" is itself the semantic being reported.
//  2. Surplus available: ida.Verify over the trusted subset (suspects'
//     shares excluded while enough trusted shares remain). A clean verify
//     over ≥ quorum shares is accepted outright: n−f consistent shares
//     contain ≥ k honest ones, and k honest shares pin the true value.
//  3. Any disagreement — or a trusted set too small to prove cleanliness —
//     falls to the consensus search: every k-subset's decode is a
//     candidate, and a candidate is accepted iff ≥ quorum (k+f) of ALL
//     provided shares re-encode consistently with it. A wrong value can
//     gather at most k−1 honest supporters (k would pin it as the true
//     value) plus f corrupt ones: k+f−1 < k+f, so no coalition of ≤ f
//     Byzantine nodes can push a wrong value past the threshold. Suspects
//     vote here too — a vote is checked arithmetic, not trust.
//
// strict callers (reads) get (0, nil, errInconclusive) when no candidate
// reaches quorum support; non-strict callers (audit merge, f=0 clusters)
// additionally accept rule 1. corrupted lists the node indexes whose shares
// disagreed with the accepted value; quarantine state and counters are
// updated as a side effect.
func (o *Object) decodeShares(shares map[int][]byte, strict bool) (v uint64, corrupted []int, err error) {
	k := o.c.m.Threshold()
	q := o.c.m.Quorum() // == k + f: the consensus acceptance threshold

	if len(shares) <= k && !strict {
		data, err := o.c.cod.Reconstruct(shares, 8)
		if err != nil {
			return 0, nil, err
		}
		return beUint(data), nil, nil
	}

	var data []byte
	used := o.c.suspects.trusted(shares, k+1)
	if len(used) > k {
		d, bad, verr := o.c.cod.Verify(used, 8)
		if verr != nil {
			return 0, nil, verr
		}
		o.c.ctr.verifiedDecodes.Add(1)
		// A clean verify is decisive for a read only at quorum size (k+f
		// consistent shares contain ≥ k honest ones; a smaller clean set
		// could still be a fabrication of f colluders around one honest
		// share). The audit merge accepts any clean surplus — its charging
		// semantics are "what the logs pin", and the logs disagreeing is
		// the only thing that voids them.
		if len(bad) == 0 && (!strict || len(used) >= q) {
			data = d
		}
	}
	if data == nil {
		o.c.ctr.consensusDecodes.Add(1)
		data = o.consensusDecode(shares, q)
		if data == nil {
			return 0, nil, errInconclusive
		}
	}

	// Post-accept validation votes EVERY provided share — including
	// excluded suspects' — against the accepted value: mismatches are
	// corrupt (and quarantined), matches clear an existing quarantine.
	expect := o.c.cod.Split(data)
	for i, s := range shares {
		if shareEqual(s, expect[i]) {
			if o.c.suspects.clear(i) {
				o.c.ctr.suspectClears.Add(1)
			}
			continue
		}
		corrupted = append(corrupted, i)
		if o.c.suspects.mark(i) {
			o.c.ctr.suspectMarks.Add(1)
		}
	}
	if len(corrupted) > 0 {
		sort.Ints(corrupted)
		o.c.ctr.corruptShares.Add(uint64(len(corrupted)))
	}
	return beUint(data), corrupted, nil
}

// consensusDecode searches for the candidate value with quorum support:
// decode every k-subset of shares, re-encode, and count the provided shares
// consistent with the result. Returns the first candidate reaching support
// ≥ q, or nil when none does (inconclusive — the caller gathers more
// shares or retries). Cluster geometries keep n ≤ a handful, so the subset
// enumeration is at most C(7,5) = 21 decodes, each over 8 bytes.
func (o *Object) consensusDecode(shares map[int][]byte, q int) []byte {
	idx := make([]int, 0, len(shares))
	for i := range shares {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	k := o.c.m.Threshold()

	var accepted []byte
	forEachSubset(len(idx), k, func(pick []int) bool {
		sub := make(map[int][]byte, k)
		for _, p := range pick {
			sub[idx[p]] = shares[idx[p]]
		}
		data, err := o.c.cod.Reconstruct(sub, 8)
		if err != nil {
			return false
		}
		expect := o.c.cod.Split(data)
		support := 0
		for i, s := range shares {
			if shareEqual(s, expect[i]) {
				support++
			}
		}
		if support >= q {
			accepted = data
			return true
		}
		return false
	})
	return accepted
}

// forEachSubset calls fn with every size-r subset of {0, …, n−1} until fn
// returns true (early exit).
func forEachSubset(n, r int, fn func(idx []int) bool) {
	idx := make([]int, r)
	var rec func(pos, next int) bool
	rec = func(pos, next int) bool {
		if pos == r {
			return fn(idx)
		}
		for i := next; i <= n-(r-pos); i++ {
			idx[pos] = i
			if rec(pos+1, i+1) {
				return true
			}
		}
		return false
	}
	rec(0, 0)
}

// shareEqual compares two share byte strings.
func shareEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// beUint folds big-endian bytes into a uint64.
func beUint(data []byte) uint64 {
	var v uint64
	for _, b := range data {
		v = v<<8 | uint64(b)
	}
	return v
}
