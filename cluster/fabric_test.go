package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"auditreg/client"
	"auditreg/cluster"
	"auditreg/internal/netsim"
	"auditreg/server"
)

// TestClusterOverFabric runs a whole 5-node cluster over the netsim fabric
// — in-process listeners, seeded asymmetric link latency, no sockets — and
// drives it through a partition: with f=1 the client keeps writing and
// reading while one node is unreachable, and the merged audit at the end
// (partition healed) is exact.
func TestClusterOverFabric(t *testing.T) {
	const n, f = 5, 1
	fab := netsim.NewFabric(42, 2*time.Millisecond)

	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("node%d", i+1)
	}
	m := cluster.SeededMembership(addrs, f, 301)

	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{
			Key:          m.Nodes[i].Key,
			Readers:      4,
			NodeID:       m.Nodes[i].ID,
			PoolInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("server.New node %d: %v", i+1, err)
		}
		ln, err := fab.Listen(addrs[i])
		if err != nil {
			t.Fatalf("fabric listen %s: %v", addrs[i], err)
		}
		go srv.Serve(ln)
		defer ln.Close()
	}

	cc, err := cluster.Dial(m, cluster.WithClientOptions(func(nd cluster.Node) []client.Option {
		return []client.Option{
			client.WithDialer(fab.Dialer("principal")),
			client.WithConns(1),
			client.WithDialTimeout(2 * time.Second),
		}
	}))
	if err != nil {
		t.Fatalf("cluster.Dial over fabric: %v", err)
	}
	defer cc.Close()

	obj, err := cc.Open("obj")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := obj.Write(0x1001); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if v, err := obj.Read(0); err != nil || v != 0x1001 {
		t.Fatalf("Read = %#x, %v", v, err)
	}

	// Cut the client off from node 2 and keep operating: the fan-out counts
	// node 2 against f and the quorum carries on.
	fab.Partition("principal", "node2")
	if err := obj.Write(0x2002); err != nil {
		t.Fatalf("Write under partition: %v", err)
	}
	v, trace, err := obj.ReadTraced(1)
	if err != nil {
		t.Fatalf("Read under partition: %v", err)
	}
	if v != 0x2002 {
		t.Fatalf("Read under partition = %#x, want 0x2002", v)
	}
	if len(trace.Failed) == 0 {
		t.Fatal("trace under partition reports no failed node")
	}

	// Heal and merge: both observed pairs must be charged, node 2 included
	// in the merge again.
	fab.Heal("principal", "node2")
	var merged cluster.Merged
	deadline := time.Now().Add(5 * time.Second)
	for {
		merged, err = obj.Audit()
		if err == nil && merged.Nodes == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("full merge never recovered: nodes=%d err=%v", merged.Nodes, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !merged.Report.Contains(0, 0x1001) {
		t.Errorf("merged audit misses (0, 0x1001)")
	}
	if !merged.Report.Contains(1, 0x2002) {
		t.Errorf("merged audit misses (1, 0x2002)")
	}
	for _, e := range merged.Report.Entries() {
		ok := (e.Reader == 0 && e.Value == 0x1001) || (e.Reader == 1 && e.Value == 0x2002)
		if !ok {
			t.Errorf("merged audit charges unobserved (reader %d, value %#x)", e.Reader, e.Value)
		}
	}
}
