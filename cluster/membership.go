// Package cluster disperses the auditable register across a static quorum
// of auditd nodes: crash-fault tolerance without ever assembling a value —
// or an unmasked reader set — on any single daemon.
//
// # Dispersal, not replication
//
// A cluster write IDA-encodes the 8-byte value into n shares (Rabin's
// information dispersal over GF(2^8), package internal/ida) with threshold
// k = n−2f, masks each node's share under a per-(node, object, wid) pad
// derived from a cluster secret the daemons never hold, and installs share i
// on node i as an ordinary MaxRegister write of the packed value
// wid<<(8*shareLen) | share. Three consequences, all load-bearing:
//
//   - No single node can reconstruct the value: it holds one share, and
//     that share is pad-masked besides. Fewer than k unmasked shares reveal
//     nothing but length; fewer than one unmasked share reveals nothing at
//     all. The honest-but-curious daemon of the paper's threat model learns
//     exactly what it learned in the single-node deployment: sizes, timing,
//     and its own masked bytes.
//   - newest-wid-wins is free: wid occupies the high bits of the packed
//     value, so the MaxRegister's writeMax absorbs duplicate and stale
//     redeliveries without any cluster-level sequencing protocol.
//   - Every share write and share fetch rides the existing audited
//     register machinery — journaled through the striped WAL, swept by the
//     audit pool, recovered after a crash — so the cluster's audit story
//     reduces to merging n per-node audit reports (see Object.Audit).
//
// # Quorum arithmetic
//
// With threshold k = n−2f and quorums of size n−f, any write quorum and any
// read quorum intersect in ≥ n−2f = k nodes: a read that gathers n−f
// responses is guaranteed k shares of every completed write, and therefore
// reconstructs the newest one. Crash tolerance f requires n ≥ 2f+2 (so that
// k ≥ 2 — and k ≥ 2 also keeps the per-share width within the wid packing:
// shareLen = ceil(8/k) ≤ 4 bytes leaves ≥ 32 bits of wid).
//
// The register is single-writer (the paper's model): the writer serializes
// its own wids client-side, monotonically. Readers and the auditor never
// coordinate with the writer beyond the shares themselves.
package cluster

import (
	"fmt"

	"auditreg"
	"auditreg/internal/ida"
	"auditreg/wire"
)

// Node is one member of the static cluster membership.
type Node struct {
	// ID is the node's 1-based cluster id — the value the daemon was booted
	// with (auditd -node-id, server.Config.NodeID). Node i (1-based) holds
	// IDA share i−1, and its share pads are derived from this id, so a
	// transposed address list produces garbage shares instead of silent
	// cross-wiring; the OPEN handshake (client.WithNode) additionally
	// refuses the connection outright.
	ID uint32
	// Addr is the node's auditd address.
	Addr string
	// Key is the node's store key, used only by the audit merge (the
	// cluster auditor unmasks each node's audit rows with it). A membership
	// handed to a reading or writing principal leaves it zero — those roles
	// never audit, and the paper's trust model says they must not hold it.
	Key auditreg.Key
}

// Membership is the static cluster configuration: the n nodes, the crash
// budget f, and the cluster share-pad secret. The secret is held by clients
// (writers, readers, auditors) and NEVER by the daemons: a daemon that knew
// it could unmask its own share, and n−2f colluding daemons could then
// reconstruct values.
type Membership struct {
	Nodes  []Node
	F      int
	Secret auditreg.Key
}

// N returns the node count n.
func (m *Membership) N() int { return len(m.Nodes) }

// Quorum returns n−f, the response count every cluster operation waits for.
func (m *Membership) Quorum() int { return len(m.Nodes) - m.F }

// Threshold returns k = n−2f, the IDA reconstruction threshold — the
// minimum quorum-intersection size, and the number of distinct nodes whose
// audit logs must agree before the merged audit charges a reader with a
// value (see Object.Audit).
func (m *Membership) Threshold() int { return len(m.Nodes) - 2*m.F }

// ShareLen returns the per-node share width in bytes for 8-byte values:
// ceil(8/k), at most wire.MaxShareLen once Validate has passed.
func (m *Membership) ShareLen() int { return (8 + m.Threshold() - 1) / m.Threshold() }

// Validate checks the membership: n ≥ 2f+2 (so k ≥ 2), f ≥ 0, and node ids
// exactly {1, …, n} in order (node i holds IDA share i−1; the id ↔ share
// index correspondence is positional and must be total).
func (m *Membership) Validate() error {
	n := len(m.Nodes)
	if m.F < 0 {
		return fmt.Errorf("cluster: negative crash budget f=%d", m.F)
	}
	if n < 2*m.F+2 {
		return fmt.Errorf("cluster: n=%d nodes cannot tolerate f=%d crashes: need n >= 2f+2 = %d", n, m.F, 2*m.F+2)
	}
	if n > ida.MaxShares {
		return fmt.Errorf("cluster: n=%d exceeds the dispersal limit %d", n, ida.MaxShares)
	}
	for i, nd := range m.Nodes {
		if nd.ID != uint32(i+1) {
			return fmt.Errorf("cluster: node at position %d has id %d, want %d (ids are positional, 1-based)", i, nd.ID, i+1)
		}
		if nd.Addr == "" {
			return fmt.Errorf("cluster: node %d has no address", nd.ID)
		}
	}
	if sl := m.ShareLen(); sl > wire.MaxShareLen {
		return fmt.Errorf("cluster: share width %d exceeds wire limit %d", sl, wire.MaxShareLen)
	}
	return nil
}

// coder returns the membership's IDA coder.
func (m *Membership) coder() (*ida.Coder, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return ida.New(m.N(), m.Threshold())
}

// SeededMembership builds a deterministic membership over addrs with crash
// budget f: cluster secret KeyFromSeed(seed), node i's store key
// KeyFromSeed(seed+i). Test and loadgen scaffolding — production memberships
// are configured with independently generated keys.
func SeededMembership(addrs []string, f int, seed uint64) Membership {
	m := Membership{F: f, Secret: auditreg.KeyFromSeed(seed)}
	for i, addr := range addrs {
		m.Nodes = append(m.Nodes, Node{
			ID:   uint32(i + 1),
			Addr: addr,
			Key:  auditreg.KeyFromSeed(seed + uint64(i) + 1),
		})
	}
	return m
}
