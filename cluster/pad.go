package cluster

import (
	"crypto/sha256"
	"encoding/binary"

	"auditreg"
	"auditreg/wire"
)

// sharePadTag domain-separates the cluster share pads from every other pad
// family in the system (the wire masks, the store's tracking pads).
const sharePadTag = "auditreg/cluster/share-pad/v1\x00"

// SharePad derives the pad XOR-applied to node's share of the named
// object's write wid, truncated to the low 8*shareLen bits: the first bytes
// of SHA-256(tag, secret, node, wid, name). One pad per (node, object, wid)
// — each node's share of each write sits under an independent pad, so even
// n colluding daemons pooling their shares reconstruct only pad-XORed
// noise. The wid bits of the packed value are deliberately NOT covered: the
// node orders writes by them (writeMax), so they are metadata the node
// inherently observes, like sequence numbers.
//
// Pad reuse is safe for the same reason wire.ValueMask's is: the plaintext
// under a given (node, object, wid) pad is fixed — the single writer
// derives wid w's shares once, and redeliveries repeat the identical
// ciphertext.
//
// Allocation-free (the digest input is assembled in one stack buffer), as
// it sits on the per-share fast path of every cluster write, read, and
// audit merge; the CI alloc gate pins this.
func SharePad(secret auditreg.Key, node uint32, name string, wid uint64, shareLen int) uint64 {
	if len(name) > wire.MaxName {
		// Out-of-protocol input (the wire decoders reject such names); fall
		// back to streaming rather than silently truncate the digest.
		h := sha256.New()
		h.Write([]byte(sharePadTag))
		h.Write(secret[:])
		var num [12]byte
		binary.BigEndian.PutUint32(num[:4], node)
		binary.BigEndian.PutUint64(num[4:], wid)
		h.Write(num[:])
		h.Write([]byte(name))
		var sum [sha256.Size]byte
		h.Sum(sum[:0])
		return binary.BigEndian.Uint64(sum[:8]) & shareMask(shareLen)
	}
	var in [len(sharePadTag) + 32 + 12 + wire.MaxName]byte
	n := copy(in[:], sharePadTag)
	n += copy(in[n:], secret[:])
	binary.BigEndian.PutUint32(in[n:], node)
	binary.BigEndian.PutUint64(in[n+4:], wid)
	n += 12
	n += copy(in[n:], name)
	sum := sha256.Sum256(in[:n])
	return binary.BigEndian.Uint64(sum[:8]) & shareMask(shareLen)
}

// shareMask returns the mask of the low 8*shareLen bits.
func shareMask(shareLen int) uint64 {
	return 1<<(8*uint(shareLen)) - 1
}

// Pack assembles a share-object value: wid in the high bits, the (already
// masked) share in the low 8*shareLen bits. The MaxRegister orders packed
// values as plain uint64s, so wid's position makes ordering by write id.
func Pack(wid, maskedShare uint64, shareLen int) uint64 {
	return wid<<(8*uint(shareLen)) | maskedShare
}

// Unpack splits a share-object value into wid and masked share.
func Unpack(packed uint64, shareLen int) (wid, maskedShare uint64) {
	return packed >> (8 * uint(shareLen)), packed & shareMask(shareLen)
}

// shareToUint packs shareLen share bytes (big-endian) into a uint64.
func shareToUint(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// uintToShare writes v as shareLen big-endian bytes into dst.
func uintToShare(dst []byte, v uint64) {
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = byte(v)
		v >>= 8
	}
}
