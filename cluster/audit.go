package cluster

import (
	"errors"
	"fmt"
	"sort"

	"auditreg"
	"auditreg/wire"
)

// Undecided is one (reader, wid) pair the merged audit saw on fewer than k
// nodes: the reader began fetching that write's shares but — as far as the
// merged logs show — never obtained enough to know its value. It is
// reported, not charged: charging it would overstate what the reader can
// know, and the exactness claim cuts both ways.
type Undecided struct {
	Reader int
	Wid    uint64
	Nodes  int // how many nodes logged the pair (0 < Nodes < k)
}

// Merged is the cluster-wide audit of one dispersed object: the union of n
// per-node audit reports, collapsed by the knowledge threshold.
type Merged struct {
	Object string
	// Report charges (reader, value) exactly when ≥ k distinct nodes'
	// audit logs record the reader fetching that write's share — the
	// information-theoretic threshold at which the reader can reconstruct
	// the value. Values are the reconstructed cleartext, recovered from the
	// very shares the logs recorded.
	Report auditreg.Report[uint64]
	// Nodes is how many node audits the merge covers. Exactness holds
	// relative to these: with all n merged, Report is the exact observed
	// set; with crashed nodes excluded (Nodes < n), a reader that used a
	// crashed node's share could fall at most one node short of k, and
	// surfaces in Undecided instead.
	Nodes int
	// Undecided lists sub-threshold (reader, wid) pairs — in-flight reads,
	// or reads whose k-th logging node has not been merged. A pair whose
	// logged shares disagree so badly that no value reaches quorum support
	// is also reported here (Nodes then counts the loggers): the logs prove
	// the reader fetched, but pin no value to charge.
	Undecided []Undecided
	// Corrupted lists the node ids whose logged shares disagreed with a
	// value the merge accepted — a journal corrupted at rest, or a node
	// whose share pipeline is lying consistently enough to journal what it
	// serves. Sorted, deduplicated.
	Corrupted []uint32
}

// Audit merges a fresh audit from every reachable node into the exact
// cluster-wide observed set. It requires the membership to carry every
// node's store key (per-node audit rows cross the wire masked under them)
// and at least a quorum of nodes to answer.
//
// The merge rule: each node's report yields (reader, packed) entries;
// unpacking gives (reader, wid) with that node's pad-masked share of wid in
// the low bits. The auditor — holding the cluster secret — unmasks each
// share, and for every (reader, wid) logged by ≥ k distinct nodes emits
// (reader, v_wid), reconstructing v_wid from k of the logged shares
// themselves. No node ever saw a value or an unmasked reader set; the
// auditor recovers both from what the nodes' ordinary audit machinery
// already journals.
func (o *Object) Audit() (Merged, error) {
	type nodeAudit struct {
		i       int
		entries []auditreg.Entry[uint64]
		err     error
	}
	n := o.c.m.N()
	ch := make(chan nodeAudit, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			obj, err := o.node(i)
			if err != nil {
				ch <- nodeAudit{i: i, err: err}
				return
			}
			aud, err := obj.Auditor()
			if err != nil {
				ch <- nodeAudit{i: i, err: err}
				return
			}
			rep, err := aud.Audit()
			if err != nil {
				ch <- nodeAudit{i: i, err: err}
				return
			}
			ch <- nodeAudit{i: i, entries: rep.Report.Entries()}
		}(i)
	}

	merged := Merged{Object: o.name}
	type pair struct {
		reader int
		wid    uint64
	}
	shares := make(map[pair]map[int][]byte) // (reader, wid) → node index → unmasked share
	var firstErr error
	for i := 0; i < n; i++ {
		na := <-ch
		if na.err != nil {
			if firstErr == nil {
				firstErr = na.err
			}
			continue
		}
		merged.Nodes++
		nodeID := o.c.m.Nodes[na.i].ID
		for _, e := range na.entries {
			wid, masked := Unpack(e.Value, o.c.shareLen)
			if wid == 0 {
				// The initial packed value: the reader fetched before any
				// write reached this node. Nothing to reconstruct and
				// nothing learned — the initial value is public.
				continue
			}
			p := pair{reader: e.Reader, wid: wid}
			m := shares[p]
			if m == nil {
				m = make(map[int][]byte)
				shares[p] = m
			}
			share := make([]byte, o.c.shareLen)
			uintToShare(share, masked^SharePad(o.c.m.Secret, nodeID, o.name, wid, o.c.shareLen))
			m[na.i] = share
		}
	}
	if merged.Nodes < o.c.m.Quorum() {
		return Merged{}, fmt.Errorf("cluster: audit %q merged %d of %d nodes, need %d: %w", o.name, merged.Nodes, n, o.c.m.Quorum(), firstErr)
	}

	k := o.c.m.Threshold()
	badNodes := make(map[uint32]bool)
	var entries []auditreg.Entry[uint64]
	for p, m := range shares {
		if len(m) < k {
			merged.Undecided = append(merged.Undecided, Undecided{Reader: p.reader, Wid: p.wid, Nodes: len(m)})
			continue
		}
		// Non-strict decode: exactly k logged shares ARE the charging
		// semantics (k loggers → the reader could know), and with surplus
		// the decode is verified — a corrupt journal entry cannot shift the
		// charged value, only surface in Corrupted (or, if no value reaches
		// quorum support, demote the pair to Undecided).
		v, corrupted, err := o.decodeShares(m, false)
		if errors.Is(err, errInconclusive) {
			merged.Undecided = append(merged.Undecided, Undecided{Reader: p.reader, Wid: p.wid, Nodes: len(m)})
			continue
		}
		if err != nil {
			return Merged{}, fmt.Errorf("cluster: audit %q: reconstruct wid %d from logged shares: %w", o.name, p.wid, err)
		}
		for _, i := range corrupted {
			badNodes[o.c.m.Nodes[i].ID] = true
		}
		entries = append(entries, auditreg.Entry[uint64]{Reader: p.reader, Value: v})
	}
	for id := range badNodes {
		merged.Corrupted = append(merged.Corrupted, id)
	}
	sort.Slice(merged.Corrupted, func(a, b int) bool { return merged.Corrupted[a] < merged.Corrupted[b] })
	sort.Slice(merged.Undecided, func(a, b int) bool {
		ua, ub := merged.Undecided[a], merged.Undecided[b]
		if ua.Reader != ub.Reader {
			return ua.Reader < ub.Reader
		}
		return ua.Wid < ub.Wid
	})
	merged.Report = auditreg.NewReport(entries...)
	return merged, nil
}

// NodeStat is one node's STATS snapshot, as gathered by NodeStats.
type NodeStat struct {
	Node uint32
	Addr string
	Err  error // non-nil when the node did not answer; Resp is then zero
	Resp wire.StatsResp
}

// NodeStats fetches one STATS snapshot per node — the raw material of
// cmd/auditctl's cluster health view. The slice is indexed like the
// membership; a node that did not answer carries its error. The call itself
// fails only when NO node answered.
func (c *Client) NodeStats() ([]NodeStat, error) {
	n := c.m.N()
	out := make([]NodeStat, n)
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { ch <- i }()
			out[i] = NodeStat{Node: c.m.Nodes[i].ID, Addr: c.m.Nodes[i].Addr}
			cl := c.clients[i]
			if cl == nil {
				out[i].Err = errNotDialed
				return
			}
			out[i].Resp, out[i].Err = cl.StatsInfo()
		}(i)
	}
	alive := 0
	for i := 0; i < n; i++ {
		<-ch
	}
	for i := range out {
		if out[i].Err == nil {
			alive++
		}
	}
	if alive == 0 {
		return out, fmt.Errorf("cluster: no node answered STATS: %w", out[0].Err)
	}
	return out, nil
}

// errNotDialed marks a node whose pool never connected.
var errNotDialed = errors.New("cluster: node was not dialable at cluster dial time")
