package auditreg_test

import (
	"testing"

	"auditreg"
)

// The facade tests exercise the whole public API end to end, the way a
// downstream user would, without touching internal packages.

func TestFacadeRegister(t *testing.T) {
	t.Parallel()
	pads, err := auditreg.NewKeyedPads(auditreg.KeyFromSeed(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := auditreg.NewRegister(3, "v0", pads)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := reg.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Read(); got != "v0" {
		t.Fatalf("read = %q", got)
	}
	w := reg.Writer()
	if err := w.Write("v1"); err != nil {
		t.Fatal(err)
	}
	if got := rd.Read(); got != "v1" {
		t.Fatalf("read = %q", got)
	}
	rep, err := reg.Auditor().Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contains(1, "v0") || !rep.Contains(1, "v1") {
		t.Fatalf("audit = %v", rep)
	}
}

func TestFacadeRegisterCapacityOption(t *testing.T) {
	t.Parallel()
	pads, err := auditreg.NewKeyedPads(auditreg.KeyFromSeed(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := auditreg.NewRegister(1, uint64(0), pads, auditreg.WithCapacity[uint64](1))
	if err != nil {
		t.Fatal(err)
	}
	w := reg.Writer()
	var failed bool
	for i := uint64(0); i < 3000; i++ {
		if err := w.Write(i); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("capacity bound never enforced")
	}
}

func TestFacadeMaxRegister(t *testing.T) {
	t.Parallel()
	pads, err := auditreg.NewKeyedPads(auditreg.KeyFromSeed(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	board, err := auditreg.NewMaxRegister(2, 0, func(a, b int) bool { return a < b }, pads)
	if err != nil {
		t.Fatal(err)
	}
	w, err := board.Writer(auditreg.NewSeededNonces(9, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{5, 3, 8} {
		if err := w.WriteMax(v); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := board.Reader(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Read(); got != 8 {
		t.Fatalf("read = %d, want 8", got)
	}
	rep, err := board.Auditor().Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contains(0, 8) {
		t.Fatalf("audit = %v", rep)
	}
}

func TestFacadeSnapshot(t *testing.T) {
	t.Parallel()
	pads, err := auditreg.NewKeyedPads(auditreg.KeyFromSeed(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := auditreg.NewSnapshot(2, 1, uint64(0), pads)
	if err != nil {
		t.Fatal(err)
	}
	u, err := snap.Updater(1, auditreg.NewSeededNonces(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Update(9); err != nil {
		t.Fatal(err)
	}
	sc, err := snap.Scanner(0)
	if err != nil {
		t.Fatal(err)
	}
	view := sc.Scan()
	if view[0] != 0 || view[1] != 9 {
		t.Fatalf("scan = %v", view)
	}
	entries, err := snap.Auditor().Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !auditreg.ContainsView(entries, 0, view) {
		t.Fatalf("audit %v missing view %v", entries, view)
	}
}

func TestFacadeVersioned(t *testing.T) {
	t.Parallel()
	pads, err := auditreg.NewKeyedPads(auditreg.KeyFromSeed(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := auditreg.NewVersioned(1, auditreg.NewVersionedBase(auditreg.CounterType()), pads)
	if err != nil {
		t.Fatal(err)
	}
	u, err := counter.Updater(auditreg.NewSeededNonces(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := u.Update(struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := counter.Reader(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := rd.Read(); got != 4 {
		t.Fatalf("count = %d", got)
	}
	rep, err := counter.Auditor().Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Contains(0, 4) {
		t.Fatalf("audit = %v", rep)
	}
}

func TestFacadeKeyHelpers(t *testing.T) {
	t.Parallel()
	if auditreg.KeyFromSeed(1) != auditreg.KeyFromSeed(1) {
		t.Fatal("KeyFromSeed not deterministic")
	}
	if auditreg.KeyFromSeed(1) == auditreg.KeyFromSeed(2) {
		t.Fatal("KeyFromSeed collides")
	}
	k, err := auditreg.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	if k == (auditreg.Key{}) {
		t.Fatal("NewKey returned the zero key")
	}
	n := auditreg.NewCryptoNonces(5)
	if n.Next() == n.Next() {
		t.Fatal("crypto nonces repeated")
	}
	if auditreg.MaxReaders != 64 {
		t.Fatalf("MaxReaders = %d", auditreg.MaxReaders)
	}
}
