// Metrics: an auditable snapshot over per-service health gauges. Each service
// updates its own component; dashboards take atomic scans across all
// services; an auditor can later establish exactly which dashboard saw which
// consistent system state (Algorithm 3) — useful when reconstructing what an
// operator knew at decision time.
package main

import (
	"fmt"
	"log"
	"sync"

	"auditreg"
)

func main() {
	key, err := auditreg.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	const (
		services   = 4 // snapshot components: one writer each
		dashboards = 2 // scanners
	)
	pads, err := auditreg.NewKeyedPads(key, dashboards)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := auditreg.NewSnapshot(services, dashboards, uint64(100), pads)
	if err != nil {
		log.Fatal(err)
	}

	// Services push gauge updates; dashboards scan concurrently.
	var wg sync.WaitGroup
	for svc := 0; svc < services; svc++ {
		u, err := snap.Updater(svc, auditreg.NewCryptoNonces(uint8(svc)))
		if err != nil {
			log.Fatal(err)
		}
		svc := svc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for load := uint64(1); load <= 5; load++ {
				if err := u.Update(100 - 10*load - uint64(svc)); err != nil {
					log.Printf("service %d: %v", svc, err)
				}
			}
		}()
	}
	views := make([][][]uint64, dashboards)
	for d := 0; d < dashboards; d++ {
		sc, err := snap.Scanner(d)
		if err != nil {
			log.Fatal(err)
		}
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				views[d] = append(views[d], sc.Scan())
			}
		}()
	}
	wg.Wait()

	for d, vs := range views {
		fmt.Printf("dashboard %d observed states:\n", d)
		for _, v := range vs {
			fmt.Printf("  %v\n", v)
		}
	}

	// The audit reconstructs exactly which dashboard saw which state.
	entries, err := snap.Auditor().Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== scan audit ===")
	for _, e := range entries {
		fmt.Printf("dashboard %d effectively saw %v\n", e.Reader, e.View)
	}
	// Cross-check: every view a dashboard printed is in the audit.
	for d, vs := range views {
		for _, v := range vs {
			if !auditreg.ContainsView(entries, d, v) {
				log.Fatalf("audit missed dashboard %d view %v", d, v)
			}
		}
	}
	fmt.Println("audit covers every observed view ✓")
}
