// Quickstart: the smallest complete auditable-register program — write,
// read, audit. For hosting many named objects behind one API, see the
// auditreg/store package and its examples.
package main

import (
	"fmt"
	"log"

	"auditreg"
)

func main() {
	// The key is the writers'/auditors' shared secret. Readers never see it.
	key, err := auditreg.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	const readers = 4
	pads, err := auditreg.NewKeyedPads(key, readers)
	if err != nil {
		log.Fatal(err)
	}

	reg, err := auditreg.NewRegister(readers, "initial", pads)
	if err != nil {
		log.Fatal(err)
	}

	// Reader 2 reads the initial value; then a writer overwrites it and
	// reader 0 reads the new one.
	rd2, err := reg.Reader(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reader 2 read:", rd2.Read())

	if err := reg.Write("confidential-v1"); err != nil {
		log.Fatal(err)
	}
	rd0, err := reg.Reader(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reader 0 read:", rd0.Read())

	// The audit reports exactly who effectively read what — including
	// reads of values that have since been overwritten.
	report, err := reg.Auditor().Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("audit:", report)
}
