// Versioned types: Section 5.3's transform makes any versioned object
// auditable. Here a shared request counter and a Lamport clock become
// auditable: the audit shows exactly which monitor observed which counter
// value / clock reading.
package main

import (
	"fmt"
	"log"

	"auditreg"
)

func main() {
	key, err := auditreg.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	const monitors = 2
	pads, err := auditreg.NewKeyedPads(key, monitors)
	if err != nil {
		log.Fatal(err)
	}

	// --- Auditable counter ---
	counter, err := auditreg.NewVersioned(monitors,
		auditreg.NewVersionedBase(auditreg.CounterType()), pads)
	if err != nil {
		log.Fatal(err)
	}
	inc, err := counter.Updater(auditreg.NewCryptoNonces(1))
	if err != nil {
		log.Fatal(err)
	}
	mon0, err := counter.Reader(0)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if err := inc.Update(struct{}{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("monitor 0 sees count:", mon0.Read())
	for i := 0; i < 2; i++ {
		if err := inc.Update(struct{}{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("monitor 0 sees count:", mon0.Read())

	rep, err := counter.Auditor().Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counter audit:", rep)

	// --- Auditable Lamport clock ---
	clock, err := auditreg.NewVersioned(monitors,
		auditreg.NewVersionedBase(auditreg.LamportClockType()), pads)
	if err != nil {
		log.Fatal(err)
	}
	tick, err := clock.Updater(auditreg.NewCryptoNonces(2))
	if err != nil {
		log.Fatal(err)
	}
	mon1, err := clock.Reader(1)
	if err != nil {
		log.Fatal(err)
	}

	// Advance past an observed remote timestamp, then locally.
	for _, observed := range []uint64{7, 0, 0} {
		if err := tick.Update(observed); err != nil {
			log.Fatal(err)
		}
	}
	val, version := mon1.ReadVersioned()
	fmt.Printf("monitor 1 sees clock %d at version %d\n", val, version)

	crep, err := clock.Auditor().Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clock audit:", crep)
}
