// Versioned types: the paper's transform (Theorem 13) makes any versioned
// object auditable. Here a shared request counter and a Lamport clock become
// auditable: the audit shows exactly which monitor observed which counter
// value / clock reading.
//
// Note that each object gets its own pad source. One-time pads are indexed
// by an object's sequence numbers, so sharing a source between two objects
// would hand out the same pad twice — XOR-ing the two encrypted tracking
// words would then leak reader sets to curious readers.
package main

import (
	"fmt"
	"log"

	"auditreg"
)

func main() {
	key, err := auditreg.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	const monitors = 2
	pads, err := auditreg.NewKeyedPads(key, monitors)
	if err != nil {
		log.Fatal(err)
	}

	// --- Auditable counter ---
	counter, err := auditreg.NewVersioned(monitors,
		auditreg.NewVersionedBase(auditreg.CounterType()), pads)
	if err != nil {
		log.Fatal(err)
	}
	inc, err := counter.Updater(auditreg.NewCryptoNonces(1))
	if err != nil {
		log.Fatal(err)
	}
	mon0, err := counter.Reader(0)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if err := inc.Update(struct{}{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("monitor 0 sees count:", mon0.Read())
	for i := 0; i < 2; i++ {
		if err := inc.Update(struct{}{}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("monitor 0 sees count:", mon0.Read())

	rep, err := counter.Auditor().Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("counter audit:", rep)

	// --- Auditable Lamport clock ---
	// Fresh key, fresh pads: reusing the counter's source — or deriving a
	// second source from the same key — would repeat pads and void the
	// one-time property (see the note at the top).
	clockKey, err := auditreg.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	clockPads, err := auditreg.NewKeyedPads(clockKey, monitors)
	if err != nil {
		log.Fatal(err)
	}
	clock, err := auditreg.NewVersioned(monitors,
		auditreg.NewVersionedBase(auditreg.LamportClockType()), clockPads)
	if err != nil {
		log.Fatal(err)
	}
	tick, err := clock.Updater(auditreg.NewCryptoNonces(2))
	if err != nil {
		log.Fatal(err)
	}
	mon1, err := clock.Reader(1)
	if err != nil {
		log.Fatal(err)
	}

	// Advance past an observed remote timestamp, then locally.
	for _, observed := range []uint64{7, 0, 0} {
		if err := tick.Update(observed); err != nil {
			log.Fatal(err)
		}
	}
	val, version := mon1.ReadVersioned()
	fmt.Printf("monitor 1 sees clock %d at version %d\n", val, version)

	crep, err := clock.Auditor().Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clock audit:", crep)
}
