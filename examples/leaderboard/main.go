// Leaderboard: an auditable max register as a sealed-bid auction board. The
// board always shows the highest bid; the auction house can audit exactly
// which bidders peeked at the current high bid (insider-trading detection),
// while bidders cannot tell how many competing bids were placed between their
// looks — the max register's nonces hide write multiplicity (Section 4).
package main

import (
	"fmt"
	"log"
	"sync"

	"auditreg"
)

func main() {
	key, err := auditreg.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	const observers = 3 // bidders who may look at the board
	pads, err := auditreg.NewKeyedPads(key, observers)
	if err != nil {
		log.Fatal(err)
	}

	board, err := auditreg.NewMaxRegister(observers, uint64(0),
		func(a, b uint64) bool { return a < b }, pads)
	if err != nil {
		log.Fatal(err)
	}

	// Three bidding desks place bids concurrently; each desk has its own
	// writeMax handle with its own nonce source.
	bids := [][]uint64{
		{100, 150, 90},
		{120, 160},
		{80, 170, 165},
	}
	var wg sync.WaitGroup
	for desk, stream := range bids {
		w, err := board.Writer(auditreg.NewCryptoNonces(uint8(desk)))
		if err != nil {
			log.Fatal(err)
		}
		stream := stream
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, bid := range stream {
				if err := w.WriteMax(bid); err != nil {
					log.Printf("bid failed: %v", err)
				}
			}
		}()
	}

	// Observers poll the board while bidding is in flight.
	for j := 0; j < observers; j++ {
		j := j
		rd, err := board.Reader(j)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_ = rd.Read()
			}
		}()
	}
	wg.Wait()

	rd, err := board.Reader(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("winning bid:", rd.Read())

	report, err := board.Auditor().Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== board access audit ===")
	for j := 0; j < observers; j++ {
		fmt.Printf("observer %d saw high bids: %v\n", j, report.ValuesRead(j))
	}
}
