// Medical records: the paper's motivating scenario. A shared record is
// updated by clinicians and read by staff; a compliance auditor must be able
// to determine exactly who accessed which version of the record — even if a
// curious staff member tries to read without leaving a trace by aborting the
// read protocol right after learning the value (the crash-simulating attack
// of Section 3.1), and without staff learning who else looked at the record.
package main

import (
	"fmt"
	"log"
	"sync"

	"auditreg"
)

const (
	staffAlice = iota // reader 0
	staffBob          // reader 1
	staffCarol        // reader 2
	staffCount
)

var staffName = map[int]string{
	staffAlice: "alice",
	staffBob:   "bob",
	staffCarol: "carol",
}

func main() {
	key, err := auditreg.NewKey()
	if err != nil {
		log.Fatal(err)
	}
	pads, err := auditreg.NewKeyedPads(key, staffCount)
	if err != nil {
		log.Fatal(err)
	}
	record, err := auditreg.NewRegister(staffCount, "2026-06-01: admitted", pads)
	if err != nil {
		log.Fatal(err)
	}

	// A clinician appends updates while staff read the record concurrently.
	var wg sync.WaitGroup
	updates := []string{
		"2026-06-02: bloodwork ordered",
		"2026-06-03: results normal",
		"2026-06-04: discharged",
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := record.Writer()
		for _, u := range updates {
			if err := w.Write(u); err != nil {
				log.Printf("update failed: %v", err)
			}
		}
	}()
	for id := 0; id < staffCount; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			rd, err := record.Reader(id)
			if err != nil {
				log.Printf("reader: %v", err)
				return
			}
			for i := 0; i < 3; i++ {
				_ = rd.Read()
			}
		}()
	}
	wg.Wait()

	// The compliance audit: every effective read, grouped by staff member.
	auditor := record.Auditor()
	report, err := auditor.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== compliance audit ===")
	for id := 0; id < staffCount; id++ {
		fmt.Printf("%-6s accessed %d record version(s):\n", staffName[id], len(report.ValuesRead(id)))
		for _, v := range report.ValuesRead(id) {
			fmt.Printf("        %q\n", v)
		}
	}

	// Who saw the discharge note?
	fmt.Println("readers of the discharge note:", report.ReadersOf("2026-06-04: discharged"))
}
