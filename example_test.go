package auditreg_test

import (
	"fmt"

	"auditreg"
)

// ExampleNewRegister shows the basic write/read/audit cycle of the auditable
// register (Algorithm 1).
func ExampleNewRegister() {
	pads, _ := auditreg.NewKeyedPads(auditreg.KeyFromSeed(1), 2)
	reg, _ := auditreg.NewRegister(2, "v0", pads)

	alice, _ := reg.Reader(0)
	fmt.Println("alice read:", alice.Read())

	_ = reg.Write("v1")
	fmt.Println("alice read:", alice.Read())

	report, _ := reg.Auditor().Audit()
	fmt.Println("audit:", report)
	// Output:
	// alice read: v0
	// alice read: v1
	// audit: {(0, v0), (0, v1)}
}

// ExampleNewMaxRegister shows the auditable max register (Algorithm 2): reads
// return the largest value written, audits report who saw which maximum.
func ExampleNewMaxRegister() {
	pads, _ := auditreg.NewKeyedPads(auditreg.KeyFromSeed(2), 1)
	board, _ := auditreg.NewMaxRegister(1, 0, func(a, b int) bool { return a < b }, pads)

	w, _ := board.Writer(auditreg.NewSeededNonces(7, 1))
	_ = w.WriteMax(120)
	_ = w.WriteMax(90) // lower: ignored

	rd, _ := board.Reader(0)
	fmt.Println("high bid:", rd.Read())

	report, _ := board.Auditor().Audit()
	fmt.Println("audit:", report)
	// Output:
	// high bid: 120
	// audit: {(0, 120)}
}

// ExampleNewSnapshot shows the auditable snapshot (Algorithm 3): scans are
// atomic views across all components, and audits report them per scanner.
func ExampleNewSnapshot() {
	pads, _ := auditreg.NewKeyedPads(auditreg.KeyFromSeed(3), 1)
	snap, _ := auditreg.NewSnapshot(3, 1, uint64(0), pads)

	u1, _ := snap.Updater(1, auditreg.NewSeededNonces(8, 1))
	_ = u1.Update(42)

	sc, _ := snap.Scanner(0)
	view := sc.Scan()
	fmt.Println("view:", view)

	entries, _ := snap.Auditor().Audit()
	fmt.Println("scanner 0 audited:", auditreg.ContainsView(entries, 0, view))
	// Output:
	// view: [0 42 0]
	// scanner 0 audited: true
}

// ExampleNewVersioned shows the versioned-type transform (Theorem 13) on a
// counter.
func ExampleNewVersioned() {
	pads, _ := auditreg.NewKeyedPads(auditreg.KeyFromSeed(4), 1)
	counter, _ := auditreg.NewVersioned(1, auditreg.NewVersionedBase(auditreg.CounterType()), pads)

	inc, _ := counter.Updater(auditreg.NewSeededNonces(9, 1))
	_ = inc.Update(struct{}{})
	_ = inc.Update(struct{}{})

	rd, _ := counter.Reader(0)
	value, version := rd.ReadVersioned()
	fmt.Printf("count %d at version %d\n", value, version)
	// Output:
	// count 2 at version 2
}

// ExampleReport_ValuesRead shows querying an audit report.
func ExampleReport_ValuesRead() {
	pads, _ := auditreg.NewKeyedPads(auditreg.KeyFromSeed(5), 2)
	reg, _ := auditreg.NewRegister(2, "a", pads)

	r0, _ := reg.Reader(0)
	r1, _ := reg.Reader(1)
	r0.Read()
	_ = reg.Write("b")
	r0.Read()
	r1.Read()

	report, _ := reg.Auditor().Audit()
	fmt.Println("reader 0 saw:", report.ValuesRead(0))
	fmt.Println("readers of b:", report.ReadersOf("b"))
	// Output:
	// reader 0 saw: [a b]
	// readers of b: [0 1]
}
