package client

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"auditreg/wire"
)

// backoffHarness swaps the retry loop's clock, sleeper, and jitter draw for
// deterministic ones and restores them on cleanup. Sleeps advance the fake
// clock instead of the real one, so the 2-second retry window is exercised
// in microseconds of test time.
type backoffHarness struct {
	now    time.Time
	slept  []time.Duration
	delays []time.Duration // the pre-jitter backoff step of each sleep
}

func newBackoffHarness(t *testing.T, seed int64) *backoffHarness {
	t.Helper()
	h := &backoffHarness{now: time.Unix(1000, 0)}
	rng := rand.New(rand.NewSource(seed))
	origNow, origSleep, origJitter := busyNow, busySleep, busyJitter
	t.Cleanup(func() { busyNow, busySleep, busyJitter = origNow, origSleep, origJitter })
	busyNow = func() time.Time { return h.now }
	busySleep = func(d time.Duration) {
		h.slept = append(h.slept, d)
		h.now = h.now.Add(d)
	}
	busyJitter = func(delay time.Duration) time.Duration {
		h.delays = append(h.delays, delay)
		return time.Duration(rng.Int63n(int64(delay))) + time.Microsecond
	}
	return h
}

// TestRetryBusyBackoffBounds pins the documented backoff contract: every
// full-jitter pause stays within (0, busyMaxDelay + 1µs], the pre-jitter
// step doubles from busyBaseDelay and saturates at busyMaxDelay, and a
// persistently-shed op surfaces wire.ErrBusy only after the retry window
// has elapsed.
func TestRetryBusyBackoffBounds(t *testing.T) {
	h := newBackoffHarness(t, 7)

	calls := 0
	err := retryBusy(func() error {
		calls++
		return wire.ErrBusy
	})
	if !errors.Is(err, wire.ErrBusy) {
		t.Fatalf("persistently busy op returned %v, want wire.ErrBusy", err)
	}

	if len(h.slept) == 0 {
		t.Fatal("no backoff sleeps recorded")
	}
	if calls != len(h.slept)+1 {
		t.Fatalf("%d op calls for %d sleeps; every retry but the last must be preceded by a pause", calls, len(h.slept))
	}
	// Documented bounds: pauses in (0, max+1µs], steps doubling 100µs → 10ms.
	for i, d := range h.slept {
		if d <= 0 || d > busyMaxDelay+time.Microsecond {
			t.Errorf("sleep %d = %v outside (0, %v]", i, d, busyMaxDelay+time.Microsecond)
		}
	}
	want := busyBaseDelay
	for i, step := range h.delays {
		if step != want {
			t.Errorf("backoff step %d = %v, want %v", i, step, want)
		}
		if h.slept[i] > step+time.Microsecond {
			t.Errorf("sleep %d = %v exceeds its step %v (+1µs): jitter must stay under the step", i, h.slept[i], step)
		}
		if want *= 2; want > busyMaxDelay {
			want = busyMaxDelay
		}
	}
	if h.delays[len(h.delays)-1] != busyMaxDelay {
		t.Errorf("final backoff step = %v, never saturated at %v", h.delays[len(h.delays)-1], busyMaxDelay)
	}

	// Window: the deadline is armed at the first busy result; total slept
	// time must reach it but not run away past one extra saturated pause.
	total := time.Duration(0)
	for _, d := range h.slept {
		total += d
	}
	if total < busyRetryWindow {
		t.Errorf("gave up after %v of backoff, before the %v window elapsed", total, busyRetryWindow)
	}
	if total > busyRetryWindow+busyMaxDelay+time.Microsecond {
		t.Errorf("kept retrying for %v, past the %v window by more than one saturated pause", total, busyRetryWindow)
	}
}

// TestRetryBusyStopsRetrying pins the loop's exits: success and non-busy
// errors return immediately without sleeping, and a mid-retry success stops
// the backoff.
func TestRetryBusyStopsRetrying(t *testing.T) {
	h := newBackoffHarness(t, 11)

	if err := retryBusy(func() error { return nil }); err != nil {
		t.Fatalf("retryBusy(ok) = %v", err)
	}
	sentinel := errors.New("not busy")
	if err := retryBusy(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("retryBusy(non-busy) = %v, want the op's error", err)
	}
	if len(h.slept) != 0 {
		t.Fatalf("non-retryable results slept %v", h.slept)
	}

	calls := 0
	err := retryBusy(func() error {
		if calls++; calls < 4 {
			return wire.ErrBusy
		}
		return nil
	})
	if err != nil || calls != 4 || len(h.slept) != 3 {
		t.Fatalf("mid-retry success: err=%v calls=%d sleeps=%d, want nil/4/3", err, calls, len(h.slept))
	}
}
