package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/server"
	"auditreg/store"
)

// TestNodeMismatchRefused pins the cluster handshake: a client asserting a
// node id (WithNode) against a daemon configured as a different node — or as
// no node at all — must get the typed ErrNodeMismatch from Open, and the
// misrouted open must not create the object on the wrong daemon.
func TestNodeMismatchRefused(t *testing.T) {
	key := auditreg.KeyFromSeed(7)
	srv, addr := startServer(t, server.Config{Key: key, Readers: 4, NodeID: 2})

	for _, want := range []uint32{3, 1} {
		cl, err := client.Dial(addr, client.WithConns(1), client.WithNode(want))
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		if _, err := cl.Open("obj", store.MaxRegister); !errors.Is(err, client.ErrNodeMismatch) {
			t.Fatalf("Open asserting node %d against node 2 = %v, want ErrNodeMismatch", want, err)
		}
		cl.Close()
	}
	if _, ok := srv.Store().Lookup("obj"); ok {
		t.Fatal("misrouted open created the object on the refusing daemon")
	}

	// The matching assertion — and no assertion at all — both succeed.
	for _, node := range []uint32{2, 0} {
		cl, err := client.Dial(addr, client.WithConns(1), client.WithNode(node))
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		if _, err := cl.Open("obj", store.MaxRegister); err != nil {
			t.Fatalf("Open asserting node %d against node 2: %v", node, err)
		}
		cl.Close()
	}
}

// TestNodeErrorPerNode is the per-node failure-attribution test: with two
// clients pooled to two daemons, killing one daemon must surface on ITS
// client as a *client.NodeError naming its address (still matching
// ErrConnLost via errors.Is), leave the other client untouched, and heal by
// per-node redial when the daemon comes back on the same address — the
// exact discrimination a cluster fan-out needs to count a node against f
// instead of failing the whole quorum call.
func TestNodeErrorPerNode(t *testing.T) {
	key := auditreg.KeyFromSeed(8)

	startAt := func(addr string, node uint32) (*server.Server, string, chan error) {
		t.Helper()
		srv, err := server.New(server.Config{Key: key, Readers: 4, PoolInterval: time.Millisecond, NodeID: node})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		return srv, ln.Addr().String(), done
	}
	shutdown := func(srv *server.Server, done chan error) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		<-done
	}

	srv1, addr1, done1 := startAt("127.0.0.1:0", 1)
	srv2, addr2, done2 := startAt("127.0.0.1:0", 2)

	cl1, err := client.Dial(addr1, client.WithConns(1), client.WithNode(1))
	if err != nil {
		t.Fatalf("Dial node 1: %v", err)
	}
	defer cl1.Close()
	cl2, err := client.Dial(addr2, client.WithConns(1), client.WithNode(2))
	if err != nil {
		t.Fatalf("Dial node 2: %v", err)
	}
	defer cl2.Close()

	obj1, err := cl1.Open("obj", store.MaxRegister)
	if err != nil {
		t.Fatalf("Open on node 1: %v", err)
	}
	obj2, err := cl2.Open("obj", store.MaxRegister)
	if err != nil {
		t.Fatalf("Open on node 2: %v", err)
	}
	if _, err := obj1.ShareWrite(1, 0xA1, 1); err != nil {
		t.Fatalf("ShareWrite node 1: %v", err)
	}
	if _, err := obj2.ShareWrite(1, 0xB2, 1); err != nil {
		t.Fatalf("ShareWrite node 2: %v", err)
	}

	// Kill node 2 only.
	shutdown(srv2, done2)
	deadline := time.Now().Add(5 * time.Second)
	var nodeErr *client.NodeError
	for time.Now().Before(deadline) {
		_, err = obj2.ShareWrite(2, 0xB3, 1)
		if err != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err == nil {
		t.Fatal("ShareWrite against the killed node kept succeeding")
	}
	if !errors.As(err, &nodeErr) {
		t.Fatalf("failure against killed node = %v (%T), want *client.NodeError", err, err)
	}
	if nodeErr.Addr != addr2 {
		t.Fatalf("NodeError.Addr = %q, want the killed node's %q", nodeErr.Addr, addr2)
	}
	if !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("NodeError does not unwrap to ErrConnLost: %v", err)
	}
	if cl2.Addr() != addr2 {
		t.Fatalf("Client.Addr() = %q, want %q", cl2.Addr(), addr2)
	}

	// Node 1's client is untouched by node 2's death: per-node, not per-pool.
	if cur, err := obj1.ShareWrite(0, 0, 1); err != nil || cur != 1 {
		t.Fatalf("node 1 probe after node 2 death = wid %d, %v; want 1, nil", cur, err)
	}

	// Node 2 returns on the same address; the SAME client heals by redial.
	srv2b, _, done2b := startAt(addr2, 2)
	defer shutdown(srv2b, done2b)
	var cur uint64
	for time.Now().Before(deadline) {
		cur, err = obj2.ShareWrite(2, 0xB3, 1)
		if err == nil {
			break
		}
		if !errors.Is(err, client.ErrConnLost) {
			t.Fatalf("post-restart failure = %v, want ErrConnLost while redialing", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("node 2 client never healed: %v", err)
	}
	if cur != 2 {
		t.Fatalf("post-restart resident wid = %d, want 2", cur)
	}

	shutdown(srv1, done1)
	_ = srv1
}
