package client_test

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"auditreg/client"
	"auditreg/store"
)

// TestRequestTimeoutAgainstHungServer is the liveness regression test for
// WithRequestTimeout: a peer that accepts the connection and reads requests
// but never answers — the partitioned-without-RST failure a crash detector
// cannot see — must cost one bounded wait ending in a typed ErrTimeout, not
// a wedged caller.
func TestRequestTimeoutAgainstHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var swallowed atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) { // swallow bytes forever, answer nothing
				defer nc.Close()
				buf := make([]byte, 4096)
				for {
					n, err := nc.Read(buf)
					swallowed.Add(int64(n))
					if err != nil {
						return
					}
				}
			}(nc)
		}
	}()

	const timeout = 200 * time.Millisecond
	cl, err := client.Dial(ln.Addr().String(),
		client.WithConns(1), client.WithRequestTimeout(timeout))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Open("obj", store.Register)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Open against a hung server succeeded")
	}
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("hung-server failure = %v, want errors.Is(err, ErrTimeout)", err)
	}
	var ne *client.NodeError
	if !errors.As(err, &ne) || ne.Addr != ln.Addr().String() {
		t.Fatalf("timeout not attributed to the hung node: %v", err)
	}
	if elapsed < timeout/2 || elapsed > 10*timeout {
		t.Fatalf("timed out after %v, want about %v", elapsed, timeout)
	}
	if swallowed.Load() == 0 {
		t.Fatal("request never reached the hung server; test proved nothing")
	}
}

// TestRequestTimeoutRecovery: after the timeout kills a hung connection the
// pool must redial on next use and the caller must see a fast failure (the
// listener is gone by then) — never a hang and never a poisoned Client.
func TestRequestTimeoutRecovery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			if _, err := nc.Read(buf); err != nil {
				nc.Close()
				ln.Close()
				return
			}
		}
	}()

	cl, err := client.Dial(ln.Addr().String(),
		client.WithConns(1), client.WithRequestTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	done := make(chan error, 1)
	go func() {
		_, err := cl.Open("obj", store.Register)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Open against a hung server succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Open wedged despite request timeout")
	}

	// The pool's next use must not hang either: the dead connection is
	// replaced by a redial, which now fails fast (listener closed).
	start := time.Now()
	if _, err := cl.Open("obj2", store.Register); err == nil {
		t.Fatal("Open after listener close succeeded")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("post-timeout Open took %v", elapsed)
	}
}
