package client

import (
	"fmt"

	"auditreg/internal/telem"
	"auditreg/wire"
)

// This file is the client side of the cluster share plane: the two verbs a
// dispersing client (package auditreg/cluster) drives against each node of a
// quorum. A share object is an ordinary MaxRegister holding the packed
// (wid, masked share) value — wid in the high bits, this node's pad-masked
// IDA share in the low 8*shareLen bits — so writeMax gives newest-wid-wins
// and duplicate absorption for free. The methods here move single packed
// values for ONE node; splitting, pad derivation, quorum counting, and
// reconstruction all live in the cluster package.

// ShareWrite installs this node's share of dispersed write wid: a writeMax
// of wid<<(8*shareLen) | share on the named MaxRegister, journaled like any
// write. The share must already be masked under the node's share pad — the
// client sends exactly what it is given. Wid zero is the wid-sync probe: no
// write happens and the call returns the node's current resident wid (zero
// when the object has never taken a share). In every case the returned wid
// is the resident one after the call, so a stale writer discovers the newer
// wid it lost to.
func (o *Object) ShareWrite(wid, share uint64, shareLen int) (uint64, error) {
	t0 := telem.Now()
	cur, err := o.shareWrite(wid, share, shareLen)
	o.c.rtt.Observe(uint64(t0), telem.Now()-t0)
	return cur, err
}

func (o *Object) shareWrite(wid, share uint64, shareLen int) (uint64, error) {
	if shareLen < 1 || shareLen > wire.MaxShareLen {
		return 0, fmt.Errorf("client: share-write %q: share-len %d out of range [1, %d]", o.name, shareLen, wire.MaxShareLen)
	}
	var resp wire.ShareWriteResp
	err := retryBusy(func() error {
		cn := o.c.pick()
		if _, err := cn.open(o.name, o.wkind, 0); err != nil {
			return err
		}
		req := wire.ShareWriteReq{Name: o.name, Wid: wid, Share: share, ShareLen: uint8(shareLen)}
		b := wire.GetBuf(wire.FramePrefix + 32 + len(o.name))
		b.B = req.Append(wire.BeginFrame(b.B[:0]))
		r, err := cn.roundTripBuf(wire.VerbShareWrite, b)
		if err != nil {
			return err
		}
		if r.verb != wire.VerbShareWrite {
			err = respError(r, wire.VerbShareWrite)
			wire.PutBuf(r.buf)
			return err
		}
		err = resp.Decode(r.buf.B)
		wire.PutBuf(r.buf)
		return err
	})
	if err != nil {
		return 0, err
	}
	return resp.Wid, nil
}

// ShareRead returns the node's current packed share value as seen by the
// given reader index — Object.Read over the share plane. It drives the same
// two pipelined wire messages (one SHARE-FETCH, silent when the per-node
// slot cache is current; one helping READ-ANNOUNCE after a fetch) against
// this pool's one node, so the node's audit history records the read exactly
// as a plain read would be recorded. The packed value arrives masked under
// the connection's session secret and is unmasked here; unpacking wid from
// share — and unmasking the share pad — is the cluster caller's job.
func (o *Object) ShareRead(reader int) (uint64, error) {
	t0 := telem.Now()
	v, err := o.shareRead(reader)
	o.c.rtt.Observe(uint64(t0), telem.Now()-t0)
	return v, err
}

func (o *Object) shareRead(reader int) (uint64, error) {
	if reader < 0 || reader >= o.readers {
		return 0, fmt.Errorf("client: share-read %q: reader %d out of range [0, %d)", o.name, reader, o.readers)
	}
	s := &o.slots[reader]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.init {
		s.init = true
		s.prevSeq = ^uint64(0)
	}

	var cn *conn
	var fetchResp wire.ShareFetchResp
	err := retryBusy(func() error {
		cn = o.c.pick()
		if _, err := cn.open(o.name, o.wkind, 0); err != nil {
			return err
		}
		// Same epoch rule as read(): a cache filled under another server boot
		// is dropped, never trusted against renumbered sequence numbers.
		if e := cn.epochValue(); s.epoch != e {
			s.epoch = e
			s.prevSeq = ^uint64(0)
		}
		req := wire.ShareFetchReq{Name: o.name, Reader: uint8(reader), PrevSeq: s.prevSeq}
		b := wire.GetBuf(wire.FramePrefix + 24 + len(o.name))
		b.B = req.Append(wire.BeginFrame(b.B[:0]))
		r, err := cn.roundTripBuf(wire.VerbShareFetch, b)
		if err != nil {
			return err
		}
		if r.verb != wire.VerbShareFetch {
			err = respError(r, wire.VerbShareFetch)
			wire.PutBuf(r.buf)
			return err
		}
		err = fetchResp.Decode(r.buf.B)
		wire.PutBuf(r.buf)
		return err
	})
	if err != nil {
		return 0, err
	}
	if fetchResp.Seq != s.prevSeq {
		session := cn.sessionValue()
		s.prevVal = fetchResp.Value ^ wire.ValueMask(session, o.name, uint8(reader), fetchResp.Seq)
		s.prevSeq = fetchResp.Seq
	}
	if fetchResp.Fetched {
		ann := wire.AnnounceReq{Name: o.name, Reader: uint8(reader), Seq: fetchResp.Seq}
		ab := wire.GetBuf(wire.FramePrefix + 24 + len(o.name))
		ab.B = ann.Append(wire.BeginFrame(ab.B[:0]))
		_ = cn.postBuf(wire.VerbReadAnnounce, ab)
	}
	return s.prevVal, nil
}
