package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/server"
	"auditreg/store"
)

func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.PoolInterval == 0 {
		cfg.PoolInterval = time.Millisecond
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// TestInFlightMultiplexing drives many goroutines over a deliberately tiny
// pool, so requests must interleave on shared connections and responses must
// find their way back by request id.
func TestInFlightMultiplexing(t *testing.T) {
	key := auditreg.KeyFromSeed(21)
	_, addr := startServer(t, server.Config{Key: key, Readers: 16})
	cl, err := client.Dial(addr, client.WithConns(2))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	const goroutines = 16
	objs := make([]*client.Object, goroutines)
	for g := range objs {
		objs[g], err = cl.Open(fmt.Sprintf("own-%02d", g), store.Register)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			obj := objs[g]
			// Each goroutine owns its object and reader index, so every
			// read has one deterministic expected value even though all
			// traffic shares two connections.
			for i := 0; i < 50; i++ {
				want := uint64(g)<<32 | uint64(i)
				if err := obj.Write(want); err != nil {
					t.Errorf("g%d Write: %v", g, err)
					return
				}
				got, err := obj.Read(g)
				if err != nil {
					t.Errorf("g%d Read: %v", g, err)
					return
				}
				if got != want {
					t.Errorf("g%d read %#x, want %#x", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestAuditorRequiresKey(t *testing.T) {
	key := auditreg.KeyFromSeed(22)
	_, addr := startServer(t, server.Config{Key: key})
	keyless, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer keyless.Close()
	obj, err := keyless.Open("obj", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := obj.Auditor(); err == nil {
		t.Fatal("Auditor succeeded without the store key")
	}

	// A wrong key unmasks to garbage, not to the true report: the audit
	// stays confidential against key-guessing readers. (Garbage can still
	// contain any individual pair by chance — a random 64-bit mask sets
	// each reader bit with probability 1/2 — so the assertion compares
	// whole reports, not single pairs.)
	if err := obj.Write(0xfeed); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := obj.Read(0); err != nil {
		t.Fatalf("Read: %v", err)
	}
	wrong, err := client.Dial(addr, client.WithConns(1), client.WithKey(auditreg.KeyFromSeed(23)))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer wrong.Close()
	wobj, err := wrong.Open("obj", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	waud, err := wobj.Auditor()
	if err != nil {
		t.Fatalf("Auditor: %v", err)
	}
	wrep, err := waud.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}

	right, err := client.Dial(addr, client.WithConns(1), client.WithKey(key))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer right.Close()
	robj, err := right.Open("obj", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	raud, err := robj.Auditor()
	if err != nil {
		t.Fatalf("Auditor: %v", err)
	}
	rrep, err := raud.Audit()
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !rrep.Report.Contains(0, 0xfeed) {
		t.Fatalf("right key missed the audit pair: %v", rrep.Report)
	}
	if wrep.Report.Equal(rrep.Report) {
		t.Fatal("wrong key still recovered the true audit report")
	}
}

func TestOpenValidation(t *testing.T) {
	key := auditreg.KeyFromSeed(24)
	_, addr := startServer(t, server.Config{Key: key})
	cl, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if _, err := cl.Open("snap", store.Snapshot); err == nil {
		t.Fatal("Open(Snapshot) succeeded remotely")
	}
	if _, err := cl.Open("obj", store.Register); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := cl.Open("obj", store.MaxRegister); !errors.Is(err, store.ErrKindMismatch) {
		t.Fatalf("kind mismatch err = %v", err)
	}
	// Overlong names are rejected before hitting the wire.
	if _, err := cl.Open(strings.Repeat("n", 5000), store.Register); err == nil {
		t.Fatal("overlong name accepted")
	}
	obj, _ := cl.Open("obj", store.Register)
	if _, err := obj.Read(-1); err == nil {
		t.Fatal("Read(-1) succeeded")
	}
	if _, err := obj.Read(obj.Readers()); err == nil {
		t.Fatal("Read(m) succeeded")
	}
	if _, err := obj.Reader(obj.Readers()); err == nil {
		t.Fatal("Reader(m) succeeded")
	}
}

// TestReconnectAfterServerRestart pins that a dead pool connection is
// replaced on next use: a client that outlives a server restart keeps
// working instead of permanently failing 1/nconns of its requests.
func TestReconnectAfterServerRestart(t *testing.T) {
	key := auditreg.KeyFromSeed(26)
	newSrv := func(addr string) (*server.Server, chan error) {
		srv, err := server.New(server.Config{Key: key, PoolInterval: time.Millisecond})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		return srv, done
	}
	srv1, done1 := newSrv("127.0.0.1:0")
	var addr string
	for i := 0; i < 100 && addr == ""; i++ {
		if a := srv1.Addr(); a != nil {
			addr = a.String()
		} else {
			time.Sleep(time.Millisecond)
		}
	}

	cl, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	obj, err := cl.Open("obj", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := obj.Write(1); err != nil {
		t.Fatalf("Write: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	cancel()
	if err := <-done1; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// Same address, fresh server (fresh store: the object must be
	// re-created through the lazy re-open on the replacement connection).
	srv2, done2 := newSrv(addr)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv2.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-done2; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	// The first attempts may ride the dying connection; the pool must
	// recover within a few picks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := obj.Write(2); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after server restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	v, err := obj.Read(0)
	if err != nil {
		t.Fatalf("Read after restart: %v", err)
	}
	if v != 2 {
		t.Fatalf("Read after restart = %d, want 2", v)
	}
}

func TestCloseFailsPendingAndFutureRequests(t *testing.T) {
	key := auditreg.KeyFromSeed(25)
	_, addr := startServer(t, server.Config{Key: key})
	cl, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	obj, err := cl.Open("obj", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cl.Close()
	if err := obj.Write(1); err == nil {
		t.Fatal("Write succeeded on a closed client")
	}
	if _, err := cl.Stats(); err == nil {
		t.Fatal("Stats succeeded on a closed client")
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
