// Package client is the Go client of auditd (package auditreg/server): a
// connection pool speaking the auditreg/wire protocol, with in-flight
// request multiplexing and typed Writer/Reader/Auditor handles mirroring the
// local store API.
//
// # Roles, client-side
//
// The paper's principals map onto client handles:
//
//   - Writers and plain applications call Object.Write / Object.Read.
//   - A Reader handle owns the reader principal's protocol state — the
//     silent-read cache (prev_sn, prev_val) — and drives the paper's read as
//     two pipelined wire messages: READ-FETCH (the one fetch&xor,
//     server-side) and READ-ANNOUNCE (the helping CAS, sent without waiting).
//     Values arrive XOR-masked under the connection's session secret; the
//     client unmasks locally, so one principal's values are opaque to every
//     other curious principal on the network.
//   - An Auditor handle requires the store key (WithKey): audit responses
//     carry reader sets XOR-masked under key-derived pads, and the client
//     unmasks them locally. Reader sets are decrypted only client-side, and
//     only by key holders — a client without the key cannot audit.
//
// # Concurrency
//
// A Client and its Objects are safe for concurrent use: requests from any
// number of goroutines multiplex over the pool, matched to responses by
// request id. Per-reader read state is serialized per (object, reader), as
// in the local store. Dead pool connections are transparently redialed on
// next use, so a server restart costs the requests in flight, not the
// Client.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"auditreg"
	"auditreg/internal/telem"
	"auditreg/store"
	"auditreg/wire"
)

// DefaultConns is the default connection pool size.
const DefaultConns = 4

// Client is a pooled connection to one auditd server. Construct with Dial.
type Client struct {
	addr       string
	nconns     int
	key        auditreg.Key
	hasKey     bool
	timeout    time.Duration
	reqTimeout time.Duration
	dialer     Dialer
	node       uint32

	conns []*conn
	next  atomic.Uint64

	// rtt is the retry-inclusive round-trip histogram over Write/Read/Audit
	// calls — the client-side end of the pipeline stage trace. Striped by
	// call start timestamp (concurrent callers share no stripe for long).
	rtt *telem.Hist

	mu      sync.Mutex
	objects map[string]*Object
	closed  bool
}

// Option configures a Client.
type Option func(*Client) error

// WithConns sets the connection pool size (default DefaultConns).
func WithConns(n int) Option {
	return func(c *Client) error {
		if n < 1 {
			return fmt.Errorf("client: pool size must be positive, got %d", n)
		}
		c.nconns = n
		return nil
	}
}

// WithKey provides the store key, enabling the auditor role: only a
// key-holding client can unmask the reader sets of audit responses. Never
// configure it on a reading principal's client.
func WithKey(key auditreg.Key) Option {
	return func(c *Client) error {
		c.key = key
		c.hasKey = true
		return nil
	}
}

// Dialer dials one transport connection to an auditd address. The default is
// net.DialTimeout over TCP; tests and simulations substitute their own — the
// netsim fabric's Dialer runs a whole cluster over in-process pipes with
// seeded per-link latency and partitions, no sockets involved.
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

// WithDialer substitutes the transport dialer (default TCP via
// net.DialTimeout). Every pool dial and redial goes through it.
func WithDialer(d Dialer) Option {
	return func(c *Client) error {
		if d == nil {
			return fmt.Errorf("client: nil dialer")
		}
		c.dialer = d
		return nil
	}
}

// WithNode asserts which cluster node the dialed daemon must be (1-based
// node ids; see server.Config.NodeID). Every OPEN carries the assertion and
// a daemon configured as a different node — or as no node at all — refuses
// it before touching its store, so a transposed address list surfaces as
// ErrNodeMismatch instead of silently cross-wiring two nodes' share
// histories. Zero (the default) asserts nothing.
func WithNode(id uint32) Option {
	return func(c *Client) error {
		c.node = id
		return nil
	}
}

// WithDialTimeout bounds each connection attempt (default 10s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) error {
		if d <= 0 {
			return fmt.Errorf("client: dial timeout must be positive, got %v", d)
		}
		c.timeout = d
		return nil
	}
}

// WithRequestTimeout bounds every waited round trip on the pool: a request
// with no response after d — including time spent queued behind a stalled
// flush — kills its connection with a cause wrapping ErrTimeout, failing
// every request in flight there fast instead of letting a hung peer (a
// partition that drops bytes without resetting the connection) wedge callers
// forever. The pool redials on next use as with any dead connection. Zero
// (the default) disables enforcement and costs nothing per request.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Client) error {
		if d < 0 {
			return fmt.Errorf("client: request timeout must be non-negative, got %v", d)
		}
		c.reqTimeout = d
		return nil
	}
}

// Dial connects the pool to addr.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		addr:    addr,
		nconns:  DefaultConns,
		timeout: 10 * time.Second,
		objects: make(map[string]*Object),
		rtt:     telem.NewHist(0),
	}
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	if c.dialer == nil {
		c.dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	c.conns = make([]*conn, c.nconns)
	for i := range c.conns {
		cn, err := dialConn(addr, c.timeout, c.reqTimeout, c.dialer, c.node)
		if err != nil {
			for _, prev := range c.conns[:i] {
				prev.close(err)
			}
			return nil, err
		}
		c.conns[i] = cn
	}
	return c, nil
}

// Addr returns the address the pool dials — the identity a cluster caller
// correlates NodeErrors against.
func (c *Client) Addr() string { return c.addr }

// Close tears the pool down; in-flight requests fail with a closed-client
// error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := append([]*conn(nil), c.conns...)
	c.mu.Unlock()
	for _, cn := range conns {
		cn.close(errClientClosed)
	}
	return nil
}

// pick returns the next pool connection, round robin. A connection that has
// died (server restart, TCP reset) is transparently replaced by a fresh
// dial, so one failure degrades a single request, not 1/nconns of all
// future ones; the replacement connection re-learns its session secret and
// opened objects lazily. If the redial itself fails, the dead connection is
// returned and the caller's request surfaces its error.
func (c *Client) pick() *conn {
	idx := int(c.next.Add(1) % uint64(len(c.conns)))
	c.mu.Lock()
	cn := c.conns[idx]
	closed := c.closed
	c.mu.Unlock()
	if closed || !cn.isDead() {
		return cn
	}
	// Redial outside the client lock: a blocking dial must stall only this
	// request, never the healthy connections.
	fresh, err := dialConn(c.addr, c.timeout, c.reqTimeout, c.dialer, c.node)
	if err != nil {
		return cn
	}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		fresh.close(errClientClosed)
		return cn
	case c.conns[idx] != cn:
		// Another goroutine already replaced the slot; use its dial.
		cur := c.conns[idx]
		c.mu.Unlock()
		fresh.close(errClientClosed)
		return cur
	default:
		c.conns[idx] = fresh
		c.mu.Unlock()
		return fresh
	}
}

// Open returns the remote object stored under name, creating it with the
// given kind if absent — client-side mirror of store.Store.Open. Remotable
// kinds are store.Register and store.MaxRegister. Opening validates kind
// agreement server-side; OpenOptions apply only if this open creates the
// object.
func (c *Client) Open(name string, kind store.Kind, opts ...OpenOption) (*Object, error) {
	var cfg openConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	wk, ok := kindToWire(kind)
	if !ok {
		return nil, fmt.Errorf("client: open %q: kind %v is not remotable", name, kind)
	}
	if name == "" || len(name) > wire.MaxName {
		return nil, fmt.Errorf("client: open: name length must be in [1, %d], got %d", wire.MaxName, len(name))
	}

	var resp wire.OpenResp
	if err := retryBusy(func() error {
		var err error
		resp, err = c.pick().open(name, wk, cfg.capacity)
		return err
	}); err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if obj, ok := c.objects[name]; ok {
		return obj, nil
	}
	obj := &Object{
		c:       c,
		name:    name,
		kind:    kind,
		wkind:   wk,
		readers: int(resp.Readers),
		slots:   make([]readSlot, resp.Readers),
	}
	c.objects[name] = obj
	return obj, nil
}

// Stats fetches the server's counters, sorted by name.
func (c *Client) Stats() ([]wire.StatPair, error) {
	resp, err := c.StatsInfo()
	if err != nil {
		return nil, err
	}
	return resp.Pairs, nil
}

// StatsInfo fetches the full STATS response: the counter pairs plus the
// daemon's build info, uptime, and stats epoch (a scraper that sees the
// epoch decrease between calls knows the daemon restarted).
func (c *Client) StatsInfo() (wire.StatsResp, error) {
	r, err := c.pick().roundTrip(wire.VerbStats, (&wire.StatsReq{}).Append(nil))
	if err != nil {
		return wire.StatsResp{}, err
	}
	var statsResp wire.StatsResp
	err = decodeResp(r, wire.VerbStats, &statsResp)
	wire.PutBuf(r.buf)
	if err != nil {
		return wire.StatsResp{}, err
	}
	return statsResp, nil
}

// RTT returns a snapshot of the client's retry-inclusive round-trip
// histogram: every Object.Write, Object.Read, and Auditor audit call
// contributes one observation covering redials, backoff, and retries.
func (c *Client) RTT() telem.Snapshot { return c.rtt.Snapshot() }

// OpenOption configures one Open call.
type OpenOption func(*openConfig)

type openConfig struct {
	capacity uint32
}

// WithObjectCapacity overrides the server's default audit-history capacity
// if this open creates the object.
func WithObjectCapacity(n int) OpenOption {
	return func(c *openConfig) {
		if n > 0 {
			c.capacity = uint32(n)
		}
	}
}

// kindToWire maps a store kind to its wire byte; Snapshot has none. The
// numeric correspondence is pinned by compile-time assertions in package
// auditreg/server; remotability has one source of truth, wire.RemotableKind.
func kindToWire(k store.Kind) (uint8, bool) {
	return uint8(k), wire.RemotableKind(uint8(k))
}

// remoteErr converts an ErrResp into a Go error carrying the matching
// sentinel, so errors.Is works across the wire.
func remoteErr(e *wire.ErrResp) error {
	switch e.Code {
	case wire.CodeNotFound:
		return fmt.Errorf("client: %s: %w", e.Msg, store.ErrNotFound)
	case wire.CodeKindMismatch:
		return fmt.Errorf("client: %s: %w", e.Msg, store.ErrKindMismatch)
	case wire.CodeBusy:
		return fmt.Errorf("client: %w", wire.ErrBusy)
	case wire.CodeNodeMismatch:
		return fmt.Errorf("client: %s: %w", e.Msg, ErrNodeMismatch)
	default:
		return fmt.Errorf("client: remote error %d: %s", e.Code, e.Msg)
	}
}

// Busy-retry backoff bounds: the first retry waits about busyBaseDelay,
// doubling (with jitter) up to busyMaxDelay, and an op that stays shed past
// busyRetryWindow surfaces wire.ErrBusy to the caller.
const (
	busyBaseDelay   = 100 * time.Microsecond
	busyMaxDelay    = 10 * time.Millisecond
	busyRetryWindow = 2 * time.Second
)

// The backoff's clock, sleeper, and jitter draw are package variables so
// the retry loop is testable against a deterministic schedule; production
// always runs the defaults below.
var (
	busyNow   = time.Now
	busySleep = time.Sleep
	// busyJitter draws the full-jitter pause for the current backoff step: a
	// uniform draw in (0, delay], floored at one microsecond, so shed
	// clients desynchronize instead of stampeding the shard back to its
	// watermark in lockstep.
	busyJitter = func(delay time.Duration) time.Duration {
		return time.Duration(rand.Int63n(int64(delay))) + time.Microsecond
	}
)

// retryBusy runs op, retrying with jittered exponential backoff while the
// server sheds it under admission control (wire.ErrBusy). Every retry
// re-encodes and may land on a different pool connection; ops that are not
// idempotent-safe to repeat (none — every verb here is) would not use this.
func retryBusy(op func() error) error {
	delay := busyBaseDelay
	var deadline time.Time
	for {
		err := op()
		if err == nil || !errors.Is(err, wire.ErrBusy) {
			return err
		}
		now := busyNow()
		if deadline.IsZero() {
			deadline = now.Add(busyRetryWindow)
		} else if now.After(deadline) {
			return err
		}
		busySleep(busyJitter(delay))
		if delay *= 2; delay > busyMaxDelay {
			delay = busyMaxDelay
		}
	}
}

// decodeResp decodes r's body into msg when it carries want; an ErrResp
// becomes the matching Go error. The caller still owns (and recycles)
// r.buf.
func decodeResp(r resp, want wire.Verb, msg interface{ Decode([]byte) error }) error {
	if r.verb != want {
		return respError(r, want)
	}
	return msg.Decode(r.buf.B)
}

// respError turns an unexpected response — an ErrResp, or a verb mismatch —
// into the error the caller surfaces. Split from decodeResp so hot callers
// can decode their expected response inline (no interface indirection) and
// fall back here only on the cold failure path.
func respError(r resp, want wire.Verb) error {
	if r.verb == wire.VerbErr {
		var e wire.ErrResp
		if err := e.Decode(r.buf.B); err != nil {
			return fmt.Errorf("client: malformed error response: %w", err)
		}
		return remoteErr(&e)
	}
	return fmt.Errorf("client: response verb %v, want %v", r.verb, want)
}
