package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"auditreg/wire"
)

var errClientClosed = errors.New("client: closed")

// ErrConnLost reports that a pool connection died — server restart, TCP
// reset, write failure — with requests in flight. Every such request fails
// fast with an error wrapping ErrConnLost (test with errors.Is) instead of
// hanging; the pool transparently redials on next use, so the Client itself
// survives.
var ErrConnLost = errors.New("client: connection lost")

// ErrTimeout reports that a round trip outlived the pool's per-request
// timeout (WithRequestTimeout): the peer accepted the connection but never
// answered — hung process, partition holding the connection open, or a flush
// that stalled past the deadline. The connection is killed (every request in
// flight on it fails with a cause wrapping ErrTimeout, test with errors.Is
// through the NodeError wrapper) so a hung node costs one timeout, not a
// wedged caller; the pool redials on next use.
var ErrTimeout = errors.New("client: request timeout")

// ErrNodeMismatch reports that the daemon a connection reached is not the
// cluster node the client asserted with WithNode: the address list and the
// cluster the daemons were booted into disagree. Surfaced by Open (the
// server refuses with wire.CodeNodeMismatch before touching the store), so a
// misrouted connection can never contribute a share to the wrong node's
// history.
var ErrNodeMismatch = errors.New("client: cluster node mismatch")

// NodeError wraps every connection-level failure with the address the
// failing connection was dialed to. In a single-server pool the address is
// redundant; in a cluster fan-out it is the signal — a dispersing client
// (package auditreg/cluster) unwraps it to tell WHICH node went silent and
// count it against f, rather than failing the whole quorum call. Unwrap
// preserves the underlying sentinel, so errors.Is(err, ErrConnLost) keeps
// working through the wrapper.
type NodeError struct {
	Addr string // the address the connection was dialed to
	Err  error
}

func (e *NodeError) Error() string { return fmt.Sprintf("client: node %s: %v", e.Addr, e.Err) }

func (e *NodeError) Unwrap() error { return e.Err }

// connWriteQueue bounds the request queue between callers and a
// connection's writer goroutine; senders block (backpressure) when the
// writer falls this far behind.
const connWriteQueue = 256

// conn is one pooled connection: a background read loop matches response
// frames to waiting requests by id (in-flight multiplexing), a writer
// goroutine coalesces queued request frames into scatter-gather flushes —
// one writev per wakeup, so pipelined requests (a fetch and its announce, or
// many goroutines' requests) share syscalls — and the connection remembers
// its server-issued session secret plus which objects it has opened.
//
// Requests and responses travel in pooled wire.Buf frames: the caller
// encodes into a buffer it got from the arena, the writer recycles it after
// the flush; the read loop copies each response body into a pooled buffer
// that the waiting caller recycles after decoding. Steady-state traffic
// allocates nothing per request beyond the in-flight bookkeeping.
type conn struct {
	nc         net.Conn
	addr       string        // dialed address, for NodeError attribution
	node       uint32        // cluster node id asserted on every OPEN; 0 asserts nothing
	reqTimeout time.Duration // per-request deadline; 0 disables enforcement

	writec chan *wire.Buf
	wquit  chan struct{} // closed by close(); stops the writer

	nextID atomic.Uint64

	// timedOut marks that a request timer fired and kicked the read loop off
	// the socket via SetReadDeadline; the read loop consults it to attribute
	// its exit to ErrTimeout rather than a generic lost connection. Set
	// strictly before the deadline is moved, so the attribution never races
	// the wakeup it causes.
	timedOut atomic.Bool

	mu       sync.Mutex
	inflight map[uint64]chan resp // nil channel: fire-and-forget
	dead     error
	session  [wire.SessionLen]byte
	hasSess  bool
	epoch    uint64                   // server boot epoch, from OPEN responses
	opened   map[string]wire.OpenResp // objects opened on this conn
}

// resp is one matched response: the verb and a pooled copy of the body. The
// receiver owns buf and recycles it after decoding; a nil buf reports the
// connection died before the response arrived.
type resp struct {
	verb wire.Verb
	buf  *wire.Buf
}

// respChans pools the one-shot waiter channels of roundTrip, so a request
// costs no channel allocation at steady state. A pooled channel is always
// empty: its single send is consumed by the waiter before the channel is
// returned.
var respChans = sync.Pool{New: func() any { return make(chan resp, 1) }}

func dialConn(addr string, timeout, reqTimeout time.Duration, dial Dialer, node uint32) (*conn, error) {
	nc, err := dial(addr, timeout)
	if err != nil {
		return nil, &NodeError{Addr: addr, Err: err}
	}
	cn := &conn{
		nc:         nc,
		addr:       addr,
		node:       node,
		reqTimeout: reqTimeout,
		writec:     make(chan *wire.Buf, connWriteQueue),
		wquit:      make(chan struct{}),
		inflight:   make(map[uint64]chan resp),
		opened:     make(map[string]wire.OpenResp),
	}
	go cn.writeLoop()
	go cn.readLoop()
	return cn, nil
}

// writeLoop coalesces queued request frames into one scatter-gather flush
// per wakeup and recycles their buffers; a write failure kills the
// connection. It keeps draining (and recycling) queued frames after death so
// senders never block on a full queue.
func (cn *conn) writeLoop() {
	var pend []*wire.Buf
	var fl wire.Flusher
	for {
		var first *wire.Buf
		select {
		case first = <-cn.writec:
		case <-cn.wquit:
			cn.recycleQueued()
			return
		}
		pend = append(pend[:0], first)
	collect:
		for {
			select {
			case more := <-cn.writec:
				pend = append(pend, more)
			default:
				break collect
			}
		}
		if cn.reqTimeout > 0 {
			// A per-flush write deadline: a peer that stops draining its
			// receive window must not park the writer (and everything queued
			// behind it) forever.
			cn.nc.SetWriteDeadline(time.Now().Add(cn.reqTimeout))
		}
		if err := fl.Flush(cn.nc, pend); err != nil {
			cause := fmt.Errorf("%w: write failed: %v", ErrConnLost, err)
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				cause = fmt.Errorf("%w: flush stalled past %v: %v", ErrTimeout, cn.reqTimeout, err)
			}
			cn.close(cause)
			cn.recycleQueued()
			return
		}
	}
}

// recycleQueued returns every queued request buffer to the arena until the
// quit signal has been observed and the queue is empty. Only called on the
// way out of writeLoop, after the connection is dead (no new senders pass
// the dead check).
func (cn *conn) recycleQueued() {
	for {
		select {
		case b := <-cn.writec:
			wire.PutBuf(b)
		case <-cn.wquit:
			for {
				select {
				case b := <-cn.writec:
					wire.PutBuf(b)
				default:
					return
				}
			}
		}
	}
}

// readLoop delivers response frames to their waiters until the connection
// dies, then fails every remaining and future request. Bodies are copied out
// of the scanner's reused buffer into pooled buffers owned by the waiters.
func (cn *conn) readLoop() {
	sc := wire.NewFrameScanner(cn.nc, 32<<10)
	for {
		f, err := sc.Next()
		if err != nil {
			if cn.timedOut.Load() {
				cn.close(fmt.Errorf("%w: no response within %v", ErrTimeout, cn.reqTimeout))
			} else {
				cn.close(fmt.Errorf("%w: %v", ErrConnLost, err))
			}
			return
		}
		cn.mu.Lock()
		ch, ok := cn.inflight[f.ID]
		delete(cn.inflight, f.ID)
		cn.mu.Unlock()
		if ok && ch != nil {
			rb := wire.GetBuf(len(f.Body))
			rb.B = append(rb.B[:0], f.Body...)
			ch <- resp{verb: f.Verb, buf: rb}
		}
	}
}

// timeoutKill is the request timer's firing path: mark the timeout (so the
// read loop attributes its exit correctly), then move the read deadline into
// the past, forcing the blocked read off the socket immediately. Death then
// flows through the read loop's single exit path — close with an ErrTimeout
// cause, every waiter woken — rather than a second, racing teardown.
func (cn *conn) timeoutKill() {
	cn.timedOut.Store(true)
	cn.nc.SetReadDeadline(time.Unix(1, 0))
}

// isDead reports whether the connection has failed.
func (cn *conn) isDead() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.dead != nil
}

// close marks the connection dead with cause, stops the writer, and wakes
// every waiter with a dead-connection resp.
func (cn *conn) close(cause error) {
	cn.mu.Lock()
	if cn.dead != nil {
		cn.mu.Unlock()
		return
	}
	cn.dead = cause
	waiters := cn.inflight
	cn.inflight = nil
	cn.mu.Unlock()
	close(cn.wquit)
	cn.nc.Close()
	for _, ch := range waiters {
		if ch != nil {
			select {
			case ch <- resp{}: // nil buf: consult dead
			default: // a response beat us; the waiter takes that instead
			}
		}
	}
}

// deadErr returns the recorded cause of death (or a generic closed error),
// wrapped in a NodeError naming this connection's dialed address — the
// per-node attribution every dead-connection failure surfaces with.
func (cn *conn) deadErr() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.dead != nil {
		return &NodeError{Addr: cn.addr, Err: cn.dead}
	}
	return &NodeError{Addr: cn.addr, Err: errClientClosed}
}

// enqueue registers the request id (wait selects a pooled waiter channel)
// and hands the complete frame buffer to the writer, taking ownership of b
// in every outcome.
func (cn *conn) enqueue(b *wire.Buf, id uint64, wait bool) (chan resp, error) {
	var ch chan resp
	if wait {
		ch = respChans.Get().(chan resp)
	}
	cn.mu.Lock()
	if cn.dead != nil {
		err := &NodeError{Addr: cn.addr, Err: cn.dead}
		cn.mu.Unlock()
		if ch != nil {
			respChans.Put(ch)
		}
		wire.PutBuf(b)
		return nil, err
	}
	cn.inflight[id] = ch
	cn.mu.Unlock()

	select {
	case cn.writec <- b:
		return ch, nil
	case <-cn.wquit:
		cn.mu.Lock()
		if _, still := cn.inflight[id]; still {
			delete(cn.inflight, id)
			if ch != nil {
				respChans.Put(ch)
				ch = nil
			}
		}
		cn.mu.Unlock()
		wire.PutBuf(b)
		// The waiter entry may already have been snapped up by close();
		// either way the request is dead.
		return nil, cn.deadErr()
	}
}

// roundTripBuf sends the frame in b — encoded with wire.BeginFrame and the
// message's Append, prefix still unpatched — and blocks for its response.
// It owns b; the returned resp's buffer is owned by the caller, who recycles
// it with wire.PutBuf after decoding.
func (cn *conn) roundTripBuf(verb wire.Verb, b *wire.Buf) (resp, error) {
	id := cn.nextID.Add(1)
	if err := wire.EndFrame(b.B, 0, id, verb); err != nil {
		wire.PutBuf(b)
		return resp{}, err
	}
	if cn.reqTimeout > 0 {
		// Armed before enqueue so the deadline also covers time spent queued
		// behind a stalled flush. Firing kicks the read loop off the socket
		// (SetReadDeadline in the past), which kills the connection with an
		// ErrTimeout cause and wakes every waiter — including this one, via
		// the dead-connection resp below. Stopped on the normal path; a
		// response racing the timer at the deadline costs a redial, nothing
		// more.
		t := time.AfterFunc(cn.reqTimeout, cn.timeoutKill)
		defer t.Stop()
	}
	ch, err := cn.enqueue(b, id, true)
	if err != nil {
		return resp{}, err
	}
	r := <-ch
	respChans.Put(ch)
	if r.buf == nil {
		return resp{}, cn.deadErr()
	}
	return r, nil
}

// roundTrip is roundTripBuf over a plain body: the convenience path for cold
// verbs.
func (cn *conn) roundTrip(verb wire.Verb, body []byte) (resp, error) {
	b := wire.GetBuf(wire.FramePrefix + len(body))
	b.B = append(wire.BeginFrame(b.B[:0]), body...)
	return cn.roundTripBuf(verb, b)
}

// postBuf sends the frame in b without waiting for its response (the read
// loop discards it on arrival). Used for READ-ANNOUNCE, which is pure
// helping: the client pipelines it behind the fetch and moves on — the
// writer coalesces the two frames into one flush when they are queued
// together.
func (cn *conn) postBuf(verb wire.Verb, b *wire.Buf) error {
	id := cn.nextID.Add(1)
	if err := wire.EndFrame(b.B, 0, id, verb); err != nil {
		wire.PutBuf(b)
		return err
	}
	_, err := cn.enqueue(b, id, false)
	return err
}

// open ensures the named object is open on this connection and returns the
// server's OpenResp; the first open also learns the connection's session
// secret. Subsequent opens of the same name on this connection are answered
// locally.
func (cn *conn) open(name string, wkind uint8, capacity uint32) (wire.OpenResp, error) {
	cn.mu.Lock()
	if prev, ok := cn.opened[name]; ok && prev.Kind == wkind && cn.hasSess {
		cn.mu.Unlock()
		return prev, nil
	}
	cn.mu.Unlock()

	req := wire.OpenReq{Name: name, Kind: wkind, Capacity: capacity, Node: cn.node}
	r, err := cn.roundTrip(wire.VerbOpen, req.Append(nil))
	if err != nil {
		return wire.OpenResp{}, err
	}
	var openResp wire.OpenResp
	err = decodeResp(r, wire.VerbOpen, &openResp)
	wire.PutBuf(r.buf)
	if err != nil {
		return wire.OpenResp{}, err
	}
	if cn.node != 0 && openResp.Node != cn.node {
		// Belt and braces: the server refuses asserted mismatches itself
		// (CodeNodeMismatch), so this only fires against a daemon that echoed
		// an id it did not check.
		return wire.OpenResp{}, &NodeError{Addr: cn.addr, Err: fmt.Errorf(
			"open %q: daemon is node %d, want %d: %w", name, openResp.Node, cn.node, ErrNodeMismatch)}
	}
	cn.mu.Lock()
	cn.session = openResp.Session
	cn.hasSess = true
	cn.epoch = openResp.Epoch
	cn.opened[name] = openResp
	cn.mu.Unlock()
	return openResp, nil
}

// epochValue returns the server boot epoch this connection observed. A TCP
// connection can only ever talk to one server process, so the value is
// stable for the connection's lifetime — which is what makes it a safe
// staleness signal for read caches (a process-wide "latest epoch" could be
// overwritten by a delayed callback from a pre-restart connection).
func (cn *conn) epochValue() uint64 {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.epoch
}

// sessionValue returns the connection's session secret.
func (cn *conn) sessionValue() [wire.SessionLen]byte {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.session
}
