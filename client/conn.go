package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"auditreg/wire"
)

var errClientClosed = errors.New("client: closed")

// ErrConnLost reports that a pool connection died — server restart, TCP
// reset, write failure — with requests in flight. Every such request fails
// fast with an error wrapping ErrConnLost (test with errors.Is) instead of
// hanging; the pool transparently redials on next use, so the Client itself
// survives.
var ErrConnLost = errors.New("client: connection lost")

// conn is one pooled connection: a background read loop matches response
// frames to waiting requests by id (in-flight multiplexing), writes are
// serialized by a mutex, and the connection remembers its server-issued
// session secret plus which objects it has opened.
type conn struct {
	nc net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	nextID atomic.Uint64

	mu       sync.Mutex
	inflight map[uint64]chan wire.Frame // nil channel: fire-and-forget
	dead     error
	session  [wire.SessionLen]byte
	hasSess  bool
	epoch    uint64                   // server boot epoch, from OPEN responses
	opened   map[string]wire.OpenResp // objects opened on this conn
}

func dialConn(addr string, timeout time.Duration) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	cn := &conn{
		nc:       nc,
		bw:       bufio.NewWriterSize(nc, 32<<10),
		inflight: make(map[uint64]chan wire.Frame),
		opened:   make(map[string]wire.OpenResp),
	}
	go cn.readLoop()
	return cn, nil
}

// readLoop delivers response frames to their waiters until the connection
// dies, then fails every remaining and future request.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.nc, 32<<10)
	for {
		f, err := wire.ReadFrame(br)
		if err != nil {
			cn.close(fmt.Errorf("%w: %v", ErrConnLost, err))
			return
		}
		cn.mu.Lock()
		ch, ok := cn.inflight[f.ID]
		delete(cn.inflight, f.ID)
		cn.mu.Unlock()
		if ok && ch != nil {
			ch <- f
		}
	}
}

// isDead reports whether the connection has failed.
func (cn *conn) isDead() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.dead != nil
}

// close marks the connection dead with cause and wakes every waiter.
func (cn *conn) close(cause error) {
	cn.mu.Lock()
	if cn.dead != nil {
		cn.mu.Unlock()
		return
	}
	cn.dead = cause
	waiters := cn.inflight
	cn.inflight = nil
	cn.mu.Unlock()
	cn.nc.Close()
	for _, ch := range waiters {
		if ch != nil {
			close(ch) // receivers observe the zero Frame and consult dead
		}
	}
}

// send writes one request frame; when wait is true it registers a waiter and
// returns it.
func (cn *conn) send(verb wire.Verb, body []byte, wait bool) (uint64, chan wire.Frame, error) {
	id := cn.nextID.Add(1)
	var ch chan wire.Frame
	if wait {
		ch = make(chan wire.Frame, 1)
	}
	cn.mu.Lock()
	if cn.dead != nil {
		err := cn.dead
		cn.mu.Unlock()
		return 0, nil, err
	}
	cn.inflight[id] = ch
	cn.mu.Unlock()

	frame := wire.AppendFrame(nil, id, verb, body)
	cn.wmu.Lock()
	_, err := cn.bw.Write(frame)
	if err == nil {
		err = cn.bw.Flush()
	}
	cn.wmu.Unlock()
	if err != nil {
		err = fmt.Errorf("%w: write failed: %v", ErrConnLost, err)
		cn.close(err)
		return 0, nil, err
	}
	return id, ch, nil
}

// roundTrip sends a request and blocks for its response.
func (cn *conn) roundTrip(verb wire.Verb, body []byte) (wire.Frame, error) {
	_, ch, err := cn.send(verb, body, true)
	if err != nil {
		return wire.Frame{}, err
	}
	f, ok := <-ch
	if !ok {
		cn.mu.Lock()
		err := cn.dead
		cn.mu.Unlock()
		if err == nil {
			err = errClientClosed
		}
		return wire.Frame{}, err
	}
	return f, nil
}

// post sends a request without waiting for its response (the read loop
// discards it on arrival). Used for READ-ANNOUNCE, which is pure helping:
// the client pipelines it behind the fetch and moves on.
func (cn *conn) post(verb wire.Verb, body []byte) error {
	_, _, err := cn.send(verb, body, false)
	return err
}

// open ensures the named object is open on this connection and returns the
// server's OpenResp; the first open also learns the connection's session
// secret. Subsequent opens of the same name on this connection are answered
// locally.
func (cn *conn) open(name string, wkind uint8, capacity uint32) (wire.OpenResp, error) {
	cn.mu.Lock()
	if prev, ok := cn.opened[name]; ok && prev.Kind == wkind && cn.hasSess {
		cn.mu.Unlock()
		return prev, nil
	}
	cn.mu.Unlock()

	req := wire.OpenReq{Name: name, Kind: wkind, Capacity: capacity}
	f, err := cn.roundTrip(wire.VerbOpen, req.Append(nil))
	if err != nil {
		return wire.OpenResp{}, err
	}
	var resp wire.OpenResp
	if err := decodeResp(f, wire.VerbOpen, &resp); err != nil {
		return wire.OpenResp{}, err
	}
	cn.mu.Lock()
	cn.session = resp.Session
	cn.hasSess = true
	cn.epoch = resp.Epoch
	cn.opened[name] = resp
	cn.mu.Unlock()
	return resp, nil
}

// epochValue returns the server boot epoch this connection observed. A TCP
// connection can only ever talk to one server process, so the value is
// stable for the connection's lifetime — which is what makes it a safe
// staleness signal for read caches (a process-wide "latest epoch" could be
// overwritten by a delayed callback from a pre-restart connection).
func (cn *conn) epochValue() uint64 {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.epoch
}
