package client

import (
	"fmt"
	"sync"

	"auditreg"
	"auditreg/internal/telem"
	"auditreg/store"
	"auditreg/wire"
)

// Object is a remote auditable object: the client-side mirror of
// store.Object for the remotable kinds (Register, MaxRegister). All methods
// are safe for concurrent use; per-reader protocol state is serialized per
// (object, reader), exactly as in the local store.
type Object struct {
	c       *Client
	name    string
	kind    store.Kind
	wkind   uint8
	readers int
	slots   []readSlot
}

// readSlot is one reader principal's client-side protocol state: the
// paper's prev_sn / prev_val silent-read cache, moved to the reading
// process where it belongs. prevSeq is lazily initialized to ^uint64(0)
// (the paper's prev_sn = -1) on first use. epoch remembers which server
// boot the cache was filled under; when the server restarts (recovery
// renumbers sequence numbers) the cache is dropped rather than risk a
// seq collision serving a stale value.
type readSlot struct {
	mu      sync.Mutex
	init    bool
	epoch   uint64
	prevSeq uint64
	prevVal uint64
}

// Name returns the name the object is stored under.
func (o *Object) Name() string { return o.name }

// Kind returns the object's kind.
func (o *Object) Kind() store.Kind { return o.kind }

// Readers returns the object's reader count m.
func (o *Object) Readers() int { return o.readers }

// Write writes v: an overwrite for a Register, a writeMax for a
// MaxRegister. The request frame is encoded into (and recycled through) the
// wire buffer arena — steady-state writes allocate nothing per call. A
// write the server sheds under admission control is retried with jittered
// backoff (see retryBusy); writes are idempotent per value, so a repeat is
// always safe.
func (o *Object) Write(v uint64) error {
	// The RTT stopwatch starts before the retry loop: the recorded latency
	// is what the caller experienced, backoff and redials included.
	t0 := telem.Now()
	err := o.write(v)
	o.c.rtt.Observe(uint64(t0), telem.Now()-t0)
	return err
}

func (o *Object) write(v uint64) error {
	return retryBusy(func() error {
		cn := o.c.pick()
		if _, err := cn.open(o.name, o.wkind, 0); err != nil {
			return err
		}
		req := wire.WriteReq{Name: o.name, Value: v}
		b := wire.GetBuf(wire.FramePrefix + 16 + len(o.name))
		b.B = req.Append(wire.BeginFrame(b.B[:0]))
		r, err := cn.roundTripBuf(wire.VerbWrite, b)
		if err != nil {
			return err
		}
		switch {
		case r.verb != wire.VerbWrite:
			err = respError(r, wire.VerbWrite)
		case len(r.buf.B) != 0:
			err = fmt.Errorf("client: unexpected %d-byte ack body", len(r.buf.B))
		}
		wire.PutBuf(r.buf)
		return err
	})
}

// Read returns the current value as seen by the given reader index, driving
// the paper's read over the wire: at most one READ-FETCH (silent when the
// client cache is already current server-side) and, after a fetch, one
// pipelined READ-ANNOUNCE the call does not wait for. The value arrives
// masked under the connection's session secret and is unmasked here,
// locally.
func (o *Object) Read(reader int) (uint64, error) {
	t0 := telem.Now()
	v, err := o.read(reader)
	o.c.rtt.Observe(uint64(t0), telem.Now()-t0)
	return v, err
}

func (o *Object) read(reader int) (uint64, error) {
	if reader < 0 || reader >= o.readers {
		return 0, fmt.Errorf("client: read %q: reader %d out of range [0, %d)", o.name, reader, o.readers)
	}
	s := &o.slots[reader]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.init {
		s.init = true
		s.prevSeq = ^uint64(0) // the paper's prev_sn = -1
	}

	// A shed fetch never reached the store — no fetch&xor happened, so a
	// backoff retry repeats a request that had no effect (see retryBusy).
	var cn *conn
	var fetchResp wire.ReadFetchResp
	err := retryBusy(func() error {
		cn = o.c.pick()
		if _, err := cn.open(o.name, o.wkind, 0); err != nil {
			return err
		}
		// The open (fresh or cached) pinned this connection's server boot
		// epoch. A connection only ever speaks to one server process, so a
		// slot cache filled under a different epoch was filled against a
		// different process generation — recovery renumbers, so drop it.
		if e := cn.epochValue(); s.epoch != e {
			s.epoch = e
			s.prevSeq = ^uint64(0)
		}
		req := wire.ReadFetchReq{Name: o.name, Reader: uint8(reader), PrevSeq: s.prevSeq}
		b := wire.GetBuf(wire.FramePrefix + 24 + len(o.name))
		b.B = req.Append(wire.BeginFrame(b.B[:0]))
		r, err := cn.roundTripBuf(wire.VerbReadFetch, b)
		if err != nil {
			return err
		}
		if r.verb != wire.VerbReadFetch {
			err = respError(r, wire.VerbReadFetch)
			wire.PutBuf(r.buf)
			return err
		}
		err = fetchResp.Decode(r.buf.B)
		wire.PutBuf(r.buf)
		return err
	})
	if err != nil {
		return 0, err
	}
	if fetchResp.Seq != s.prevSeq {
		// New value: unmask locally under this connection's session pad.
		session := cn.sessionValue()
		s.prevVal = fetchResp.Value ^ wire.ValueMask(session, o.name, uint8(reader), fetchResp.Seq)
		s.prevSeq = fetchResp.Seq
	}
	if fetchResp.Fetched {
		// The fetch&xor happened: help complete the write, pipelined. A
		// failed post is dropped, not surfaced — the read already took
		// effect (it is audited, and the value is in hand); announcing is
		// pure helping that writers and auditors also perform.
		ann := wire.AnnounceReq{Name: o.name, Reader: uint8(reader), Seq: fetchResp.Seq}
		ab := wire.GetBuf(wire.FramePrefix + 24 + len(o.name))
		ab.B = ann.Append(wire.BeginFrame(ab.B[:0]))
		_ = cn.postBuf(wire.VerbReadAnnounce, ab)
	}
	return s.prevVal, nil
}

// Writer returns a write handle, mirroring the local API. Handles are
// stateless and cheap; unlike local handles they are safe for concurrent
// use.
func (o *Object) Writer() *Writer { return &Writer{o: o} }

// Reader returns the handle for reader j (0 <= j < m), mirroring the local
// API. The handle shares the object's per-reader protocol state, so any
// number of goroutines may drive one reader principal.
func (o *Object) Reader(j int) (*Reader, error) {
	if j < 0 || j >= o.readers {
		return nil, fmt.Errorf("client: reader index %d out of range [0, %d)", j, o.readers)
	}
	return &Reader{o: o, j: j}, nil
}

// Auditor returns an audit handle, mirroring the local API. It requires the
// client to hold the store key (WithKey): reader sets cross the wire masked
// and are decrypted only here, client-side.
func (o *Object) Auditor() (*Auditor, error) {
	if !o.c.hasKey {
		return nil, fmt.Errorf("client: auditor for %q: no store key (configure WithKey)", o.name)
	}
	return &Auditor{o: o}, nil
}

// Writer is a write handle of a remote object.
type Writer struct {
	o *Object
}

// Write writes v; see Object.Write.
func (w *Writer) Write(v uint64) error { return w.o.Write(v) }

// Reader is a read handle of one reader principal of a remote object.
type Reader struct {
	o *Object
	j int
}

// Index returns the reader's index j.
func (r *Reader) Index() int { return r.j }

// Read returns the object's current value as seen by this reader; see
// Object.Read.
func (r *Reader) Read() (uint64, error) { return r.o.Read(r.j) }

// Auditor is an audit handle of a remote object.
type Auditor struct {
	o *Object
}

// Audit requests a fresh audit — a report covering everything linearized
// before the server handled the request — and unmasks its reader sets
// locally with the store key. The report is cumulative, as audits are.
func (a *Auditor) Audit() (store.ObjectAudit[uint64], error) { return a.audit(true) }

// Latest returns the server audit pool's most recently published report for
// the object: the cheap path, possibly slightly stale, never contending
// with writers.
func (a *Auditor) Latest() (store.ObjectAudit[uint64], error) { return a.audit(false) }

func (a *Auditor) audit(fresh bool) (store.ObjectAudit[uint64], error) {
	t0 := telem.Now()
	aud, err := a.auditOnce(fresh)
	a.o.c.rtt.Observe(uint64(t0), telem.Now()-t0)
	return aud, err
}

func (a *Auditor) auditOnce(fresh bool) (store.ObjectAudit[uint64], error) {
	o := a.o
	var resp wire.AuditResp
	err := retryBusy(func() error {
		cn := o.c.pick()
		if _, err := cn.open(o.name, o.wkind, 0); err != nil {
			return err
		}
		req := wire.AuditReq{Name: o.name, Fresh: fresh}
		r, err := cn.roundTrip(wire.VerbAudit, req.Append(nil))
		if err != nil {
			return err
		}
		resp = wire.AuditResp{}
		err = decodeResp(r, wire.VerbAudit, &resp)
		wire.PutBuf(r.buf)
		return err
	})
	if err != nil {
		return store.ObjectAudit[uint64]{}, err
	}
	// Unmask each row's reader set — the only place outside the server
	// where reader sets exist in the clear, and it requires the key.
	var entries []auditreg.Entry[uint64]
	for i, row := range resp.Rows {
		readers := row.Readers ^ wire.AuditMask(o.c.key, resp.Nonce, i)
		for j := 0; j < 64; j++ {
			if readers&(1<<uint(j)) != 0 {
				entries = append(entries, auditreg.Entry[uint64]{Reader: j, Value: row.Value})
			}
		}
	}
	return store.ObjectAudit[uint64]{
		Object: o.name,
		Kind:   o.kind,
		Report: auditreg.NewReport(entries...),
	}, nil
}
