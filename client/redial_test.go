package client_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"auditreg"
	"auditreg/client"
	"auditreg/server"
	"auditreg/store"
)

// TestConnLostFailsInFlightFast is the regression test for the pool's
// dead-connection handling: a request in flight on a connection the server
// kills must fail promptly with an error wrapping client.ErrConnLost — not
// hang, and not surface an anonymous error the caller cannot classify.
func TestConnLostFailsInFlightFast(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A server that accepts, reads a little, and slams the connection shut
	// without ever answering.
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				var buf [64]byte
				nc.Read(buf[:])
				nc.Close()
			}(nc)
		}
	}()

	cl, err := client.Dial(ln.Addr().String(), client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Open("obj", store.Register)
	if err == nil {
		t.Fatal("Open against a dead-dropping server succeeded")
	}
	if !errors.Is(err, client.ErrConnLost) {
		t.Fatalf("in-flight failure = %v, want errors.Is(err, ErrConnLost)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("in-flight request took %v to fail", elapsed)
	}
}

// TestRedialAfterServerRestart restarts the server on the same address and
// checks that the same Client (1) fails the cut-over requests with the typed
// error, (2) transparently redials, and (3) drops its per-reader silent-read
// caches when it sees the new boot epoch — the deterministic stale-read trap
// is a new server whose register reaches exactly the sequence number the
// client cached from the old one, with a different value.
func TestRedialAfterServerRestart(t *testing.T) {
	key := auditreg.KeyFromSeed(77)
	startAt := func(addr string) (*server.Server, string, chan error) {
		t.Helper()
		srv, err := server.New(server.Config{Key: key, Readers: 4, PoolInterval: time.Millisecond})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatalf("listen %s: %v", addr, err)
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		return srv, ln.Addr().String(), done
	}
	shutdown := func(srv *server.Server, done chan error) {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Fatalf("Serve: %v", err)
		}
	}

	srvA, addr, doneA := startAt("127.0.0.1:0")
	cl, err := client.Dial(addr, client.WithConns(1))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	obj, err := cl.Open("obj", store.Register)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := obj.Write(0xAAAA); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Cache (prev_sn = 1, prev_val = 0xAAAA) client-side.
	if v, err := obj.Read(0); err != nil || v != 0xAAAA {
		t.Fatalf("Read on server A = %#x, %v", v, err)
	}
	shutdown(srvA, doneA)

	// The client notices the loss with the typed error on its next use.
	deadline := time.Now().Add(5 * time.Second)
	sawLost := false
	for time.Now().Before(deadline) {
		if err := obj.Write(1); err != nil {
			if !errors.Is(err, client.ErrConnLost) {
				t.Fatalf("cut-over failure = %v, want ErrConnLost", err)
			}
			sawLost = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawLost {
		t.Fatal("writes kept succeeding after server shutdown")
	}

	// Restart on the same address with different state: one write brings
	// the fresh register to seq 1, the exact seq the client cached.
	srvB, _, doneB := startAt(addr)
	defer shutdown(srvB, doneB)
	if err := srvB.Store().Write("obj", 0xBBBB); err != nil {
		// The object does not exist on B yet; create it server-side.
		if _, err := srvB.Store().Open("obj", store.Register); err != nil {
			t.Fatalf("server-side Open: %v", err)
		}
		if err := srvB.Store().Write("obj", 0xBBBB); err != nil {
			t.Fatalf("server-side Write: %v", err)
		}
	}

	// The same client object must redial and return B's value — a client
	// without epoch tracking would match seq 1 against its cache and hand
	// back 0xAAAA.
	var got uint64
	for time.Now().Before(deadline) {
		got, err = obj.Read(0)
		if err == nil {
			break
		}
		if !errors.Is(err, client.ErrConnLost) {
			t.Fatalf("post-restart Read failed oddly: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("post-restart Read never succeeded: %v", err)
	}
	if got != 0xBBBB {
		t.Fatalf("post-restart Read = %#x, want %#x (stale cache served across restart)", got, 0xBBBB)
	}
}
