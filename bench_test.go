// Benchmarks regenerating the experiment series of EXPERIMENTS.md: one
// family per experiment id (E1, E7, E8, E9, E10). The paper is theory-only,
// so these series measure the costs it reasons about analytically — retry
// bounds, audit scan costs, the price of auditability and encryption — and
// compare against the Section 3.1 strawman, a mutex design, and plain
// non-auditable objects.
package auditreg_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"auditreg"
	"auditreg/internal/baseline"
	"auditreg/internal/core"
	"auditreg/internal/ida"
	"auditreg/internal/maxreg"
	"auditreg/internal/otp"
	"auditreg/internal/probe"
	"auditreg/internal/replicated"
	"auditreg/internal/shmem"
	"auditreg/internal/snapshot"
	"auditreg/internal/versioned"
)

func benchPads(b *testing.B, m int) auditreg.PadSource {
	b.Helper()
	pads, err := auditreg.NewKeyedPads(auditreg.KeyFromSeed(1), m)
	if err != nil {
		b.Fatal(err)
	}
	return pads
}

func benchReg(b *testing.B, m int) *auditreg.Register[uint64] {
	b.Helper()
	reg, err := auditreg.NewRegister(m, uint64(0), benchPads(b, m))
	if err != nil {
		b.Fatal(err)
	}
	return reg
}

// --- E1: write retry cost under reader contention (Lemma 2) ---

func BenchmarkE1WriteUnderReadStorm(b *testing.B) {
	// The pads dimension is the before/after of the pad-derivation overhaul:
	// per-pad SHA-256 (keyed) vs block derivation with the window cache
	// (block). sha/write counts digest compressions per write via
	// otp.DerivationCounter.
	sources := []struct {
		name string
		make func(m int) auditreg.PadSource
	}{
		{"pads=keyed", func(m int) auditreg.PadSource { return benchPads(b, m) }},
		{"pads=block", func(m int) auditreg.PadSource {
			pads, err := auditreg.NewBlockPads(auditreg.KeyFromSeed(1), m)
			if err != nil {
				b.Fatal(err)
			}
			return pads
		}},
	}
	for _, src := range sources {
		for _, m := range []int{1, 4, 16, 64} {
			b.Run(src.name+"/"+benchName("m", m), func(b *testing.B) {
				pads := src.make(m)
				reg, err := auditreg.NewRegister(m, uint64(0), pads)
				if err != nil {
					b.Fatal(err)
				}
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for j := 0; j < m; j++ {
					rd, err := reg.Reader(j)
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							select {
							case <-stop:
								return
							default:
								rd.Read()
							}
						}
					}()
				}
				counter := probe.NewCounter()
				cw := reg.Writer(core.WithProbe(counter.Probe()))
				dc, _ := pads.(otp.DerivationCounter)
				var sha0 uint64
				if dc != nil {
					sha0 = dc.Derivations()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := cw.Write(uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				close(stop)
				wg.Wait()
				if b.N > 0 {
					b.ReportMetric(float64(counter.Invokes[probe.RRead])/float64(b.N), "loop-iters/write")
					b.ReportMetric(float64(counter.Invokes[probe.RCAS])/float64(b.N), "cas/write")
					if dc != nil {
						b.ReportMetric(float64(dc.Derivations()-sha0)/float64(b.N), "sha/write")
					}
				}
			})
		}
	}
}

// --- E7: price of auditability — read/write throughput vs baselines ---

func BenchmarkE7ReadSilent(b *testing.B) {
	reg := benchReg(b, 1)
	rd, err := reg.Reader(0)
	if err != nil {
		b.Fatal(err)
	}
	rd.Read() // make subsequent reads silent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Read()
	}
}

func BenchmarkE7WriteThenRead(b *testing.B) {
	b.Run("core", func(b *testing.B) {
		reg := benchReg(b, 1)
		rd, err := reg.Reader(0)
		if err != nil {
			b.Fatal(err)
		}
		w := reg.Writer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Write(uint64(i)); err != nil {
				b.Fatal(err)
			}
			rd.Read()
		}
	})
	b.Run("strawman", func(b *testing.B) {
		s, err := baseline.NewStrawman(1, uint64(0))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Write(uint64(i)); err != nil {
				b.Fatal(err)
			}
			s.Read(0)
		}
	})
	b.Run("mutex", func(b *testing.B) {
		r, err := baseline.NewMutex(1, uint64(0))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Write(uint64(i))
			r.Read(0)
		}
	})
	b.Run("plain", func(b *testing.B) {
		r := baseline.NewPlain(uint64(0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Write(uint64(i))
			r.Read()
		}
	})
}

func BenchmarkE7ContendedReads(b *testing.B) {
	const m = 8
	b.Run("core", func(b *testing.B) {
		reg := benchReg(b, m)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := reg.Writer()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					_ = w.Write(uint64(i))
				}
			}
		}()
		var next atomic.Int64
		b.ResetTimer()
		b.SetParallelism(1) // GOMAXPROCS goroutines, ids assigned below
		b.RunParallel(func(pb *testing.PB) {
			j := int(next.Add(1)-1) % m
			rd, err := reg.Reader(j)
			if err != nil {
				b.Error(err)
				return
			}
			for pb.Next() {
				rd.Read()
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}

func BenchmarkE7EncryptionOverhead(b *testing.B) {
	// Keyed pads (SHA-256 per mask) vs zero pads (no encryption): the cost
	// of the one-time-pad machinery on the write path.
	run := func(b *testing.B, pads auditreg.PadSource) {
		reg, err := auditreg.NewRegister(4, uint64(0), pads)
		if err != nil {
			b.Fatal(err)
		}
		w := reg.Writer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Write(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("keyed", func(b *testing.B) { run(b, benchPads(b, 4)) })
	b.Run("zero", func(b *testing.B) { run(b, otp.ZeroPads{}) })
}

func BenchmarkE7BackendAblation(b *testing.B) {
	// The same write+read pair over the three R backends: the pointer-CAS
	// default, the mutex reference, and the packed single-word register.
	pads := benchPads(b, 1)
	run := func(b *testing.B, reg *auditreg.Register[uint64]) {
		rd, err := reg.Reader(0)
		if err != nil {
			b.Fatal(err)
		}
		w := reg.Writer()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Write(uint64(i) & 0xffff); err != nil {
				b.Fatal(err)
			}
			rd.Read()
		}
	}
	b.Run("ptr", func(b *testing.B) {
		reg, err := auditreg.NewRegister(1, uint64(0), pads)
		if err != nil {
			b.Fatal(err)
		}
		run(b, reg)
	})
	b.Run("locked", func(b *testing.B) {
		init := shmem.Triple[uint64]{Seq: 0, Val: 0, Bits: pads.Mask(0)}
		reg, err := auditreg.NewRegister(1, uint64(0), pads,
			core.WithTripleReg[uint64](shmem.NewLockedTriple(init)),
			core.WithSeqReg[uint64](&shmem.LockedSeq{}))
		if err != nil {
			b.Fatal(err)
		}
		run(b, reg)
	})
	b.Run("packed", func(b *testing.B) {
		init := shmem.Triple[uint64]{Seq: 0, Val: 0, Bits: pads.Mask(0)}
		packed, err := shmem.NewPacked64(shmem.Layout{SeqBits: 28, ValBits: 16, ReaderBits: 20}, init)
		if err != nil {
			b.Fatal(err)
		}
		reg, err := auditreg.NewRegister(1, uint64(0), pads, core.WithTripleReg[uint64](packed))
		if err != nil {
			b.Fatal(err)
		}
		run(b, reg)
	})
}

// --- E8: audit cost vs history length ---

func BenchmarkE8AuditScan(b *testing.B) {
	for _, hist := range []int{100, 1000, 10000, 100000} {
		b.Run(benchName("hist", hist), func(b *testing.B) {
			reg := benchReg(b, 2)
			rd, err := reg.Reader(0)
			if err != nil {
				b.Fatal(err)
			}
			w := reg.Writer()
			for i := 0; i < hist; i++ {
				if err := w.Write(uint64(i) | 1<<20); err != nil {
					b.Fatal(err)
				}
				if i%16 == 0 {
					rd.Read()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh auditor pays the full O(hist) scan.
				if _, err := reg.Auditor().Audit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE8AuditIncremental(b *testing.B) {
	// One long-lived auditor re-auditing as the history grows by one write
	// per audit: the lsa cursor makes each re-audit O(1).
	reg := benchReg(b, 2)
	w := reg.Writer()
	auditor := reg.Auditor()
	if _, err := auditor.Audit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(uint64(i)); err != nil {
			b.Fatal(err)
		}
		if _, err := auditor.Audit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: max register substrates and Algorithm 2 ---

func BenchmarkE9MaxWrite(b *testing.B) {
	b.Run("cas", func(b *testing.B) {
		r := maxreg.NewCASMax[uint64](0, func(a, c uint64) bool { return a < c })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.WriteMax(uint64(i))
		}
	})
	b.Run("tree", func(b *testing.B) {
		r, err := maxreg.NewTreeMax(30)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.WriteMax(uint64(i))
		}
	})
	b.Run("locked", func(b *testing.B) {
		r := maxreg.NewLockedMax[uint64](0, func(a, c uint64) bool { return a < c })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.WriteMax(uint64(i))
		}
	})
	b.Run("auditable", func(b *testing.B) {
		reg, err := auditreg.NewMaxRegister(1, uint64(0),
			func(a, c uint64) bool { return a < c }, benchPads(b, 1))
		if err != nil {
			b.Fatal(err)
		}
		w, err := reg.Writer(auditreg.NewSeededNonces(1, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.WriteMax(uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE9MaxRead(b *testing.B) {
	b.Run("cas", func(b *testing.B) {
		r := maxreg.NewCASMax[uint64](42, func(a, c uint64) bool { return a < c })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = r.Read()
		}
	})
	b.Run("tree", func(b *testing.B) {
		r, err := maxreg.NewTreeMax(30)
		if err != nil {
			b.Fatal(err)
		}
		r.WriteMax(1 << 29)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = r.Read()
		}
	})
	b.Run("auditable", func(b *testing.B) {
		reg, err := auditreg.NewMaxRegister(1, uint64(0),
			func(a, c uint64) bool { return a < c }, benchPads(b, 1))
		if err != nil {
			b.Fatal(err)
		}
		rd, err := reg.Reader(0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = rd.Read()
		}
	})
}

// --- E10: snapshot substrates and Algorithm 3 ---

func BenchmarkE10SnapshotUpdate(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(benchName("afek/n", n), func(b *testing.B) {
			s, err := snapshot.NewAfek(n, uint64(0))
			if err != nil {
				b.Fatal(err)
			}
			u, err := s.Updater(0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u.Update(uint64(i))
			}
		})
		b.Run(benchName("auditable/n", n), func(b *testing.B) {
			reg, err := auditreg.NewSnapshot(n, 1, uint64(0), benchPads(b, 1))
			if err != nil {
				b.Fatal(err)
			}
			u, err := reg.Updater(0, auditreg.NewSeededNonces(1, 1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := u.Update(uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE10SnapshotScan(b *testing.B) {
	for _, n := range []int{2, 8} {
		b.Run(benchName("afek/n", n), func(b *testing.B) {
			s, err := snapshot.NewAfek(n, uint64(0))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Scan()
			}
		})
		b.Run(benchName("auditable/n", n), func(b *testing.B) {
			reg, err := auditreg.NewSnapshot(n, 1, uint64(0), benchPads(b, 1))
			if err != nil {
				b.Fatal(err)
			}
			sc, err := reg.Scanner(0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sc.Scan()
			}
		})
	}
}

func BenchmarkE10VersionedCounter(b *testing.B) {
	pads := benchPads(b, 1)
	b.Run("base", func(b *testing.B) {
		c := versioned.NewCAS(versioned.CounterType())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Update(struct{}{})
		}
	})
	b.Run("auditable", func(b *testing.B) {
		reg, err := auditreg.NewVersioned(1, versioned.NewCAS(versioned.CounterType()), pads)
		if err != nil {
			b.Fatal(err)
		}
		u, err := reg.Updater(auditreg.NewSeededNonces(1, 1))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := u.Update(struct{}{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E11: replicated message-passing baseline (Cogo & Bessani style) ---

func BenchmarkE11ReplicatedWrite(b *testing.B) {
	for _, f := range []int{1, 2} {
		b.Run(benchName("f", f), func(b *testing.B) {
			c, err := replicated.NewCluster(f, 1)
			if err != nil {
				b.Fatal(err)
			}
			w := c.Writer(1)
			payload := []byte("sixteen-byte-val")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Write(payload); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(c.Stats().Sent)/float64(b.N), "msgs/op")
			}
		})
	}
}

func BenchmarkE11ReplicatedRead(b *testing.B) {
	c, err := replicated.NewCluster(1, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Writer(1).Write([]byte("sixteen-byte-val")); err != nil {
		b.Fatal(err)
	}
	r := c.Reader(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenches ---

func BenchmarkSubstrateIDA(b *testing.B) {
	for _, tc := range []struct{ n, k, size int }{
		{5, 2, 1024},  // the replicated-baseline deployment shape (f=1)
		{16, 8, 4096}, // the dispersal-overhaul acceptance configuration
	} {
		coder, err := ida.New(tc.n, tc.k)
		if err != nil {
			b.Fatal(err)
		}
		data := make([]byte, tc.size)
		for i := range data {
			data[i] = byte(i)
		}
		name := benchName("n", tc.n) + "/" + benchName("k", tc.k) + "/" + benchName("size", tc.size)
		b.Run("split/"+name, func(b *testing.B) {
			b.SetBytes(int64(tc.size))
			for i := 0; i < b.N; i++ {
				_ = coder.Split(data)
			}
		})
		b.Run("reconstruct/"+name, func(b *testing.B) {
			b.SetBytes(int64(tc.size))
			shares := coder.Split(data)
			subset := make(map[int][]byte, tc.k)
			for i := 0; i < tc.k; i++ {
				subset[(i*2+1)%tc.n] = shares[(i*2+1)%tc.n]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coder.Reconstruct(subset, len(data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSubstratePadMask(b *testing.B) {
	b.Run("keyed", func(b *testing.B) {
		pads, err := otp.NewKeyedPads(otp.KeyFromSeed(1), 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = pads.Mask(uint64(i))
		}
	})
	b.Run("block", func(b *testing.B) {
		pads, err := otp.NewBlockPads(otp.KeyFromSeed(1), 64)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = pads.Mask(uint64(i))
		}
	})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
